#include "bslint.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "cache.hpp"
#include "flow.hpp"
#include "graph.hpp"
#include "index.hpp"
#include "lexer.hpp"

namespace bs::lint {

namespace {

// ------------------------------------------------------------------- rules

constexpr const char* kSortedSnapshotHint =
    "iterate a sorted key snapshot or use std::map/std::set when order can "
    "reach traces, digests, RPC responses or event scheduling";

const std::vector<RuleDesc>& rule_table() {
  static const std::vector<RuleDesc> kRules = {
      {"det-wallclock", 'D',
       "wall-clock time source in simulated code",
       "derive every timestamp from sim.now() / SimTime; wall clocks make "
       "replays diverge"},
      {"det-random", 'D',
       "non-seeded randomness source",
       "draw from the seeded bs::Rng (split() for per-actor streams); "
       "std::random_device / rand() are unreplayable"},
      {"det-thread", 'D',
       "host threading primitive in sim-facing code",
       "the simulation is single-threaded by design; move host-parallel "
       "code out of src/ or allow-file with a rationale"},
      {"det-unordered-iter", 'D',
       "iteration over an unordered container",
       kSortedSnapshotHint},
      {"det-journal-encode", 'D',
       "journal/checkpoint encoder depends on unordered iteration or "
       "pointer identity",
       "replayed records must be byte-identical across runs: encode from a "
       "sorted snapshot and serialize values — never hash-table iteration "
       "order, reinterpret_cast bytes or pointer addresses"},
      {"det-custody-order", 'D',
       "hash-ordered container in a wire-encoding plane",
       "src/repl and src/cloud serialize container walks straight onto the "
       "wire (custody bundles, version-map replies, dedup-index checkpoints, "
       "list_objects pages), so their state must live in ordered containers "
       "(std::map/std::set/deque) — hash-table order would make wire traffic "
       "and chaos digests diverge across replays"},
      {"coro-ref-param", 'C',
       "reference/view parameter on a Task-returning coroutine",
       "coroutine parameters are copied into the frame only if by-value; a "
       "reference/string_view/span dangles when the caller's full-expression "
       "ends before the final co_await — pass by value or allow() with the "
       "lifetime argument"},
      {"coro-lambda-capture", 'C',
       "by-reference or [this] capture on a lambda coroutine",
       "captures live in the lambda object, not the coroutine frame; if the "
       "lambda dies while suspended the capture dangles — capture by value, "
       "pass state as parameters, or keep the lambda alive (e.g. stored "
       "handler) and allow() with that rationale"},
      {"coro-view-temp", 'C',
       "string_view bound to a call result inside a coroutine",
       "string_view does not extend temporary lifetime; materialize a "
       "std::string (or bind to a stable lvalue) before suspending"},
      {"coro-first-await-if", 'C',
       "co_await inside the if-condition of a coroutine's first statement",
       "GCC 12 miscompiles this exact shape: the if-condition temporary is "
       "laid out before _Coro_resume_fn, displacing the coroutine frame ABI "
       "(see DESIGN.md and tools/frame_scan). Hoist the await: "
       "`const auto v = co_await ...; if (v) { ... }`"},
      {"coro-ref-escape", 'C',
       "temporary bound to a reference/view parameter of a Task coroutine "
       "at a call site",
       "the temporary dies at the end of the full expression; unless the "
       "call is directly co_awaited the suspended coroutine reads a dangling "
       "reference — materialize a named value that outlives the final "
       "co_await, or pass by value"},
      {"perf-large-byvalue", 'P',
       "container passed by value into a coroutine frame",
       "a by-value container parameter is deep-copied into the frame when "
       "the caller passes an lvalue; share the batch as "
       "shared_ptr<const ...> (copy-free fan-out), or allow() with proof "
       "that every caller moves"},
      {"par-cross-site-schedule", 'P',
       "un-sited schedule reachable from site-sharded context",
       "an event touching a site shard must go through schedule_on_site() "
       "or schedule_par() so it executes in the owning site's lane; a bare "
       "schedule_at/schedule_in runs it in the *current* lane, breaking the "
       "site-purity contract the windowed stepper depends on — or allow() "
       "with the argument for why the state is lane-local"},
      {"obs-unguarded", 'O',
       "unguarded dereference of the observability hook",
       "use `if (auto* ts = obs::sink()) { ... }` (same for obs::metrics()) "
       "so BS_TRACE=OFF folds the plane out and the enabled path is one "
       "predicted branch"},
      {"hyg-iostream", 'H',
       "<iostream> outside viz/, examples/ or tools/",
       "library code reports through Result/log/obs; stream I/O belongs to "
       "the rendering and tooling layers"},
      {"hyg-using-namespace", 'H',
       "using-directive at header scope",
       "headers must not inject namespaces into every includer; qualify or "
       "move the directive into a .cpp"},
      {"hyg-bare-allow", 'H',
       "suppression without a rationale",
       "write `// bslint: allow(rule): why this is safe` — the rationale is "
       "the reviewable artifact"},
      {"hyg-bad-allow", 'H',
       "suppression naming an unknown rule",
       "check `bslint --list-rules` for valid ids"},
  };
  return kRules;
}

// ------------------------------------------------------------- the scanner

class Scanner {
 public:
  Scanner(std::string_view path, LexOut lexed, IncludeResolver* inc)
      : path_(path), scope_(scope_of(path)), inc_(inc),
        lex_(std::move(lexed)) {}

  std::vector<Finding> scan(ScanStats* stats) {
    harvest();
    check_includes();
    check_idents();
    check_unordered_loops();
    check_custody_order();
    check_journal_encoders();
    check_task_functions();
    check_lambdas();
    check_par_schedules();
    check_view_temps();
    check_first_await_if();
    check_obs_guards();
    check_using_namespace();
    for (const Finding& f : lex_.comment_findings) report_raw(f);
    std::sort(findings_.begin(), findings_.end(), finding_less);
    findings_.erase(std::unique(findings_.begin(), findings_.end()),
                    findings_.end());
    if (stats != nullptr) stats->suppressed += suppressed_;
    return std::move(findings_);
  }

  /// Identifiers declared with an unordered container type in this file and
  /// its project include closure (shared with the index builder).
  const std::set<std::string>& unordered_idents() const { return unordered_; }

 private:
  void report(int line, int col, const char* rule, std::string message) {
    Finding f;
    f.path = path_;
    f.line = line;
    f.col = col;
    f.rule = rule;
    f.message = std::move(message);
    report_raw(std::move(f));
  }

  void report_raw(Finding f) {
    if (line_allows(lex_, f.line, f.rule)) {
      ++suppressed_;
      return;
    }
    findings_.push_back(std::move(f));
  }

  // Unordered-declared identifiers: this file plus its project includes.
  void harvest() {
    harvest_unordered(lex_.toks, unordered_);
    if (inc_ == nullptr) return;
    for (const auto& in : lex_.includes) {
      if (in.angled) continue;  // system headers: out of project scope
      if (const auto* ids = inc_->unordered_idents(in.name)) {
        unordered_.insert(ids->begin(), ids->end());
      }
    }
  }

  void check_includes() {
    static const std::set<std::string> kThreadHeaders = {
        "thread", "mutex", "shared_mutex", "atomic", "condition_variable",
        "future", "stop_token", "semaphore", "barrier", "latch"};
    static const std::set<std::string> kClockHeaders = {"chrono", "ctime",
                                                        "sys/time.h"};
    for (const auto& in : lex_.includes) {
      if (!in.angled) continue;
      if (scope_.in_src && kThreadHeaders.count(in.name) != 0u) {
        report(in.line, 1, "det-thread", "#include <" + in.name + ">");
      }
      if ((scope_.in_src || scope_.in_tests || scope_.in_bench) &&
          kClockHeaders.count(in.name) != 0u) {
        report(in.line, 1, "det-wallclock", "#include <" + in.name + ">");
      }
      if ((scope_.in_src || scope_.in_tests || scope_.in_bench) &&
          in.name == "random") {
        report(in.line, 1, "det-random", "#include <random>");
      }
      const bool iostream_ok = path_starts_with(path_, "src/viz/") ||
                               path_starts_with(path_, "examples/") ||
                               path_starts_with(path_, "tools/");
      if (in.name == "iostream" && !iostream_ok) {
        report(in.line, 1, "hyg-iostream", "#include <iostream>");
      }
    }
  }

  void check_idents() {
    if (!scope_.in_src && !scope_.in_tests && !scope_.in_bench) return;
    const auto& t = lex_.toks;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Tk::ident) continue;
      std::string what;
      if (const char* rule = banned_det_ident(t, i, &what)) {
        report(t[i].line, t[i].col, rule, std::move(what));
        continue;
      }
      if (scope_.in_src && is_ident(t[i], "this_thread")) {
        report(t[i].line, t[i].col, "det-thread", "use of std::this_thread");
      }
    }
  }

  void check_unordered_loops() {
    if (!scope_.in_src) return;
    const auto& t = lex_.toks;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (!is_ident(t[i], "for") || !is_punct(t[i + 1], "(")) continue;
      const std::size_t close = match_forward(t, i + 1, "(", ")");
      for (std::size_t j = i + 2; j < close; ++j) {
        if (t[j].kind == Tk::ident && unordered_.count(t[j].text) != 0u) {
          report(t[i].line, t[i].col, "det-unordered-iter",
                 "loop over unordered container '" + t[j].text + "'");
          break;
        }
      }
    }
  }

  /// det-custody-order: the replication and cloud-gateway planes encode
  /// container walks into RPC payloads, journal records and chaos digests,
  /// and a token scanner cannot prove any particular walk never reaches the
  /// wire — so under src/repl and src/cloud the *declaration* of a
  /// hash-ordered container is the finding, not just its iteration.
  /// Iterator walks over unordered members pulled in from included headers
  /// are flagged too (det-unordered-iter only sees range-style `for` loops).
  void check_custody_order() {
    if (!path_starts_with(path_, "src/repl/") &&
        !path_starts_with(path_, "src/cloud/")) {
      return;
    }
    const auto& t = lex_.toks;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (is_unordered_type(t[i])) {
        report(t[i].line, t[i].col, "det-custody-order",
               "replication-plane state declared as '" + t[i].text + "'");
        continue;
      }
      if (t[i].kind == Tk::ident && unordered_.count(t[i].text) != 0u &&
          i + 3 < t.size() &&
          (is_punct(t[i + 1], ".") || is_punct(t[i + 1], "->")) &&
          (is_ident(t[i + 2], "begin") || is_ident(t[i + 2], "cbegin")) &&
          is_punct(t[i + 3], "(")) {
        report(t[i].line, t[i].col, "det-custody-order",
               "iterator walk over unordered container '" + t[i].text + "'");
      }
    }
  }

  /// det-journal-encode: inside the body of any function whose declarator
  /// identifier contains "encode" (encode_checkpoint, encode_record, ...),
  /// flag (a) loops ranging over an unordered container — the record
  /// sequence would serialize hash-table layout and diverge on replay — and
  /// (b) pointer-identity serialization (reinterpret_cast, uintptr_t,
  /// "%p"), which bakes unreplayable addresses into durable records.
  /// The flow pass (flow.cpp) extends the same contract to everything
  /// transitively reachable from an encoder.
  void check_journal_encoders() {
    if (!scope_.in_src) return;
    const auto& t = lex_.toks;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].kind != Tk::ident ||
          t[i].text.find("encode") == std::string::npos) {
        continue;
      }
      if (!is_punct(t[i + 1], "(")) continue;
      const std::size_t params_close = match_forward(t, i + 1, "(", ")");
      if (params_close >= t.size()) continue;
      // Definitions only: walk past const/noexcept/trailing-return to `{`.
      // Call sites and declarations hit `)`, `,` or `;` first and are
      // skipped.
      std::size_t j = params_close + 1;
      while (j < t.size() && !is_punct(t[j], "{") && !is_punct(t[j], ";") &&
             !is_punct(t[j], ",") && !is_punct(t[j], ")") &&
             !is_punct(t[j], "=")) {
        ++j;
      }
      if (j >= t.size() || !is_punct(t[j], "{")) continue;
      const std::size_t body_close = match_forward(t, j, "{", "}");
      const std::string& name = t[i].text;
      for (std::size_t k = j + 1; k < body_close && k < t.size(); ++k) {
        if (is_ident(t[k], "for") && k + 1 < t.size() &&
            is_punct(t[k + 1], "(")) {
          const std::size_t close = match_forward(t, k + 1, "(", ")");
          for (std::size_t m = k + 2; m < close; ++m) {
            if (t[m].kind == Tk::ident &&
                (unordered_.count(t[m].text) != 0u ||
                 is_unordered_type(t[m]))) {
              report(t[k].line, t[k].col, "det-journal-encode",
                     "journal encoder '" + name +
                         "' iterates unordered container '" + t[m].text +
                         "'");
              break;
            }
          }
        } else if (is_ident(t[k], "reinterpret_cast") ||
                   is_ident(t[k], "uintptr_t") ||
                   is_ident(t[k], "intptr_t")) {
          report(t[k].line, t[k].col, "det-journal-encode",
                 "journal encoder '" + name +
                     "' serializes pointer identity ('" + t[k].text + "')");
        } else if (t[k].kind == Tk::str &&
                   t[k].text.find("%p") != std::string::npos) {
          report(t[k].line, t[k].col, "det-journal-encode",
                 "journal encoder '" + name +
                     "' formats a pointer address (\"%p\")");
        }
      }
    }
  }

  /// Returns the index just past a `sim::Task<...>` (or `Task<...>`) type
  /// starting at i, or i if the tokens don't spell one.
  std::size_t skip_task_type(std::size_t i) const {
    const auto& t = lex_.toks;
    std::size_t j = i;
    if (j + 1 < t.size() && is_ident(t[j], "sim") && is_punct(t[j + 1], "::")) {
      j += 2;
    }
    if (j >= t.size() || !is_ident(t[j], "Task")) return i;
    if (j + 1 >= t.size() || !is_punct(t[j + 1], "<")) return i;
    const std::size_t close = match_angles(t, j + 1);
    return close >= t.size() ? i : close + 1;
  }

  /// Reports coro-ref-param findings for the parameter list [open, close].
  /// Findings are attributed to `name_line` (the declarator) so one allow()
  /// above the signature covers a multi-line parameter list.
  void check_param_list(std::size_t open, std::size_t close,
                        const std::string& name, int name_line,
                        int name_col) {
    const auto& t = lex_.toks;
    // Handler idiom: the RPC dispatch wrapper owns the request shared_ptr
    // and the Envelope for the entire co_await of the handler, so handler
    // signatures (any function taking an rpc::Envelope) are exempt.
    for (std::size_t j = open + 1; j < close; ++j) {
      if (is_ident(t[j], "Envelope")) return;
    }
    // One report per distinct diagnostic per declarator: a signature with
    // three reference parameters is one finding (and one suppression).
    std::set<std::string> messages;
    std::set<std::string> perf_messages;
    // Per-parameter state for perf-large-byvalue: a container type name at
    // the top nesting level, voided when the parameter turns out to be a
    // reference (coro-ref-param's domain) or a pointer.
    std::string byval_container;
    bool param_is_indirect = false;
    const auto flush_param = [&] {
      if (!byval_container.empty() && !param_is_indirect) {
        perf_messages.insert("coroutine '" + name + "' copies a " +
                             byval_container + " into its frame");
      }
      byval_container.clear();
      param_is_indirect = false;
    };
    int angle = 0;
    for (std::size_t j = open + 1; j < close; ++j) {
      if (is_punct(t[j], "<")) ++angle;
      if (is_punct(t[j], ">")) --angle;
      if (angle > 0) continue;
      if (is_punct(t[j], ",")) {
        flush_param();
        continue;
      }
      if (is_punct(t[j], "&") || is_punct(t[j], "&&")) {
        param_is_indirect = true;
        messages.insert("coroutine '" + name +
                        "' takes a reference parameter");
      } else if (is_punct(t[j], "*")) {
        param_is_indirect = true;
      } else if (is_ident(t[j], "string_view") ||
                 (is_ident(t[j], "span") && j + 1 < close &&
                  is_punct(t[j + 1], "<"))) {
        messages.insert("coroutine '" + name + "' takes a view parameter (" +
                        t[j].text + ")");
      } else if (t[j].kind == Tk::ident &&
                 (t[j].text == "vector" || t[j].text == "deque" ||
                  t[j].text == "map" || t[j].text == "unordered_map")) {
        byval_container = t[j].text;
      }
    }
    flush_param();
    for (const std::string& m : messages) {
      report(name_line, name_col, "coro-ref-param", m);
    }
    for (const std::string& m : perf_messages) {
      report(name_line, name_col, "perf-large-byvalue", m);
    }
  }

  void check_task_functions() {
    if (!scope_.in_src) return;
    const auto& t = lex_.toks;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!is_ident(t[i], "Task")) continue;
      if (i > 0 && is_punct(t[i - 1], "::") &&
          !(i >= 2 && is_ident(t[i - 2], "sim"))) {
        continue;  // qualified by something other than sim::
      }
      const std::size_t start = (i >= 2 && is_ident(t[i - 2], "sim")) ? i - 2
                                                                      : i;
      if (start > 0 && is_punct(t[start - 1], "->")) continue;  // lambda ret
      const std::size_t after = skip_task_type(start);
      if (after == start) continue;
      // Declarator: qualified name chain, then '('. Anything else (a Task
      // variable, a template argument, a using-alias) is skipped.
      std::size_t j = after;
      std::string name;
      int name_line = 0;
      int name_col = 1;
      while (j < t.size() &&
             (t[j].kind == Tk::ident || is_punct(t[j], "::"))) {
        if (t[j].kind == Tk::ident) {
          name = t[j].text;
          name_line = t[j].line;
          name_col = t[j].col;
        }
        ++j;
      }
      if (name.empty() || j >= t.size() || !is_punct(t[j], "(")) continue;
      const std::size_t close = match_forward(t, j, "(", ")");
      if (close >= t.size()) continue;
      check_param_list(j, close, name, name_line, name_col);
    }
  }

  /// True when the capture-open bracket at `i` belongs to a lambda passed
  /// directly to Node::serve<...>(...) — stored for the node's lifetime, so
  /// by-ref/this captures cannot outlive the coroutine.
  bool is_serve_argument(std::size_t i) const {
    const auto& t = lex_.toks;
    if (i == 0 || !is_punct(t[i - 1], "(")) return false;
    std::size_t j = i - 2;
    if (j < t.size() && is_punct(t[j], ">")) {
      // walk back over the template argument list
      int depth = 0;
      while (j > 0) {
        if (is_punct(t[j], ">")) ++depth;
        if (is_punct(t[j], "<") && --depth == 0) {
          --j;
          break;
        }
        --j;
      }
    }
    return j < t.size() && is_ident(t[j], "serve");
  }

  void check_lambdas() {
    if (!scope_.in_src) return;
    const auto& t = lex_.toks;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!is_punct(t[i], "[")) continue;
      // Rule out subscripts and [[attributes]].
      if (i > 0 && (t[i - 1].kind == Tk::ident || is_punct(t[i - 1], ")") ||
                    is_punct(t[i - 1], "]"))) {
        continue;
      }
      if (i + 1 < t.size() && is_punct(t[i + 1], "[")) continue;
      const std::size_t close = match_forward(t, i, "[", "]");
      if (close >= t.size()) continue;
      bool ref_capture = false;
      std::string what;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (is_punct(t[j], "&") || is_punct(t[j], "&&")) {
          ref_capture = true;
          what = "by-reference";
          break;
        }
        if (is_ident(t[j], "this") && !(j > i + 1 && is_punct(t[j - 1], "*"))) {
          ref_capture = true;
          what = "[this]";
          break;
        }
      }
      if (!ref_capture) continue;
      // Lambda body: optional (params), specifiers, -> type, then {.
      std::size_t j = close + 1;
      if (j < t.size() && is_punct(t[j], "(")) {
        j = match_forward(t, j, "(", ")");
        if (j >= t.size()) continue;
        ++j;
      }
      while (j < t.size() && !is_punct(t[j], "{") && !is_punct(t[j], ";") &&
             !is_punct(t[j], ")") && !is_punct(t[j], ",")) {
        ++j;
      }
      if (j >= t.size() || !is_punct(t[j], "{")) continue;
      const std::size_t body_close = match_forward(t, j, "{", "}");
      bool coroutine = false;
      for (std::size_t k = j + 1; k < body_close && k < t.size(); ++k) {
        if (is_ident(t[k], "co_await") || is_ident(t[k], "co_return") ||
            is_ident(t[k], "co_yield")) {
          coroutine = true;
          break;
        }
      }
      if (!coroutine) continue;
      if (is_serve_argument(i)) continue;
      report(t[i].line, t[i].col, "coro-lambda-capture",
             "lambda coroutine captures " + what);
    }
  }

  /// par-cross-site-schedule (token level): a schedule_at/schedule_in call
  /// whose callback lambda captures shard state (any capture-list identifier
  /// containing "shard"). Such events must carry a site tag —
  /// schedule_on_site() or schedule_par() — so they execute in the lane that
  /// owns the shard; un-sited they land in whatever lane the caller happens
  /// to run in. The flow pass extends this to whole call chains from
  /// par-tagged roots.
  void check_par_schedules() {
    if (!scope_.in_src) return;
    const auto& t = lex_.toks;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].kind != Tk::ident ||
          (t[i].text != "schedule_at" && t[i].text != "schedule_in")) {
        continue;
      }
      if (!is_punct(t[i + 1], "(")) continue;
      const std::size_t close = match_forward(t, i + 1, "(", ")");
      if (close >= t.size()) continue;
      bool reported = false;
      for (std::size_t j = i + 2; j < close && !reported; ++j) {
        if (!is_punct(t[j], "[")) continue;
        // Rule out subscripts and [[attributes]], as in check_lambdas().
        if (t[j - 1].kind == Tk::ident || is_punct(t[j - 1], ")") ||
            is_punct(t[j - 1], "]")) {
          continue;
        }
        if (j + 1 < t.size() && is_punct(t[j + 1], "[")) continue;
        const std::size_t cap_close = match_forward(t, j, "[", "]");
        if (cap_close >= close) break;
        for (std::size_t k = j + 1; k < cap_close; ++k) {
          if (t[k].kind == Tk::ident &&
              t[k].text.find("shard") != std::string::npos) {
            report(t[i].line, t[i].col, "par-cross-site-schedule",
                   t[i].text + "() lambda captures '" + t[k].text + "'");
            reported = true;
            break;
          }
        }
        j = cap_close;
      }
    }
  }

  /// Brace blocks that open a callable body: `{` preceded by a parameter
  /// list `)` (allowing cv/ref/noexcept specifiers and a trailing return
  /// type in between). Control-flow blocks are excluded by looking at the
  /// keyword before the matching `(`.
  std::vector<std::pair<std::size_t, std::size_t>> callable_bodies() const {
    const auto& t = lex_.toks;
    std::vector<std::pair<std::size_t, std::size_t>> bodies;
    for (std::size_t i = 1; i < t.size(); ++i) {
      if (!is_punct(t[i], "{")) continue;
      // Walk back over specifiers and a trailing return type to the ')'.
      std::size_t p = i - 1;
      while (p > 0 && (t[p].kind == Tk::ident || is_punct(t[p], "::") ||
                       is_punct(t[p], "<") || is_punct(t[p], ">") ||
                       is_punct(t[p], ",") || is_punct(t[p], "->") ||
                       is_punct(t[p], "&") || is_punct(t[p], "&&") ||
                       is_punct(t[p], "*"))) {
        --p;
      }
      if (!is_punct(t[p], ")")) continue;
      // Matching '(' for that ')'.
      int depth = 1;
      std::size_t q = p;
      while (q > 0 && depth > 0) {
        --q;
        if (is_punct(t[q], ")")) ++depth;
        if (is_punct(t[q], "(")) --depth;
      }
      if (depth != 0) continue;
      if (q > 0 && t[q - 1].kind == Tk::ident &&
          (is_ident(t[q - 1], "if") || is_ident(t[q - 1], "for") ||
           is_ident(t[q - 1], "while") || is_ident(t[q - 1], "switch") ||
           is_ident(t[q - 1], "catch"))) {
        continue;  // control block, not a callable body
      }
      const std::size_t close = match_forward(t, i, "{", "}");
      if (close < t.size()) bodies.emplace_back(i, close);
    }
    return bodies;
  }

  void check_view_temps() {
    if (!scope_.in_src) return;
    const auto& t = lex_.toks;
    for (const auto& [open, close] : callable_bodies()) {
      std::vector<std::size_t> awaits;
      for (std::size_t k = open + 1; k < close; ++k) {
        if (is_ident(t[k], "co_await")) awaits.push_back(k);
      }
      if (awaits.empty()) continue;
      for (std::size_t k = open + 1; k + 2 < close; ++k) {
        if (!is_ident(t[k], "string_view") || t[k + 1].kind != Tk::ident ||
            !is_punct(t[k + 2], "=")) {
          continue;
        }
        // Initializer must end with a call: ... ) ;
        std::size_t e = k + 3;
        int depth = 0;
        while (e < close && (depth > 0 || !is_punct(t[e], ";"))) {
          if (is_punct(t[e], "(")) ++depth;
          if (is_punct(t[e], ")")) --depth;
          ++e;
        }
        if (e >= close || e == 0 || !is_punct(t[e - 1], ")")) continue;
        report(t[k].line, t[k].col, "coro-view-temp",
               "string_view '" + t[k + 1].text +
                   "' bound to a call result in a coroutine");
      }
    }
  }

  /// coro-first-await-if: `if (co_await ...)` as the coroutine's first
  /// statement — the exact shape GCC 12 miscompiles by laying the
  /// if-condition temporary out before _Coro_resume_fn in the frame
  /// (observed on the PR 8 reconciliation coroutine; tools/frame_scan
  /// guards the binary side of the same invariant).
  void check_first_await_if() {
    if (!scope_.in_src && !scope_.in_tests && !scope_.in_bench) return;
    const auto& t = lex_.toks;
    for (const auto& [open, close] : callable_bodies()) {
      (void)close;
      if (open + 2 >= t.size() || !is_ident(t[open + 1], "if") ||
          !is_punct(t[open + 2], "(")) {
        continue;
      }
      const std::size_t cond_close = match_forward(t, open + 2, "(", ")");
      for (std::size_t k = open + 3; k < cond_close; ++k) {
        if (is_ident(t[k], "co_await")) {
          report(t[open + 1].line, t[open + 1].col, "coro-first-await-if",
                 "co_await inside the if-condition of the coroutine's first "
                 "statement");
          break;
        }
      }
    }
  }

  void check_obs_guards() {
    if (path_starts_with(path_, "src/obs/")) return;
    const auto& t = lex_.toks;
    for (std::size_t i = 0; i + 5 < t.size(); ++i) {
      if (!is_ident(t[i], "obs") || !is_punct(t[i + 1], "::")) continue;
      if (!is_ident(t[i + 2], "sink") && !is_ident(t[i + 2], "metrics")) {
        continue;
      }
      if (is_punct(t[i + 3], "(") && is_punct(t[i + 4], ")") &&
          is_punct(t[i + 5], "->")) {
        report(t[i].line, t[i].col, "obs-unguarded",
               "obs::" + t[i + 2].text + "() dereferenced without a guard");
      }
    }
  }

  void check_using_namespace() {
    if (!scope_.is_header) return;
    const auto& t = lex_.toks;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (is_ident(t[i], "using") && is_ident(t[i + 1], "namespace")) {
        report(t[i].line, t[i].col, "hyg-using-namespace",
               "using-directive in a header");
      }
    }
  }

  std::string path_;
  Scope scope_;
  IncludeResolver* inc_;
  LexOut lex_;
  std::set<std::string> unordered_;
  std::vector<Finding> findings_;
  int suppressed_{0};
};

bool read_file(const std::filesystem::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool lintable(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

// ----------------------------------------------------------------- public

const std::vector<RuleDesc>& rules() { return rule_table(); }

bool rule_known(std::string_view id) { return rule_desc(id) != nullptr; }

const RuleDesc* rule_desc(std::string_view id) {
  for (const RuleDesc& r : rule_table()) {
    if (id == r.id) return &r;
  }
  return nullptr;
}

bool finding_less(const Finding& a, const Finding& b) {
  if (a.path != b.path) return a.path < b.path;
  if (a.line != b.line) return a.line < b.line;
  if (a.col != b.col) return a.col < b.col;
  if (a.rule != b.rule) return a.rule < b.rule;
  if (a.message != b.message) return a.message < b.message;
  return a.chain < b.chain;
}

IncludeResolver::IncludeResolver(std::string root) : root_(std::move(root)) {}

const IncludeResolver::Entry* IncludeResolver::resolve(
    const std::string& include) {
  auto it = cache_.find(include);
  if (it != cache_.end()) return &it->second;
  if (in_flight_.count(include) != 0u) return nullptr;  // include cycle
  namespace fs = std::filesystem;
  fs::path resolved;
  std::string rel;
  for (const char* base : {"src", "", "tests", "bench"}) {
    fs::path cand = fs::path(root_) / base / include;
    if (fs::exists(cand)) {
      resolved = cand;
      rel = base[0] == '\0' ? include
                            : (fs::path(base) / include).generic_string();
      break;
    }
  }
  if (resolved.empty()) return nullptr;
  std::string text;
  if (!read_file(resolved, &text)) return nullptr;
  in_flight_.insert(include);
  LexOut lexed = lex(include, text);
  Entry entry;
  entry.paths.insert(rel);
  harvest_unordered(lexed.toks, entry.ids);
  for (const auto& in : lexed.includes) {
    if (in.angled) continue;
    if (const Entry* nested = resolve(in.name)) {
      entry.ids.insert(nested->ids.begin(), nested->ids.end());
      entry.paths.insert(nested->paths.begin(), nested->paths.end());
    }
  }
  in_flight_.erase(include);
  return &cache_.emplace(include, std::move(entry)).first->second;
}

const std::set<std::string>* IncludeResolver::unordered_idents(
    const std::string& include) {
  const Entry* e = resolve(include);
  return e == nullptr ? nullptr : &e->ids;
}

const std::set<std::string>* IncludeResolver::closure(
    const std::string& include) {
  const Entry* e = resolve(include);
  return e == nullptr ? nullptr : &e->paths;
}

std::vector<Finding> scan_source(std::string_view path, std::string_view text,
                                 ScanStats* stats, IncludeResolver* includes) {
  Scanner s(path, lex(std::string(path), text), includes);
  return s.scan(stats);
}

bool run(const RunOptions& opts, RunResult* result, std::string* error) {
  namespace fs = std::filesystem;
  const fs::path root(opts.root);
  if (!fs::exists(root)) {
    *error = "root does not exist: " + opts.root;
    return false;
  }
  // Collect files deterministically: explicit files first, directory walks
  // in lexicographic order.
  std::vector<std::string> files;
  for (const std::string& p : opts.paths) {
    const fs::path abs = root / p;
    if (fs::is_directory(abs)) {
      std::vector<std::string> dir_files;
      for (auto it = fs::recursive_directory_iterator(abs);
           it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && lintable(it->path())) {
          dir_files.push_back(
              fs::relative(it->path(), root).generic_string());
        }
      }
      std::sort(dir_files.begin(), dir_files.end());
      files.insert(files.end(), dir_files.begin(), dir_files.end());
    } else if (fs::is_regular_file(abs)) {
      files.push_back(fs::path(p).generic_string());
    } else {
      *error = "no such file or directory: " + p;
      return false;
    }
  }

  // Pass-1 cache: load, validate per file by content + include-closure
  // hashes, rewrite in full afterwards. The cache only short-circuits
  // lexing/scanning/indexing — pass 2 always runs on the linked index, so
  // cached and cold runs emit identical bytes.
  const bool caching = !opts.cache_dir.empty() && !opts.no_cache;
  const fs::path cache_path = fs::path(opts.cache_dir) / "index.tsv";
  std::map<std::string, CachedFile> cached;
  if (caching) {
    std::string text;
    if (read_file(cache_path, &text)) {
      std::map<std::string, CachedFile> parsed;
      if (parse_cache(text, &parsed)) cached = std::move(parsed);
    }
  }
  std::map<std::string, std::uint64_t> live_hash;  // rel path -> fnv1a64
  auto hash_of = [&](const std::string& rel) -> std::uint64_t {
    auto it = live_hash.find(rel);
    if (it != live_hash.end()) return it->second;
    std::string text;
    const std::uint64_t h =
        read_file(root / rel, &text) ? fnv1a64(text) : 0;
    live_hash.emplace(rel, h);
    return h;
  };

  IncludeResolver resolver(root.string());
  std::vector<Finding> all;
  std::vector<FileIndex> indices;
  std::vector<CachedFile> next_cache;
  for (const std::string& f : files) {
    std::string text;
    if (!read_file(root / f, &text)) {
      *error = "cannot read: " + f;
      return false;
    }
    const std::uint64_t h = fnv1a64(text);
    live_hash[f] = h;
    const auto it = cached.find(f);
    bool hit = it != cached.end() && it->second.content_hash == h;
    if (hit) {
      for (const auto& [dep, dep_hash] : it->second.deps) {
        if (hash_of(dep) != dep_hash) {
          hit = false;
          break;
        }
      }
    }
    CachedFile entry;
    if (hit) {
      entry = it->second;
      ++result->cache_hits;
    } else {
      entry.path = f;
      entry.content_hash = h;
      LexOut lexed = lex(f, text);
      // Dependency set before the LexOut moves into the scanner.
      std::set<std::string> deps;
      for (const auto& in : lexed.includes) {
        if (in.angled) continue;
        if (const auto* cl = resolver.closure(in.name)) {
          deps.insert(cl->begin(), cl->end());
        }
      }
      Scanner scanner(f, std::move(lexed), &resolver);
      ScanStats stats;
      entry.findings = scanner.scan(&stats);
      entry.suppressed = stats.suppressed;
      // The index needs the same LexOut; re-lex (cheap) rather than teach
      // the scanner to hand its stream back.
      const LexOut lx2 = lex(f, text);
      entry.index = build_index(f, lx2, scanner.unordered_idents());
      for (const std::string& d : deps) {
        if (d != f) entry.deps.emplace_back(d, hash_of(d));
      }
    }
    result->suppressed += entry.suppressed;
    all.insert(all.end(), entry.findings.begin(), entry.findings.end());
    indices.push_back(entry.index);
    ++result->files_scanned;
    if (!opts.cache_dir.empty() && !opts.no_cache) {
      next_cache.push_back(std::move(entry));
    }
  }
  if (caching) {
    std::error_code ec;
    fs::create_directories(fs::path(opts.cache_dir), ec);
    std::ofstream out(cache_path, std::ios::binary);
    if (out) out << serialize_cache(std::move(next_cache));
  }

  // Pass 2: link and run the flow rules.
  FlowResult flow = flow_analyze(link_index(std::move(indices)));
  result->suppressed += flow.suppressed;
  all.insert(all.end(), flow.findings.begin(), flow.findings.end());
  std::sort(all.begin(), all.end(), finding_less);
  all.erase(std::unique(all.begin(), all.end()), all.end());

  // Baseline split (keys ignore the chain: path:line:rule).
  std::set<std::string> baseline_keys;
  if (!opts.baseline_path.empty() && !opts.fix_baseline) {
    std::string text;
    if (read_file(root / opts.baseline_path, &text)) {
      std::vector<std::string> bad;
      for (const Finding& b : parse_baseline(text, &bad)) {
        baseline_keys.insert(b.path + ":" + std::to_string(b.line) + ":" +
                             b.rule);
      }
      for (std::string& b : bad) result->stale.push_back(std::move(b));
    }
  }
  std::set<std::string> live_keys;
  for (Finding& f : all) {
    const std::string key =
        f.path + ":" + std::to_string(f.line) + ":" + f.rule;
    live_keys.insert(key);
    if (baseline_keys.count(key) != 0u) {
      result->baselined.push_back(std::move(f));
    } else {
      result->fresh.push_back(std::move(f));
    }
  }
  for (const std::string& key : baseline_keys) {
    if (live_keys.count(key) == 0u) result->stale.push_back(key);
  }

  if (opts.fix_baseline && !opts.baseline_path.empty()) {
    std::vector<Finding> everything = result->fresh;
    everything.insert(everything.end(), result->baselined.begin(),
                      result->baselined.end());
    std::ofstream out(root / opts.baseline_path, std::ios::binary);
    if (!out) {
      *error = "cannot write baseline: " + opts.baseline_path;
      return false;
    }
    out << format_baseline(std::move(everything));
  }
  return true;
}

std::string format_baseline(std::vector<Finding> findings) {
  std::sort(findings.begin(), findings.end(), finding_less);
  std::string out =
      "# bslint baseline v2 — grandfathered findings "
      "(path:line:rule[|call chain]).\n"
      "# Regenerate with `bslint --fix-baseline`; entries are sorted so the\n"
      "# file never produces noisy diffs. Prefer fixing or inline allow()\n"
      "# comments with a rationale over baselining new findings.\n";
  for (const Finding& f : findings) {
    out += f.path + ":" + std::to_string(f.line) + ":" + f.rule;
    if (!f.chain.empty()) out += "|" + f.chain;
    out += "\n";
  }
  return out;
}

std::vector<Finding> parse_baseline(std::string_view text,
                                    std::vector<std::string>* bad) {
  std::vector<Finding> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t e = text.find('\n', pos);
    if (e == std::string_view::npos) e = text.size();
    std::string line(text.substr(pos, e - pos));
    pos = e + 1;
    trim(line);
    if (line.empty() || line.front() == '#') continue;
    // Optional `|call chain` suffix, then path:line:rule split on the
    // *last* two colons (paths may not contain colons in this repo, but be
    // precise anyway).
    std::string chain;
    if (const auto bar = line.find('|'); bar != std::string::npos) {
      chain = line.substr(bar + 1);
      line.erase(bar);
      trim(line);
    }
    const auto c2 = line.rfind(':');
    const auto c1 = c2 == std::string::npos ? std::string::npos
                                            : line.rfind(':', c2 - 1);
    bool ok = c1 != std::string::npos && c1 > 0 && c2 > c1 + 1;
    Finding f;
    f.chain = std::move(chain);
    if (ok) {
      f.path = line.substr(0, c1);
      f.rule = line.substr(c2 + 1);
      try {
        f.line = std::stoi(line.substr(c1 + 1, c2 - c1 - 1));
      } catch (...) {
        ok = false;
      }
      if (!rule_known(f.rule)) ok = false;
    }
    if (ok) {
      out.push_back(std::move(f));
    } else if (bad != nullptr) {
      bad->push_back("unparseable baseline line: " + line);
    }
  }
  return out;
}

int lint_main(int argc, const char* const* argv, std::ostream& out,
              std::ostream& err) {
  RunOptions opts;
  bool quiet = false;
  bool list_rules = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        err << "bslint: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--root") {
      const char* v = need_value("--root");
      if (v == nullptr) return 2;
      opts.root = v;
    } else if (a == "--baseline") {
      const char* v = need_value("--baseline");
      if (v == nullptr) return 2;
      opts.baseline_path = v;
    } else if (a == "--cache-dir") {
      const char* v = need_value("--cache-dir");
      if (v == nullptr) return 2;
      opts.cache_dir = v;
    } else if (a == "--no-cache") {
      opts.no_cache = true;
    } else if (a == "--fix-baseline") {
      opts.fix_baseline = true;
    } else if (a == "--format" || a.rfind("--format=", 0) == 0) {
      std::string_view v;
      if (a == "--format") {
        const char* val = need_value("--format");
        if (val == nullptr) return 2;
        v = val;
      } else {
        v = a.substr(9);
      }
      if (v == "json") {
        json = true;
      } else if (v == "gcc") {
        json = false;
      } else {
        err << "bslint: unknown format '" << v << "' (gcc, json)\n";
        return 2;
      }
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a == "--list-rules") {
      list_rules = true;
    } else if (a == "--help" || a == "-h") {
      out << "usage: bslint [--root DIR] [--baseline FILE] [--fix-baseline]\n"
             "              [--format=gcc|json] [--cache-dir DIR] "
             "[--no-cache]\n"
             "              [--list-rules] [--quiet] PATH...\n"
             "Paths are files or directories relative to --root.\n"
             "Exit: 0 clean, 1 findings, 2 usage/I-O error.\n";
      return 0;
    } else if (!a.empty() && a.front() == '-') {
      err << "bslint: unknown flag " << a << "\n";
      return 2;
    } else {
      opts.paths.emplace_back(a);
    }
  }
  if (list_rules) {
    for (const RuleDesc& r : rules()) {
      out << r.family << "  " << r.id << "  — " << r.summary << "\n";
    }
    return 0;
  }
  if (opts.paths.empty()) {
    err << "bslint: no paths given (try --help)\n";
    return 2;
  }
  if (opts.fix_baseline && opts.baseline_path.empty()) {
    err << "bslint: --fix-baseline needs --baseline FILE\n";
    return 2;
  }
  RunResult res;
  std::string error;
  if (!run(opts, &res, &error)) {
    err << "bslint: " << error << "\n";
    return 2;
  }
  if (json) {
    out << "{\n  \"findings\": [";
    bool first = true;
    for (const Finding& f : res.fresh) {
      out << (first ? "" : ",") << "\n    {\"path\": \""
          << json_escape(f.path) << "\", \"line\": " << f.line
          << ", \"col\": " << f.col << ", \"rule\": \""
          << json_escape(f.rule) << "\", \"message\": \""
          << json_escape(f.message) << "\", \"chain\": \""
          << json_escape(f.chain) << "\"}";
      first = false;
    }
    out << (first ? "" : "\n  ") << "],\n  \"stale_baseline\": [";
    first = true;
    for (const std::string& s : res.stale) {
      out << (first ? "" : ",") << "\n    \"" << json_escape(s) << "\"";
      first = false;
    }
    out << (first ? "" : "\n  ") << "],\n"
        << "  \"baselined\": " << res.baselined.size() << ",\n"
        << "  \"suppressed\": " << res.suppressed << ",\n"
        << "  \"files_scanned\": " << res.files_scanned << ",\n"
        << "  \"cache_hits\": " << res.cache_hits << ",\n"
        << "  \"baseline_rewritten\": "
        << (opts.fix_baseline ? "true" : "false") << "\n}\n";
    if (opts.fix_baseline) return 0;
    return res.fresh.empty() ? 0 : 1;
  }
  if (!quiet) {
    for (const Finding& f : res.fresh) {
      out << f.path << ":" << f.line << ":" << f.col << ": warning: "
          << f.message << " [" << f.rule << "]\n";
      if (!f.chain.empty()) {
        out << "    note: call chain: " << f.chain << "\n";
      }
      if (const RuleDesc* r = rule_desc(f.rule)) {
        out << "    hint: " << r->hint << "\n";
      }
    }
    for (const std::string& s : res.stale) {
      out << "note: stale baseline entry: " << s << "\n";
    }
  }
  if (opts.fix_baseline) {
    out << "bslint: baseline rewritten ("
        << res.fresh.size() + res.baselined.size() << " entries)\n";
    return 0;
  }
  out << "bslint: " << res.fresh.size() << " finding(s), "
      << res.baselined.size() << " baselined, " << res.suppressed
      << " suppressed, " << res.files_scanned << " file(s)\n";
  return res.fresh.empty() ? 0 : 1;
}

}  // namespace bs::lint
