#include "bslint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>

namespace bs::lint {

namespace {

// ------------------------------------------------------------------- rules

constexpr const char* kSortedSnapshotHint =
    "iterate a sorted key snapshot or use std::map/std::set when order can "
    "reach traces, digests, RPC responses or event scheduling";

const std::vector<RuleDesc>& rule_table() {
  static const std::vector<RuleDesc> kRules = {
      {"det-wallclock", 'D',
       "wall-clock time source in simulated code",
       "derive every timestamp from sim.now() / SimTime; wall clocks make "
       "replays diverge"},
      {"det-random", 'D',
       "non-seeded randomness source",
       "draw from the seeded bs::Rng (split() for per-actor streams); "
       "std::random_device / rand() are unreplayable"},
      {"det-thread", 'D',
       "host threading primitive in sim-facing code",
       "the simulation is single-threaded by design; move host-parallel "
       "code out of src/ or allow-file with a rationale"},
      {"det-unordered-iter", 'D',
       "iteration over an unordered container",
       kSortedSnapshotHint},
      {"det-journal-encode", 'D',
       "journal/checkpoint encoder depends on unordered iteration or "
       "pointer identity",
       "replayed records must be byte-identical across runs: encode from a "
       "sorted snapshot and serialize values — never hash-table iteration "
       "order, reinterpret_cast bytes or pointer addresses"},
      {"det-custody-order", 'D',
       "hash-ordered container in the replication plane",
       "src/repl serializes container walks straight onto the wire (custody "
       "bundles, version-map replies, checkpoint records), so its state must "
       "live in ordered containers (std::map/std::set/deque) — hash-table "
       "order would make custody traffic and chaos digests diverge across "
       "replays"},
      {"coro-ref-param", 'C',
       "reference/view parameter on a Task-returning coroutine",
       "coroutine parameters are copied into the frame only if by-value; a "
       "reference/string_view/span dangles when the caller's full-expression "
       "ends before the final co_await — pass by value or allow() with the "
       "lifetime argument"},
      {"coro-lambda-capture", 'C',
       "by-reference or [this] capture on a lambda coroutine",
       "captures live in the lambda object, not the coroutine frame; if the "
       "lambda dies while suspended the capture dangles — capture by value, "
       "pass state as parameters, or keep the lambda alive (e.g. stored "
       "handler) and allow() with that rationale"},
      {"coro-view-temp", 'C',
       "string_view bound to a call result inside a coroutine",
       "string_view does not extend temporary lifetime; materialize a "
       "std::string (or bind to a stable lvalue) before suspending"},
      {"perf-large-byvalue", 'P',
       "container passed by value into a coroutine frame",
       "a by-value container parameter is deep-copied into the frame when "
       "the caller passes an lvalue; share the batch as "
       "shared_ptr<const ...> (copy-free fan-out), or allow() with proof "
       "that every caller moves"},
      {"par-cross-site-schedule", 'P',
       "un-sited schedule of a lambda capturing shard state",
       "an event touching a site shard must go through schedule_on_site() "
       "or schedule_par() so it executes in the owning site's lane; a bare "
       "schedule_at/schedule_in runs it in the *current* lane, breaking the "
       "site-purity contract the windowed stepper depends on — or allow() "
       "with the argument for why the state is lane-local"},
      {"obs-unguarded", 'O',
       "unguarded dereference of the observability hook",
       "use `if (auto* ts = obs::sink()) { ... }` (same for obs::metrics()) "
       "so BS_TRACE=OFF folds the plane out and the enabled path is one "
       "predicted branch"},
      {"hyg-iostream", 'H',
       "<iostream> outside viz/, examples/ or tools/",
       "library code reports through Result/log/obs; stream I/O belongs to "
       "the rendering and tooling layers"},
      {"hyg-using-namespace", 'H',
       "using-directive at header scope",
       "headers must not inject namespaces into every includer; qualify or "
       "move the directive into a .cpp"},
      {"hyg-bare-allow", 'H',
       "suppression without a rationale",
       "write `// bslint: allow(rule): why this is safe` — the rationale is "
       "the reviewable artifact"},
      {"hyg-bad-allow", 'H',
       "suppression naming an unknown rule",
       "check `bslint --list-rules` for valid ids"},
  };
  return kRules;
}

// --------------------------------------------------------------- tokenizer

enum class Tk : std::uint8_t { ident, punct, num, str, chr, pp };

struct Tok {
  Tk kind;
  std::string text;
  int line;
};

struct Suppression {
  std::set<std::string> line_rules;  // filled per line below
};

struct LexOut {
  std::vector<Tok> toks;
  // lines carrying at least one code token (not comment/blank)
  std::set<int> code_lines;
  // line -> rules allowed on that line and the next code line
  std::map<int, std::set<std::string>> allow;
  std::set<std::string> allow_file;
  // parse problems found in suppression comments: (line, rule-id, bad?)
  std::vector<Finding> comment_findings;
  // raw #include targets: (line, header-name, angled?)
  struct Include {
    int line;
    std::string name;
    bool angled;
  };
  std::vector<Include> includes;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

void trim(std::string& s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.erase(s.begin());
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.pop_back();
  }
}

/// Parses a `bslint:` suppression comment body. Grammar:
///   bslint: allow(rule[, rule...])[: rationale]
///   bslint: allow-file(rule[, rule...])[: rationale]
void parse_suppression(const std::string& path, std::string body, int line,
                       LexOut& out) {
  const auto pos = body.find("bslint:");
  if (pos == std::string::npos) return;
  body.erase(0, pos + 7);
  trim(body);
  bool file_scope = false;
  if (body.rfind("allow-file", 0) == 0) {
    file_scope = true;
    body.erase(0, 10);
  } else if (body.rfind("allow", 0) == 0) {
    body.erase(0, 5);
  } else {
    out.comment_findings.push_back(
        {path, line, "hyg-bad-allow",
         "malformed bslint comment (expected allow(...) or allow-file(...))"});
    return;
  }
  trim(body);
  if (body.empty() || body.front() != '(') {
    out.comment_findings.push_back(
        {path, line, "hyg-bad-allow", "missing rule list after allow"});
    return;
  }
  const auto close = body.find(')');
  if (close == std::string::npos) {
    out.comment_findings.push_back(
        {path, line, "hyg-bad-allow", "unterminated rule list"});
    return;
  }
  std::string list = body.substr(1, close - 1);
  std::string rest = body.substr(close + 1);
  trim(rest);
  // Split the rule list on commas.
  std::vector<std::string> ids;
  std::string cur;
  for (char c : list) {
    if (c == ',') {
      ids.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  ids.push_back(cur);
  bool any_valid = false;
  for (std::string& id : ids) {
    trim(id);
    if (id.empty()) continue;
    if (!rule_known(id)) {
      out.comment_findings.push_back(
          {path, line, "hyg-bad-allow", "unknown rule '" + id + "'"});
      continue;
    }
    any_valid = true;
    if (file_scope) {
      out.allow_file.insert(id);
    } else {
      out.allow[line].insert(id);
    }
  }
  if (ids.size() == 1 && ids.front().empty()) {
    out.comment_findings.push_back(
        {path, line, "hyg-bad-allow", "empty rule list"});
    return;
  }
  // Rationale: non-empty text after `): `.
  std::string rationale = rest;
  if (!rationale.empty() && rationale.front() == ':') rationale.erase(0, 1);
  trim(rationale);
  if (any_valid && rationale.empty()) {
    out.comment_findings.push_back(
        {path, line, "hyg-bare-allow", "suppression has no rationale"});
  }
}

LexOut lex(const std::string& path, std::string_view src) {
  LexOut out;
  std::size_t i = 0;
  const std::size_t n = src.size();
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the newline
  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? src[i + k] : '\0';
  };
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      at_line_start = true;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      std::size_t e = i;
      while (e < n && src[e] != '\n') ++e;
      parse_suppression(path, std::string(src.substr(i + 2, e - i - 2)), line,
                        out);
      i = e;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      std::size_t e = i + 2;
      const int start_line = line;
      while (e + 1 < n && !(src[e] == '*' && src[e + 1] == '/')) {
        if (src[e] == '\n') ++line;
        ++e;
      }
      parse_suppression(path, std::string(src.substr(i + 2, e - i - 2)),
                        start_line, out);
      i = e + 2;
      continue;
    }
    if (c == '#' && at_line_start) {
      // Preprocessor logical line (with \-continuations). Not tokenized as
      // code; include targets are extracted for the header rules.
      std::string text;
      while (i < n) {
        if (src[i] == '\\' && peek(1) == '\n') {
          i += 2;
          ++line;
          continue;
        }
        if (src[i] == '\n') break;
        text += src[i++];
      }
      const int pp_line = line;
      std::size_t p = 1;
      while (p < text.size() &&
             std::isspace(static_cast<unsigned char>(text[p]))) {
        ++p;
      }
      if (text.compare(p, 7, "include") == 0) {
        p += 7;
        while (p < text.size() &&
               std::isspace(static_cast<unsigned char>(text[p]))) {
          ++p;
        }
        if (p < text.size() && (text[p] == '<' || text[p] == '"')) {
          const bool angled = text[p] == '<';
          const char closer = angled ? '>' : '"';
          const auto e = text.find(closer, p + 1);
          if (e != std::string::npos) {
            out.includes.push_back(
                {pp_line, text.substr(p + 1, e - p - 1), angled});
          }
        }
      }
      out.code_lines.insert(pp_line);
      out.toks.push_back({Tk::pp, std::move(text), pp_line});
      at_line_start = true;  // the newline is still pending
      continue;
    }
    at_line_start = false;
    if (c == 'R' && peek(1) == '"') {
      // Raw string literal R"delim( ... )delim"
      std::size_t d = i + 2;
      std::string delim;
      while (d < n && src[d] != '(') delim += src[d++];
      const std::string closer = ")" + delim + "\"";
      const auto e = src.find(closer, d);
      const std::size_t stop = e == std::string_view::npos
                                   ? n
                                   : e + closer.size();
      for (std::size_t k = i; k < stop; ++k) {
        if (src[k] == '\n') ++line;
      }
      out.toks.push_back({Tk::str, "", line});
      i = stop;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char q = c;
      std::size_t e = i + 1;
      while (e < n && src[e] != q) {
        if (src[e] == '\\') ++e;
        if (src[e] == '\n') ++line;  // unterminated tolerance
        ++e;
      }
      // String contents are kept: det-journal-encode greps literals for
      // pointer format specifiers.
      out.toks.push_back({q == '"' ? Tk::str : Tk::chr,
                          std::string(src.substr(i, e + 1 - i)), line});
      i = e + 1;
      continue;
    }
    if (ident_start(c)) {
      std::size_t e = i;
      while (e < n && ident_char(src[e])) ++e;
      out.toks.push_back({Tk::ident, std::string(src.substr(i, e - i)), line});
      i = e;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t e = i;
      while (e < n && (ident_char(src[e]) || src[e] == '.' ||
                       ((src[e] == '+' || src[e] == '-') && e > i &&
                        (src[e - 1] == 'e' || src[e - 1] == 'E')))) {
        ++e;
      }
      out.toks.push_back({Tk::num, std::string(src.substr(i, e - i)), line});
      i = e;
      continue;
    }
    // Punctuation; only the pairs the rules care about are fused.
    if ((c == ':' && peek(1) == ':') || (c == '-' && peek(1) == '>') ||
        (c == '&' && peek(1) == '&')) {
      out.toks.push_back({Tk::punct, std::string(src.substr(i, 2)), line});
      i += 2;
      continue;
    }
    out.toks.push_back({Tk::punct, std::string(1, c), line});
    ++i;
  }
  for (const Tok& t : out.toks) out.code_lines.insert(t.line);
  return out;
}

// ------------------------------------------------------------ token helpers

/// Index of the matching closer for the opener at `open` (e.g. '(' -> ')').
/// Returns toks.size() when unbalanced.
std::size_t match_forward(const std::vector<Tok>& t, std::size_t open,
                          const char* o, const char* c) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].kind != Tk::punct) continue;
    if (t[i].text == o) ++depth;
    if (t[i].text == c && --depth == 0) return i;
  }
  return t.size();
}

/// Matches template angle brackets starting at `open` (which must be `<`).
/// Treats `(`/`)` nesting opaquely; `;` and `{` abort (not a template list).
std::size_t match_angles(const std::vector<Tok>& t, std::size_t open) {
  int depth = 0;
  int parens = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].kind != Tk::punct) continue;
    const std::string& s = t[i].text;
    if (s == "(") ++parens;
    if (s == ")") --parens;
    if (parens > 0) continue;
    if (s == "<") ++depth;
    if (s == ">" && --depth == 0) return i;
    if (s == ";" || s == "{") break;
  }
  return t.size();
}

bool is_punct(const Tok& t, const char* s) {
  return t.kind == Tk::punct && t.text == s;
}
bool is_ident(const Tok& t, const char* s) {
  return t.kind == Tk::ident && t.text == s;
}

// ----------------------------------------------------------- path predicates

bool starts_with(std::string_view s, std::string_view p) {
  return s.substr(0, p.size()) == p;
}

struct Scope {
  bool in_src;
  bool in_tests;
  bool in_bench;
  bool is_header;
};

Scope scope_of(std::string_view path) {
  Scope s{};
  s.in_src = starts_with(path, "src/");
  s.in_tests = starts_with(path, "tests/");
  s.in_bench = starts_with(path, "bench/");
  s.is_header = path.size() > 4 && (path.substr(path.size() - 4) == ".hpp" ||
                                    path.substr(path.size() - 2) == ".h");
  return s;
}

// ---------------------------------------------------------------- harvesting

constexpr const char* kUnorderedTypes[] = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

bool is_unordered_type(const Tok& t) {
  if (t.kind != Tk::ident) return false;
  for (const char* u : kUnorderedTypes) {
    if (t.text == u) return true;
  }
  return false;
}

/// Collects identifiers declared with an unordered container type:
///   std::unordered_map<K, V> name ...   (members, locals, parameters)
void harvest_unordered(const std::vector<Tok>& t, std::set<std::string>& out) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_unordered_type(t[i])) continue;
    std::size_t j = i + 1;
    if (j >= t.size() || !is_punct(t[j], "<")) continue;
    j = match_angles(t, j);
    if (j >= t.size()) continue;
    ++j;  // past '>'
    while (j < t.size() &&
           (is_punct(t[j], "&") || is_punct(t[j], "*") ||
            is_punct(t[j], "&&") || is_ident(t[j], "const"))) {
      ++j;
    }
    if (j < t.size() && t[j].kind == Tk::ident) out.insert(t[j].text);
  }
}

// ------------------------------------------------------------- the scanner

class Scanner {
 public:
  Scanner(std::string_view path, std::string_view text, IncludeResolver* inc)
      : path_(path), scope_(scope_of(path)), inc_(inc),
        lex_(lex(path_, text)) {}

  std::vector<Finding> scan(ScanStats* stats) {
    harvest();
    check_includes();
    check_idents();
    check_unordered_loops();
    check_custody_order();
    check_journal_encoders();
    check_task_functions();
    check_lambdas();
    check_par_schedules();
    check_view_temps();
    check_obs_guards();
    check_using_namespace();
    for (const Finding& f : lex_.comment_findings) report_raw(f);
    std::sort(findings_.begin(), findings_.end(), finding_less);
    findings_.erase(std::unique(findings_.begin(), findings_.end()),
                    findings_.end());
    if (stats != nullptr) stats->suppressed += suppressed_;
    return std::move(findings_);
  }

 private:
  void report(int line, const char* rule, std::string message) {
    report_raw({path_, line, rule, std::move(message)});
  }

  void report_raw(Finding f) {
    if (lex_.allow_file.count(f.rule) != 0u) {
      ++suppressed_;
      return;
    }
    // An allow() comment covers its own line and the next *code* line, so
    // it can trail the offending line, sit right above it, or sit above it
    // at the end of a multi-line comment block.
    auto allowed_at = [&](int l) {
      auto it = lex_.allow.find(l);
      return it != lex_.allow.end() && it->second.count(f.rule) != 0u;
    };
    int l = f.line;
    if (allowed_at(l)) {
      ++suppressed_;
      return;
    }
    --l;  // walk up through comment/blank lines, then one code line
    while (l > 0 && lex_.code_lines.count(l) == 0u) {
      if (allowed_at(l)) {
        ++suppressed_;
        return;
      }
      --l;
    }
    if (l > 0 && allowed_at(l)) {
      ++suppressed_;
      return;
    }
    findings_.push_back(std::move(f));
  }

  // Unordered-declared identifiers: this file plus its project includes.
  void harvest() {
    harvest_unordered(lex_.toks, unordered_);
    if (inc_ == nullptr) return;
    for (const auto& in : lex_.includes) {
      if (in.angled) continue;  // system headers: out of project scope
      if (const auto* ids = inc_->unordered_idents(in.name)) {
        unordered_.insert(ids->begin(), ids->end());
      }
    }
  }

  void check_includes() {
    static const std::set<std::string> kThreadHeaders = {
        "thread", "mutex", "shared_mutex", "atomic", "condition_variable",
        "future", "stop_token", "semaphore", "barrier", "latch"};
    static const std::set<std::string> kClockHeaders = {"chrono", "ctime",
                                                        "sys/time.h"};
    for (const auto& in : lex_.includes) {
      if (!in.angled) continue;
      if (scope_.in_src && kThreadHeaders.count(in.name) != 0u) {
        report(in.line, "det-thread", "#include <" + in.name + ">");
      }
      if ((scope_.in_src || scope_.in_tests || scope_.in_bench) &&
          kClockHeaders.count(in.name) != 0u) {
        report(in.line, "det-wallclock", "#include <" + in.name + ">");
      }
      if ((scope_.in_src || scope_.in_tests || scope_.in_bench) &&
          in.name == "random") {
        report(in.line, "det-random", "#include <random>");
      }
      const bool iostream_ok = starts_with(path_, "src/viz/") ||
                               starts_with(path_, "examples/") ||
                               starts_with(path_, "tools/");
      if (in.name == "iostream" && !iostream_ok) {
        report(in.line, "hyg-iostream", "#include <iostream>");
      }
    }
  }

  void check_idents() {
    if (!scope_.in_src && !scope_.in_tests && !scope_.in_bench) return;
    static const std::map<std::string, const char*> kBannedIdents = {
        {"system_clock", "det-wallclock"},
        {"steady_clock", "det-wallclock"},
        {"high_resolution_clock", "det-wallclock"},
        {"gettimeofday", "det-wallclock"},
        {"clock_gettime", "det-wallclock"},
        {"timespec_get", "det-wallclock"},
        {"localtime", "det-wallclock"},
        {"gmtime", "det-wallclock"},
        {"mktime", "det-wallclock"},
        {"random_device", "det-random"},
        {"mt19937", "det-random"},
        {"mt19937_64", "det-random"},
        {"minstd_rand", "det-random"},
        {"default_random_engine", "det-random"},
        {"srand", "det-random"},
        {"random_shuffle", "det-random"},
    };
    const auto& t = lex_.toks;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Tk::ident) continue;
      auto it = kBannedIdents.find(t[i].text);
      if (it != kBannedIdents.end()) {
        report(t[i].line, it->second, "use of '" + t[i].text + "'");
        continue;
      }
      if (scope_.in_src && is_ident(t[i], "this_thread")) {
        report(t[i].line, "det-thread", "use of std::this_thread");
        continue;
      }
      // `time(...)`/`rand()` only when clearly the C library call: either
      // std::-qualified or a bare call (not a member / project function).
      if ((t[i].text == "time" || t[i].text == "rand") && i + 1 < t.size() &&
          is_punct(t[i + 1], "(")) {
        const bool member =
            i > 0 && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->"));
        const bool std_qualified =
            i >= 2 && is_punct(t[i - 1], "::") && is_ident(t[i - 2], "std");
        const bool other_qualified = i > 0 && is_punct(t[i - 1], "::");
        const bool nullary_or_null =
            i + 2 < t.size() &&
            (is_punct(t[i + 2], ")") || is_ident(t[i + 2], "nullptr") ||
             is_ident(t[i + 2], "NULL") ||
             (t[i + 2].kind == Tk::num && t[i + 2].text == "0"));
        if (std_qualified || (!member && !other_qualified && nullary_or_null)) {
          report(t[i].line,
                 t[i].text == "time" ? "det-wallclock" : "det-random",
                 "call to '" + t[i].text + "()'");
        }
      }
    }
  }

  void check_unordered_loops() {
    if (!scope_.in_src) return;
    const auto& t = lex_.toks;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (!is_ident(t[i], "for") || !is_punct(t[i + 1], "(")) continue;
      const std::size_t close = match_forward(t, i + 1, "(", ")");
      for (std::size_t j = i + 2; j < close; ++j) {
        if (t[j].kind == Tk::ident && unordered_.count(t[j].text) != 0u) {
          report(t[i].line, "det-unordered-iter",
                 "loop over unordered container '" + t[j].text + "'");
          break;
        }
      }
    }
  }

  /// det-custody-order: the replication plane encodes container walks into
  /// RPC payloads, journal records and chaos digests, and a token scanner
  /// cannot prove any particular walk never reaches the wire — so under
  /// src/repl the *declaration* of a hash-ordered container is the finding,
  /// not just its iteration. Iterator walks over unordered members pulled in
  /// from included headers are flagged too (det-unordered-iter only sees
  /// range-style `for` loops).
  void check_custody_order() {
    if (!starts_with(path_, "src/repl/")) return;
    const auto& t = lex_.toks;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (is_unordered_type(t[i])) {
        report(t[i].line, "det-custody-order",
               "replication-plane state declared as '" + t[i].text + "'");
        continue;
      }
      if (t[i].kind == Tk::ident && unordered_.count(t[i].text) != 0u &&
          i + 3 < t.size() &&
          (is_punct(t[i + 1], ".") || is_punct(t[i + 1], "->")) &&
          (is_ident(t[i + 2], "begin") || is_ident(t[i + 2], "cbegin")) &&
          is_punct(t[i + 3], "(")) {
        report(t[i].line, "det-custody-order",
               "iterator walk over unordered container '" + t[i].text + "'");
      }
    }
  }

  /// det-journal-encode: inside the body of any function whose declarator
  /// identifier contains "encode" (encode_checkpoint, encode_record, ...),
  /// flag (a) loops ranging over an unordered container — the record
  /// sequence would serialize hash-table layout and diverge on replay — and
  /// (b) pointer-identity serialization (reinterpret_cast, uintptr_t,
  /// "%p"), which bakes unreplayable addresses into durable records.
  void check_journal_encoders() {
    if (!scope_.in_src) return;
    const auto& t = lex_.toks;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].kind != Tk::ident ||
          t[i].text.find("encode") == std::string::npos) {
        continue;
      }
      if (!is_punct(t[i + 1], "(")) continue;
      const std::size_t params_close = match_forward(t, i + 1, "(", ")");
      if (params_close >= t.size()) continue;
      // Definitions only: walk past const/noexcept/trailing-return to `{`.
      // Call sites and declarations hit `)`, `,` or `;` first and are
      // skipped.
      std::size_t j = params_close + 1;
      while (j < t.size() && !is_punct(t[j], "{") && !is_punct(t[j], ";") &&
             !is_punct(t[j], ",") && !is_punct(t[j], ")") &&
             !is_punct(t[j], "=")) {
        ++j;
      }
      if (j >= t.size() || !is_punct(t[j], "{")) continue;
      const std::size_t body_close = match_forward(t, j, "{", "}");
      const std::string& name = t[i].text;
      for (std::size_t k = j + 1; k < body_close && k < t.size(); ++k) {
        if (is_ident(t[k], "for") && k + 1 < t.size() &&
            is_punct(t[k + 1], "(")) {
          const std::size_t close = match_forward(t, k + 1, "(", ")");
          for (std::size_t m = k + 2; m < close; ++m) {
            if (t[m].kind == Tk::ident &&
                (unordered_.count(t[m].text) != 0u ||
                 is_unordered_type(t[m]))) {
              report(t[k].line, "det-journal-encode",
                     "journal encoder '" + name +
                         "' iterates unordered container '" + t[m].text +
                         "'");
              break;
            }
          }
        } else if (is_ident(t[k], "reinterpret_cast") ||
                   is_ident(t[k], "uintptr_t") ||
                   is_ident(t[k], "intptr_t")) {
          report(t[k].line, "det-journal-encode",
                 "journal encoder '" + name +
                     "' serializes pointer identity ('" + t[k].text + "')");
        } else if (t[k].kind == Tk::str &&
                   t[k].text.find("%p") != std::string::npos) {
          report(t[k].line, "det-journal-encode",
                 "journal encoder '" + name +
                     "' formats a pointer address (\"%p\")");
        }
      }
    }
  }

  /// Returns the index just past a `sim::Task<...>` (or `Task<...>`) type
  /// starting at i, or i if the tokens don't spell one.
  std::size_t skip_task_type(std::size_t i) const {
    const auto& t = lex_.toks;
    std::size_t j = i;
    if (j + 1 < t.size() && is_ident(t[j], "sim") && is_punct(t[j + 1], "::")) {
      j += 2;
    }
    if (j >= t.size() || !is_ident(t[j], "Task")) return i;
    if (j + 1 >= t.size() || !is_punct(t[j + 1], "<")) return i;
    const std::size_t close = match_angles(t, j + 1);
    return close >= t.size() ? i : close + 1;
  }

  /// Reports coro-ref-param findings for the parameter list [open, close].
  /// Findings are attributed to `name_line` (the declarator) so one allow()
  /// above the signature covers a multi-line parameter list.
  void check_param_list(std::size_t open, std::size_t close,
                        const std::string& name, int name_line) {
    const auto& t = lex_.toks;
    // Handler idiom: the RPC dispatch wrapper owns the request shared_ptr
    // and the Envelope for the entire co_await of the handler, so handler
    // signatures (any function taking an rpc::Envelope) are exempt.
    for (std::size_t j = open + 1; j < close; ++j) {
      if (is_ident(t[j], "Envelope")) return;
    }
    // One report per distinct diagnostic per declarator: a signature with
    // three reference parameters is one finding (and one suppression).
    std::set<std::string> messages;
    std::set<std::string> perf_messages;
    // Per-parameter state for perf-large-byvalue: a container type name at
    // the top nesting level, voided when the parameter turns out to be a
    // reference (coro-ref-param's domain) or a pointer.
    std::string byval_container;
    bool param_is_indirect = false;
    const auto flush_param = [&] {
      if (!byval_container.empty() && !param_is_indirect) {
        perf_messages.insert("coroutine '" + name + "' copies a " +
                             byval_container + " into its frame");
      }
      byval_container.clear();
      param_is_indirect = false;
    };
    int angle = 0;
    for (std::size_t j = open + 1; j < close; ++j) {
      if (is_punct(t[j], "<")) ++angle;
      if (is_punct(t[j], ">")) --angle;
      if (angle > 0) continue;
      if (is_punct(t[j], ",")) {
        flush_param();
        continue;
      }
      if (is_punct(t[j], "&") || is_punct(t[j], "&&")) {
        param_is_indirect = true;
        messages.insert("coroutine '" + name +
                        "' takes a reference parameter");
      } else if (is_punct(t[j], "*")) {
        param_is_indirect = true;
      } else if (is_ident(t[j], "string_view") ||
                 (is_ident(t[j], "span") && j + 1 < close &&
                  is_punct(t[j + 1], "<"))) {
        messages.insert("coroutine '" + name + "' takes a view parameter (" +
                        t[j].text + ")");
      } else if (t[j].kind == Tk::ident &&
                 (t[j].text == "vector" || t[j].text == "deque" ||
                  t[j].text == "map" || t[j].text == "unordered_map")) {
        byval_container = t[j].text;
      }
    }
    flush_param();
    for (const std::string& m : messages) {
      report(name_line, "coro-ref-param", m);
    }
    for (const std::string& m : perf_messages) {
      report(name_line, "perf-large-byvalue", m);
    }
  }

  void check_task_functions() {
    if (!scope_.in_src) return;
    const auto& t = lex_.toks;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!is_ident(t[i], "Task")) continue;
      if (i > 0 && is_punct(t[i - 1], "::") &&
          !(i >= 2 && is_ident(t[i - 2], "sim"))) {
        continue;  // qualified by something other than sim::
      }
      const std::size_t start = (i >= 2 && is_ident(t[i - 2], "sim")) ? i - 2
                                                                      : i;
      if (start > 0 && is_punct(t[start - 1], "->")) continue;  // lambda ret
      const std::size_t after = skip_task_type(start);
      if (after == start) continue;
      // Declarator: qualified name chain, then '('. Anything else (a Task
      // variable, a template argument, a using-alias) is skipped.
      std::size_t j = after;
      std::string name;
      int name_line = 0;
      while (j < t.size() &&
             (t[j].kind == Tk::ident || is_punct(t[j], "::"))) {
        if (t[j].kind == Tk::ident) {
          name = t[j].text;
          name_line = t[j].line;
        }
        ++j;
      }
      if (name.empty() || j >= t.size() || !is_punct(t[j], "(")) continue;
      const std::size_t close = match_forward(t, j, "(", ")");
      if (close >= t.size()) continue;
      check_param_list(j, close, name, name_line);
    }
  }

  /// True when the capture-open bracket at `i` belongs to a lambda passed
  /// directly to Node::serve<...>(...) — stored for the node's lifetime, so
  /// by-ref/this captures cannot outlive the coroutine.
  bool is_serve_argument(std::size_t i) const {
    const auto& t = lex_.toks;
    if (i == 0 || !is_punct(t[i - 1], "(")) return false;
    std::size_t j = i - 2;
    if (j < t.size() && is_punct(t[j], ">")) {
      // walk back over the template argument list
      int depth = 0;
      while (j > 0) {
        if (is_punct(t[j], ">")) ++depth;
        if (is_punct(t[j], "<") && --depth == 0) {
          --j;
          break;
        }
        --j;
      }
    }
    return j < t.size() && is_ident(t[j], "serve");
  }

  void check_lambdas() {
    if (!scope_.in_src) return;
    const auto& t = lex_.toks;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!is_punct(t[i], "[")) continue;
      // Rule out subscripts and [[attributes]].
      if (i > 0 && (t[i - 1].kind == Tk::ident || is_punct(t[i - 1], ")") ||
                    is_punct(t[i - 1], "]"))) {
        continue;
      }
      if (i + 1 < t.size() && is_punct(t[i + 1], "[")) continue;
      const std::size_t close = match_forward(t, i, "[", "]");
      if (close >= t.size()) continue;
      bool ref_capture = false;
      std::string what;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (is_punct(t[j], "&") || is_punct(t[j], "&&")) {
          ref_capture = true;
          what = "by-reference";
          break;
        }
        if (is_ident(t[j], "this") && !(j > i + 1 && is_punct(t[j - 1], "*"))) {
          ref_capture = true;
          what = "[this]";
          break;
        }
      }
      if (!ref_capture) continue;
      // Lambda body: optional (params), specifiers, -> type, then {.
      std::size_t j = close + 1;
      if (j < t.size() && is_punct(t[j], "(")) {
        j = match_forward(t, j, "(", ")");
        if (j >= t.size()) continue;
        ++j;
      }
      while (j < t.size() && !is_punct(t[j], "{") && !is_punct(t[j], ";") &&
             !is_punct(t[j], ")") && !is_punct(t[j], ",")) {
        ++j;
      }
      if (j >= t.size() || !is_punct(t[j], "{")) continue;
      const std::size_t body_close = match_forward(t, j, "{", "}");
      bool coroutine = false;
      for (std::size_t k = j + 1; k < body_close && k < t.size(); ++k) {
        if (is_ident(t[k], "co_await") || is_ident(t[k], "co_return") ||
            is_ident(t[k], "co_yield")) {
          coroutine = true;
          break;
        }
      }
      if (!coroutine) continue;
      if (is_serve_argument(i)) continue;
      report(t[i].line, "coro-lambda-capture",
             "lambda coroutine captures " + what);
    }
  }

  /// par-cross-site-schedule: a schedule_at/schedule_in call whose callback
  /// lambda captures shard state (any capture-list identifier containing
  /// "shard"). Such events must carry a site tag — schedule_on_site() or
  /// schedule_par() — so they execute in the lane that owns the shard;
  /// un-sited they land in whatever lane the caller happens to run in.
  void check_par_schedules() {
    if (!scope_.in_src) return;
    const auto& t = lex_.toks;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].kind != Tk::ident ||
          (t[i].text != "schedule_at" && t[i].text != "schedule_in")) {
        continue;
      }
      if (!is_punct(t[i + 1], "(")) continue;
      const std::size_t close = match_forward(t, i + 1, "(", ")");
      if (close >= t.size()) continue;
      bool reported = false;
      for (std::size_t j = i + 2; j < close && !reported; ++j) {
        if (!is_punct(t[j], "[")) continue;
        // Rule out subscripts and [[attributes]], as in check_lambdas().
        if (t[j - 1].kind == Tk::ident || is_punct(t[j - 1], ")") ||
            is_punct(t[j - 1], "]")) {
          continue;
        }
        if (j + 1 < t.size() && is_punct(t[j + 1], "[")) continue;
        const std::size_t cap_close = match_forward(t, j, "[", "]");
        if (cap_close >= close) break;
        for (std::size_t k = j + 1; k < cap_close; ++k) {
          if (t[k].kind == Tk::ident &&
              t[k].text.find("shard") != std::string::npos) {
            report(t[i].line, "par-cross-site-schedule",
                   t[i].text + "() lambda captures '" + t[k].text + "'");
            reported = true;
            break;
          }
        }
        j = cap_close;
      }
    }
  }

  void check_view_temps() {
    if (!scope_.in_src) return;
    const auto& t = lex_.toks;
    // Enclosing-function map: for each token, the body range of the nearest
    // function-shaped brace block (opened right after ')' or a specifier).
    std::vector<std::pair<std::size_t, std::size_t>> bodies;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!is_punct(t[i], "{") || i == 0) continue;
      std::size_t p = i - 1;
      while (p > 0 &&
             (is_ident(t[p], "override") || is_ident(t[p], "noexcept") ||
              is_ident(t[p], "const") || is_ident(t[p], "mutable") ||
              is_ident(t[p], "final"))) {
        --p;
      }
      if (!is_punct(t[p], ")")) continue;
      const std::size_t close = match_forward(t, i, "{", "}");
      if (close < t.size()) bodies.emplace_back(i, close);
    }
    for (const auto& [open, close] : bodies) {
      std::vector<std::size_t> awaits;
      for (std::size_t k = open + 1; k < close; ++k) {
        if (is_ident(t[k], "co_await")) awaits.push_back(k);
      }
      if (awaits.empty()) continue;
      for (std::size_t k = open + 1; k + 2 < close; ++k) {
        if (!is_ident(t[k], "string_view") || t[k + 1].kind != Tk::ident ||
            !is_punct(t[k + 2], "=")) {
          continue;
        }
        // Initializer must end with a call: ... ) ;
        std::size_t e = k + 3;
        int depth = 0;
        while (e < close && (depth > 0 || !is_punct(t[e], ";"))) {
          if (is_punct(t[e], "(")) ++depth;
          if (is_punct(t[e], ")")) --depth;
          ++e;
        }
        if (e >= close || e == 0 || !is_punct(t[e - 1], ")")) continue;
        report(t[k].line, "coro-view-temp",
               "string_view '" + t[k + 1].text +
                   "' bound to a call result in a coroutine");
      }
    }
  }

  void check_obs_guards() {
    if (starts_with(path_, "src/obs/")) return;
    const auto& t = lex_.toks;
    for (std::size_t i = 0; i + 5 < t.size(); ++i) {
      if (!is_ident(t[i], "obs") || !is_punct(t[i + 1], "::")) continue;
      if (!is_ident(t[i + 2], "sink") && !is_ident(t[i + 2], "metrics")) {
        continue;
      }
      if (is_punct(t[i + 3], "(") && is_punct(t[i + 4], ")") &&
          is_punct(t[i + 5], "->")) {
        report(t[i].line, "obs-unguarded",
               "obs::" + t[i + 2].text + "() dereferenced without a guard");
      }
    }
  }

  void check_using_namespace() {
    if (!scope_.is_header) return;
    const auto& t = lex_.toks;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (is_ident(t[i], "using") && is_ident(t[i + 1], "namespace")) {
        report(t[i].line, "hyg-using-namespace",
               "using-directive in a header");
      }
    }
  }

  std::string path_;
  Scope scope_;
  IncludeResolver* inc_;
  LexOut lex_;
  std::set<std::string> unordered_;
  std::vector<Finding> findings_;
  int suppressed_{0};
};

bool read_file(const std::filesystem::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool lintable(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

}  // namespace

// ----------------------------------------------------------------- public

const std::vector<RuleDesc>& rules() { return rule_table(); }

bool rule_known(std::string_view id) { return rule_desc(id) != nullptr; }

const RuleDesc* rule_desc(std::string_view id) {
  for (const RuleDesc& r : rule_table()) {
    if (id == r.id) return &r;
  }
  return nullptr;
}

bool finding_less(const Finding& a, const Finding& b) {
  if (a.path != b.path) return a.path < b.path;
  if (a.line != b.line) return a.line < b.line;
  if (a.rule != b.rule) return a.rule < b.rule;
  return a.message < b.message;
}

IncludeResolver::IncludeResolver(std::string root) : root_(std::move(root)) {}

const std::set<std::string>* IncludeResolver::unordered_idents(
    const std::string& include) {
  auto it = cache_.find(include);
  if (it != cache_.end()) return &it->second;
  if (in_flight_.count(include) != 0u) return nullptr;  // include cycle
  namespace fs = std::filesystem;
  fs::path resolved;
  for (const char* base : {"src", "", "tests", "bench"}) {
    fs::path cand = fs::path(root_) / base / include;
    if (fs::exists(cand)) {
      resolved = cand;
      break;
    }
  }
  if (resolved.empty()) return nullptr;
  std::string text;
  if (!read_file(resolved, &text)) return nullptr;
  in_flight_.insert(include);
  LexOut lexed = lex(include, text);
  std::set<std::string> ids;
  harvest_unordered(lexed.toks, ids);
  for (const auto& in : lexed.includes) {
    if (in.angled) continue;
    if (const auto* nested = unordered_idents(in.name)) {
      ids.insert(nested->begin(), nested->end());
    }
  }
  in_flight_.erase(include);
  return &cache_.emplace(include, std::move(ids)).first->second;
}

std::vector<Finding> scan_source(std::string_view path, std::string_view text,
                                 ScanStats* stats, IncludeResolver* includes) {
  Scanner s(path, text, includes);
  return s.scan(stats);
}

bool run(const RunOptions& opts, RunResult* result, std::string* error) {
  namespace fs = std::filesystem;
  const fs::path root(opts.root);
  if (!fs::exists(root)) {
    *error = "root does not exist: " + opts.root;
    return false;
  }
  // Collect files deterministically: explicit files first, directory walks
  // in lexicographic order.
  std::vector<std::string> files;
  for (const std::string& p : opts.paths) {
    const fs::path abs = root / p;
    if (fs::is_directory(abs)) {
      std::vector<std::string> dir_files;
      for (auto it = fs::recursive_directory_iterator(abs);
           it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && lintable(it->path())) {
          dir_files.push_back(
              fs::relative(it->path(), root).generic_string());
        }
      }
      std::sort(dir_files.begin(), dir_files.end());
      files.insert(files.end(), dir_files.begin(), dir_files.end());
    } else if (fs::is_regular_file(abs)) {
      files.push_back(fs::path(p).generic_string());
    } else {
      *error = "no such file or directory: " + p;
      return false;
    }
  }

  IncludeResolver resolver(root.string());
  std::vector<Finding> all;
  for (const std::string& f : files) {
    std::string text;
    if (!read_file(root / f, &text)) {
      *error = "cannot read: " + f;
      return false;
    }
    ScanStats stats;
    auto found = scan_source(f, text, &stats, &resolver);
    result->suppressed += stats.suppressed;
    all.insert(all.end(), found.begin(), found.end());
    ++result->files_scanned;
  }
  std::sort(all.begin(), all.end(), finding_less);

  // Baseline split.
  std::set<std::string> baseline_keys;
  if (!opts.baseline_path.empty() && !opts.fix_baseline) {
    std::string text;
    if (read_file(root / opts.baseline_path, &text)) {
      std::vector<std::string> bad;
      for (const Finding& b : parse_baseline(text, &bad)) {
        baseline_keys.insert(b.path + ":" + std::to_string(b.line) + ":" +
                             b.rule);
      }
      for (std::string& b : bad) result->stale.push_back(std::move(b));
    }
  }
  std::set<std::string> live_keys;
  for (Finding& f : all) {
    const std::string key =
        f.path + ":" + std::to_string(f.line) + ":" + f.rule;
    live_keys.insert(key);
    if (baseline_keys.count(key) != 0u) {
      result->baselined.push_back(std::move(f));
    } else {
      result->fresh.push_back(std::move(f));
    }
  }
  for (const std::string& key : baseline_keys) {
    if (live_keys.count(key) == 0u) result->stale.push_back(key);
  }

  if (opts.fix_baseline && !opts.baseline_path.empty()) {
    std::vector<Finding> everything = result->fresh;
    everything.insert(everything.end(), result->baselined.begin(),
                      result->baselined.end());
    std::ofstream out(root / opts.baseline_path, std::ios::binary);
    if (!out) {
      *error = "cannot write baseline: " + opts.baseline_path;
      return false;
    }
    out << format_baseline(std::move(everything));
  }
  return true;
}

std::string format_baseline(std::vector<Finding> findings) {
  std::sort(findings.begin(), findings.end(), finding_less);
  std::string out =
      "# bslint baseline v1 — grandfathered findings (path:line:rule).\n"
      "# Regenerate with `bslint --fix-baseline`; entries are sorted so the\n"
      "# file never produces noisy diffs. Prefer fixing or inline allow()\n"
      "# comments with a rationale over baselining new findings.\n";
  for (const Finding& f : findings) {
    out += f.path + ":" + std::to_string(f.line) + ":" + f.rule + "\n";
  }
  return out;
}

std::vector<Finding> parse_baseline(std::string_view text,
                                    std::vector<std::string>* bad) {
  std::vector<Finding> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t e = text.find('\n', pos);
    if (e == std::string_view::npos) e = text.size();
    std::string line(text.substr(pos, e - pos));
    pos = e + 1;
    trim(line);
    if (line.empty() || line.front() == '#') continue;
    // path:line:rule — split on the *last* two colons (paths may not
    // contain colons in this repo, but be precise anyway).
    const auto c2 = line.rfind(':');
    const auto c1 = c2 == std::string::npos ? std::string::npos
                                            : line.rfind(':', c2 - 1);
    bool ok = c1 != std::string::npos && c1 > 0 && c2 > c1 + 1;
    Finding f;
    if (ok) {
      f.path = line.substr(0, c1);
      f.rule = line.substr(c2 + 1);
      try {
        f.line = std::stoi(line.substr(c1 + 1, c2 - c1 - 1));
      } catch (...) {
        ok = false;
      }
      if (!rule_known(f.rule)) ok = false;
    }
    if (ok) {
      out.push_back(std::move(f));
    } else if (bad != nullptr) {
      bad->push_back("unparseable baseline line: " + line);
    }
  }
  return out;
}

int lint_main(int argc, const char* const* argv, std::ostream& out,
              std::ostream& err) {
  RunOptions opts;
  bool quiet = false;
  bool list_rules = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        err << "bslint: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--root") {
      const char* v = need_value("--root");
      if (v == nullptr) return 2;
      opts.root = v;
    } else if (a == "--baseline") {
      const char* v = need_value("--baseline");
      if (v == nullptr) return 2;
      opts.baseline_path = v;
    } else if (a == "--fix-baseline") {
      opts.fix_baseline = true;
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a == "--list-rules") {
      list_rules = true;
    } else if (a == "--help" || a == "-h") {
      out << "usage: bslint [--root DIR] [--baseline FILE] [--fix-baseline]\n"
             "              [--list-rules] [--quiet] PATH...\n"
             "Paths are files or directories relative to --root.\n"
             "Exit: 0 clean, 1 findings, 2 usage/I-O error.\n";
      return 0;
    } else if (!a.empty() && a.front() == '-') {
      err << "bslint: unknown flag " << a << "\n";
      return 2;
    } else {
      opts.paths.emplace_back(a);
    }
  }
  if (list_rules) {
    for (const RuleDesc& r : rules()) {
      out << r.family << "  " << r.id << "  — " << r.summary << "\n";
    }
    return 0;
  }
  if (opts.paths.empty()) {
    err << "bslint: no paths given (try --help)\n";
    return 2;
  }
  if (opts.fix_baseline && opts.baseline_path.empty()) {
    err << "bslint: --fix-baseline needs --baseline FILE\n";
    return 2;
  }
  RunResult res;
  std::string error;
  if (!run(opts, &res, &error)) {
    err << "bslint: " << error << "\n";
    return 2;
  }
  if (!quiet) {
    for (const Finding& f : res.fresh) {
      out << f.path << ":" << f.line << ": [" << f.rule << "] " << f.message
          << "\n";
      if (const RuleDesc* r = rule_desc(f.rule)) {
        out << "    hint: " << r->hint << "\n";
      }
    }
    for (const std::string& s : res.stale) {
      out << "note: stale baseline entry: " << s << "\n";
    }
  }
  if (opts.fix_baseline) {
    out << "bslint: baseline rewritten ("
        << res.fresh.size() + res.baselined.size() << " entries)\n";
    return 0;
  }
  out << "bslint: " << res.fresh.size() << " finding(s), "
      << res.baselined.size() << " baselined, " << res.suppressed
      << " suppressed, " << res.files_scanned << " file(s)\n";
  return res.fresh.empty() ? 0 : 1;
}

}  // namespace bs::lint
