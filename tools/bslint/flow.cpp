#include "flow.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <tuple>

namespace bs::lint {

namespace {

bool name_has(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

/// Siting barriers for the par flow: a chain that routes through one of
/// these executes in the owning site's lane, which is exactly the contract
/// par-cross-site-schedule verifies — so traversal stops there.
bool is_barrier_call(const std::string& name) {
  return name == "schedule_on_site" || name == "schedule_par" ||
         name == "par_schedule_site";
}

bool is_par_root(const ProjectIndex& pi, const FuncDef& fd) {
  if (fd.par_root) return true;
  if (fd.name != "operator()") return false;
  for (const std::string& t : pi.par_callables) {
    const std::string suffix = t + "::operator()";
    if (fd.qname == suffix) return true;
    if (fd.qname.size() > suffix.size() + 2 &&
        fd.qname.compare(fd.qname.size() - suffix.size() - 2, 2, "::") == 0 &&
        fd.qname.compare(fd.qname.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
      return true;
    }
  }
  return false;
}

struct FlowRuleCfg {
  const char* rule;
  std::vector<FactKind> kinds;
  bool include_root_facts;  ///< report depth-0 facts (par only: the direct
                            ///< token rules own depth 0 everywhere else)
  bool stop_at_barriers;
};

bool wants(const FlowRuleCfg& cfg, FactKind k) {
  return std::find(cfg.kinds.begin(), cfg.kinds.end(), k) != cfg.kinds.end();
}

std::string rule_message(const std::string& rule, const FuncDef& root,
                         const std::string& detail) {
  if (rule == "det-journal-encode") {
    return "journal encoder '" + root.qname + "' transitively reaches " +
           detail;
  }
  if (rule == "par-cross-site-schedule") {
    return "par-tagged '" + root.qname + "' reaches un-sited " + detail;
  }
  return "call chain from '" + root.qname + "' reaches " + detail;
}

/// One candidate flow finding before per-sink deduplication.
struct Candidate {
  Finding finding;
  std::size_t chain_len{0};
  bool suppressed{false};
};

bool candidate_better(const Candidate& a, const Candidate& b) {
  if (a.chain_len != b.chain_len) return a.chain_len < b.chain_len;
  if (a.finding.chain != b.finding.chain) {
    return a.finding.chain < b.finding.chain;
  }
  return finding_less(a.finding, b.finding);
}

void run_reachability(const ProjectIndex& pi, const FlowRuleCfg& cfg,
                      const std::vector<FuncRef>& roots, FlowResult* out) {
  // sink key: (path, line, col, detail) — one report per offending token,
  // whatever the number of roots that reach it.
  std::map<std::tuple<std::string, int, int, std::string>,
           std::vector<Candidate>>
      per_sink;
  for (const FuncRef root_ref : roots) {
    const FuncDef& root = pi.at(root_ref);
    const FileIndex& root_file = pi.file_of(root_ref);
    std::map<FuncRef, FuncRef> parent;
    std::map<FuncRef, std::pair<int, int>> via;  // call site in the parent
    std::deque<FuncRef> queue{root_ref};
    std::map<FuncRef, std::size_t> depth{{root_ref, 0}};
    while (!queue.empty()) {
      const FuncRef cur = queue.front();
      queue.pop_front();
      const FuncDef& fd = pi.at(cur);
      const std::size_t d = depth[cur];
      // Facts at this node.
      if (d > 0 || cfg.include_root_facts) {
        for (const Fact& fact : fd.facts) {
          if (!wants(cfg, fact.kind)) continue;
          // Chain root() -> ... -> node(), then the offending token.
          std::vector<std::string> names;
          FuncRef walk = cur;
          while (true) {
            names.push_back(pi.at(walk).name + "()");
            auto it = parent.find(walk);
            if (it == parent.end()) break;
            walk = it->second;
          }
          std::reverse(names.begin(), names.end());
          std::string chain;
          for (const std::string& n : names) {
            if (!chain.empty()) chain += " -> ";
            chain += n;
          }
          chain += " -> " + fact.detail;
          Candidate cand;
          cand.chain_len = names.size();
          cand.finding.path = root_file.path;
          cand.finding.rule = cfg.rule;
          cand.finding.message = rule_message(cfg.rule, root, fact.detail);
          cand.finding.chain = chain;
          if (d == 0) {
            cand.finding.line = fact.line;
            cand.finding.col = fact.col;
          } else {
            // First edge out of the root: climb to the depth-1 node.
            FuncRef hop = cur;
            while (parent.find(hop) != parent.end() &&
                   !(parent.at(hop) == root_ref)) {
              hop = parent.at(hop);
            }
            const auto [l, c] = via.at(hop);
            cand.finding.line = l;
            cand.finding.col = c;
          }
          cand.suppressed =
              root_file.allow_file.count(cfg.rule) != 0u ||
              [&] {
                auto it = root_file.allow_cover.find(cand.finding.line);
                return it != root_file.allow_cover.end() &&
                       it->second.count(cfg.rule) != 0u;
              }();
          per_sink[{pi.file_of(cur).path, fact.line, fact.col, fact.detail}]
              .push_back(std::move(cand));
        }
      }
      // Expand edges.
      for (const CallSite& cs : fd.calls) {
        if (cfg.stop_at_barriers && is_barrier_call(cs.name)) continue;
        const auto* cands = pi.candidates(cs.name);
        if (cands == nullptr) continue;  // unknown edge: nothing to widen
        for (const FuncRef next : *cands) {
          if (depth.find(next) != depth.end()) continue;  // cycle/rejoin
          depth[next] = d + 1;
          parent[next] = cur;
          via[next] = {cs.line, cs.col};
          queue.push_back(next);
        }
      }
    }
  }
  for (auto& [key, cands] : per_sink) {
    (void)key;
    std::vector<Candidate> live;
    for (Candidate& c : cands) {
      if (!c.suppressed) live.push_back(std::move(c));
    }
    if (live.empty()) {
      ++out->suppressed;
      continue;
    }
    auto best = std::min_element(live.begin(), live.end(), candidate_better);
    out->findings.push_back(std::move(best->finding));
  }
}

/// coro-ref-escape: temporaries bound to reference/view parameters of
/// Task<>-returning definitions at the call site. Conservative across
/// overloads — if *any* same-named candidate binds the temporary to a
/// reference, the call is flagged (unknown callees are never flagged: there
/// is no parameter shape to check against).
void run_ref_escape(const ProjectIndex& pi, FlowResult* out) {
  std::map<std::tuple<std::string, int, int, std::string>, Finding> dedup;
  int suppressed = 0;
  for (const FileIndex& fi : pi.files) {
    for (const FuncDef& fd : fi.funcs) {
      for (const CallSite& cs : fd.calls) {
        if (cs.direct_await) continue;  // temp outlives the whole co_await
        const auto* cands = pi.candidates(cs.name);
        if (cands == nullptr) continue;
        for (const FuncRef ref : *cands) {
          const FuncDef& cd = pi.at(ref);
          if (!cd.returns_task || cd.takes_envelope) continue;
          const std::size_t n =
              std::min(cd.params.size(), cs.arg_temp.size());
          for (std::size_t k = 0; k < n; ++k) {
            if (!cs.arg_temp[k]) continue;
            if (!cd.params[k].by_ref && !cd.params[k].is_view) continue;
            Finding f;
            f.path = fi.path;
            f.line = cs.line;
            f.col = cs.col;
            f.rule = "coro-ref-escape";
            f.message = "temporary bound to " +
                        std::string(cd.params[k].by_ref ? "reference"
                                                        : "view") +
                        " parameter " + std::to_string(k + 1) +
                        " of coroutine '" + cd.qname + "'";
            f.chain = fd.name + "() -> " + cd.name + "()";
            const bool allow =
                fi.allow_file.count(f.rule) != 0u || [&] {
                  auto it = fi.allow_cover.find(f.line);
                  return it != fi.allow_cover.end() &&
                         it->second.count(f.rule) != 0u;
                }();
            auto key = std::make_tuple(f.path, f.line, f.col, f.message);
            if (allow) {
              if (dedup.find(key) == dedup.end()) ++suppressed;
              continue;
            }
            dedup.emplace(std::move(key), std::move(f));
          }
        }
      }
    }
  }
  out->suppressed += suppressed;
  for (auto& [key, f] : dedup) {
    (void)key;
    out->findings.push_back(std::move(f));
  }
}

}  // namespace

FlowResult flow_analyze(const ProjectIndex& pi) {
  FlowResult out;

  std::vector<FuncRef> sim_roots;
  std::vector<FuncRef> encoder_roots;
  std::vector<FuncRef> par_roots;
  for (std::size_t f = 0; f < pi.files.size(); ++f) {
    for (std::size_t g = 0; g < pi.files[f].funcs.size(); ++g) {
      const FuncDef& fd = pi.files[f].funcs[g];
      const FuncRef ref{f, g};
      if (fd.returns_task) sim_roots.push_back(ref);
      if (name_has(fd.name, "encode") || name_has(fd.name, "checkpoint")) {
        encoder_roots.push_back(ref);
      }
      if (is_par_root(pi, fd)) par_roots.push_back(ref);
    }
  }

  run_reachability(pi,
                   {"det-wallclock", {FactKind::wallclock}, false, false},
                   sim_roots, &out);
  run_reachability(pi, {"det-random", {FactKind::random}, false, false},
                   sim_roots, &out);
  run_reachability(
      pi, {"det-unordered-iter", {FactKind::unordered_iter}, false, false},
      sim_roots, &out);
  run_reachability(pi,
                   {"det-journal-encode",
                    {FactKind::wallclock, FactKind::random,
                     FactKind::unordered_iter, FactKind::ptr_identity},
                    false,
                    false},
                   encoder_roots, &out);
  run_reachability(
      pi,
      {"par-cross-site-schedule", {FactKind::unsited_schedule}, true, true},
      par_roots, &out);
  run_ref_escape(pi, &out);

  std::sort(out.findings.begin(), out.findings.end(), finding_less);
  out.findings.erase(
      std::unique(out.findings.begin(), out.findings.end()),
      out.findings.end());
  return out;
}

}  // namespace bs::lint
