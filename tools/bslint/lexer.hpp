// bslint lexer — the shared token stream both analysis passes consume.
//
// Pass 1 (tools/bslint/index.cpp) parses the tokens of every file into a
// lightweight symbol index; the token-level rule engine in bslint.cpp walks
// the same stream for per-file rules. Keeping one lexer guarantees the two
// passes agree on line/column attribution and on suppression coverage.
//
// Beyond plain tokenization this layer owns the `bslint:` comment grammar:
//   // bslint: allow(rule[, rule...]): rationale       (line scope)
//   // bslint: allow-file(rule[, rule...]): rationale  (file scope)
//   // bslint: par-root: rationale                     (marks the next
//                 function definition as a par-tagged flow root)
// and resolves line-scoped suppressions into an explicit coverage map
// (`allow_cover`): an allow comment covers its own line and the next *code*
// line, so the rule engine and the cross-TU flow pass share one membership
// test instead of re-walking comment/blank gaps.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "bslint.hpp"

namespace bs::lint {

enum class Tk : std::uint8_t { ident, punct, num, str, chr, pp };

struct Tok {
  Tk kind;
  std::string text;
  int line;
  int col;  ///< 1-based byte column of the token start
};

struct LexOut {
  std::vector<Tok> toks;
  // lines carrying at least one code token (not comment/blank)
  std::set<int> code_lines;
  // line -> rules allowed on that line (raw comment positions)
  std::map<int, std::set<std::string>> allow;
  // resolved coverage: line -> rules suppressed on that exact line
  // (populated by finalize_suppressions: each allow covers itself and the
  // next code line)
  std::map<int, std::set<std::string>> allow_cover;
  std::set<std::string> allow_file;
  // lines carrying a `par-root` marker (covers the next code line, like
  // allow); the index pass tags the function whose declarator it covers
  std::set<int> par_root_lines;
  std::set<int> par_root_cover;
  // parse problems found in suppression comments: (line, rule-id, bad?)
  std::vector<Finding> comment_findings;
  // raw #include targets: (line, header-name, angled?)
  struct Include {
    int line;
    std::string name;
    bool angled;
  };
  std::vector<Include> includes;
};

LexOut lex(const std::string& path, std::string_view src);

// ------------------------------------------------------------ token helpers

bool is_punct(const Tok& t, const char* s);
bool is_ident(const Tok& t, const char* s);
bool keyword_like(const std::string& s);  ///< control/cast/expr keywords

/// Index of the matching closer for the opener at `open` (e.g. '(' -> ')').
/// Returns toks.size() when unbalanced.
std::size_t match_forward(const std::vector<Tok>& t, std::size_t open,
                          const char* o, const char* c);

/// Matches template angle brackets starting at `open` (which must be `<`).
/// Treats `(`/`)` nesting opaquely; `;` and `{` abort (not a template list).
std::size_t match_angles(const std::vector<Tok>& t, std::size_t open);

void trim(std::string& s);

// ----------------------------------------------------------- path predicates

bool path_starts_with(std::string_view s, std::string_view p);

struct Scope {
  bool in_src;
  bool in_tests;
  bool in_bench;
  bool is_header;
};

Scope scope_of(std::string_view path);

// ---------------------------------------------------------------- harvesting

bool is_unordered_type(const Tok& t);

/// Collects identifiers declared with an unordered container type:
///   std::unordered_map<K, V> name ...   (members, locals, parameters)
void harvest_unordered(const std::vector<Tok>& t, std::set<std::string>& out);

/// Shared determinism-token matcher: returns the rule id ("det-wallclock" or
/// "det-random") violated by the identifier token at `i`, or nullptr, and
/// fills *what with the human-readable detail ("use of 'mt19937'"). Both the
/// token-level rule engine and the index fact builder go through this, so a
/// flow finding can never disagree with the direct finding about what counts
/// as a violation.
const char* banned_det_ident(const std::vector<Tok>& t, std::size_t i,
                             std::string* what);

// ------------------------------------------------------- suppression cover

/// Resolves `allow` / `par_root_lines` into `allow_cover` / `par_root_cover`
/// (each marker covers its own line and the next code line after it).
void finalize_suppressions(LexOut& out);

/// Membership test used by the rule engine and the flow pass.
bool line_allows(const LexOut& lx, int line, std::string_view rule);

}  // namespace bs::lint
