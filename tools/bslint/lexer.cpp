#include "lexer.hpp"

#include <cctype>

namespace bs::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

Finding comment_finding(const std::string& path, int line, const char* rule,
                        std::string message) {
  Finding f;
  f.path = path;
  f.line = line;
  f.rule = rule;
  f.message = std::move(message);
  return f;
}

/// Parses a `bslint:` suppression comment body. Grammar:
///   bslint: allow(rule[, rule...])[: rationale]
///   bslint: allow-file(rule[, rule...])[: rationale]
///   bslint: par-root: rationale
void parse_suppression(const std::string& path, std::string body, int line,
                       LexOut& out) {
  const auto pos = body.find("bslint:");
  if (pos == std::string::npos) return;
  body.erase(0, pos + 7);
  trim(body);
  bool file_scope = false;
  if (body.rfind("par-root", 0) == 0) {
    // Flow-root marker: tags the next function definition as a par-tagged
    // reachability root (see flow.cpp). The rationale is mandatory — the
    // tag asserts a scheduling contract the analyzer cannot infer.
    body.erase(0, 8);
    trim(body);
    std::string rationale = body;
    if (!rationale.empty() && rationale.front() == ':') rationale.erase(0, 1);
    trim(rationale);
    out.par_root_lines.insert(line);
    if (rationale.empty()) {
      out.comment_findings.push_back(
        comment_finding(path, line, "hyg-bare-allow", "par-root marker has no rationale"));
    }
    return;
  }
  if (body.rfind("allow-file", 0) == 0) {
    file_scope = true;
    body.erase(0, 10);
  } else if (body.rfind("allow", 0) == 0) {
    body.erase(0, 5);
  } else {
    out.comment_findings.push_back(
        comment_finding(path, line, "hyg-bad-allow", "malformed bslint comment (expected allow(...), allow-file(...) or "
         "par-root)"));
    return;
  }
  trim(body);
  if (body.empty() || body.front() != '(') {
    out.comment_findings.push_back(
        comment_finding(path, line, "hyg-bad-allow", "missing rule list after allow"));
    return;
  }
  const auto close = body.find(')');
  if (close == std::string::npos) {
    out.comment_findings.push_back(
        comment_finding(path, line, "hyg-bad-allow", "unterminated rule list"));
    return;
  }
  std::string list = body.substr(1, close - 1);
  std::string rest = body.substr(close + 1);
  trim(rest);
  // Split the rule list on commas.
  std::vector<std::string> ids;
  std::string cur;
  for (char c : list) {
    if (c == ',') {
      ids.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  ids.push_back(cur);
  bool any_valid = false;
  for (std::string& id : ids) {
    trim(id);
    if (id.empty()) continue;
    if (!rule_known(id)) {
      out.comment_findings.push_back(
        comment_finding(path, line, "hyg-bad-allow", "unknown rule '" + id + "'"));
      continue;
    }
    any_valid = true;
    if (file_scope) {
      out.allow_file.insert(id);
    } else {
      out.allow[line].insert(id);
    }
  }
  if (ids.size() == 1 && ids.front().empty()) {
    out.comment_findings.push_back(
        comment_finding(path, line, "hyg-bad-allow", "empty rule list"));
    return;
  }
  // Rationale: non-empty text after `): `.
  std::string rationale = rest;
  if (!rationale.empty() && rationale.front() == ':') rationale.erase(0, 1);
  trim(rationale);
  if (any_valid && rationale.empty()) {
    out.comment_findings.push_back(
        comment_finding(path, line, "hyg-bare-allow", "suppression has no rationale"));
  }
}

}  // namespace

void trim(std::string& s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.erase(s.begin());
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.pop_back();
  }
}

LexOut lex(const std::string& path, std::string_view src) {
  LexOut out;
  std::size_t i = 0;
  const std::size_t n = src.size();
  int line = 1;
  std::size_t line_start = 0;  // byte index of the current line's first char
  bool at_line_start = true;   // only whitespace seen since the newline
  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? src[i + k] : '\0';
  };
  auto col_of = [&](std::size_t at) -> int {
    return static_cast<int>(at - line_start) + 1;
  };
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      std::size_t e = i;
      while (e < n && src[e] != '\n') ++e;
      parse_suppression(path, std::string(src.substr(i + 2, e - i - 2)), line,
                        out);
      i = e;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      std::size_t e = i + 2;
      const int start_line = line;
      while (e + 1 < n && !(src[e] == '*' && src[e + 1] == '/')) {
        if (src[e] == '\n') {
          ++line;
          line_start = e + 1;
        }
        ++e;
      }
      parse_suppression(path, std::string(src.substr(i + 2, e - i - 2)),
                        start_line, out);
      i = e + 2;
      continue;
    }
    if (c == '#' && at_line_start) {
      // Preprocessor logical line (with \-continuations). Not tokenized as
      // code; include targets are extracted for the header rules.
      const int pp_col = col_of(i);
      std::string text;
      while (i < n) {
        if (src[i] == '\\' && peek(1) == '\n') {
          i += 2;
          ++line;
          line_start = i;
          continue;
        }
        if (src[i] == '\n') break;
        text += src[i++];
      }
      const int pp_line = line;
      std::size_t p = 1;
      while (p < text.size() &&
             std::isspace(static_cast<unsigned char>(text[p]))) {
        ++p;
      }
      if (text.compare(p, 7, "include") == 0) {
        p += 7;
        while (p < text.size() &&
               std::isspace(static_cast<unsigned char>(text[p]))) {
          ++p;
        }
        if (p < text.size() && (text[p] == '<' || text[p] == '"')) {
          const bool angled = text[p] == '<';
          const char closer = angled ? '>' : '"';
          const auto e = text.find(closer, p + 1);
          if (e != std::string::npos) {
            out.includes.push_back(
                {pp_line, text.substr(p + 1, e - p - 1), angled});
          }
        }
      }
      out.code_lines.insert(pp_line);
      out.toks.push_back({Tk::pp, std::move(text), pp_line, pp_col});
      at_line_start = true;  // the newline is still pending
      continue;
    }
    at_line_start = false;
    if (c == 'R' && peek(1) == '"') {
      // Raw string literal R"delim( ... )delim"
      const int start_col = col_of(i);
      const int start_line = line;
      std::size_t d = i + 2;
      std::string delim;
      while (d < n && src[d] != '(') delim += src[d++];
      const std::string closer = ")" + delim + "\"";
      const auto e = src.find(closer, d);
      const std::size_t stop = e == std::string_view::npos
                                   ? n
                                   : e + closer.size();
      for (std::size_t k = i; k < stop; ++k) {
        if (src[k] == '\n') {
          ++line;
          line_start = k + 1;
        }
      }
      out.toks.push_back({Tk::str, "", start_line, start_col});
      i = stop;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char q = c;
      const int start_col = col_of(i);
      const int start_line = line;
      std::size_t e = i + 1;
      while (e < n && src[e] != q) {
        if (src[e] == '\\') ++e;
        if (e < n && src[e] == '\n') {
          ++line;  // unterminated tolerance
          line_start = e + 1;
        }
        ++e;
      }
      // String contents are kept: det-journal-encode greps literals for
      // pointer format specifiers.
      out.toks.push_back({q == '"' ? Tk::str : Tk::chr,
                          std::string(src.substr(i, e + 1 - i)), start_line,
                          start_col});
      i = e + 1;
      continue;
    }
    if (ident_start(c)) {
      std::size_t e = i;
      while (e < n && ident_char(src[e])) ++e;
      out.toks.push_back(
          {Tk::ident, std::string(src.substr(i, e - i)), line, col_of(i)});
      i = e;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t e = i;
      while (e < n && (ident_char(src[e]) || src[e] == '.' ||
                       ((src[e] == '+' || src[e] == '-') && e > i &&
                        (src[e - 1] == 'e' || src[e - 1] == 'E')))) {
        ++e;
      }
      out.toks.push_back(
          {Tk::num, std::string(src.substr(i, e - i)), line, col_of(i)});
      i = e;
      continue;
    }
    // Punctuation; only the pairs the rules care about are fused.
    if ((c == ':' && peek(1) == ':') || (c == '-' && peek(1) == '>') ||
        (c == '&' && peek(1) == '&')) {
      out.toks.push_back(
          {Tk::punct, std::string(src.substr(i, 2)), line, col_of(i)});
      i += 2;
      continue;
    }
    out.toks.push_back({Tk::punct, std::string(1, c), line, col_of(i)});
    ++i;
  }
  for (const Tok& t : out.toks) out.code_lines.insert(t.line);
  finalize_suppressions(out);
  return out;
}

// ------------------------------------------------------------ token helpers

std::size_t match_forward(const std::vector<Tok>& t, std::size_t open,
                          const char* o, const char* c) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].kind != Tk::punct) continue;
    if (t[i].text == o) ++depth;
    if (t[i].text == c && --depth == 0) return i;
  }
  return t.size();
}

std::size_t match_angles(const std::vector<Tok>& t, std::size_t open) {
  int depth = 0;
  int parens = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].kind != Tk::punct) continue;
    const std::string& s = t[i].text;
    if (s == "(") ++parens;
    if (s == ")") --parens;
    if (parens > 0) continue;
    if (s == "<") ++depth;
    if (s == ">" && --depth == 0) return i;
    if (s == ";" || s == "{") break;
  }
  return t.size();
}

bool is_punct(const Tok& t, const char* s) {
  return t.kind == Tk::punct && t.text == s;
}
bool is_ident(const Tok& t, const char* s) {
  return t.kind == Tk::ident && t.text == s;
}

bool keyword_like(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",       "for",        "while",       "switch",       "catch",
      "return",   "sizeof",     "alignof",     "alignas",      "decltype",
      "noexcept", "co_await",   "co_return",   "co_yield",     "new",
      "delete",   "case",       "else",        "do",           "throw",
      "requires", "typeid",     "static_cast", "dynamic_cast", "const_cast",
      "assert",   "defined",    "operator",    "static_assert",
      "reinterpret_cast"};
  return kKeywords.count(s) != 0u;
}

// ----------------------------------------------------------- path predicates

bool path_starts_with(std::string_view s, std::string_view p) {
  return s.substr(0, p.size()) == p;
}

Scope scope_of(std::string_view path) {
  Scope s{};
  s.in_src = path_starts_with(path, "src/");
  s.in_tests = path_starts_with(path, "tests/");
  s.in_bench = path_starts_with(path, "bench/");
  s.is_header = path.size() > 4 && (path.substr(path.size() - 4) == ".hpp" ||
                                    path.substr(path.size() - 2) == ".h");
  return s;
}

// ---------------------------------------------------------------- harvesting

namespace {
constexpr const char* kUnorderedTypes[] = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};
}  // namespace

bool is_unordered_type(const Tok& t) {
  if (t.kind != Tk::ident) return false;
  for (const char* u : kUnorderedTypes) {
    if (t.text == u) return true;
  }
  return false;
}

void harvest_unordered(const std::vector<Tok>& t, std::set<std::string>& out) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_unordered_type(t[i])) continue;
    std::size_t j = i + 1;
    if (j >= t.size() || !is_punct(t[j], "<")) continue;
    j = match_angles(t, j);
    if (j >= t.size()) continue;
    ++j;  // past '>'
    while (j < t.size() &&
           (is_punct(t[j], "&") || is_punct(t[j], "*") ||
            is_punct(t[j], "&&") || is_ident(t[j], "const"))) {
      ++j;
    }
    if (j < t.size() && t[j].kind == Tk::ident) out.insert(t[j].text);
  }
}

const char* banned_det_ident(const std::vector<Tok>& t, std::size_t i,
                             std::string* what) {
  static const std::map<std::string, const char*> kBannedIdents = {
      {"system_clock", "det-wallclock"},
      {"steady_clock", "det-wallclock"},
      {"high_resolution_clock", "det-wallclock"},
      {"gettimeofday", "det-wallclock"},
      {"clock_gettime", "det-wallclock"},
      {"timespec_get", "det-wallclock"},
      {"localtime", "det-wallclock"},
      {"gmtime", "det-wallclock"},
      {"mktime", "det-wallclock"},
      {"random_device", "det-random"},
      {"mt19937", "det-random"},
      {"mt19937_64", "det-random"},
      {"minstd_rand", "det-random"},
      {"default_random_engine", "det-random"},
      {"srand", "det-random"},
      {"random_shuffle", "det-random"},
  };
  if (t[i].kind != Tk::ident) return nullptr;
  auto it = kBannedIdents.find(t[i].text);
  if (it != kBannedIdents.end()) {
    *what = "use of '" + t[i].text + "'";
    return it->second;
  }
  // `time(...)`/`rand()` only when clearly the C library call: either
  // std::-qualified or a bare call (not a member / project function).
  if ((t[i].text == "time" || t[i].text == "rand") && i + 1 < t.size() &&
      is_punct(t[i + 1], "(")) {
    const bool member =
        i > 0 && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->"));
    const bool std_qualified =
        i >= 2 && is_punct(t[i - 1], "::") && is_ident(t[i - 2], "std");
    const bool other_qualified = i > 0 && is_punct(t[i - 1], "::");
    const bool nullary_or_null =
        i + 2 < t.size() &&
        (is_punct(t[i + 2], ")") || is_ident(t[i + 2], "nullptr") ||
         is_ident(t[i + 2], "NULL") ||
         (t[i + 2].kind == Tk::num && t[i + 2].text == "0"));
    if (std_qualified || (!member && !other_qualified && nullary_or_null)) {
      *what = "call to '" + t[i].text + "()'";
      return t[i].text == "time" ? "det-wallclock" : "det-random";
    }
  }
  return nullptr;
}

// ------------------------------------------------------- suppression cover

void finalize_suppressions(LexOut& out) {
  out.allow_cover.clear();
  out.par_root_cover.clear();
  for (const auto& [line, rules] : out.allow) {
    out.allow_cover[line].insert(rules.begin(), rules.end());
    auto next = out.code_lines.upper_bound(line);
    if (next != out.code_lines.end()) {
      out.allow_cover[*next].insert(rules.begin(), rules.end());
    }
  }
  for (int line : out.par_root_lines) {
    out.par_root_cover.insert(line);
    auto next = out.code_lines.upper_bound(line);
    if (next != out.code_lines.end()) out.par_root_cover.insert(*next);
  }
}

bool line_allows(const LexOut& lx, int line, std::string_view rule) {
  if (lx.allow_file.count(std::string(rule)) != 0u) return true;
  auto it = lx.allow_cover.find(line);
  return it != lx.allow_cover.end() &&
         it->second.count(std::string(rule)) != 0u;
}

}  // namespace bs::lint
