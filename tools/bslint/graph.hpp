// bslint call graph — links the per-file indices (index.hpp) into one
// project-wide, over-approximate call graph. Resolution is by unqualified
// name: a call site `foo(...)` gains an edge to *every* indexed definition
// named `foo` (all overloads, all classes — over-approximation by design),
// and to none when the name is external. An unresolved call is an "unknown"
// edge: it cannot be traversed, so it cannot surface a sink hidden behind
// it, but it also can never suppress a finding reached another way.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "index.hpp"

namespace bs::lint {

/// Stable reference to one function: (file position, function position) in
/// the sorted-by-path file list.
struct FuncRef {
  std::size_t file{0};
  std::size_t func{0};

  friend auto operator<=>(const FuncRef&, const FuncRef&) = default;
};

struct ProjectIndex {
  std::vector<FileIndex> files;  ///< sorted by path
  /// Unqualified name -> every definition carrying it, in (file, func)
  /// order — resolution and iteration both stay deterministic.
  std::map<std::string, std::vector<FuncRef>> by_name;
  /// Union of every file's par_callables (type names whose operator() is a
  /// par-tagged root).
  std::set<std::string> par_callables;

  const FuncDef& at(FuncRef r) const { return files[r.file].funcs[r.func]; }
  const FileIndex& file_of(FuncRef r) const { return files[r.file]; }

  /// Candidate definitions for a call-site name; empty = unknown edge.
  const std::vector<FuncRef>* candidates(const std::string& name) const;
};

/// Links per-file indices (sorted by path internally; input order does not
/// matter) into the project graph.
ProjectIndex link_index(std::vector<FileIndex> files);

}  // namespace bs::lint
