// bslint — project-specific static analysis for the deterministic simulation
// substrate. A token-level scanner (no libclang; builds wherever the project
// does) enforcing four rule families over src/, tests/ and bench/:
//
//   D (determinism)       det-wallclock, det-random, det-thread,
//                         det-unordered-iter
//   C (coroutine safety)  coro-ref-param, coro-lambda-capture, coro-view-temp
//   O (observability)     obs-unguarded
//   P (performance)       perf-large-byvalue
//   H (hygiene)           hyg-iostream, hyg-using-namespace, hyg-bare-allow,
//                         hyg-bad-allow
//
// Findings are suppressed per line with
//   // bslint: allow(rule-a, rule-b): rationale
// (the comment covers its own line and the next *code* line — intervening
// comment and blank lines are skipped), or per file with
//   // bslint: allow-file(rule): rationale
// A suppression without a rationale — or naming an unknown rule — is itself
// a finding, so etiquette is machine-checked. Grandfathered findings live in
// a checked-in baseline (path:line:rule, sorted); `--fix-baseline`
// regenerates it deterministically so churn never produces noisy diffs.
//
// The scanner is deliberately token-level: it trades soundness for zero
// build-time dependencies. Known blind spots (range-for over a *function
// call* returning an unordered container, macro bodies, aliased container
// types) are documented in DESIGN.md; the curated .clang-tidy config covers
// the type-aware half of the same invariants where clang is available.
#pragma once

#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace bs::lint {

/// One shipped rule. `family` is D, C, O, P or H.
struct RuleDesc {
  const char* id;
  char family;
  const char* summary;
  const char* hint;
};

/// Catalog of every shipped rule, in stable display order.
const std::vector<RuleDesc>& rules();
bool rule_known(std::string_view id);
const RuleDesc* rule_desc(std::string_view id);

struct Finding {
  std::string path;  ///< root-relative, forward slashes
  int line{0};       ///< 1-based
  std::string rule;
  std::string message;

  friend bool operator==(const Finding&, const Finding&) = default;
};

/// Deterministic ordering used for reports and the baseline file.
bool finding_less(const Finding& a, const Finding& b);

struct ScanStats {
  int suppressed{0};  ///< findings silenced by allow()/allow-file()
};

/// Memoized loader that resolves project-quoted `#include "x.hpp"` lines and
/// harvests identifiers declared with an unordered container type, so a .cpp
/// iterating a member declared in its header is still caught by
/// det-unordered-iter.
class IncludeResolver {
 public:
  /// `root` is the repo root; quoted includes resolve against root and
  /// root/src (the project's include directory).
  explicit IncludeResolver(std::string root);

  /// Unordered-declared identifiers visible through `include` (recursively,
  /// bounded depth). Returns nullptr when the file cannot be resolved.
  const std::set<std::string>* unordered_idents(const std::string& include);

 private:
  std::string root_;
  std::map<std::string, std::set<std::string>> cache_;
  std::set<std::string> in_flight_;  // cycle guard
};

/// Scans one buffer. `path` must be root-relative (it selects rule scopes:
/// e.g. det-thread only applies under src/). `includes` may be null (header
/// harvesting is then limited to the buffer itself).
std::vector<Finding> scan_source(std::string_view path, std::string_view text,
                                 ScanStats* stats = nullptr,
                                 IncludeResolver* includes = nullptr);

// ---------------------------------------------------------------- full runs

struct RunOptions {
  std::string root{"."};
  /// Files or directories, root-relative; directories are walked recursively
  /// in sorted order for .cpp/.hpp/.h files.
  std::vector<std::string> paths;
  std::string baseline_path;  ///< root-relative; empty = no baseline
  bool fix_baseline{false};
};

struct RunResult {
  std::vector<Finding> fresh;      ///< findings not covered by the baseline
  std::vector<Finding> baselined;  ///< grandfathered findings
  std::vector<std::string> stale;  ///< baseline lines with no live finding
  int suppressed{0};
  int files_scanned{0};
};

/// Runs the scanner over opts.paths. Returns false (with *error set) on I/O
/// or usage problems; analysis findings are NOT errors.
bool run(const RunOptions& opts, RunResult* result, std::string* error);

/// Canonical baseline serialization: header line + `path:line:rule`, sorted
/// by (path, line, rule) — regeneration is churn-free by construction.
std::string format_baseline(std::vector<Finding> findings);

/// Parses a baseline file body. Unparseable lines are reported in *bad.
std::vector<Finding> parse_baseline(std::string_view text,
                                    std::vector<std::string>* bad);

/// CLI entry point (main() delegates here; tests drive it directly).
/// Exit codes: 0 clean / all findings baselined, 1 fresh findings,
/// 2 usage or I/O error.
int lint_main(int argc, const char* const* argv, std::ostream& out,
              std::ostream& err);

}  // namespace bs::lint
