// bslint — project-specific static analysis for the deterministic simulation
// substrate. A dependency-free two-pass analyzer (no libclang; builds
// wherever the project does):
//
//   pass 1 — token rules per file, plus a lightweight symbol index of every
//            function/coroutine definition under src/ (qualified names,
//            parameter shapes, call sites, direct determinism facts);
//   pass 2 — flow rules over the linked cross-translation-unit call graph:
//            reachability findings that carry the full call chain
//            (`a() -> b() -> use of 'mt19937'`), so a wall clock two calls
//            below a journal encoder or an un-sited schedule reached
//            indirectly from a par-tagged functor no longer hides behind a
//            function boundary. See index.hpp / graph.hpp / flow.hpp.
//
// Rule families over src/, tests/ and bench/:
//
//   D (determinism)       det-wallclock, det-random, det-thread,
//                         det-unordered-iter, det-journal-encode,
//                         det-custody-order   (+ flow variants with chains)
//   C (coroutine safety)  coro-ref-param, coro-lambda-capture,
//                         coro-view-temp, coro-first-await-if,
//                         coro-ref-escape
//   O (observability)     obs-unguarded
//   P (performance)       perf-large-byvalue, par-cross-site-schedule
//   H (hygiene)           hyg-iostream, hyg-using-namespace, hyg-bare-allow,
//                         hyg-bad-allow
//
// Findings are suppressed per line with
//   // bslint: allow(rule-a, rule-b): rationale
// (the comment covers its own line and the next *code* line — intervening
// comment and blank lines are skipped), or per file with
//   // bslint: allow-file(rule): rationale
// A suppression without a rationale — or naming an unknown rule — is itself
// a finding, so etiquette is machine-checked. A suppressed fact is treated
// as a discharged proof obligation: the flow pass does not re-report it
// through caller chains. `// bslint: par-root: rationale` above a function
// definition tags it as a par-flow root (see flow.hpp).
//
// Grandfathered findings live in a checked-in baseline
// (path:line:rule[|chain], sorted); `--fix-baseline` regenerates it
// deterministically so churn never produces noisy diffs. Pass-1 results are
// cached per file keyed by content hash (--cache-dir; see cache.hpp);
// output is byte-identical across cold, warm and --no-cache runs.
//
// The analyzer is deliberately token-level and over-approximate: it trades
// soundness for zero build-time dependencies. Call sites resolve by
// unqualified name against every same-named definition; unresolved calls
// are conservative unknown edges that never suppress a finding. Known blind
// spots are documented in DESIGN.md; the curated .clang-tidy config covers
// the type-aware half of the same invariants where clang is available.
#pragma once

#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace bs::lint {

/// One shipped rule. `family` is D, C, O, P or H.
struct RuleDesc {
  const char* id;
  char family;
  const char* summary;
  const char* hint;
};

/// Catalog of every shipped rule, in stable display order.
const std::vector<RuleDesc>& rules();
bool rule_known(std::string_view id);
const RuleDesc* rule_desc(std::string_view id);

struct Finding {
  std::string path;  ///< root-relative, forward slashes
  int line{0};       ///< 1-based
  std::string rule;
  std::string message;
  int col{1};         ///< 1-based byte column; 1 when not token-precise
  std::string chain;  ///< flow findings: `root() -> mid() -> <detail>`

  friend bool operator==(const Finding&, const Finding&) = default;
};

/// Deterministic ordering used for reports and the baseline file.
bool finding_less(const Finding& a, const Finding& b);

struct ScanStats {
  int suppressed{0};  ///< findings silenced by allow()/allow-file()
};

/// Memoized loader that resolves project-quoted `#include "x.hpp"` lines,
/// harvests identifiers declared with an unordered container type (so a
/// .cpp iterating a member declared in its header is still caught by
/// det-unordered-iter), and reports the resolved include closure for cache
/// dependency tracking.
class IncludeResolver {
 public:
  /// `root` is the repo root; quoted includes resolve against root and
  /// root/src (the project's include directory).
  explicit IncludeResolver(std::string root);

  /// Unordered-declared identifiers visible through `include` (recursively,
  /// bounded depth). Returns nullptr when the file cannot be resolved.
  const std::set<std::string>* unordered_idents(const std::string& include);

  /// Root-relative paths of `include`'s file plus its quoted-include
  /// closure — the cache key's dependency set. nullptr when unresolved.
  const std::set<std::string>* closure(const std::string& include);

 private:
  struct Entry {
    std::set<std::string> ids;
    std::set<std::string> paths;
  };
  const Entry* resolve(const std::string& include);

  std::string root_;
  std::map<std::string, Entry> cache_;
  std::set<std::string> in_flight_;  // cycle guard
};

/// Scans one buffer with the pass-1 token rules. `path` must be
/// root-relative (it selects rule scopes: e.g. det-thread only applies
/// under src/). `includes` may be null (header harvesting is then limited
/// to the buffer itself). Flow rules need the whole tree: use run().
std::vector<Finding> scan_source(std::string_view path, std::string_view text,
                                 ScanStats* stats = nullptr,
                                 IncludeResolver* includes = nullptr);

// ---------------------------------------------------------------- full runs

struct RunOptions {
  std::string root{"."};
  /// Files or directories, root-relative; directories are walked recursively
  /// in sorted order for .cpp/.hpp/.h files.
  std::vector<std::string> paths;
  std::string baseline_path;  ///< root-relative; empty = no baseline
  bool fix_baseline{false};
  /// Pass-1 cache directory (any path; created on demand). Empty = no
  /// cache. The cache never changes output bytes — only wall time.
  std::string cache_dir;
  bool no_cache{false};  ///< ignore and do not rewrite the cache
};

struct RunResult {
  std::vector<Finding> fresh;      ///< findings not covered by the baseline
  std::vector<Finding> baselined;  ///< grandfathered findings
  std::vector<std::string> stale;  ///< baseline lines with no live finding
  int suppressed{0};
  int files_scanned{0};
  int cache_hits{0};  ///< files whose pass-1 results came from the cache
};

/// Runs both passes over opts.paths. Returns false (with *error set) on I/O
/// or usage problems; analysis findings are NOT errors.
bool run(const RunOptions& opts, RunResult* result, std::string* error);

/// Canonical baseline serialization: header + `path:line:rule[|chain]`,
/// sorted by (path, line, rule) — regeneration is churn-free by
/// construction. The chain field is informational: matching ignores it.
std::string format_baseline(std::vector<Finding> findings);

/// Parses a baseline file body. Unparseable lines are reported in *bad.
std::vector<Finding> parse_baseline(std::string_view text,
                                    std::vector<std::string>* bad);

/// CLI entry point (main() delegates here; tests drive it directly).
/// Exit codes: 0 clean / all findings baselined, 1 fresh findings,
/// 2 usage or I/O error. `--format=gcc` (default) prints
/// `path:line:col: warning: message [rule]` with call-chain and hint notes;
/// `--format=json` prints one stable JSON document.
int lint_main(int argc, const char* const* argv, std::ostream& out,
              std::ostream& err);

}  // namespace bs::lint
