#include "cache.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>

namespace bs::lint {

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

std::string esc(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unesc(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case '\\': out += '\\'; break;
        case 't': out += '\t'; break;
        case 'n': out += '\n'; break;
        default: out += s[i];
      }
    } else {
      out += s[i];
    }
  }
  return out;
}

std::vector<std::string> split_tabs(std::string_view line) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (true) {
    const auto e = line.find('\t', pos);
    if (e == std::string_view::npos) {
      out.emplace_back(line.substr(pos));
      return out;
    }
    out.emplace_back(line.substr(pos, e - pos));
    pos = e + 1;
  }
}

bool to_int(const std::string& s, int* out) {
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && p == s.data() + s.size();
}

bool to_u64(const std::string& s, std::uint64_t* out) {
  const auto [p, ec] =
      std::from_chars(s.data(), s.data() + s.size(), *out, 16);
  return ec == std::errc() && p == s.data() + s.size();
}

std::string hex(std::uint64_t v) {
  char buf[17];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v, 16);
  (void)ec;
  return std::string(buf, p);
}

std::string header_line() {
  return "bslint-cache v2 rules=" + std::to_string(rules().size());
}

}  // namespace

std::string serialize_cache(std::vector<CachedFile> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const CachedFile& a, const CachedFile& b) {
              return a.path < b.path;
            });
  std::string out = header_line() + "\n";
  for (const CachedFile& e : entries) {
    out += "F\t" + esc(e.path) + "\t" + hex(e.content_hash) + "\t" +
           std::to_string(e.suppressed) + "\n";
    for (const auto& [dep, h] : e.deps) {
      out += "I\t" + esc(dep) + "\t" + hex(h) + "\n";
    }
    for (const Finding& f : e.findings) {
      out += "D\t" + std::to_string(f.line) + "\t" + std::to_string(f.col) +
             "\t" + f.rule + "\t" + esc(f.message) + "\t" + esc(f.chain) +
             "\n";
    }
    for (const auto& [line, rls] : e.index.allow_cover) {
      std::string joined;
      for (const std::string& r : rls) {
        if (!joined.empty()) joined += ",";
        joined += r;
      }
      out += "A\t" + std::to_string(line) + "\t" + joined + "\n";
    }
    for (const std::string& r : e.index.allow_file) {
      out += "G\t" + r + "\n";
    }
    for (const std::string& p : e.index.par_callables) {
      out += "P\t" + esc(p) + "\n";
    }
    for (const FuncDef& fd : e.index.funcs) {
      std::string flags;
      flags += fd.is_coroutine ? '1' : '0';
      flags += fd.returns_task ? '1' : '0';
      flags += fd.par_root ? '1' : '0';
      flags += fd.takes_envelope ? '1' : '0';
      std::string params;
      for (const ParamShape& p : fd.params) {
        if (!params.empty()) params += ",";
        params += p.by_ref ? 'r' : '-';
        params += p.is_view ? 'v' : '-';
      }
      out += "U\t" + esc(fd.qname) + "\t" + esc(fd.name) + "\t" +
             std::to_string(fd.line) + "\t" + std::to_string(fd.col) + "\t" +
             flags + "\t" + params + "\n";
      for (const CallSite& cs : fd.calls) {
        std::string temps;
        for (bool b : cs.arg_temp) temps += b ? '1' : '0';
        out += "C\t" + esc(cs.name) + "\t" + std::to_string(cs.line) + "\t" +
               std::to_string(cs.col) + "\t" +
               (cs.direct_await ? "1" : "0") + "\t" + temps + "\n";
      }
      for (const Fact& fa : fd.facts) {
        out += "T\t" + std::string(fact_kind_name(fa.kind)) + "\t" +
               std::to_string(fa.line) + "\t" + std::to_string(fa.col) +
               "\t" + esc(fa.detail) + "\n";
      }
    }
    out += "E\n";
  }
  return out;
}

bool parse_cache(std::string_view text,
                 std::map<std::string, CachedFile>* out) {
  std::map<std::string, CachedFile> parsed;
  CachedFile* cur = nullptr;
  FuncDef* cur_fn = nullptr;
  bool first = true;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t e = text.find('\n', pos);
    if (e == std::string_view::npos) e = text.size();
    const std::string_view line = text.substr(pos, e - pos);
    pos = e + 1;
    if (line.empty()) {
      if (pos > text.size()) break;
      continue;
    }
    if (first) {
      if (line != header_line()) return false;
      first = false;
      continue;
    }
    const auto parts = split_tabs(line);
    const std::string& tag = parts[0];
    if (tag == "F") {
      if (parts.size() != 4) return false;
      CachedFile cf;
      cf.path = unesc(parts[1]);
      int supp = 0;
      if (!to_u64(parts[2], &cf.content_hash) || !to_int(parts[3], &supp)) {
        return false;
      }
      cf.suppressed = supp;
      cf.index.path = cf.path;
      cur = &parsed.emplace(cf.path, std::move(cf)).first->second;
      cur_fn = nullptr;
      continue;
    }
    if (cur == nullptr) return false;
    if (tag == "I") {
      if (parts.size() != 3) return false;
      std::uint64_t h = 0;
      if (!to_u64(parts[2], &h)) return false;
      cur->deps.emplace_back(unesc(parts[1]), h);
    } else if (tag == "D") {
      if (parts.size() != 6) return false;
      Finding f;
      f.path = cur->path;
      if (!to_int(parts[1], &f.line) || !to_int(parts[2], &f.col)) {
        return false;
      }
      f.rule = parts[3];
      f.message = unesc(parts[4]);
      f.chain = unesc(parts[5]);
      cur->findings.push_back(std::move(f));
    } else if (tag == "A") {
      if (parts.size() != 3) return false;
      int line_no = 0;
      if (!to_int(parts[1], &line_no)) return false;
      std::istringstream ss(parts[2]);
      std::string r;
      while (std::getline(ss, r, ',')) {
        if (!r.empty()) cur->index.allow_cover[line_no].insert(r);
      }
    } else if (tag == "G") {
      if (parts.size() != 2) return false;
      cur->index.allow_file.insert(parts[1]);
    } else if (tag == "P") {
      if (parts.size() != 2) return false;
      cur->index.par_callables.push_back(unesc(parts[1]));
    } else if (tag == "U") {
      if (parts.size() != 7 || parts[5].size() != 4) return false;
      FuncDef fd;
      fd.qname = unesc(parts[1]);
      fd.name = unesc(parts[2]);
      if (!to_int(parts[3], &fd.line) || !to_int(parts[4], &fd.col)) {
        return false;
      }
      fd.is_coroutine = parts[5][0] == '1';
      fd.returns_task = parts[5][1] == '1';
      fd.par_root = parts[5][2] == '1';
      fd.takes_envelope = parts[5][3] == '1';
      std::istringstream ss(parts[6]);
      std::string p;
      while (std::getline(ss, p, ',')) {
        if (p.size() != 2) return false;
        ParamShape sh;
        sh.by_ref = p[0] == 'r';
        sh.is_view = p[1] == 'v';
        fd.params.push_back(sh);
      }
      cur->index.funcs.push_back(std::move(fd));
      cur_fn = &cur->index.funcs.back();
    } else if (tag == "C") {
      if (cur_fn == nullptr || parts.size() != 6) return false;
      CallSite cs;
      cs.name = unesc(parts[1]);
      if (!to_int(parts[2], &cs.line) || !to_int(parts[3], &cs.col)) {
        return false;
      }
      cs.direct_await = parts[4] == "1";
      for (char c : parts[5]) cs.arg_temp.push_back(c == '1');
      cur_fn->calls.push_back(std::move(cs));
    } else if (tag == "T") {
      if (cur_fn == nullptr || parts.size() != 5) return false;
      Fact fa;
      if (!fact_kind_from_name(parts[1], &fa.kind)) return false;
      if (!to_int(parts[2], &fa.line) || !to_int(parts[3], &fa.col)) {
        return false;
      }
      fa.detail = unesc(parts[4]);
      cur_fn->facts.push_back(std::move(fa));
    } else if (tag == "E") {
      cur = nullptr;
      cur_fn = nullptr;
    } else {
      return false;
    }
  }
  *out = std::move(parsed);
  return true;
}

}  // namespace bs::lint
