// bslint pass 2 — flow rules over the project call graph.
//
// Reachability findings, each carrying the full call chain from its root to
// the offending token so suppressions stay reviewable:
//
//   det-wallclock / det-random / det-unordered-iter
//       from every sim-context root (Task<>-returning definition in src/)
//       to a matching fact in any *callee* — the fact's own body is the
//       token engine's job, so flow findings start at depth 1.
//   det-journal-encode
//       from every encoder root (name containing "encode" or "checkpoint")
//       to any nondeterminism fact (wall clock, randomness, unordered
//       iteration, pointer identity) in a callee.
//   par-cross-site-schedule
//       from every par-tagged root (explicit `// bslint: par-root` marker,
//       or the operator() of a functor passed to schedule_par /
//       schedule_on_site) to a bare schedule_at/schedule_in call anywhere in
//       the chain; traversal stops at the siting barriers (schedule_on_site,
//       schedule_par, par_schedule_site) — a chain routed through a barrier
//       is the contract being honored.
//   coro-ref-escape
//       call-site rule, not reachability: a temporary argument bound to a
//       reference/view parameter of a Task<>-returning definition dies at
//       the end of the statement unless the call is directly co_awaited.
//
// Findings are attributed to the root's first call site into the chain (the
// line a reviewer would edit), deduplicated per sink so one bad helper
// reached from many roots reports once (shortest chain wins, ties broken
// lexicographically), and honor allow() comments at the attributed line.
#pragma once

#include "graph.hpp"

namespace bs::lint {

struct FlowResult {
  std::vector<Finding> findings;
  int suppressed{0};
};

FlowResult flow_analyze(const ProjectIndex& pi);

}  // namespace bs::lint
