#include "graph.hpp"

#include <algorithm>

namespace bs::lint {

const std::vector<FuncRef>* ProjectIndex::candidates(
    const std::string& name) const {
  auto it = by_name.find(name);
  return it == by_name.end() ? nullptr : &it->second;
}

ProjectIndex link_index(std::vector<FileIndex> files) {
  ProjectIndex pi;
  std::sort(files.begin(), files.end(),
            [](const FileIndex& a, const FileIndex& b) {
              return a.path < b.path;
            });
  pi.files = std::move(files);
  for (std::size_t f = 0; f < pi.files.size(); ++f) {
    for (std::size_t g = 0; g < pi.files[f].funcs.size(); ++g) {
      pi.by_name[pi.files[f].funcs[g].name].push_back({f, g});
    }
    pi.par_callables.insert(pi.files[f].par_callables.begin(),
                            pi.files[f].par_callables.end());
  }
  return pi;
}

}  // namespace bs::lint
