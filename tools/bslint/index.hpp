// bslint pass 1 — per-file symbol index.
//
// Parses one file's token stream into the facts the cross-TU flow pass
// (flow.cpp) consumes: function/coroutine definitions with scope-qualified
// names and parameter shapes, every call site inside each body (with
// argument temporariness for the call-site lifetime rule), and "facts" —
// direct determinism violations found in the body. The index is built only
// for files under src/: resolving call names against tests/bench would
// create bogus name-collision edges into fixture code.
//
// Everything here is deliberately over-approximate (no types, no overload
// resolution): a call site resolves to *every* same-named definition, and a
// call that resolves to nothing stays an "unknown" edge that can never
// suppress a finding — it only fails to widen reachability. DESIGN.md
// documents this conservative-approximation contract.
//
// Facts on lines carrying an allow() for the corresponding rule are dropped
// at build time: a reviewed suppression is a proof obligation discharged at
// the sink, so the flow pass must not re-report the same token through every
// caller chain.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace bs::lint {

/// A direct violation inside a function body, before reachability analysis.
enum class FactKind : std::uint8_t {
  wallclock,        ///< banned wall-clock token (det-wallclock family)
  random,           ///< non-seeded randomness token (det-random family)
  unordered_iter,   ///< loop ranging over an unordered container
  ptr_identity,     ///< reinterpret_cast / uintptr_t / "%p" serialization
  unsited_schedule  ///< bare schedule_at/schedule_in outside the sim core
};

/// Stable name used in the cache serialization.
const char* fact_kind_name(FactKind k);
bool fact_kind_from_name(std::string_view s, FactKind* out);

/// The rule whose allow() suppresses a fact of this kind at its own line.
const char* fact_suppressing_rule(FactKind k);

struct Fact {
  FactKind kind;
  int line{0};
  int col{0};
  std::string detail;  ///< e.g. "use of 'mt19937'"

  friend bool operator==(const Fact&, const Fact&) = default;
};

struct ParamShape {
  bool by_ref{false};   ///< declared with & / &&
  bool is_view{false};  ///< string_view or span<...>

  friend bool operator==(const ParamShape&, const ParamShape&) = default;
};

struct CallSite {
  std::string name;  ///< unqualified callee name as written
  int line{0};
  int col{0};
  bool direct_await{false};    ///< the call is the operand of co_await
  std::vector<bool> arg_temp;  ///< per argument: produces a temporary

  friend bool operator==(const CallSite&, const CallSite&) = default;
};

struct FuncDef {
  std::string qname;  ///< scope-qualified, "::"-joined (best effort)
  std::string name;   ///< last component; "operator()" for call operators
  int line{0};        ///< declarator name line
  int col{0};
  bool is_coroutine{false};
  bool returns_task{false};
  bool par_root{false};  ///< tagged with `// bslint: par-root: ...`
  bool takes_envelope{false};  ///< handler idiom: exempt from escape rules
  std::vector<ParamShape> params;
  std::vector<CallSite> calls;
  std::vector<Fact> facts;

  friend bool operator==(const FuncDef&, const FuncDef&) = default;
};

struct FileIndex {
  std::string path;
  std::vector<FuncDef> funcs;
  /// Type names passed as callables into schedule_par/schedule_on_site
  /// (`sim.schedule_par(site, t, Tick{...})` records "Tick"): their
  /// operator() definitions become par-tagged flow roots.
  std::vector<std::string> par_callables;
  /// Suppression state carried forward so the flow pass can honor allow()
  /// comments at the line a flow finding is attributed to.
  std::map<int, std::set<std::string>> allow_cover;
  std::set<std::string> allow_file;

  friend bool operator==(const FileIndex&, const FileIndex&) = default;
};

/// Builds the index for one src/ file. `unordered_idents` carries the
/// identifiers declared with unordered container types in this file plus its
/// project include closure (same harvest the token rules use).
FileIndex build_index(const std::string& path, const LexOut& lx,
                      const std::set<std::string>& unordered_idents);

}  // namespace bs::lint
