// bslint index cache — persists the per-file results of pass 1 (token-rule
// findings + symbol index) keyed by content hash, so the tier-1 lint gate
// only re-lexes files that actually changed. The flow pass (pass 2) always
// runs fresh over the linked index: it is cheap, and recomputing it from
// cached per-file indices guarantees cached and cold runs produce the same
// findings byte for byte — the fixture suite asserts exactly that.
//
// A cache entry is valid only when the file's own content hash AND the
// content hashes of every file in its quoted-include closure match: the
// include closure feeds the unordered-identifier harvest, so a header edit
// must invalidate its includers. The header line carries the rule-table size
// so adding a rule invalidates every entry wholesale.
//
// The cache file is rewritten in full, sorted by path, after every run —
// deterministic bytes, no append-order drift.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bslint.hpp"
#include "index.hpp"

namespace bs::lint {

std::uint64_t fnv1a64(std::string_view s);

struct CachedFile {
  std::string path;
  std::uint64_t content_hash{0};
  /// Quoted-include closure: (root-relative path, content hash at scan
  /// time). All must still match for the entry to be a hit.
  std::vector<std::pair<std::string, std::uint64_t>> deps;
  std::vector<Finding> findings;  ///< token-rule findings, post-suppression
  int suppressed{0};
  FileIndex index;
};

/// Serializes entries sorted by path. Round-trips exactly through
/// parse_cache (the byte-identity gate depends on it).
std::string serialize_cache(std::vector<CachedFile> entries);

/// Parses a cache file body. Returns false (out untouched) on a version or
/// rule-table mismatch or any malformed record — a stale cache is simply a
/// cold run, never an error.
bool parse_cache(std::string_view text,
                 std::map<std::string, CachedFile>* out);

}  // namespace bs::lint
