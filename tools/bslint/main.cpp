#include <iostream>

#include "bslint.hpp"

int main(int argc, char** argv) {
  return bs::lint::lint_main(argc, argv, std::cout, std::cerr);
}
