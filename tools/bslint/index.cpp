#include "index.hpp"

#include <algorithm>
#include <cctype>

namespace bs::lint {

const char* fact_kind_name(FactKind k) {
  switch (k) {
    case FactKind::wallclock: return "wallclock";
    case FactKind::random: return "random";
    case FactKind::unordered_iter: return "unordered-iter";
    case FactKind::ptr_identity: return "ptr-identity";
    case FactKind::unsited_schedule: return "unsited-schedule";
  }
  return "?";
}

bool fact_kind_from_name(std::string_view s, FactKind* out) {
  for (FactKind k : {FactKind::wallclock, FactKind::random,
                     FactKind::unordered_iter, FactKind::ptr_identity,
                     FactKind::unsited_schedule}) {
    if (s == fact_kind_name(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

const char* fact_suppressing_rule(FactKind k) {
  switch (k) {
    case FactKind::wallclock: return "det-wallclock";
    case FactKind::random: return "det-random";
    case FactKind::unordered_iter: return "det-unordered-iter";
    case FactKind::ptr_identity: return "det-journal-encode";
    case FactKind::unsited_schedule: return "par-cross-site-schedule";
  }
  return "?";
}

namespace {

/// One recognized function definition, as token-span coordinates.
struct FuncSpan {
  std::size_t name_idx{0};
  std::size_t decl_begin{0};  ///< first token of the declaration statement
  std::size_t params_open{0};
  std::size_t params_close{0};
  std::size_t body_open{0};
  std::size_t body_close{0};
  std::string name;
  std::vector<std::string> quals;  ///< explicit `A::B::` written in the decl
};

/// Walks forward from just past the parameter list, over cv/ref qualifiers,
/// noexcept(...), trailing return types and constructor init lists, to the
/// body's `{`. Returns false for declarations, call sites, `= default` and
/// anything else that is not a definition.
bool find_body(const std::vector<Tok>& t, std::size_t after_params,
               std::size_t* body_open) {
  std::size_t j = after_params;
  bool in_init_list = false;
  while (j < t.size()) {
    const Tok& tk = t[j];
    if (is_punct(tk, "{")) {
      // Inside an init list `m_{...}` braces follow the member name (an
      // ident or a template close); the body brace follows ')' or '}'.
      if (in_init_list && j > 0 &&
          (t[j - 1].kind == Tk::ident || is_punct(t[j - 1], ">"))) {
        j = match_forward(t, j, "{", "}");
        if (j >= t.size()) return false;
        ++j;
        continue;
      }
      *body_open = j;
      return true;
    }
    if (is_punct(tk, ",")) {
      if (in_init_list) {
        ++j;
        continue;
      }
      return false;
    }
    if (is_punct(tk, ";") || is_punct(tk, ")") || is_punct(tk, "=")) {
      return false;
    }
    if (is_punct(tk, ":")) {
      in_init_list = true;
      ++j;
      continue;
    }
    if (is_punct(tk, "(")) {
      j = match_forward(t, j, "(", ")");
      if (j >= t.size()) return false;
      ++j;
      continue;
    }
    if (is_punct(tk, "<")) {
      const std::size_t e = match_angles(t, j);
      if (e >= t.size()) return false;
      j = e + 1;
      continue;
    }
    ++j;  // const, noexcept, override, ->, &, type names, requires, ...
  }
  return false;
}

/// Tries to recognize a function definition whose parameter-list `(` sits at
/// token `p`. Over-approximate by design: macro-expansion shapes that look
/// like `name(...) { ... }` index as functions, which only widens the graph.
bool recognize(const std::vector<Tok>& t, std::size_t p, FuncSpan* out) {
  if (!is_punct(t[p], "(") || p == 0) return false;
  std::size_t back;
  if (t[p - 1].kind == Tk::ident && !keyword_like(t[p - 1].text)) {
    out->name = t[p - 1].text;
    out->name_idx = p - 1;
    back = p - 1;
    if (back > 0 && is_ident(t[back - 1], "operator")) {
      out->name = "operator " + out->name;  // conversion operator
      out->name_idx = back - 1;
      back = back - 1;
    }
  } else if (p >= 3 && is_punct(t[p - 1], ")") && is_punct(t[p - 2], "(") &&
             is_ident(t[p - 3], "operator")) {
    out->name = "operator()";
    out->name_idx = p - 3;
    back = p - 3;
  } else {
    return false;
  }
  // Explicit qualifier chain written in the declarator: `A::B::name`.
  std::size_t k = back;
  while (k >= 2 && is_punct(t[k - 1], "::") && t[k - 2].kind == Tk::ident) {
    out->quals.insert(out->quals.begin(), t[k - 2].text);
    k -= 2;
  }
  // Declaration statement start: walk back to the previous statement
  // boundary (covers the return type and any template header).
  std::size_t b = k;
  while (b > 0) {
    const Tok& prev = t[b - 1];
    if (prev.kind == Tk::pp || is_punct(prev, ";") || is_punct(prev, "{") ||
        is_punct(prev, "}") || is_punct(prev, ":") || is_punct(prev, ",") ||
        is_punct(prev, "(")) {
      break;
    }
    --b;
  }
  out->decl_begin = b;
  out->params_open = p;
  out->params_close = match_forward(t, p, "(", ")");
  if (out->params_close >= t.size()) return false;
  if (!find_body(t, out->params_close + 1, &out->body_open)) return false;
  out->body_close = match_forward(t, out->body_open, "{", "}");
  return out->body_close < t.size();
}

/// Scope name for the brace at token `i`: the namespace / struct / class
/// name when the brace opens one, "" otherwise.
std::string brace_scope_name(const std::vector<Tok>& t, std::size_t i) {
  std::size_t b = i;
  while (b > 0) {
    const Tok& p = t[b - 1];
    if (p.kind == Tk::pp || is_punct(p, ";") || is_punct(p, "{") ||
        is_punct(p, "}")) {
      break;
    }
    --b;
  }
  for (std::size_t k = b; k < i; ++k) {
    if (is_ident(t[k], "namespace")) {
      std::string name;
      for (std::size_t m = k + 1; m < i; ++m) {
        if (t[m].kind == Tk::ident) {
          if (!name.empty()) name += "::";
          name += t[m].text;
        } else if (!is_punct(t[m], "::")) {
          break;
        }
      }
      return name;
    }
    const bool enum_class =
        is_ident(t[k], "class") && k > 0 && is_ident(t[k - 1], "enum");
    if ((is_ident(t[k], "struct") || is_ident(t[k], "class")) && !enum_class) {
      for (std::size_t m = k + 1; m < i; ++m) {
        if (t[m].kind == Tk::ident && !is_ident(t[m], "final") &&
            !is_ident(t[m], "alignas")) {
          return t[m].text;
        }
        if (is_punct(t[m], ":") || is_punct(t[m], "{")) break;
      }
      return "";
    }
  }
  return "";
}

bool uppercase_initial(const std::string& s) {
  return !s.empty() && std::isupper(static_cast<unsigned char>(s.front()));
}

/// True when [s, e) spells `std::move(...)` / `move(...)`.
bool is_move_call(const std::vector<Tok>& t, std::size_t s, std::size_t e) {
  if (s < e && is_ident(t[s], "std") && s + 1 < e && is_punct(t[s + 1], "::")) {
    s += 2;
  }
  return s < e && is_ident(t[s], "move") && s + 1 < e && is_punct(t[s + 1], "(");
}

/// Parameter shapes for the list in (open, close): one entry per top-level
/// comma-separated parameter. Template arguments are angle-matched so a
/// `map<K, V>` parameter stays one parameter.
std::vector<ParamShape> parse_params(const std::vector<Tok>& t,
                                     std::size_t open, std::size_t close,
                                     bool* takes_envelope) {
  std::vector<ParamShape> out;
  ParamShape cur;
  bool saw_any = false;
  bool only_void = true;
  int depth = 0;
  for (std::size_t j = open + 1; j < close; ++j) {
    if (is_punct(t[j], "(") || is_punct(t[j], "[")) ++depth;
    if (is_punct(t[j], ")") || is_punct(t[j], "]")) --depth;
    if (is_punct(t[j], "<")) {
      const std::size_t e = match_angles(t, j);
      if (e < close) {
        // span<...> marks the view before we skip its argument list.
        if (j > open + 1 && is_ident(t[j - 1], "span")) cur.is_view = true;
        j = e;
        continue;
      }
    }
    if (depth > 0) continue;
    if (is_punct(t[j], ",")) {
      out.push_back(cur);
      cur = ParamShape{};
      saw_any = true;
      only_void = true;
      continue;
    }
    saw_any = true;
    if (is_punct(t[j], "&") || is_punct(t[j], "&&")) {
      cur.by_ref = true;
    } else if (is_ident(t[j], "string_view")) {
      cur.is_view = true;
    } else if (is_ident(t[j], "Envelope")) {
      *takes_envelope = true;
    }
    if (!is_ident(t[j], "void")) only_void = false;
  }
  if (saw_any) out.push_back(cur);
  if (out.size() == 1 && only_void && !out[0].by_ref && !out[0].is_view) {
    out.clear();  // `f(void)`
  }
  return out;
}

/// True when token `i` (a callee name) is the operand of co_await, looking
/// back across `obj.` / `ptr->` / `ns::` chains.
bool directly_awaited(const std::vector<Tok>& t, std::size_t i) {
  std::size_t k = i;
  while (k >= 2 &&
         (is_punct(t[k - 1], "::") || is_punct(t[k - 1], ".") ||
          is_punct(t[k - 1], "->")) &&
         t[k - 2].kind == Tk::ident) {
    k -= 2;
  }
  return k >= 1 && is_ident(t[k - 1], "co_await");
}

}  // namespace

FileIndex build_index(const std::string& path, const LexOut& lx,
                      const std::set<std::string>& unordered_idents) {
  FileIndex out;
  out.path = path;
  out.allow_cover = lx.allow_cover;
  out.allow_file = lx.allow_file;
  if (!scope_of(path).in_src) return out;  // flow analysis is src/-only
  const auto& t = lx.toks;
  const bool in_sim_core = path_starts_with(path, "src/sim/");

  // ---- recognize every function definition ----
  std::vector<FuncSpan> spans;
  for (std::size_t p = 0; p < t.size(); ++p) {
    FuncSpan fs;
    if (recognize(t, p, &fs)) spans.push_back(std::move(fs));
  }

  // ---- scope walk: qualified names ----
  // Stack of (close_idx, scope_name); function bodies push "" so local
  // structs still contribute their name.
  std::vector<std::pair<std::size_t, std::string>> stack;
  std::set<std::size_t> func_bodies;
  for (const FuncSpan& fs : spans) func_bodies.insert(fs.body_open);
  std::map<std::size_t, std::string> scope_at_name;  // name_idx -> prefix
  std::map<std::size_t, std::size_t> span_by_name_idx;
  for (std::size_t s = 0; s < spans.size(); ++s) {
    span_by_name_idx[spans[s].name_idx] = s;
  }
  for (std::size_t i = 0; i < t.size(); ++i) {
    while (!stack.empty() && i > stack.back().first) stack.pop_back();
    if (auto it = span_by_name_idx.find(i); it != span_by_name_idx.end()) {
      std::string prefix;
      for (const auto& [close, name] : stack) {
        (void)close;
        if (name.empty()) continue;
        if (!prefix.empty()) prefix += "::";
        prefix += name;
      }
      scope_at_name[i] = std::move(prefix);
    }
    if (is_punct(t[i], "{")) {
      const std::size_t close = match_forward(t, i, "{", "}");
      std::string name =
          func_bodies.count(i) != 0u ? "" : brace_scope_name(t, i);
      stack.emplace_back(close, std::move(name));
    }
  }

  // ---- par-callable harvest: schedule_par / schedule_on_site args ----
  std::set<std::string> par_callables;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Tk::ident ||
        (t[i].text != "schedule_par" && t[i].text != "schedule_on_site")) {
      continue;
    }
    if (!is_punct(t[i + 1], "(")) continue;
    const std::size_t close = match_forward(t, i + 1, "(", ")");
    for (std::size_t j = i + 2; j + 1 < close; ++j) {
      if (t[j].kind == Tk::ident && uppercase_initial(t[j].text) &&
          (is_punct(t[j + 1], "{") || is_punct(t[j + 1], "("))) {
        par_callables.insert(t[j].text);
      }
    }
  }
  out.par_callables.assign(par_callables.begin(), par_callables.end());

  // ---- per-function extraction ----
  for (std::size_t s = 0; s < spans.size(); ++s) {
    const FuncSpan& fs = spans[s];
    FuncDef fd;
    fd.name = fs.name;
    fd.line = t[fs.name_idx].line;
    fd.col = t[fs.name_idx].col;
    std::string qname = scope_at_name.count(fs.name_idx) != 0u
                            ? scope_at_name[fs.name_idx]
                            : std::string();
    for (const std::string& q : fs.quals) {
      if (!qname.empty()) qname += "::";
      qname += q;
    }
    if (!qname.empty()) qname += "::";
    fd.qname = qname + fd.name;
    // Return type: any `Task` ident between the statement start and the
    // qualifier chain.
    for (std::size_t j = fs.decl_begin;
         j < fs.name_idx && j < t.size(); ++j) {
      if (is_ident(t[j], "Task")) fd.returns_task = true;
    }
    fd.params = parse_params(t, fs.params_open, fs.params_close,
                             &fd.takes_envelope);
    // par-root marker: the comment covers the declarator line or the
    // declaration statement's first line (multi-line signatures).
    fd.par_root = lx.par_root_cover.count(fd.line) != 0u ||
                  lx.par_root_cover.count(t[fs.decl_begin].line) != 0u;

    // Nested definitions (local-struct methods) are excluded from this
    // function's body scan; lambda bodies are deliberately included —
    // attributing a lambda's behavior to its enclosing function only widens
    // reachability.
    std::vector<std::pair<std::size_t, std::size_t>> holes;
    for (std::size_t o = 0; o < spans.size(); ++o) {
      if (o == s) continue;
      if (spans[o].body_open > fs.body_open &&
          spans[o].body_close < fs.body_close) {
        holes.emplace_back(spans[o].body_open, spans[o].body_close);
      }
    }
    auto in_hole = [&](std::size_t j) {
      for (const auto& [ho, hc] : holes) {
        if (j >= ho && j <= hc) return true;
      }
      return false;
    };

    for (std::size_t j = fs.body_open + 1; j < fs.body_close; ++j) {
      if (in_hole(j)) continue;
      const Tok& tk = t[j];
      if (tk.kind == Tk::ident &&
          (tk.text == "co_await" || tk.text == "co_return" ||
           tk.text == "co_yield")) {
        fd.is_coroutine = true;
      }
      // Facts: direct violations, minus reviewed suppressions.
      auto add_fact = [&](FactKind kind, int line, int col,
                          std::string detail) {
        if (line_allows(lx, line, fact_suppressing_rule(kind))) return;
        fd.facts.push_back({kind, line, col, std::move(detail)});
      };
      std::string what;
      if (const char* rule = banned_det_ident(t, j, &what)) {
        add_fact(rule == std::string_view("det-wallclock")
                     ? FactKind::wallclock
                     : FactKind::random,
                 tk.line, tk.col, std::move(what));
      } else if (is_ident(tk, "for") && j + 1 < fs.body_close &&
                 is_punct(t[j + 1], "(")) {
        const std::size_t close = match_forward(t, j + 1, "(", ")");
        for (std::size_t m = j + 2; m < close; ++m) {
          if (t[m].kind == Tk::ident &&
              (unordered_idents.count(t[m].text) != 0u ||
               is_unordered_type(t[m]))) {
            add_fact(FactKind::unordered_iter, tk.line, tk.col,
                     "loop over unordered container '" + t[m].text + "'");
            break;
          }
        }
      } else if (is_ident(tk, "reinterpret_cast") ||
                 is_ident(tk, "uintptr_t") || is_ident(tk, "intptr_t")) {
        add_fact(FactKind::ptr_identity, tk.line, tk.col,
                 "'" + tk.text + "'");
      } else if (tk.kind == Tk::str &&
                 tk.text.find("%p") != std::string::npos) {
        add_fact(FactKind::ptr_identity, tk.line, tk.col,
                 "pointer format (\"%p\")");
      } else if (!in_sim_core && tk.kind == Tk::ident &&
                 (tk.text == "schedule_at" || tk.text == "schedule_in") &&
                 j + 1 < fs.body_close && is_punct(t[j + 1], "(")) {
        add_fact(FactKind::unsited_schedule, tk.line, tk.col,
                 tk.text + "()");
      }
      // Call sites: every `name(` that is not a keyword. Member calls stay
      // as name-only edges; resolution against the project index happens in
      // the flow pass.
      if (tk.kind == Tk::ident && !keyword_like(tk.text) &&
          j + 1 < fs.body_close && is_punct(t[j + 1], "(")) {
        CallSite cs;
        cs.name = tk.text;
        cs.line = tk.line;
        cs.col = tk.col;
        cs.direct_await = directly_awaited(t, j);
        const std::size_t close = match_forward(t, j + 1, "(", ")");
        if (close < t.size()) {
          std::size_t arg_start = j + 2;
          int depth = 0;
          for (std::size_t m = j + 2; m <= close; ++m) {
            if (is_punct(t[m], "(") || is_punct(t[m], "[") ||
                is_punct(t[m], "{")) {
              ++depth;
            }
            if (is_punct(t[m], ")") || is_punct(t[m], "]") ||
                is_punct(t[m], "}")) {
              --depth;
            }
            const bool at_end = m == close;
            if (!at_end && !(is_punct(t[m], ",") && depth == 0)) continue;
            if (m > arg_start) {
              // A temporary argument: call result, braced init or literal
              // string; std::move(x) forwards an lvalue that outlives the
              // statement, so it does not count.
              const Tok& last = t[m - 1];
              bool temp = last.kind == Tk::str || is_punct(last, ")") ||
                          is_punct(last, "}");
              if (temp && is_move_call(t, arg_start, m)) temp = false;
              cs.arg_temp.push_back(temp);
            } else if (!at_end) {
              cs.arg_temp.push_back(false);  // empty argument slot
            }
            arg_start = m + 1;
          }
        }
        fd.calls.push_back(std::move(cs));
      }
    }
    out.funcs.push_back(std::move(fd));
  }
  return out;
}

}  // namespace bs::lint
