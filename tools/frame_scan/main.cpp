#include <iostream>

#include "frame_scan.hpp"

int main(int argc, char** argv) {
  return bs::framescan::scan_main(argc, argv, std::cout, std::cerr);
}
