// frame_scan — coroutine frame ABI verifier for compiled binaries.
//
// The coroutine ABI requires the resume pointer at offset 0 of every frame
// (std::coroutine_handle<>::resume() indirects through it blindly). GCC 12
// has a code-generation bug where a coroutine whose *first statement* awaits
// inside an if-condition gets the condition temporary (`__ifcd_N`) laid out
// *before* `_Coro_resume_fn`, displacing the slot to offset 8 — resuming
// such a frame through a type-erased handle jumps through garbage. PR 8
// established the invariant by hand with readelf; this tool automates the
// check so the tier-1 lint gate re-proves it on every build (bslint's
// coro-first-await-if rule rejects the triggering source shape; this is the
// binary-side half of the same contract).
//
// It parses `readelf --debug-dump=info` text (no ELF/DWARF library — the
// binutils the project is built with are always present): GCC names every
// coroutine frame type `<mangled-fn>.Frame`, and each frame member carries
// a DW_AT_data_member_location. A frame whose `_Coro_resume_fn` member sits
// at a nonzero offset is displaced. Dumps are hundreds of MB for the bigger
// test binaries, so the parser is a line-push state machine — nothing is
// buffered beyond the current DIE.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace bs::framescan {

/// One coroutine frame type recovered from the debug info.
struct Frame {
  std::string type_name;  ///< mangled function name + ".Frame"
  long byte_size{-1};
  long resume_loc{-1};   ///< offset of _Coro_resume_fn; -1 when absent
  long destroy_loc{-1};  ///< offset of _Coro_destroy_fn; -1 when absent
};

/// True when the frame violates the resume-slot contract: the
/// `_Coro_resume_fn` member exists but does not sit at offset 0.
bool displaced(const Frame& f);

/// Line-push DWARF-dump parser. Feed the text of
/// `readelf --debug-dump=info` one line at a time, then take the frames.
/// Tracks only DW_TAG_structure_type DIEs whose DW_AT_name ends in ".Frame"
/// and their *immediate* DW_TAG_member children (nested types inside a
/// frame are ignored, matching how GCC nests awaiter temporaries).
class DwarfParser {
 public:
  void feed_line(std::string_view line);

  /// Finalizes the in-flight DIE and returns the frames seen so far.
  std::vector<Frame> take();

 private:
  struct Die {
    int depth{0};
    std::string tag;
    std::string name;
    long byte_size{-1};
    long member_loc{-1};
    bool live{false};
  };
  void commit();

  Die pending_;
  // Innermost-first stack of open frame structs: (DIE depth, frames_ index).
  std::vector<std::pair<int, std::size_t>> open_;
  std::vector<Frame> frames_;
};

/// Convenience for tests and small dumps.
std::vector<Frame> parse_dwarf(std::string_view dump);

/// Parses the dump of one binary by running readelf (argument is the
/// readelf executable name/path). Returns false on process failure.
bool scan_binary(const std::string& readelf, const std::string& binary,
                 std::vector<Frame>* out);

/// CLI entry point (main() delegates; tests drive it directly).
///   frame_scan [--readelf PATH] [--require-frames] [--dump] BINARY...
/// Exit codes: 0 all frames conforming, 1 displaced frame found (or
/// --require-frames given and a binary contains no frames at all — a
/// stripped binary must not pass vacuously), 2 usage or I/O error.
int scan_main(int argc, const char* const* argv, std::ostream& out,
              std::ostream& err);

}  // namespace bs::framescan
