#include "frame_scan.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace bs::framescan {

namespace {

/// Parses a readelf DIE header ` <depth><offset>: Abbrev Number: N (tag)`.
/// Returns false for anything else (attribute lines, section banners).
bool parse_die_header(std::string_view line, int* depth, std::string* tag,
                      bool* null_entry) {
  std::size_t i = 0;
  while (i < line.size() && line[i] == ' ') ++i;
  if (i >= line.size() || line[i] != '<') return false;
  ++i;
  if (i >= line.size() || std::isdigit(static_cast<unsigned char>(line[i])) == 0) {
    return false;
  }
  int d = 0;
  while (i < line.size() && std::isdigit(static_cast<unsigned char>(line[i]))) {
    d = d * 10 + (line[i] - '0');
    ++i;
  }
  if (i >= line.size() || line[i] != '>') return false;
  ++i;
  if (i >= line.size() || line[i] != '<') return false;
  const auto mark = line.find(": Abbrev Number: ", i);
  if (mark == std::string_view::npos) return false;
  *depth = d;
  std::size_t j = mark + 17;
  std::size_t num_begin = j;
  while (j < line.size() && std::isdigit(static_cast<unsigned char>(line[j]))) {
    ++j;
  }
  *null_entry = line.substr(num_begin, j - num_begin) == "0";
  tag->clear();
  const auto open = line.find('(', j);
  if (open != std::string_view::npos) {
    const auto close = line.find(')', open);
    if (close != std::string_view::npos) {
      *tag = std::string(line.substr(open + 1, close - open - 1));
    }
  }
  return true;
}

/// Value after the last ": " on an attribute line — handles both direct
/// strings and `(indirect string, offset: 0x..): value`.
std::string_view attr_value(std::string_view line) {
  const auto pos = line.rfind(": ");
  if (pos == std::string_view::npos) return {};
  std::string_view v = line.substr(pos + 2);
  while (!v.empty() && (v.back() == '\r' || v.back() == ' ')) {
    v.remove_suffix(1);
  }
  return v;
}

/// Leading integer of an attribute value; tolerates exprloc suffixes like
/// `(DW_OP_plus_uconst: 8)` resolving to a bare `8)`.
bool attr_int(std::string_view line, long* out) {
  std::string_view v = attr_value(line);
  std::size_t i = 0;
  bool any = false;
  long r = 0;
  while (i < v.size() && std::isdigit(static_cast<unsigned char>(v[i]))) {
    r = r * 10 + (v[i] - '0');
    any = true;
    ++i;
  }
  if (!any) return false;
  *out = r;
  return true;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

bool displaced(const Frame& f) { return f.resume_loc > 0; }

void DwarfParser::commit() {
  if (!pending_.live) return;
  pending_.live = false;
  // Leaving the subtree of any open frame closes it.
  while (!open_.empty() && pending_.depth <= open_.back().first) {
    open_.pop_back();
  }
  if (pending_.tag == "DW_TAG_structure_type" &&
      ends_with(pending_.name, ".Frame")) {
    Frame f;
    f.type_name = pending_.name;
    f.byte_size = pending_.byte_size;
    open_.emplace_back(pending_.depth, frames_.size());
    frames_.push_back(std::move(f));
    return;
  }
  if (pending_.tag == "DW_TAG_member" && !open_.empty() &&
      pending_.depth == open_.back().first + 1) {
    Frame& f = frames_[open_.back().second];
    if (pending_.name == "_Coro_resume_fn") {
      f.resume_loc = pending_.member_loc;
    } else if (pending_.name == "_Coro_destroy_fn") {
      f.destroy_loc = pending_.member_loc;
    }
  }
}

void DwarfParser::feed_line(std::string_view line) {
  int depth = 0;
  std::string tag;
  bool null_entry = false;
  if (parse_die_header(line, &depth, &tag, &null_entry)) {
    commit();
    pending_ = Die{};
    pending_.depth = depth;
    pending_.tag = std::move(tag);
    pending_.live = true;
    if (null_entry) commit();  // end-of-children marker closes scopes now
    return;
  }
  if (!pending_.live) return;
  if (line.find("DW_AT_name") != std::string_view::npos) {
    pending_.name = std::string(attr_value(line));
  } else if (line.find("DW_AT_byte_size") != std::string_view::npos) {
    attr_int(line, &pending_.byte_size);
  } else if (line.find("DW_AT_data_member_location") !=
             std::string_view::npos) {
    attr_int(line, &pending_.member_loc);
  }
}

std::vector<Frame> DwarfParser::take() {
  commit();
  open_.clear();
  return std::move(frames_);
}

std::vector<Frame> parse_dwarf(std::string_view dump) {
  DwarfParser p;
  std::size_t pos = 0;
  while (pos <= dump.size()) {
    std::size_t e = dump.find('\n', pos);
    if (e == std::string_view::npos) e = dump.size();
    p.feed_line(dump.substr(pos, e - pos));
    if (e == dump.size()) break;
    pos = e + 1;
  }
  return p.take();
}

bool scan_binary(const std::string& readelf, const std::string& binary,
                 std::vector<Frame>* out) {
  // Dumps run to hundreds of MB on the larger test binaries: stream the
  // pipe line by line instead of materializing the text.
  const std::string cmd =
      readelf + " --debug-dump=info '" + binary + "' 2>/dev/null";
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return false;
  DwarfParser parser;
  std::string line;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
    line += buf;
    if (!line.empty() && line.back() == '\n') {
      line.pop_back();
      parser.feed_line(line);
      line.clear();
    }
  }
  if (!line.empty()) parser.feed_line(line);
  const int rc = ::pclose(pipe);
  if (rc != 0) return false;
  *out = parser.take();
  return true;
}

int scan_main(int argc, const char* const* argv, std::ostream& out,
              std::ostream& err) {
  std::string readelf = "readelf";
  bool require_frames = false;
  bool dump = false;
  std::vector<std::string> binaries;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--readelf") {
      if (i + 1 >= argc) {
        err << "frame_scan: --readelf needs a value\n";
        return 2;
      }
      readelf = argv[++i];
    } else if (a == "--require-frames") {
      require_frames = true;
    } else if (a == "--dump") {
      dump = true;
    } else if (a == "--help" || a == "-h") {
      out << "usage: frame_scan [--readelf PATH] [--require-frames] "
             "[--dump] BINARY...\n"
             "Verifies every coroutine frame in the binaries keeps "
             "_Coro_resume_fn at offset 0.\n"
             "Exit: 0 conforming, 1 displaced (or no frames with "
             "--require-frames), 2 error.\n";
      return 0;
    } else if (!a.empty() && a.front() == '-') {
      err << "frame_scan: unknown flag " << a << "\n";
      return 2;
    } else {
      binaries.emplace_back(a);
    }
  }
  if (binaries.empty()) {
    err << "frame_scan: no binaries given (try --help)\n";
    return 2;
  }
  bool bad = false;
  for (const std::string& bin : binaries) {
    std::vector<Frame> frames;
    if (!scan_binary(readelf, bin, &frames)) {
      err << "frame_scan: cannot dump " << bin
          << " (readelf missing or not a binary?)\n";
      return 2;
    }
    int displaced_here = 0;
    for (const Frame& f : frames) {
      if (dump) {
        out << bin << ": " << f.type_name << " size=" << f.byte_size
            << " resume@" << f.resume_loc << " destroy@" << f.destroy_loc
            << "\n";
      }
      if (displaced(f)) {
        ++displaced_here;
        out << bin << ": DISPLACED " << f.type_name << ": _Coro_resume_fn @ "
            << f.resume_loc << " (must be 0)\n";
      }
    }
    if (frames.empty() && require_frames) {
      out << bin << ": no coroutine frames in debug info (stripped? "
             "built without -g?) — refusing to pass vacuously\n";
      bad = true;
    }
    out << bin << ": " << frames.size() << " coroutine frame(s), "
        << displaced_here << " displaced\n";
    if (displaced_here > 0) bad = true;
  }
  return bad ? 1 : 0;
}

}  // namespace bs::framescan
