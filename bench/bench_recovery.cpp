// Crash-recovery cost bench for the journaled persistent-store model:
// measures time-to-readable across restart flavours and journal lengths.
//
//   restart sweep : one data provider, N direct chunk puts (the journal
//                   grows with N), then a crash + restart under four
//                   flavours — warm (checkpointed index + short tail),
//                   cold (full WAL), wiped (store lost, nothing to
//                   replay), slow (cold on a 4x slowed disk).
//   power loss    : a full deployment loses one site mid-workload (torn
//                   journal tails) and recovers; reports aggregate replay
//                   work and the slowest node's time-to-readable.
//
// Everything is measured in simulated time, so the numbers are
// bit-identical across machines; the bench replays the whole suite and
// fails if the digest moves. Output is JSON (redirect to
// BENCH_recovery.json).

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "blob/data_provider.hpp"
#include "blob/deployment.hpp"
#include "fault/fault_plane.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace bs;

struct Options {
  std::vector<int> lengths{64, 256, 1024};
  int repeat = 2;      // full-suite replays; digests must match
  bool smoke = false;  // shortest sweep only
};

/// Order-dependent mixer (same recipe as the test digests): any change in
/// any reported counter or sim-time value moves the suite digest.
struct Digest {
  std::uint64_t v{0x9e3779b97f4a7c15ull};
  void mix(std::uint64_t x) {
    v ^= x + 0x9e3779b97f4a7c15ull + (v << 6) + (v >> 2);
  }
  void mix_signed(std::int64_t x) { mix(static_cast<std::uint64_t>(x)); }
};

struct RestartResult {
  const char* mode{""};
  int puts{0};
  SimDuration ttr{0};
  std::uint64_t replay_bytes{0};
  std::uint64_t replay_records{0};
  std::uint64_t cold_starts{0};
  std::uint64_t torn_tails{0};
  std::uint64_t chunks_after{0};
};

constexpr std::uint64_t kChunkBytes = 256 * units::KB;

// One provider driven directly over RPC: `puts` chunk puts build the
// journal, then the provider crashes and restarts under the scenario's
// flavour. Time-to-readable comes from the provider's own RecoveryStats.
RestartResult run_restart(const char* mode, int puts,
                          std::uint64_t checkpoint_records, bool wipe,
                          double disk_factor) {
  sim::Simulation sim;
  rpc::Cluster cluster(sim, net::Topology::single_site());
  rpc::Node* dp_node = cluster.add_node(0);
  rpc::Node* client = cluster.add_node(0);
  blob::DataProvider::Options opts;
  opts.journal.enabled = true;
  opts.journal.checkpoint_records = checkpoint_records;
  opts.journal.checkpoint_bytes = 1ull << 62;  // records drive checkpoints
  blob::DataProvider provider(*dp_node, opts);
  fault::FaultPlane plane(cluster, 0xBE9Cull);

  sim.spawn([](rpc::Cluster& cl, rpc::Node& src, NodeId dst,
               int n) -> sim::Task<void> {
    for (int i = 0; i < n; ++i) {
      blob::PutChunkReq req;
      req.key = blob::ChunkKey{BlobId{1}, 1, static_cast<std::uint64_t>(i)};
      req.payload = blob::Payload::synthetic(kChunkBytes, i);
      auto r = co_await cl.call<blob::PutChunkReq, blob::PutChunkResp>(
          src, dst, std::move(req));
      if (!r.ok()) {
        std::fprintf(stderr, "FAIL: put %d rejected\n", i);
        std::exit(1);
      }
    }
  }(cluster, *client, dp_node->id(), puts));

  // Sequential puts: a generous per-put budget keeps the crash strictly
  // after the workload quiesces at every journal length.
  const SimTime crash_at =
      simtime::seconds(10) + simtime::millis(400) * puts;
  sim.run_until(crash_at - simtime::seconds(1));
  if (provider.chunk_count() != static_cast<std::size_t>(puts)) {
    std::fprintf(stderr, "FAIL: %s/%d: only %zu puts landed before crash\n",
                 mode, puts, provider.chunk_count());
    std::exit(1);
  }

  sim.schedule_at(crash_at, [&] {
    plane.crash(dp_node->id(), wipe);
    if (disk_factor < 1.0) plane.slow_disk(dp_node->id(), disk_factor);
  });
  sim.schedule_at(crash_at + simtime::seconds(1),
                  [&] { plane.restart(dp_node->id()); });
  sim.run_until(crash_at + simtime::minutes(2));

  if (provider.recovering() || provider.recovery_stats().recoveries != 1) {
    std::fprintf(stderr, "FAIL: %s/%d: recovery did not complete\n", mode,
                 puts);
    std::exit(1);
  }
  RestartResult r;
  r.mode = mode;
  r.puts = puts;
  r.ttr = provider.recovery_stats().last_time_to_readable;
  r.replay_bytes = provider.recovery_stats().replay_bytes;
  r.replay_records = provider.recovery_stats().replay_records;
  r.cold_starts = provider.recovery_stats().cold_starts;
  r.torn_tails = provider.recovery_stats().torn_tails_truncated;
  r.chunks_after = provider.chunk_count();
  return r;
}

struct PowerLossResult {
  std::uint64_t nodes_recovered{0};
  std::uint64_t replay_bytes{0};
  std::uint64_t replay_records{0};
  std::uint64_t torn_tails{0};
  SimDuration max_ttr{0};
  std::uint64_t acked{0};
  std::uint64_t readable{0};
  std::uint64_t pending{0};
};

struct WorkloadOp {
  SimTime at{0};
  std::uint64_t bytes{0};
  std::uint64_t content{0};
  Result<blob::WriteReceipt> result{Errc::internal};
};

// Correlated failure on a full deployment: site 2 (one metadata provider,
// two data providers) loses power mid-workload and comes back ten seconds
// later. Reports the aggregate replay bill and verifies every acked write
// is still readable afterwards.
PowerLossResult run_power_loss() {
  sim::Simulation sim;
  blob::DeploymentConfig cfg;
  cfg.sites = 3;
  cfg.data_providers = 6;
  cfg.metadata_providers = 2;
  cfg.provider_capacity = 4ull * units::GB;
  cfg.journal.enabled = true;
  cfg.vm_options.write_lease = simtime::seconds(20);
  cfg.vm_options.sweep_interval = simtime::seconds(5);
  blob::Deployment dep(sim, cfg);
  fault::FaultPlane plane(dep.cluster(), 0xBE9Cull);
  blob::BlobClient* writer = dep.add_client();

  std::vector<WorkloadOp> ops(6);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    ops[i].at = simtime::millis(300 + 700 * i);
    ops[i].bytes = 8 * units::MB;
    ops[i].content = 0xD00D + i;
  }
  BlobId blob_id{};
  sim.spawn([](sim::Simulation& s, blob::BlobClient& cl, BlobId& out,
               std::vector<WorkloadOp>& work) -> sim::Task<void> {
    auto blob = co_await cl.create(4 * units::MB, /*replication=*/2);
    if (!blob.ok()) {
      std::fprintf(stderr, "FAIL: power-loss create failed\n");
      std::exit(1);
    }
    out = blob.value();
    for (auto& op : work) {
      s.spawn([](sim::Simulation& s2, blob::BlobClient& c2, BlobId b,
                 WorkloadOp& o) -> sim::Task<void> {
        co_await s2.delay_until(o.at);
        o.result = co_await c2.append(
            b, blob::Payload::synthetic(o.bytes, o.content));
      }(s, cl, blob.value(), op));
    }
  }(sim, *writer, blob_id, ops));

  plane.schedule(fault::FaultEvent{.at = simtime::seconds(2),
                                   .kind = fault::FaultEvent::Kind::power_loss,
                                   .a = 2});
  plane.schedule(
      fault::FaultEvent{.at = simtime::seconds(12),
                        .kind = fault::FaultEvent::Kind::power_restore,
                        .a = 2});
  sim.run_until(simtime::minutes(3));

  PowerLossResult r;
  sim.spawn([](blob::BlobClient& cl, BlobId b, std::vector<WorkloadOp>& work,
               PowerLossResult& out) -> sim::Task<void> {
    for (auto& op : work) {
      if (!op.result.ok()) continue;
      ++out.acked;
      const auto& receipt = op.result.value();
      auto read = co_await cl.read(b, receipt.offset, receipt.size,
                                   receipt.version);
      if (read.ok()) ++out.readable;
    }
  }(*writer, blob_id, ops, r));
  sim.run_until(simtime::minutes(4));

  auto absorb = [&r](const blob::RecoveryStats& st) {
    r.nodes_recovered += st.recoveries;
    r.replay_bytes += st.replay_bytes;
    r.replay_records += st.replay_records;
    r.torn_tails += st.torn_tails_truncated;
    if (st.last_time_to_readable > r.max_ttr) {
      r.max_ttr = st.last_time_to_readable;
    }
  };
  absorb(dep.version_manager().recovery_stats());
  for (const auto& mp : dep.metadata_providers()) {
    absorb(mp->recovery_stats());
  }
  for (const auto& p : dep.providers()) absorb(p->recovery_stats());
  r.pending = dep.version_manager().pending_writes();
  return r;
}

double ms(SimDuration d) { return static_cast<double>(d) / 1e6; }

struct SuiteResult {
  std::vector<RestartResult> restarts;
  PowerLossResult power_loss;
  std::uint64_t digest{0};
};

SuiteResult run_suite(const Options& opt) {
  SuiteResult suite;
  for (const int n : opt.lengths) {
    // Warm checkpoints every n/4 records; cold/slow never checkpoint, so
    // their journals hold the full put history (index + data pages).
    const std::uint64_t warm_cp = static_cast<std::uint64_t>(n) / 4;
    const std::uint64_t never = 1ull << 40;
    suite.restarts.push_back(run_restart("warm", n, warm_cp, false, 1.0));
    suite.restarts.push_back(run_restart("cold", n, never, false, 1.0));
    suite.restarts.push_back(run_restart("wiped", n, never, true, 1.0));
    suite.restarts.push_back(run_restart("slow", n, never, false, 0.25));
  }
  suite.power_loss = run_power_loss();

  Digest dg;
  for (const RestartResult& r : suite.restarts) {
    dg.mix(static_cast<std::uint64_t>(r.puts));
    dg.mix_signed(r.ttr);
    dg.mix(r.replay_bytes);
    dg.mix(r.replay_records);
    dg.mix(r.cold_starts);
    dg.mix(r.torn_tails);
    dg.mix(r.chunks_after);
  }
  const PowerLossResult& p = suite.power_loss;
  dg.mix(p.nodes_recovered);
  dg.mix(p.replay_bytes);
  dg.mix(p.replay_records);
  dg.mix(p.torn_tails);
  dg.mix_signed(p.max_ttr);
  dg.mix(p.acked);
  dg.mix(p.readable);
  dg.mix(p.pending);
  suite.digest = dg.v;
  return suite;
}

// The claims the bench exists to demonstrate, enforced so bench-smoke
// turns a regression into a hard failure:
//   wiped < warm < cold < slow time-to-readable at every journal length,
//   cold replay reading strictly more than warm, and cold time-to-readable
//   growing with journal length.
bool check_orderings(const SuiteResult& suite, const Options& opt) {
  bool ok = true;
  auto fail = [&ok](const char* what, int puts) {
    std::fprintf(stderr, "FAIL: ordering '%s' violated at %d puts\n", what,
                 puts);
    ok = false;
  };
  SimDuration prev_cold = -1;
  for (std::size_t i = 0; i < suite.restarts.size(); i += 4) {
    const RestartResult& warm = suite.restarts[i];
    const RestartResult& cold = suite.restarts[i + 1];
    const RestartResult& wiped = suite.restarts[i + 2];
    const RestartResult& slow = suite.restarts[i + 3];
    const int n = warm.puts;
    if (!(wiped.ttr < warm.ttr)) fail("wiped < warm", n);
    if (!(warm.ttr < cold.ttr)) fail("warm < cold", n);
    if (!(cold.ttr < slow.ttr)) fail("cold < slow", n);
    if (!(cold.replay_bytes > warm.replay_bytes)) {
      fail("cold replays more bytes than warm", n);
    }
    if (warm.replay_bytes == 0) fail("warm replays a nonempty tail", n);
    if (wiped.replay_bytes != 0 || wiped.cold_starts != 1) {
      fail("wiped store restarts empty", n);
    }
    if (wiped.chunks_after != 0) fail("wiped store holds no chunks", n);
    if (cold.chunks_after != static_cast<std::uint64_t>(n)) {
      fail("cold restart keeps every chunk", n);
    }
    if (!(cold.ttr > prev_cold)) fail("cold ttr grows with journal", n);
    prev_cold = cold.ttr;
  }
  const PowerLossResult& p = suite.power_loss;
  if (p.nodes_recovered < 3) {
    std::fprintf(stderr, "FAIL: power loss recovered %" PRIu64
                         " nodes (expected the whole site)\n",
                 p.nodes_recovered);
    ok = false;
  }
  if (p.readable != p.acked || p.pending != 0) {
    std::fprintf(stderr,
                 "FAIL: power loss: %" PRIu64 "/%" PRIu64
                 " acked writes readable, %" PRIu64 " pending\n",
                 p.readable, p.acked, p.pending);
    ok = false;
  }
  (void)opt;
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--lengths=", 0) == 0) {
      opt.lengths.clear();
      std::string list = arg.substr(arg.find('=') + 1);
      for (std::size_t pos = 0; pos < list.size();) {
        const std::size_t comma = list.find(',', pos);
        const std::size_t end = comma == std::string::npos ? list.size()
                                                          : comma;
        opt.lengths.push_back(
            std::atoi(list.substr(pos, end - pos).c_str()));
        pos = end + 1;
      }
    } else if (arg.rfind("--repeat=", 0) == 0) {
      opt.repeat = std::atoi(arg.substr(arg.find('=') + 1).c_str());
      if (opt.repeat < 1) opt.repeat = 1;
    } else if (arg == "--smoke") {
      opt.smoke = true;
      opt.lengths = {64};
    } else {
      std::fprintf(stderr,
                   "usage: %s [--lengths=N,N,...] [--repeat=N] [--smoke]\n",
                   argv[0]);
      return 2;
    }
  }

  const SuiteResult suite = run_suite(opt);
  bool reproducible = true;
  for (int i = 1; i < opt.repeat; ++i) {
    const SuiteResult again = run_suite(opt);
    reproducible = reproducible && again.digest == suite.digest;
  }
  const bool orderings_ok = check_orderings(suite, opt);

  std::printf("{\n");
  std::printf("  \"bench\": \"bench_recovery\",\n");
  std::printf("  \"smoke\": %s,\n", opt.smoke ? "true" : "false");
  std::printf("  \"chunk_bytes\": %" PRIu64 ",\n", kChunkBytes);
  std::printf("  \"restart_scenarios\": [\n");
  for (std::size_t i = 0; i < suite.restarts.size(); ++i) {
    const RestartResult& r = suite.restarts[i];
    std::printf("    {\"mode\": \"%s\", \"journal_puts\": %d, "
                "\"time_to_readable_ms\": %.3f, "
                "\"replay_bytes\": %" PRIu64 ", "
                "\"replay_records\": %" PRIu64 ", "
                "\"cold_starts\": %" PRIu64 ", "
                "\"chunks_after\": %" PRIu64 "}%s\n",
                r.mode, r.puts, ms(r.ttr), r.replay_bytes, r.replay_records,
                r.cold_starts, r.chunks_after,
                i + 1 < suite.restarts.size() ? "," : "");
  }
  std::printf("  ],\n");
  const PowerLossResult& p = suite.power_loss;
  std::printf("  \"power_loss\": {\"site\": 2, "
              "\"nodes_recovered\": %" PRIu64 ", "
              "\"replay_bytes\": %" PRIu64 ", "
              "\"replay_records\": %" PRIu64 ", "
              "\"torn_tails\": %" PRIu64 ", "
              "\"max_time_to_readable_ms\": %.3f, "
              "\"acked_writes\": %" PRIu64 ", "
              "\"readable_after\": %" PRIu64 "},\n",
              p.nodes_recovered, p.replay_bytes, p.replay_records,
              p.torn_tails, ms(p.max_ttr), p.acked, p.readable);
  std::printf("  \"orderings_ok\": %s,\n", orderings_ok ? "true" : "false");
  std::printf("  \"reproducible\": %s,\n", reproducible ? "true" : "false");
  std::printf("  \"digest\": \"%016" PRIx64 "\"\n", suite.digest);
  std::printf("}\n");

  if (!reproducible) {
    std::fprintf(stderr, "FAIL: suite digest moved across replays\n");
    return 1;
  }
  return orderings_ok ? 0 : 1;
}
