// Experiment E-C3 (§IV-C, third experiment): attack-detection delay as the
// fraction of malicious clients grows.
//
// Paper setup: 50 concurrent clients, malicious fraction swept from 10% to
// 70%. Reported result: "The first malicious client is detected in 20
// seconds and the last one is detected in about 55 seconds, while the
// duration of the write operation increases towards 40 seconds when 70% of
// clients perform a DoS attack."
#include "dos_common.hpp"

using namespace bs;
using namespace bs::bench;

namespace {

struct DelayPoint {
  int malicious_pct;
  double first_s;
  double last_s;
  double write_duration_s;  // mean honest op duration during the attack
  std::size_t blocked;
  std::size_t attackers;
};

DelayPoint run_point(int malicious_pct) {
  constexpr int kTotal = 50;
  const SimTime kAttackStart = simtime::seconds(20);
  const SimTime kEnd = simtime::seconds(220);

  sim::Simulation sim;
  StackConfig cfg = dos_stack_config(/*with_security=*/true);
  Stack stack(sim, cfg);

  const int attackers = kTotal * malicious_pct / 100;
  const int honest = kTotal - attackers;
  DosScenario sc;
  launch_dos_workload(sim, stack, sc, honest, attackers, kAttackStart,
                      kEnd, /*op_bytes=*/1 * units::GB);

  // Per-attacker block times from the enforcement log.
  sim.run_until(kEnd);

  SimTime first = simtime::kInfinite, last = 0;
  std::size_t blocked = 0;
  for (const auto& e : stack.security->enforcement().action_log()) {
    if (e.action.type != sec::Action::Type::block) continue;
    first = std::min(first, e.time);
    last = std::max(last, e.time);
    ++blocked;
  }

  // Honest write duration while the attack is live (between attack start
  // and the last block + drain).
  RunningStats dur;
  for (const auto& s : sc.honest_stats) {
    // op_duration_sec accumulates over the whole run; the attack phase
    // dominates the tail, so report the mean of ops that ran during it by
    // re-deriving from totals is noisy — use the per-op stats directly.
    dur.merge(s.op_duration_sec);
  }

  DelayPoint p{};
  p.malicious_pct = malicious_pct;
  p.first_s = simtime::to_seconds(first - kAttackStart);
  p.last_s = simtime::to_seconds(last - kAttackStart);
  p.write_duration_s = dur.max();  // worst write = the one under attack
  p.blocked = blocked;
  p.attackers = static_cast<std::size_t>(attackers);
  return p;
}

}  // namespace

int main() {
  print_header(
      "E-C3  detection delay vs malicious-client fraction (50 clients)",
      "first malicious client detected in ~20 s, last in ~55 s; write "
      "duration grows towards 40 s at 70% malicious");

  std::vector<std::vector<std::string>> rows;
  bool all_blocked = true;
  double last_at_70 = 0, first_min = 1e9, duration_at_70 = 0;
  for (int pct : {10, 30, 50, 70}) {
    DelayPoint p = run_point(pct);
    all_blocked &= p.blocked == p.attackers;
    first_min = std::min(first_min, p.first_s);
    if (pct == 70) {
      last_at_70 = p.last_s;
      duration_at_70 = p.write_duration_s;
    }
    char f[32], l[32], d[32], b[32];
    std::snprintf(f, sizeof(f), "%.1f s", p.first_s);
    std::snprintf(l, sizeof(l), "%.1f s", p.last_s);
    std::snprintf(d, sizeof(d), "%.1f s", p.write_duration_s);
    std::snprintf(b, sizeof(b), "%zu/%zu", p.blocked, p.attackers);
    rows.push_back({std::to_string(pct) + "%", f, l, d, b});
    std::printf("  malicious=%2d%%  first=%s  last=%s  worst 1 GB write=%s"
                "  blocked=%s\n",
                pct, f, l, d, b);
  }
  std::printf("\n%s",
              viz::table({"malicious", "first detection", "last detection",
                          "worst 1GB write", "blocked"},
                         rows)
                  .c_str());
  std::printf("\n  paper: first ~20 s, last ~55 s, write duration -> 40 s "
              "at 70%%\n");
  // An unloaded 1 GB write takes ~8.5 s here; the paper's "towards 40 s"
  // is a ~4x degradation. Our bounded service queues shed load instead of
  // building unbounded backlogs, capping the successful-write slowdown
  // around 2-3x — the direction holds, the magnitude is model-dependent.
  const bool ok = all_blocked && first_min > 5 && first_min < 40 &&
                  last_at_70 > 30 && last_at_70 < 90 &&
                  duration_at_70 > 12.0;
  std::printf("  shape vs paper: %s\n", ok ? "REPRODUCED" : "NOT reproduced");
  return ok ? 0 : 1;
}
