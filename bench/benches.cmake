function(bs_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE ${ARGN})
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR}/bench)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

bs_add_bench(bench_intrusiveness bs_workload bs_mon bs_sec bs_viz)
bs_add_bench(bench_dos_timeline bs_workload bs_mon bs_sec bs_viz)
bs_add_bench(bench_dos_throughput bs_workload bs_mon bs_sec bs_viz)
bs_add_bench(bench_detection_delay bs_workload bs_mon bs_sec bs_viz)
bs_add_bench(bench_viz_tool bs_workload bs_mon bs_sec bs_viz)
bs_add_bench(bench_micro_segment_tree bs_blob benchmark::benchmark)
bs_add_bench(bench_micro_allocation bs_blob benchmark::benchmark)
bs_add_bench(bench_micro_policy_engine bs_sec benchmark::benchmark)
bs_add_bench(bench_micro_sim bs_rpc benchmark::benchmark)
bs_add_bench(bench_micro_flow bs_net benchmark::benchmark)
bs_add_bench(bench_micro_monitoring bs_mon bs_intro benchmark::benchmark)
# Smoke lane for the google-benchmark micro benches: one pass with the
# minimum measuring time so CI catches bit-rot (compile/link/assert/counter
# regressions) without paying for statistically meaningful timings. Run via
# `ctest --preset bench-smoke`. Note: the system benchmark library predates
# the "Nx" iteration-count syntax, so this must stay a plain double.
function(bs_add_bench_smoke name)
  add_test(NAME bench-smoke.${name}
           COMMAND ${name} --benchmark_min_time=0)
  set_tests_properties(bench-smoke.${name} PROPERTIES LABELS "bench-smoke")
endfunction()
bs_add_bench_smoke(bench_micro_segment_tree)
bs_add_bench_smoke(bench_micro_allocation)
bs_add_bench_smoke(bench_micro_policy_engine)
bs_add_bench_smoke(bench_micro_sim)
bs_add_bench_smoke(bench_micro_flow)
bs_add_bench_smoke(bench_micro_monitoring)

# Custom-main population bench (not google-benchmark); --smoke shrinks the
# population and fails on digest mismatch across stepper modes, giving
# tier-1 coverage of the sharded and windowed steppers at workload scale.
bs_add_bench(bench_million_clients bs_workload)
add_test(NAME bench-smoke.bench_million_clients
         COMMAND bench_million_clients --smoke)
set_tests_properties(bench-smoke.bench_million_clients
                     PROPERTIES LABELS "bench-smoke")

# Custom-main crash-recovery cost bench (not google-benchmark); --smoke
# runs the shortest journal sweep and fails on any time-to-readable
# ordering violation or digest drift across suite replays.
bs_add_bench(bench_recovery bs_blob bs_fault)
add_test(NAME bench-smoke.bench_recovery
         COMMAND bench_recovery --smoke)
set_tests_properties(bench-smoke.bench_recovery
                     PROPERTIES LABELS "bench-smoke")

# Custom-main geo-replication bench (not google-benchmark); --smoke runs
# the shortest outage only and fails on any coherence/ordering violation
# or digest drift across suite replays.
bs_add_bench(bench_reconciliation bs_repl bs_fault)
add_test(NAME bench-smoke.bench_reconciliation
         COMMAND bench_reconciliation --smoke)
set_tests_properties(bench-smoke.bench_reconciliation
                     PROPERTIES LABELS "bench-smoke")

# Custom-main S3-gateway bench (not google-benchmark); --smoke runs a
# single dedup ratio and delta size and fails on any ordering violation
# (dedup cuts provider bytes, concurrent parts beat sequential, deltas
# ship fewer wire bytes) or digest drift across suite replays.
bs_add_bench(bench_gateway bs_cloud bs_workload)
add_test(NAME bench-smoke.bench_gateway
         COMMAND bench_gateway --smoke)
set_tests_properties(bench-smoke.bench_gateway
                     PROPERTIES LABELS "bench-smoke")

bs_add_bench(bench_ablation_allocation bs_workload bs_viz)
bs_add_bench(bench_ablation_cache bs_mon bs_viz bs_workload)
bs_add_bench(bench_ablation_replication bs_core bs_mon bs_workload bs_viz)
bs_add_bench(bench_ablation_elasticity bs_core bs_mon bs_workload bs_viz)
bs_add_bench(bench_ablation_removal bs_core bs_mon bs_workload bs_viz)
