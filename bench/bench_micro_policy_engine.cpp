// Microbenchmark: Security Violation Detection Engine scan cost vs number
// of active clients and policy-set size, plus policy parsing throughput.
#include <benchmark/benchmark.h>

#include "sec/engine.hpp"

using namespace bs;
using namespace bs::sec;

namespace {

void fill_activity(intro::UserActivityHistory& uah, int clients) {
  for (int c = 1; c <= clients; ++c) {
    for (int t = 1; t <= 60; ++t) {
      mon::Record r;
      r.key = {mon::Domain::client, static_cast<std::uint64_t>(c),
               mon::Metric::write_ops};
      r.time = simtime::seconds(t);
      r.value = (c % 10 == 0) ? 200 : 5;  // every 10th client floods
      uah.ingest(r);
      r.key.metric = mon::Metric::write_bytes;
      r.value = 1e6;
      uah.ingest(r);
    }
  }
}

void BM_EngineScan(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  sim::Simulation sim;
  sim.run_until(simtime::seconds(60));
  intro::UserActivityHistory uah(simtime::minutes(5));
  fill_activity(uah, clients);
  TrustManager trust;
  PolicyEnforcement enforcement(sim, trust);
  DetectionOptions opts;
  opts.refractory = 0;  // re-evaluate every scan (worst case)
  DetectionEngine engine(sim, uah, trust, enforcement, opts);
  (void)engine.load_source(default_policy_source());
  for (auto _ : state) {
    auto violations = engine.scan();
    benchmark::DoNotOptimize(violations);
  }
  state.SetItemsProcessed(state.iterations() * clients);
}
BENCHMARK(BM_EngineScan)->Arg(10)->Arg(100)->Arg(1000);

void BM_EngineScan_ManyPolicies(benchmark::State& state) {
  const int n_policies = static_cast<int>(state.range(0));
  sim::Simulation sim;
  sim.run_until(simtime::seconds(60));
  intro::UserActivityHistory uah(simtime::minutes(5));
  fill_activity(uah, 100);
  TrustManager trust;
  PolicyEnforcement enforcement(sim, trust);
  DetectionOptions opts;
  opts.refractory = 0;
  DetectionEngine engine(sim, uah, trust, enforcement, opts);
  std::string src;
  for (int i = 0; i < n_policies; ++i) {
    src += "policy p" + std::to_string(i) +
           " { when rate(write_ops, 10s) > " +
           std::to_string(100 + i) + "; then log; }\n";
  }
  (void)engine.load_source(src);
  for (auto _ : state) {
    auto violations = engine.scan();
    benchmark::DoNotOptimize(violations);
  }
  state.SetItemsProcessed(state.iterations() * n_policies);
}
BENCHMARK(BM_EngineScan_ManyPolicies)->Arg(4)->Arg(32)->Arg(128);

void BM_PolicyParse(benchmark::State& state) {
  const std::string src = default_policy_source();
  for (auto _ : state) {
    auto parsed = parse_policies(src);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(src.size()));
}
BENCHMARK(BM_PolicyParse);

}  // namespace

BENCHMARK_MAIN();
