// Gateway bench for the content-addressed multi-tenant S3 front: measures
// what each of the three ingest optimisations buys, in simulated time.
//
//   dedup sweep     : the trace-replay workload (4 tenants, zipf keys,
//                     mixed put/multipart/delta traffic) at shared-content
//                     ratios 0.25 / 0.5 / 0.75 with dedup on, plus a
//                     dedup-off baseline replay of the identical trace.
//                     Reports ingest throughput (logical bytes over the
//                     trace's sim duration), dedup ratio (provider bytes
//                     saved / logical bytes ingested) and bytes that
//                     actually reached providers.
//   multipart sweep : one 8-part upload (2 MB parts), parts shipped
//                     one-at-a-time vs all-at-once — the sim-time speedup
//                     of the parallel part path for the same object.
//   delta sweep     : a 16-chunk object overwritten with 2 / 6 / 12 chunks
//                     changed, as a delta vs as a full-object PUT of the
//                     same new content (each against a fresh deployment
//                     holding the same base). Dedup already spares the
//                     providers the unchanged chunks on the full PUT; the
//                     delta additionally keeps them off the wire, so the
//                     bench reports both wire bytes and provider bytes.
//
// Everything is measured in simulated time, so the numbers are
// bit-identical across machines; the bench replays the whole suite and
// fails if the digest moves. Output is JSON (redirect to BENCH_gateway.json).

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "blob/deployment.hpp"
#include "cloud/gateway.hpp"
#include "workload/gateway_trace.hpp"

namespace {

using namespace bs;

constexpr std::uint64_t kChunk = 1 * units::MB;
constexpr ClientId kUser{7001};

struct Options {
  std::vector<double> shared_ratios{0.25, 0.5, 0.75};
  std::vector<std::uint64_t> delta_changed{2, 6, 12};
  int repeat = 2;      // full-suite replays; digests must match
  bool smoke = false;  // single ratio / single delta, shorter trace
};

/// Order-dependent mixer (same recipe as the test digests): any change in
/// any reported counter or sim-time value moves the suite digest.
struct Digest {
  std::uint64_t v{0x9e3779b97f4a7c15ull};
  void mix(std::uint64_t x) {
    v ^= x + 0x9e3779b97f4a7c15ull + (v << 6) + (v >> 2);
  }
  void mix_signed(std::int64_t x) { mix(static_cast<std::uint64_t>(x)); }
};

/// One gateway deployment: 6 providers on one site, journal-backed
/// metadata, the gateway and a client node. The production-shaped stack
/// the tests use, minus faults.
struct Env {
  sim::Simulation sim;
  std::unique_ptr<blob::Deployment> dep;
  rpc::Node* gw_node{nullptr};
  std::unique_ptr<cloud::S3Gateway> gateway;
  rpc::Node* user{nullptr};

  explicit Env(bool dedup) {
    blob::DeploymentConfig cfg;
    cfg.sites = 1;
    cfg.data_providers = 6;
    cfg.metadata_providers = 2;
    cfg.provider_capacity = 4ull * units::GB;
    cfg.journal.enabled = true;
    dep = std::make_unique<blob::Deployment>(sim, cfg);
    gw_node = dep->cluster().add_node(0);
    cloud::GatewayOptions gopts;
    gopts.object_chunk_size = kChunk;
    gopts.dedup = dedup;
    gopts.journal.enabled = true;
    gateway = std::make_unique<cloud::S3Gateway>(*gw_node, dep->endpoints(),
                                                gopts);
    user = dep->cluster().add_node(0);
  }
};

/// Runs one gateway RPC to completion, advancing sim time in 1 ms steps
/// (quantizes durations, but identically so on every run).
template <class Req, class Resp>
Result<Resp> call(Env& e, Req req) {
  std::optional<Result<Resp>> out;
  rpc::CallOptions copts;
  copts.client = kUser;
  e.sim.spawn([](rpc::Cluster& cl, rpc::Node& src, NodeId dst, Req rq,
                 rpc::CallOptions co,
                 std::optional<Result<Resp>>& o) -> sim::Task<void> {
    o.emplace(co_await cl.call<Req, Resp>(src, dst, std::move(rq), co));
  }(e.dep->cluster(), *e.user, e.gw_node->id(), std::move(req), copts, out));
  const SimTime deadline = e.sim.now() + simtime::minutes(5);
  while (!out && e.sim.now() < deadline) {
    e.sim.run_until(e.sim.now() + simtime::millis(1));
  }
  if (!out) {
    std::fprintf(stderr, "FATAL: gateway call never completed\n");
    std::abort();
  }
  return std::move(*out);
}

/// Whole-object checksum of a synthetic chunk layout (the trace's recipe:
/// the gateway adopts the payload checksum as the etag).
std::uint64_t object_checksum(std::uint64_t size,
                              const std::vector<std::uint64_t>& sums) {
  std::uint64_t d = fnv1a_u64(size);
  for (std::uint64_t s : sums) d = hash_combine(d, s);
  return d;
}

void make_bucket(Env& e, const std::string& bucket) {
  cloud::S3CreateBucketReq mk;
  mk.bucket = bucket;
  auto r = call<cloud::S3CreateBucketReq, cloud::S3CreateBucketResp>(e, mk);
  if (!r.ok()) {
    std::fprintf(stderr, "FATAL: create_bucket failed\n");
    std::abort();
  }
}

/// Full-object PUT of a synthetic layout; returns the etag.
std::uint64_t put_object(Env& e, const std::string& bucket,
                         const std::string& key,
                         const std::vector<std::uint64_t>& sums) {
  cloud::S3PutObjectReq put;
  put.bucket = bucket;
  put.key = key;
  put.payload.size = sums.size() * kChunk;
  put.payload.checksum = object_checksum(put.payload.size, sums);
  put.chunk_sums = sums;
  auto r = call<cloud::S3PutObjectReq, cloud::S3PutObjectResp>(
      e, std::move(put));
  if (!r.ok()) {
    std::fprintf(stderr, "FATAL: put_object failed\n");
    std::abort();
  }
  return r.value().etag;
}

// ---------------------------------------------------------------------------
// Scenario 1: trace-replay dedup sweep.

struct TraceResult {
  double shared_ratio{0};
  bool dedup{true};
  workload::GatewayTraceStats trace;
  std::uint64_t chunks_ingested{0};
  std::uint64_t dedup_hits{0};
  std::uint64_t bytes_to_providers{0};
  std::uint64_t bytes_saved{0};
  SimDuration elapsed{0};
  std::uint64_t state_digest{0};

  [[nodiscard]] double dedup_ratio() const {
    const double logical = static_cast<double>(trace.logical_bytes);
    return logical > 0 ? static_cast<double>(bytes_saved) / logical : 0.0;
  }
  [[nodiscard]] double throughput_mbps() const {
    const double s = simtime::to_seconds(elapsed);
    return s > 0 ? static_cast<double>(trace.logical_bytes) / 1e6 / s : 0.0;
  }
};

TraceResult run_trace(double shared_ratio, bool dedup, bool smoke) {
  Env e(dedup);
  workload::GatewayTraceConfig tc;
  tc.tenants = 4;
  tc.keys_per_tenant = 12;
  tc.ops_per_tenant = smoke ? 12 : 48;
  tc.chunk_size = kChunk;
  tc.max_object_chunks = 6;
  tc.shared_content_ratio = shared_ratio;
  tc.think_time = simtime::millis(20);
  tc.rng_seed = 0xBEAC4ull;  // identical op stream for the on/off pair

  bool done = false;
  TraceResult r;
  r.shared_ratio = shared_ratio;
  r.dedup = dedup;
  e.sim.spawn([](rpc::Node& n, NodeId gw, workload::GatewayTraceConfig c,
                 workload::GatewayTraceStats* st,
                 bool& flag) -> sim::Task<void> {
    co_await workload::GatewayTrace::run(n, gw, c, st);
    flag = true;
  }(*e.user, e.gw_node->id(), tc, &r.trace, done));

  // Poll at 50 ms; the completion time IS the throughput denominator.
  const SimTime deadline = simtime::minutes(120);
  while (!done && e.sim.now() < deadline) {
    e.sim.run_until(e.sim.now() + simtime::millis(50));
  }
  r.elapsed = e.sim.now();

  const cloud::GatewayStats& gs = e.gateway->stats();
  r.chunks_ingested = gs.chunks_ingested;
  r.dedup_hits = gs.dedup_hits;
  r.bytes_to_providers = gs.bytes_to_providers;
  r.bytes_saved = gs.bytes_saved;
  r.state_digest = e.gateway->state_digest();
  return r;
}

// ---------------------------------------------------------------------------
// Scenario 2: sequential vs concurrent multipart parts.

struct MultipartResult {
  std::uint32_t parts{0};
  std::uint64_t part_bytes{0};
  SimDuration sequential{0};
  SimDuration concurrent{0};

  [[nodiscard]] double speedup() const {
    const double c = static_cast<double>(concurrent);
    return c > 0 ? static_cast<double>(sequential) / c : 0.0;
  }
};

/// One multipart upload of `parts` parts, `chunks_per_part` chunks each,
/// content namespaced by `salt` so the two modes never dedup against each
/// other. Returns create->complete sim time.
SimDuration run_one_upload(Env& e, const std::string& key, bool concurrent,
                           std::uint32_t parts,
                           std::uint64_t chunks_per_part,
                           std::uint64_t salt) {
  cloud::S3CreateMultipartReq mk;
  mk.bucket = "bench";
  mk.key = key;
  auto created =
      call<cloud::S3CreateMultipartReq, cloud::S3CreateMultipartResp>(e, mk);
  if (!created.ok()) {
    std::fprintf(stderr, "FATAL: create_multipart failed\n");
    std::abort();
  }
  const SimTime t0 = e.sim.now();

  auto build_part = [&](std::uint32_t p) {
    cloud::S3UploadPartReq up;
    up.bucket = "bench";
    up.key = key;
    up.upload_id = created.value().upload_id;
    up.part_number = p + 1;
    for (std::uint64_t c = 0; c < chunks_per_part; ++c) {
      up.chunk_sums.push_back(fnv1a_u64(salt * 1000 + p * 100 + c));
    }
    up.payload.size = chunks_per_part * kChunk;
    up.payload.checksum = object_checksum(up.payload.size, up.chunk_sums);
    return up;
  };

  if (concurrent) {
    std::uint32_t landed = 0;
    for (std::uint32_t p = 0; p < parts; ++p) {
      e.sim.spawn([](rpc::Cluster& cl, rpc::Node& src, NodeId dst,
                     cloud::S3UploadPartReq rq, rpc::CallOptions co,
                     std::uint32_t& n) -> sim::Task<void> {
        auto resp = co_await cl.call<cloud::S3UploadPartReq,
                                     cloud::S3UploadPartResp>(
            src, dst, std::move(rq), co);
        if (!resp.ok()) {
          std::fprintf(stderr, "FATAL: upload_part failed\n");
          std::abort();
        }
        ++n;
      }(e.dep->cluster(), *e.user, e.gw_node->id(), build_part(p),
        rpc::CallOptions{.client = kUser}, landed));
    }
    const SimTime deadline = e.sim.now() + simtime::minutes(5);
    while (landed < parts && e.sim.now() < deadline) {
      e.sim.run_until(e.sim.now() + simtime::millis(1));
    }
  } else {
    for (std::uint32_t p = 0; p < parts; ++p) {
      auto resp = call<cloud::S3UploadPartReq, cloud::S3UploadPartResp>(
          e, build_part(p));
      if (!resp.ok()) {
        std::fprintf(stderr, "FATAL: upload_part failed\n");
        std::abort();
      }
    }
  }

  cloud::S3CompleteMultipartReq fin;
  fin.bucket = "bench";
  fin.key = key;
  fin.upload_id = created.value().upload_id;
  fin.part_count = parts;
  auto done = call<cloud::S3CompleteMultipartReq,
                   cloud::S3CompleteMultipartResp>(e, fin);
  if (!done.ok()) {
    std::fprintf(stderr, "FATAL: complete_multipart failed\n");
    std::abort();
  }
  return e.sim.now() - t0;
}

MultipartResult run_multipart(std::uint32_t parts,
                              std::uint64_t chunks_per_part) {
  Env e(/*dedup=*/true);
  make_bucket(e, "bench");
  MultipartResult r;
  r.parts = parts;
  r.part_bytes = chunks_per_part * kChunk;
  r.sequential = run_one_upload(e, "seq", /*concurrent=*/false, parts,
                                chunks_per_part, /*salt=*/1);
  r.concurrent = run_one_upload(e, "par", /*concurrent=*/true, parts,
                                chunks_per_part, /*salt=*/2);
  return r;
}

// ---------------------------------------------------------------------------
// Scenario 3: delta sync vs full overwrite.

struct DeltaResult {
  std::uint64_t object_chunks{0};
  std::uint64_t chunks_changed{0};
  std::uint64_t delta_wire_bytes{0};
  std::uint64_t full_wire_bytes{0};
  std::uint64_t delta_provider_bytes{0};
  std::uint64_t full_provider_bytes{0};
  std::uint32_t chunks_shipped{0};
  std::uint32_t chunks_shared{0};
  SimDuration delta_time{0};
  SimDuration full_time{0};

  [[nodiscard]] double wire_reduction() const {
    const double full = static_cast<double>(full_wire_bytes);
    return full > 0
               ? 1.0 - static_cast<double>(delta_wire_bytes) / full
               : 0.0;
  }
};

DeltaResult run_delta(std::uint64_t object_chunks,
                      std::uint64_t chunks_changed) {
  DeltaResult r;
  r.object_chunks = object_chunks;
  r.chunks_changed = chunks_changed;

  std::vector<std::uint64_t> base(object_chunks);
  for (std::uint64_t i = 0; i < object_chunks; ++i) {
    base[i] = fnv1a_u64(0xD417Aull + i);
  }
  std::vector<std::uint64_t> next = base;
  for (std::uint64_t i = 0; i < chunks_changed; ++i) {
    next[i] = fnv1a_u64(0xFE11ull + i);
  }
  const std::uint64_t size = object_chunks * kChunk;

  {  // Delta path: ship only the changed chunks.
    Env e(/*dedup=*/true);
    make_bucket(e, "bench");
    const std::uint64_t base_etag = put_object(e, "bench", "obj", base);
    cloud::S3PutDeltaReq req;
    req.bucket = "bench";
    req.key = "obj";
    req.base_etag = base_etag;
    req.new_size = size;
    req.new_etag = object_checksum(size, next);
    for (std::uint64_t i = 0; i < chunks_changed; ++i) {
      cloud::S3DeltaChunk dc;
      dc.index = i;
      dc.payload.size = kChunk;
      dc.payload.checksum = next[i];
      req.chunks.push_back(std::move(dc));
    }
    r.delta_wire_bytes = req.wire_size();
    const std::uint64_t before = e.gateway->stats().bytes_to_providers;
    const SimTime t0 = e.sim.now();
    auto resp = call<cloud::S3PutDeltaReq, cloud::S3PutDeltaResp>(
        e, std::move(req));
    if (!resp.ok()) {
      std::fprintf(stderr, "FATAL: put_delta failed\n");
      std::abort();
    }
    r.delta_time = e.sim.now() - t0;
    r.delta_provider_bytes = e.gateway->stats().bytes_to_providers - before;
    r.chunks_shipped = resp.value().chunks_shipped;
    r.chunks_shared = resp.value().chunks_shared;
  }

  {  // Full overwrite of the same new content against the same base, in a
     // fresh deployment so nothing leaks between the two measurements.
    Env e(/*dedup=*/true);
    make_bucket(e, "bench");
    put_object(e, "bench", "obj", base);
    cloud::S3PutObjectReq put;
    put.bucket = "bench";
    put.key = "obj";
    put.payload.size = size;
    put.payload.checksum = object_checksum(size, next);
    put.chunk_sums = next;
    r.full_wire_bytes = put.wire_size();
    const std::uint64_t before = e.gateway->stats().bytes_to_providers;
    const SimTime t0 = e.sim.now();
    auto resp = call<cloud::S3PutObjectReq, cloud::S3PutObjectResp>(
        e, std::move(put));
    if (!resp.ok()) {
      std::fprintf(stderr, "FATAL: full overwrite failed\n");
      std::abort();
    }
    r.full_time = e.sim.now() - t0;
    r.full_provider_bytes = e.gateway->stats().bytes_to_providers - before;
  }
  return r;
}

// ---------------------------------------------------------------------------

double ms(SimDuration d) { return static_cast<double>(d) / 1e6; }

struct SuiteResult {
  std::vector<TraceResult> traces;  ///< dedup-on sweep + dedup-off baselines
  std::vector<MultipartResult> multipart;
  std::vector<DeltaResult> deltas;
  std::uint64_t digest{0};
};

SuiteResult run_suite(const Options& opt) {
  SuiteResult suite;
  for (const double ratio : opt.shared_ratios) {
    suite.traces.push_back(run_trace(ratio, /*dedup=*/true, opt.smoke));
    suite.traces.push_back(run_trace(ratio, /*dedup=*/false, opt.smoke));
  }
  suite.multipart.push_back(run_multipart(/*parts=*/8,
                                          /*chunks_per_part=*/2));
  for (const std::uint64_t changed : opt.delta_changed) {
    suite.deltas.push_back(run_delta(/*object_chunks=*/16, changed));
  }

  Digest dg;
  for (const TraceResult& r : suite.traces) {
    dg.mix(r.dedup ? 1 : 0);
    dg.mix(r.trace.digest);
    dg.mix(r.trace.puts + r.trace.multipart_puts + r.trace.delta_puts);
    dg.mix(r.trace.failures);
    dg.mix(r.trace.logical_bytes);
    dg.mix(r.trace.wire_bytes);
    dg.mix(r.chunks_ingested);
    dg.mix(r.dedup_hits);
    dg.mix(r.bytes_to_providers);
    dg.mix(r.bytes_saved);
    dg.mix(r.state_digest);
    dg.mix_signed(r.elapsed);
  }
  for (const MultipartResult& r : suite.multipart) {
    dg.mix_signed(r.sequential);
    dg.mix_signed(r.concurrent);
  }
  for (const DeltaResult& r : suite.deltas) {
    dg.mix(r.delta_wire_bytes);
    dg.mix(r.full_wire_bytes);
    dg.mix(r.delta_provider_bytes);
    dg.mix(r.full_provider_bytes);
    dg.mix(r.chunks_shipped);
    dg.mix(r.chunks_shared);
    dg.mix_signed(r.delta_time);
    dg.mix_signed(r.full_time);
  }
  suite.digest = dg.v;
  return suite;
}

// The claims the bench exists to demonstrate, enforced so bench-smoke
// turns a regression into a hard failure: dedup strictly cuts provider
// bytes on the identical trace and the saving grows with shared content;
// concurrent parts beat sequential parts; a delta ships strictly fewer
// wire bytes than the full overwrite and names exactly the changed chunks.
bool check_orderings(const SuiteResult& suite) {
  bool ok = true;
  auto fail = [&ok](const char* what, double a) {
    std::fprintf(stderr, "FAIL: ordering '%s' violated (%g)\n", what, a);
    ok = false;
  };

  double prev_saved = -1.0;
  for (std::size_t i = 0; i + 1 < suite.traces.size(); i += 2) {
    const TraceResult& on = suite.traces[i];
    const TraceResult& off = suite.traces[i + 1];
    if (on.trace.failures != 0 || off.trace.failures != 0) {
      fail("trace replay is failure-free", on.shared_ratio);
    }
    // The op stream is seed-driven and fault-free, so the baseline must
    // replay the exact same workload (the digests differ only through the
    // chunks_deduped counters the responses carry).
    if (on.trace.logical_bytes != off.trace.logical_bytes ||
        on.trace.puts != off.trace.puts ||
        on.trace.delta_puts != off.trace.delta_puts) {
      fail("on/off replay the identical trace", on.shared_ratio);
    }
    if (on.dedup_hits == 0) fail("dedup hits occur", on.shared_ratio);
    if (on.bytes_to_providers >= off.bytes_to_providers) {
      fail("dedup cuts provider bytes", on.shared_ratio);
    }
    if (off.bytes_saved != 0) {
      fail("dedup-off baseline saves nothing", on.shared_ratio);
    }
    if (static_cast<double>(on.bytes_saved) <= prev_saved) {
      fail("saving grows with shared content", on.shared_ratio);
    }
    prev_saved = static_cast<double>(on.bytes_saved);
  }
  for (const MultipartResult& r : suite.multipart) {
    if (r.concurrent >= r.sequential) {
      fail("concurrent parts beat sequential", r.parts);
    }
  }
  std::uint64_t prev_wire = 0;
  for (const DeltaResult& r : suite.deltas) {
    if (r.delta_wire_bytes >= r.full_wire_bytes) {
      fail("delta ships fewer wire bytes",
           static_cast<double>(r.chunks_changed));
    }
    if (r.chunks_shipped != r.chunks_changed ||
        r.chunks_shared != r.object_chunks - r.chunks_changed) {
      fail("delta names exactly the changed chunks",
           static_cast<double>(r.chunks_changed));
    }
    if (r.delta_wire_bytes <= prev_wire) {
      fail("delta cost grows with changed chunks",
           static_cast<double>(r.chunks_changed));
    }
    prev_wire = r.delta_wire_bytes;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--repeat=", 0) == 0) {
      opt.repeat = std::atoi(arg.substr(arg.find('=') + 1).c_str());
      if (opt.repeat < 1) opt.repeat = 1;
    } else if (arg == "--smoke") {
      opt.smoke = true;
      opt.shared_ratios = {0.5};
      opt.delta_changed = {6};
    } else {
      std::fprintf(stderr, "usage: %s [--repeat=N] [--smoke]\n", argv[0]);
      return 2;
    }
  }

  const SuiteResult suite = run_suite(opt);
  bool reproducible = true;
  for (int i = 1; i < opt.repeat; ++i) {
    const SuiteResult again = run_suite(opt);
    reproducible = reproducible && again.digest == suite.digest;
  }
  const bool orderings_ok = check_orderings(suite);

  std::printf("{\n");
  std::printf("  \"bench\": \"bench_gateway\",\n");
  std::printf("  \"smoke\": %s,\n", opt.smoke ? "true" : "false");
  std::printf("  \"chunk_bytes\": %" PRIu64 ",\n", kChunk);
  std::printf("  \"dedup_sweep\": [\n");
  for (std::size_t i = 0; i < suite.traces.size(); ++i) {
    const TraceResult& r = suite.traces[i];
    std::printf("    {\"shared_content_ratio\": %g, \"dedup\": %s, "
                "\"logical_mb\": %.1f, "
                "\"provider_mb\": %.1f, "
                "\"saved_mb\": %.1f, "
                "\"dedup_ratio\": %.3f, "
                "\"chunks_ingested\": %" PRIu64 ", "
                "\"dedup_hits\": %" PRIu64 ", "
                "\"trace_sim_s\": %.1f, "
                "\"ingest_mb_per_sim_s\": %.1f, "
                "\"failures\": %" PRIu64 "}%s\n",
                r.shared_ratio, r.dedup ? "true" : "false",
                static_cast<double>(r.trace.logical_bytes) / 1e6,
                static_cast<double>(r.bytes_to_providers) / 1e6,
                static_cast<double>(r.bytes_saved) / 1e6, r.dedup_ratio(),
                r.chunks_ingested, r.dedup_hits,
                simtime::to_seconds(r.elapsed), r.throughput_mbps(),
                r.trace.failures, i + 1 < suite.traces.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"multipart\": [\n");
  for (std::size_t i = 0; i < suite.multipart.size(); ++i) {
    const MultipartResult& r = suite.multipart[i];
    std::printf("    {\"parts\": %u, \"part_mb\": %.1f, "
                "\"sequential_ms\": %.1f, "
                "\"concurrent_ms\": %.1f, "
                "\"speedup\": %.2f}%s\n",
                r.parts, static_cast<double>(r.part_bytes) / 1e6,
                ms(r.sequential), ms(r.concurrent), r.speedup(),
                i + 1 < suite.multipart.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"delta_sweep\": [\n");
  for (std::size_t i = 0; i < suite.deltas.size(); ++i) {
    const DeltaResult& r = suite.deltas[i];
    std::printf("    {\"object_chunks\": %" PRIu64 ", "
                "\"chunks_changed\": %" PRIu64 ", "
                "\"delta_wire_mb\": %.2f, "
                "\"full_wire_mb\": %.2f, "
                "\"wire_reduction\": %.3f, "
                "\"delta_provider_mb\": %.2f, "
                "\"full_provider_mb\": %.2f, "
                "\"chunks_shipped\": %u, \"chunks_shared\": %u, "
                "\"delta_ms\": %.1f, \"full_put_ms\": %.1f}%s\n",
                r.object_chunks, r.chunks_changed,
                static_cast<double>(r.delta_wire_bytes) / 1e6,
                static_cast<double>(r.full_wire_bytes) / 1e6,
                r.wire_reduction(),
                static_cast<double>(r.delta_provider_bytes) / 1e6,
                static_cast<double>(r.full_provider_bytes) / 1e6,
                r.chunks_shipped, r.chunks_shared, ms(r.delta_time),
                ms(r.full_time), i + 1 < suite.deltas.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"orderings_ok\": %s,\n", orderings_ok ? "true" : "false");
  std::printf("  \"reproducible\": %s,\n", reproducible ? "true" : "false");
  std::printf("  \"digest\": \"%016" PRIx64 "\"\n", suite.digest);
  std::printf("}\n");

  if (!reproducible) {
    std::fprintf(stderr, "FAIL: suite digest moved across replays\n");
    return 1;
  }
  return orderings_ok ? 0 : 1;
}
