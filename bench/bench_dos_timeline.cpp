// Experiment E-C1 (§IV-C, first experiment): evolution in time of the
// average throughput of concurrent writers while the system is under a DoS
// attack, with the Policy Management module enabled.
//
// Paper setup: 70 BlobSeer nodes, 8 monitoring services, up to 50 clients.
// Reported result: "the initial average throughput has a sudden decrease
// (up to 70%) when the malicious clients start attacking the system. As the
// Policy Management module detects the policy violations, it feeds back
// this information to BlobSeer, enabling it to block the malicious clients,
// so that the throughput of the remaining clients increases back towards
// its initial value."
#include "dos_common.hpp"

using namespace bs;
using namespace bs::bench;

int main() {
  const SimTime kAttackStart = simtime::seconds(60);
  const SimTime kEnd = simtime::seconds(300);
  constexpr int kHonest = 25;
  constexpr int kAttackers = 25;

  print_header(
      "E-C1  throughput timeline under DoS (25 correct + 25 malicious)",
      "sudden decrease (up to 70%) at attack start; recovery towards the "
      "initial value once attackers are detected and blocked");

  sim::Simulation sim;
  StackConfig cfg = dos_stack_config(/*with_security=*/true);
  Stack stack(sim, cfg);
  DosScenario sc;
  launch_dos_workload(sim, stack, sc, kHonest, kAttackers, kAttackStart,
                      kEnd);
  sim.run_until(kEnd);

  // Detection events.
  SimTime first_block = simtime::kInfinite, last_block = 0;
  std::size_t blocked = 0;
  for (const auto& entry : stack.security->enforcement().action_log()) {
    if (entry.action.type == sec::Action::Type::block) {
      first_block = std::min(first_block, entry.time);
      last_block = std::max(last_block, entry.time);
      ++blocked;
    }
  }

  // Per-client average throughput timeline, 10 s bins.
  auto series = sc.tracker.mbps_series(0, kEnd);
  std::printf("\n  time   avg MB/s per correct client\n");
  std::vector<double> binned;
  for (std::size_t t = 0; t + 10 <= series.size(); t += 10) {
    double sum = 0;
    for (std::size_t k = t; k < t + 10; ++k) sum += series[k];
    const double per_client = sum / 10.0 / kHonest;
    binned.push_back(per_client);
    const char* marker = "";
    if (t <= 60 && 60 < t + 10) marker = "  <- attack starts";
    if (first_block != simtime::kInfinite &&
        simtime::seconds(t) <= first_block &&
        first_block < simtime::seconds(t + 10)) {
      marker = "  <- first attacker blocked";
    }
    if (last_block > 0 && simtime::seconds(t) <= last_block &&
        last_block < simtime::seconds(t + 10)) {
      marker = "  <- last attacker blocked";
    }
    std::printf("  %3zu-%3zus  %7.1f  %s%s\n", t, t + 10, per_client,
                std::string(static_cast<std::size_t>(per_client / 3), '#')
                    .c_str(),
                marker);
  }

  const double initial =
      sc.tracker.mean_mbps(simtime::seconds(10), kAttackStart) / kHonest;
  const double dip =
      sc.tracker.mean_mbps(kAttackStart + simtime::seconds(5),
                           std::min(first_block, kEnd)) /
      kHonest;
  const double recovered =
      sc.tracker.mean_mbps(last_block + simtime::seconds(30), kEnd) /
      kHonest;

  std::printf("\n  initial throughput : %6.1f MB/s per client\n", initial);
  std::printf("  during attack      : %6.1f MB/s (drop %.0f%%; paper: up "
              "to ~70%%)\n",
              dip, (1.0 - dip / initial) * 100.0);
  std::printf("  after blocking     : %6.1f MB/s (%.0f%% of initial; "
              "paper: back towards initial)\n",
              recovered, recovered / initial * 100.0);
  std::printf("  attackers blocked  : %zu/%d (first %+.1fs, last %+.1fs "
              "after attack start)\n",
              blocked, kAttackers,
              simtime::to_seconds(first_block - kAttackStart),
              simtime::to_seconds(last_block - kAttackStart));
  const bool shape_ok = dip < 0.6 * initial && recovered > 0.75 * initial &&
                        blocked == kAttackers;
  std::printf("  shape vs paper     : %s\n",
              shape_ok ? "REPRODUCED" : "NOT reproduced");
  return shape_ok ? 0 : 1;
}
