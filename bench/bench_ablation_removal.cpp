// Ablation: data-removal strategies (§V self-optimization). An
// overwrite-heavy workload (checkpoint-style: the same region rewritten
// repeatedly) under different removal policies; reports steady-state
// storage footprint and retained history depth.
#include "core/controller.hpp"
#include "core/removal.hpp"
#include "harness.hpp"

using namespace bs;
using namespace bs::bench;

namespace {

struct Outcome {
  double final_stored_mb;
  double peak_stored_mb;
  std::uint64_t versions_left;
};

Outcome run_case(std::size_t keep_versions, bool ttl_enabled) {
  sim::Simulation sim;
  StackConfig scfg;
  scfg.providers = 8;
  scfg.metadata_providers = 2;
  scfg.monitoring = true;
  Stack stack(sim, scfg);

  core::AutonomicController controller(*stack.dep, *stack.intro);
  core::RemovalOptions ropts;
  ropts.keep_versions = keep_versions;
  ropts.ttl_enabled = ttl_enabled;
  controller.add_module(std::make_unique<core::RemovalModule>(ropts));
  controller.start();

  blob::BlobClient* client = stack.add_client();
  // A durable checkpoint blob, rewritten every 10 s...
  auto ckpt = run_task(sim, client->create(8 * units::MB));
  // ...plus short-lived scratch blobs (TTL 30 s) created every 15 s.
  sim.spawn([](sim::Simulation& s, blob::BlobClient& c,
               BlobId checkpoint) -> sim::Task<void> {
    for (int round = 0; round < 18; ++round) {
      (void)co_await c.write(
          checkpoint, 0,
          blob::Payload::synthetic(64 * units::MB, round));
      co_await s.delay(simtime::seconds(10));
    }
  }(sim, *client, ckpt.value()));
  sim.spawn([](sim::Simulation& s, blob::BlobClient& c) -> sim::Task<void> {
    for (int i = 0; i < 12; ++i) {
      auto scratch = co_await c.create(8 * units::MB, 1,
                                       /*ttl=*/simtime::seconds(30));
      if (scratch.ok()) {
        (void)co_await c.write(
            *scratch, 0, blob::Payload::synthetic(32 * units::MB, i));
      }
      co_await s.delay(simtime::seconds(15));
    }
  }(sim, *client));

  double peak = 0;
  sim.spawn([](sim::Simulation& s, blob::Deployment& d,
               double& pk) -> sim::Task<void> {
    while (s.now() < simtime::minutes(6)) {
      std::uint64_t used = 0;
      for (auto& p : d.providers()) used += p->used();
      pk = std::max(pk, static_cast<double>(used));
      co_await s.delay(simtime::seconds(2));
    }
  }(sim, *stack.dep, peak));

  sim.run_until(simtime::minutes(6));

  Outcome out{};
  std::uint64_t used = 0;
  for (auto& p : stack.dep->providers()) used += p->used();
  out.final_stored_mb = static_cast<double>(used) / 1e6;
  out.peak_stored_mb = peak / 1e6;
  auto versions = run_task(sim, client->versions(ckpt.value()));
  out.versions_left = versions.ok() ? versions.value().size() : 0;
  return out;
}

}  // namespace

int main() {
  print_header(
      "ABLATION  data-removal strategies (checkpoint overwrites + "
      "TTL scratch data)",
      "design choice: version trimming bounds the history of "
      "overwrite-heavy blobs; TTL GC reclaims temporary data "
      "(18 x 64 MB checkpoint rewrites + 12 x 32 MB scratch blobs)");

  std::vector<std::vector<std::string>> rows;
  struct Case {
    const char* name;
    std::size_t keep;
    bool ttl;
  };
  for (const Case c :
       {Case{"no removal", 0, false}, Case{"ttl only", 0, true},
        Case{"keep 4 versions + ttl", 4, true},
        Case{"keep 1 version + ttl", 1, true}}) {
    Outcome o = run_case(c.keep, c.ttl);
    char f[32], p[32], v[32];
    std::snprintf(f, sizeof(f), "%.0f", o.final_stored_mb);
    std::snprintf(p, sizeof(p), "%.0f", o.peak_stored_mb);
    std::snprintf(v, sizeof(v), "%llu",
                  (unsigned long long)o.versions_left);
    rows.push_back({c.name, f, p, v});
    std::printf("  %-22s final=%s MB  peak=%s MB  ckpt versions=%s\n",
                c.name, f, p, v);
  }
  std::printf("\n%s", viz::table({"strategy", "final stored MB",
                                  "peak stored MB",
                                  "checkpoint versions kept"},
                                 rows)
                          .c_str());
  std::printf("\nshape: without removal the footprint is the full write "
              "history (~1.5 GB); TTL GC reclaims scratch data; version "
              "trimming caps the checkpoint history at the configured "
              "depth, bounding steady-state storage near the live data "
              "size.\n");
  return 0;
}
