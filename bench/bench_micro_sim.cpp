// Microbenchmark: raw substrate performance — event-queue throughput,
// coroutine task switching, flow-scheduler arrival/departure cost, RPC
// round trips. These bound how large an experiment the simulator can run.
#include <benchmark/benchmark.h>

#include "alloc_probe.hpp"
#include "net/flow.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rpc/rpc.hpp"
#include "sim/frame_pool.hpp"
#include "sim/sync.hpp"

using namespace bs;

namespace {

void BM_EventQueue(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    int fired = 0;
    for (int i = 0; i < batch; ++i) {
      sim.schedule_at(i, [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueue)->Arg(1000)->Arg(100000);

// The same-time fast lane: every event lands at t <= now and is serviced
// from the ring buffer without ever touching the heap. This is the shape of
// schedule_resume / zero-delay wakeups — the most common event kind.
void BM_SameTimeLane(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    int fired = 0;
    for (int i = 0; i < batch; ++i) {
      sim.schedule_at(0, [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SameTimeLane)->Arg(1000)->Arg(100000);

// Actor spawn/teardown cost with the frame pool warm. The probe counters
// prove the steady state is allocation-free: after warm-up, every spawn's
// frames (tracked root + task) come from the pool's free lists and the
// whole iteration performs zero global operator new calls.
void BM_ActorSpawn(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  sim::Simulation sim;
  auto actor = [](int& acc) -> sim::Task<void> {
    ++acc;
    co_return;
  };
  int acc = 0;
  for (int i = 0; i < 64; ++i) sim.spawn(actor(acc));  // warm the pool
  sim.run();
  std::uint64_t allocs = 0;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    const std::uint64_t before = bench::alloc_probe::allocations();
    for (int i = 0; i < batch; ++i) sim.spawn(actor(acc));
    sim.run();
    allocs += bench::alloc_probe::allocations() - before;
    ops += static_cast<std::uint64_t>(batch);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
  state.counters["allocs_per_op"] =
      static_cast<double>(allocs) / static_cast<double>(ops);
}
BENCHMARK(BM_ActorSpawn)->Arg(1000);

void BM_CoroutinePingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    sim::Mailbox<int> a(sim), b(sim);
    constexpr int kRounds = 1000;
    sim.spawn([](sim::Mailbox<int>& in, sim::Mailbox<int>& out)
                  -> sim::Task<void> {
      for (int i = 0; i < kRounds; ++i) {
        out.push(co_await in.recv() + 1);
      }
    }(a, b));
    int last = 0;
    sim.spawn([](sim::Mailbox<int>& in, sim::Mailbox<int>& out,
                 int& result) -> sim::Task<void> {
      out.push(0);
      for (int i = 0; i < kRounds; ++i) {
        const int v = co_await in.recv();
        if (i + 1 < kRounds) out.push(v);
        result = v;
      }
    }(b, a, last));
    sim.run();
    benchmark::DoNotOptimize(last);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_CoroutinePingPong);

void BM_FlowChurn(benchmark::State& state) {
  // `concurrent` flows alive at once; measure cost per completed flow
  // (each arrival/departure triggers a max-min rate recomputation).
  const int concurrent = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    net::FlowScheduler flows(sim);
    auto* link = flows.create_resource("link", net::mb_per_sec(1000));
    sim::WaitGroup wg(sim);
    for (int i = 0; i < concurrent; ++i) {
      wg.launch([](sim::Simulation& s, net::FlowScheduler& f,
                   net::Resource* r, int idx) -> sim::Task<void> {
        co_await s.delay(simtime::millis(idx));
        for (int k = 0; k < 8; ++k) {
          std::vector<net::Resource*> rs{r};
          co_await f.transfer(1e6, std::move(rs));
        }
      }(sim, flows, link, i));
    }
    sim.run();
    benchmark::DoNotOptimize(flows.completed_flows());
  }
  state.SetItemsProcessed(state.iterations() * concurrent * 8);
}
BENCHMARK(BM_FlowChurn)->Arg(8)->Arg(64)->Arg(256);

struct PingReq {
  static constexpr const char* kName = "bench.ping";
  std::uint64_t wire_size() const { return 32; }
};
struct PingResp {
  std::uint64_t wire_size() const { return 32; }
};

void BM_RpcRoundTrip(benchmark::State& state) {
  sim::Simulation sim;
  rpc::Cluster cluster(sim, net::Topology::single_site());
  rpc::Node* server = cluster.add_node(0);
  rpc::Node* client = cluster.add_node(0);
  server->serve<PingReq, PingResp>(
      [](const PingReq&, const rpc::Envelope&)
          -> sim::Task<Result<PingResp>> { co_return PingResp{}; });
  auto one_call = [&] {
    bool done = false;
    sim.spawn([](rpc::Cluster& c, rpc::Node& n, NodeId to,
                 bool& flag) -> sim::Task<void> {
      auto r = co_await c.call<PingReq, PingResp>(n, to, PingReq{});
      benchmark::DoNotOptimize(r);
      flag = true;
    }(cluster, *client, server->id(), done));
    while (!done && sim.step()) {
    }
  };
  for (int i = 0; i < 16; ++i) one_call();  // warm the frame pool
  const std::uint64_t frame_allocs_before =
      sim::FramePool::instance().stats().heap_allocs;
  for (auto _ : state) {
    one_call();
  }
  state.SetItemsProcessed(state.iterations());
  // Frame-pool discipline across the measured window: every coroutine frame
  // the RPC path spawned (client task, call attempt, handler, timeout
  // watcher chain) must come from the pool's free lists — zero frame-sized
  // trips to the heap per op once the pool is warm.
  state.counters["frame_heap_allocs_per_op"] =
      static_cast<double>(sim::FramePool::instance().stats().heap_allocs -
                          frame_allocs_before) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_RpcRoundTrip);

// Same round trip with a TraceSink + MetricsRegistry installed: the cost of
// actually recording spans/counters. BM_RpcRoundTrip above is the
// tracing-compiled-in-but-disabled case; the BS_TRACE=OFF build of it is the
// compiled-out baseline the <2% overhead acceptance compares against.
void BM_RpcRoundTripTraced(benchmark::State& state) {
  sim::Simulation sim;
  obs::TraceSink sink;
  obs::MetricsRegistry registry;
  sim.attach_trace(sink);
  obs::ScopedMetrics metrics_scope(registry);
  rpc::Cluster cluster(sim, net::Topology::single_site());
  rpc::Node* server = cluster.add_node(0);
  rpc::Node* client = cluster.add_node(0);
  server->serve<PingReq, PingResp>(
      [](const PingReq&, const rpc::Envelope&)
          -> sim::Task<Result<PingResp>> { co_return PingResp{}; });
  for (auto _ : state) {
    bool done = false;
    sim.spawn([](rpc::Cluster& c, rpc::Node& n, NodeId to,
                 bool& flag) -> sim::Task<void> {
      auto r = co_await c.call<PingReq, PingResp>(n, to, PingReq{});
      benchmark::DoNotOptimize(r);
      flag = true;
    }(cluster, *client, server->id(), done));
    while (!done && sim.step()) {
    }
  }
  sim::Simulation::detach_trace();
  state.SetItemsProcessed(state.iterations());
  state.counters["trace_records"] =
      static_cast<double>(sink.size() + sink.dropped());
}
BENCHMARK(BM_RpcRoundTripTraced);

}  // namespace

BENCHMARK_MAIN();
