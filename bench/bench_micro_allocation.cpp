// Microbenchmark: provider-manager allocation strategies — placement cost
// per chunk vs pool size, for each strategy.
#include <benchmark/benchmark.h>

#include "blob/allocation.hpp"

using namespace bs;
using namespace bs::blob;

namespace {

std::vector<ProviderEntry> make_pool(std::size_t n) {
  std::vector<ProviderEntry> pool(n);
  Rng rng(5);
  for (std::size_t i = 0; i < n; ++i) {
    pool[i].node = NodeId{i};
    pool[i].capacity = 64ull << 30;
    pool[i].free_space = rng.next_below(64ull << 30);
    pool[i].chunks = rng.next_below(10000);
    pool[i].store_rate = rng.uniform(0, 2e8);
  }
  return pool;
}

void run_strategy(benchmark::State& state, const char* name) {
  auto strategy = make_strategy(name);
  auto pool = make_pool(static_cast<std::size_t>(state.range(0)));
  Rng rng(11);
  for (auto _ : state) {
    std::vector<ProviderEntry*> candidates;
    candidates.reserve(pool.size());
    for (auto& e : pool) candidates.push_back(&e);
    auto placed = strategy->place_chunk(candidates, 64 << 20,
                                        /*replication=*/3, rng);
    benchmark::DoNotOptimize(placed);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Alloc_RoundRobin(benchmark::State& state) {
  run_strategy(state, "round_robin");
}
void BM_Alloc_Random(benchmark::State& state) {
  run_strategy(state, "random");
}
void BM_Alloc_LoadAware(benchmark::State& state) {
  run_strategy(state, "load_aware");
}
BENCHMARK(BM_Alloc_RoundRobin)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK(BM_Alloc_Random)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK(BM_Alloc_LoadAware)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
