// Shared setup for the §IV-C self-protection experiments: the paper's
// testbed was "70 BlobSeer nodes, 8 monitoring services and up to 50
// concurrent clients" on Grid'5000. Here: 56 data providers + 8 metadata
// providers + managers (≈70 BlobSeer nodes), 8 monitoring services, and the
// same client counts. Providers are modelled DoS-sensitive: one request
// slot, 5 ms service overhead (200 req/s), bounded queue — so a flood of
// small writes saturates request processing exactly like the paper's
// attack, while honest bulk transfers are bandwidth-bound.
#pragma once

#include "harness.hpp"

namespace bs::bench {

inline StackConfig dos_stack_config(bool with_security) {
  StackConfig cfg;
  cfg.providers = 56;
  cfg.metadata_providers = 8;
  cfg.monitoring_services = 8;
  cfg.storage_servers = 2;
  cfg.node_spec.service_concurrency = 1;
  cfg.node_spec.service_overhead = simtime::millis(25);  // 40 req/s/provider
  cfg.node_spec.service_queue_limit = 64;
  cfg.security = with_security;
  // Pipeline latencies comparable to a MonALISA deployment: 1 s
  // instrumentation flush, 2 s aggregation flush, 5 s detection scans.
  cfg.instrument.flush_interval = simtime::seconds(1);
  cfg.service_flush = simtime::seconds(2);
  cfg.security_config.detection.scan_interval = simtime::seconds(5);
  // The flood policy: no honest client issues anywhere near 60 chunk
  // writes per second (a 1 Gb/s writer moves ~2 x 64 MB chunks/s). The
  // 60 s window is what spreads detection delay across attacker
  // aggressiveness levels.
  cfg.security_config.policy_source =
      "policy dos_write_flood {\n"
      "  severity high;\n"
      "  description \"chunk-write request flood\";\n"
      "  when rate(write_ops, 60s) > 60;\n"
      "  then block(300s), trust(-0.4), alert;\n"
      "}\n";
  return cfg;
}

struct DosScenario {
  Stack* stack{nullptr};
  std::vector<blob::BlobClient*> honest;
  std::vector<workload::ClientRunStats> honest_stats;
  std::vector<workload::AttackerStats> attacker_stats;
  workload::ThroughputTracker tracker{simtime::seconds(1)};
};

/// Launches `n_honest` loop-forever writers (64 MB appends to private
/// blobs) and `n_attackers` staggered-rate flooders starting at
/// `attack_start`.
inline void launch_dos_workload(sim::Simulation& sim, Stack& stack,
                                DosScenario& sc, int n_honest,
                                int n_attackers, SimTime attack_start,
                                SimTime deadline,
                                std::uint64_t op_bytes = 256 * units::MB) {
  sc.stack = &stack;
  sc.honest_stats.resize(n_honest);
  for (int i = 0; i < n_honest; ++i) {
    blob::BlobClient* c = stack.add_client();
    sc.honest.push_back(c);
    auto blob = run_task(sim, c->create(64 * units::MB));
    workload::WriterOptions w;
    w.loop_forever = true;
    w.op_bytes = op_bytes;
    w.deadline = deadline;
    sim.spawn(workload::Writer::run(*c, blob.value(), w,
                                    &sc.honest_stats[i], &sc.tracker));
  }
  std::vector<NodeId> targets;
  for (auto& p : stack.dep->providers()) targets.push_back(p->id());
  sc.attacker_stats.resize(n_attackers);
  Rng rng(0xA77AC4);
  for (int i = 0; i < n_attackers; ++i) {
    rpc::Node* node = stack.dep->cluster().add_node(stack.dep->next_site());
    workload::AttackerOptions a;
    // Heterogeneous aggressiveness: barely-over-threshold attackers take
    // much longer to cross the 60 s rate window than blatant ones.
    a.request_rate = rng.uniform(90.0, 400.0);
    a.start = attack_start;
    a.deadline = deadline;
    a.rng_seed = 1000 + i;
    sim.spawn(workload::DosAttacker::run(*node,
                                         ClientId{500 + static_cast<std::uint64_t>(i)},
                                         targets,
                                         a, &sc.attacker_stats[i]));
  }
}

}  // namespace bs::bench
