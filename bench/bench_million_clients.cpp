// Production-scale population bench: 10^6 pooled lite clients with
// phase-shifted diurnal arrival curves over the 9-site grid5000 topology.
// Runs the same workload through the stepper configurations —
//   single : one global lane (BS_SIM_LANES=off equivalent, the oracle)
//   lanes  : per-site lanes, serial sharded stepper
//   threads:N : per-site lanes + windowed parallel stepper
// — asserting digest equality between them and reporting events/sec, wall
// time and peak RSS per mode as JSON (redirect to BENCH_sim_lanes.json).
//
// Not a google-benchmark binary: one run is tens of millions of events, so
// the bench controls its own repetitions and measures whole-run wall time.
//
// bslint: allow-file(det-wallclock): benchmark harness timing; the
// simulated workload itself is wall-clock-free.

#include <cinttypes>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/topology.hpp"
#include "sim/simulation.hpp"
#include "workload/lite_clients.hpp"

namespace {

struct Options {
  std::size_t clients = 1'000'000;
  std::size_t sites = 9;
  long sim_minutes = 120;
  unsigned threads = 0;  // for the "threads" mode
  std::uint64_t seed = 0x11e7'c11e'7001ull;
  int repeat = 3;      // best-of-N wall time per mode (noise control)
  bool smoke = false;  // small population + fail on digest mismatch
};

struct ModeResult {
  const char* mode;
  double wall_s;
  std::uint64_t events;
  std::uint64_t ops;
  std::uint64_t digest;
  std::uint64_t windows;
  long peak_rss_mb;
};

long peak_rss_mb() {
  // VmHWM is the process high-water mark — monotonic across modes, so later
  // modes inherit earlier peaks; the first (largest-footprint) mode defines
  // it in practice.
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  long kb = -1;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = std::strtol(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb < 0 ? -1 : kb / 1024;
}

ModeResult run_once(const char* mode, const Options& opt, unsigned threads,
                    bool lanes) {
  bs::sim::Simulation sim;
  bs::net::Topology topo = bs::net::Topology::grid5000(opt.sites);
  if (lanes) {
    sim.configure_sites(topo.site_count(), topo.min_cross_site_latency());
    if (threads > 0) sim.set_worker_threads(threads);
  }
  bs::workload::LiteParams params;
  params.clients = opt.clients;
  params.end = bs::simtime::minutes(opt.sim_minutes);
  params.seed = opt.seed;
  bs::workload::LiteClientPool pool(sim, topo, params);
  pool.start();

  const auto t0 = std::chrono::steady_clock::now();
  sim.run();
  const auto t1 = std::chrono::steady_clock::now();

  ModeResult r;
  r.mode = mode;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.events = sim.events_processed();
  r.ops = pool.total_ops();
  r.digest = pool.digest();
  r.windows = sim.windows_run();
  r.peak_rss_mb = peak_rss_mb();
  return r;
}

// Wall-clock noise control: the simulated run is bit-identical every time
// (same digest, same event count — verified here), so repeats only sample
// machine jitter and the fastest run is the honest throughput estimate.
ModeResult run_mode(const char* mode, const Options& opt, unsigned threads,
                    bool lanes) {
  ModeResult best = run_once(mode, opt, threads, lanes);
  for (int i = 1; i < opt.repeat; ++i) {
    const ModeResult r = run_once(mode, opt, threads, lanes);
    if (r.digest != best.digest || r.events != best.events) {
      std::fprintf(stderr, "FAIL: %s mode not reproducible across repeats\n",
                   mode);
      std::exit(1);
    }
    if (r.wall_s < best.wall_s) best = r;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto val = [&arg] { return arg.substr(arg.find('=') + 1); };
    if (arg.rfind("--clients=", 0) == 0) {
      opt.clients = std::strtoull(val().c_str(), nullptr, 10);
    } else if (arg.rfind("--sites=", 0) == 0) {
      opt.sites = std::strtoull(val().c_str(), nullptr, 10);
    } else if (arg.rfind("--sim-minutes=", 0) == 0) {
      opt.sim_minutes = std::strtol(val().c_str(), nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      opt.threads = static_cast<unsigned>(
          std::strtoul(val().c_str(), nullptr, 10));
    } else if (arg.rfind("--seed=", 0) == 0) {
      opt.seed = std::strtoull(val().c_str(), nullptr, 10);
    } else if (arg.rfind("--repeat=", 0) == 0) {
      opt.repeat = static_cast<int>(std::strtol(val().c_str(), nullptr, 10));
      if (opt.repeat < 1) opt.repeat = 1;
    } else if (arg == "--smoke") {
      opt.smoke = true;
      opt.clients = 20'000;
      opt.sim_minutes = 30;
      opt.repeat = 1;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--clients=N] [--sites=N] [--sim-minutes=N] "
                   "[--threads=N] [--seed=N] [--repeat=N] [--smoke]\n",
                   argv[0]);
      return 2;
    }
  }

  ModeResult results[3];
  int n = 0;
  results[n++] = run_mode("single", opt, 0, /*lanes=*/false);
  results[n++] = run_mode("lanes", opt, 0, /*lanes=*/true);
  const unsigned threads = opt.threads > 0 ? opt.threads : (opt.smoke ? 4 : 0);
  if (threads > 0) {
    results[n++] = run_mode("threads", opt, threads, /*lanes=*/true);
  }

  bool digests_equal = true;
  for (int i = 1; i < n; ++i) {
    digests_equal = digests_equal && results[i].digest == results[0].digest;
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"bench_million_clients\",\n");
  std::printf("  \"clients\": %zu,\n", opt.clients);
  std::printf("  \"sites\": %zu,\n", opt.sites);
  std::printf("  \"sim_minutes\": %ld,\n", opt.sim_minutes);
  std::printf("  \"seed\": %" PRIu64 ",\n", opt.seed);
  std::printf("  \"repeat\": %d,\n", opt.repeat);
  std::printf("  \"digests_equal\": %s,\n", digests_equal ? "true" : "false");
  std::printf("  \"modes\": [\n");
  for (int i = 0; i < n; ++i) {
    const ModeResult& r = results[i];
    std::printf("    {\"mode\": \"%s\", \"wall_s\": %.3f, "
                "\"events\": %" PRIu64 ", \"events_per_sec\": %.0f, "
                "\"ops\": %" PRIu64 ", \"windows\": %" PRIu64 ", "
                "\"digest\": \"%016" PRIx64 "\", \"peak_rss_mb\": %ld}%s\n",
                r.mode, r.wall_s, r.events,
                r.wall_s > 0 ? static_cast<double>(r.events) / r.wall_s : 0.0,
                r.ops, r.windows, r.digest, r.peak_rss_mb,
                i + 1 < n ? "," : "");
  }
  std::printf("  ],\n");
  const double speedup =
      results[0].wall_s > 0 && results[1].wall_s > 0
          ? results[0].wall_s / results[1].wall_s
          : 0.0;
  std::printf("  \"lanes_speedup_over_single\": %.2f\n", speedup);
  std::printf("}\n");

  if (!digests_equal) {
    std::fprintf(stderr, "FAIL: digests differ across stepper modes\n");
    return 1;
  }
  return 0;
}
