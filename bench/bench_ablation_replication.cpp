// Ablation: self-optimization via automatic replication (§V). Compares
// fixed replication degrees against the adaptive replication module under
// a read-hot workload with provider failures: read availability, read
// throughput, and storage cost.
#include "core/controller.hpp"
#include "core/replication.hpp"
#include "harness.hpp"

using namespace bs;
using namespace bs::bench;

namespace {

struct Outcome {
  double read_success_pct;
  double read_mbps;
  double storage_cost;  // stored bytes / logical bytes
};

Outcome run_case(std::uint32_t base_replication, bool adaptive) {
  sim::Simulation sim;
  StackConfig scfg;
  scfg.providers = 12;
  scfg.metadata_providers = 2;
  scfg.monitoring = adaptive;  // the MAPE loop needs introspection
  Stack stack(sim, scfg);

  std::unique_ptr<core::AutonomicController> controller;
  if (adaptive) {
    controller = std::make_unique<core::AutonomicController>(
        *stack.dep, *stack.intro);
    core::ReplicationOptions ropts;
    ropts.hot_read_rate = 30e6;
    controller->add_module(
        std::make_unique<core::ReplicationModule>(ropts));
    controller->start();
  }

  // One hot blob, written once.
  blob::BlobClient* writer = stack.add_client();
  auto blob = run_task(sim, writer->create(8 * units::MB,
                                           base_replication));
  auto w = run_task(sim, writer->write(
                             blob.value(), 0,
                             blob::Payload::synthetic(256 * units::MB, 1)));
  if (!w.ok()) return Outcome{0, 0, 0};

  // Readers hammer it for 4 minutes.
  const int n_readers = 6;
  std::vector<workload::ClientRunStats> stats(n_readers);
  workload::ThroughputTracker tracker;
  for (int i = 0; i < n_readers; ++i) {
    blob::BlobClient* c = stack.add_client();
    workload::ReaderOptions r;
    r.loop_forever = true;
    r.op_bytes = 32 * units::MB;
    r.deadline = simtime::minutes(4);
    r.rng_seed = 50 + i;
    r.retry_backoff = simtime::millis(500);
    sim.spawn(workload::Reader::run(*c, blob.value(), r, &stats[i],
                                    &tracker));
  }

  // Kill one provider per 45 s, starting at t=60 (3 failures total).
  sim.spawn([](sim::Simulation& s, blob::Deployment& d) -> sim::Task<void> {
    co_await s.delay(simtime::seconds(60));
    for (int k = 0; k < 3; ++k) {
      // Kill the provider currently holding the most chunks.
      blob::DataProvider* victim = nullptr;
      for (auto& p : d.providers()) {
        if (!p->node().up()) continue;
        if (victim == nullptr || p->chunk_count() > victim->chunk_count()) {
          victim = p.get();
        }
      }
      if (victim != nullptr) d.cluster().retire_node(victim->id());
      co_await s.delay(simtime::seconds(45));
    }
  }(sim, *stack.dep));

  sim.run_until(simtime::minutes(4));

  Outcome out{};
  std::uint64_t ok = 0, failed = 0;
  for (const auto& s : stats) {
    ok += s.ops_ok;
    failed += s.ops_failed;
  }
  out.read_success_pct =
      ok + failed > 0
          ? 100.0 * static_cast<double>(ok) / static_cast<double>(ok + failed)
          : 0;
  out.read_mbps = tracker.mean_mbps(0, simtime::minutes(4));
  std::uint64_t stored = 0;
  for (auto& p : stack.dep->providers()) {
    if (p->node().up()) stored += p->used();  // live copies only
  }
  out.storage_cost = static_cast<double>(stored) / (256.0 * units::MB);
  return out;
}

}  // namespace

int main() {
  print_header("ABLATION  fixed vs adaptive replication under failures",
               "design choice: the replication module restores lost "
               "replicas and scales the degree with read heat");

  std::vector<std::vector<std::string>> rows;
  struct Case {
    const char* name;
    std::uint32_t base;
    bool adaptive;
  };
  for (const Case c :
       {Case{"fixed r=1", 1, false}, Case{"fixed r=2", 2, false},
        Case{"fixed r=3", 3, false}, Case{"adaptive (base 1)", 1, true}}) {
    Outcome o = run_case(c.base, c.adaptive);
    char s[32], m[32], cost[32];
    std::snprintf(s, sizeof(s), "%.1f%%", o.read_success_pct);
    std::snprintf(m, sizeof(m), "%.0f", o.read_mbps);
    std::snprintf(cost, sizeof(cost), "%.2fx", o.storage_cost);
    rows.push_back({c.name, s, m, cost});
    std::printf("  %-18s reads-ok=%s  agg-read=%s MB/s  storage=%s\n",
                c.name, s, m, cost);
  }
  std::printf("\n%s", viz::table({"configuration", "read success",
                                  "aggregate read MB/s",
                                  "storage cost (stored/logical)"},
                                 rows)
                          .c_str());
  std::printf("\nshape: r=1 loses half its reads after the failures; fixed "
              "r=3 pays 3x storage from the first byte; adaptive starts at "
              "1x, detects the read-hot blob, raises replication (cap 4) "
              "and heals failures -- full availability, paying extra "
              "storage only while the blob is hot (this run ends mid-heat; "
              "once demand fades the module shrinks chunks back to the "
              "creation floor -- see Replication.ShrinksWhenDemandFades).\n");
  return 0;
}
