// Ablation: self-configuration via dynamic provider deployment (§V).
// Replays a bursty storage-demand trace against static pools of several
// sizes and against the elastic controller; reports provisioning quality
// (mean pool size, utilization band violations, failed writes).
#include "core/controller.hpp"
#include "core/elasticity.hpp"
#include "core/removal.hpp"
#include "harness.hpp"

using namespace bs;
using namespace bs::bench;

namespace {

constexpr std::uint64_t kProviderCapacity = 256 * units::MB;
const SimTime kRunLength = simtime::minutes(16);

struct Outcome {
  double mean_pool;
  double peak_pool;
  double pct_in_band;     // % of time utilization within [0.2, 0.8]
  std::uint64_t failed_writes;
};

/// Demand trace: a staircase of temporary datasets — quiet, surge, decay.
sim::Task<void> demand_trace(sim::Simulation& sim, blob::BlobClient& client,
                             std::uint64_t* failed) {
  co_await sim.delay(simtime::seconds(10));
  auto write_temp = [&](std::uint64_t bytes,
                        SimDuration ttl) -> sim::Task<void> {
    auto blob = co_await client.create(16 * units::MB, 1, ttl);
    if (!blob.ok()) {
      ++*failed;
      co_return;
    }
    auto w = co_await client.write(*blob, 0,
                                   blob::Payload::synthetic(bytes, 1));
    if (!w.ok()) ++*failed;
  };
  // Phase 1: light load.
  for (int i = 0; i < 2; ++i) {
    co_await write_temp(96 * units::MB, simtime::minutes(14));
    co_await sim.delay(simtime::seconds(15));
  }
  // Phase 2 (t~=1min): surge — 2 GB of temporaries with 4-minute TTL,
  // paced so a reactive controller has a chance to keep up.
  for (int i = 0; i < 8; ++i) {
    co_await write_temp(256 * units::MB, simtime::minutes(4));
    co_await sim.delay(simtime::seconds(20));
  }
  // Phase 3 (t~=4..16min): quiet; TTLs expire and demand decays.
}

Outcome run_case(std::size_t static_pool, bool elastic) {
  sim::Simulation sim;
  StackConfig scfg;
  scfg.providers = elastic ? 4 : static_pool;
  scfg.metadata_providers = 2;
  scfg.provider_capacity = kProviderCapacity;
  scfg.monitoring = true;
  Stack stack(sim, scfg);

  std::unique_ptr<core::AutonomicController> controller;
  if (elastic) {
    controller = std::make_unique<core::AutonomicController>(
        *stack.dep, *stack.intro);
    core::ElasticityOptions eopts;
    eopts.min_providers = 4;
    eopts.cooldown = simtime::seconds(15);
    controller->add_module(std::make_unique<core::ElasticityModule>(eopts));
    controller->add_module(std::make_unique<core::RemovalModule>());
    controller->executor().set_provider_added_hook(
        [&stack](blob::DataProvider& p) {
          stack.monitoring->attach_provider(p);
        });
    controller->start();
  } else {
    // Static pools still need TTL cleanup for a fair comparison.
    controller = std::make_unique<core::AutonomicController>(
        *stack.dep, *stack.intro);
    controller->add_module(std::make_unique<core::RemovalModule>());
    controller->start();
  }

  blob::BlobClient* client = stack.add_client();
  std::uint64_t failed = 0;
  sim.spawn(demand_trace(sim, *client, &failed));

  RunningStats pool_size;
  double peak = 0;
  std::uint64_t in_band = 0, samples = 0;
  sim.spawn([](sim::Simulation& s, blob::Deployment& d, RunningStats& ps,
               double& pk, std::uint64_t& ib,
               std::uint64_t& n) -> sim::Task<void> {
    while (s.now() < kRunLength) {
      std::size_t alive = 0;
      std::uint64_t used = 0, cap = 0;
      for (auto& p : d.providers()) {
        if (!p->node().up()) continue;
        ++alive;
        used += p->used();
        cap += p->capacity();
      }
      ps.add(static_cast<double>(alive));
      pk = std::max(pk, static_cast<double>(alive));
      const double util =
          cap > 0 ? static_cast<double>(used) / static_cast<double>(cap)
                  : 0;
      if (util >= 0.2 && util <= 0.8) ++ib;
      ++n;
      co_await s.delay(simtime::seconds(2));
    }
  }(sim, *stack.dep, pool_size, peak, in_band, samples));

  sim.run_until(kRunLength);

  Outcome out{};
  out.mean_pool = pool_size.mean();
  out.peak_pool = peak;
  out.pct_in_band =
      samples > 0 ? 100.0 * static_cast<double>(in_band) /
                        static_cast<double>(samples)
                  : 0;
  out.failed_writes = failed;
  return out;
}

}  // namespace

int main() {
  print_header("ABLATION  static pools vs elastic provider deployment",
               "design choice: the elasticity engine tracks a bursty "
               "demand trace with fewer machine-hours than worst-case "
               "static provisioning and no write failures");

  std::vector<std::vector<std::string>> rows;
  struct Case {
    const char* name;
    std::size_t pool;
    bool elastic;
  };
  for (const Case c :
       {Case{"static 4", 4, false}, Case{"static 10", 10, false},
        Case{"static 16", 16, false}, Case{"elastic (min 4)", 0, true}}) {
    Outcome o = run_case(c.pool, c.elastic);
    char mp[32], pk[32], band[32], fw[32];
    std::snprintf(mp, sizeof(mp), "%.1f", o.mean_pool);
    std::snprintf(pk, sizeof(pk), "%.0f", o.peak_pool);
    std::snprintf(band, sizeof(band), "%.0f%%", o.pct_in_band);
    std::snprintf(fw, sizeof(fw), "%llu",
                  (unsigned long long)o.failed_writes);
    rows.push_back({c.name, mp, pk, band, fw});
    std::printf("  %-16s mean-pool=%s peak=%s in-band=%s failed-writes=%s\n",
                c.name, mp, pk, band, fw);
  }
  std::printf("\n%s",
              viz::table({"configuration", "mean pool", "peak pool",
                          "util in [20,80]%", "failed writes"},
                         rows)
                  .c_str());
  std::printf("\nshape: small static pools fail writes at the surge; large "
              "static pools idle below the band afterwards; the elastic "
              "pool grows for the surge and shrinks back, spending the "
              "most time in the target utilization band.\n");
  return 0;
}
