// Experiment E-A (§IV-A): the visualization tool for BlobSeer-specific
// data. Qualitative in the paper: "provides synthetic images of the most
// relevant events in BlobSeer, such as the evolution of the physical
// parameters (e.g., CPU load, memory), the storage space on each provider
// and at the system level, the BLOB access patterns or the distribution of
// the BLOBs across providers."
//
// This bench drives a mixed workload on an instrumented deployment and
// renders every panel the paper lists, plus a CSV export of the system
// storage series (what a GUI would plot).
#include "dos_common.hpp"
#include "viz/dashboard.hpp"

using namespace bs;
using namespace bs::bench;

int main() {
  print_header("E-A  visualization tool for BlobSeer-specific data",
               "synthetic images of physical parameters, per-provider and "
               "system storage space, BLOB access patterns, BLOB "
               "distribution across providers");

  sim::Simulation sim;
  StackConfig cfg;
  cfg.providers = 8;
  cfg.metadata_providers = 2;
  Stack stack(sim, cfg);

  // Two writers on different blobs + a reader hammering blob A.
  blob::BlobClient* w1 = stack.add_client();
  blob::BlobClient* w2 = stack.add_client();
  blob::BlobClient* r1 = stack.add_client();
  auto blob_a = run_task(sim, w1->create(8 * units::MB));
  auto blob_b = run_task(sim, w2->create(8 * units::MB));

  workload::ClientRunStats s1, s2, s3;
  workload::WriterOptions wa;
  wa.total_bytes = 768 * units::MB;
  wa.op_bytes = 64 * units::MB;
  sim.spawn(workload::Writer::run(*w1, blob_a.value(), wa, &s1));
  workload::WriterOptions wb;
  wb.total_bytes = 256 * units::MB;
  wb.op_bytes = 32 * units::MB;
  wb.start = simtime::seconds(20);
  sim.spawn(workload::Writer::run(*w2, blob_b.value(), wb, &s2));
  workload::ReaderOptions ra;
  ra.total_bytes = 512 * units::MB;
  ra.op_bytes = 64 * units::MB;
  ra.start = simtime::seconds(15);
  sim.spawn(workload::Reader::run(*r1, blob_a.value(), ra, &s3));

  sim.run_until(simtime::seconds(90));

  viz::Dashboard dash(*stack.intro);
  std::fputs(dash.render(0, sim.now()).c_str(), stdout);

  // CSV export of the system-level storage evolution.
  std::printf("\n== CSV export: system.total_used_bytes ==\n");
  if (const TimeSeries* ts = stack.intro->series(
          {mon::Domain::system, 0, mon::Metric::total_used_bytes})) {
    std::vector<std::vector<std::string>> rows;
    for (const auto& s :
         ts->range(0, simtime::kInfinite)) {
      if (rows.size() >= 12) break;  // sample for the console
      rows.push_back({std::to_string(simtime::to_seconds(s.time)),
                      std::to_string(s.value)});
    }
    std::fputs(viz::to_csv({"time_s", "bytes"}, rows).c_str(), stdout);
  }

  std::printf("\npanels rendered: physical parameters, storage evolution "
              "(provider+system), BLOB access patterns, chunk "
              "distribution, client activity  -> qualitative claim "
              "REPRODUCED\n");
  return 0;
}
