// Microbenchmark: versioned segment-tree metadata operations (build and
// collect) vs write size, tree span and history depth.
#include <benchmark/benchmark.h>

#include "blob/meta_ops.hpp"
#include "common/rng.hpp"
#include "sim/simulation.hpp"

using namespace bs;
using namespace bs::blob;

namespace {

std::vector<ChunkDescriptor> leaves_for(BlobId blob, const WriteExtent& w) {
  std::vector<ChunkDescriptor> out;
  for (std::uint64_t i = 0; i < w.chunk_count; ++i) {
    ChunkDescriptor d;
    d.key = ChunkKey{blob, w.version, w.first_chunk + i};
    d.size = 1 << 20;
    d.checksum = i;
    d.replicas = {NodeId{i % 8}};
    out.push_back(std::move(d));
  }
  return out;
}

std::vector<WriteExtent> random_history(int n, std::uint64_t span,
                                        std::uint64_t& root_out) {
  Rng rng(42);
  std::vector<WriteExtent> history;
  std::uint64_t reserved = 0;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t first = rng.next_below(span);
    const std::uint64_t count =
        1 + rng.next_below(std::max<std::uint64_t>(span / 8, 1));
    reserved = std::max(reserved, first + count);
    history.push_back(WriteExtent{static_cast<Version>(i + 1), first, count,
                                  next_pow2(reserved)});
  }
  root_out = next_pow2(reserved);
  return history;
}

void BM_BuildNodes_FullWrite(benchmark::State& state) {
  const auto chunks = static_cast<std::uint64_t>(state.range(0));
  const BlobId blob{1};
  WriteExtent w{1, 0, chunks, next_pow2(chunks)};
  auto leaves = leaves_for(blob, w);
  for (auto _ : state) {
    auto nodes =
        meta_ops::build_nodes(blob, w, leaves, {}, next_pow2(chunks));
    benchmark::DoNotOptimize(nodes);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(chunks));
}
BENCHMARK(BM_BuildNodes_FullWrite)->Arg(16)->Arg(256)->Arg(4096);

void BM_BuildNodes_SmallWriteDeepHistory(benchmark::State& state) {
  const int hist = static_cast<int>(state.range(0));
  const BlobId blob{1};
  std::uint64_t root = 0;
  auto history = random_history(hist, 4096, root);
  WriteExtent w{static_cast<Version>(hist + 1), 100, 4, root};
  auto leaves = leaves_for(blob, w);
  for (auto _ : state) {
    auto nodes = meta_ops::build_nodes(blob, w, leaves, history, root);
    benchmark::DoNotOptimize(nodes);
  }
}
BENCHMARK(BM_BuildNodes_SmallWriteDeepHistory)->Arg(8)->Arg(64)->Arg(512);

void BM_SubtreeVersion(benchmark::State& state) {
  const int hist = static_cast<int>(state.range(0));
  std::uint64_t root = 0;
  auto history = random_history(hist, 4096, root);
  Rng rng(7);
  for (auto _ : state) {
    const std::uint64_t lo = rng.next_below(4096);
    benchmark::DoNotOptimize(meta_ops::subtree_version(
        history, static_cast<Version>(hist), lo, 16));
  }
}
BENCHMARK(BM_SubtreeVersion)->Arg(8)->Arg(64)->Arg(512);

void BM_Collect(benchmark::State& state) {
  // Tree with `versions` random writes over 1024 chunks; collect random
  // 64-chunk ranges from the latest version.
  const int versions = static_cast<int>(state.range(0));
  const BlobId blob{1};
  sim::Simulation sim;
  InMemoryMetadataStore store;
  std::uint64_t root = 0;
  auto history = random_history(versions, 1024, root);
  std::vector<WriteExtent> prefix;
  for (const auto& w : history) {
    auto leaves = leaves_for(blob, w);
    auto nodes =
        meta_ops::build_nodes(blob, w, leaves, prefix, w.root_chunks);
    for (auto& [key, node] : nodes) {
      sim.spawn([](MetadataStore& st, NodeKey k,
                   TreeNode n) -> sim::Task<void> {
        (void)co_await st.put(k, std::move(n));
      }(store, key, node));
    }
    sim.run();
    prefix.push_back(w);
  }
  const Version latest = history.back().version;
  const std::uint64_t latest_root = history.back().root_chunks;
  Rng rng(3);
  for (auto _ : state) {
    const std::uint64_t lo = rng.next_below(latest_root > 64
                                                ? latest_root - 64
                                                : 1);
    bool done = false;
    sim.spawn([](sim::Simulation& s, MetadataStore& st, BlobId b, Version v,
                 std::uint64_t rc, std::uint64_t l,
                 bool& flag) -> sim::Task<void> {
      auto r = co_await meta_ops::collect(s, st, b, v, rc, l, 64);
      benchmark::DoNotOptimize(r);
      flag = true;
    }(sim, store, blob, latest, latest_root, lo, done));
    while (!done && sim.step()) {
    }
  }
}
BENCHMARK(BM_Collect)->Arg(4)->Arg(32)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
