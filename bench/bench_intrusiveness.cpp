// Experiment E-B (§IV-B): impact of the introspection architecture on
// BlobSeer data-access performance.
//
// Paper setup: 150 data providers; 5..80 clients, each writing 1 GB to
// BlobSeer; compared bare BlobSeer against BlobSeer with the full
// introspection stack. Reported result: "the performance of the BlobSeer
// operations is not influenced by the introspection architecture, the
// intrusiveness of the instrumentation layer being minimal even when the
// number of generated monitoring parameters reaches 10,000".
#include "harness.hpp"

using namespace bs;
using namespace bs::bench;

namespace {

struct Point {
  int clients;
  double bare_mbps;       // mean per-client throughput, no monitoring
  double monitored_mbps;  // with the introspection architecture
  std::uint64_t events;
  std::uint64_t records;
  std::size_t series;
};

Point run_point(int n_clients, bool monitored) {
  sim::Simulation sim;
  StackConfig cfg;
  cfg.providers = 150;
  cfg.metadata_providers = 8;
  cfg.monitoring = monitored;
  cfg.monitoring_services = 4;
  cfg.storage_servers = 4;
  Stack stack(sim, cfg);

  const std::uint64_t per_client = 1 * units::GB;
  std::vector<workload::ClientRunStats> stats(n_clients);
  std::vector<BlobId> blobs;
  for (int i = 0; i < n_clients; ++i) {
    blob::BlobClient* c = stack.add_client();
    auto blob = run_task(sim, c->create(64 * units::MB));
    blobs.push_back(blob.value());
    workload::WriterOptions w;
    w.total_bytes = per_client;
    w.op_bytes = 256 * units::MB;
    sim.spawn(workload::Writer::run(*c, blobs.back(), w, &stats[i]));
  }
  sim.run_until(simtime::minutes(10));

  RunningStats per_client_mbps;
  for (const auto& s : stats) per_client_mbps.add(s.run_mbps());

  Point p{};
  p.clients = n_clients;
  (monitored ? p.monitored_mbps : p.bare_mbps) = per_client_mbps.mean();
  if (monitored && stack.monitoring) {
    // Flush the pipeline tail before counting.
    sim.run_until(sim.now() + simtime::seconds(5));
    p.events = stack.monitoring->total_events();
    p.records = stack.monitoring->total_records();
    p.series = stack.monitoring->distinct_series();
  }
  return p;
}

}  // namespace

int main() {
  print_header(
      "E-B  introspection intrusiveness (150 providers, 1 GB/client)",
      "throughput unchanged by the introspection architecture; minimal "
      "intrusiveness even at ~10,000 monitoring parameters (>80 clients)");

  std::vector<std::vector<std::string>> rows;
  for (int clients : {5, 10, 20, 40, 60, 80}) {
    Point bare = run_point(clients, false);
    Point mon = run_point(clients, true);
    const double overhead =
        bare.bare_mbps > 0
            ? (bare.bare_mbps - mon.monitored_mbps) / bare.bare_mbps * 100.0
            : 0.0;
    char b[32], m[32], o[32], e[32], r[32];
    std::snprintf(b, sizeof(b), "%.1f", bare.bare_mbps);
    std::snprintf(m, sizeof(m), "%.1f", mon.monitored_mbps);
    std::snprintf(o, sizeof(o), "%+.2f%%", overhead);
    std::snprintf(e, sizeof(e), "%llu", (unsigned long long)mon.events);
    std::snprintf(r, sizeof(r), "%llu/%zu", (unsigned long long)mon.records,
                  mon.series);
    rows.push_back({std::to_string(clients), b, m, o, e, r});
    std::printf("  clients=%-3d bare=%s MB/s monitored=%s MB/s "
                "overhead=%s\n",
                clients, b, m, o);
  }
  std::printf("\n%s",
              viz::table({"clients", "bare MB/s/client",
                          "monitored MB/s/client", "overhead",
                          "raw events", "records/series"},
                         rows)
                  .c_str());
  std::printf("\nshape check vs paper: overhead stays within noise (a few "
              "percent) across 5..80 clients while monitoring volume grows "
              "to thousands of parameters.\n");
  return 0;
}
