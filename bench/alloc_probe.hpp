// Global allocation probe for microbenches: replaces the global operator
// new/delete with counting wrappers so a bench can assert steady-state
// allocation behaviour (e.g. pooled coroutine frames => zero heap allocs
// per spawned actor after warm-up). Include from exactly ONE translation
// unit per binary — the replacement operators below are deliberately
// non-inline, so a second inclusion fails the link instead of silently
// double-counting.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace bs::bench::alloc_probe {

inline std::atomic<std::uint64_t> g_allocs{0};
inline std::atomic<std::uint64_t> g_frees{0};

/// Total calls into the replaced global operator new since program start.
inline std::uint64_t allocations() {
  return g_allocs.load(std::memory_order_relaxed);
}

inline std::uint64_t frees() {
  return g_frees.load(std::memory_order_relaxed);
}

}  // namespace bs::bench::alloc_probe

void* operator new(std::size_t size) {
  bs::bench::alloc_probe::g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  bs::bench::alloc_probe::g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align),
                     size == 0 ? 1 : size) != 0) {
    throw std::bad_alloc{};
  }
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept {
  if (p == nullptr) return;
  bs::bench::alloc_probe::g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete(void* p, std::align_val_t) noexcept {
  ::operator delete(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  ::operator delete(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  ::operator delete(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  ::operator delete(p);
}
