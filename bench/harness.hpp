// Shared harness for the experiment benches: assembles the full
// self-adaptive stack (BlobSeer + monitoring + introspection + security) on
// one simulation, and provides small driver/printing helpers. Each bench
// binary reproduces one experiment of the paper's §IV and prints the
// paper's reported numbers next to the measured ones.
#pragma once

#include <cstdio>
#include <memory>
#include <optional>

#include "mon/layer.hpp"
#include "sec/framework.hpp"
#include "viz/chart.hpp"
#include "workload/clients.hpp"

namespace bs::bench {

template <class T>
T run_task(sim::Simulation& sim, sim::Task<T> task) {
  std::optional<T> out;
  sim.spawn([](sim::Task<T> t, std::optional<T>& slot) -> sim::Task<void> {
    slot.emplace(co_await std::move(t));
  }(std::move(task), out));
  while (!out.has_value() && sim.step()) {
  }
  return std::move(*out);
}

struct StackConfig {
  std::size_t providers{20};
  std::size_t metadata_providers{4};
  std::size_t monitoring_services{2};
  std::size_t storage_servers{2};
  std::uint64_t provider_capacity{64ull * units::GB};
  rpc::NodeSpec node_spec{};
  bool monitoring{true};
  bool security{false};
  sec::SecurityConfig security_config{};
  mon::InstrumentOptions instrument{};
  SimDuration service_flush{simtime::seconds(1)};
};

/// The full §III architecture on one simulation.
struct Stack {
  Stack(sim::Simulation& sim, const StackConfig& config) {
    blob::DeploymentConfig cfg;
    cfg.data_providers = config.providers;
    cfg.metadata_providers = config.metadata_providers;
    cfg.provider_capacity = config.provider_capacity;
    cfg.node_spec = config.node_spec;
    dep = std::make_unique<blob::Deployment>(sim, cfg);

    if (config.monitoring) {
      rpc::Node* intro_node = dep->cluster().add_node(0);
      intro = std::make_unique<intro::IntrospectionService>(*intro_node);
      intro->start();
      mon::MonitoringConfig mcfg;
      mcfg.services = config.monitoring_services;
      mcfg.storage_servers = config.storage_servers;
      mcfg.instrument = config.instrument;
      mcfg.service_flush_interval = config.service_flush;
      mcfg.sinks = {intro_node->id()};
      monitoring = std::make_unique<mon::MonitoringLayer>(*dep, mcfg);
      monitoring->start();
    }
    if (config.security) {
      security = std::make_unique<sec::SecurityFramework>(
          sim, intro->activity(), config.security_config);
      security->attach_deployment(*dep);
      security->start();
    }
  }

  blob::BlobClient* add_client() {
    blob::BlobClient* c = dep->add_client();
    if (monitoring) monitoring->attach_client(*c);
    return c;
  }

  std::unique_ptr<blob::Deployment> dep;
  std::unique_ptr<intro::IntrospectionService> intro;
  std::unique_ptr<mon::MonitoringLayer> monitoring;
  std::unique_ptr<sec::SecurityFramework> security;
};

inline void print_header(const char* experiment, const char* paper_claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_claim);
  std::printf("================================================================\n");
}

}  // namespace bs::bench
