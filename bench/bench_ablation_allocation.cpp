// Ablation: chunk-allocation strategies end to end. DESIGN.md calls out
// load-aware placement as the strategy the self-* machinery prefers; this
// bench quantifies what it buys over round-robin/random — aggregate write
// throughput and storage balance across providers.
#include "harness.hpp"

using namespace bs;
using namespace bs::bench;

namespace {

struct Outcome {
  double agg_mbps;
  double imbalance;  // max/mean provider bytes
  double p99_op_sec;
};

Outcome run_with(const std::string& strategy, std::uint64_t seed) {
  sim::Simulation sim;
  blob::DeploymentConfig cfg;
  cfg.data_providers = 24;
  cfg.metadata_providers = 4;
  cfg.pm_options.strategy = strategy;
  cfg.pm_options.rng_seed = seed;
  blob::Deployment dep(sim, cfg);

  const int n_clients = 16;
  std::vector<workload::ClientRunStats> stats(n_clients);
  workload::ThroughputTracker tracker;
  Histogram op_hist(0, 30, 300);
  for (int i = 0; i < n_clients; ++i) {
    blob::BlobClient* c = dep.add_client();
    auto blob = run_task(sim, c->create(32 * units::MB));
    workload::WriterOptions w;
    w.total_bytes = 1 * units::GB;
    w.op_bytes = 128 * units::MB;
    sim.spawn(workload::Writer::run(*c, blob.value(), w, &stats[i],
                                    &tracker));
  }
  sim.run_until(simtime::minutes(5));

  Outcome out{};
  SimTime last_finish = 0;
  for (const auto& s : stats) {
    last_finish = std::max(last_finish, s.finished);
    op_hist.add(s.op_duration_sec.max());
  }
  out.agg_mbps = tracker.mean_mbps(0, last_finish);
  RunningStats bytes;
  double max_bytes = 0;
  for (auto& p : dep.providers()) {
    bytes.add(static_cast<double>(p->used()));
    max_bytes = std::max(max_bytes, static_cast<double>(p->used()));
  }
  out.imbalance = bytes.mean() > 0 ? max_bytes / bytes.mean() : 0;
  out.p99_op_sec = op_hist.quantile(0.99);
  return out;
}

}  // namespace

int main() {
  print_header("ABLATION  allocation strategies (16 writers x 1 GB, 24 "
               "providers)",
               "design choice: on a homogeneous idle pool, load-aware "
               "placement must match round-robin (the optimum) and beat "
               "random placement on balance");

  std::vector<std::vector<std::string>> rows;
  for (const char* strategy : {"round_robin", "random", "load_aware"}) {
    RunningStats mbps, imb;
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      Outcome o = run_with(strategy, seed);
      mbps.add(o.agg_mbps);
      imb.add(o.imbalance);
    }
    char a[32], b[48];
    std::snprintf(a, sizeof(a), "%.0f", mbps.mean());
    std::snprintf(b, sizeof(b), "%.3f (worst %.3f)", imb.mean(), imb.max());
    rows.push_back({strategy, a, b});
    std::printf("  %-12s agg=%s MB/s  imbalance(max/mean)=%s\n", strategy,
                a, b);
  }
  std::printf("\n%s",
              viz::table({"strategy", "aggregate MB/s",
                          "storage imbalance"},
                         rows)
                  .c_str());
  std::printf("\nshape: round_robin is optimal on a homogeneous pool and "
              "load_aware tracks it closely (its pending-allocation "
              "feedback only pays off under skewed load); random trails "
              "both on balance and throughput.\n");
  return 0;
}
