// Microbenchmark: flow-scheduler arrival/departure cost as a function of
// the number of concurrently active flows, for the two topology extremes:
//  - disjoint: every background flow sits on its own private link, so the
//    churned flow's contention component is just itself. The incremental
//    scheduler's per-event cost is O(1) here; the reference path re-settles
//    and refills the entire flow population on every event.
//  - shared: all background flows (and the churned flow) cross one common
//    link, so the component IS the population and both paths are O(F) —
//    the incremental scheduler's worst case.
//
// Args: {background flows, shared(0/1), incremental(0/1)}.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "net/flow.hpp"
#include "sim/sync.hpp"

using namespace bs;

namespace {

// Large enough that background flows outlive the benchmark, small enough
// that their ETAs stay well inside the simulated-time horizon.
constexpr double kBackgroundBytes = 1e15;

void BM_FlowArrivalDeparture(benchmark::State& state) {
  const int background = static_cast<int>(state.range(0));
  const bool shared = state.range(1) != 0;
  const bool incremental = state.range(2) != 0;
  sim::Simulation sim;
  net::FlowScheduler flows(sim, {.incremental = incremental});
  auto* churn_link = flows.create_resource("churn", net::mb_per_sec(1000));
  auto* shared_link = flows.create_resource("shared", net::mb_per_sec(1000));
  for (int i = 0; i < background; ++i) {
    net::Resource* r =
        shared ? shared_link
               : flows.create_resource("bg" + std::to_string(i),
                                       net::mb_per_sec(1000));
    sim.spawn(flows.transfer(kBackgroundBytes, {r}));
  }
  std::vector<net::Resource*> path{churn_link};
  if (shared) path.push_back(shared_link);
  for (auto _ : state) {
    bool done = false;
    sim.spawn([](net::FlowScheduler& f, std::vector<net::Resource*> p,
                 bool& flag) -> sim::Task<void> {
      co_await f.transfer(1e6, std::move(p));
      flag = true;
    }(flows, path, done));
    while (!done) sim.step();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel((shared ? "shared/" : "disjoint/") +
                 std::string(incremental ? "incremental" : "reference"));
}

}  // namespace

BENCHMARK(BM_FlowArrivalDeparture)
    ->ArgsProduct({{10, 100, 1000, 5000, 10000}, {0, 1}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
