// Ablation: the monitoring storage servers' burst cache (§III-B: "we also
// built a caching mechanism for the storage servers, so as to enable them
// to cope with bursts of monitoring data generated when the system is under
// heavy load"). Compares write-behind caching against synchronous disk
// writes under record bursts: store-request latency and sustained burst
// absorption.
#include "harness.hpp"
#include "mon/storage.hpp"

using namespace bs;
using namespace bs::bench;

namespace {

struct Outcome {
  double mean_latency_ms;
  double p99_latency_ms;
  std::uint64_t dropped;
  double persist_lag_s;  // time to drain everything after the burst
};

Outcome run_burst(bool cache_enabled, std::size_t cache_capacity) {
  sim::Simulation sim;
  rpc::Cluster cluster(sim, net::Topology::single_site());
  // Slow monitoring disk: the burst exceeds what it can absorb in real
  // time (that's the scenario the cache exists for).
  rpc::NodeSpec spec;
  spec.disk_bps = net::mb_per_sec(2.0);
  rpc::Node* storage_node = cluster.add_node(0, spec);
  mon::MonStorageOptions opts;
  opts.cache_enabled = cache_enabled;
  opts.cache_capacity = cache_capacity;
  // Rich records (1 KB on disk): the offered burst (~2.5 MB/s) exceeds the
  // 2 MB/s monitoring disk, which is exactly when the cache matters.
  opts.record_disk_bytes = 1024;
  mon::MonStorageServer server(*storage_node, opts);
  server.start();
  rpc::Node* service = cluster.add_node(0);

  Histogram latency(0, 5000, 1000);  // ms
  const int kBatches = 200;
  const int kPerBatch = 128;

  sim.spawn([](sim::Simulation& s, rpc::Cluster& c, rpc::Node& src,
               NodeId dst, Histogram& lat) -> sim::Task<void> {
    for (int b = 0; b < kBatches; ++b) {
      mon::MonStoreReq req;
      std::vector<mon::Record> records;
      for (int i = 0; i < kPerBatch; ++i) {
        mon::Record r;
        r.key = {mon::Domain::provider,
                 static_cast<std::uint64_t>(i % 32),
                 mon::Metric::used_bytes};
        r.time = s.now();
        r.value = i;
        records.push_back(r);
      }
      req.records = std::make_shared<const std::vector<mon::Record>>(
          std::move(records));
      const SimTime t0 = s.now();
      rpc::CallOptions o;
      o.timeout = simtime::minutes(5);
      (void)co_await c.call<mon::MonStoreReq, mon::MonStoreResp>(
          src, dst, std::move(req), o);
      lat.add(simtime::to_millis(s.now() - t0));
      co_await s.delay(simtime::millis(50));  // 2560 records/s offered
    }
  }(sim, cluster, *service, storage_node->id(), latency));

  sim.run_until(simtime::minutes(2));
  const SimTime burst_end = sim.now();
  // Let the drain finish.
  SimTime drained_at = burst_end;
  while (server.cache_depth() > 0 && sim.step()) {
    drained_at = sim.now();
  }

  Outcome out{};
  out.mean_latency_ms = latency.mean();
  out.p99_latency_ms = latency.quantile(0.99);
  out.dropped = server.records_dropped();
  out.persist_lag_s = simtime::to_seconds(drained_at - burst_end);
  return out;
}

}  // namespace

int main() {
  print_header("ABLATION  monitoring storage burst cache",
               "design choice: write-behind cache absorbs monitoring "
               "bursts; synchronous disk writes stall the pipeline");

  std::vector<std::vector<std::string>> rows;
  struct Case {
    const char* name;
    bool enabled;
    std::size_t capacity;
  };
  for (const Case c : {Case{"no cache (sync disk)", false, 1},
                       Case{"cache 1k records", true, 1024},
                       Case{"cache 8k records", true, 8192},
                       Case{"cache 64k records", true, 65536}}) {
    Outcome o = run_burst(c.enabled, c.capacity);
    char m[32], p[32], d[32], lag[32];
    std::snprintf(m, sizeof(m), "%.2f", o.mean_latency_ms);
    std::snprintf(p, sizeof(p), "%.2f", o.p99_latency_ms);
    std::snprintf(d, sizeof(d), "%llu", (unsigned long long)o.dropped);
    std::snprintf(lag, sizeof(lag), "%.1f", o.persist_lag_s);
    rows.push_back({c.name, m, p, d, lag});
    std::printf("  %-22s store-latency mean=%sms p99=%sms dropped=%s "
                "drain-lag=%ss\n",
                c.name, m, p, d, lag);
  }
  std::printf("\n%s", viz::table({"configuration", "mean latency ms",
                                  "p99 latency ms", "records dropped",
                                  "post-burst drain s"},
                                 rows)
                          .c_str());
  std::printf("\nshape: the cache keeps ingest latency flat (microseconds "
              "of queueing instead of disk stalls) at the cost of bounded "
              "post-burst drain lag; undersized caches drop records.\n");
  return 0;
}
