#!/usr/bin/env sh
# Runs every bench binary in build/bench/ (experiment reproductions and
# google-benchmark micro/ablation benches). Build first with:
#   cmake -B build -S . && cmake --build build -j
# The tier-1 test gate is the companion one-liner:
#   ctest --test-dir build -L tier1 --output-on-failure -j
set -eu
cd "$(dirname "$0")/.."
if [ ! -d build/bench ]; then
  echo "build/bench not found — build the tree first" >&2
  exit 1
fi
for b in build/bench/*; do
  [ -x "$b" ] || continue
  echo "== $b"
  "$b"
done
