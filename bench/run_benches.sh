#!/usr/bin/env sh
# Runs every bench binary in build/bench/ (experiment reproductions and
# google-benchmark micro/ablation benches). Build first with:
#   cmake -B build -S . && cmake --build build -j
# The tier-1 test gate is the companion one-liner:
#   ctest --test-dir build -L tier1 --output-on-failure -j
#
# Subcommands (suites):
#   run_benches.sh sim-kernel   — measure the simulator hot-path benches
#     (event queue, same-time lane, actor spawn, RPC round trip) plus the
#     e2e wall times and emit build/BENCH_sim_kernel.json. The committed
#     repo-root BENCH_sim_kernel.json is the curated before/after snapshot;
#     this regenerates the "after" side on the current tree.
#   run_benches.sh sim-lanes    — run bench_million_clients at full scale
#     (10^6 clients, 9-site grid5000, best-of-3 per stepper mode) and emit
#     build/BENCH_sim_lanes.json. The committed repo-root
#     BENCH_sim_lanes.json is the curated snapshot of the same run.
#   run_benches.sh recovery     — run bench_recovery (journal-length sweep
#     x cold/warm/wiped/slow restarts + site power loss, all in simulated
#     time) and emit build/BENCH_recovery.json. The committed repo-root
#     BENCH_recovery.json is the curated snapshot of the same run.
#   run_benches.sh repl         — run bench_reconciliation (partition
#     duration and divergence sweeps over the custody plane, all in
#     simulated time) and emit build/BENCH_repl.json. The committed
#     repo-root BENCH_repl.json is the curated snapshot of the same run.
#   run_benches.sh gateway      — run bench_gateway (trace-replay dedup
#     sweep, sequential-vs-concurrent multipart parts, delta-vs-full
#     overwrite, all in simulated time) and emit build/BENCH_gateway.json.
#     The committed repo-root BENCH_gateway.json is the curated snapshot.
#   run_benches.sh lint         — time the bslint two-pass analyzer over the
#     whole tree (cold cache, warm cache, --no-cache) and verify the three
#     runs emit byte-identical reports; emit build/BENCH_lint.json. The
#     committed repo-root BENCH_lint.json is the curated snapshot.
# Suites compose: `run_benches.sh sim-kernel recovery` runs both.
set -eu
cd "$(dirname "$0")/.."
if [ ! -d build/bench ]; then
  echo "build/bench not found — build the tree first" >&2
  exit 1
fi

run_sim_kernel() {
  out=build/BENCH_sim_kernel.json
  micro=build/bench_micro_sim.json
  ./build/bench/bench_micro_sim \
    --benchmark_filter='BM_EventQueue|BM_SameTimeLane|BM_ActorSpawn|BM_RpcRoundTrip$' \
    --benchmark_min_time=0.1 --benchmark_format=json > "$micro"
  for b in bench_dos_throughput bench_detection_delay; do
    start=$(date +%s%N)
    ./build/bench/"$b" > /dev/null 2>&1
    end=$(date +%s%N)
    echo "$b $(( (end - start) / 1000000 ))" >> build/e2e_wall_ms.txt
  done
  python3 - "$micro" "$out" <<'PY'
import json, sys
micro = json.load(open(sys.argv[1]))
e2e = {}
for line in open("build/e2e_wall_ms.txt"):
    name, ms = line.split()
    e2e[name] = int(ms)  # last run wins
doc = {
    "description": "sim-kernel hot-path measurements on the current tree "
                   "(see repo-root BENCH_sim_kernel.json for the curated "
                   "before/after comparison)",
    "micro": [
        {k: b.get(k) for k in
         ("name", "real_time", "time_unit", "items_per_second",
          "allocs_per_op", "frame_heap_allocs_per_op") if k in b}
        for b in micro.get("benchmarks", [])
    ],
    "e2e_wall_time_ms": e2e,
}
json.dump(doc, open(sys.argv[2], "w"), indent=2)
print("wrote", sys.argv[2])
PY
  rm -f build/e2e_wall_ms.txt
}

run_sim_lanes() {
  out=build/BENCH_sim_lanes.json
  ./build/bench/bench_million_clients > "$out"
  echo "wrote $out"
}

run_recovery() {
  out=build/BENCH_recovery.json
  ./build/bench/bench_recovery > "$out"
  echo "wrote $out"
}

run_repl() {
  out=build/BENCH_repl.json
  ./build/bench/bench_reconciliation > "$out"
  echo "wrote $out"
}

run_gateway() {
  out=build/BENCH_gateway.json
  ./build/bench/bench_gateway > "$out"
  echo "wrote $out"
}

run_lint() {
  out=build/BENCH_lint.json
  bslint=build/tools/bslint/bslint
  cache=build/bslint-bench-cache
  args="--root . --baseline tools/bslint/baseline.txt src tests bench"
  rm -rf "$cache"
  wall_ms() { # $1 = label, rest = command; appends "label ms" to the log
    label=$1; shift
    start=$(date +%s%N)
    "$@" > "build/lint_$label.txt" || true  # findings exit 1; not an error here
    end=$(date +%s%N)
    echo "$label $(( (end - start) / 1000000 ))" >> build/lint_wall_ms.txt
  }
  rm -f build/lint_wall_ms.txt
  wall_ms cold  $bslint --cache-dir "$cache" $args
  wall_ms warm  $bslint --cache-dir "$cache" $args
  wall_ms nocache $bslint --no-cache $args
  cmp -s build/lint_cold.txt build/lint_warm.txt || {
    echo "lint bench: cold and warm outputs differ" >&2; exit 1; }
  cmp -s build/lint_cold.txt build/lint_nocache.txt || {
    echo "lint bench: cached and --no-cache outputs differ" >&2; exit 1; }
  python3 - "$out" <<'PY'
import json, sys
wall = {}
for line in open("build/lint_wall_ms.txt"):
    name, ms = line.split()
    wall[name] = int(ms)
summary = open("build/lint_cold.txt").read().strip().splitlines()[-1]
doc = {
    "description": "bslint two-pass analyzer wall time over src/ tests/ "
                   "bench/ (cold index cache, warm cache, --no-cache); the "
                   "three runs are verified byte-identical before timing is "
                   "reported",
    "wall_time_ms": wall,
    "summary_line": summary,
}
json.dump(doc, open(sys.argv[1], "w"), indent=2)
print("wrote", sys.argv[1])
PY
  rm -f build/lint_wall_ms.txt build/lint_cold.txt build/lint_warm.txt     build/lint_nocache.txt
}

if [ $# -gt 0 ]; then
  for suite in "$@"; do
    case "$suite" in
      sim-kernel) run_sim_kernel ;;
      sim-lanes)  run_sim_lanes ;;
      recovery)   run_recovery ;;
      repl)       run_repl ;;
      gateway)    run_gateway ;;
      lint)       run_lint ;;
      *) echo "unknown suite: $suite (known: sim-kernel sim-lanes recovery repl gateway lint)" >&2
         exit 2 ;;
    esac
  done
  exit 0
fi

for b in build/bench/*; do
  [ -x "$b" ] || continue
  echo "== $b"
  "$b"
done
