// Reconciliation bench for the custody-based geo-replication plane:
// measures reconciliation lag and custody queue depth as functions of
// partition duration and divergence volume.
//
//   duration sweep   : a 3-site grid5000 cluster, origin publishing one
//                      version per second to both remote sites; the
//                      origin<->site-1 link is cut for 1 / 5 / 30 sim-min.
//                      Custody parks at the origin egress (spill policy, so
//                      nothing is lost) and drains on heal; the bench
//                      reports peak queue depth and the lag until
//                      `site_coherent()` holds again.
//   divergence sweep : fixed 5 sim-min outage at 4 s / 1 s / 250 ms publish
//                      cadence — the same outage with 4x / 16x the diverged
//                      versions, isolating how reconciliation lag scales
//                      with catch-up volume rather than wall time.
//
// Everything is measured in simulated time, so the numbers are
// bit-identical across machines; the bench replays the whole suite and
// fails if the digest moves. Output is JSON (redirect to BENCH_repl.json).

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "fault/fault_plane.hpp"
#include "repl/plane.hpp"

namespace {

using namespace bs;

struct Options {
  std::vector<double> outage_minutes{1.0, 5.0, 30.0};
  std::vector<double> cadence_ms{4000.0, 1000.0, 250.0};
  int repeat = 2;      // full-suite replays; digests must match
  bool smoke = false;  // shortest outage, single cadence
};

/// Order-dependent mixer (same recipe as the test digests): any change in
/// any reported counter or sim-time value moves the suite digest.
struct Digest {
  std::uint64_t v{0x9e3779b97f4a7c15ull};
  void mix(std::uint64_t x) {
    v ^= x + 0x9e3779b97f4a7c15ull + (v << 6) + (v >> 2);
  }
  void mix_signed(std::int64_t x) { mix(static_cast<std::uint64_t>(x)); }
};

struct ScenarioResult {
  double outage_min{0};
  double cadence_ms{0};
  int published{0};  ///< versions published while the link was down
  repl::CustodyQueueStats cut_queue;  ///< origin -> partitioned site
  SimDuration observed_lag{0};  ///< heal -> coherent, polled at 50 ms
  SimDuration reported_lag{0};  ///< plane's own reconciliation-lag metric
  std::uint64_t catch_up{0};
  std::uint64_t reconcile_rounds{0};
  std::uint64_t plane_digest{0};
  bool coherent{false};
};

constexpr std::uint64_t kVersionBytes = 64 * units::KB;
constexpr net::SiteId kCutSite = 1;

sim::Task<void> publisher(sim::Simulation& s, repl::ReplicationPlane& plane,
                          SimTime first, SimTime until, SimDuration every,
                          int* published) {
  repl::SiteEgress& origin = plane.egress(plane.origin_site());
  blob::Version v = 0;
  for (SimTime t = first; t < until; t += every) {
    co_await s.delay_until(t);
    ++v;
    origin.note_published(BlobId{1}, v, kVersionBytes);
    for (net::SiteId dst : plane.remote_sites()) {
      origin.enqueue_publish(dst, BlobId{1}, v, kVersionBytes);
    }
    ++*published;
  }
}

// One outage: cut origin<->site-1 at t=5s, publish on a fixed cadence while
// the link is down (plus a 1 s lead-in so the queues see live traffic
// before the cut), heal, then poll until the plane reports coherence.
ScenarioResult run_outage(SimDuration outage, SimDuration cadence) {
  sim::Simulation sim;
  rpc::Cluster cluster(sim, net::Topology::grid5000(3));
  fault::FaultPlane fp(cluster, 0x9EC0ull);
  repl::ReplOptions ro;
  ro.egress.journal.enabled = true;
  ro.egress.overflow = repl::OverflowPolicy::spill;
  ro.reconcile.interval = simtime::seconds(10);
  repl::ReplicationPlane plane(cluster, /*origin_site=*/0, ro);
  plane.attach_fault_plane(fp);
  plane.start();

  const SimTime cut_at = simtime::seconds(5);
  const SimTime heal_at = cut_at + outage;
  fp.schedule({.at = cut_at,
               .kind = fault::FaultEvent::Kind::partition,
               .a = 0,
               .b = kCutSite});
  fp.schedule({.at = heal_at,
               .kind = fault::FaultEvent::Kind::heal,
               .a = 0,
               .b = kCutSite});

  int published = 0;
  sim.spawn(publisher(sim, plane, simtime::seconds(4), heal_at, cadence,
                      &published));

  sim.run_until(heal_at);
  ScenarioResult r;
  if (const auto* st = plane.egress(0).queue_stats(kCutSite)) {
    r.cut_queue = *st;  // depth peaks while the link is down
  }

  // Poll for coherence after the heal; 50 ms quantizes the observed lag
  // but identically so on every run.
  const SimTime deadline = heal_at + simtime::minutes(10);
  while (!plane.coherent() && sim.now() < deadline) {
    sim.run_until(sim.now() + simtime::millis(50));
  }
  r.coherent = plane.coherent();
  r.observed_lag = sim.now() - heal_at;
  // Let in-flight journal commits and the reconciler settle before the
  // digest snapshot.
  sim.run_until(sim.now() + simtime::seconds(30));

  r.published = published;
  r.reported_lag = plane.last_reconcile_lag();
  r.catch_up = plane.reconciler().catch_up_scheduled();
  r.reconcile_rounds = plane.reconciler().rounds();
  r.plane_digest = plane.digest();
  return r;
}

double ms(SimDuration d) { return static_cast<double>(d) / 1e6; }

struct SuiteResult {
  std::vector<ScenarioResult> durations;
  std::vector<ScenarioResult> divergence;
  std::uint64_t digest{0};
};

SuiteResult run_suite(const Options& opt) {
  SuiteResult suite;
  for (const double m : opt.outage_minutes) {
    suite.durations.push_back(
        run_outage(simtime::minutes(m), simtime::seconds(1)));
    suite.durations.back().outage_min = m;
    suite.durations.back().cadence_ms = 1000.0;
  }
  if (!opt.smoke) {
    for (const double c : opt.cadence_ms) {
      suite.divergence.push_back(
          run_outage(simtime::minutes(5), simtime::millis(c)));
      suite.divergence.back().outage_min = 5.0;
      suite.divergence.back().cadence_ms = c;
    }
  }

  Digest dg;
  auto mix_scenario = [&dg](const ScenarioResult& r) {
    dg.mix(static_cast<std::uint64_t>(r.published));
    dg.mix(r.cut_queue.enqueued);
    dg.mix(r.cut_queue.released);
    dg.mix(r.cut_queue.dropped);
    dg.mix(r.cut_queue.spilled);
    dg.mix(r.cut_queue.reforwards);
    dg.mix(r.cut_queue.peak_depth);
    dg.mix_signed(r.observed_lag);
    dg.mix_signed(r.reported_lag);
    dg.mix(r.catch_up);
    dg.mix(r.plane_digest);
    dg.mix(r.coherent ? 1 : 0);
  };
  for (const ScenarioResult& r : suite.durations) mix_scenario(r);
  for (const ScenarioResult& r : suite.divergence) mix_scenario(r);
  suite.digest = dg.v;
  return suite;
}

// The claims the bench exists to demonstrate, enforced so bench-smoke
// turns a regression into a hard failure: every outage reconciles to
// coherence, custody is lossless under spill, peak depth grows with the
// outage, and a bigger diverged backlog never reconciles faster.
bool check_orderings(const SuiteResult& suite) {
  bool ok = true;
  auto fail = [&ok](const char* what, double a, double b) {
    std::fprintf(stderr, "FAIL: ordering '%s' violated (%g min / %g ms)\n",
                 what, a, b);
    ok = false;
  };
  std::uint64_t prev_peak = 0;
  for (const ScenarioResult& r : suite.durations) {
    if (!r.coherent) fail("coherent after heal", r.outage_min, r.cadence_ms);
    if (r.cut_queue.dropped != 0) {
      fail("spill policy loses nothing", r.outage_min, r.cadence_ms);
    }
    if (r.cut_queue.peak_depth <= prev_peak) {
      fail("peak depth grows with outage", r.outage_min, r.cadence_ms);
    }
    prev_peak = r.cut_queue.peak_depth;
    if (r.reported_lag < 0 ||
        r.reported_lag > r.observed_lag + simtime::millis(50)) {
      fail("reported lag within observed window", r.outage_min, r.cadence_ms);
    }
  }
  prev_peak = 0;
  SimDuration prev_lag = -1;
  for (const ScenarioResult& r : suite.divergence) {
    if (!r.coherent) fail("coherent after heal", r.outage_min, r.cadence_ms);
    if (r.cut_queue.dropped != 0) {
      fail("spill policy loses nothing", r.outage_min, r.cadence_ms);
    }
    if (r.cut_queue.peak_depth <= prev_peak) {
      fail("peak depth grows with divergence", r.outage_min, r.cadence_ms);
    }
    prev_peak = r.cut_queue.peak_depth;
    if (r.observed_lag < prev_lag) {
      fail("lag never shrinks with a bigger backlog", r.outage_min,
           r.cadence_ms);
    }
    prev_lag = r.observed_lag;
  }
  return ok;
}

void print_scenarios(const char* key, const std::vector<ScenarioResult>& v,
                     bool trailing_comma) {
  std::printf("  \"%s\": [\n", key);
  for (std::size_t i = 0; i < v.size(); ++i) {
    const ScenarioResult& r = v[i];
    std::printf("    {\"outage_min\": %g, \"publish_cadence_ms\": %g, "
                "\"published\": %d, "
                "\"peak_queue_depth\": %" PRIu64 ", "
                "\"enqueued\": %" PRIu64 ", "
                "\"released\": %" PRIu64 ", "
                "\"spilled\": %" PRIu64 ", "
                "\"dropped\": %" PRIu64 ", "
                "\"reforwards\": %" PRIu64 ", "
                "\"reconciliation_lag_ms\": %.1f, "
                "\"reported_lag_ms\": %.1f, "
                "\"catch_up_bundles\": %" PRIu64 ", "
                "\"coherent\": %s}%s\n",
                r.outage_min, r.cadence_ms, r.published,
                r.cut_queue.peak_depth, r.cut_queue.enqueued,
                r.cut_queue.released, r.cut_queue.spilled,
                r.cut_queue.dropped, r.cut_queue.reforwards,
                ms(r.observed_lag), ms(r.reported_lag), r.catch_up,
                r.coherent ? "true" : "false",
                i + 1 < v.size() ? "," : "");
  }
  std::printf("  ]%s\n", trailing_comma ? "," : "");
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--repeat=", 0) == 0) {
      opt.repeat = std::atoi(arg.substr(arg.find('=') + 1).c_str());
      if (opt.repeat < 1) opt.repeat = 1;
    } else if (arg == "--smoke") {
      opt.smoke = true;
      opt.outage_minutes = {1.0};
    } else {
      std::fprintf(stderr, "usage: %s [--repeat=N] [--smoke]\n", argv[0]);
      return 2;
    }
  }

  const SuiteResult suite = run_suite(opt);
  bool reproducible = true;
  for (int i = 1; i < opt.repeat; ++i) {
    const SuiteResult again = run_suite(opt);
    reproducible = reproducible && again.digest == suite.digest;
  }
  const bool orderings_ok = check_orderings(suite);

  std::printf("{\n");
  std::printf("  \"bench\": \"bench_reconciliation\",\n");
  std::printf("  \"smoke\": %s,\n", opt.smoke ? "true" : "false");
  std::printf("  \"version_bytes\": %" PRIu64 ",\n", kVersionBytes);
  print_scenarios("partition_duration_sweep", suite.durations, true);
  print_scenarios("divergence_sweep", suite.divergence, true);
  std::printf("  \"orderings_ok\": %s,\n", orderings_ok ? "true" : "false");
  std::printf("  \"reproducible\": %s,\n", reproducible ? "true" : "false");
  std::printf("  \"digest\": \"%016" PRIx64 "\"\n", suite.digest);
  std::printf("}\n");

  if (!reproducible) {
    std::fprintf(stderr, "FAIL: suite digest moved across replays\n");
    return 1;
  }
  return orderings_ok ? 0 : 1;
}
