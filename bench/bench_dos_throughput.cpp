// Experiment E-C2 (§IV-C, second experiment): impact of concurrent DoS
// attacks on storage performance as the number of clients grows.
//
// Paper setup: 70 BlobSeer nodes, 8 monitoring services, clients swept with
// 50% of them malicious. Reported result: "When all the concurrent writers
// act as correct clients, the system is able to maintain a constant average
// throughput for each client, around 110 MB/s. However, when no security
// mechanism is employed, the performance is drastically lowered ...
// decreasing under 50 MB/s when more than 30 clients are deployed, out of
// which 50% are malicious. Further, the throughput increases again, once
// the attackers are blocked by the security framework."
#include "dos_common.hpp"

using namespace bs;
using namespace bs::bench;

namespace {

enum class Mode { all_correct, attack_no_security, attack_with_security };

double run_mode(int total_clients, Mode mode) {
  const SimTime kEnd = simtime::seconds(150);
  sim::Simulation sim;
  StackConfig cfg =
      dos_stack_config(mode == Mode::attack_with_security);
  Stack stack(sim, cfg);
  DosScenario sc;
  const int honest = mode == Mode::all_correct ? total_clients
                                               : total_clients / 2;
  const int attackers = mode == Mode::all_correct ? 0 : total_clients / 2;
  // The attack runs for the whole experiment (the paper's sustained-attack
  // measurement); with security, blocks land mid-run and throughput
  // recovers inside the measured window.
  launch_dos_workload(sim, stack, sc, honest, attackers,
                      /*attack_start=*/simtime::seconds(10), kEnd);
  sim.run_until(kEnd);

  // loop_forever writers never "finish"; measure bytes over the window.
  RunningStats per_client;
  for (const auto& s : sc.honest_stats) {
    const double sec = simtime::to_seconds(kEnd - s.started);
    per_client.add(sec > 0 ? static_cast<double>(s.bytes_done) / sec / 1e6
                           : 0.0);
  }
  return per_client.mean();
}

}  // namespace

int main() {
  print_header(
      "E-C2  per-client write throughput vs client count (50% malicious)",
      "all-correct: constant ~110 MB/s per client; attack without "
      "security: < 50 MB/s beyond 30 clients; with the security framework "
      "throughput increases again once attackers are blocked");

  std::vector<std::vector<std::string>> rows;
  bool baseline_constant = true;
  bool attack_collapses = true;
  bool security_recovers = true;
  double first_baseline = -1;

  for (int clients : {10, 20, 30, 40, 50}) {
    const double correct = run_mode(clients, Mode::all_correct);
    const double attacked = run_mode(clients, Mode::attack_no_security);
    const double secured = run_mode(clients, Mode::attack_with_security);
    if (first_baseline < 0) first_baseline = correct;
    baseline_constant &= correct > 0.85 * first_baseline;
    if (clients >= 30) attack_collapses &= attacked < 50.0;
    security_recovers &= secured > attacked;

    char a[32], b[32], c[32];
    std::snprintf(a, sizeof(a), "%.1f", correct);
    std::snprintf(b, sizeof(b), "%.1f", attacked);
    std::snprintf(c, sizeof(c), "%.1f", secured);
    rows.push_back({std::to_string(clients), a, b, c});
    std::printf("  clients=%-3d all-correct=%7.1f  no-security=%7.1f  "
                "with-security=%7.1f MB/s\n",
                clients, correct, attacked, secured);
  }

  std::printf("\n%s", viz::table({"clients", "all correct MB/s",
                                  "50% malicious, no security",
                                  "50% malicious, with security"},
                                 rows)
                          .c_str());
  std::printf("\n  baseline constant across client counts : %s\n",
              baseline_constant ? "yes" : "NO");
  std::printf("  unprotected < 50 MB/s at >= 30 clients  : %s\n",
              attack_collapses ? "yes" : "NO");
  std::printf("  security framework restores throughput : %s\n",
              security_recovers ? "yes" : "NO");
  const bool ok = baseline_constant && attack_collapses && security_recovers;
  std::printf("  shape vs paper                          : %s\n",
              ok ? "REPRODUCED" : "NOT reproduced");
  return ok ? 0 : 1;
}
