// Microbenchmark: monitoring-pipeline component costs — data-filter ingest
// throughput, flush cost, and UserActivityHistory queries.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "intro/activity.hpp"
#include "mon/filters.hpp"

using namespace bs;
using namespace bs::mon;

namespace {

std::vector<MetricEvent> make_events(int n, int clients, int providers) {
  Rng rng(3);
  std::vector<MetricEvent> out(static_cast<std::size_t>(n));
  for (auto& ev : out) {
    const auto kind = rng.next_below(4);
    ev.kind = kind == 0   ? MetricKind::chunk_write
              : kind == 1 ? MetricKind::chunk_read
              : kind == 2 ? MetricKind::provider_storage
                          : MetricKind::cpu_load;
    ev.client = ClientId{1 + rng.next_below(clients)};
    ev.source = NodeId{1 + rng.next_below(providers)};
    ev.blob = BlobId{1 + rng.next_below(16)};
    ev.value = rng.uniform(0, 1e8);
    ev.aux = 4096;
  }
  return out;
}

void BM_FilterIngest(benchmark::State& state) {
  auto events = make_events(10000, static_cast<int>(state.range(0)), 150);
  auto filters = default_filters();
  std::vector<Record> sink;
  for (auto _ : state) {
    for (const auto& ev : events) {
      for (auto& f : filters) f->ingest(ev);
    }
    sink.clear();
    for (auto& f : filters) f->flush(simtime::seconds(1), sink);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_FilterIngest)->Arg(10)->Arg(100)->Arg(1000);

void BM_ActivityIngest(benchmark::State& state) {
  intro::UserActivityHistory uah(simtime::minutes(10));
  Rng rng(5);
  SimTime t = 0;
  for (auto _ : state) {
    Record r;
    r.key = {Domain::client, 1 + rng.next_below(200),
             Metric::write_ops};
    r.time = (t += simtime::millis(10));
    r.value = 1;
    uah.ingest(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ActivityIngest);

void BM_ActivityRateQuery(benchmark::State& state) {
  intro::UserActivityHistory uah(simtime::minutes(10));
  for (int c = 1; c <= 100; ++c) {
    for (int t = 0; t < 300; ++t) {
      Record r;
      r.key = {Domain::client, static_cast<std::uint64_t>(c),
               Metric::write_ops};
      r.time = simtime::seconds(t);
      r.value = 3;
      uah.ingest(r);
    }
  }
  Rng rng(7);
  for (auto _ : state) {
    const ClientId c{1 + rng.next_below(100)};
    benchmark::DoNotOptimize(uah.rate(c, Metric::write_ops,
                                      simtime::seconds(60),
                                      simtime::seconds(300)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ActivityRateQuery);

}  // namespace

BENCHMARK_MAIN();
