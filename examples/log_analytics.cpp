// Data-intensive application scenario (the MapReduce-style workloads that
// motivate the paper's introduction): a fleet of producers appends log
// batches to a shared BLOB under heavy concurrency, while analyzers stream
// ranges back out — exercising BlobSeer's concurrent-append serialization
// and versioned reads.
//
//   $ ./examples/log_analytics
#include <cstdio>

#include "blob/deployment.hpp"
#include "workload/clients.hpp"

using namespace bs;

int main() {
  sim::Simulation sim;
  blob::DeploymentConfig cfg;
  cfg.data_providers = 24;
  cfg.metadata_providers = 4;
  blob::Deployment dep(sim, cfg);

  constexpr int kProducers = 8;
  constexpr int kAnalyzers = 4;
  constexpr std::uint64_t kBatch = 16 * units::MB;
  constexpr std::uint64_t kPerProducer = 256 * units::MB;

  // One shared log blob, created by the first producer.
  std::vector<blob::BlobClient*> producers;
  for (int i = 0; i < kProducers; ++i) producers.push_back(dep.add_client());
  std::vector<blob::BlobClient*> analyzers;
  for (int i = 0; i < kAnalyzers; ++i) analyzers.push_back(dep.add_client());

  std::optional<BlobId> log_blob;
  sim.spawn([](blob::BlobClient& c,
               std::optional<BlobId>& out) -> sim::Task<void> {
    auto blob = co_await c.create(8 * units::MB);
    if (blob.ok()) out = blob.value();
  }(*producers[0], log_blob));
  sim.run_until(simtime::seconds(1));
  if (!log_blob.has_value()) {
    std::printf("failed to create log blob\n");
    return 1;
  }

  // Producers: concurrent appends of 16 MB batches.
  std::vector<workload::ClientRunStats> pstats(kProducers);
  workload::ThroughputTracker ingest;
  for (int i = 0; i < kProducers; ++i) {
    workload::WriterOptions opts;
    opts.total_bytes = kPerProducer;
    opts.op_bytes = kBatch;
    sim.spawn(workload::Writer::run(*producers[i], *log_blob, opts,
                                    &pstats[i], &ingest));
  }
  // Analyzers: start after 10 s, stream random 32 MB ranges.
  std::vector<workload::ClientRunStats> astats(kAnalyzers);
  workload::ThroughputTracker scan;
  for (int i = 0; i < kAnalyzers; ++i) {
    workload::ReaderOptions opts;
    opts.total_bytes = 512 * units::MB;
    opts.op_bytes = 32 * units::MB;
    opts.start = simtime::seconds(10);
    opts.rng_seed = 100 + i;
    sim.spawn(workload::Reader::run(*analyzers[i], *log_blob, opts,
                                    &astats[i], &scan));
  }

  sim.run_until(simtime::minutes(10));

  std::uint64_t ingested = 0, failures = 0;
  for (const auto& s : pstats) {
    ingested += s.bytes_done;
    failures += s.ops_failed;
  }
  std::uint64_t scanned = 0;
  for (const auto& s : astats) scanned += s.bytes_done;

  std::printf("=== log analytics on BlobSeer ===\n");
  std::printf("producers : %d x %s appended (%s total, %llu failed ops)\n",
              kProducers, units::format_bytes(kPerProducer).c_str(),
              units::format_bytes(ingested).c_str(),
              (unsigned long long)failures);
  std::printf("analyzers : %d, %s scanned\n", kAnalyzers,
              units::format_bytes(scanned).c_str());
  std::printf("aggregate ingest: %.1f MB/s | aggregate scan: %.1f MB/s\n",
              ingest.mean_mbps(0, simtime::seconds(60)),
              scan.mean_mbps(simtime::seconds(10), simtime::seconds(60)));

  for (int i = 0; i < kProducers; ++i) {
    std::printf("  producer %d: %llu appends, per-op mean %s\n", i,
                (unsigned long long)pstats[i].ops_ok,
                units::format_rate(pstats[i].op_throughput_bps.mean())
                    .c_str());
  }

  // Every producer's appends serialized into distinct versions.
  bool done = false;
  sim.spawn([](blob::BlobClient& c, BlobId b, bool& flag) -> sim::Task<void> {
    auto d = co_await c.stat(b);
    if (d.ok()) {
      std::printf("log blob: %llu versions, final size %s\n",
                  (unsigned long long)d.value().latest.version,
                  units::format_bytes(d.value().latest.size).c_str());
    }
    flag = true;
  }(*producers[0], *log_blob, done));
  while (!done && sim.step()) {
  }
  return 0;
}
