// Self-protecting cloud storage: the S3 gateway over BlobSeer with the
// full monitoring -> introspection -> security-policy stack attached. Two
// tenants use buckets with ACLs; a malicious client launches a DoS flood
// and is detected, blocked, and distrusted while honest tenants keep
// working (§III-C + §V trust management in action).
//
//   $ ./examples/secure_cloud_storage
#include <cstdio>

#include "cloud/gateway.hpp"
#include "mon/layer.hpp"
#include "sec/framework.hpp"
#include "workload/clients.hpp"

using namespace bs;

namespace {
template <class T>
T run(sim::Simulation& sim, sim::Task<T> task) {
  std::optional<T> out;
  sim.spawn([](sim::Task<T> t, std::optional<T>& slot) -> sim::Task<void> {
    slot.emplace(co_await std::move(t));
  }(std::move(task), out));
  while (!out.has_value() && sim.step()) {
  }
  return std::move(*out);
}
}  // namespace

int main() {
  sim::Simulation sim;

  blob::DeploymentConfig cfg;
  cfg.data_providers = 8;
  cfg.metadata_providers = 2;
  cfg.node_spec.service_concurrency = 1;
  cfg.node_spec.service_overhead = simtime::millis(5);
  cfg.node_spec.service_queue_limit = 64;
  blob::Deployment dep(sim, cfg);

  // Introspection + monitoring + security.
  rpc::Node* intro_node = dep.cluster().add_node(0);
  intro::IntrospectionService introspection(*intro_node);
  introspection.start();
  mon::MonitoringConfig mcfg;
  mcfg.sinks = {intro_node->id()};
  mon::MonitoringLayer monitoring(dep, mcfg);
  monitoring.start();
  sec::SecurityFramework security(sim, introspection.activity());
  security.attach_deployment(dep);
  security.start();

  std::vector<std::string> incidents;
  security.enforcement().set_action_observer(
      [&incidents](const sec::PolicyEnforcement::ActionLogEntry& e) {
        char buf[160];
        std::snprintf(buf, sizeof(buf), "[%s] client %llu: %s (policy %s)",
                      simtime::to_string(e.time).c_str(),
                      (unsigned long long)e.client.value,
                      e.action.to_string().c_str(), e.policy.c_str());
        incidents.emplace_back(buf);
      });

  // S3 gateway.
  rpc::Node* gw = dep.cluster().add_node(0);
  cloud::S3Gateway gateway(*gw, dep.endpoints());

  const ClientId alice{201}, bob{202}, mallory{666};
  rpc::Node* alice_node = dep.cluster().add_node(1);
  rpc::Node* bob_node = dep.cluster().add_node(2);

  auto as_user = [&](ClientId user) {
    rpc::CallOptions o;
    o.client = user;
    return o;
  };

  // Alice publishes a dataset, grants Bob read access.
  auto setup = run(sim, [](rpc::Cluster& c, rpc::Node& n, NodeId g,
                           rpc::CallOptions alice_opts,
                           ClientId bob_id) -> sim::Task<Result<int>> {
    cloud::S3CreateBucketReq mk;
    mk.bucket = "datasets";
    auto r1 = co_await c.call<cloud::S3CreateBucketReq,
                              cloud::S3CreateBucketResp>(n, g, mk,
                                                         alice_opts);
    if (!r1.ok()) co_return r1.error();

    std::vector<std::uint8_t> content(3 * units::MB);
    for (std::size_t i = 0; i < content.size(); ++i) {
      content[i] = static_cast<std::uint8_t>(i % 251);
    }
    cloud::S3PutObjectReq put;
    put.bucket = "datasets";
    put.key = "genome/chr1.dat";
    put.payload = blob::Payload::from_bytes(std::move(content));
    auto r2 =
        co_await c.call<cloud::S3PutObjectReq, cloud::S3PutObjectResp>(
            n, g, std::move(put), alice_opts);
    if (!r2.ok()) co_return r2.error();

    cloud::S3SetAclReq acl;
    acl.bucket = "datasets";
    acl.grantee = bob_id;
    acl.permission = cloud::Permission::read;
    auto r3 = co_await c.call<cloud::S3SetAclReq, cloud::S3SetAclResp>(
        n, g, acl, alice_opts);
    if (!r3.ok()) co_return r3.error();
    co_return 0;
  }(dep.cluster(), *alice_node, gw->id(), as_user(alice), bob));
  if (!setup.ok()) {
    std::printf("setup failed: %s\n", setup.error().to_string().c_str());
    return 1;
  }
  std::printf("alice created bucket 'datasets' and granted bob read\n");

  // Bob reads through his grant; his unauthorized write is denied.
  auto bob_read = run(sim, [](rpc::Cluster& c, rpc::Node& n, NodeId g,
                              rpc::CallOptions opts)
                               -> sim::Task<Result<std::uint64_t>> {
    cloud::S3GetObjectReq get;
    get.bucket = "datasets";
    get.key = "genome/chr1.dat";
    auto r = co_await c.call<cloud::S3GetObjectReq, cloud::S3GetObjectResp>(
        n, g, get, opts);
    if (!r.ok()) co_return r.error();
    co_return r.value().payload.size;
  }(dep.cluster(), *bob_node, gw->id(), as_user(bob)));
  std::printf("bob read %s via ACL grant\n",
              units::format_bytes(bob_read.value_or(0)).c_str());

  auto bob_write = run(sim, [](rpc::Cluster& c, rpc::Node& n, NodeId g,
                               rpc::CallOptions opts)
                                -> sim::Task<Result<int>> {
    cloud::S3PutObjectReq put;
    put.bucket = "datasets";
    put.key = "genome/tampered";
    put.payload = blob::Payload::synthetic(units::MB, 9);
    auto r = co_await c.call<cloud::S3PutObjectReq, cloud::S3PutObjectResp>(
        n, g, std::move(put), opts);
    if (!r.ok()) co_return r.error();
    co_return 0;
  }(dep.cluster(), *bob_node, gw->id(), as_user(bob)));
  std::printf("bob's unauthorized write: %s\n",
              bob_write.ok() ? "ALLOWED (bug!)"
                             : bob_write.error().to_string().c_str());

  // Mallory floods the data providers.
  rpc::Node* mallory_node = dep.cluster().add_node(2);
  std::vector<NodeId> targets;
  for (auto& p : dep.providers()) targets.push_back(p->id());
  workload::AttackerOptions aopts;
  aopts.request_rate = 1500;
  aopts.start = simtime::seconds(10);
  aopts.deadline = simtime::seconds(90);
  workload::AttackerStats astats;
  sim.spawn(workload::DosAttacker::run(*mallory_node, mallory, targets,
                                       aopts, &astats));
  std::printf("\nmallory starts a DoS flood at t=10s ...\n");
  sim.run_until(simtime::seconds(90));

  std::printf("attack: %llu sent, %llu served, %llu rejected after block\n",
              (unsigned long long)astats.sent,
              (unsigned long long)astats.served,
              (unsigned long long)astats.rejected);
  if (astats.first_rejected != simtime::kInfinite) {
    std::printf("first feedback rejection at %s (detection+block delay "
                "%.1fs)\n",
                simtime::to_string(astats.first_rejected).c_str(),
                simtime::to_seconds(astats.first_rejected) - 10.0);
  }
  std::printf("trust: alice=%.2f bob=%.2f mallory=%.2f\n",
              security.trust().trust(alice), security.trust().trust(bob),
              security.trust().trust(mallory));
  std::printf("\nincident log:\n");
  for (const auto& line : incidents) std::printf("  %s\n", line.c_str());

  // Honest traffic still works while mallory is blocked.
  auto verify = run(sim, [](rpc::Cluster& c, rpc::Node& n, NodeId g,
                            rpc::CallOptions opts)
                             -> sim::Task<Result<std::uint64_t>> {
    cloud::S3GetObjectReq get;
    get.bucket = "datasets";
    get.key = "genome/chr1.dat";
    auto r = co_await c.call<cloud::S3GetObjectReq, cloud::S3GetObjectResp>(
        n, g, get, opts);
    if (!r.ok()) co_return r.error();
    co_return r.value().payload.size;
  }(dep.cluster(), *alice_node, gw->id(), as_user(alice)));
  std::printf("\nalice reads her dataset during the block: %s\n",
              verify.ok() ? units::format_bytes(verify.value()).c_str()
                          : verify.error().to_string().c_str());
  return verify.ok() && !bob_write.ok() && astats.rejected > 0 ? 0 : 1;
}
