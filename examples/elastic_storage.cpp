// Self-configuration demo (§V): the provider pool tracks the workload. A
// write surge pushes utilization over the target band, the MAPE-K loop
// deploys new data providers; when temporary data expires and pressure
// drops, the pool drains back down.
//
//   $ ./examples/elastic_storage
#include <cstdio>

#include "core/controller.hpp"
#include "core/elasticity.hpp"
#include "core/removal.hpp"
#include "mon/layer.hpp"
#include "workload/clients.hpp"

using namespace bs;

int main() {
  sim::Simulation sim;
  blob::DeploymentConfig cfg;
  cfg.data_providers = 4;
  cfg.metadata_providers = 2;
  cfg.provider_capacity = 512 * units::MB;
  blob::Deployment dep(sim, cfg);

  rpc::Node* intro_node = dep.cluster().add_node(0);
  intro::IntrospectionService introspection(*intro_node);
  introspection.start();
  mon::MonitoringConfig mcfg;
  mcfg.sinks = {intro_node->id()};
  mon::MonitoringLayer monitoring(dep, mcfg);
  monitoring.start();

  core::AutonomicController controller(dep, introspection);
  core::ElasticityOptions eopts;
  eopts.min_providers = 4;
  eopts.util_high = 0.65;
  eopts.util_low = 0.30;
  eopts.cooldown = simtime::seconds(15);
  controller.add_module(std::make_unique<core::ElasticityModule>(eopts));
  controller.add_module(std::make_unique<core::RemovalModule>());
  // New providers must join the monitoring layer, or the knowledge base
  // never sees their capacity and the loop over-provisions.
  controller.executor().set_provider_added_hook(
      [&monitoring](blob::DataProvider& p) { monitoring.attach_provider(p); });
  controller.start();

  // Record pool size once per second.
  std::vector<std::size_t> pool_sizes;
  sim.spawn([](sim::Simulation& s, blob::Deployment& d,
               std::vector<std::size_t>& out) -> sim::Task<void> {
    while (s.now() < simtime::minutes(6)) {
      std::size_t alive = 0;
      for (auto& p : d.providers()) {
        if (p->node().up()) ++alive;
      }
      out.push_back(alive);
      co_await s.delay(simtime::seconds(1));
    }
  }(sim, dep, pool_sizes));

  // Phase 1 (t=5s..): a burst of temporary datasets (TTL 2 min) filling
  // most of the initial 2 GB pool.
  blob::BlobClient* loader = dep.add_client();
  monitoring.attach_client(*loader);
  sim.spawn([](sim::Simulation& s, blob::BlobClient& c) -> sim::Task<void> {
    co_await s.delay(simtime::seconds(5));
    for (int i = 0; i < 6; ++i) {
      auto blob = co_await c.create(16 * units::MB, 1,
                                    /*ttl=*/simtime::minutes(2));
      if (!blob.ok()) continue;
      (void)co_await c.write(
          *blob, 0, blob::Payload::synthetic(256 * units::MB, i));
    }
  }(sim, *loader));

  sim.run_until(simtime::minutes(6));

  std::printf("=== elastic provider pool ===\n");
  std::printf("t(s)  pool size\n");
  for (std::size_t i = 0; i < pool_sizes.size(); i += 10) {
    std::printf("%4zu  %zu %s\n", i * 1, pool_sizes[i],
                std::string(pool_sizes[i], '#').c_str());
  }
  const std::size_t peak =
      *std::max_element(pool_sizes.begin(), pool_sizes.end());
  std::printf("\ninitial pool: 4, peak pool: %zu, final pool: %zu\n", peak,
              pool_sizes.back());
  std::printf("autonomic loop iterations: %llu, actions: ",
              (unsigned long long)controller.iterations());
  std::size_t adds = 0, drains = 0;
  for (const auto& a : controller.action_log()) {
    if (a.action.type == core::AdaptAction::Type::add_provider) ++adds;
    if (a.action.type == core::AdaptAction::Type::drain_provider) ++drains;
  }
  std::printf("%zu provider additions, %zu drains\n", adds, drains);
  return peak > 4 ? 0 : 1;
}
