// The visualization tool of §IV-A: runs a mixed workload on an instrumented
// deployment, then renders the introspection layer's view of the system —
// physical parameters, per-provider and system storage space, BLOB access
// patterns, chunk distribution, and client activity.
//
//   $ ./examples/introspection_dashboard
//
// Also dumps the run's observability artifacts next to the binary:
//   bs_trace.json  — Chrome trace_event stream; open it in Perfetto
//                    (https://ui.perfetto.dev, "Open trace file") or
//                    chrome://tracing to walk every RPC/blob/MAPE-K span
//                    on the simulated clock.
//   bs_metrics.csv — counter/gauge/histogram snapshot for spreadsheets.
#include <cstdio>
#include <fstream>

#include "mon/layer.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "viz/dashboard.hpp"
#include "viz/metrics_panel.hpp"
#include "workload/clients.hpp"

using namespace bs;

int main() {
  sim::Simulation sim;
  obs::TraceSink trace;
  obs::MetricsRegistry metrics;
  sim.attach_trace(trace);
  obs::ScopedMetrics metrics_scope(metrics);
  blob::DeploymentConfig cfg;
  cfg.data_providers = 6;
  cfg.metadata_providers = 2;
  blob::Deployment dep(sim, cfg);

  rpc::Node* intro_node = dep.cluster().add_node(0);
  intro::IntrospectionService introspection(*intro_node);
  introspection.start();
  mon::MonitoringConfig mcfg;
  mcfg.sinks = {intro_node->id()};
  mon::MonitoringLayer monitoring(dep, mcfg);
  monitoring.start();

  // Mixed workload: two writers on separate blobs + one hot reader.
  std::vector<blob::BlobClient*> clients;
  for (int i = 0; i < 3; ++i) {
    clients.push_back(dep.add_client());
    monitoring.attach_client(*clients.back());
  }

  std::optional<BlobId> blob_a, blob_b;
  sim.spawn([](blob::BlobClient& c, std::optional<BlobId>& a,
               std::optional<BlobId>& b) -> sim::Task<void> {
    auto r1 = co_await c.create(8 * units::MB);
    if (r1.ok()) a = r1.value();
    auto r2 = co_await c.create(8 * units::MB);
    if (r2.ok()) b = r2.value();
  }(*clients[0], blob_a, blob_b));
  sim.run_until(simtime::seconds(1));
  if (!blob_a || !blob_b) return 1;

  workload::ClientRunStats s0, s1, s2;
  workload::WriterOptions w0;
  w0.total_bytes = 512 * units::MB;
  w0.op_bytes = 32 * units::MB;
  sim.spawn(workload::Writer::run(*clients[0], *blob_a, w0, &s0));

  workload::WriterOptions w1;
  w1.total_bytes = 256 * units::MB;
  w1.op_bytes = 16 * units::MB;
  w1.start = simtime::seconds(15);
  sim.spawn(workload::Writer::run(*clients[1], *blob_b, w1, &s1));

  workload::ReaderOptions r2;
  r2.total_bytes = 384 * units::MB;
  r2.op_bytes = 32 * units::MB;
  r2.start = simtime::seconds(20);
  sim.spawn(workload::Reader::run(*clients[2], *blob_a, r2, &s2));

  sim.run_until(simtime::minutes(2));

  viz::Dashboard dash(introspection);
  std::fputs(dash.render(0, sim.now()).c_str(), stdout);

  std::printf("\nmonitoring totals: %llu raw events, %llu records, "
              "%zu series, %llu dropped\n",
              (unsigned long long)monitoring.total_events(),
              (unsigned long long)monitoring.total_records(),
              monitoring.distinct_series(),
              (unsigned long long)monitoring.total_dropped());

  std::fputs("\n", stdout);
  std::fputs(viz::metrics_table(metrics, sim.now()).c_str(), stdout);
  std::ofstream("bs_trace.json", std::ios::binary)
      << obs::chrome_trace_json(trace);
  std::ofstream("bs_metrics.csv", std::ios::binary)
      << obs::metrics_csv(metrics, sim.now());
  std::printf("\nwrote bs_trace.json (%zu trace records, %llu dropped) — "
              "load it at https://ui.perfetto.dev\nwrote bs_metrics.csv\n",
              trace.size(), (unsigned long long)trace.dropped());
  sim::Simulation::detach_trace();
  return 0;
}
