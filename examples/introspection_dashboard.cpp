// The visualization tool of §IV-A: runs a mixed workload on an instrumented
// deployment, then renders the introspection layer's view of the system —
// physical parameters, per-provider and system storage space, BLOB access
// patterns, chunk distribution, and client activity.
//
//   $ ./examples/introspection_dashboard
#include <cstdio>

#include "mon/layer.hpp"
#include "viz/dashboard.hpp"
#include "workload/clients.hpp"

using namespace bs;

int main() {
  sim::Simulation sim;
  blob::DeploymentConfig cfg;
  cfg.data_providers = 6;
  cfg.metadata_providers = 2;
  blob::Deployment dep(sim, cfg);

  rpc::Node* intro_node = dep.cluster().add_node(0);
  intro::IntrospectionService introspection(*intro_node);
  introspection.start();
  mon::MonitoringConfig mcfg;
  mcfg.sinks = {intro_node->id()};
  mon::MonitoringLayer monitoring(dep, mcfg);
  monitoring.start();

  // Mixed workload: two writers on separate blobs + one hot reader.
  std::vector<blob::BlobClient*> clients;
  for (int i = 0; i < 3; ++i) {
    clients.push_back(dep.add_client());
    monitoring.attach_client(*clients.back());
  }

  std::optional<BlobId> blob_a, blob_b;
  sim.spawn([](blob::BlobClient& c, std::optional<BlobId>& a,
               std::optional<BlobId>& b) -> sim::Task<void> {
    auto r1 = co_await c.create(8 * units::MB);
    if (r1.ok()) a = r1.value();
    auto r2 = co_await c.create(8 * units::MB);
    if (r2.ok()) b = r2.value();
  }(*clients[0], blob_a, blob_b));
  sim.run_until(simtime::seconds(1));
  if (!blob_a || !blob_b) return 1;

  workload::ClientRunStats s0, s1, s2;
  workload::WriterOptions w0;
  w0.total_bytes = 512 * units::MB;
  w0.op_bytes = 32 * units::MB;
  sim.spawn(workload::Writer::run(*clients[0], *blob_a, w0, &s0));

  workload::WriterOptions w1;
  w1.total_bytes = 256 * units::MB;
  w1.op_bytes = 16 * units::MB;
  w1.start = simtime::seconds(15);
  sim.spawn(workload::Writer::run(*clients[1], *blob_b, w1, &s1));

  workload::ReaderOptions r2;
  r2.total_bytes = 384 * units::MB;
  r2.op_bytes = 32 * units::MB;
  r2.start = simtime::seconds(20);
  sim.spawn(workload::Reader::run(*clients[2], *blob_a, r2, &s2));

  sim.run_until(simtime::minutes(2));

  viz::Dashboard dash(introspection);
  std::fputs(dash.render(0, sim.now()).c_str(), stdout);

  std::printf("\nmonitoring totals: %llu raw events, %llu records, "
              "%zu series, %llu dropped\n",
              (unsigned long long)monitoring.total_events(),
              (unsigned long long)monitoring.total_records(),
              monitoring.distinct_series(),
              (unsigned long long)monitoring.total_dropped());
  return 0;
}
