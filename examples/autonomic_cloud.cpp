// Capstone demo: the paper's whole vision in one run. A BlobSeer
// deployment with the full self-adaptive stack — introspection, security
// framework, and all MAPE-K modules — rides out a day-in-the-life script:
// a write surge (self-configuration grows the pool), a read-hot dataset
// (self-optimization raises its replication), a provider crash (repair), a
// DoS attack (self-protection blocks it), TTL expiry (removal reclaims
// space) — then prints the story.
//
//   $ ./examples/autonomic_cloud
#include <cstdio>

#include "core/controller.hpp"
#include "core/elasticity.hpp"
#include "core/protection.hpp"
#include "core/removal.hpp"
#include "core/replication.hpp"
#include "mon/layer.hpp"
#include "sec/framework.hpp"
#include "workload/clients.hpp"

using namespace bs;

namespace {
template <class T>
T run(sim::Simulation& sim, sim::Task<T> task) {
  std::optional<T> out;
  sim.spawn([](sim::Task<T> t, std::optional<T>& slot) -> sim::Task<void> {
    slot.emplace(co_await std::move(t));
  }(std::move(task), out));
  while (!out.has_value() && sim.step()) {
  }
  return std::move(*out);
}
}  // namespace

int main() {
  sim::Simulation sim;
  blob::DeploymentConfig cfg;
  cfg.data_providers = 6;
  cfg.metadata_providers = 2;
  cfg.provider_capacity = 1ull * units::GB;
  cfg.node_spec.service_concurrency = 1;
  cfg.node_spec.service_overhead = simtime::millis(5);
  cfg.node_spec.service_queue_limit = 64;
  blob::Deployment dep(sim, cfg);

  rpc::Node* intro_node = dep.cluster().add_node(0);
  intro::IntrospectionService intro(*intro_node);
  intro.start();
  mon::MonitoringConfig mcfg;
  mcfg.sinks = {intro_node->id()};
  mon::MonitoringLayer monitoring(dep, mcfg);
  monitoring.start();
  sec::SecurityFramework security(sim, intro.activity());
  security.attach_deployment(dep);
  security.start();

  core::AutonomicController controller(dep, intro, &security);
  core::ElasticityOptions eopts;
  eopts.min_providers = 6;
  controller.add_module(std::make_unique<core::ElasticityModule>(eopts));
  core::ReplicationOptions ropts;
  ropts.hot_read_rate = 30e6;
  controller.add_module(std::make_unique<core::ReplicationModule>(ropts));
  controller.add_module(std::make_unique<core::RemovalModule>());
  controller.add_module(std::make_unique<core::ProtectionModule>());
  controller.executor().set_provider_added_hook(
      [&](blob::DataProvider& p) {
        monitoring.attach_provider(p);
        security.attach(p.node());
      });
  controller.start();

  // --- the dataset everyone reads ---------------------------------------
  blob::BlobClient* owner = dep.add_client();
  monitoring.attach_client(*owner);
  auto dataset = run(sim, owner->create(8 * units::MB));
  (void)run(sim, owner->write(
                     *dataset, 0,
                     blob::Payload::synthetic(128 * units::MB, 1)));

  // t=10s..: readers make the dataset hot.
  for (int i = 0; i < 3; ++i) {
    blob::BlobClient* r = dep.add_client();
    monitoring.attach_client(*r);
    workload::ReaderOptions opts;
    opts.loop_forever = true;
    opts.op_bytes = 32 * units::MB;
    opts.start = simtime::seconds(10);
    opts.deadline = simtime::minutes(4);
    opts.rng_seed = 40 + i;
    sim.spawn(workload::Reader::run(*r, *dataset, opts, nullptr));
  }

  // t=30s..: a surge of temporary uploads pressures storage.
  blob::BlobClient* uploader = dep.add_client();
  monitoring.attach_client(*uploader);
  sim.spawn([](sim::Simulation& s, blob::BlobClient& c) -> sim::Task<void> {
    co_await s.delay(simtime::seconds(30));
    for (int i = 0; i < 10; ++i) {
      auto b = co_await c.create(16 * units::MB, 1,
                                 /*ttl=*/simtime::minutes(3));
      if (b.ok()) {
        (void)co_await c.write(
            *b, 0, blob::Payload::synthetic(384 * units::MB, i));
      }
    }
  }(sim, *uploader));

  // t=120s: a provider crashes.
  sim.schedule_at(simtime::seconds(120), [&dep] {
    dep.cluster().retire_node(dep.providers()[2]->id());
    std::printf("[120s] provider %llu crashed\n",
                (unsigned long long)dep.providers()[2]->id().value);
  });

  // t=150s..240s: a DoS attacker floods the providers.
  rpc::Node* attacker_node = dep.cluster().add_node(1);
  std::vector<NodeId> targets;
  for (auto& p : dep.providers()) targets.push_back(p->id());
  workload::AttackerOptions aopts;
  aopts.request_rate = 900;
  aopts.start = simtime::seconds(150);
  aopts.deadline = simtime::seconds(240);
  workload::AttackerStats astats;
  sim.spawn(workload::DosAttacker::run(*attacker_node, ClientId{666},
                                       targets, aopts, &astats));

  sim.run_until(simtime::minutes(8));

  // --- the story ---------------------------------------------------------
  std::printf("\n=== what the autonomic engine did (%llu MAPE iterations) "
              "===\n",
              (unsigned long long)controller.iterations());
  std::size_t adds = 0, drains = 0, repairs = 0, raises = 0, trims = 0,
              deletes = 0, retunes = 0;
  for (const auto& e : controller.action_log()) {
    switch (e.action.type) {
      case core::AdaptAction::Type::add_provider: ++adds; break;
      case core::AdaptAction::Type::drain_provider: ++drains; break;
      case core::AdaptAction::Type::repair_chunk: ++repairs; break;
      case core::AdaptAction::Type::set_replication: ++raises; break;
      case core::AdaptAction::Type::trim_blob: ++trims; break;
      case core::AdaptAction::Type::delete_blob: ++deletes; break;
      case core::AdaptAction::Type::set_scan_interval: ++retunes; break;
    }
  }
  std::printf("  self-configuration : %zu providers added, %zu drained\n",
              adds, drains);
  std::printf("  self-optimization  : %zu replication changes, %zu chunk "
              "repairs/shrinks, %zu trims, %zu blob deletions\n",
              raises, repairs, trims, deletes);
  std::printf("  self-protection    : %zu blocks (attacker rejected %llu "
              "times, trust %.2f), %zu scan retunes\n",
              security.enforcement().action_log().size(),
              (unsigned long long)astats.rejected,
              security.trust().trust(ClientId{666}), retunes);

  std::size_t alive = 0;
  std::uint64_t used = 0, cap = 0;
  for (auto& p : dep.providers()) {
    if (!p->node().up()) continue;
    ++alive;
    used += p->used();
    cap += p->capacity();
  }
  std::printf("  final state        : %zu live providers, %s / %s used "
              "(%.0f%%)\n",
              alive, units::format_bytes(used).c_str(),
              units::format_bytes(cap).c_str(),
              cap ? 100.0 * used / cap : 0.0);

  // The hot dataset survived everything.
  auto check = run(sim, owner->read(*dataset, 0, 128 * units::MB));
  std::printf("  dataset integrity  : %s (%s readable)\n",
              check.ok() ? "OK" : check.error().to_string().c_str(),
              check.ok()
                  ? units::format_bytes(check.value().bytes).c_str()
                  : "0");
  const bool ok = check.ok() && astats.rejected > 0 && adds > 0;
  std::printf("\n%s\n", ok ? "autonomic cloud demo: all systems engaged"
                           : "demo incomplete");
  return ok ? 0 : 1;
}
