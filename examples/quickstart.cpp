// Quickstart: boot a BlobSeer deployment on the simulated cluster, store
// data, read it back, and look at version history.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <optional>

#include "blob/deployment.hpp"

using namespace bs;

namespace {

// Drives one coroutine to completion on the simulation.
template <class T>
T run(sim::Simulation& sim, sim::Task<T> task) {
  std::optional<T> out;
  sim.spawn([](sim::Task<T> t, std::optional<T>& slot) -> sim::Task<void> {
    slot.emplace(co_await std::move(t));
  }(std::move(task), out));
  while (!out.has_value() && sim.step()) {
  }
  return std::move(*out);
}

sim::Task<Result<int>> demo(blob::BlobClient& client) {
  // 1. Create a BLOB with 4 MB chunks, 2 replicas per chunk.
  auto blob = co_await client.create(4 * units::MB, /*replication=*/2);
  if (!blob.ok()) co_return blob.error();
  std::printf("created blob %llu\n",
              (unsigned long long)blob.value().value);

  // 2. Write 64 MB of (synthetic) data.
  auto w1 = co_await client.write(
      *blob, 0, blob::Payload::synthetic(64 * units::MB, /*content=*/1));
  if (!w1.ok()) co_return w1.error();
  std::printf("v%llu published: wrote %s in %s (%s)\n",
              (unsigned long long)w1.value().version,
              units::format_bytes(w1.value().size).c_str(),
              simtime::to_string(w1.value().duration).c_str(),
              units::format_rate(w1.value().throughput_bps()).c_str());

  // 3. Append another 32 MB -> version 2.
  auto w2 = co_await client.append(
      *blob, blob::Payload::synthetic(32 * units::MB, 2));
  if (!w2.ok()) co_return w2.error();
  std::printf("v%llu published: appended at offset %s\n",
              (unsigned long long)w2.value().version,
              units::format_bytes(w2.value().offset).c_str());

  // 4. Overwrite the first chunk -> version 3; v1/v2 stay readable.
  auto w3 = co_await client.write(
      *blob, 0, blob::Payload::synthetic(4 * units::MB, 3));
  if (!w3.ok()) co_return w3.error();

  // 5. Read the latest version.
  auto latest = co_await client.read(*blob, 0, 96 * units::MB);
  if (!latest.ok()) co_return latest.error();
  std::printf("read latest (v%llu): %s at %s\n",
              (unsigned long long)latest.value().version,
              units::format_bytes(latest.value().bytes).c_str(),
              units::format_rate(latest.value().throughput_bps()).c_str());

  // 6. Time-travel: read version 1.
  auto old = co_await client.read(*blob, 0, 64 * units::MB, /*version=*/1);
  if (!old.ok()) co_return old.error();
  std::printf("read v1 snapshot: %s (immutable history)\n",
              units::format_bytes(old.value().bytes).c_str());

  // 7. Version list.
  auto versions = co_await client.versions(*blob);
  if (!versions.ok()) co_return versions.error();
  for (const auto& v : versions.value()) {
    std::printf("  version %llu: size %s\n",
                (unsigned long long)v.version,
                units::format_bytes(v.size).c_str());
  }
  co_return 0;
}

}  // namespace

int main() {
  sim::Simulation sim;
  sim.install_log_clock();

  // 20 data providers + 4 metadata providers across a Grid'5000-like
  // 9-site topology.
  blob::DeploymentConfig cfg;
  cfg.data_providers = 20;
  cfg.metadata_providers = 4;
  blob::Deployment dep(sim, cfg);
  blob::BlobClient* client = dep.add_client();

  auto result = run(sim, demo(*client));
  if (!result.ok()) {
    std::printf("FAILED: %s\n", result.error().to_string().c_str());
    return 1;
  }
  std::printf("quickstart complete at sim time %s (%llu events)\n",
              simtime::to_string(sim.now()).c_str(),
              (unsigned long long)sim.events_processed());
  return 0;
}
