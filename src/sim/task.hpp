// Lazy coroutine task type for simulation actors. Tasks are single-owner,
// move-only, and resume their awaiter via symmetric transfer when they
// complete. The simulation is single-threaded, so no synchronization is
// needed — determinism comes from the event queue's total order.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "sim/frame_pool.hpp"

namespace bs::sim {

template <class T>
class Task;

namespace detail {

/// Routes coroutine-frame storage through the size-bucketed FramePool so
/// steady-state actor/RPC spawning never touches malloc. Inherited by every
/// promise type of the simulation substrate.
struct PooledFrame {
  static void* operator new(std::size_t n) {
    return FramePool::instance().allocate(n);
  }
  static void operator delete(void* p, std::size_t n) noexcept {
    FramePool::instance().deallocate(p, n);
  }
};

struct PromiseBase : PooledFrame {
  std::coroutine_handle<> continuation;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <class Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) const noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() const noexcept { return {}; }
  FinalAwaiter final_suspend() const noexcept { return {}; }
  // Simulation code reports failures through bs::Result; an escaped
  // exception is a programming error and must be loud.
  [[noreturn]] void unhandled_exception() const { std::terminate(); }
};

/// Fire-and-forget root coroutine used by spawn(); self-destroys on finish.
struct Detached {
  struct promise_type : PooledFrame {
    Detached get_return_object() const noexcept { return {}; }
    std::suspend_never initial_suspend() const noexcept { return {}; }
    std::suspend_never final_suspend() const noexcept { return {}; }
    void return_void() const noexcept {}
    [[noreturn]] void unhandled_exception() const { std::terminate(); }
  };
};

}  // namespace detail

template <class T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };

  Task(Task&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (h_) h_.destroy();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  ~Task() {
    if (h_) h_.destroy();
  }

  bool await_ready() const noexcept {
    assert(h_);
    return h_.done();
  }
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<> cont) noexcept {
    h_.promise().continuation = cont;
    return h_;
  }
  T await_resume() {
    assert(h_.promise().value.has_value());
    return std::move(*h_.promise().value);
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() const noexcept {}
  };

  Task(Task&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (h_) h_.destroy();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  ~Task() {
    if (h_) h_.destroy();
  }

  bool await_ready() const noexcept {
    assert(h_);
    return h_.done();
  }
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<> cont) noexcept {
    h_.promise().continuation = cont;
    return h_;
  }
  void await_resume() const noexcept {}

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

namespace detail {
inline Detached detach_impl(Task<void> t) { co_await std::move(t); }
}  // namespace detail

/// Starts `t` immediately (it runs until its first suspension) and detaches
/// it; the coroutine frame frees itself on completion. NOTE: an untracked
/// detached task that never completes leaks its frame chain — actors that
/// may still be suspended at teardown must go through Simulation::spawn,
/// which registers the root for destruction in ~Simulation.
inline void spawn(Task<void> t) { detail::detach_impl(std::move(t)); }

}  // namespace bs::sim
