// Coroutine synchronization primitives over the simulation event queue:
// one-shot Event, counting Semaphore, typed Mailbox (actor inboxes), and
// WaitGroup for fork/join of actor fleets. All wakeups go through the event
// queue (never inline resumption) so execution order stays deterministic and
// reentrancy-free.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <deque>
#include <optional>

#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace bs::sim {

/// One-shot broadcast event: set() wakes every current and future waiter.
class Event {
 public:
  explicit Event(Simulation& sim) : sim_(&sim) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  [[nodiscard]] bool is_set() const { return set_; }

  void set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) {
      sim_->schedule_resume(h);
    }
    waiters_.clear();
  }

  auto wait() {
    struct Awaiter {
      Event* ev;
      bool await_ready() const noexcept { return ev->set_; }
      void await_suspend(std::coroutine_handle<> h) const {
        ev->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Simulation* sim_;
  bool set_{false};
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore with FIFO handoff (a release is given directly to the
/// longest-waiting acquirer, so no barging).
class Semaphore {
 public:
  Semaphore(Simulation& sim, std::size_t initial)
      : sim_(&sim), count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  [[nodiscard]] std::size_t available() const { return count_; }
  [[nodiscard]] std::size_t waiting() const { return waiters_.size(); }

  auto acquire() {
    struct Awaiter {
      Semaphore* sem;
      bool await_ready() const noexcept {
        if (sem->count_ > 0 && sem->waiters_.empty()) {
          --sem->count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) const {
        sem->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      // The permit transfers directly to the woken waiter.
      sim_->schedule_resume(h);
    } else {
      ++count_;
    }
  }

 private:
  Simulation* sim_;
  std::size_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// RAII helper: `co_await sem.acquire();  SemGuard g(sem);`
class SemGuard {
 public:
  explicit SemGuard(Semaphore& sem) : sem_(&sem) {}
  SemGuard(const SemGuard&) = delete;
  SemGuard& operator=(const SemGuard&) = delete;
  // Guard against the teardown cascade: when ~Simulation destroys a frame
  // suspended with a guard live, the semaphore it points at was owned by a
  // service destroyed before the simulation.
  ~SemGuard() {
    if (!in_frame_teardown()) sem_->release();
  }

 private:
  Semaphore* sem_;
};

/// Unbounded typed FIFO queue with awaitable receive; items are handed
/// directly to waiting receivers in FIFO order.
template <class T>
class Mailbox {
 public:
  explicit Mailbox(Simulation& sim) : sim_(&sim) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }

  void push(T item) {
    if (!waiters_.empty()) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      w.slot->emplace(std::move(item));
      sim_->schedule_resume(w.handle);
    } else {
      items_.push_back(std::move(item));
    }
  }

  auto recv() {
    struct Awaiter {
      Mailbox* mb;
      std::optional<T> slot;
      bool await_ready() {
        if (!mb->items_.empty() && mb->waiters_.empty()) {
          slot.emplace(std::move(mb->items_.front()));
          mb->items_.pop_front();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        mb->waiters_.push_back(Waiter{h, &slot});
      }
      T await_resume() {
        assert(slot.has_value());
        return std::move(*slot);
      }
    };
    return Awaiter{this, std::nullopt};
  }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::optional<T>* slot;
  };

  Simulation* sim_;
  std::deque<T> items_;
  std::deque<Waiter> waiters_;
};

/// Fork/join helper: launch N tasks, `co_await wg.wait()` for all of them.
/// Reusable: the count may touch zero between launches (tasks that complete
/// synchronously do this) without disturbing a later wait().
class WaitGroup {
 public:
  explicit WaitGroup(Simulation& sim) : sim_(sim) {}
  WaitGroup(const WaitGroup&) = delete;
  WaitGroup& operator=(const WaitGroup&) = delete;

  void add(int n = 1) { count_ += n; }

  void done() {
    assert(count_ > 0);
    if (--count_ == 0) {
      for (auto h : waiters_) {
        sim_.schedule_resume(h);
      }
      waiters_.clear();
    }
  }

  /// Spawns `t`, tracking its completion in this group.
  void launch(Task<void> t) {
    add(1);
    sim_.spawn(wrap(std::move(t)));
  }

  auto wait() {
    struct Awaiter {
      WaitGroup* wg;
      bool await_ready() const noexcept { return wg->count_ == 0; }
      void await_suspend(std::coroutine_handle<> h) const {
        wg->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  [[nodiscard]] int active() const { return count_; }

 private:
  Task<void> wrap(Task<void> inner) {
    co_await std::move(inner);
    done();
  }

  Simulation& sim_;
  int count_{0};
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace bs::sim
