// Windowed parallel stepper for the sharded simulation — the only file in
// src/ that touches real threads. Everything here is invisible unless
// set_worker_threads() (BS_SIM_THREADS) enables it; serial mode never calls
// into this translation unit beyond the trivial shutdown no-op.
//
// Determinism argument (DESIGN.md "Sharded lanes & conservative lookahead"):
//  * A window [t_min, t_min + lookahead) opens only when (a) the control
//    lane has nothing inside it and (b) every site lane whose head falls
//    inside it holds exclusively parallel-safe events (untagged == 0).
//    Full-stack workloads schedule untagged events, so they serialize —
//    digests across BS_SIM_THREADS ∈ {off, 1, N} are equal by construction.
//  * Inside a window each worker owns exactly one lane. Own-lane schedules
//    that land inside the window are pushed with pseudo-sequence numbers
//    (seq-counter snapshot + a per-lane counter, par-tagged) so intra-lane
//    relative order matches what the serial stepper would produce; they are
//    fully drained before the window closes, so pseudo keys never escape.
//  * Schedules that leave the window (own-lane beyond w_end, or any
//    cross-lane hand-off, which conservative lookahead guarantees arrives
//    at or beyond w_end) buffer in a per-lane outbox. At the barrier the
//    coordinator sorts all outboxes by (send_time, source lane, emission
//    index) — a deterministic key independent of thread interleaving — and
//    stamps them with fresh global sequence numbers. Cross-site events
//    carrying the same arrival key must commute (the parallel-safe
//    contract), which is what makes this order digest-equivalent to the
//    serial interleave.
//
// bslint: allow-file(det-thread): opt-in parallel stepper; determinism is
// preserved by the window eligibility rules and barrier merge above.

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/simulation.hpp"

namespace bs::sim {

namespace {
/// Soft cap on hand-offs buffered during one window — the "bounded inbox"
/// backstop: blowing it means a workload is spraying cross-site messages
/// faster than the horizon can absorb, which deserves a loud failure in
/// debug builds rather than silent memory growth.
[[maybe_unused]] constexpr std::size_t kMaxWindowHandoffs = std::size_t{1}
                                                            << 20;
}  // namespace

struct Simulation::ParRuntime {
  /// Cross-window hand-off buffered at the barrier.
  struct Handoff {
    SimTime send_time;      ///< worker-local clock at the schedule call
    std::size_t src_lane;   ///< emitting lane (sort key with emit_idx)
    std::uint64_t emit_idx; ///< per-lane emission counter
    std::size_t target_lane;
    SimTime time;
    Callback cb;
  };

  /// One lane's share of a window; derives the TLS base so now() can read
  /// the worker-local clock without knowing this type.
  struct LaneRun : detail::LaneRunBase {
    Simulation* sim{nullptr};
    Lane* lane{nullptr};
    std::size_t lane_idx{0};
    SimTime w_end{0};
    std::uint64_t pseudo_next{0};  ///< seq snapshot + counter, par-tagged
    std::uint64_t emit_next{0};
    std::uint64_t count{0};  ///< events executed in this run
    std::vector<Handoff> outbox;
  };

  explicit ParRuntime(Simulation& s, unsigned n) : sim(&s) {
    threads.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
      threads.emplace_back([this] { worker_loop(); });
    }
  }

  ~ParRuntime() {
    {
      std::unique_lock<std::mutex> lock(m);
      shutdown = true;
    }
    cv_work.notify_all();
    for (auto& t : threads) t.join();
  }

  void worker_loop() {
    for (;;) {
      LaneRun* run = nullptr;
      {
        std::unique_lock<std::mutex> lock(m);
        cv_work.wait(lock, [this] { return shutdown || !work.empty(); });
        if (shutdown && work.empty()) return;
        run = work.back();
        work.pop_back();
      }
      detail::t_lane_run = run;
      drain(*run);
      detail::t_lane_run = nullptr;
      {
        std::unique_lock<std::mutex> lock(m);
        if (--outstanding == 0) cv_done.notify_one();
      }
    }
  }

  /// Executes every event of run's lane with key < w_end, advancing the
  /// worker-local clock. Same three-way near-tier merge as the serial
  /// step(), bounded by the window horizon.
  static void drain(LaneRun& run) {
    Lane& ln = *run.lane;
    for (;;) {
      if (near_empty(ln)) {
        if (far_live(ln) == 0) break;
        refill(ln);  // lane-local state; this worker owns it until the barrier
        continue;
      }
      SimTime pt;
      std::uint64_t pms;
      const int src = peek_near(ln, run.local_now, &pt, &pms);
      // Ring entries sit at local_now (inside the window by construction);
      // timed tiers stop at the horizon.
      if (src != kFromRing && pt >= run.w_end) break;
      SimTime t;
      std::uint64_t seq;
      Callback cb = pop_near(ln, src, run.local_now, &t, &seq);
      assert(par_of_seq(seq) && "untagged event inside a parallel window");
      assert(t >= run.local_now);
      run.local_now = t;
      ++run.count;
      cb();
    }
  }

  static bool par_of_seq(std::uint64_t seq) { return (seq & kParBit) != 0; }

  Simulation* sim;
  std::vector<std::thread> threads;
  std::mutex m;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  std::vector<LaneRun*> work;
  std::size_t outstanding{0};
  bool shutdown{false};
};

void Simulation::set_worker_threads(unsigned n) {
  if (n == workers_) return;
  shutdown_workers();
  workers_ = n;
  if (n != 0) par_ = new ParRuntime(*this, n);
}

void Simulation::shutdown_workers() noexcept {
  delete par_;
  par_ = nullptr;
  workers_ = 0;
}

// ------------------------------------------------- worker-context scheduling

void Simulation::par_schedule_current(SimTime t, Callback cb) {
  auto& run = *static_cast<ParRuntime::LaneRun*>(detail::t_lane_run);
  assert(t >= run.local_now && "cannot schedule events in the past");
  // Same tier rules as the serial push: ring at the current instant, near
  // heap inside the far boundary, far pool beyond it. Honoring far_bar here
  // preserves the "heap keys < far_bar <= far keys" invariant that makes
  // min(ring, heap root) the true lane head — in-window events beyond the
  // boundary are pulled back by the drain-loop refill in key order.
  const std::uint64_t seq = run.pseudo_next++ | kParBit;
  Lane& ln = *run.lane;
  if (t <= run.local_now) {
    ring_push(ln, run.local_now, seq, std::move(cb));
  } else if (t < ln.far_bar) {
    heap_push(ln, t, seq, std::move(cb));
  } else {
    far_push(ln, t, seq, std::move(cb));
  }
}

void Simulation::par_schedule_site(std::size_t site, SimTime t, Callback cb) {
  auto& run = *static_cast<ParRuntime::LaneRun*>(detail::t_lane_run);
  const std::size_t lane = site_lane(site);
  if (lane == run.lane_idx) {
    par_schedule_current(t, std::move(cb));
    return;
  }
  // Conservative lookahead: a cross-lane hand-off arrives at or beyond the
  // window end, so the target lane (possibly already drained past t_min)
  // has not run past the arrival time.
  assert(t >= run.w_end && "cross-site hand-off inside the lookahead horizon");
  run.outbox.push_back(ParRuntime::Handoff{run.local_now, run.lane_idx,
                                           run.emit_next++, lane, t,
                                           std::move(cb)});
}

void Simulation::par_schedule_resume(std::coroutine_handle<> h) {
  par_schedule_current(static_cast<ParRuntime::LaneRun*>(detail::t_lane_run)
                           ->local_now,
                       Callback(ResumeThunk{h}));
}

// ------------------------------------------------------------------ windows

bool Simulation::window_or_step() {
  const std::size_t bi = best_lane();
  if (bi == lanes_.size()) return false;
  const SimTime t_min = lanes_[bi].head_time;
  if (lookahead_ == simtime::kInfinite ||
      t_min >= simtime::kInfinite - lookahead_) {
    return step();
  }
  const SimTime w_end = t_min + lookahead_;
  // Window eligibility: nothing in the control lane before w_end, and every
  // site lane active inside the window holds only parallel-safe events.
  if (lanes_[0].head_time < w_end) return step();
  std::size_t active = 0;
  for (std::size_t i = 1; i < lanes_.size(); ++i) {
    if (lanes_[i].head_time >= w_end) continue;
    if (lanes_[i].untagged != 0) return step();
    ++active;
  }
  if (active < 2) return step();

  // Build one LaneRun per active lane; workers own their lane exclusively
  // until the barrier.
  std::vector<ParRuntime::LaneRun> runs(active);
  std::size_t r = 0;
  for (std::size_t i = 1; i < lanes_.size(); ++i) {
    if (lanes_[i].head_time >= w_end) continue;
    ParRuntime::LaneRun& run = runs[r++];
    run.local_now = now_;
    run.sim = this;
    run.lane = &lanes_[i];
    run.lane_idx = i;
    run.w_end = w_end;
    run.pseudo_next = seq_;  // pseudo keys order after all stamped events
  }
  {
    std::unique_lock<std::mutex> lock(par_->m);
    par_active_ = true;
    par_->outstanding = runs.size();
    for (auto& run : runs) par_->work.push_back(&run);
  }
  par_->cv_work.notify_all();
  {
    std::unique_lock<std::mutex> lock(par_->m);
    par_->cv_done.wait(lock, [this] { return par_->outstanding == 0; });
    par_active_ = false;
  }

  // Deterministic barrier merge: order hand-offs by (send_time, src_lane,
  // emit_idx) — independent of which thread ran which lane when — and
  // stamp them with fresh global sequence numbers.
  std::vector<ParRuntime::Handoff> merged;
  SimTime new_now = now_;
  for (auto& run : runs) {
    processed_ += run.count;
    if (run.local_now > new_now) new_now = run.local_now;
    for (auto& h : run.outbox) merged.push_back(std::move(h));
    // In-window schedules that outlive the window keep their pseudo keys;
    // advancing the global counter past every pseudo allocation keeps all
    // future real sequence numbers strictly larger, so masked comparisons
    // never tie.
    if (run.pseudo_next > seq_) seq_ = run.pseudo_next;
    assert(run.lane->ring_size == 0 && "ring must drain inside the window");
  }
  assert(merged.size() <= kMaxWindowHandoffs &&
         "window hand-off volume exceeds the bounded-inbox cap");
  std::sort(merged.begin(), merged.end(),
            [](const ParRuntime::Handoff& a, const ParRuntime::Handoff& b) {
              if (a.send_time != b.send_time) return a.send_time < b.send_time;
              if (a.src_lane != b.src_lane) return a.src_lane < b.src_lane;
              return a.emit_idx < b.emit_idx;
            });
  now_ = new_now;  // every executed event was < w_end; all pending are >= it
  for (auto& h : merged) {
    if (h.target_lane != h.src_lane) ++cross_site_handoffs_;
    push_event(h.target_lane, h.time, next_seq(true), std::move(h.cb));
  }
  for (auto& run : runs) recompute_head(run.lane_idx, now_);
  ++windows_run_;
  return true;
}

}  // namespace bs::sim
