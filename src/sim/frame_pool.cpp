#include "sim/frame_pool.hpp"

#include <cstdlib>
#include <cstring>
#include <new>

namespace bs::sim {

FramePool::FramePool() {
  if (const char* env = std::getenv("BS_FRAME_POOL")) {
    enabled_ = !(std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0);
  }
}

FramePool& FramePool::instance() {
  thread_local FramePool pool;
  return pool;
}

void* FramePool::allocate(std::size_t n) {
  ++stats_.allocs;
  if (n > kMaxChunk) {
    ++stats_.oversize;
    ++stats_.heap_allocs;
    return ::operator new(n);
  }
  const std::size_t b = bucket_of(n);
  if (enabled_ && free_[b] != nullptr) {
    FreeNode* node = free_[b];
    free_[b] = node->next;
    --cached_[b];
    ++stats_.pool_hits;
    return node;
  }
  ++stats_.heap_allocs;
  // Allocate the full size class (not n) so the chunk is recyclable for any
  // request landing in the same bucket regardless of pool mode at the time.
  return ::operator new(chunk_size(b));
}

void FramePool::deallocate(void* p, std::size_t n) noexcept {
  ++stats_.frees;
  if (n > kMaxChunk) {
    ::operator delete(p);
    return;
  }
  const std::size_t b = bucket_of(n);
  if (enabled_ && cached_[b] < bucket_cap_) {
    auto* node = static_cast<FreeNode*>(p);
    node->next = free_[b];
    free_[b] = node;
    ++cached_[b];
    return;
  }
  ::operator delete(p, chunk_size(b));
}

void FramePool::trim() noexcept {
  for (std::size_t b = 0; b < kBuckets; ++b) {
    while (free_[b] != nullptr) {
      FreeNode* node = free_[b];
      free_[b] = node->next;
      ::operator delete(node, chunk_size(b));
    }
    cached_[b] = 0;
  }
}

std::size_t FramePool::cached_chunks() const {
  std::size_t total = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) total += cached_[b];
  return total;
}

}  // namespace bs::sim
