// Size-bucketed free-list allocator for coroutine frames. Every actor spawn
// and RPC op allocates a handful of frames; at experiment scale that is
// millions of malloc/free round trips on the hot path. The pool recycles
// frames through per-size-class free lists so steady-state simulation runs
// allocation-free.
//
// Determinism: recycling only changes *which addresses* frames land on, and
// no address is ever observable in simulation output (bslint's determinism
// rules keep it that way), so pooled and unpooled runs are bit-identical —
// tests/sim/test_frame_pool.cpp replays chaos seeds in both modes to prove
// it. The pool is deliberately simple: sizes round up to 64-byte classes,
// frames larger than the largest class (or beyond a bucket's configured
// cache cap) fall back to the heap, and the free lists live in thread-local
// storage because the simulation substrate is single-threaded by design.
#pragma once

#include <cstddef>
#include <cstdint>

namespace bs::sim {

class FramePool {
 public:
  /// Size-class granularity and the largest pooled frame. Frames above
  /// kMaxChunk bytes always go straight to the heap (exhaustion fallback
  /// path; correctness never depends on pooling).
  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kMaxChunk = 4096;
  static constexpr std::size_t kBuckets = kMaxChunk / kGranularity;

  /// The pool serving the current thread (the simulation substrate is
  /// single-threaded; each test thread gets its own pool). First use reads
  /// BS_FRAME_POOL — "off"/"0" disables recycling process-wide, the
  /// ablation mode the determinism tests compare against.
  static FramePool& instance();

  void* allocate(std::size_t n);
  void deallocate(void* p, std::size_t n) noexcept;

  struct Stats {
    std::uint64_t allocs{0};       ///< every frame allocation
    std::uint64_t frees{0};        ///< every frame deallocation
    std::uint64_t pool_hits{0};    ///< allocations served from a free list
    std::uint64_t heap_allocs{0};  ///< allocations that reached operator new
    std::uint64_t oversize{0};     ///< frames larger than kMaxChunk
    [[nodiscard]] std::uint64_t live() const { return allocs - frees; }
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

  [[nodiscard]] bool enabled() const { return enabled_; }
  /// Toggles recycling (tests/ablation). Chunks already cached stay valid;
  /// disabling only routes future allocations to the heap.
  void set_enabled(bool on) { enabled_ = on; }

  /// Max chunks cached per size class; frees beyond the cap go to the heap
  /// (tests use a tiny cap to drive the exhaustion/fallback path).
  void set_bucket_cap(std::size_t cap) { bucket_cap_ = cap; }
  [[nodiscard]] std::size_t bucket_cap() const { return bucket_cap_; }

  /// Releases every cached chunk back to the heap.
  void trim() noexcept;

  [[nodiscard]] std::size_t cached_chunks() const;

  ~FramePool() { trim(); }
  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

 private:
  FramePool();

  /// Intrusive free list: a cached chunk's first word links to the next.
  struct FreeNode {
    FreeNode* next;
  };

  static constexpr std::size_t bucket_of(std::size_t n) {
    return (n + kGranularity - 1) / kGranularity - 1;
  }
  static constexpr std::size_t chunk_size(std::size_t bucket) {
    return (bucket + 1) * kGranularity;
  }

  FreeNode* free_[kBuckets] = {};
  std::size_t cached_[kBuckets] = {};
  std::size_t bucket_cap_{1u << 16};
  bool enabled_{true};
  Stats stats_{};
};

}  // namespace bs::sim
