#include "sim/simulation.hpp"

#include <cassert>

#include "common/log.hpp"
#include "obs/trace.hpp"

namespace bs::sim {

// ---------------------------------------------------------------- event queue
//
// Two lanes, one total order. Every event gets a sequence number from the
// shared counter at schedule time; the heap orders by (time, seq) and the
// ring is FIFO (so seq-ordered) at time == now_. step() merges the lanes by
// comparing the heap root against the ring head under the same (time, seq)
// key, which reproduces exactly the pop order of a single binary heap.

void Simulation::schedule_at(SimTime t, Callback cb) {
  assert(t >= now_ && "cannot schedule events in the past");
  if (t <= now_) {
    ring_push(seq_++, std::move(cb));
    return;
  }
  heap_push(t, seq_++, std::move(cb));
}

void Simulation::heap_push(SimTime t, std::uint64_t seq, Callback cb) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(cb);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(cb));
  }
  heap_.push_back(HeapEntry{t, seq, slot});
  sift_up(heap_.size() - 1);
}

Simulation::Callback Simulation::heap_pop(SimTime* t) {
  const HeapEntry top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  *t = top.time;
  Callback cb = std::move(slots_[top.slot]);
  free_slots_.push_back(top.slot);
  return cb;
}

void Simulation::sift_up(std::size_t i) {
  const HeapEntry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Simulation::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const HeapEntry e = heap_[i];
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void Simulation::ring_push(std::uint64_t seq, Callback cb) {
  if (ring_size_ == ring_.size()) ring_grow();
  const std::size_t tail = (ring_head_ + ring_size_) & (ring_.size() - 1);
  ring_[tail] = NowEvent{seq, std::move(cb)};
  ++ring_size_;
}

Simulation::Callback Simulation::ring_pop() {
  Callback cb = std::move(ring_[ring_head_].cb);
  ring_head_ = (ring_head_ + 1) & (ring_.size() - 1);
  --ring_size_;
  return cb;
}

void Simulation::ring_grow() {
  const std::size_t cap = ring_.empty() ? 64 : ring_.size() * 2;
  std::vector<NowEvent> grown(cap);
  for (std::size_t i = 0; i < ring_size_; ++i) {
    grown[i] = std::move(ring_[(ring_head_ + i) & (ring_.size() - 1)]);
  }
  ring_ = std::move(grown);
  ring_head_ = 0;
}

bool Simulation::step() {
  // Ring events all carry time == now_; run one unless the heap root is an
  // earlier (time, seq) key — which, since heap times are >= now_ for live
  // events, means an equal-time entry scheduled before the ring head.
  if (ring_size_ != 0) {
    const bool heap_first =
        !heap_.empty() && heap_.front().time <= now_ &&
        heap_.front().seq < ring_front_seq();
    if (!heap_first) {
      Callback cb = ring_pop();
      ++processed_;
      cb();
      return true;
    }
  }
  if (heap_.empty()) return false;
  SimTime t;
  Callback cb = heap_pop(&t);
  assert(t >= now_);
  now_ = t;
  ++processed_;
  cb();
  return true;
}

void Simulation::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulation::run_until(SimTime t) {
  stopped_ = false;
  while (!stopped_) {
    // Next event's time: the ring always holds events at now_.
    if (ring_size_ != 0) {
      if (now_ > t) break;
    } else if (heap_.empty() || heap_.front().time > t) {
      break;
    }
    step();
  }
  if (!stopped_ && now_ < t) now_ = t;
}

// ------------------------------------------------------------------- teardown

void Simulation::clear_queue() noexcept {
  heap_.clear();
  slots_.clear();
  free_slots_.clear();
  while (ring_size_ != 0) ring_pop();
}

Simulation::~Simulation() {
  // Queued events hold resume handles into frames the roots own; drop them
  // first so nothing dangles, then destroy the still-suspended actor roots
  // (each cascades through the Task chain it owns). Frame-local RAII
  // destructors are silenced for the cascade: the services they would
  // notify were constructed after this simulation and are already gone.
  clear_queue();
  if (roots_ != nullptr) {
    FrameTeardownScope teardown;
    while (roots_ != nullptr) {
      std::coroutine_handle<RootTask::promise_type>::from_promise(*roots_)
          .destroy();
    }
    // Destroying a frame can run code that schedules; drop any stragglers.
    clear_queue();
  }
}

// ---------------------------------------------------------------- integration

void Simulation::install_log_clock() {
  Logger::instance().set_time_source([this] { return now(); });
}

void Simulation::attach_trace(obs::TraceSink& sink) {
  sink.set_clock([this] { return now(); });
  obs::set_sink(&sink);
}

void Simulation::detach_trace() { obs::set_sink(nullptr); }

}  // namespace bs::sim
