#include "sim/simulation.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "common/log.hpp"
#include "obs/trace.hpp"

namespace bs::sim {

// ---------------------------------------------------------------- event queue
//
// Lanes share one total order. Every event gets a sequence number from the
// shared counter at schedule time; each lane's heap orders by (time, seq)
// and its ring is FIFO (so seq-ordered) at time == now_. step() first picks
// the lane whose cached head is the globally smallest (time, seq) key, then
// merges that lane's heap root against its ring head under the same key —
// which reproduces exactly the pop order of one single heap over all
// events, independent of how they were sharded.
//
// Clock invariant: now_ only advances when the globally minimal key sits in
// a heap strictly above now_ — at that moment every ring in every lane is
// empty (a non-empty ring pins its lane's cached head at now_), so ring
// entries never survive a clock advance and the ring's implicit time stays
// valid.

namespace {
constexpr bool par_of(std::uint64_t seq) { return (seq & (1ull << 63)) != 0; }
}  // namespace

Simulation::Simulation() : lanes_(1), heads_(1) {}

void Simulation::schedule_at(SimTime t, Callback cb) {
  if (in_worker()) {
    par_schedule_current(t, std::move(cb));
    return;
  }
  push_event(exec_lane_, t, next_seq(exec_par_), std::move(cb));
}

void Simulation::schedule_resume(std::coroutine_handle<> h) {
  if (in_worker()) {
    par_schedule_resume(h);
    return;
  }
  push_event(exec_lane_, now_, next_seq(exec_par_), Callback(ResumeThunk{h}));
}

void Simulation::configure_sites(std::size_t sites, SimDuration lookahead) {
  if (lanes_.size() != 1) {
    // A second cluster on the same simulation must agree on the shard
    // count; the horizon tightens to the most conservative of the two.
    assert(lanes_.size() == sites + 1 && "conflicting site-lane configuration");
    if (lookahead < lookahead_) lookahead_ = lookahead;
    return;
  }
  lanes_.resize(sites + 1);
  heads_.resize(sites + 1);
  lookahead_ = lookahead;
  if (lane_load_hint_ >= kFarEngage) {
    for (Lane& ln : lanes_) engage_far(ln);
  }
}

void Simulation::hint_lane_load(std::size_t expected_pending_per_lane) {
  lane_load_hint_ = expected_pending_per_lane;
  if (lanes_.size() > 1 && lane_load_hint_ >= kFarEngage) {
    for (Lane& ln : lanes_) engage_far(ln);
  }
}

void Simulation::schedule_on_site(std::size_t site, SimTime t, Callback cb) {
  if (in_worker()) {
    par_schedule_site(site, t, std::move(cb));
    return;
  }
  const std::size_t lane = site_lane(site);
  if (lane != exec_lane_) {
    ++cross_site_handoffs_;
    // A parallel-safe event may only reach another site at or beyond the
    // lookahead horizon — otherwise a window could have executed the
    // target lane past the hand-off's arrival time.
    assert(!exec_par_ || lookahead_ == simtime::kInfinite ||
           t >= now() + lookahead_);
  }
  push_event(lane, t, next_seq(exec_par_), std::move(cb));
}

void Simulation::schedule_par(std::size_t site, SimTime t, Callback cb) {
  if (in_worker()) {
    par_schedule_site(site, t, std::move(cb));
    return;
  }
  const std::size_t lane = site_lane(site);
  if (lane != exec_lane_) {
    ++cross_site_handoffs_;
    assert(!exec_par_ || lookahead_ == simtime::kInfinite ||
           t >= now() + lookahead_);
  }
  push_event(lane, t, next_seq(true), std::move(cb));
}

void Simulation::push_event(std::size_t lane, SimTime t, std::uint64_t seq,
                            Callback cb) {
  assert(t >= now_ && "cannot schedule events in the past");
  Lane& ln = lanes_[lane];
  if (!par_of(seq)) ++ln.untagged;
  if (t <= now_) {
    ring_push(ln, now_, seq, std::move(cb));
    sync_head(lane);
    return;
  }
  // Sharded mode stages events beyond the near horizon in the far pool;
  // the single-lane oracle keeps the pure one-heap kernel. A parked ladder
  // (far_bar == kInfinite) routes everything to the heap through the same
  // comparison.
  if (lanes_.size() > 1 && t >= ln.far_bar) {
    far_push(ln, t, seq, std::move(cb));
    sync_head(lane);
    return;
  }
  heap_push(ln, t, seq, std::move(cb));
  sync_head(lane);
}

void Simulation::engage_far(Lane& ln) {
  if (ln.far_bar != simtime::kInfinite) return;
  assert(far_live(ln) == 0 && "parked ladder with a non-empty far pool");
  SimTime mx = 0;
  for (const HeapEntry& e : ln.heap) mx = std::max(mx, e.time);
  if (ln.stage_head != ln.stage.size()) {
    mx = std::max(mx, ln.stage.back().time);
  }
  ln.far_bar = mx < simtime::kInfinite - 1 ? mx + 1 : simtime::kInfinite;
}

void Simulation::far_push(Lane& ln, SimTime t, std::uint64_t seq,
                          Callback cb) {
  ln.far_keys.push_back(FarKey{t, seq});
  ln.far_cbs.push_back(std::move(cb));
  // Cheap head maintenance: a no-op while the near tiers are occupied
  // (their keys are < far_bar <= t), and the true far minimum once the
  // lane is otherwise empty.
  maybe_raise_head(ln, t, seq);
}

void Simulation::refill(Lane& ln) {
  assert(ln.stage_head == ln.stage.size() && "refill under a live stage");
  assert(far_live(ln) != 0 && "refill on an empty far pool");
  // Amortized compaction, at rung boundaries only: the consumed stage held
  // slot references into the pool, so the arrays may move exactly now, when
  // no rung is live. Rewriting both arrays only once half the pool is
  // tombstones keeps the per-event move count O(1).
  if (ln.far_dead * 2 > ln.far_keys.size()) {
    std::size_t w = 0;
    for (std::size_t r = 0; r < ln.far_keys.size(); ++r) {
      if (ln.far_keys[r].seq == kNoSeq) continue;
      if (w != r) {
        ln.far_keys[w] = ln.far_keys[r];
        ln.far_cbs[w] = std::move(ln.far_cbs[r]);
      }
      ++w;
    }
    ln.far_keys.resize(w);
    ln.far_cbs.resize(w);
    ln.far_dead = 0;
  }
  assert(ln.far_keys.size() <= 0xffffffffu &&
         "far pool exceeds 32-bit indexing");
  // Build the next ladder rung from 24-byte (time, seq, index) keys — not
  // the 72-byte entries. Gather every live key once, then cut an exactly
  // half-pool-sized rung with nth_element: the first excluded key is both
  // the new bar and the exact minimum of the survivors, so there is no span
  // heuristic to mistune and no second scan. Rung size scaling with the
  // pool keeps the total scan work per drained event O(1): a pool of P is
  // rescanned ~log P times in geometrically shrinking halves.
  ln.stage_keys.clear();
  for (std::size_t i = 0; i < ln.far_keys.size(); ++i) {
    const FarKey& k = ln.far_keys[i];
    if (k.seq != kNoSeq) {
      ln.stage_keys.push_back(
          HeapEntry{k.time, k.seq, static_cast<std::uint32_t>(i)});
    }
  }
  const std::size_t live = ln.stage_keys.size();
  const std::size_t target = std::max<std::size_t>(4096, live / 2);
  SimTime bar = 0;  // sentinel: stage-all, patched to max+1 below
  if (live > target) {
    const auto mid =
        ln.stage_keys.begin() + static_cast<std::ptrdiff_t>(target);
    std::nth_element(
        ln.stage_keys.begin(), mid, ln.stage_keys.end(),
        [](const HeapEntry& a, const HeapEntry& b) { return earlier(a, b); });
    bar = mid->time;
    ln.stage_keys.resize(target);
  }
  std::sort(
      ln.stage_keys.begin(), ln.stage_keys.end(),
      [](const HeapEntry& a, const HeapEntry& b) { return earlier(a, b); });
  // Reuse the stage storage: move-assigning over a consumed husk destroys
  // it on the same cache line the new entry is about to occupy, so the
  // teardown of the previous rung rides the gather's own write misses
  // instead of a separate clear() pass over cold memory.
  ln.stage.resize(ln.stage_keys.size());
  ln.stage_head = 0;
  for (std::size_t i = 0; i < ln.stage_keys.size(); ++i) {
    const HeapEntry& k = ln.stage_keys[i];
    ln.stage[i] = FarEntry{k.time, k.seq, std::move(ln.far_cbs[k.slot])};
    ln.far_keys[k.slot] = FarKey{simtime::kInfinite, kNoSeq};
  }
  ln.far_dead += ln.stage.size();
  if (bar == 0) {
    // The whole pool was staged; any bar above the rung maximum is correct,
    // and max+1 is the lowest such bar, which steers near-future pushes to
    // the cache-resident heap while the lane's far traffic is this light.
    const SimTime tmax = ln.stage_keys.back().time;
    bar = tmax < simtime::kInfinite - 1 ? tmax + 1 : simtime::kInfinite;
  }
  ln.far_bar = bar;
}

void Simulation::heap_push(Lane& ln, SimTime t, std::uint64_t seq,
                           Callback cb) {
  std::uint32_t slot;
  if (!ln.free_slots.empty()) {
    slot = ln.free_slots.back();
    ln.free_slots.pop_back();
    ln.slots[slot] = std::move(cb);
  } else {
    slot = static_cast<std::uint32_t>(ln.slots.size());
    ln.slots.push_back(std::move(cb));
  }
  ln.heap.push_back(HeapEntry{t, seq, slot});
  sift_up(ln, ln.heap.size() - 1);
  maybe_raise_head(ln, t, seq);
}

Simulation::Callback Simulation::heap_pop(Lane& ln, SimTime* t,
                                          std::uint64_t* seq) {
  const HeapEntry top = ln.heap.front();
  ln.heap.front() = ln.heap.back();
  ln.heap.pop_back();
  if (!ln.heap.empty()) sift_down(ln, 0);
  *t = top.time;
  *seq = top.seq;
  if (!par_of(top.seq)) --ln.untagged;
  Callback cb = std::move(ln.slots[top.slot]);
  ln.free_slots.push_back(top.slot);
  return cb;
}

void Simulation::sift_up(Lane& ln, std::size_t i) {
  const HeapEntry e = ln.heap[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(e, ln.heap[parent])) break;
    ln.heap[i] = ln.heap[parent];
    i = parent;
  }
  ln.heap[i] = e;
}

void Simulation::sift_down(Lane& ln, std::size_t i) {
  const std::size_t n = ln.heap.size();
  const HeapEntry e = ln.heap[i];
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(ln.heap[c], ln.heap[best])) best = c;
    }
    if (!earlier(ln.heap[best], e)) break;
    ln.heap[i] = ln.heap[best];
    i = best;
  }
  ln.heap[i] = e;
}

void Simulation::ring_push(Lane& ln, SimTime at, std::uint64_t seq,
                           Callback cb) {
  if (ln.ring_size == ln.ring.size()) ring_grow(ln);
  const std::size_t tail = (ln.ring_head + ln.ring_size) & (ln.ring.size() - 1);
  ln.ring[tail] = NowEvent{seq, std::move(cb)};
  ++ln.ring_size;
  maybe_raise_head(ln, at, seq);
}

Simulation::Callback Simulation::ring_pop(Lane& ln, std::uint64_t* seq) {
  NowEvent& e = ln.ring[ln.ring_head];
  *seq = e.seq;
  if (!par_of(e.seq)) --ln.untagged;
  Callback cb = std::move(e.cb);
  ln.ring_head = (ln.ring_head + 1) & (ln.ring.size() - 1);
  --ln.ring_size;
  return cb;
}

void Simulation::ring_grow(Lane& ln) {
  const std::size_t cap = ln.ring.empty() ? 64 : ln.ring.size() * 2;
  std::vector<NowEvent> grown(cap);
  for (std::size_t i = 0; i < ln.ring_size; ++i) {
    grown[i] = std::move(ln.ring[(ln.ring_head + i) & (ln.ring.size() - 1)]);
  }
  ln.ring = std::move(grown);
  ln.ring_head = 0;
}

int Simulation::peek_near(const Lane& ln, SimTime at, SimTime* t,
                          std::uint64_t* masked_seq) {
  int src = -1;
  SimTime bt = simtime::kInfinite;
  std::uint64_t bs = kNoSeq;
  if (ln.ring_size != 0) {
    bt = at;
    bs = ring_front_seq(ln);
    src = kFromRing;
  }
  if (!ln.heap.empty()) {
    const HeapEntry& root = ln.heap.front();
    const std::uint64_t m = root.seq & kSeqMask;
    if (root.time < bt || (root.time == bt && m < bs)) {
      bt = root.time;
      bs = m;
      src = kFromHeap;
    }
  }
  if (ln.stage_head != ln.stage.size()) {
    const FarEntry& front = ln.stage[ln.stage_head];
    const std::uint64_t m = front.seq & kSeqMask;
    if (front.time < bt || (front.time == bt && m < bs)) {
      bt = front.time;
      bs = m;
      src = kFromStage;
    }
  }
  *t = bt;
  *masked_seq = bs;
  return src;
}

Simulation::Callback Simulation::pop_near(Lane& ln, int src, SimTime at,
                                          SimTime* t, std::uint64_t* seq) {
  if (src == kFromRing) {
    *t = at;
    return ring_pop(ln, seq);
  }
  if (src == kFromHeap) return heap_pop(ln, t, seq);
  FarEntry& e = ln.stage[ln.stage_head];
  ++ln.stage_head;
  *t = e.time;
  *seq = e.seq;
  if (!par_of(e.seq)) --ln.untagged;
  return std::move(e.cb);
}

void Simulation::recompute_head(std::size_t lane, SimTime at) {
  Lane& ln = lanes_[lane];
  // The cached head is min over the near tiers; that is only the true lane
  // minimum while one of them is occupied, so an empty near side pulls the
  // next far rung in first.
  if (near_empty(ln) && far_live(ln) != 0) refill(ln);
  SimTime t;
  std::uint64_t s;
  if (peek_near(ln, at, &t, &s) < 0) {
    t = simtime::kInfinite;
    s = kNoSeq;
  }
  ln.head_time = t;
  ln.head_seq = s;
  heads_[lane] = HeadKey{t, s};
}

std::size_t Simulation::best_lane() const {
  std::size_t best = lanes_.size();
  SimTime bt = simtime::kInfinite;
  std::uint64_t bs = kNoSeq;
  for (std::size_t i = 0; i < heads_.size(); ++i) {
    if (heads_[i].time < bt ||
        (heads_[i].time == bt && heads_[i].seq < bs)) {
      bt = heads_[i].time;
      bs = heads_[i].seq;
      best = i;
    }
  }
  return best;
}

bool Simulation::step() {
  // Single-lane deployments keep the PR-5 hot path: no head scan at all.
  std::size_t bi = 0;
  if (lanes_.size() > 1) {
    bi = best_lane();
    if (bi == lanes_.size()) return false;
  }
  Lane& ln = lanes_[bi];
  // A lane whose cached head points into the far pool (near tiers empty)
  // must be refilled before the merge below can see the event.
  if (near_empty(ln)) {
    if (far_live(ln) == 0) return false;
    refill(ln);
  }
  // Three-way merge on (time, masked seq): ring entries all carry time ==
  // now_, stage and heap carry their own keys. peek/pop are split so the
  // windowed drain can bound the same selection by its horizon.
  SimTime pt;
  std::uint64_t pms;
  const int src = peek_near(ln, now_, &pt, &pms);
  assert(src >= 0);
  const std::size_t prev_lane = exec_lane_;
  const bool prev_par = exec_par_;
  if (src == kFromStage) {
    // Stage events run in place: only refill() mutates the stage, and it
    // cannot run under a live rung, so the entry is stable for the whole
    // callback — no move-out, no per-event husk teardown (the rung is
    // destroyed wholesale at the next refill). The head cache refresh
    // happens after the callback; nothing reads it mid-event in serial
    // mode, and pushes from the callback only lower it monotonically.
    FarEntry& e = ln.stage[ln.stage_head];
    ++ln.stage_head;
    if (!par_of(e.seq)) --ln.untagged;
    assert(e.time >= now_);
    now_ = e.time;
    exec_lane_ = bi;
    exec_par_ = par_of(e.seq);
    ++processed_;
    e.cb();
  } else {
    SimTime t;
    std::uint64_t seq;
    Callback cb = pop_near(ln, src, now_, &t, &seq);
    assert(t >= now_);
    now_ = t;
    exec_lane_ = bi;
    exec_par_ = par_of(seq);
    ++processed_;
    cb();
  }
  recompute_head(bi, now_);
  exec_lane_ = prev_lane;
  exec_par_ = prev_par;
  return true;
}

void Simulation::run() {
  stopped_ = false;
  if (windowed()) {
    while (!stopped_ && window_or_step()) {
    }
    return;
  }
  while (!stopped_ && step()) {
  }
}

void Simulation::run_until(SimTime t) {
  stopped_ = false;
  if (lanes_.size() == 1) {
    // Single-lane fast path, identical to the PR-5 loop.
    Lane& ln = lanes_[0];
    while (!stopped_) {
      if (ln.ring_size != 0) {
        if (now_ > t) break;
      } else if (ln.heap.empty() || ln.heap.front().time > t) {
        break;
      }
      step();
    }
  } else {
    while (!stopped_) {
      const std::size_t bi = best_lane();
      // A non-empty ring pins its lane's cached head at the now_ it was
      // pushed at, so "next event time" is just the winning cached head.
      if (bi == lanes_.size() || lanes_[bi].head_time > t) break;
      step();
    }
  }
  if (!stopped_ && now_ < t) now_ = t;
}

std::size_t Simulation::pending() const {
  std::size_t n = 0;
  for (const Lane& ln : lanes_) {
    n += ln.heap.size() + ln.ring_size + far_live(ln) +
         (ln.stage.size() - ln.stage_head);
  }
  return n;
}

// ------------------------------------------------------------------- teardown

void Simulation::clear_queue() noexcept {
  for (Lane& ln : lanes_) {
    ln.heap.clear();
    ln.slots.clear();
    ln.free_slots.clear();
    ln.far_keys.clear();
    ln.far_cbs.clear();
    ln.far_dead = 0;
    ln.stage.clear();
    ln.stage_keys.clear();
    ln.stage_head = 0;
    while (ln.ring_size != 0) {
      std::uint64_t seq;
      ring_pop(ln, &seq);
    }
    ln.far_bar = simtime::kInfinite;  // parked
    ln.head_time = simtime::kInfinite;
    ln.head_seq = kNoSeq;
    ln.untagged = 0;
  }
  for (HeadKey& h : heads_) h = HeadKey{};
}

Simulation::~Simulation() {
  // Stop the worker pool before anything else: no thread may touch lanes
  // while they are being torn down.
  shutdown_workers();
  // Queued events hold resume handles into frames the roots own; drop them
  // first so nothing dangles, then destroy the still-suspended actor roots
  // (each cascades through the Task chain it owns). Frame-local RAII
  // destructors are silenced for the cascade: the services they would
  // notify were constructed after this simulation and are already gone.
  clear_queue();
  if (roots_ != nullptr) {
    FrameTeardownScope teardown;
    while (roots_ != nullptr) {
      std::coroutine_handle<RootTask::promise_type>::from_promise(*roots_)
          .destroy();
    }
    // Destroying a frame can run code that schedules; drop any stragglers.
    clear_queue();
  }
}

// ---------------------------------------------------------------- integration

void Simulation::install_log_clock() {
  Logger::instance().set_time_source([this] { return now(); });
}

void Simulation::attach_trace(obs::TraceSink& sink) {
  sink.set_clock([this] { return now(); });
  obs::set_sink(&sink);
}

void Simulation::detach_trace() { obs::set_sink(nullptr); }

}  // namespace bs::sim
