#include "sim/simulation.hpp"

#include <algorithm>
#include <cassert>

#include "common/log.hpp"
#include "obs/trace.hpp"

namespace bs::sim {

void Simulation::schedule_at(SimTime t, Callback cb) {
  assert(t >= now_ && "cannot schedule events in the past");
  heap_.push_back(Event{t, seq_++, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

bool Simulation::step() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  assert(ev.time >= now_);
  now_ = ev.time;
  ++processed_;
  ev.cb();
  return true;
}

void Simulation::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulation::run_until(SimTime t) {
  stopped_ = false;
  while (!stopped_ && !heap_.empty() && heap_.front().time <= t) {
    step();
  }
  if (!stopped_ && now_ < t) now_ = t;
}

void Simulation::install_log_clock() {
  Logger::instance().set_time_source([this] { return now(); });
}

void Simulation::attach_trace(obs::TraceSink& sink) {
  sink.set_clock([this] { return now(); });
  obs::set_sink(&sink);
}

void Simulation::detach_trace() { obs::set_sink(nullptr); }

}  // namespace bs::sim
