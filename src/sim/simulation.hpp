// Deterministic discrete-event simulation kernel. A single event queue
// totally ordered by (time, insertion sequence) drives callbacks; coroutine
// actors suspend on awaitables that schedule their resumption.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"
#include "sim/task.hpp"

namespace bs::sim {

class Simulation {
 public:
  using Callback = std::function<void()>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  void schedule_at(SimTime t, Callback cb);
  void schedule_in(SimDuration dt, Callback cb) {
    schedule_at(now_ + dt, std::move(cb));
  }

  /// Runs events until the queue is empty or stop() is called.
  void run();

  /// Runs all events with time <= t, then advances the clock to t.
  void run_until(SimTime t);

  /// Runs one event; returns false if the queue was empty.
  bool step();

  void stop() { stopped_ = true; }
  [[nodiscard]] bool stopped() const { return stopped_; }

  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// Starts a coroutine actor (runs inline until its first suspension).
  void spawn(Task<void> t) { sim::spawn(std::move(t)); }

  /// Awaitable: suspend the current coroutine for `dt` of simulated time.
  auto delay(SimDuration dt) {
    struct Awaiter {
      Simulation* s;
      SimDuration dt;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        s->schedule_in(dt, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, dt};
  }

  /// Awaitable: suspend until the given absolute simulated time (resumes
  /// immediately if already past).
  auto delay_until(SimTime t) { return delay(t > now_ ? t - now_ : 0); }

  /// Installs this simulation's clock as the logger time source.
  void install_log_clock();

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::vector<Event> heap_;
  SimTime now_{0};
  std::uint64_t seq_{0};
  std::uint64_t processed_{0};
  bool stopped_{false};
};

}  // namespace bs::sim
