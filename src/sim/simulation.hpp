// Deterministic discrete-event simulation kernel, sharded into per-site
// event lanes. Every event is totally ordered by a global (time, insertion
// sequence) key; coroutine actors suspend on awaitables that schedule their
// resumption.
//
// Hot-path structure (see DESIGN.md "Event queue & memory model" and
// "Sharded lanes & conservative lookahead"):
//  * The queue is a set of LANES — lane 0 is the control/default lane and
//    lanes 1..S shard events per topology site. Each lane is the PR-5 pair:
//    a 4-ary implicit heap of 24-byte (time, seq, slot) keys whose move-only
//    callbacks sit in a slot pool on the side, plus a growable FIFO ring for
//    events at the *current* time (coroutine wakeups through
//    schedule_resume(), zero-delay reschedules) that bypasses the heap.
//  * All lanes share the global sequence counter, and step() executes the
//    lane whose cached head carries the globally smallest (time, seq) key —
//    so the sharded execution order is *exactly* the pop order of one big
//    heap, while sifts touch a per-site heap that is S times smaller and
//    idle sites cost nothing beyond one cached-head compare.
//  * Events scheduled while a lane-L event runs stay in lane L; cross-site
//    handoffs (RPC envelopes crossing the WAN latency matrix) move lanes
//    through schedule_on_site()/hop_to_site() and are stamped with the
//    global sequence counter, keeping the merged order identical.
//  * An opt-in windowed stepper (set_worker_threads / BS_SIM_THREADS) runs
//    lanes whose heads fall inside the conservative lookahead horizon (the
//    topology's minimum cross-site latency) on worker threads; only events
//    scheduled through the parallel-safe APIs (schedule_par and their
//    descendants) are eligible, everything else serializes. See
//    lane_runtime.cpp for the barrier-merge determinism argument.
//  * Events carry an InlineCallback (small-buffer-optimized, move-only)
//    instead of a std::function, and coroutine frames come from the
//    size-bucketed FramePool, so steady-state scheduling is allocation-free.
//  * spawn() registers the detached root frame in an intrusive list;
//    ~Simulation destroys still-suspended actors through it (leak-free
//    teardown, LSan-clean), with bs::FrameTeardownScope silencing
//    frame-local RAII side effects during the cascade.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/teardown.hpp"
#include "common/types.hpp"
#include "sim/task.hpp"

namespace bs::obs {
class TraceSink;
}

namespace bs::sim {

/// Move-only type-erased callable with inline storage for small targets.
/// Callables up to kInlineSize bytes (any capturing lambda the simulator
/// uses, and in particular a bare coroutine_handle) are stored in place;
/// larger ones fall back to a single heap allocation.
class InlineCallback {
 public:
  static constexpr std::size_t kInlineSize = 48;

  /// Whether D is stored in place (no allocation) — exposed so hot-path
  /// call sites can static_assert their callback types never silently
  /// degrade to the heap fallback.
  template <class D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  InlineCallback() noexcept = default;

  template <class F>
    requires(!std::is_same_v<std::decay_t<F>, InlineCallback> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  InlineCallback(F&& fn) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(fn)));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      if (ops_) ops_->destroy(buf_);
      ops_ = other.ops_;
      if (ops_) {
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() {
    if (ops_) ops_->destroy(buf_);
  }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-constructs *dst from *src and destroys *src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <class D>
  static constexpr Ops kInlineOps{
      [](void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); },
      [](void* dst, void* src) noexcept {
        D* s = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) noexcept { std::launder(reinterpret_cast<D*>(p))->~D(); }};

  template <class D>
  static constexpr Ops kHeapOps{
      [](void* p) { (**std::launder(reinterpret_cast<D**>(p)))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
      },
      [](void* p) noexcept { delete *std::launder(reinterpret_cast<D**>(p)); }};

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_{nullptr};
};

namespace detail {
/// Thread-local view of the lane a worker thread is currently executing
/// inside a parallel window (null on the coordinator and in serial mode).
/// Declared here so Simulation::now() stays inline; the full LaneRun lives
/// in lane_runtime.cpp.
struct LaneRunBase {
  SimTime local_now{0};
};
inline thread_local LaneRunBase* t_lane_run = nullptr;
}  // namespace detail

class Simulation {
 public:
  using Callback = InlineCallback;

  Simulation();
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] SimTime now() const {
    if (par_active_) {
      if (const auto* lr = detail::t_lane_run) return lr->local_now;
    }
    return now_;
  }

  void schedule_at(SimTime t, Callback cb);
  void schedule_in(SimDuration dt, Callback cb) {
    schedule_at(now() + dt, std::move(cb));
  }

  /// Fast path for waking a coroutine: never allocates (the 8-byte handle
  /// thunk always fits InlineCallback's inline storage), and a wakeup at
  /// the current time goes through the same-time ring, not the heap.
  void schedule_resume_at(SimTime t, std::coroutine_handle<> h) {
    schedule_at(t, ResumeThunk{h});
  }
  void schedule_resume_in(SimDuration dt, std::coroutine_handle<> h) {
    schedule_resume_at(now() + dt, h);
  }
  void schedule_resume(std::coroutine_handle<> h);

  // ------------------------------------------------------------- site lanes

  /// Shards the queue into `sites` per-site lanes (plus the control lane 0)
  /// with the given conservative lookahead horizon — normally the
  /// topology's min_cross_site_latency(). Events already queued stay in
  /// lane 0. Called by rpc::Cluster unless BS_SIM_LANES=off.
  void configure_sites(std::size_t sites, SimDuration lookahead);
  [[nodiscard]] std::size_t site_lane_count() const {
    return lanes_.size() - 1;
  }
  [[nodiscard]] SimDuration lookahead() const { return lookahead_; }

  /// Capacity hint from the workload layer: the expected steady-state
  /// number of pending events per site lane. A population-scale workload
  /// (LiteClientPool) declares its size so sharded lanes engage the far
  /// staging ladder up front; RPC-style services never call it and run on
  /// the pure per-lane heaps. The queue cannot make this call from its own
  /// shape: an RPC-heavy service keeps hundreds of thousands of far-future
  /// timeout watchers queued — size, span and depth histograms match a
  /// million-client population — but engaging the ladder there costs
  /// 10-20% end-to-end (pool sweeps evict the service working set) while
  /// parking it on a real million-client population forfeits a 2x win.
  /// The workload knows which shape it is. Order-independent with
  /// configure_sites(); a no-op below kFarEngage or in single-lane mode.
  void hint_lane_load(std::size_t expected_pending_per_lane);

  /// Schedules `cb` into site `s`'s lane at absolute time `t` — the
  /// cross-site handoff: the event is stamped with the global sequence
  /// counter, so the merged execution order is exactly the single-heap
  /// order. With no site lanes configured this is schedule_at().
  void schedule_on_site(std::size_t site, SimTime t, Callback cb);

  /// Parallel-safe schedule into site `s`'s lane: the event (and every
  /// event it transitively schedules) is marked eligible for the windowed
  /// parallel stepper. Contract — a parallel-safe callback must touch only
  /// state owned by its site, must not log/trace, and a cross-site
  /// schedule_par must carry at least lookahead() of delay.
  void schedule_par(std::size_t site, SimTime t, Callback cb);

  /// Awaitable: suspend and resume in site `s`'s lane after `dt` — how an
  /// RPC envelope crosses the WAN latency matrix into its destination
  /// site's lane.
  auto hop_to_site(std::size_t site, SimDuration dt) {
    struct Awaiter {
      Simulation* s;
      std::size_t site;
      SimDuration dt;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        s->schedule_on_site(site, s->now() + dt, Callback(ResumeThunk{h}));
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, site, dt};
  }

  /// Cross-lane handoffs stamped so far (serial + windowed).
  [[nodiscard]] std::uint64_t cross_site_handoffs() const {
    return cross_site_handoffs_;
  }

  // --------------------------------------------------------------- threads

  /// Enables the opt-in windowed parallel stepper with `n` worker threads
  /// (0 disables it — the default). Only run() windows; run_until() and
  /// step() always execute serially. Read from BS_SIM_THREADS by
  /// rpc::Cluster.
  void set_worker_threads(unsigned n);
  [[nodiscard]] unsigned worker_threads() const { return workers_; }
  /// Windows executed by the parallel stepper (0 in serial mode).
  [[nodiscard]] std::uint64_t windows_run() const { return windows_run_; }

  // ------------------------------------------------------------- execution

  /// Runs events until the queue is empty or stop() is called.
  void run();

  /// Runs all events with time <= t, then advances the clock to t.
  void run_until(SimTime t);

  /// Runs one event; returns false if the queue was empty.
  bool step();

  void stop() { stopped_ = true; }
  [[nodiscard]] bool stopped() const { return stopped_; }

  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// Starts a coroutine actor (runs inline until its first suspension) and
  /// tracks its root frame: actors still suspended when the simulation is
  /// destroyed are destroyed with it.
  void spawn(Task<void> t) { root_entry(std::move(t)); }

  /// Live tracked actor roots (spawned, not yet completed).
  [[nodiscard]] std::size_t live_actors() const { return live_roots_; }

  /// Awaitable: suspend the current coroutine for `dt` of simulated time.
  auto delay(SimDuration dt) {
    struct Awaiter {
      Simulation* s;
      SimDuration dt;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        s->schedule_resume_in(dt, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, dt};
  }

  /// Awaitable: suspend until the given absolute simulated time. A time
  /// already past clamps to a zero-delay reschedule: the waiter re-enters
  /// the same-time FIFO lane at now() and resumes after everything already
  /// queued at the current instant (pinned by the FIFO regression tests).
  auto delay_until(SimTime t) {
    const SimTime n = now();
    return delay(t > n ? t - n : 0);
  }

  /// Installs this simulation's clock as the logger time source.
  void install_log_clock();

  /// Binds `sink` to this simulation's clock and installs it as the
  /// process-wide trace sink (a no-op install under BS_TRACE=OFF). Pair
  /// with detach_trace() — or use obs::ScopedTrace — when the simulation
  /// outlives the sink.
  void attach_trace(obs::TraceSink& sink);
  /// Uninstalls the process-wide trace sink.
  static void detach_trace();

 private:
  struct ResumeThunk {
    std::coroutine_handle<> h;
    void operator()() const { h.resume(); }
  };
  // Every coroutine wakeup goes through this thunk; it degrading to the
  // heap-fallback path would silently reintroduce an allocation per resume.
  static_assert(InlineCallback::fits_inline<ResumeThunk>(),
                "coroutine resume thunk must fit InlineCallback inline");

  // ------------------------------------------------------------ event queue

  /// Bit 63 of an event's sequence word marks it parallel-safe; ordering
  /// always compares the masked value, so the mark never perturbs the
  /// global (time, seq) total order.
  static constexpr std::uint64_t kParBit = 1ull << 63;
  static constexpr std::uint64_t kSeqMask = kParBit - 1;
  static constexpr std::uint64_t kNoSeq = ~0ull;

  /// Heap key: 24 bytes, trivially movable. The callback body lives in
  /// lane.slots[slot]; sifting never touches it.
  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;  ///< kParBit | sequence
    std::uint32_t slot;
  };
  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return (a.seq & kSeqMask) < (b.seq & kSeqMask);
  }

  /// Same-time FIFO lane entry (time is implicitly the lane's current
  /// time — now_ in serial mode, the worker's local clock in a window).
  struct NowEvent {
    std::uint64_t seq;
    Callback cb;
  };

  /// Stage-rung entry: key and callback together, consumed sequentially.
  struct FarEntry {
    SimTime time;
    std::uint64_t seq;
    Callback cb;
  };

  /// Far-pool key. The pool is stored as parallel arrays — 16-byte keys
  /// apart from the 56-byte callbacks — so the refill scans touch 4 keys
  /// per cache line and never drag callback bodies through the cache.
  /// Consumed entries become tombstones (time = kInfinite, seq = kNoSeq)
  /// and both arrays compact only once half the pool is dead, making the
  /// per-event move count O(1) amortized.
  struct FarKey {
    SimTime time;
    std::uint64_t seq;
  };

  /// One per-site event shard. Four tiers, one (time, seq) order:
  ///  * ring  — FIFO of events at the current time (implicit time).
  ///  * stage — the current ladder rung: the chunk of far-pool events below
  ///            far_bar, sorted by (time, masked seq) at refill time and
  ///            consumed by a sequential cursor. Pops are a linear read
  ///            with the callback inline — no sift, no slot indirection.
  ///            (Gathering bodies at refill, not pop, is deliberate: the
  ///            rung's scattered far-pool reads miss the cache either way,
  ///            but a tight gather loop keeps those misses back-to-back
  ///            where the prefetcher can overlap them, while a pop-time
  ///            fetch would eat one isolated cold miss per event.)
  ///  * heap  — 4-ary heap + slot pool for LATE insertions: events
  ///            scheduled after the rung was built whose time still falls
  ///            below far_bar. Usually a few percent of traffic, so it
  ///            stays tiny and cache-resident.
  ///  * far   — unsorted staging pool for everything beyond far_bar; only
  ///            exists in sharded mode (the single-lane oracle keeps the
  ///            pure PR-5 heap) and only once the workload engages it via
  ///            hint_lane_load(). When the near tiers drain, a refill cuts
  ///            the half-pool of earliest far events into the stage with
  ///            nth_element and advances far_bar — each event is appended
  ///            once and moved ~once, instead of sifting through a
  ///            million-entry heap.
  /// Invariant: far_bar rises monotonically; every stage and heap entry was
  /// placed with time < far_bar and every far entry with time >= far_bar,
  /// so min(ring, stage front, heap root) is the true lane head whenever a
  /// near tier is non-empty.
  struct Lane {
    std::vector<HeapEntry> heap;  // 4-ary implicit heap (late insertions)
    std::vector<Callback> slots;  // heap callback bodies
    std::vector<std::uint32_t> free_slots;
    std::vector<NowEvent> ring;   // power-of-two capacity
    std::vector<FarKey> far_keys;     // unsorted, beyond far_bar
    std::vector<Callback> far_cbs;    // parallel to far_keys
    std::size_t far_dead{0};          // tombstones awaiting compaction
    std::vector<FarEntry> stage;  // sorted rung, consumed via stage_head
    std::vector<HeapEntry> stage_keys;  // refill scratch: sortable 24B keys
    std::size_t stage_head{0};
    std::size_t ring_head{0};
    std::size_t ring_size{0};
    /// Near/far boundary. kInfinite means the ladder is parked (pool
    /// empty, everything routes to the heap); engage_far() lowers it once
    /// the workload hints a large population, and afterwards it only rises.
    SimTime far_bar{simtime::kInfinite};
    SimTime head_time{simtime::kInfinite};  ///< cached min key (masked seq)
    std::uint64_t head_seq{kNoSeq};
    std::size_t untagged{0};  ///< events without the parallel-safe mark
  };

  [[nodiscard]] std::uint64_t next_seq(bool par) {
    const std::uint64_t s = seq_++;
    return par ? (s | kParBit) : s;
  }
  [[nodiscard]] std::size_t site_lane(std::size_t site) const {
    if (lanes_.size() == 1) return 0;
    return site + 1 < lanes_.size() ? site + 1 : 0;
  }

  static void heap_push(Lane& ln, SimTime t, std::uint64_t seq, Callback cb);
  /// Pops the lane's heap root; returns its callback (slot recycled) and
  /// the entry key. Does NOT refresh the head cache.
  static Callback heap_pop(Lane& ln, SimTime* t, std::uint64_t* seq);
  static void sift_up(Lane& ln, std::size_t i);
  static void sift_down(Lane& ln, std::size_t i);

  static void far_push(Lane& ln, SimTime t, std::uint64_t seq, Callback cb);
  /// Cuts the earliest half of the far pool into the stage rung with
  /// nth_element and advances far_bar to the first excluded key's time.
  /// Guarantees at least one event moves when the far pool is non-empty.
  static void refill(Lane& ln);
  /// Hinted per-lane load at or above which hint_lane_load() engages the
  /// far ladders. Below it the pure per-lane heap is both faster and far
  /// gentler on the workload's working set (no pool sweeps).
  static constexpr std::size_t kFarEngage = 16384;
  /// Engages a lane's far ladder: lowers far_bar from kInfinite to just
  /// above every queued near key — the lowest bar that preserves
  /// "stage and heap keys < far_bar <= far keys" with the pool empty, so
  /// all traffic beyond it builds the ladder. Idempotent.
  static void engage_far(Lane& ln);

  /// Which near tier peek_near() found the lane minimum in.
  enum NearSource : int { kFromRing = 0, kFromHeap = 1, kFromStage = 2 };
  [[nodiscard]] static bool near_empty(const Lane& ln) {
    return ln.ring_size == 0 && ln.heap.empty() &&
           ln.stage_head == ln.stage.size();
  }
  /// Live (non-tombstone) far-pool population.
  [[nodiscard]] static std::size_t far_live(const Lane& ln) {
    return ln.far_keys.size() - ln.far_dead;
  }
  /// Smallest (time, masked seq) key across the near tiers (`at` is the
  /// implicit ring time). Returns the owning tier, or -1 when all empty.
  static int peek_near(const Lane& ln, SimTime at, SimTime* t,
                       std::uint64_t* masked_seq);
  /// Pops the entry peek_near() selected; returns its callback and raw key.
  /// Does NOT refresh the head cache.
  static Callback pop_near(Lane& ln, int src, SimTime at, SimTime* t,
                           std::uint64_t* seq);

  static void ring_push(Lane& ln, SimTime at, std::uint64_t seq, Callback cb);
  static Callback ring_pop(Lane& ln, std::uint64_t* seq);
  [[nodiscard]] static std::uint64_t ring_front_seq(const Lane& ln) {
    return ln.ring[ln.ring_head].seq & kSeqMask;
  }
  static void ring_grow(Lane& ln);

  /// Refreshes lane `lane`'s cached head key from the ring front / heap
  /// root and resyncs its heads_ mirror entry. `at` is the time every ring
  /// entry carries (the lane's current time).
  void recompute_head(std::size_t lane, SimTime at);
  /// Copies a lane's cached head into the dense heads_ mirror.
  void sync_head(std::size_t lane) {
    const Lane& ln = lanes_[lane];
    heads_[lane] = HeadKey{ln.head_time, ln.head_seq};
  }
  static void maybe_raise_head(Lane& ln, SimTime t, std::uint64_t seq) {
    const std::uint64_t m = seq & kSeqMask;
    if (t < ln.head_time || (t == ln.head_time && m < ln.head_seq)) {
      ln.head_time = t;
      ln.head_seq = m;
    }
  }

  /// Enqueues into `lane` at time t (ring when t <= now_). Serial only.
  void push_event(std::size_t lane, SimTime t, std::uint64_t seq,
                  Callback cb);
  /// Lane index holding the globally smallest head key, or lanes_.size()
  /// when every lane is empty.
  [[nodiscard]] std::size_t best_lane() const;

  /// Drops every queued event without running it (teardown).
  void clear_queue() noexcept;

  // -------------------------------------------------------- parallel window
  // Implemented in lane_runtime.cpp (the only threaded file in src/sim).

  struct ParRuntime;
  friend struct ParRuntime;

  [[nodiscard]] bool windowed() const {
    return workers_ != 0 && lanes_.size() > 2;
  }
  /// True on a worker thread inside a parallel window — schedule_* calls
  /// then route through the lane-local par_* paths.
  [[nodiscard]] bool in_worker() const {
    return par_active_ && detail::t_lane_run != nullptr;
  }
  /// One windowed iteration: runs a parallel window when eligible, else a
  /// single serial step. Returns false when the queue is empty.
  bool window_or_step();
  /// Worker-context scheduling (routed from schedule_* when par_active_).
  void par_schedule_current(SimTime t, Callback cb);
  void par_schedule_site(std::size_t site, SimTime t, Callback cb);
  void par_schedule_resume(std::coroutine_handle<> h);
  void shutdown_workers() noexcept;

  // ---------------------------------------------------------- tracked roots

  /// Self-destroying detached root that registers itself with the owning
  /// simulation for the duration of the actor's life, so ~Simulation can
  /// destroy actors still suspended mid-flight.
  struct RootTask {
    struct promise_type : detail::PooledFrame {
      Simulation* sim{nullptr};
      promise_type* prev{nullptr};
      promise_type* next{nullptr};

      promise_type(Simulation& s, Task<void>&) : sim(&s) {
        next = sim->roots_;
        if (next != nullptr) next->prev = this;
        sim->roots_ = this;
        ++sim->live_roots_;
      }
      ~promise_type() {
        if (prev != nullptr) {
          prev->next = next;
        } else {
          sim->roots_ = next;
        }
        if (next != nullptr) next->prev = prev;
        --sim->live_roots_;
      }

      RootTask get_return_object() const noexcept { return {}; }
      std::suspend_never initial_suspend() const noexcept { return {}; }
      struct FinalAwaiter {
        bool await_ready() const noexcept { return false; }
        void await_suspend(
            std::coroutine_handle<promise_type> h) const noexcept {
          h.destroy();  // unlinks via ~promise_type
        }
        void await_resume() const noexcept {}
      };
      FinalAwaiter final_suspend() const noexcept { return {}; }
      void return_void() const noexcept {}
      [[noreturn]] void unhandled_exception() const { std::terminate(); }
    };
  };

  RootTask root_entry(Task<void> t) { co_await std::move(t); }

  /// 16-byte copy of each lane's cached head key. best_lane() runs once
  /// per serial step, and scanning one flat array touches 2-3 cache lines
  /// for a 9-site deployment instead of one — usually cold — line per
  /// Lane struct. The Lane fields stay the source of truth: the mirror is
  /// resynced wherever a head can change under the serial stepper
  /// (push_event, recompute_head, clear_queue); inside a parallel window
  /// workers mutate only their own Lane's head, and the barrier resyncs
  /// every drained lane via recompute_head before the next best_lane().
  struct HeadKey {
    SimTime time{simtime::kInfinite};
    std::uint64_t seq{kNoSeq};
  };

  std::vector<Lane> lanes_;  ///< lane 0 = control; 1..S = sites
  std::vector<HeadKey> heads_;  ///< parallel to lanes_
  SimTime now_{0};
  std::uint64_t seq_{0};
  std::uint64_t processed_{0};
  std::uint64_t cross_site_handoffs_{0};
  std::uint64_t windows_run_{0};
  SimDuration lookahead_{simtime::kInfinite};
  std::size_t lane_load_hint_{0};  ///< hint_lane_load(), kept for reconfigure
  std::size_t exec_lane_{0};  ///< lane of the event currently executing
  bool exec_par_{false};      ///< it carries the parallel-safe mark
  bool par_active_{false};    ///< a parallel window is in flight
  bool stopped_{false};
  unsigned workers_{0};
  ParRuntime* par_{nullptr};  // owned; deleted by shutdown_workers()
  RootTask::promise_type* roots_{nullptr};
  std::size_t live_roots_{0};
};

}  // namespace bs::sim
