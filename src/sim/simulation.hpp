// Deterministic discrete-event simulation kernel. A single event queue
// totally ordered by (time, insertion sequence) drives callbacks; coroutine
// actors suspend on awaitables that schedule their resumption.
//
// Hot-path structure (see DESIGN.md "Event queue & memory model"):
//  * Future events live in a 4-ary implicit heap of 24-byte (time, seq,
//    slot) keys; the move-only callbacks sit in a slot pool on the side, so
//    heap sifts move small PODs instead of 64-byte callback objects.
//  * Events scheduled at the *current* time — coroutine wakeups through
//    schedule_resume(), zero-delay reschedules — bypass the heap entirely
//    through a growable FIFO ring. Ring and heap share the global sequence
//    counter, so the (time, seq) total order is exactly that of a single
//    heap: determinism is unaffected.
//  * Events carry an InlineCallback (small-buffer-optimized, move-only)
//    instead of a std::function, and coroutine frames come from the
//    size-bucketed FramePool, so steady-state scheduling is allocation-free.
//  * spawn() registers the detached root frame in an intrusive list;
//    ~Simulation destroys still-suspended actors through it (leak-free
//    teardown, LSan-clean), with bs::FrameTeardownScope silencing
//    frame-local RAII side effects during the cascade.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/teardown.hpp"
#include "common/types.hpp"
#include "sim/task.hpp"

namespace bs::obs {
class TraceSink;
}

namespace bs::sim {

/// Move-only type-erased callable with inline storage for small targets.
/// Callables up to kInlineSize bytes (any capturing lambda the simulator
/// uses, and in particular a bare coroutine_handle) are stored in place;
/// larger ones fall back to a single heap allocation.
class InlineCallback {
 public:
  static constexpr std::size_t kInlineSize = 48;

  /// Whether D is stored in place (no allocation) — exposed so hot-path
  /// call sites can static_assert their callback types never silently
  /// degrade to the heap fallback.
  template <class D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  InlineCallback() noexcept = default;

  template <class F>
    requires(!std::is_same_v<std::decay_t<F>, InlineCallback> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  InlineCallback(F&& fn) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(fn)));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      if (ops_) ops_->destroy(buf_);
      ops_ = other.ops_;
      if (ops_) {
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() {
    if (ops_) ops_->destroy(buf_);
  }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-constructs *dst from *src and destroys *src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <class D>
  static constexpr Ops kInlineOps{
      [](void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); },
      [](void* dst, void* src) noexcept {
        D* s = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) noexcept { std::launder(reinterpret_cast<D*>(p))->~D(); }};

  template <class D>
  static constexpr Ops kHeapOps{
      [](void* p) { (**std::launder(reinterpret_cast<D**>(p)))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
      },
      [](void* p) noexcept { delete *std::launder(reinterpret_cast<D**>(p)); }};

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_{nullptr};
};

class Simulation {
 public:
  using Callback = InlineCallback;

  Simulation() = default;
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  void schedule_at(SimTime t, Callback cb);
  void schedule_in(SimDuration dt, Callback cb) {
    schedule_at(now_ + dt, std::move(cb));
  }

  /// Fast path for waking a coroutine: never allocates (the 8-byte handle
  /// thunk always fits InlineCallback's inline storage), and a wakeup at
  /// the current time goes through the same-time ring, not the heap.
  void schedule_resume_at(SimTime t, std::coroutine_handle<> h) {
    schedule_at(t, ResumeThunk{h});
  }
  void schedule_resume_in(SimDuration dt, std::coroutine_handle<> h) {
    schedule_resume_at(now_ + dt, h);
  }
  void schedule_resume(std::coroutine_handle<> h) {
    ring_push(seq_++, Callback(ResumeThunk{h}));
  }

  /// Runs events until the queue is empty or stop() is called.
  void run();

  /// Runs all events with time <= t, then advances the clock to t.
  void run_until(SimTime t);

  /// Runs one event; returns false if the queue was empty.
  bool step();

  void stop() { stopped_ = true; }
  [[nodiscard]] bool stopped() const { return stopped_; }

  [[nodiscard]] std::size_t pending() const {
    return ring_size_ + heap_.size();
  }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// Starts a coroutine actor (runs inline until its first suspension) and
  /// tracks its root frame: actors still suspended when the simulation is
  /// destroyed are destroyed with it.
  void spawn(Task<void> t) { root_entry(std::move(t)); }

  /// Live tracked actor roots (spawned, not yet completed).
  [[nodiscard]] std::size_t live_actors() const { return live_roots_; }

  /// Awaitable: suspend the current coroutine for `dt` of simulated time.
  auto delay(SimDuration dt) {
    struct Awaiter {
      Simulation* s;
      SimDuration dt;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        s->schedule_resume_in(dt, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, dt};
  }

  /// Awaitable: suspend until the given absolute simulated time. A time
  /// already past clamps to a zero-delay reschedule: the waiter re-enters
  /// the same-time FIFO lane at now() and resumes after everything already
  /// queued at the current instant (pinned by the FIFO regression tests).
  auto delay_until(SimTime t) { return delay(t > now_ ? t - now_ : 0); }

  /// Installs this simulation's clock as the logger time source.
  void install_log_clock();

  /// Binds `sink` to this simulation's clock and installs it as the
  /// process-wide trace sink (a no-op install under BS_TRACE=OFF). Pair
  /// with detach_trace() — or use obs::ScopedTrace — when the simulation
  /// outlives the sink.
  void attach_trace(obs::TraceSink& sink);
  /// Uninstalls the process-wide trace sink.
  static void detach_trace();

 private:
  struct ResumeThunk {
    std::coroutine_handle<> h;
    void operator()() const { h.resume(); }
  };
  // Every coroutine wakeup goes through this thunk; it degrading to the
  // heap-fallback path would silently reintroduce an allocation per resume.
  static_assert(InlineCallback::fits_inline<ResumeThunk>(),
                "coroutine resume thunk must fit InlineCallback inline");

  // ------------------------------------------------------------ event queue

  /// Heap key: 24 bytes, trivially movable. The callback body lives in
  /// slots_[slot]; sifting never touches it.
  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  /// Same-time FIFO lane entry (time is implicitly now_).
  struct NowEvent {
    std::uint64_t seq;
    Callback cb;
  };

  void heap_push(SimTime t, std::uint64_t seq, Callback cb);
  /// Pops the heap root; returns its callback (slot recycled).
  Callback heap_pop(SimTime* t);
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  void ring_push(std::uint64_t seq, Callback cb);
  Callback ring_pop();
  [[nodiscard]] std::uint64_t ring_front_seq() const {
    return ring_[ring_head_].seq;
  }
  void ring_grow();

  /// Drops every queued event without running it (teardown).
  void clear_queue() noexcept;

  // ---------------------------------------------------------- tracked roots

  /// Self-destroying detached root that registers itself with the owning
  /// simulation for the duration of the actor's life, so ~Simulation can
  /// destroy actors still suspended mid-flight.
  struct RootTask {
    struct promise_type : detail::PooledFrame {
      Simulation* sim{nullptr};
      promise_type* prev{nullptr};
      promise_type* next{nullptr};

      promise_type(Simulation& s, Task<void>&) : sim(&s) {
        next = sim->roots_;
        if (next != nullptr) next->prev = this;
        sim->roots_ = this;
        ++sim->live_roots_;
      }
      ~promise_type() {
        if (prev != nullptr) {
          prev->next = next;
        } else {
          sim->roots_ = next;
        }
        if (next != nullptr) next->prev = prev;
        --sim->live_roots_;
      }

      RootTask get_return_object() const noexcept { return {}; }
      std::suspend_never initial_suspend() const noexcept { return {}; }
      struct FinalAwaiter {
        bool await_ready() const noexcept { return false; }
        void await_suspend(
            std::coroutine_handle<promise_type> h) const noexcept {
          h.destroy();  // unlinks via ~promise_type
        }
        void await_resume() const noexcept {}
      };
      FinalAwaiter final_suspend() const noexcept { return {}; }
      void return_void() const noexcept {}
      [[noreturn]] void unhandled_exception() const { std::terminate(); }
    };
  };

  RootTask root_entry(Task<void> t) { co_await std::move(t); }

  std::vector<HeapEntry> heap_;        // 4-ary implicit heap
  std::vector<Callback> slots_;        // heap callback bodies
  std::vector<std::uint32_t> free_slots_;
  std::vector<NowEvent> ring_;         // power-of-two capacity
  std::size_t ring_head_{0};
  std::size_t ring_size_{0};
  SimTime now_{0};
  std::uint64_t seq_{0};
  std::uint64_t processed_{0};
  bool stopped_{false};
  RootTask::promise_type* roots_{nullptr};
  std::size_t live_roots_{0};
};

}  // namespace bs::sim
