// Deterministic discrete-event simulation kernel. A single event queue
// totally ordered by (time, insertion sequence) drives callbacks; coroutine
// actors suspend on awaitables that schedule their resumption.
//
// The queue is allocation-free on the hot path: events carry an
// InlineCallback (small-buffer-optimized, move-only) instead of a
// std::function, and coroutine resumptions go through schedule_resume(),
// whose 8-byte thunk always fits the inline storage.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "sim/task.hpp"

namespace bs::obs {
class TraceSink;
}

namespace bs::sim {

/// Move-only type-erased callable with inline storage for small targets.
/// Callables up to kInlineSize bytes (any capturing lambda the simulator
/// uses, and in particular a bare coroutine_handle) are stored in place;
/// larger ones fall back to a single heap allocation.
class InlineCallback {
 public:
  static constexpr std::size_t kInlineSize = 48;

  InlineCallback() noexcept = default;

  template <class F>
    requires(!std::is_same_v<std::decay_t<F>, InlineCallback> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  InlineCallback(F&& fn) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(fn)));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      if (ops_) ops_->destroy(buf_);
      ops_ = other.ops_;
      if (ops_) {
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() {
    if (ops_) ops_->destroy(buf_);
  }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-constructs *dst from *src and destroys *src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <class D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <class D>
  static constexpr Ops kInlineOps{
      [](void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); },
      [](void* dst, void* src) noexcept {
        D* s = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) noexcept { std::launder(reinterpret_cast<D*>(p))->~D(); }};

  template <class D>
  static constexpr Ops kHeapOps{
      [](void* p) { (**std::launder(reinterpret_cast<D**>(p)))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
      },
      [](void* p) noexcept { delete *std::launder(reinterpret_cast<D**>(p)); }};

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_{nullptr};
};

class Simulation {
 public:
  using Callback = InlineCallback;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  void schedule_at(SimTime t, Callback cb);
  void schedule_in(SimDuration dt, Callback cb) {
    schedule_at(now_ + dt, std::move(cb));
  }

  /// Fast path for waking a coroutine: never allocates (the 8-byte handle
  /// thunk always fits InlineCallback's inline storage).
  void schedule_resume_at(SimTime t, std::coroutine_handle<> h) {
    schedule_at(t, ResumeThunk{h});
  }
  void schedule_resume_in(SimDuration dt, std::coroutine_handle<> h) {
    schedule_resume_at(now_ + dt, h);
  }
  void schedule_resume(std::coroutine_handle<> h) {
    schedule_resume_at(now_, h);
  }

  /// Runs events until the queue is empty or stop() is called.
  void run();

  /// Runs all events with time <= t, then advances the clock to t.
  void run_until(SimTime t);

  /// Runs one event; returns false if the queue was empty.
  bool step();

  void stop() { stopped_ = true; }
  [[nodiscard]] bool stopped() const { return stopped_; }

  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// Starts a coroutine actor (runs inline until its first suspension).
  void spawn(Task<void> t) { sim::spawn(std::move(t)); }

  /// Awaitable: suspend the current coroutine for `dt` of simulated time.
  auto delay(SimDuration dt) {
    struct Awaiter {
      Simulation* s;
      SimDuration dt;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        s->schedule_resume_in(dt, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, dt};
  }

  /// Awaitable: suspend until the given absolute simulated time (resumes
  /// immediately if already past).
  auto delay_until(SimTime t) { return delay(t > now_ ? t - now_ : 0); }

  /// Installs this simulation's clock as the logger time source.
  void install_log_clock();

  /// Binds `sink` to this simulation's clock and installs it as the
  /// process-wide trace sink (a no-op install under BS_TRACE=OFF). Pair
  /// with detach_trace() — or use obs::ScopedTrace — when the simulation
  /// outlives the sink.
  void attach_trace(obs::TraceSink& sink);
  /// Uninstalls the process-wide trace sink.
  static void detach_trace();

 private:
  struct ResumeThunk {
    std::coroutine_handle<> h;
    void operator()() const { h.resume(); }
  };
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::vector<Event> heap_;
  SimTime now_{0};
  std::uint64_t seq_{0};
  std::uint64_t processed_{0};
  bool stopped_{false};
};

}  // namespace bs::sim
