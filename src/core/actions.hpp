// Adaptation actions: the Plan output of the MAPE-K loop, executed by the
// controller's Executor against the BlobSeer deployment.
#pragma once

#include <string>

#include "blob/blob_types.hpp"

namespace bs::core {

struct AdaptAction {
  enum class Type {
    add_provider,           ///< boot one more data provider
    drain_provider,         ///< migrate chunks away, then retire the node
    repair_chunk,           ///< restore replication of one chunk
    set_replication,        ///< change a blob's replication for new writes
    trim_blob,              ///< drop versions older than `version`
    delete_blob,            ///< remove a blob and reclaim its chunks
    set_scan_interval,      ///< retune the security detection engine
  };

  Type type{Type::add_provider};
  NodeId provider{};
  blob::ChunkKey chunk{};
  BlobId blob{};
  blob::Version version{0};
  std::uint32_t replication{1};
  SimDuration duration{0};
  std::string reason;

  [[nodiscard]] const char* type_name() const {
    switch (type) {
      case Type::add_provider: return "add_provider";
      case Type::drain_provider: return "drain_provider";
      case Type::repair_chunk: return "repair_chunk";
      case Type::set_replication: return "set_replication";
      case Type::trim_blob: return "trim_blob";
      case Type::delete_blob: return "delete_blob";
      case Type::set_scan_interval: return "set_scan_interval";
    }
    return "?";
  }
};

}  // namespace bs::core
