// Self-optimization through automatic data replication (§V): maintains each
// blob's replication degree — raising it for read-hot blobs, restoring it
// when providers die — by scanning the latest version's leaves and emitting
// repair actions.
#pragma once

#include <map>

#include "core/module.hpp"

namespace bs::core {

struct ReplicationOptions {
  std::uint32_t max_replication{4};
  /// Each multiple of this read rate (bytes/s) on a blob adds one replica
  /// above the blob's base replication.
  double hot_read_rate{40e6};
  std::size_t max_repairs_per_loop{64};
  std::size_t max_blobs_per_loop{8};  ///< blobs health-scanned per loop
};

class ReplicationModule final : public SelfModule {
 public:
  explicit ReplicationModule(
      ReplicationOptions options = ReplicationOptions())
      : options_(options) {}

  const char* name() const override { return "self_optimization.replication"; }

  // bslint: allow(coro-ref-param): knowledge and ctx live as long as
  // the agent; the control loop co_awaits analyze() in one expression
  sim::Task<std::vector<AdaptAction>> analyze(const KnowledgeBase& knowledge,
                                              AgentContext& ctx) override;

  /// Replication degree this module wants for a blob (exposed for tests).
  [[nodiscard]] std::uint32_t desired_replication(std::uint32_t base,
                                                  double read_rate) const;

 private:
  ReplicationOptions options_;
  std::size_t scan_cursor_{0};  ///< round-robin over the blob list
};

}  // namespace bs::core
