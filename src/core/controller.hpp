// AutonomicController: the MAPE-K loop — Monitor (pull an introspection
// snapshot into the knowledge base), Analyze/Plan (ask each SelfModule for
// actions), Execute (apply them to the BlobSeer deployment through the
// Executor). This is the "automatic decision-making engine" that shifts the
// burden of managing the system's state away from the human administrator.
#pragma once

#include <functional>
#include <memory>

#include "core/module.hpp"
#include "sec/framework.hpp"

namespace bs::core {

/// Applies adaptation actions to the live system. Exposed separately so
/// tests and benches can drive individual actions.
class Executor {
 public:
  Executor(AgentContext& ctx) : ctx_(ctx) {}

  // Actions and chunk keys are taken by value: copied into the coroutine
  // frame so executor coroutines never dangle on a caller's temporary
  // (bslint coro-ref-param). These are rare control-plane ops; the copies
  // are immaterial.
  sim::Task<Result<void>> execute(AdaptAction action);

  /// Invoked after a new provider boots (monitoring + security wiring).
  void set_provider_added_hook(
      std::function<void(blob::DataProvider&)> hook) {
    provider_added_ = std::move(hook);
  }

  [[nodiscard]] std::uint64_t executed() const { return executed_; }
  [[nodiscard]] std::uint64_t failed() const { return failed_; }

 private:
  sim::Task<Result<void>> add_provider();
  sim::Task<Result<void>> drain_provider(NodeId provider);
  sim::Task<Result<void>> repair_chunk(blob::ChunkKey key,
                                       std::uint32_t replication,
                                       NodeId exclude = NodeId{});
  sim::Task<Result<void>> migrate_chunk(blob::ChunkKey key, NodeId from);
  sim::Task<Result<void>> trim_blob(BlobId blob, blob::Version keep_from);
  sim::Task<Result<void>> delete_blob(BlobId blob);
  sim::Task<Result<blob::TreeNode>> leaf_of(blob::ChunkKey key);
  sim::Task<Result<void>> put_leaf(blob::ChunkKey key, blob::TreeNode node);
  rpc::CallOptions opts() const;

  AgentContext& ctx_;
  std::function<void(blob::DataProvider&)> provider_added_;
  std::uint64_t executed_{0};
  std::uint64_t failed_{0};
};

struct ControllerOptions {
  SimDuration loop_interval{simtime::seconds(5)};
  std::size_t max_actions_per_loop{32};
};

class AutonomicController {
 public:
  struct ExecutedAction {
    SimTime time{0};
    AdaptAction action;
    bool ok{false};
  };

  AutonomicController(blob::Deployment& deployment,
                      intro::IntrospectionService& introspection,
                      sec::SecurityFramework* security = nullptr,
                      ControllerOptions options = ControllerOptions());

  void add_module(std::unique_ptr<SelfModule> module);

  void start();
  void stop() { running_ = false; }

  /// One synchronous MAPE iteration (also used by the periodic loop).
  sim::Task<void> iterate();

  [[nodiscard]] KnowledgeBase& knowledge() { return knowledge_; }
  [[nodiscard]] Executor& executor() { return executor_; }
  [[nodiscard]] AgentContext& context() { return ctx_; }
  [[nodiscard]] const std::vector<ExecutedAction>& action_log() const {
    return log_;
  }
  [[nodiscard]] std::uint64_t iterations() const { return iterations_; }

 private:
  sim::Task<void> loop();

  blob::Deployment& dep_;
  ControllerOptions options_;
  AgentContext ctx_;
  KnowledgeBase knowledge_;
  Executor executor_;
  std::vector<std::unique_ptr<SelfModule>> modules_;
  std::vector<ExecutedAction> log_;
  bool running_{false};
  std::uint64_t iterations_{0};
};

}  // namespace bs::core
