// Self-configuration through dynamic data-provider deployment (§V): expands
// and contracts the provider pool based on storage utilization and write
// load, with hysteresis and cooldown so transient spikes don't thrash the
// pool.
#pragma once

#include "core/module.hpp"

namespace bs::core {

struct ElasticityOptions {
  double util_high{0.70};  ///< grow when used/capacity exceeds this
  double util_low{0.25};   ///< shrink candidate when below this
  /// Write-bandwidth budget per provider: grow when aggregate write rate
  /// divided by the pool size exceeds it.
  double write_rate_per_provider{60e6};
  std::size_t min_providers{2};
  std::size_t max_providers{512};
  std::size_t max_step{4};         ///< providers added per decision
  int signals_required{2};         ///< consecutive loops before acting
  SimDuration cooldown{simtime::seconds(20)};
};

class ElasticityModule final : public SelfModule {
 public:
  explicit ElasticityModule(ElasticityOptions options = ElasticityOptions())
      : options_(options) {}

  const char* name() const override { return "self_configuration"; }

  // bslint: allow(coro-ref-param): knowledge and ctx live as long as
  // the agent; the control loop co_awaits analyze() in one expression
  sim::Task<std::vector<AdaptAction>> analyze(const KnowledgeBase& knowledge,
                                              AgentContext& ctx) override;

  /// The pool size this module would currently aim for (exposed for tests).
  [[nodiscard]] std::size_t desired_providers(
      const intro::SystemSnapshot& snap) const;

 private:
  ElasticityOptions options_;
  int grow_signals_{0};
  int shrink_signals_{0};
  SimTime last_action_{-simtime::kNanosPerSec * 3600};
};

}  // namespace bs::core
