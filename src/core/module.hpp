// SelfModule: the plug-in interface of the autonomic controller. One module
// per self-* property (self-configuration, self-optimization,
// self-protection); each analyzes the shared knowledge and proposes
// adaptation actions.
#pragma once

#include <vector>

#include "blob/client.hpp"
#include "blob/deployment.hpp"
#include "core/actions.hpp"
#include "core/knowledge.hpp"

namespace bs::sec {
class SecurityFramework;
}

namespace bs::core {

/// Everything a module may touch while analyzing (read-mostly; RPC reads
/// are issued from the autonomic manager's own node via `client`).
struct AgentContext {
  blob::Deployment* deployment{nullptr};
  rpc::Node* node{nullptr};
  blob::BlobClient* client{nullptr};
  intro::IntrospectionService* introspection{nullptr};
  sec::SecurityFramework* security{nullptr};  ///< may be null
};

class SelfModule {
 public:
  virtual ~SelfModule() = default;
  [[nodiscard]] virtual const char* name() const = 0;

  /// Analyze + Plan: inspect the knowledge (and optionally the live system
  /// through ctx) and propose actions for this control period. Reference
  /// parameters are safe here by contract: both objects are owned by the
  /// agent and outlive every control period, and the loop co_awaits
  /// analyze() within a single full-expression.
  // bslint: allow(coro-ref-param): see the lifetime contract above
  virtual sim::Task<std::vector<AdaptAction>> analyze(
      const KnowledgeBase& knowledge, AgentContext& ctx) = 0;
};

}  // namespace bs::core
