#include "core/elasticity.hpp"

#include <algorithm>
#include <cmath>

namespace bs::core {

std::size_t ElasticityModule::desired_providers(
    const intro::SystemSnapshot& snap) const {
  const std::size_t current = snap.providers.size();
  if (current == 0) return options_.min_providers;
  const double per_provider_capacity =
      snap.total_capacity / static_cast<double>(current);

  // Capacity-driven target: keep utilization at the middle of the band.
  const double target_util = (options_.util_high + options_.util_low) / 2;
  std::size_t by_space = current;
  if (per_provider_capacity > 0) {
    by_space = static_cast<std::size_t>(std::ceil(
        snap.total_used / (per_provider_capacity * target_util)));
  }
  // Load-driven target: spread the aggregate write rate.
  const std::size_t by_load = static_cast<std::size_t>(std::ceil(
      snap.aggregate_write_rate / options_.write_rate_per_provider));

  return std::clamp(std::max(by_space, by_load), options_.min_providers,
                    options_.max_providers);
}

// bslint: allow(coro-ref-param): see module.hpp lifetime contract
sim::Task<std::vector<AdaptAction>> ElasticityModule::analyze(
    const KnowledgeBase& knowledge, AgentContext& ctx) {
  std::vector<AdaptAction> out;
  const auto& snap = knowledge.current();
  if (snap.providers.empty()) co_return out;

  const SimTime now = snap.time;
  if (now - last_action_ < options_.cooldown) co_return out;

  const std::size_t current = snap.providers.size();
  const double util = snap.utilization();
  const double load_per_provider =
      snap.aggregate_write_rate / static_cast<double>(current);

  const bool grow = (util > options_.util_high ||
                     load_per_provider > options_.write_rate_per_provider) &&
                    current < options_.max_providers;
  const bool shrink = util < options_.util_low &&
                      load_per_provider <
                          0.3 * options_.write_rate_per_provider &&
                      current > options_.min_providers;

  grow_signals_ = grow ? grow_signals_ + 1 : 0;
  shrink_signals_ = shrink ? shrink_signals_ + 1 : 0;

  if (grow_signals_ >= options_.signals_required) {
    const std::size_t desired = desired_providers(snap);
    const std::size_t add =
        std::min(options_.max_step,
                 desired > current ? desired - current : std::size_t{1});
    for (std::size_t i = 0; i < add; ++i) {
      AdaptAction a;
      a.type = AdaptAction::Type::add_provider;
      a.reason = "utilization/load above band";
      out.push_back(std::move(a));
    }
    grow_signals_ = 0;
    last_action_ = now;
  } else if (shrink_signals_ >= options_.signals_required) {
    // Drain the emptiest provider that is still reporting (a stale entry
    // is a dead node — the reaper and snapshot pruning handle those).
    const intro::SystemSnapshot::ProviderInfo* emptiest = nullptr;
    for (const auto& p : snap.providers) {
      if (p.updated + simtime::seconds(30) < now) continue;
      if (emptiest == nullptr || p.used < emptiest->used) emptiest = &p;
    }
    if (emptiest != nullptr) {
      AdaptAction a;
      a.type = AdaptAction::Type::drain_provider;
      a.provider = emptiest->node;
      a.reason = "utilization below band";
      out.push_back(std::move(a));
      shrink_signals_ = 0;
      last_action_ = now;
    }
  }
  (void)ctx;
  co_return out;
}

}  // namespace bs::core
