#include "core/protection.hpp"

#include "sec/framework.hpp"

namespace bs::core {

// bslint: allow(coro-ref-param): see module.hpp lifetime contract
sim::Task<std::vector<AdaptAction>> ProtectionModule::analyze(
    const KnowledgeBase& knowledge, AgentContext& ctx) {
  std::vector<AdaptAction> out;
  if (ctx.security == nullptr) co_return out;
  const double rejected = knowledge.current().rejected_rate;

  if (!hardened_ && rejected > options_.attack_rejected_rate) {
    AdaptAction a;
    a.type = AdaptAction::Type::set_scan_interval;
    a.duration = options_.fast_scan;
    a.reason = "rejection pressure: harden scanning";
    out.push_back(std::move(a));
    hardened_ = true;
  } else if (hardened_ && rejected < options_.attack_rejected_rate * 0.2) {
    AdaptAction a;
    a.type = AdaptAction::Type::set_scan_interval;
    a.duration = options_.normal_scan;
    a.reason = "quiet: relax scanning";
    out.push_back(std::move(a));
    hardened_ = false;
  }
  co_return out;
}

}  // namespace bs::core
