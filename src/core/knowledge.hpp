// Knowledge base of the MAPE-K loop: the introspection snapshots (current +
// bounded history) and the administrator's goal configuration, shared by all
// self-* modules.
#pragma once

#include <deque>

#include "common/config.hpp"
#include "intro/introspection.hpp"

namespace bs::core {

class KnowledgeBase {
 public:
  explicit KnowledgeBase(std::size_t max_history = 64)
      : max_history_(max_history) {}

  void update(intro::SystemSnapshot snapshot) {
    history_.push_back(snapshot);
    if (history_.size() > max_history_) history_.pop_front();
    current_ = std::move(snapshot);
  }

  [[nodiscard]] const intro::SystemSnapshot& current() const {
    return current_;
  }
  [[nodiscard]] const std::deque<intro::SystemSnapshot>& history() const {
    return history_;
  }

  /// Trend of a snapshot scalar over the last `n` snapshots: mean of the
  /// extractor over them; 0 when empty.
  template <class Fn>
  [[nodiscard]] double trend(std::size_t n, Fn extract) const {
    if (history_.empty()) return 0;
    double sum = 0;
    std::size_t count = 0;
    for (auto it = history_.rbegin();
         it != history_.rend() && count < n; ++it, ++count) {
      sum += extract(*it);
    }
    return count > 0 ? sum / static_cast<double>(count) : 0;
  }

  [[nodiscard]] Config& goals() { return goals_; }
  [[nodiscard]] const Config& goals() const { return goals_; }

 private:
  std::size_t max_history_;
  intro::SystemSnapshot current_;
  std::deque<intro::SystemSnapshot> history_;
  Config goals_;
};

}  // namespace bs::core
