#include "core/removal.hpp"

#include <algorithm>
#include <map>

namespace bs::core {

// bslint: allow(coro-ref-param): see module.hpp lifetime contract
sim::Task<std::vector<AdaptAction>> RemovalModule::analyze(
    const KnowledgeBase& knowledge, AgentContext& ctx) {
  std::vector<AdaptAction> out;
  auto blobs = co_await ctx.client->node().cluster()
                   .call<blob::ListBlobsReq, blob::ListBlobsResp>(
                       ctx.client->node(),
                       ctx.deployment->endpoints().version_manager,
                       blob::ListBlobsReq{});
  if (!blobs.ok()) co_return out;
  const SimTime now = ctx.deployment->sim().now();
  const auto& snap = knowledge.current();

  std::map<std::uint64_t, double> activity;  // read+write rate per blob
  for (const auto& b : snap.blobs) {
    activity[b.blob.value] = b.read_rate + b.write_rate;
  }

  std::size_t removals = 0;
  auto can_remove = [&] { return removals < options_.max_removals_per_loop; };

  // 1. TTL expiry of temporary blobs.
  if (options_.ttl_enabled) {
    for (const auto& d : blobs.value().blobs) {
      if (!can_remove()) break;
      if (d.ttl > 0 && d.created_at + d.ttl <= now) {
        AdaptAction a;
        a.type = AdaptAction::Type::delete_blob;
        a.blob = d.id;
        a.reason = "ttl expired";
        out.push_back(std::move(a));
        ++removals;
      }
    }
  }

  // 2. Version-history trimming.
  if (options_.keep_versions > 0) {
    for (const auto& d : blobs.value().blobs) {
      if (!can_remove()) break;
      if (d.latest.version == 0) continue;
      auto versions = co_await ctx.client->versions(d.id);
      if (!versions.ok()) continue;
      const auto& vs = versions.value();
      if (vs.size() <= options_.keep_versions) continue;
      const blob::Version keep_from =
          vs[vs.size() - options_.keep_versions].version;
      AdaptAction a;
      a.type = AdaptAction::Type::trim_blob;
      a.blob = d.id;
      a.version = keep_from;
      a.reason = "version history over budget";
      out.push_back(std::move(a));
      ++removals;
    }
  }

  // 3. Storage pressure: evict the coldest temporary blob even before its
  // TTL when the system is nearly full.
  if (snap.utilization() > options_.pressure_threshold) {
    const blob::BlobDescriptor* coldest = nullptr;
    double coldest_rate = 0;
    for (const auto& d : blobs.value().blobs) {
      if (d.ttl == 0 || d.latest.size == 0) continue;  // only temporaries
      const double rate =
          activity.count(d.id.value) ? activity.at(d.id.value) : 0.0;
      if (coldest == nullptr || rate < coldest_rate) {
        coldest = &d;
        coldest_rate = rate;
      }
    }
    if (coldest != nullptr && can_remove()) {
      AdaptAction a;
      a.type = AdaptAction::Type::delete_blob;
      a.blob = coldest->id;
      a.reason = "storage pressure eviction";
      out.push_back(std::move(a));
    }
  }
  co_return out;
}

}  // namespace bs::core
