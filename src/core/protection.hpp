// Self-protection MAPE module: binds the security framework into the
// autonomic loop. The detection engine runs autonomously; this module makes
// it *adaptive* — scans speed up while rejection pressure indicates an
// ongoing attack and relax when the system is quiet.
#pragma once

#include "core/module.hpp"

namespace bs::core {

struct ProtectionOptions {
  double attack_rejected_rate{5.0};  ///< rejections/s indicating an attack
  SimDuration fast_scan{simtime::seconds(2)};
  SimDuration normal_scan{simtime::seconds(5)};
};

class ProtectionModule final : public SelfModule {
 public:
  explicit ProtectionModule(ProtectionOptions options = ProtectionOptions())
      : options_(options) {}

  const char* name() const override { return "self_protection"; }

  // bslint: allow(coro-ref-param): knowledge and ctx live as long as
  // the agent; the control loop co_awaits analyze() in one expression
  sim::Task<std::vector<AdaptAction>> analyze(const KnowledgeBase& knowledge,
                                              AgentContext& ctx) override;

 private:
  ProtectionOptions options_;
  bool hardened_{false};
};

}  // namespace bs::core
