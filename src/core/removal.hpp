// Self-optimization through configurable data-removal strategies (§V):
// version-history trimming (keep the last K versions), TTL expiry of
// temporary blobs, and LRU eviction of expired/cold temporary data under
// storage pressure.
#pragma once

#include "core/module.hpp"

namespace bs::core {

struct RemovalOptions {
  /// Keep at most this many published versions per blob (0 = unlimited).
  std::size_t keep_versions{0};
  bool ttl_enabled{true};
  /// Under this much utilization, expired temporaries are the only
  /// candidates; above it, cold temporary blobs are evicted LRU-style.
  double pressure_threshold{0.85};
  std::size_t max_removals_per_loop{8};
};

class RemovalModule final : public SelfModule {
 public:
  explicit RemovalModule(RemovalOptions options = RemovalOptions())
      : options_(options) {}

  const char* name() const override { return "self_optimization.removal"; }

  // bslint: allow(coro-ref-param): knowledge and ctx live as long as
  // the agent; the control loop co_awaits analyze() in one expression
  sim::Task<std::vector<AdaptAction>> analyze(const KnowledgeBase& knowledge,
                                              AgentContext& ctx) override;

 private:
  RemovalOptions options_;
};

}  // namespace bs::core
