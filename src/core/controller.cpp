#include "core/controller.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bs::core {

// ---------------------------------------------------------------- Executor

rpc::CallOptions Executor::opts() const {
  rpc::CallOptions o;
  o.timeout = simtime::seconds(60);
  o.client = ClientId{0};  // the autonomic manager's reserved identity
  return o;
}

sim::Task<Result<blob::TreeNode>> Executor::leaf_of(blob::ChunkKey key) {
  blob::RemoteMetadataStore store(
      *ctx_.node, ctx_.deployment->endpoints().metadata_providers,
      ClientId{0}, simtime::seconds(30));
  co_return co_await store.get(
      blob::NodeKey{key.blob, key.version, key.index, 1});
}

sim::Task<Result<void>> Executor::put_leaf(blob::ChunkKey key,
                                           blob::TreeNode node) {
  blob::RemoteMetadataStore store(
      *ctx_.node, ctx_.deployment->endpoints().metadata_providers,
      ClientId{0}, simtime::seconds(30));
  co_return co_await store.put(
      blob::NodeKey{key.blob, key.version, key.index, 1}, std::move(node));
}

sim::Task<Result<void>> Executor::execute(AdaptAction action) {
  Result<void> result = ok_result();
  switch (action.type) {
    case AdaptAction::Type::add_provider:
      result = co_await add_provider();
      break;
    case AdaptAction::Type::drain_provider:
      result = co_await drain_provider(action.provider);
      break;
    case AdaptAction::Type::repair_chunk:
      result = co_await repair_chunk(action.chunk, action.replication);
      break;
    case AdaptAction::Type::set_replication: {
      blob::SetReplicationReq req;
      req.blob = action.blob;
      req.replication = action.replication;
      auto r = co_await ctx_.node->cluster()
                   .call<blob::SetReplicationReq, blob::SetReplicationResp>(
                       *ctx_.node,
                       ctx_.deployment->endpoints().version_manager,
                       req, opts());
      result = r.ok() ? ok_result() : Result<void>{r.error()};
      break;
    }
    case AdaptAction::Type::trim_blob:
      result = co_await trim_blob(action.blob, action.version);
      break;
    case AdaptAction::Type::delete_blob:
      result = co_await delete_blob(action.blob);
      break;
    case AdaptAction::Type::set_scan_interval:
      if (ctx_.security != nullptr) {
        ctx_.security->engine().set_scan_interval(action.duration);
      }
      break;
  }
  if (result.ok()) {
    ++executed_;
    obs::count("mape.actions_executed");
  } else {
    ++failed_;
    obs::count("mape.actions_failed");
    BS_WARN("core", "action %s failed: %s", action.type_name(),
            result.error().to_string().c_str());
  }
  co_return result;
}

sim::Task<Result<void>> Executor::add_provider() {
  blob::DataProvider* p = ctx_.deployment->add_provider();
  if (provider_added_) provider_added_(*p);
  co_return ok_result();
}

sim::Task<Result<void>> Executor::migrate_chunk(blob::ChunkKey key,
                                                NodeId from) {
  auto leaf = co_await leaf_of(key);
  if (!leaf.ok()) co_return leaf.error();
  blob::TreeNode node = std::move(leaf).value();
  auto& replicas = node.chunk.replicas;
  if (std::find(replicas.begin(), replicas.end(), from) == replicas.end()) {
    co_return ok_result();  // this replica list no longer references `from`
  }
  auto& cluster = ctx_.node->cluster();

  // Pick a destination that does not already hold the chunk.
  blob::AllocateReq alloc;
  alloc.blob = key.blob;
  alloc.version = key.version;
  alloc.chunk_count = 1;
  alloc.chunk_size = node.chunk.size;
  alloc.replication = 1;
  alloc.exclude = replicas;
  auto placement =
      co_await cluster.call<blob::AllocateReq, blob::AllocateResp>(
          *ctx_.node, ctx_.deployment->endpoints().provider_manager,
          std::move(alloc), opts());
  if (!placement.ok()) co_return placement.error();
  const NodeId target = placement.value().placements[0][0];

  blob::ReplicateChunkReq rep;
  rep.key = key;
  rep.target = target;
  auto copied =
      co_await cluster.call<blob::ReplicateChunkReq, blob::ReplicateChunkResp>(
          *ctx_.node, from, rep, opts());
  if (!copied.ok()) co_return copied.error();

  std::replace(replicas.begin(), replicas.end(), from, target);
  if (auto r = co_await put_leaf(key, std::move(node)); !r.ok()) {
    co_return r.error();
  }
  blob::RemoveChunkReq rm;
  rm.key = key;
  (void)co_await cluster.call<blob::RemoveChunkReq, blob::RemoveChunkResp>(
      *ctx_.node, from, rm, opts());
  co_return ok_result();
}

sim::Task<Result<void>> Executor::drain_provider(NodeId provider) {
  auto& cluster = ctx_.node->cluster();
  // 1. No new allocations.
  blob::SetDecommissionReq dec;
  dec.provider = provider;
  (void)co_await cluster
      .call<blob::SetDecommissionReq, blob::SetDecommissionResp>(
          *ctx_.node, ctx_.deployment->endpoints().provider_manager, dec,
          opts());
  // 2. Move every chunk elsewhere (updating the metadata leaves). A dead
  // provider has nothing reachable to migrate; the replication module
  // repairs its chunks from surviving replicas instead.
  auto chunks = co_await cluster.call<blob::ListChunksReq, blob::ListChunksResp>(
      *ctx_.node, provider, blob::ListChunksReq{}, opts());
  if (chunks.ok()) {
    for (const auto& key : chunks.value().keys) {
      if (auto r = co_await migrate_chunk(key, provider); !r.ok()) {
        BS_WARN("core", "drain: chunk migration failed: %s",
                r.error().to_string().c_str());
      }
    }
  } else if (chunks.code() != Errc::unavailable) {
    co_return chunks.error();
  }
  // 3. Retire.
  blob::DeregisterProviderReq dereg;
  dereg.provider = provider;
  (void)co_await cluster
      .call<blob::DeregisterProviderReq, blob::DeregisterProviderResp>(
          *ctx_.node, ctx_.deployment->endpoints().provider_manager, dereg,
          opts());
  ctx_.deployment->remove_provider(provider);
  co_return ok_result();
}

sim::Task<Result<void>> Executor::repair_chunk(blob::ChunkKey key,
                                               std::uint32_t replication,
                                               NodeId /*exclude*/) {
  auto leaf = co_await leaf_of(key);
  if (!leaf.ok()) co_return leaf.error();
  blob::TreeNode node = std::move(leaf).value();
  auto& cluster = ctx_.node->cluster();

  std::vector<NodeId> alive;
  for (NodeId r : node.chunk.replicas) {
    rpc::Node* n = cluster.node(r);
    if (n != nullptr && n->up()) alive.push_back(r);
  }
  if (alive.empty()) {
    co_return Error{Errc::unavailable, "no live replica to repair from"};
  }
  if (alive.size() > replication) {
    // Shrink: demand faded. Update the leaf first so readers stop being
    // directed at the dropped copies, then reclaim them.
    std::vector<NodeId> keep(alive.begin(),
                             alive.begin() + replication);
    std::vector<NodeId> drop(alive.begin() + replication, alive.end());
    node.chunk.replicas = keep;
    if (auto r = co_await put_leaf(key, std::move(node)); !r.ok()) {
      co_return r.error();
    }
    for (NodeId victim : drop) {
      blob::RemoveChunkReq rm;
      rm.key = key;
      (void)co_await cluster.call<blob::RemoveChunkReq,
                                  blob::RemoveChunkResp>(*ctx_.node, victim,
                                                         rm, opts());
    }
    co_return ok_result();
  }
  if (alive.size() == replication) {
    if (alive.size() != node.chunk.replicas.size()) {
      node.chunk.replicas = alive;  // shed dead entries
      co_return co_await put_leaf(key, std::move(node));
    }
    co_return ok_result();
  }

  const std::uint32_t needed =
      replication - static_cast<std::uint32_t>(alive.size());
  blob::AllocateReq alloc;
  alloc.blob = key.blob;
  alloc.version = key.version;
  alloc.chunk_count = 1;
  alloc.chunk_size = node.chunk.size;
  alloc.replication = needed;
  alloc.exclude = alive;
  auto placement =
      co_await cluster.call<blob::AllocateReq, blob::AllocateResp>(
          *ctx_.node, ctx_.deployment->endpoints().provider_manager,
          std::move(alloc), opts());
  if (!placement.ok()) co_return placement.error();

  std::vector<NodeId> fresh = alive;
  for (NodeId target : placement.value().placements[0]) {
    blob::ReplicateChunkReq rep;
    rep.key = key;
    rep.target = target;
    auto copied = co_await cluster.call<blob::ReplicateChunkReq,
                                        blob::ReplicateChunkResp>(
        *ctx_.node, alive[0], rep, opts());
    if (copied.ok()) fresh.push_back(target);
  }
  node.chunk.replicas = fresh;
  co_return co_await put_leaf(key, std::move(node));
}

sim::Task<Result<void>> Executor::trim_blob(BlobId blob,
                                            blob::Version keep_from) {
  auto trimmed = co_await ctx_.client->trim(blob, keep_from);
  if (!trimmed.ok()) co_return trimmed.error();
  auto& cluster = ctx_.node->cluster();
  for (const auto& key : trimmed.value().unreferenced) {
    auto leaf = co_await leaf_of(key);
    if (!leaf.ok()) continue;  // metadata already gone; nothing to free
    for (NodeId replica : leaf.value().chunk.replicas) {
      blob::RemoveChunkReq rm;
      rm.key = key;
      (void)co_await cluster
          .call<blob::RemoveChunkReq, blob::RemoveChunkResp>(
              *ctx_.node, replica, rm, opts());
    }
  }
  // Metadata GC: drop the tree nodes no kept snapshot can reach.
  blob::RemoteMetadataStore store(
      *ctx_.node, ctx_.deployment->endpoints().metadata_providers,
      ClientId{0}, simtime::seconds(30));
  for (const auto& node_key : trimmed.value().removable_nodes) {
    blob::MetaRemoveReq rm;
    rm.key = node_key;
    (void)co_await cluster.call<blob::MetaRemoveReq, blob::MetaRemoveResp>(
        *ctx_.node, store.provider_for(node_key), rm, opts());
  }
  co_return ok_result();
}

sim::Task<Result<void>> Executor::delete_blob(BlobId blob) {
  // Hoisted out of the leading if-condition: GCC 12 lays an if-condition
  // await temporary out before _Coro_resume_fn when it opens the frame
  // (coro-first-await-if; tools/frame_scan checks the compiled binaries).
  auto removed = co_await ctx_.client->remove(blob);
  if (!removed.ok()) {
    co_return removed.error();
  }
  auto& cluster = ctx_.node->cluster();
  for (auto& p : ctx_.deployment->providers()) {
    if (!p->node().up()) continue;
    blob::RemoveBlobChunksReq req;
    req.blob = blob;
    (void)co_await cluster
        .call<blob::RemoveBlobChunksReq, blob::RemoveBlobChunksResp>(
            *ctx_.node, p->id(), req, opts());
  }
  co_return ok_result();
}

// ------------------------------------------------------ AutonomicController

AutonomicController::AutonomicController(
    blob::Deployment& deployment, intro::IntrospectionService& introspection,
    sec::SecurityFramework* security, ControllerOptions options)
    : dep_(deployment), options_(options), executor_(ctx_) {
  ctx_.deployment = &deployment;
  ctx_.introspection = &introspection;
  ctx_.security = security;
  // The autonomic manager gets its own node + (reserved id 0) client.
  blob::ClientConfig cfg;
  ctx_.client = deployment.add_client(cfg);
  ctx_.node = &ctx_.client->node();
}

void AutonomicController::add_module(std::unique_ptr<SelfModule> module) {
  modules_.push_back(std::move(module));
}

void AutonomicController::start() {
  if (running_) return;
  running_ = true;
  dep_.sim().spawn(loop());
}

sim::Task<void> AutonomicController::loop() {
  while (running_) {
    co_await dep_.sim().delay(options_.loop_interval);
    if (!running_) break;
    co_await iterate();
  }
}

sim::Task<void> AutonomicController::iterate() {
  ++iterations_;
  obs::count("mape.iterations");
  obs::TraceSink* ts = obs::sink();
  obs::Span iter_span;
  if (ts) {
    iter_span = ts->span("mape.iterate", "core", 0,
                         {"iteration", static_cast<std::int64_t>(iterations_)});
  }
  // Monitor. Enrich the monitoring snapshot with the provider manager's
  // health tally so analysis modules see failure-driven state too.
  auto snap = ctx_.introspection->snapshot();
  const auto health = dep_.provider_manager().health_counts();
  snap.providers_alive = health.alive;
  snap.providers_suspect = health.suspect;
  snap.providers_dead = health.dead;
  const SimTime now = dep_.sim().now();
  obs::gauge_set("core.providers_alive", static_cast<double>(health.alive),
                 now);
  obs::gauge_set("core.providers_suspect",
                 static_cast<double>(health.suspect), now);
  obs::gauge_set("core.providers_dead", static_cast<double>(health.dead),
                 now);
  knowledge_.update(std::move(snap));
  // Analyze + Plan.
  std::vector<AdaptAction> plan;
  for (auto& module : modules_) {
    auto actions = co_await module->analyze(knowledge_, ctx_);
    for (auto& a : actions) {
      if (plan.size() >= options_.max_actions_per_loop) break;
      plan.push_back(std::move(a));
    }
  }
  // Execute.
  for (const auto& action : plan) {
    auto r = co_await executor_.execute(action);
    log_.push_back(ExecutedAction{dep_.sim().now(), action, r.ok()});
    if (ts) {
      ts->instant("mape.action", "core", iter_span.id(), action.type_name(),
                  {"ok", r.ok() ? 1 : 0});
    }
    BS_INFO("core", "executed %s (%s): %s", action.type_name(),
            action.reason.c_str(), r.ok() ? "ok" : "failed");
  }
  iter_span.end("ok");
}

}  // namespace bs::core
