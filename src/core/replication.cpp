#include "core/replication.hpp"

#include <algorithm>
#include <cmath>

namespace bs::core {

std::uint32_t ReplicationModule::desired_replication(
    std::uint32_t base, double read_rate) const {
  const auto bonus = static_cast<std::uint32_t>(
      read_rate / options_.hot_read_rate);
  return std::min(options_.max_replication, base + bonus);
}

// bslint: allow(coro-ref-param): see module.hpp lifetime contract
sim::Task<std::vector<AdaptAction>> ReplicationModule::analyze(
    const KnowledgeBase& knowledge, AgentContext& ctx) {
  std::vector<AdaptAction> out;
  auto blobs = co_await ctx.client->node().cluster()
                   .call<blob::ListBlobsReq, blob::ListBlobsResp>(
                       ctx.client->node(),
                       ctx.deployment->endpoints().version_manager,
                       blob::ListBlobsReq{});
  if (!blobs.ok()) co_return out;
  const auto& list = blobs.value().blobs;
  if (list.empty()) co_return out;

  // Read-rate map from the introspection snapshot.
  std::map<std::uint64_t, double> read_rate;
  for (const auto& b : knowledge.current().blobs) {
    read_rate[b.blob.value] = b.read_rate;
  }

  blob::RemoteMetadataStore store(
      *ctx.node, ctx.deployment->endpoints().metadata_providers, ClientId{0},
      simtime::seconds(30));
  auto& cluster = ctx.node->cluster();

  std::size_t scanned = 0;
  std::size_t repairs = 0;
  for (std::size_t i = 0;
       i < list.size() && scanned < options_.max_blobs_per_loop; ++i) {
    const auto& d = list[(scan_cursor_ + i) % list.size()];
    if (d.latest.version == 0) continue;
    ++scanned;

    const double rate = read_rate.count(d.id.value)
                            ? read_rate.at(d.id.value)
                            : 0.0;
    // The creation-time replication is the floor; read heat adds to it and
    // the degree falls back when demand fades.
    const std::uint32_t desired =
        desired_replication(d.base_replication, rate);
    if (desired != d.replication) {
      AdaptAction a;
      a.type = AdaptAction::Type::set_replication;
      a.blob = d.id;
      a.replication = desired;
      a.reason = rate > 0 ? "read-hot blob" : "demand dropped";
      out.push_back(std::move(a));
    }

    // Health scan of the latest version's leaves.
    auto leaves = co_await blob::meta_ops::collect(
        cluster.sim(), store, d.id, d.latest.version, d.latest.root_chunks,
        0, d.latest.root_chunks);
    if (!leaves.ok()) continue;
    for (const auto& leaf : leaves.value()) {
      if (leaf.hole) continue;
      std::size_t alive = 0;
      for (NodeId r : leaf.chunk.replicas) {
        rpc::Node* n = cluster.node(r);
        if (n != nullptr && n->up()) ++alive;
      }
      // Mismatch in either direction: under-replicated (failures or a
      // raised target) or over-replicated (demand faded).
      const bool mismatch = alive != desired ||
                            alive < leaf.chunk.replicas.size();
      if (mismatch && alive > 0 &&
          repairs < options_.max_repairs_per_loop) {
        AdaptAction a;
        a.type = AdaptAction::Type::repair_chunk;
        a.chunk = leaf.chunk.key;
        a.replication = desired;
        a.reason = "under-replicated chunk";
        out.push_back(std::move(a));
        ++repairs;
      }
    }
  }
  scan_cursor_ = (scan_cursor_ + scanned) % std::max<std::size_t>(1, list.size());
  co_return out;
}

}  // namespace bs::core
