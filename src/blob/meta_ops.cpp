#include "blob/meta_ops.hpp"

#include <algorithm>
#include <cassert>

#include "sim/sync.hpp"

namespace bs::blob::meta_ops {

namespace {

/// Latest extent with version <= vmax overlapping chunks [lo, lo+count).
const WriteExtent* latest_overlapping(std::span<const WriteExtent> history,
                                      Version vmax, std::uint64_t lo,
                                      std::uint64_t count) {
  const WriteExtent* best = nullptr;
  for (const auto& w : history) {
    if (w.version > vmax || w.version == kInvalidVersion) continue;
    if (!w.overlaps(lo, count)) continue;
    if (best == nullptr || w.version > best->version) best = &w;
  }
  return best;
}

}  // namespace

Version subtree_version(std::span<const WriteExtent> history, Version vmax,
                        std::uint64_t lo, std::uint64_t count) {
  const WriteExtent* w = latest_overlapping(history, vmax, lo, count);
  return w != nullptr ? w->version : kInvalidVersion;
}

namespace {

struct BuildCtx {
  BlobId blob;
  const WriteExtent* w;
  std::span<const ChunkDescriptor> leaves;
  std::span<const WriteExtent> history;
  std::vector<std::pair<NodeKey, TreeNode>>* out;
};

// Resolves the version reference for subtree [lo, lo+count) in the new
// tree, emitting any nodes version v must own:
//  * subtrees the write touches get fresh nodes down to the leaves;
//  * untouched subtrees are borrowed from the latest earlier version —
//    unless that version's whole tree is *shorter* than the subtree (the
//    root grew by 2+ levels past it), in which case v emits a "bridge"
//    node that descends toward the old root;
//  * never-written subtrees are holes (kInvalidVersion).
Version ref_rec(const BuildCtx& ctx, std::uint64_t lo, std::uint64_t count) {
  const Version v = ctx.w->version;
  const bool in_write = ctx.w->overlaps(lo, count);
  if (!in_write) {
    const WriteExtent* prev =
        latest_overlapping(ctx.history, v - 1, lo, count);
    if (prev == nullptr) return kInvalidVersion;
    // Aligned pow2 ranges nest: either this range fits inside prev's tree
    // (borrow its node directly) or it strictly contains it (bridge).
    if (!(lo == 0 && count > prev->root_chunks)) return prev->version;
  }
  NodeKey key{ctx.blob, v, lo, count};
  TreeNode node;
  if (count == 1) {
    // A bridge can never reach a leaf (a tree root covers >= 1 chunk), so
    // arriving here means the write owns this chunk.
    assert(in_write);
    node.leaf = true;
    assert(lo >= ctx.w->first_chunk &&
           lo < ctx.w->first_chunk + ctx.w->chunk_count);
    node.chunk = ctx.leaves[lo - ctx.w->first_chunk];
  } else {
    const std::uint64_t half = count / 2;
    node.left_version = ref_rec(ctx, lo, half);
    node.right_version = ref_rec(ctx, lo + half, half);
  }
  ctx.out->emplace_back(key, std::move(node));
  return v;
}

}  // namespace

std::vector<std::pair<NodeKey, TreeNode>> build_nodes(
    BlobId blob, const WriteExtent& w,
    std::span<const ChunkDescriptor> leaves,
    std::span<const WriteExtent> history, std::uint64_t root_chunks) {
  assert(leaves.size() == w.chunk_count);
  assert(root_chunks == next_pow2(root_chunks));
  assert(w.first_chunk + w.chunk_count <= root_chunks);
  assert(w.chunk_count > 0);
  std::vector<std::pair<NodeKey, TreeNode>> out;
  // 2 * chunk_count is a good upper-bound guess for the path-closed set.
  out.reserve(2 * w.chunk_count + 8);
  BuildCtx ctx{blob, &w, leaves, history, &out};
  const Version root_ref = ref_rec(ctx, 0, root_chunks);
  assert(root_ref == w.version);
  (void)root_ref;
  return out;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> node_ranges(
    const WriteExtent& w, std::span<const WriteExtent> history,
    std::uint64_t root_chunks) {
  // Reuse the build recursion with dummy leaves; collect emitted keys.
  std::vector<ChunkDescriptor> leaves(w.chunk_count);
  for (std::uint64_t i = 0; i < w.chunk_count; ++i) {
    leaves[i].key = ChunkKey{BlobId{0}, w.version, w.first_chunk + i};
  }
  auto nodes = build_nodes(BlobId{0}, w, leaves, history, root_chunks);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  out.reserve(nodes.size());
  for (const auto& [key, node] : nodes) {
    out.emplace_back(key.offset_chunks, key.size_chunks);
  }
  return out;
}

// bslint: allow(coro-ref-param): see meta_ops.hpp — awaited immediately
sim::Task<Result<std::vector<LeafRef>>> collect(
    sim::Simulation& sim, MetadataStore& store, BlobId blob,
    Version root_version, std::uint64_t root_chunks, std::uint64_t lo,
    std::uint64_t count) {
  std::vector<LeafRef> result;
  if (count == 0) co_return result;

  struct Pending {
    NodeKey key;
    Result<TreeNode> node{Errc::internal};
  };

  // Frontier of subtrees still to resolve at the current level.
  std::vector<Pending> frontier;
  frontier.push_back(
      {NodeKey{blob, root_version, 0, root_chunks}, Errc::internal});

  auto emit_holes = [&](std::uint64_t range_lo, std::uint64_t range_count) {
    const std::uint64_t from = std::max(range_lo, lo);
    const std::uint64_t to = std::min(range_lo + range_count, lo + count);
    for (std::uint64_t i = from; i < to; ++i) {
      result.push_back(LeafRef{i, true, {}});
    }
  };

  while (!frontier.empty()) {
    // Fetch this level's nodes in parallel.
    sim::WaitGroup wg(sim);
    for (auto& p : frontier) {
      wg.launch([](MetadataStore& st, Pending& slot) -> sim::Task<void> {
        slot.node = co_await st.get(slot.key);
      }(store, p));
    }
    co_await wg.wait();

    std::vector<Pending> next;
    for (auto& p : frontier) {
      if (!p.node.ok()) co_return p.node.error();
      const TreeNode& n = p.node.value();
      if (p.key.is_leaf()) {
        result.push_back(LeafRef{p.key.offset_chunks, false, n.chunk});
        continue;
      }
      const std::uint64_t half = p.key.size_chunks / 2;
      const std::uint64_t l_lo = p.key.offset_chunks;
      const std::uint64_t r_lo = p.key.offset_chunks + half;
      auto descend = [&](std::uint64_t child_lo, Version child_version) {
        // Skip subtrees outside the query range.
        if (child_lo + half <= lo || child_lo >= lo + count) return;
        if (child_version == kInvalidVersion) {
          emit_holes(child_lo, half);
          return;
        }
        // Built in place (emplace + assign) rather than pushed as a
        // temporary: GCC 12 issues a spurious -Wmaybe-uninitialized for
        // the variant inside the moved-from temporary's Result.
        next.emplace_back();
        next.back().key = NodeKey{blob, child_version, child_lo, half};
      };
      descend(l_lo, n.left_version);
      descend(r_lo, n.right_version);
    }
    frontier = std::move(next);
  }

  std::sort(result.begin(), result.end(),
            [](const LeafRef& a, const LeafRef& b) {
              return a.chunk_index < b.chunk_index;
            });
  co_return result;
}

}  // namespace bs::blob::meta_ops
