#include "blob/data_provider.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bs::blob {

DataProvider::DataProvider(rpc::Node& node, Options options)
    : node_(node), options_(options), journal_(options.journal) {
  register_handlers();
  node_.add_crash_listener([this](const rpc::CrashOptions& c) {
    stop_heartbeats();
    if (journal_.enabled()) {
      // The in-memory image dies with the process; what survives is the
      // journal's durable prefix, replayed (at disk cost) on restart.
      wipe();
      journal_.crash(c.lose_storage, c.torn_tail);
      recovering_ = true;
    } else if (c.lose_storage) {
      wipe();
    }
  });
  node_.add_restart_listener([this] {
    if (journal_.enabled()) {
      node_.cluster().sim().spawn(recover(node_.incarnation()));
    } else if (pm_node_.valid()) {
      // Re-register with the last known manager; the registration carries
      // the surviving store (or a zeroed one after a wipe).
      start_heartbeats(pm_node_);
    }
  });
}

std::uint64_t DataProvider::record_bytes(const JournalRecord& rec) {
  // Put records carry the data pages (WAL write amplification); removes
  // are a key tombstone.
  return rec.kind == JournalRecord::Kind::put ? 48 + rec.payload.size : 40;
}

void DataProvider::apply_record(const JournalRecord& rec) {
  if (rec.kind == JournalRecord::Kind::put) {
    auto [it, inserted] = chunks_.emplace(rec.key, rec.payload);
    if (inserted) used_ += rec.payload.size;
  } else if (auto it = chunks_.find(rec.key); it != chunks_.end()) {
    used_ -= it->second.size;
    chunks_.erase(it);
  }
}

std::vector<Journal<DataProvider::JournalRecord>::Entry>
DataProvider::encode_checkpoint() const {
  // Checkpoints are the chunk *index* (48 bytes per chunk): reopening a
  // checkpointed store scans the index, not the data pages. Encoded over
  // the sorted key snapshot so the image is deterministic.
  std::vector<Journal<JournalRecord>::Entry> image;
  image.reserve(chunks_.size());
  for (const ChunkKey& key : chunk_keys()) {
    JournalRecord rec;
    rec.kind = JournalRecord::Kind::put;
    rec.key = key;
    rec.payload = chunks_.at(key);
    image.push_back({std::move(rec), 48});
  }
  return image;
}

void DataProvider::maybe_checkpoint() {
  if (!journal_.checkpoint_due()) return;
  if (!journal_.install_checkpoint(encode_checkpoint())) return;
  obs::count("journal.checkpoints");
  charge_checkpoint_write(node_, journal_.checkpoint_bytes());
}

sim::Task<void> DataProvider::recover(std::uint64_t incarnation) {
  auto& sim = node_.cluster().sim();
  const SimTime t0 = sim.now();
  const ReplayPlan plan = journal_.replay_plan();
  obs::SpanId span = 0;
  if (auto* ts = obs::sink()) {
    span = ts->begin_span(
        "recovery.replay", "recovery", 0,
        {"node", static_cast<std::int64_t>(node_.id().value)},
        {"records", static_cast<std::int64_t>(plan.total_records())});
  }
  if (!co_await journal_replay_cost(node_, journal_.options().disk, plan) ||
      node_.incarnation() != incarnation) {
    // Crashed again mid-replay; the next restart starts recovery over.
    if (auto* ts = obs::sink()) ts->end_span(span, "aborted");
    co_return;
  }
  const auto outcome = journal_.finish_recovery();
  if (outcome.torn_bytes > 0) {
    ++rec_stats_.torn_tails_truncated;
    obs::count("recovery.torn_tails");
  }
  if (outcome.wiped) ++rec_stats_.cold_starts;
  journal_.replay([this](const JournalRecord& rec) { apply_record(rec); });
  recovering_ = false;
  ++rec_stats_.recoveries;
  rec_stats_.replay_bytes += plan.total_bytes();
  rec_stats_.replay_records += plan.total_records();
  rec_stats_.last_time_to_readable = sim.now() - t0;
  rec_stats_.total_time_to_readable += rec_stats_.last_time_to_readable;
  obs::count("recovery.replays");
  obs::count("recovery.replay_bytes", plan.total_bytes());
  obs::count("recovery.replay_records", plan.total_records());
  obs::observe("recovery.time_to_readable_ms",
               static_cast<double>(rec_stats_.last_time_to_readable) /
                   static_cast<double>(simtime::kNanosPerMilli),
               0.0, 60000.0, 120);
  if (auto* ts = obs::sink()) ts->end_span(span, "ok");
  BS_INFO("recovery", "node %llu readable after %llu records / %llu bytes",
          (unsigned long long)node_.id().value,
          (unsigned long long)plan.total_records(),
          (unsigned long long)plan.total_bytes());
  if (used_ > 0) notify_storage(static_cast<std::int64_t>(used_));
  if (pm_node_.valid()) start_heartbeats(pm_node_);
}

void DataProvider::register_handlers() {
  node_.serve<PutChunkReq, PutChunkResp>(
      [this](const PutChunkReq& req, const rpc::Envelope& env) {
        return handle_put(req, env.client);
      });
  node_.serve<GetChunkReq, GetChunkResp>(
      [this](const GetChunkReq& req, const rpc::Envelope& env) {
        return handle_get(req, env.client);
      });
  node_.serve<RemoveChunkReq, RemoveChunkResp>(
      [this](const RemoveChunkReq& req, const rpc::Envelope&) {
        return handle_remove(req);
      });
  node_.serve<HasChunkReq, HasChunkResp>(
      [this](const HasChunkReq& req,
             const rpc::Envelope&) -> sim::Task<Result<HasChunkResp>> {
        if (recovering_) {
          co_return Error{Errc::unavailable, "store recovering"};
        }
        HasChunkResp resp;
        auto it = chunks_.find(req.key);
        if (it != chunks_.end()) {
          resp.present = true;
          resp.size = it->second.size;
        }
        co_return resp;
      });
  node_.serve<ReplicateChunkReq, ReplicateChunkResp>(
      [this](const ReplicateChunkReq& req, const rpc::Envelope&) {
        return handle_replicate(req);
      });
  node_.serve<RemoveBlobChunksReq, RemoveBlobChunksResp>(
      [this](const RemoveBlobChunksReq& req, const rpc::Envelope&)
          -> sim::Task<Result<RemoveBlobChunksResp>> {
        if (recovering_) {
          co_return Error{Errc::unavailable, "store recovering"};
        }
        RemoveBlobChunksResp resp;
        std::vector<ChunkKey> removed;
        // bslint: allow(det-unordered-iter): erase sweep accumulating
        // order-insensitive sums; the removed-key set is sorted before use
        for (auto it = chunks_.begin(); it != chunks_.end();) {
          if (it->first.blob == req.blob) {
            resp.bytes_freed += it->second.size;
            ++resp.chunks_removed;
            used_ -= it->second.size;
            removed.push_back(it->first);
            it = chunks_.erase(it);
          } else {
            ++it;
          }
        }
        if (journal_.enabled() && !removed.empty()) {
          std::sort(removed.begin(), removed.end());
          std::uint64_t bytes = 0;
          for (const ChunkKey& key : removed) {
            JournalRecord rec;
            rec.kind = JournalRecord::Kind::remove;
            rec.key = key;
            bytes += record_bytes(rec);
            journal_.append(std::move(rec), record_bytes(rec));
          }
          const std::uint64_t seq = journal_.tail_seq();
          if (!co_await journal_fsync(node_, journal_.options().disk,
                                      bytes)) {
            co_return Error{Errc::unavailable, "crashed before commit"};
          }
          journal_.seal(seq);
          maybe_checkpoint();
        }
        if (resp.bytes_freed > 0) {
          notify_storage(-static_cast<std::int64_t>(resp.bytes_freed));
        }
        co_return resp;
      });

  node_.serve<ProviderStatusReq, ProviderStatusResp>(
      [this](const ProviderStatusReq&,
             const rpc::Envelope&) -> sim::Task<Result<ProviderStatusResp>> {
        if (recovering_) {
          co_return Error{Errc::unavailable, "store recovering"};
        }
        ProviderStatusResp resp;
        resp.capacity = options_.capacity;
        resp.used = used_;
        resp.chunks = chunks_.size();
        co_return resp;
      });
  node_.serve<ListChunksReq, ListChunksResp>(
      [this](const ListChunksReq&,
             const rpc::Envelope&) -> sim::Task<Result<ListChunksResp>> {
        if (recovering_) {
          co_return Error{Errc::unavailable, "store recovering"};
        }
        ListChunksResp resp;
        resp.keys = chunk_keys();
        co_return resp;
      });
}

std::vector<ChunkKey> DataProvider::chunk_keys() const {
  std::vector<ChunkKey> keys;
  keys.reserve(chunks_.size());
  // bslint: allow(det-unordered-iter): snapshot is sorted before returning
  for (const auto& [k, v] : chunks_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  return keys;
}

void DataProvider::notify_storage(std::int64_t delta) {
  if (!storage_observer_) return;
  StorageEvent ev;
  ev.node = node_.id();
  ev.used = used_;
  ev.capacity = options_.capacity;
  ev.chunks = chunks_.size();
  ev.delta = delta;
  storage_observer_(ev);
}

void DataProvider::notify_access(const ChunkKey& key, std::uint64_t bytes,
                                 bool write, ClientId client) {
  if (!access_observer_) return;
  AccessEvent ev;
  ev.key = key;
  ev.bytes = bytes;
  ev.write = write;
  ev.client = client;
  access_observer_(ev);
}

sim::Task<Result<PutChunkResp>> DataProvider::handle_put(PutChunkReq req,
                                                         ClientId client) {
  if (recovering_) co_return Error{Errc::unavailable, "store recovering"};
  auto it = chunks_.find(req.key);
  if (it != chunks_.end()) {
    // Chunks are immutable: a re-put (retry, abort-repair) is idempotent.
    co_return PutChunkResp{};
  }
  if (used_ + req.payload.size > options_.capacity) {
    co_return Error{Errc::out_of_space, "provider full"};
  }
  used_ += req.payload.size;
  stores_.add(node_.cluster().sim().now(),
              static_cast<double>(req.payload.size));
  chunks_.emplace(req.key, req.payload);
  if (journal_.enabled()) {
    JournalRecord rec;
    rec.kind = JournalRecord::Kind::put;
    rec.key = req.key;
    rec.payload = req.payload;
    const std::uint64_t bytes = record_bytes(rec);
    const std::uint64_t seq = journal_.append(std::move(rec), bytes);
    if (!co_await journal_fsync(node_, journal_.options().disk, bytes)) {
      // Crashed before the commit barrier: the put was never durable and
      // the crash already rolled the in-memory image back.
      co_return Error{Errc::unavailable, "crashed before commit"};
    }
    journal_.seal(seq);
    maybe_checkpoint();
  }
  notify_storage(static_cast<std::int64_t>(req.payload.size));
  notify_access(req.key, req.payload.size, /*write=*/true, client);
  co_return PutChunkResp{};
}

sim::Task<Result<GetChunkResp>> DataProvider::handle_get(GetChunkReq req,
                                                         ClientId client) {
  if (recovering_) co_return Error{Errc::unavailable, "store recovering"};
  auto it = chunks_.find(req.key);
  if (it == chunks_.end()) {
    co_return Error{Errc::not_found, "chunk not stored here"};
  }
  const Payload& stored = it->second;
  if (req.offset >= stored.size && stored.size > 0) {
    co_return Error{Errc::invalid_argument, "chunk read past end"};
  }
  const std::uint64_t len =
      std::min(req.length, stored.size - req.offset);
  notify_access(req.key, len, /*write=*/false, client);
  GetChunkResp resp;
  if (req.offset == 0 && len == stored.size) {
    resp.payload = stored;
  } else {
    resp.payload.size = len;
    resp.payload.checksum = stored.checksum;  // whole-chunk checksum
    if (stored.bytes) {
      auto slice = std::make_shared<std::vector<std::uint8_t>>(
          stored.bytes->begin() + static_cast<std::ptrdiff_t>(req.offset),
          stored.bytes->begin() + static_cast<std::ptrdiff_t>(req.offset + len));
      resp.payload.checksum = Payload::checksum_of(*slice);
      resp.payload.bytes = std::move(slice);
    }
  }
  co_return resp;
}

sim::Task<Result<RemoveChunkResp>> DataProvider::handle_remove(
    RemoveChunkReq req) {
  if (recovering_) co_return Error{Errc::unavailable, "store recovering"};
  auto it = chunks_.find(req.key);
  if (it == chunks_.end()) co_return RemoveChunkResp{false};
  used_ -= it->second.size;
  const auto delta = -static_cast<std::int64_t>(it->second.size);
  chunks_.erase(it);
  if (journal_.enabled()) {
    JournalRecord rec;
    rec.kind = JournalRecord::Kind::remove;
    rec.key = req.key;
    const std::uint64_t bytes = record_bytes(rec);
    const std::uint64_t seq = journal_.append(std::move(rec), bytes);
    if (!co_await journal_fsync(node_, journal_.options().disk, bytes)) {
      co_return Error{Errc::unavailable, "crashed before commit"};
    }
    journal_.seal(seq);
    maybe_checkpoint();
  }
  notify_storage(delta);
  co_return RemoveChunkResp{true};
}

sim::Task<Result<ReplicateChunkResp>> DataProvider::handle_replicate(
    ReplicateChunkReq req) {
  if (recovering_) co_return Error{Errc::unavailable, "store recovering"};
  auto it = chunks_.find(req.key);
  if (it == chunks_.end()) {
    co_return Error{Errc::not_found, "chunk not stored here"};
  }
  if (router_ && router_(req.key, req.target, it->second)) {
    // Custody taken: the replication plane owns delivery from here.
    co_return ReplicateChunkResp{};
  }
  PutChunkReq put;
  put.key = req.key;
  put.payload = it->second;
  auto result = co_await node_.cluster().call<PutChunkReq, PutChunkResp>(
      node_, req.target, std::move(put));
  if (!result.ok()) co_return result.error();
  co_return ReplicateChunkResp{};
}

void DataProvider::start_heartbeats(NodeId provider_manager) {
  pm_node_ = provider_manager;
  heartbeats_on_ = true;
  // Bumping the generation stales any previous loop, so a crash→restart
  // before the old loop noticed never doubles the heartbeat stream.
  node_.cluster().sim().spawn(heartbeat_loop(provider_manager,
                                             ++hb_generation_));
}

sim::Task<void> DataProvider::heartbeat_loop(NodeId provider_manager,
                                             std::uint64_t generation) {
  auto& cluster = node_.cluster();
  auto& sim = cluster.sim();
  auto live = [&] {
    return heartbeats_on_ && generation == hb_generation_ && node_.up();
  };
  auto make_register = [&] {
    RegisterProviderReq reg;
    reg.provider = node_.id();
    reg.capacity = options_.capacity;
    reg.free_space = free_space();
    reg.chunks = chunks_.size();
    return reg;
  };
  // Register (retrying until the manager is reachable).
  while (live()) {
    auto r = co_await cluster.call<RegisterProviderReq, RegisterProviderResp>(
        node_, provider_manager, make_register());
    if (r.ok()) break;
    co_await sim.delay(options_.heartbeat_interval);
  }
  while (live()) {
    co_await sim.delay(options_.heartbeat_interval);
    if (!live()) break;
    HeartbeatReq hb;
    hb.provider = node_.id();
    hb.free_space = free_space();
    hb.chunks = chunks_.size();
    hb.store_rate = store_rate(sim.now());
    auto r = co_await cluster.call<HeartbeatReq, HeartbeatResp>(
        node_, provider_manager, hb);
    if (r.ok() && !r.value().known) {
      (void)co_await cluster.call<RegisterProviderReq, RegisterProviderResp>(
          node_, provider_manager, make_register());
    }
  }
  // Mark stopped so a revived provider can call start_heartbeats() again;
  // a newer generation's loop keeps the flag untouched.
  if (generation == hb_generation_) heartbeats_on_ = false;
}

void DataProvider::wipe() {
  if (used_ > 0) notify_storage(-static_cast<std::int64_t>(used_));
  chunks_.clear();
  used_ = 0;
}

}  // namespace bs::blob
