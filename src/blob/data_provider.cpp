#include "blob/data_provider.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace bs::blob {

DataProvider::DataProvider(rpc::Node& node, Options options)
    : node_(node), options_(options) {
  register_handlers();
  node_.add_crash_listener([this](const rpc::CrashOptions& c) {
    stop_heartbeats();
    if (c.lose_storage) wipe();
  });
  node_.add_restart_listener([this] {
    // Re-register with the last known manager; the registration carries the
    // surviving store (or a zeroed one after a wipe).
    if (pm_node_.valid()) start_heartbeats(pm_node_);
  });
}

void DataProvider::register_handlers() {
  node_.serve<PutChunkReq, PutChunkResp>(
      [this](const PutChunkReq& req, const rpc::Envelope& env) {
        return handle_put(req, env.client);
      });
  node_.serve<GetChunkReq, GetChunkResp>(
      [this](const GetChunkReq& req, const rpc::Envelope& env) {
        return handle_get(req, env.client);
      });
  node_.serve<RemoveChunkReq, RemoveChunkResp>(
      [this](const RemoveChunkReq& req, const rpc::Envelope&) {
        return handle_remove(req);
      });
  node_.serve<ReplicateChunkReq, ReplicateChunkResp>(
      [this](const ReplicateChunkReq& req, const rpc::Envelope&) {
        return handle_replicate(req);
      });
  node_.serve<RemoveBlobChunksReq, RemoveBlobChunksResp>(
      [this](const RemoveBlobChunksReq& req, const rpc::Envelope&)
          -> sim::Task<Result<RemoveBlobChunksResp>> {
        RemoveBlobChunksResp resp;
        // bslint: allow(det-unordered-iter): erase sweep accumulating
        // order-insensitive sums; visit order never escapes
        for (auto it = chunks_.begin(); it != chunks_.end();) {
          if (it->first.blob == req.blob) {
            resp.bytes_freed += it->second.size;
            ++resp.chunks_removed;
            used_ -= it->second.size;
            it = chunks_.erase(it);
          } else {
            ++it;
          }
        }
        if (resp.bytes_freed > 0) {
          notify_storage(-static_cast<std::int64_t>(resp.bytes_freed));
        }
        co_return resp;
      });

  node_.serve<ProviderStatusReq, ProviderStatusResp>(
      [this](const ProviderStatusReq&,
             const rpc::Envelope&) -> sim::Task<Result<ProviderStatusResp>> {
        ProviderStatusResp resp;
        resp.capacity = options_.capacity;
        resp.used = used_;
        resp.chunks = chunks_.size();
        co_return resp;
      });
  node_.serve<ListChunksReq, ListChunksResp>(
      [this](const ListChunksReq&,
             const rpc::Envelope&) -> sim::Task<Result<ListChunksResp>> {
        ListChunksResp resp;
        resp.keys = chunk_keys();
        co_return resp;
      });
}

std::vector<ChunkKey> DataProvider::chunk_keys() const {
  std::vector<ChunkKey> keys;
  keys.reserve(chunks_.size());
  // bslint: allow(det-unordered-iter): snapshot is sorted before returning
  for (const auto& [k, v] : chunks_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  return keys;
}

void DataProvider::notify_storage(std::int64_t delta) {
  if (!storage_observer_) return;
  StorageEvent ev;
  ev.node = node_.id();
  ev.used = used_;
  ev.capacity = options_.capacity;
  ev.chunks = chunks_.size();
  ev.delta = delta;
  storage_observer_(ev);
}

void DataProvider::notify_access(const ChunkKey& key, std::uint64_t bytes,
                                 bool write, ClientId client) {
  if (!access_observer_) return;
  AccessEvent ev;
  ev.key = key;
  ev.bytes = bytes;
  ev.write = write;
  ev.client = client;
  access_observer_(ev);
}

sim::Task<Result<PutChunkResp>> DataProvider::handle_put(PutChunkReq req,
                                                         ClientId client) {
  auto it = chunks_.find(req.key);
  if (it != chunks_.end()) {
    // Chunks are immutable: a re-put (retry, abort-repair) is idempotent.
    co_return PutChunkResp{};
  }
  if (used_ + req.payload.size > options_.capacity) {
    co_return Error{Errc::out_of_space, "provider full"};
  }
  used_ += req.payload.size;
  stores_.add(node_.cluster().sim().now(),
              static_cast<double>(req.payload.size));
  chunks_.emplace(req.key, req.payload);
  notify_storage(static_cast<std::int64_t>(req.payload.size));
  notify_access(req.key, req.payload.size, /*write=*/true, client);
  co_return PutChunkResp{};
}

sim::Task<Result<GetChunkResp>> DataProvider::handle_get(GetChunkReq req,
                                                         ClientId client) {
  auto it = chunks_.find(req.key);
  if (it == chunks_.end()) {
    co_return Error{Errc::not_found, "chunk not stored here"};
  }
  const Payload& stored = it->second;
  if (req.offset >= stored.size && stored.size > 0) {
    co_return Error{Errc::invalid_argument, "chunk read past end"};
  }
  const std::uint64_t len =
      std::min(req.length, stored.size - req.offset);
  notify_access(req.key, len, /*write=*/false, client);
  GetChunkResp resp;
  if (req.offset == 0 && len == stored.size) {
    resp.payload = stored;
  } else {
    resp.payload.size = len;
    resp.payload.checksum = stored.checksum;  // whole-chunk checksum
    if (stored.bytes) {
      auto slice = std::make_shared<std::vector<std::uint8_t>>(
          stored.bytes->begin() + static_cast<std::ptrdiff_t>(req.offset),
          stored.bytes->begin() + static_cast<std::ptrdiff_t>(req.offset + len));
      resp.payload.checksum = Payload::checksum_of(*slice);
      resp.payload.bytes = std::move(slice);
    }
  }
  co_return resp;
}

sim::Task<Result<RemoveChunkResp>> DataProvider::handle_remove(
    RemoveChunkReq req) {
  auto it = chunks_.find(req.key);
  if (it == chunks_.end()) co_return RemoveChunkResp{false};
  used_ -= it->second.size;
  const auto delta = -static_cast<std::int64_t>(it->second.size);
  chunks_.erase(it);
  notify_storage(delta);
  co_return RemoveChunkResp{true};
}

sim::Task<Result<ReplicateChunkResp>> DataProvider::handle_replicate(
    ReplicateChunkReq req) {
  auto it = chunks_.find(req.key);
  if (it == chunks_.end()) {
    co_return Error{Errc::not_found, "chunk not stored here"};
  }
  PutChunkReq put;
  put.key = req.key;
  put.payload = it->second;
  auto result = co_await node_.cluster().call<PutChunkReq, PutChunkResp>(
      node_, req.target, std::move(put));
  if (!result.ok()) co_return result.error();
  co_return ReplicateChunkResp{};
}

void DataProvider::start_heartbeats(NodeId provider_manager) {
  pm_node_ = provider_manager;
  heartbeats_on_ = true;
  // Bumping the generation stales any previous loop, so a crash→restart
  // before the old loop noticed never doubles the heartbeat stream.
  node_.cluster().sim().spawn(heartbeat_loop(provider_manager,
                                             ++hb_generation_));
}

sim::Task<void> DataProvider::heartbeat_loop(NodeId provider_manager,
                                             std::uint64_t generation) {
  auto& cluster = node_.cluster();
  auto& sim = cluster.sim();
  auto live = [&] {
    return heartbeats_on_ && generation == hb_generation_ && node_.up();
  };
  auto make_register = [&] {
    RegisterProviderReq reg;
    reg.provider = node_.id();
    reg.capacity = options_.capacity;
    reg.free_space = free_space();
    reg.chunks = chunks_.size();
    return reg;
  };
  // Register (retrying until the manager is reachable).
  while (live()) {
    auto r = co_await cluster.call<RegisterProviderReq, RegisterProviderResp>(
        node_, provider_manager, make_register());
    if (r.ok()) break;
    co_await sim.delay(options_.heartbeat_interval);
  }
  while (live()) {
    co_await sim.delay(options_.heartbeat_interval);
    if (!live()) break;
    HeartbeatReq hb;
    hb.provider = node_.id();
    hb.free_space = free_space();
    hb.chunks = chunks_.size();
    hb.store_rate = store_rate(sim.now());
    auto r = co_await cluster.call<HeartbeatReq, HeartbeatResp>(
        node_, provider_manager, hb);
    if (r.ok() && !r.value().known) {
      (void)co_await cluster.call<RegisterProviderReq, RegisterProviderResp>(
          node_, provider_manager, make_register());
    }
  }
  // Mark stopped so a revived provider can call start_heartbeats() again;
  // a newer generation's loop keeps the flag untouched.
  if (generation == hb_generation_) heartbeats_on_ = false;
}

void DataProvider::wipe() {
  if (used_ > 0) notify_storage(-static_cast<std::int64_t>(used_));
  chunks_.clear();
  used_ = 0;
}

}  // namespace bs::blob
