#include "blob/client.hpp"

#include <algorithm>
#include <cassert>

#include "common/log.hpp"

namespace bs::blob {

namespace {
constexpr std::uint32_t kMaxRebuilds = 8;
}

BlobClient::BlobClient(rpc::Node& node, ClientId id, Endpoints endpoints,
                       ClientConfig config, std::uint64_t rng_seed)
    : node_(node), id_(id), endpoints_(std::move(endpoints)),
      config_(config), rng_(rng_seed) {
  assert(!endpoints_.metadata_providers.empty());
  meta_store_ = std::make_unique<RemoteMetadataStore>(
      node_, endpoints_.metadata_providers, id_, config_.rpc_timeout,
      config_.retry);
}

rpc::CallOptions BlobClient::opts(SimDuration timeout,
                                  obs::SpanId parent) const {
  rpc::CallOptions o;
  o.timeout = timeout;
  o.client = id_;
  o.retry = config_.retry;
  o.parent_span = parent;
  return o;
}

void BlobClient::report_provider_failure(NodeId provider) {
  if (!config_.report_failures) return;
  // Fire-and-forget: the report must never block or fail the data path.
  // Retries are off — a lost report is harmless.
  rpc::CallOptions o;
  o.timeout = config_.rpc_timeout;
  o.client = id_;
  node_.cluster().sim().spawn(
      [](rpc::Node& n, NodeId pm, NodeId failed,
         rpc::CallOptions ro) -> sim::Task<void> {
        ReportFailureReq req;
        req.provider = failed;
        (void)co_await n.cluster().call<ReportFailureReq, ReportFailureResp>(
            n, pm, req, ro);
      }(node_, endpoints_.provider_manager, provider, o));
}

void BlobClient::observe(ClientOpInfo info) {
  if (op_observer_) op_observer_(info);
}

sim::Task<Result<BlobId>> BlobClient::create(std::uint64_t chunk_size,
                                             std::uint32_t replication,
                                             SimDuration ttl) {
  const SimTime t0 = node_.cluster().sim().now();
  obs::Span op_span;
  if (auto* ts = obs::sink()) {
    op_span = ts->span("blob.create", "blob", 0,
                       {"client", static_cast<std::int64_t>(id_.value)},
                       {"replication", replication});
  }
  CreateBlobReq req;
  req.chunk_size = chunk_size;
  req.replication = replication;
  req.ttl = ttl;
  auto r = co_await node_.cluster().call<CreateBlobReq, CreateBlobResp>(
      node_, endpoints_.version_manager, req,
      opts(config_.rpc_timeout, op_span.id()));
  op_span.end(errc_name(r.code()));
  ClientOpInfo info;
  info.op = ClientOpInfo::Op::create;
  info.client = id_;
  info.duration = node_.cluster().sim().now() - t0;
  info.outcome = r.code();
  if (!r.ok()) {
    observe(info);
    co_return r.error();
  }
  info.blob = r.value().blob;
  observe(info);
  co_return r.value().blob;
}

sim::Task<Result<BlobDescriptor>> BlobClient::stat(BlobId blob) {
  BlobInfoReq req;
  req.blob = blob;
  auto r = co_await node_.cluster().call<BlobInfoReq, BlobInfoResp>(
      node_, endpoints_.version_manager, req, opts(config_.rpc_timeout));
  if (!r.ok()) co_return r.error();
  co_return r.value().descriptor;
}

sim::Task<Result<std::vector<VersionInfo>>> BlobClient::versions(
    BlobId blob) {
  BlobVersionsReq req;
  req.blob = blob;
  auto r = co_await node_.cluster().call<BlobVersionsReq, BlobVersionsResp>(
      node_, endpoints_.version_manager, req, opts(config_.rpc_timeout));
  if (!r.ok()) co_return r.error();
  co_return std::move(r.value().versions);
}

sim::Task<Result<TrimBlobResp>> BlobClient::trim(BlobId blob,
                                                 Version keep_from) {
  TrimBlobReq req;
  req.blob = blob;
  req.keep_from = keep_from;
  auto r = co_await node_.cluster().call<TrimBlobReq, TrimBlobResp>(
      node_, endpoints_.version_manager, req, opts(config_.rpc_timeout));
  if (!r.ok()) co_return r.error();
  co_return std::move(r.value());
}

sim::Task<Result<void>> BlobClient::remove(BlobId blob) {
  DeleteBlobReq req;
  req.blob = blob;
  auto r = co_await node_.cluster().call<DeleteBlobReq, DeleteBlobResp>(
      node_, endpoints_.version_manager, req, opts(config_.rpc_timeout));
  if (!r.ok()) co_return r.error();
  co_return ok_result();
}

// ----------------------------------------------------------------- writes

struct BlobClient::WritePlan {
  BlobId blob;
  StartWriteResp start;
  std::vector<Payload> chunk_payloads;
  std::vector<ChunkDescriptor> leaves;
  std::vector<std::vector<NodeId>> placements;
  std::uint32_t retries{0};
  obs::SpanId span{0};  ///< enclosing write-op span for nested RPC traces
};

sim::Task<Result<WriteReceipt>> BlobClient::write(BlobId blob,
                                                  std::uint64_t offset,
                                                  Payload data) {
  return write_impl(blob, offset, std::move(data), ClientOpInfo::Op::write);
}

sim::Task<Result<WriteReceipt>> BlobClient::append(BlobId blob,
                                                   Payload data) {
  return write_impl(blob, kAppendOffset, std::move(data),
                    ClientOpInfo::Op::append);
}

// bslint: allow(perf-large-byvalue): every caller moves its freshly split
// chunk batch; Payload bodies are shared_ptr-backed either way
sim::Task<Result<WriteReceipt>> BlobClient::append_chunks(
    BlobId blob, std::uint64_t chunk_size, std::vector<Payload> chunks) {
  if (chunks.empty() || chunk_size == 0) {
    co_return Error{Errc::invalid_argument, "empty chunked append"};
  }
  Payload claim;
  claim.checksum = fnv1a_u64(chunks.size());
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    const bool last = i + 1 == chunks.size();
    if (chunks[i].size == 0 || chunks[i].size > chunk_size ||
        (!last && chunks[i].size != chunk_size)) {
      co_return Error{Errc::invalid_argument,
                      "chunk payload does not fill its slot"};
    }
    claim.checksum = hash_combine(claim.checksum, chunks[i].checksum);
  }
  // Claimed blob extent: full slots for all but the last payload, so each
  // payload owns exactly one chunk of the new version.
  claim.size = (chunks.size() - 1) * chunk_size + chunks.back().size;
  co_return co_await write_impl(blob, kAppendOffset, std::move(claim),
                                ClientOpInfo::Op::append, std::move(chunks));
}

// bslint: allow(perf-large-byvalue): replicas is replication-factor sized
// (a handful of node ids)
sim::Task<Result<bool>> BlobClient::chunk_present(
    ChunkKey key, std::vector<NodeId> replicas) {
  Error last{Errc::unavailable, "no replicas to probe"};
  bool answered = false;
  for (NodeId target : replicas) {
    HasChunkReq req;
    req.key = key;
    auto r = co_await node_.cluster().call<HasChunkReq, HasChunkResp>(
        node_, target, req, opts(config_.rpc_timeout));
    if (r.ok()) {
      if (r.value().present) co_return true;
      answered = true;
    } else {
      last = r.error();
    }
  }
  if (answered) co_return false;
  co_return last;
}

// bslint: allow(coro-ref-param): see client.hpp — plan outlives the
// awaited WaitGroup
sim::Task<Result<void>> BlobClient::put_chunk_replicated(
    WritePlan& plan, std::size_t chunk_idx) {
  auto& cluster = node_.cluster();
  const ChunkKey key{plan.blob, plan.start.version,
                     plan.start.first_chunk + chunk_idx};
  std::vector<NodeId>& targets = plan.placements[chunk_idx];
  std::vector<NodeId> stored;
  std::vector<NodeId> failed;

  std::uint32_t attempts = 0;
  while (stored.size() < plan.start.replication) {
    if (targets.empty()) {
      // Ask the provider manager for a replacement, avoiding providers
      // that already hold or failed this chunk.
      if (attempts++ >= config_.max_put_retries) {
        co_return Error{Errc::unavailable,
                        "chunk put failed on all providers"};
      }
      ++plan.retries;
      AllocateReq realloc;
      realloc.blob = plan.blob;
      realloc.version = plan.start.version;
      realloc.chunk_count = 1;
      realloc.chunk_size = plan.start.chunk_size;
      realloc.replication =
          plan.start.replication - static_cast<std::uint32_t>(stored.size());
      realloc.exclude = stored;
      realloc.exclude.insert(realloc.exclude.end(), failed.begin(),
                             failed.end());
      auto r = co_await cluster.call<AllocateReq, AllocateResp>(
          node_, endpoints_.provider_manager, std::move(realloc),
          opts(config_.rpc_timeout, plan.span));
      if (!r.ok()) co_return r.error();
      targets = std::move(r.value().placements[0]);
      continue;
    }
    const NodeId target = targets.back();
    targets.pop_back();
    PutChunkReq put;
    put.key = key;
    put.payload = plan.chunk_payloads[chunk_idx];
    auto r = co_await cluster.call<PutChunkReq, PutChunkResp>(
        node_, target, std::move(put), opts(config_.rpc_timeout, plan.span));
    if (r.ok()) {
      stored.push_back(target);
    } else {
      failed.push_back(target);
      if (rpc::RetryPolicy::retryable(r.error().code)) {
        report_provider_failure(target);
      }
    }
  }
  plan.leaves[chunk_idx].replicas = std::move(stored);
  co_return ok_result();
}

// bslint: allow(coro-ref-param): see client.hpp — nodes outlive the
// awaited call
sim::Task<Result<void>> BlobClient::put_metadata(
    const std::vector<std::pair<NodeKey, TreeNode>>& nodes,
    obs::SpanId parent) {
  auto& sim = node_.cluster().sim();
  sim::Semaphore sem(sim, config_.meta_parallelism);
  sim::WaitGroup wg(sim);
  std::vector<Result<void>> results(nodes.size(), ok_result());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    wg.launch([](BlobClient& self, sim::Semaphore& s,
                 const std::pair<NodeKey, TreeNode>& kv,
                 obs::SpanId span, Result<void>& slot) -> sim::Task<void> {
      co_await s.acquire();
      sim::SemGuard guard(s);
      slot = co_await self.meta_store_->put(kv.first, kv.second, span);
    }(*this, sem, nodes[i], parent, results[i]));
  }
  co_await wg.wait();
  for (auto& r : results) {
    if (!r.ok()) co_return r.error();
  }
  co_return ok_result();
}

// bslint: allow(perf-large-byvalue): presplit is moved by its only
// non-empty caller (append_chunks); the default is empty
sim::Task<Result<WriteReceipt>> BlobClient::write_impl(
    BlobId blob, std::uint64_t offset, Payload data, ClientOpInfo::Op op,
    std::vector<Payload> presplit) {
  auto& cluster = node_.cluster();
  auto& sim = cluster.sim();
  const SimTime t0 = sim.now();

  ClientOpInfo info;
  info.op = op;
  info.client = id_;
  info.blob = blob;
  info.bytes = data.size;

  obs::Span op_span;
  if (auto* ts = obs::sink()) {
    op_span = ts->span(
        op == ClientOpInfo::Op::append ? "blob.append" : "blob.write", "blob",
        0, {"client", static_cast<std::int64_t>(id_.value)},
        {"bytes", static_cast<std::int64_t>(data.size)});
  }

  auto fail = [&](Error err) {
    info.duration = sim.now() - t0;
    info.outcome = err.code;
    op_span.end(errc_name(err.code));
    observe(info);
    return err;
  };

  if (data.size == 0) {
    co_return fail({Errc::invalid_argument, "empty write"});
  }

  // 1. Version assignment (the only serialized step).
  WritePlan plan;
  plan.blob = blob;
  plan.span = op_span.id();
  {
    StartWriteReq req;
    req.blob = blob;
    req.offset = offset;
    req.size = data.size;
    auto r = co_await cluster.call<StartWriteReq, StartWriteResp>(
        node_, endpoints_.version_manager, req,
        opts(config_.rpc_timeout, op_span.id()));
    if (!r.ok()) co_return fail(r.error());
    plan.start = std::move(r.value());
  }
  const std::uint64_t cs = plan.start.chunk_size;
  const std::uint64_t n_chunks = plan.start.chunk_count;
  info.version = plan.start.version;

  // 2. Split the payload into per-chunk payloads (or adopt the caller's
  // pre-split chunks, one payload per slot).
  if (!presplit.empty() && presplit.size() != n_chunks) {
    AbortWriteReq ab;
    ab.blob = blob;
    ab.version = plan.start.version;
    (void)co_await cluster.call<AbortWriteReq, AbortWriteResp>(
        node_, endpoints_.version_manager, ab,
        opts(config_.rpc_timeout, op_span.id()));
    co_return fail({Errc::invalid_argument,
                    "pre-split chunk count does not match blob chunk size"});
  }
  plan.chunk_payloads.reserve(n_chunks);
  plan.leaves.resize(n_chunks);
  for (std::uint64_t i = 0; i < n_chunks; ++i) {
    Payload p;
    if (!presplit.empty()) {
      p = std::move(presplit[i]);
    } else if (data.bytes) {
      const std::uint64_t lo = i * cs;
      const std::uint64_t len = std::min(cs, data.size - lo);
      std::vector<std::uint8_t> slice(
          data.bytes->begin() + static_cast<std::ptrdiff_t>(lo),
          data.bytes->begin() + static_cast<std::ptrdiff_t>(lo + len));
      p = Payload::from_bytes(std::move(slice));
    } else {
      const std::uint64_t lo = i * cs;
      p.size = std::min(cs, data.size - lo);
      p.checksum = hash_combine(data.checksum, i);
    }
    ChunkDescriptor& leaf = plan.leaves[i];
    leaf.key = ChunkKey{blob, plan.start.version, plan.start.first_chunk + i};
    leaf.size = p.size;
    leaf.checksum = p.checksum;
    plan.chunk_payloads.push_back(std::move(p));
  }

  // bslint: allow(coro-lambda-capture): the lambda lives in this frame
  // and every invocation is co_awaited before the frame unwinds
  auto abort_write = [&]() -> sim::Task<void> {
    AbortWriteReq ab;
    ab.blob = blob;
    ab.version = plan.start.version;
    (void)co_await cluster.call<AbortWriteReq, AbortWriteResp>(
        node_, endpoints_.version_manager, ab,
        opts(config_.rpc_timeout, op_span.id()));
  };

  // 3. Placement for every chunk.
  {
    AllocateReq req;
    req.blob = blob;
    req.version = plan.start.version;
    req.chunk_count = n_chunks;
    req.chunk_size = cs;
    req.replication = plan.start.replication;
    auto r = co_await cluster.call<AllocateReq, AllocateResp>(
        node_, endpoints_.provider_manager, std::move(req),
        opts(config_.rpc_timeout, op_span.id()));
    if (!r.ok()) {
      co_await abort_write();
      co_return fail(r.error());
    }
    plan.placements = std::move(r.value().placements);
  }

  // 4. Pipelined chunk puts with bounded parallelism.
  {
    sim::Semaphore sem(sim, config_.put_parallelism);
    sim::WaitGroup wg(sim);
    std::vector<Result<void>> results(n_chunks, ok_result());
    for (std::size_t i = 0; i < n_chunks; ++i) {
      wg.launch([](BlobClient& self, sim::Semaphore& s, WritePlan& pl,
                   std::size_t idx, Result<void>& slot) -> sim::Task<void> {
        co_await s.acquire();
        sim::SemGuard guard(s);
        slot = co_await self.put_chunk_replicated(pl, idx);
      }(*this, sem, plan, i, results[i]));
    }
    co_await wg.wait();
    for (auto& r : results) {
      if (!r.ok()) {
        co_await abort_write();
        co_return fail(r.error());
      }
    }
  }

  // 5. Build + store metadata; 6. commit, rebuilding if an earlier write
  // aborted underneath us.
  std::uint64_t epoch = plan.start.abort_epoch;
  std::vector<WriteExtent> history = plan.start.history;
  std::uint32_t rebuilds = 0;
  while (true) {
    auto nodes = meta_ops::build_nodes(blob, plan.start.extent(),
                                       plan.leaves, history,
                                       plan.start.root_chunks);
    if (auto r = co_await put_metadata(nodes, op_span.id()); !r.ok()) {
      co_await abort_write();
      co_return fail(r.error());
    }
    CommitWriteReq req;
    req.blob = blob;
    req.version = plan.start.version;
    req.abort_epoch = epoch;
    auto r = co_await cluster.call<CommitWriteReq, CommitWriteResp>(
        node_, endpoints_.version_manager, req,
        opts(config_.commit_timeout, op_span.id()));
    if (!r.ok()) co_return fail(r.error());
    if (r.value().published) break;
    assert(r.value().rebuild_needed);
    if (++rebuilds > kMaxRebuilds) {
      co_await abort_write();
      co_return fail({Errc::conflict, "too many abort-repair rebuilds"});
    }
    epoch = r.value().abort_epoch;
    history = std::move(r.value().history);
  }

  WriteReceipt receipt;
  receipt.version = plan.start.version;
  receipt.offset = plan.start.offset;
  receipt.size = data.size;
  receipt.duration = sim.now() - t0;
  receipt.put_retries = plan.retries;
  receipt.rebuilds = rebuilds;
  receipt.chunks = std::move(plan.leaves);

  info.duration = receipt.duration;
  info.outcome = Errc::ok;
  op_span.end("ok");
  observe(info);
  co_return receipt;
}

// ------------------------------------------------------------------ reads

// bslint: allow(coro-ref-param): see client.hpp — leaf outlives the
// awaited WaitGroup
sim::Task<Result<ChunkRead>> BlobClient::fetch_chunk(
    const meta_ops::LeafRef& leaf, std::uint64_t chunk_size,
    std::uint64_t read_lo, std::uint64_t read_hi, obs::SpanId parent) {
  auto& cluster = node_.cluster();
  const std::uint64_t base = leaf.chunk_index * chunk_size;
  ChunkRead out;
  out.chunk_index = leaf.chunk_index;

  if (leaf.hole) {
    out.hole = true;
    out.offset = std::max(base, read_lo);
    co_return out;
  }
  const std::uint64_t lo = std::max(base, read_lo);
  const std::uint64_t hi = std::min(base + leaf.chunk.size, read_hi);
  if (hi <= lo) {
    out.hole = true;
    out.offset = lo;
    co_return out;
  }
  out.offset = lo;

  // Same-site replicas first, then a random order of the rest.
  std::vector<NodeId> order;
  std::vector<NodeId> remote;
  for (NodeId r : leaf.chunk.replicas) {
    rpc::Node* n = cluster.node(r);
    if (n != nullptr && n->site() == node_.site()) {
      order.push_back(r);
    } else {
      remote.push_back(r);
    }
  }
  rng_.shuffle(remote);
  order.insert(order.end(), remote.begin(), remote.end());

  Error last{Errc::unavailable, "no replicas"};
  for (NodeId target : order) {
    GetChunkReq req;
    req.key = leaf.chunk.key;
    req.offset = lo - base;
    req.length = hi - lo;
    auto r = co_await cluster.call<GetChunkReq, GetChunkResp>(
        node_, target, req, opts(config_.rpc_timeout, parent));
    if (r.ok()) {
      out.bytes = r.value().payload.size;
      out.checksum = r.value().payload.checksum;
      out.data = r.value().payload.bytes;
      co_return out;
    }
    last = r.error();
    if (rpc::RetryPolicy::retryable(last.code)) {
      report_provider_failure(target);
    }
  }
  co_return last;
}

sim::Task<Result<ReadResult>> BlobClient::read(BlobId blob,
                                               std::uint64_t offset,
                                               std::uint64_t length,
                                               Version version) {
  auto& cluster = node_.cluster();
  auto& sim = cluster.sim();
  const SimTime t0 = sim.now();

  ClientOpInfo info;
  info.op = ClientOpInfo::Op::read;
  info.client = id_;
  info.blob = blob;

  obs::Span op_span;
  if (auto* ts = obs::sink()) {
    op_span = ts->span("blob.read", "blob", 0,
                       {"client", static_cast<std::int64_t>(id_.value)},
                       {"length", static_cast<std::int64_t>(length)});
  }

  auto fail = [&](Error err) {
    info.duration = sim.now() - t0;
    info.outcome = err.code;
    op_span.end(errc_name(err.code));
    observe(info);
    return err;
  };

  BlobInfoReq ireq;
  ireq.blob = blob;
  ireq.version = version;
  auto ir = co_await cluster.call<BlobInfoReq, BlobInfoResp>(
      node_, endpoints_.version_manager, ireq,
      opts(config_.rpc_timeout, op_span.id()));
  if (!ir.ok()) co_return fail(ir.error());
  const VersionInfo at = ir.value().at;
  const std::uint64_t cs = ir.value().descriptor.chunk_size;
  info.version = at.version;

  ReadResult result;
  result.version = at.version;
  const std::uint64_t hi_byte = std::min(offset + length, at.size);
  if (at.version == 0 || offset >= hi_byte) {
    result.duration = sim.now() - t0;
    info.duration = result.duration;
    op_span.end("ok");
    observe(info);
    co_return result;
  }

  const std::uint64_t lo_chunk = offset / cs;
  const std::uint64_t hi_chunk = div_ceil(hi_byte, cs);
  auto leaves = co_await meta_ops::collect(sim, *meta_store_, blob,
                                           at.version, at.root_chunks,
                                           lo_chunk, hi_chunk - lo_chunk);
  if (!leaves.ok()) co_return fail(leaves.error());

  sim::Semaphore sem(sim, config_.get_parallelism);
  sim::WaitGroup wg(sim);
  std::vector<Result<ChunkRead>> reads(leaves.value().size(),
                                       Result<ChunkRead>{Errc::internal});
  for (std::size_t i = 0; i < leaves.value().size(); ++i) {
    wg.launch([](BlobClient& self, sim::Semaphore& s,
                 const meta_ops::LeafRef& leaf, std::uint64_t chunk_size,
                 std::uint64_t rlo, std::uint64_t rhi, obs::SpanId span,
                 Result<ChunkRead>& slot) -> sim::Task<void> {
      co_await s.acquire();
      sim::SemGuard guard(s);
      slot = co_await self.fetch_chunk(leaf, chunk_size, rlo, rhi, span);
    }(*this, sem, leaves.value()[i], cs, offset, hi_byte, op_span.id(),
      reads[i]));
  }
  co_await wg.wait();

  for (auto& r : reads) {
    if (!r.ok()) co_return fail(r.error());
    result.bytes += r.value().bytes;
    result.chunks.push_back(std::move(r.value()));
  }
  std::sort(result.chunks.begin(), result.chunks.end(),
            [](const ChunkRead& a, const ChunkRead& b) {
              return a.chunk_index < b.chunk_index;
            });
  result.duration = sim.now() - t0;

  info.bytes = result.bytes;
  info.duration = result.duration;
  op_span.end("ok");
  observe(info);
  co_return result;
}

std::optional<std::vector<std::uint8_t>> ReadResult::assemble(
    std::uint64_t from_offset, std::uint64_t length) const {
  std::vector<std::uint8_t> out(length, 0);
  for (const auto& c : chunks) {
    if (c.hole) continue;
    if (!c.data) return std::nullopt;
    if (c.offset < from_offset) return std::nullopt;
    const std::uint64_t pos = c.offset - from_offset;
    if (pos + c.data->size() > length) return std::nullopt;
    std::copy(c.data->begin(), c.data->end(),
              out.begin() + static_cast<std::ptrdiff_t>(pos));
  }
  return out;
}

}  // namespace bs::blob
