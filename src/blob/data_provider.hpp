// Data provider actor: stores immutable chunks on its node's disk, enforces
// capacity, serves puts/gets/removes, replicates chunks to peers, and
// heartbeats the provider manager. One of the five BlobSeer actors (§III-A).
#pragma once

#include <functional>
#include <unordered_map>

#include "blob/journal.hpp"
#include "blob/messages.hpp"
#include "common/stats.hpp"
#include "rpc/rpc.hpp"

namespace bs::blob {

struct DataProviderOptions {
  std::uint64_t capacity{64ull * units::GB};
  SimDuration heartbeat_interval{simtime::seconds(2)};
  /// Persistent chunk-index store model. Disabled: the store survives
  /// crashes intact (unless wiped) and restarts are free, as before.
  JournalOptions journal{};
};

class DataProvider {
 public:
  using Options = DataProviderOptions;

  /// Storage-change notification for the instrumentation layer.
  struct StorageEvent {
    NodeId node;
    std::uint64_t used{0};
    std::uint64_t capacity{0};
    std::uint64_t chunks{0};
    std::int64_t delta{0};  ///< bytes added (negative: removed)
  };

  /// Served chunk access (put/get), with blob attribution — the
  /// instrumentation layer turns these into per-blob access patterns.
  struct AccessEvent {
    ChunkKey key;
    std::uint64_t bytes{0};
    bool write{false};
    ClientId client{};
  };

  DataProvider(rpc::Node& node, Options options = {});

  /// Registers with the provider manager and starts the heartbeat loop.
  /// Restartable: a crash kills the loop, a node restart revives it.
  void start_heartbeats(NodeId provider_manager);
  void stop_heartbeats() {
    heartbeats_on_ = false;
    ++hb_generation_;  // kills any loop that hasn't noticed yet
  }

  [[nodiscard]] NodeId id() const { return node_.id(); }
  [[nodiscard]] rpc::Node& node() { return node_; }
  [[nodiscard]] std::uint64_t capacity() const { return options_.capacity; }
  [[nodiscard]] std::uint64_t used() const { return used_; }
  [[nodiscard]] std::uint64_t free_space() const {
    return options_.capacity - used_;
  }
  [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }
  [[nodiscard]] bool has_chunk(const ChunkKey& key) const {
    return chunks_.count(key) > 0;
  }
  [[nodiscard]] std::vector<ChunkKey> chunk_keys() const;

  /// Recent store throughput (bytes/s over the trailing window) — the load
  /// signal carried by heartbeats and consumed by load-aware allocation.
  [[nodiscard]] double store_rate(SimTime now) const {
    return stores_.rate_per_sec(now);
  }

  void set_storage_observer(std::function<void(const StorageEvent&)> obs) {
    storage_observer_ = std::move(obs);
  }

  void set_access_observer(std::function<void(const AccessEvent&)> obs) {
    access_observer_ = std::move(obs);
  }

  /// Geo-replication router: consulted before the direct cross-node
  /// PutChunk a ReplicateChunk would issue. Returning true means the router
  /// took custody of the transfer (store-and-forward delivery); the
  /// replicate call then succeeds immediately.
  using ReplicateRouter =
      std::function<bool(const ChunkKey&, NodeId, const Payload&)>;
  void set_replicate_router(ReplicateRouter fn) { router_ = std::move(fn); }

  /// Failure injection: drops all stored chunks (models a disk loss).
  void wipe();

  /// True between a journaled restart and the end of journal replay; every
  /// request is rejected `unavailable` until the store is readable again.
  [[nodiscard]] bool recovering() const { return recovering_; }
  [[nodiscard]] const RecoveryStats& recovery_stats() const {
    return rec_stats_;
  }

  /// One write-ahead-journal record of the chunk store: puts carry the
  /// payload (the WAL holds data pages), removes just the key.
  struct JournalRecord {
    enum class Kind : std::uint8_t { put, remove };
    Kind kind{Kind::put};
    ChunkKey key{};
    Payload payload{};
  };

 private:
  void register_handlers();
  sim::Task<void> heartbeat_loop(NodeId provider_manager,
                                 std::uint64_t generation);
  void notify_storage(std::int64_t delta);

  void notify_access(const ChunkKey& key, std::uint64_t bytes, bool write,
                     ClientId client);

  // Requests are taken by value: a coroutine copies value parameters into
  // its frame, so the handler stays safe however the caller's lifetime ends
  // (bslint coro-ref-param). The structs are small; Payload shares the
  // backing bytes.
  sim::Task<Result<PutChunkResp>> handle_put(PutChunkReq req, ClientId client);
  sim::Task<Result<GetChunkResp>> handle_get(GetChunkReq req, ClientId client);
  sim::Task<Result<RemoveChunkResp>> handle_remove(RemoveChunkReq req);
  sim::Task<Result<ReplicateChunkResp>> handle_replicate(ReplicateChunkReq req);

  static std::uint64_t record_bytes(const JournalRecord& rec);
  void apply_record(const JournalRecord& rec);
  [[nodiscard]] std::vector<Journal<JournalRecord>::Entry> encode_checkpoint()
      const;
  void maybe_checkpoint();
  sim::Task<void> recover(std::uint64_t incarnation);

  rpc::Node& node_;
  Options options_;
  std::unordered_map<ChunkKey, Payload> chunks_;
  Journal<JournalRecord> journal_;
  bool recovering_{false};
  RecoveryStats rec_stats_;
  std::uint64_t used_{0};
  SlidingWindowCounter stores_{simtime::seconds(10)};
  bool heartbeats_on_{false};
  std::uint64_t hb_generation_{0};  ///< stales superseded heartbeat loops
  NodeId pm_node_{};                ///< manager to re-register with on restart
  std::function<void(const StorageEvent&)> storage_observer_;
  std::function<void(const AccessEvent&)> access_observer_;
  ReplicateRouter router_;
};

}  // namespace bs::blob
