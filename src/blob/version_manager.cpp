#include "blob/version_manager.hpp"

#include <algorithm>
#include <cassert>

#include "blob/meta_ops.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace bs::blob {

VersionManager::VersionManager(rpc::Node& node, Options opts)
    : node_(node), opts_(opts), journal_(opts.journal) {
  register_handlers();
  node_.add_crash_listener([this](const rpc::CrashOptions& c) {
    if (!journal_.enabled()) return;
    // Wake every parked commit handler: they resume (via the event queue,
    // after this listener), find the blob gone, and their responses are
    // discarded by the RPC layer's incarnation pinning anyway.
    for (auto& [id, b] : blobs_) {
      for (auto& [v, w] : b.pending) {
        if (w.decision && !w.decision->is_set()) w.decision->set();
      }
    }
    blobs_.clear();
    next_blob_ = 1;
    journal_.crash(c.lose_storage, c.torn_tail);
    recovering_ = true;
  });
  // The sweeper dies with the node; a restart revives it. With the journal
  // disabled blob state itself survives crashes intact (the paper's durable
  // version manager); enabled, a restart replays the journal first.
  node_.add_restart_listener([this] {
    if (journal_.enabled()) {
      node_.cluster().sim().spawn(recover(node_.incarnation()));
    } else if (sweeper_enabled_) {
      start_lease_sweeper();
    }
  });
}

sim::Task<bool> VersionManager::journal_commit(VmRecord rec) {
  if (!journal_.enabled()) co_return true;
  const std::uint64_t bytes = record_bytes(rec);
  const std::uint64_t seq = journal_.append(rec, bytes);
  if (!co_await journal_fsync(node_, journal_.options().disk, bytes)) {
    co_return false;
  }
  journal_.seal(seq);
  maybe_checkpoint();
  co_return true;
}

sim::Task<bool> VersionManager::journal_sync_tail() {
  if (!journal_.enabled()) co_return true;
  const std::uint64_t seq = journal_.tail_seq();
  const std::uint64_t bytes =
      (journal_.tail_records() - journal_.durable_records()) * 64;
  if (!co_await journal_fsync(node_, journal_.options().disk, bytes)) {
    co_return false;
  }
  journal_.seal(seq);
  maybe_checkpoint();
  co_return true;
}

void VersionManager::apply_record(const VmRecord& rec) {
  if (rec.kind == VmRecord::Kind::create) {
    BlobState b;
    b.id = BlobId{rec.blob};
    b.chunk_size = rec.chunk_size;
    b.replication = rec.replication;
    b.base_replication = rec.replication;
    b.created_at = rec.created_at;
    b.ttl = rec.ttl;
    next_blob_ = std::max(next_blob_, rec.blob + 1);
    blobs_.insert_or_assign(rec.blob, std::move(b));
    return;
  }
  auto it = blobs_.find(rec.blob);
  if (it == blobs_.end()) return;
  BlobState& b = it->second;
  switch (rec.kind) {
    case VmRecord::Kind::start: {
      PendingWrite w;
      w.extent = rec.extent;
      w.end_bytes = rec.bytes;
      w.root_chunks = rec.extent.root_chunks;
      w.lease_from = node_.cluster().sim().now();
      b.history.push_back(rec.extent);
      b.pending.emplace(rec.version, std::move(w));
      b.next_version = std::max(b.next_version, rec.version + 1);
      b.reserved_end = std::max(b.reserved_end, rec.bytes);
      break;
    }
    case VmRecord::Kind::publish: {
      VersionInfo info;
      info.version = rec.version;
      info.size = rec.bytes;
      info.root_chunks = rec.extent.root_chunks;
      b.published.insert_or_assign(rec.version, info);
      b.latest = rec.version;  // publish records land in version order
      b.latest_size = info.size;
      b.pending.erase(rec.version);
      break;
    }
    case VmRecord::Kind::abort: {
      b.pending.erase(rec.version);
      remove_from_history(b, rec.version);
      ++b.abort_epoch;
      std::uint64_t end = b.latest_size;
      for (const auto& e : b.history) {
        auto pend = b.pending.find(e.version);
        const std::uint64_t e_end =
            pend != b.pending.end()
                ? pend->second.end_bytes
                : (e.first_chunk + e.chunk_count) * b.chunk_size;
        end = std::max(end, e_end);
      }
      b.reserved_end = end;
      break;
    }
    case VmRecord::Kind::trim_mark:
      b.trimmed.insert(rec.version);
      b.published.erase(rec.version);
      break;
    case VmRecord::Kind::set_replication:
      b.replication = rec.replication;
      break;
    case VmRecord::Kind::delete_blob:
      b.deleted = true;
      break;
    case VmRecord::Kind::frontier:
      b.next_version = std::max(b.next_version, rec.version);
      b.reserved_end = rec.bytes;
      b.abort_epoch = rec.epoch;
      break;
    case VmRecord::Kind::create:
      break;  // handled above
  }
}

std::vector<Journal<VersionManager::VmRecord>::Entry>
VersionManager::encode_checkpoint() const {
  // Re-encodes blob state as the record sequence that rebuilds it; blobs_
  // and every per-blob container are ordered, so the image is
  // deterministic. In-flight commit decisions are deliberately not encoded
  // (a surviving writer just retries; the commit path is idempotent).
  std::vector<Journal<VmRecord>::Entry> image;
  for (const auto& [id, b] : blobs_) {
    auto push = [&](VmRecord rec) {
      rec.blob = id;
      image.push_back({rec, record_bytes(rec)});
    };
    VmRecord create;
    create.kind = VmRecord::Kind::create;
    create.chunk_size = b.chunk_size;
    create.replication = b.base_replication;
    create.created_at = b.created_at;
    create.ttl = b.ttl;
    push(create);
    if (b.replication != b.base_replication) {
      VmRecord rep;
      rep.kind = VmRecord::Kind::set_replication;
      rep.replication = b.replication;
      push(rep);
    }
    for (const WriteExtent& e : b.history) {
      VmRecord start;
      start.kind = VmRecord::Kind::start;
      start.version = e.version;
      start.extent = e;
      auto pend = b.pending.find(e.version);
      start.bytes = pend != b.pending.end()
                        ? pend->second.end_bytes
                        : (e.first_chunk + e.chunk_count) * b.chunk_size;
      push(start);
    }
    for (const auto& [v, info] : b.published) {
      VmRecord pub;
      pub.kind = VmRecord::Kind::publish;
      pub.version = v;
      pub.bytes = info.size;
      pub.extent.root_chunks = info.root_chunks;
      push(pub);
    }
    for (Version v : b.trimmed) {
      VmRecord trim;
      trim.kind = VmRecord::Kind::trim_mark;
      trim.version = v;
      push(trim);
    }
    if (b.deleted) {
      VmRecord del;
      del.kind = VmRecord::Kind::delete_blob;
      push(del);
    }
    VmRecord frontier;
    frontier.kind = VmRecord::Kind::frontier;
    frontier.version = b.next_version;
    frontier.bytes = b.reserved_end;
    frontier.epoch = b.abort_epoch;
    push(frontier);
  }
  return image;
}

void VersionManager::maybe_checkpoint() {
  if (!journal_.checkpoint_due()) return;
  if (!journal_.install_checkpoint(encode_checkpoint())) return;
  obs::count("journal.checkpoints");
  charge_checkpoint_write(node_, journal_.checkpoint_bytes());
}

sim::Task<void> VersionManager::recover(std::uint64_t incarnation) {
  auto& sim = node_.cluster().sim();
  const SimTime t0 = sim.now();
  const ReplayPlan plan = journal_.replay_plan();
  obs::SpanId span = 0;
  if (auto* ts = obs::sink()) {
    span = ts->begin_span(
        "recovery.replay", "recovery", 0,
        {"node", static_cast<std::int64_t>(node_.id().value)},
        {"records", static_cast<std::int64_t>(plan.total_records())});
  }
  if (!co_await journal_replay_cost(node_, journal_.options().disk, plan) ||
      node_.incarnation() != incarnation) {
    if (auto* ts = obs::sink()) ts->end_span(span, "aborted");
    co_return;
  }
  const auto outcome = journal_.finish_recovery();
  if (outcome.torn_bytes > 0) {
    ++rec_stats_.torn_tails_truncated;
    obs::count("recovery.torn_tails");
  }
  if (outcome.wiped) ++rec_stats_.cold_starts;
  journal_.replay([this](const VmRecord& rec) { apply_record(rec); });
  recovering_ = false;
  ++rec_stats_.recoveries;
  rec_stats_.replay_bytes += plan.total_bytes();
  rec_stats_.replay_records += plan.total_records();
  rec_stats_.last_time_to_readable = sim.now() - t0;
  rec_stats_.total_time_to_readable += rec_stats_.last_time_to_readable;
  obs::count("recovery.replays");
  obs::count("recovery.replay_bytes", plan.total_bytes());
  obs::count("recovery.replay_records", plan.total_records());
  obs::observe("recovery.time_to_readable_ms",
               static_cast<double>(rec_stats_.last_time_to_readable) /
                   static_cast<double>(simtime::kNanosPerMilli),
               0.0, 60000.0, 120);
  if (auto* ts = obs::sink()) ts->end_span(span, "ok");
  BS_INFO("recovery", "version manager readable after %llu records",
          (unsigned long long)plan.total_records());
  if (sweeper_enabled_) start_lease_sweeper();
}

void VersionManager::start_lease_sweeper() {
  sweeper_enabled_ = true;
  if (sweeper_running_) return;
  sweeper_running_ = true;
  node_.cluster().sim().spawn(lease_sweeper_loop());
}

sim::Task<void> VersionManager::lease_sweeper_loop() {
  auto& sim = node_.cluster().sim();
  while (node_.up()) {
    co_await sim.delay(opts_.sweep_interval);
    if (!node_.up()) break;
    const SimTime now = sim.now();
    for (auto& [id, b] : blobs_) {
      std::vector<Version> settled;
      std::vector<Version> expired;
      for (auto& [v, w] : b.pending) {
        if (now - w.lease_from <= opts_.write_lease) continue;
        if (w.published) {
          // Decision was made but the response never reached the writer
          // (crash, dropped reply). The version is live; only the
          // bookkeeping entry is stale.
          settled.push_back(v);
        } else if (!w.committed) {
          // Orphan: the writer went away between StartWrite and commit.
          // It blocks ordered publication of every later version.
          expired.push_back(v);
        }
      }
      for (Version v : settled) b.pending.erase(v);
      for (Version v : expired) {
        ++leases_expired_;
        obs::count("vm.leases_expired");
        if (auto* ts = obs::sink()) {
          ts->instant("vm.lease_expired", "vm", 0, "",
                      {"blob", static_cast<std::int64_t>(id)},
                      {"version", static_cast<std::int64_t>(v)});
        }
        BS_INFO("vm", "write lease expired for v%llu of blob %llu",
                (unsigned long long)v, (unsigned long long)id);
        force_abort(b, v);
      }
    }
  }
  sweeper_running_ = false;
}

std::vector<VersionInfo> VersionManager::versions_of(BlobId blob) const {
  std::vector<VersionInfo> out;
  auto it = blobs_.find(blob.value);
  if (it == blobs_.end()) return out;
  out.reserve(it->second.published.size());
  for (const auto& [v, info] : it->second.published) out.push_back(info);
  return out;
}

std::size_t VersionManager::pending_writes() const {
  std::size_t n = 0;
  for (const auto& [id, b] : blobs_) n += b.pending.size();
  return n;
}

void VersionManager::register_handlers() {
  node_.serve<CreateBlobReq, CreateBlobResp>(
      [this](const CreateBlobReq& req,
             const rpc::Envelope&) -> sim::Task<Result<CreateBlobResp>> {
        if (recovering_) {
          co_return Error{Errc::unavailable, "version manager recovering"};
        }
        if (req.chunk_size == 0) {
          co_return Error{Errc::invalid_argument, "chunk_size must be > 0"};
        }
        if (req.replication == 0) {
          co_return Error{Errc::invalid_argument, "replication must be >= 1"};
        }
        BlobState b;
        b.id = BlobId{next_blob_++};
        b.chunk_size = req.chunk_size;
        b.replication = req.replication;
        b.base_replication = req.replication;
        b.created_at = node_.cluster().sim().now();
        b.ttl = req.ttl;
        const BlobId id = b.id;
        VmRecord rec;
        rec.kind = VmRecord::Kind::create;
        rec.blob = id.value;
        rec.chunk_size = b.chunk_size;
        rec.replication = b.replication;
        rec.created_at = b.created_at;
        rec.ttl = b.ttl;
        blobs_.emplace(id.value, std::move(b));
        if (!co_await journal_commit(rec)) {
          co_return Error{Errc::unavailable, "crashed before commit"};
        }
        co_return CreateBlobResp{id};
      });

  node_.serve<BlobInfoReq, BlobInfoResp>(
      [this](const BlobInfoReq& req,
             const rpc::Envelope&) -> sim::Task<Result<BlobInfoResp>> {
        if (recovering_) {
          co_return Error{Errc::unavailable, "version manager recovering"};
        }
        auto it = blobs_.find(req.blob.value);
        if (it == blobs_.end()) {
          co_return Error{Errc::not_found, "unknown blob"};
        }
        const BlobState& b = it->second;
        if (b.deleted) {
          co_return Error{Errc::not_found, "blob deleted"};
        }
        BlobInfoResp resp;
        resp.descriptor.id = b.id;
        resp.descriptor.chunk_size = b.chunk_size;
        resp.descriptor.replication = b.replication;
        resp.descriptor.base_replication = b.base_replication;
        resp.descriptor.created_at = b.created_at;
        resp.descriptor.ttl = b.ttl;
        if (b.latest == 0) {
          resp.descriptor.latest = VersionInfo{0, 0, 0};
        } else {
          resp.descriptor.latest = b.published.at(b.latest);
        }
        if (req.version == kLatestVersion) {
          resp.at = resp.descriptor.latest;
        } else if (req.version == 0) {
          resp.at = VersionInfo{0, 0, 0};
        } else {
          auto pit = b.published.find(req.version);
          if (pit == b.published.end()) {
            co_return Error{Errc::not_found, "version not published"};
          }
          resp.at = pit->second;
        }
        co_return resp;
      });

  node_.serve<StartWriteReq, StartWriteResp>(
      [this](const StartWriteReq& req, const rpc::Envelope& env) {
        return handle_start(req, env.client);
      });
  node_.serve<CommitWriteReq, CommitWriteResp>(
      [this](const CommitWriteReq& req, const rpc::Envelope&) {
        return handle_commit(req);
      });
  node_.serve<AbortWriteReq, AbortWriteResp>(
      [this](const AbortWriteReq& req, const rpc::Envelope&) {
        return handle_abort(req);
      });

  node_.serve<ListBlobsReq, ListBlobsResp>(
      [this](const ListBlobsReq&,
             const rpc::Envelope&) -> sim::Task<Result<ListBlobsResp>> {
        if (recovering_) {
          co_return Error{Errc::unavailable, "version manager recovering"};
        }
        ListBlobsResp resp;
        for (const auto& [id, b] : blobs_) {
          if (b.deleted) continue;
          BlobDescriptor d;
          d.id = b.id;
          d.chunk_size = b.chunk_size;
          d.replication = b.replication;
          d.base_replication = b.base_replication;
          d.created_at = b.created_at;
          d.ttl = b.ttl;
          d.latest = b.latest == 0 ? VersionInfo{0, 0, 0}
                                   : b.published.at(b.latest);
          resp.blobs.push_back(d);
        }
        co_return resp;
      });

  node_.serve<BlobVersionsReq, BlobVersionsResp>(
      [this](const BlobVersionsReq& req,
             const rpc::Envelope&) -> sim::Task<Result<BlobVersionsResp>> {
        if (recovering_) {
          co_return Error{Errc::unavailable, "version manager recovering"};
        }
        auto it = blobs_.find(req.blob.value);
        if (it == blobs_.end()) {
          co_return Error{Errc::not_found, "unknown blob"};
        }
        BlobVersionsResp resp;
        resp.versions = versions_of(req.blob);
        co_return resp;
      });

  node_.serve<TrimBlobReq, TrimBlobResp>(
      [this](const TrimBlobReq& req,
             const rpc::Envelope&) -> sim::Task<Result<TrimBlobResp>> {
        if (recovering_) {
          co_return Error{Errc::unavailable, "version manager recovering"};
        }
        auto it = blobs_.find(req.blob.value);
        if (it == blobs_.end()) {
          co_return Error{Errc::not_found, "unknown blob"};
        }
        BlobState& b = it->second;
        if (b.deleted) co_return Error{Errc::not_found, "blob deleted"};
        // The oldest version we keep; everything before it goes.
        auto first_kept = b.published.lower_bound(req.keep_from);
        if (first_kept == b.published.end()) {
          co_return Error{Errc::invalid_argument,
                          "cannot trim away every published version"};
        }
        const Version kept = first_kept->first;
        // Pending writes below the keep point would race the trim.
        for (const auto& [pv, pw] : b.pending) {
          if (pv < kept) {
            co_return Error{Errc::conflict,
                            "pending write below trim point"};
          }
        }
        TrimBlobResp resp;
        std::vector<Version> removed;
        for (auto pit = b.published.begin(); pit != first_kept;) {
          const Version v = pit->first;
          removed.push_back(v);
          // Chunks of v not visible in the first kept snapshot are
          // unreferenced by every kept snapshot (owners only move forward).
          const WriteExtent* ext = nullptr;
          for (const auto& e : b.history) {
            if (e.version == v) {
              ext = &e;
              break;
            }
          }
          if (ext != nullptr) {
            for (std::uint64_t i = 0; i < ext->chunk_count; ++i) {
              const std::uint64_t idx = ext->first_chunk + i;
              if (meta_ops::subtree_version(b.history, kept, idx, 1) != v) {
                resp.unreferenced.push_back(ChunkKey{b.id, v, idx});
              }
            }
            // Metadata GC: every tree node v created whose range is owned
            // by a later version at the first kept snapshot is unreachable
            // from all kept snapshots (owners only move forward).
            const std::size_t prefix_len = static_cast<std::size_t>(
                std::lower_bound(b.history.begin(), b.history.end(), v,
                                 [](const WriteExtent& e, Version vv) {
                                   return e.version < vv;
                                 }) -
                b.history.begin());
            std::span<const WriteExtent> prefix(b.history.data(),
                                                prefix_len);
            for (const auto& [lo, count] :
                 meta_ops::node_ranges(*ext, prefix, ext->root_chunks)) {
              if (meta_ops::subtree_version(b.history, kept, lo, count) !=
                  v) {
                resp.removable_nodes.push_back(NodeKey{b.id, v, lo, count});
              }
            }
          }
          b.trimmed.insert(v);
          ++resp.versions_removed;
          pit = b.published.erase(pit);
        }
        if (journal_.enabled() && !removed.empty()) {
          // One trim_mark per removed version (walked in version order),
          // sealed by a single group-commit fsync.
          std::uint64_t bytes = 0;
          for (Version v : removed) {
            VmRecord rec;
            rec.kind = VmRecord::Kind::trim_mark;
            rec.blob = req.blob.value;
            rec.version = v;
            bytes += record_bytes(rec);
            journal_.append(rec, record_bytes(rec));
          }
          const std::uint64_t seq = journal_.tail_seq();
          if (!co_await journal_fsync(node_, journal_.options().disk,
                                      bytes)) {
            co_return Error{Errc::unavailable, "crashed before commit"};
          }
          journal_.seal(seq);
          maybe_checkpoint();
        }
        if (geo_hooks_.trimmed) {
          for (Version v : removed) geo_hooks_.trimmed(req.blob, v);
        }
        co_return resp;
      });

  node_.serve<SetReplicationReq, SetReplicationResp>(
      [this](const SetReplicationReq& req,
             const rpc::Envelope&) -> sim::Task<Result<SetReplicationResp>> {
        if (recovering_) {
          co_return Error{Errc::unavailable, "version manager recovering"};
        }
        auto it = blobs_.find(req.blob.value);
        if (it == blobs_.end()) {
          co_return Error{Errc::not_found, "unknown blob"};
        }
        if (req.replication == 0) {
          co_return Error{Errc::invalid_argument, "replication must be >= 1"};
        }
        it->second.replication = req.replication;
        VmRecord rec;
        rec.kind = VmRecord::Kind::set_replication;
        rec.blob = req.blob.value;
        rec.replication = req.replication;
        if (!co_await journal_commit(rec)) {
          co_return Error{Errc::unavailable, "crashed before commit"};
        }
        co_return SetReplicationResp{};
      });

  node_.serve<DeleteBlobReq, DeleteBlobResp>(
      [this](const DeleteBlobReq& req,
             const rpc::Envelope&) -> sim::Task<Result<DeleteBlobResp>> {
        if (recovering_) {
          co_return Error{Errc::unavailable, "version manager recovering"};
        }
        auto it = blobs_.find(req.blob.value);
        if (it == blobs_.end()) {
          co_return Error{Errc::not_found, "unknown blob"};
        }
        it->second.deleted = true;
        VmRecord rec;
        rec.kind = VmRecord::Kind::delete_blob;
        rec.blob = req.blob.value;
        if (!co_await journal_commit(rec)) {
          co_return Error{Errc::unavailable, "crashed before commit"};
        }
        if (geo_hooks_.deleted) geo_hooks_.deleted(req.blob);
        co_return DeleteBlobResp{};
      });
}

sim::Task<Result<StartWriteResp>> VersionManager::handle_start(
    StartWriteReq req, ClientId writer) {
  if (recovering_) {
    co_return Error{Errc::unavailable, "version manager recovering"};
  }
  auto it = blobs_.find(req.blob.value);
  if (it == blobs_.end()) co_return Error{Errc::not_found, "unknown blob"};
  BlobState& b = it->second;
  if (b.deleted) co_return Error{Errc::not_found, "blob deleted"};
  if (req.size == 0) {
    co_return Error{Errc::invalid_argument, "empty write"};
  }
  std::uint64_t offset = req.offset;
  if (offset == kAppendOffset) {
    offset = div_ceil(b.reserved_end, b.chunk_size) * b.chunk_size;
  } else if (offset % b.chunk_size != 0) {
    co_return Error{Errc::invalid_argument,
                    "write offset must be chunk-aligned"};
  }

  const Version v = b.next_version++;
  PendingWrite w;
  w.extent.version = v;
  w.extent.first_chunk = offset / b.chunk_size;
  w.extent.chunk_count = div_ceil(req.size, b.chunk_size);
  w.end_bytes = offset + req.size;
  w.writer = writer;
  w.lease_from = node_.cluster().sim().now();
  b.reserved_end = std::max(b.reserved_end, w.end_bytes);
  w.root_chunks = next_pow2(div_ceil(b.reserved_end, b.chunk_size));
  w.extent.root_chunks = w.root_chunks;

  StartWriteResp resp;
  resp.version = v;
  resp.chunk_size = b.chunk_size;
  resp.replication = b.replication;
  resp.offset = offset;
  resp.first_chunk = w.extent.first_chunk;
  resp.chunk_count = w.extent.chunk_count;
  resp.root_chunks = w.root_chunks;
  resp.abort_epoch = b.abort_epoch;
  resp.history = b.history;  // all non-aborted writes with version < v

  VmRecord rec;
  rec.kind = VmRecord::Kind::start;
  rec.blob = req.blob.value;
  rec.version = v;
  rec.extent = w.extent;
  rec.bytes = w.end_bytes;
  b.history.push_back(w.extent);
  b.pending.emplace(v, std::move(w));
  // The reservation must be durable before the writer sees it: a version
  // number handed out and then forgotten by a crash would be reused.
  if (!co_await journal_commit(rec)) {
    co_return Error{Errc::unavailable, "crashed before commit"};
  }
  co_return resp;
}

sim::Task<Result<CommitWriteResp>> VersionManager::handle_commit(
    CommitWriteReq req) {
  if (recovering_) {
    co_return Error{Errc::unavailable, "version manager recovering"};
  }
  auto it = blobs_.find(req.blob.value);
  if (it == blobs_.end()) co_return Error{Errc::not_found, "unknown blob"};
  BlobState& b = it->second;
  auto pit = b.pending.find(req.version);
  if (pit == b.pending.end()) {
    // Idempotent commit: a retry after a lost CommitWriteResp must report
    // the outcome the first commit produced, not a spurious conflict.
    if (auto pub = b.published.find(req.version); pub != b.published.end()) {
      CommitWriteResp resp;
      resp.published = true;
      resp.info = pub->second;
      // The publish record may still be volatile (racing group commit);
      // an acked publish must never be lost to a crash.
      if (!co_await journal_sync_tail()) {
        co_return Error{Errc::unavailable, "crashed before commit"};
      }
      co_return resp;
    }
    co_return Error{Errc::conflict, "no such pending write"};
  }
  PendingWrite& w = pit->second;
  w.lease_from = node_.cluster().sim().now();
  if (!w.committed || !w.decision || w.decision->is_set()) {
    w.committed = true;
    w.committed_epoch = req.abort_epoch;
    w.published = false;
    w.rebuild = false;
    w.decision = std::make_shared<sim::Event>(node_.cluster().sim());
    try_publish(b);
  }
  // else: a duplicate of an in-flight commit — share its pending decision.
  auto decision = w.decision;  // keeps the event alive across the wait
  co_await decision->wait();

  // Re-resolve everything: while waiting, the blob map may have rehashed,
  // the pending entry may have been erased (abort, lease expiry, a faster
  // duplicate) or the decision may have been superseded.
  it = blobs_.find(req.blob.value);
  if (it == blobs_.end()) co_return Error{Errc::not_found, "unknown blob"};
  BlobState& b2 = it->second;
  pit = b2.pending.find(req.version);
  if (pit == b2.pending.end()) {
    if (auto pub = b2.published.find(req.version); pub != b2.published.end()) {
      CommitWriteResp resp;
      resp.published = true;
      resp.info = pub->second;
      if (!co_await journal_sync_tail()) {
        co_return Error{Errc::unavailable, "crashed before commit"};
      }
      co_return resp;
    }
    co_return Error{Errc::conflict, "write aborted before publication"};
  }
  PendingWrite& w2 = pit->second;
  CommitWriteResp resp;
  if (w2.published) {
    resp.published = true;
    resp.info = b2.published.at(req.version);
    b2.pending.erase(pit);
    // publish_one appended the publish record synchronously; make it (and
    // everything before it) durable before the writer hears "published".
    if (!co_await journal_sync_tail()) {
      co_return Error{Errc::unavailable, "crashed before commit"};
    }
    co_return resp;
  }
  resp.rebuild_needed = true;
  resp.abort_epoch = b2.abort_epoch;
  for (const auto& e : b2.history) {
    if (e.version < req.version) resp.history.push_back(e);
  }
  w2.committed = false;  // awaiting re-commit after the rebuild
  w2.lease_from = node_.cluster().sim().now();
  co_return resp;
}

sim::Task<Result<AbortWriteResp>> VersionManager::handle_abort(
    AbortWriteReq req) {
  if (recovering_) {
    co_return Error{Errc::unavailable, "version manager recovering"};
  }
  auto it = blobs_.find(req.blob.value);
  if (it == blobs_.end()) co_return Error{Errc::not_found, "unknown blob"};
  BlobState& b = it->second;
  auto pit = b.pending.find(req.version);
  if (pit == b.pending.end()) {
    co_return Error{Errc::conflict, "no such pending write"};
  }
  if (pit->second.committed) {
    co_return Error{Errc::conflict, "write already committed"};
  }
  BS_INFO("vm", "write v%llu of blob %llu aborted (epoch %llu)",
          (unsigned long long)req.version,
          (unsigned long long)req.blob.value,
          (unsigned long long)(b.abort_epoch + 1));
  force_abort(b, req.version);
  // force_abort appended the abort record; an acked abort must survive a
  // crash (the version must not resurrect as pending).
  if (!co_await journal_sync_tail()) {
    co_return Error{Errc::unavailable, "crashed before commit"};
  }
  co_return AbortWriteResp{};
}

void VersionManager::force_abort(BlobState& b, Version v) {
  auto pit = b.pending.find(v);
  if (pit == b.pending.end()) return;
  obs::count("vm.writes_aborted");
  if (auto* ts = obs::sink()) {
    ts->instant("vm.write_aborted", "vm", 0, "",
                {"blob", static_cast<std::int64_t>(b.id.value)},
                {"version", static_cast<std::int64_t>(v)});
  }
  BS_WARN("vm", "aborting pending v%llu of blob %llu",
          (unsigned long long)v, (unsigned long long)b.id.value);
  // Wake any commit handler still parked on this write's decision; it will
  // re-resolve the state and report the abort as a conflict.
  if (pit->second.decision && !pit->second.decision->is_set()) {
    pit->second.decision->set();
  }
  b.pending.erase(pit);
  remove_from_history(b, v);
  ++b.abort_epoch;
  if (journal_.enabled()) {
    // Appended here (synchronous call sites: abort handler, lease
    // sweeper); sealed by the next group-commit fsync. A lease-expiry
    // abort lost to a crash just expires again after replay.
    VmRecord rec;
    rec.kind = VmRecord::Kind::abort;
    rec.blob = b.id.value;
    rec.version = v;
    journal_.append(rec, record_bytes(rec));
  }
  // Recompute the append frontier without the aborted reservation.
  std::uint64_t end = b.latest_size;
  for (const auto& e : b.history) {
    auto pend = b.pending.find(e.version);
    const std::uint64_t e_end =
        pend != b.pending.end()
            ? pend->second.end_bytes
            : (e.first_chunk + e.chunk_count) * b.chunk_size;
    end = std::max(end, e_end);
  }
  b.reserved_end = end;
  try_publish(b);
}

void VersionManager::remove_from_history(BlobState& b, Version v) {
  b.history.erase(
      std::remove_if(b.history.begin(), b.history.end(),
                     [v](const WriteExtent& e) { return e.version == v; }),
      b.history.end());
}

void VersionManager::try_publish(BlobState& b) {
  for (auto& [v, w] : b.pending) {
    if (w.published) continue;  // settled, response in flight
    if (!w.committed) break;    // ordered publication: wait for this writer
    if (w.committed_epoch != b.abort_epoch) {
      // An abort invalidated this writer's forward references; ask it to
      // rebuild. Publication of later versions stalls until it does.
      if (w.decision && !w.decision->is_set()) {
        w.rebuild = true;
        w.decision->set();
      }
      break;
    }
    publish_one(b, v, w);
    w.published = true;
    w.decision->set();
  }
}

void VersionManager::publish_one(BlobState& b, Version v, PendingWrite& w) {
  VersionInfo info;
  info.version = v;
  info.size = std::max(b.latest_size, w.end_bytes);
  info.root_chunks = w.root_chunks;
  b.published.emplace(v, info);
  b.latest = v;
  b.latest_size = info.size;
  if (journal_.enabled()) {
    // Volatile until the commit handler's group-commit fsync; the writer
    // is only acked after that barrier.
    VmRecord rec;
    rec.kind = VmRecord::Kind::publish;
    rec.blob = b.id.value;
    rec.version = v;
    rec.bytes = info.size;
    rec.extent = w.extent;
    journal_.append(rec, record_bytes(rec));
  }
  obs::count("vm.versions_published");
  if (auto* ts = obs::sink()) {
    ts->instant("vm.publish", "vm", 0, "",
                {"blob", static_cast<std::int64_t>(b.id.value)},
                {"version", static_cast<std::int64_t>(v)});
  }
  BS_DEBUG("vm", "published v%llu of blob %llu (%llu bytes)",
           (unsigned long long)v, (unsigned long long)b.id.value,
           (unsigned long long)info.size);
  if (publish_observer_) {
    PublishEvent ev;
    ev.blob = b.id;
    ev.version = v;
    ev.size = info.size;
    ev.written_bytes = w.end_bytes - w.extent.first_chunk * b.chunk_size;
    ev.writer = w.writer;
    publish_observer_(ev);
  }
  if (geo_hooks_.published) geo_hooks_.published(b.id, v, info.size);
}

std::vector<VersionManager::PublishedVersion>
VersionManager::published_snapshot() const {
  std::vector<PublishedVersion> out;
  for (const auto& [id, b] : blobs_) {
    if (b.deleted) continue;
    for (const auto& [v, info] : b.published) {
      out.push_back(PublishedVersion{b.id, v, info.size});
    }
  }
  return out;
}

}  // namespace bs::blob
