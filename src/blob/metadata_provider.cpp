#include "blob/metadata_provider.hpp"

#include <algorithm>
#include <cassert>

#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bs::blob {

MetadataProvider::MetadataProvider(rpc::Node& node, Options options)
    : node_(node), options_(options), journal_(options.journal) {
  node_.add_crash_listener([this](const rpc::CrashOptions& c) {
    if (journal_.enabled()) {
      // In-memory image dies with the process; the journal's durable
      // prefix is what a restart replays (at disk cost).
      wipe();
      journal_.crash(c.lose_storage, c.torn_tail);
      recovering_ = true;
    } else if (c.lose_storage) {
      wipe();
    }
  });
  node_.add_restart_listener([this] {
    if (journal_.enabled()) {
      node_.cluster().sim().spawn(recover(node_.incarnation()));
    }
  });
  node_.serve<MetaPutReq, MetaPutResp>(
      [this](const MetaPutReq& req,
             const rpc::Envelope&) -> sim::Task<Result<MetaPutResp>> {
        if (recovering_) {
          co_return Error{Errc::unavailable, "metadata store recovering"};
        }
        auto [it, inserted] = nodes_.insert_or_assign(req.key, req.node);
        if (inserted) bytes_ += req.node.wire_size();
        if (journal_.enabled()) {
          JournalRecord rec;
          rec.kind = JournalRecord::Kind::put;
          rec.key = req.key;
          rec.node = req.node;
          const std::uint64_t bytes = record_bytes(rec);
          const std::uint64_t seq = journal_.append(std::move(rec), bytes);
          if (!co_await journal_fsync(node_, journal_.options().disk,
                                      bytes)) {
            co_return Error{Errc::unavailable, "crashed before commit"};
          }
          journal_.seal(seq);
          maybe_checkpoint();
        }
        co_return MetaPutResp{};
      });
  node_.serve<MetaRemoveReq, MetaRemoveResp>(
      [this](const MetaRemoveReq& req,
             const rpc::Envelope&) -> sim::Task<Result<MetaRemoveResp>> {
        if (recovering_) {
          co_return Error{Errc::unavailable, "metadata store recovering"};
        }
        auto it = nodes_.find(req.key);
        if (it == nodes_.end()) co_return MetaRemoveResp{false};
        bytes_ -= it->second.wire_size();
        nodes_.erase(it);
        if (journal_.enabled()) {
          JournalRecord rec;
          rec.kind = JournalRecord::Kind::remove;
          rec.key = req.key;
          const std::uint64_t bytes = record_bytes(rec);
          const std::uint64_t seq = journal_.append(std::move(rec), bytes);
          if (!co_await journal_fsync(node_, journal_.options().disk,
                                      bytes)) {
            co_return Error{Errc::unavailable, "crashed before commit"};
          }
          journal_.seal(seq);
          maybe_checkpoint();
        }
        co_return MetaRemoveResp{true};
      });

  node_.serve<MetaGetReq, MetaGetResp>(
      [this](const MetaGetReq& req,
             const rpc::Envelope&) -> sim::Task<Result<MetaGetResp>> {
        if (recovering_) {
          co_return Error{Errc::unavailable, "metadata store recovering"};
        }
        auto it = nodes_.find(req.key);
        if (it == nodes_.end()) {
          co_return Error{Errc::not_found, "tree node not stored here"};
        }
        co_return MetaGetResp{it->second};
      });
}

std::uint64_t MetadataProvider::record_bytes(const JournalRecord& rec) {
  return rec.kind == JournalRecord::Kind::put
             ? NodeKey{}.wire_size() + rec.node.wire_size()
             : NodeKey{}.wire_size();
}

void MetadataProvider::apply_record(const JournalRecord& rec) {
  if (rec.kind == JournalRecord::Kind::put) {
    auto [it, inserted] = nodes_.insert_or_assign(rec.key, rec.node);
    if (inserted) bytes_ += rec.node.wire_size();
  } else if (auto it = nodes_.find(rec.key); it != nodes_.end()) {
    bytes_ -= it->second.wire_size();
    nodes_.erase(it);
  }
}

std::vector<Journal<MetadataProvider::JournalRecord>::Entry>
MetadataProvider::encode_checkpoint() const {
  // Encoded over a sorted key snapshot so the image is deterministic
  // regardless of unordered_map layout.
  std::vector<NodeKey> keys;
  keys.reserve(nodes_.size());
  // bslint: allow(det-unordered-iter): snapshot is sorted before encoding
  // bslint: allow(det-journal-encode): keys sorted below; values looked up
  for (const auto& [k, v] : nodes_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  std::vector<Journal<JournalRecord>::Entry> image;
  image.reserve(keys.size());
  for (const NodeKey& key : keys) {
    JournalRecord rec;
    rec.kind = JournalRecord::Kind::put;
    rec.key = key;
    rec.node = nodes_.at(key);
    const std::uint64_t bytes = record_bytes(rec);
    image.push_back({std::move(rec), bytes});
  }
  return image;
}

void MetadataProvider::maybe_checkpoint() {
  if (!journal_.checkpoint_due()) return;
  if (!journal_.install_checkpoint(encode_checkpoint())) return;
  obs::count("journal.checkpoints");
  charge_checkpoint_write(node_, journal_.checkpoint_bytes());
}

sim::Task<void> MetadataProvider::recover(std::uint64_t incarnation) {
  auto& sim = node_.cluster().sim();
  const SimTime t0 = sim.now();
  const ReplayPlan plan = journal_.replay_plan();
  obs::SpanId span = 0;
  if (auto* ts = obs::sink()) {
    span = ts->begin_span(
        "recovery.replay", "recovery", 0,
        {"node", static_cast<std::int64_t>(node_.id().value)},
        {"records", static_cast<std::int64_t>(plan.total_records())});
  }
  if (!co_await journal_replay_cost(node_, journal_.options().disk, plan) ||
      node_.incarnation() != incarnation) {
    if (auto* ts = obs::sink()) ts->end_span(span, "aborted");
    co_return;
  }
  const auto outcome = journal_.finish_recovery();
  if (outcome.torn_bytes > 0) {
    ++rec_stats_.torn_tails_truncated;
    obs::count("recovery.torn_tails");
  }
  if (outcome.wiped) ++rec_stats_.cold_starts;
  journal_.replay([this](const JournalRecord& rec) { apply_record(rec); });
  recovering_ = false;
  ++rec_stats_.recoveries;
  rec_stats_.replay_bytes += plan.total_bytes();
  rec_stats_.replay_records += plan.total_records();
  rec_stats_.last_time_to_readable = sim.now() - t0;
  rec_stats_.total_time_to_readable += rec_stats_.last_time_to_readable;
  obs::count("recovery.replays");
  obs::count("recovery.replay_bytes", plan.total_bytes());
  obs::count("recovery.replay_records", plan.total_records());
  obs::observe("recovery.time_to_readable_ms",
               static_cast<double>(rec_stats_.last_time_to_readable) /
                   static_cast<double>(simtime::kNanosPerMilli),
               0.0, 60000.0, 120);
  if (auto* ts = obs::sink()) ts->end_span(span, "ok");
  BS_INFO("recovery", "meta node %llu readable after %llu records",
          (unsigned long long)node_.id().value,
          (unsigned long long)plan.total_records());
}

RemoteMetadataStore::RemoteMetadataStore(rpc::Node& self,
                                         std::vector<NodeId> providers,
                                         ClientId as_client,
                                         SimDuration timeout,
                                         std::optional<rpc::RetryPolicy> retry)
    : self_(self), providers_(std::move(providers)) {
  assert(!providers_.empty());
  opts_.client = as_client;
  opts_.timeout = timeout;
  opts_.retry = retry;
}

NodeId RemoteMetadataStore::provider_for(const NodeKey& key) const {
  return providers_[key.hash() % providers_.size()];
}

sim::Task<Result<TreeNode>> RemoteMetadataStore::get(NodeKey key) {
  return get(key, obs::SpanId{0});
}

sim::Task<Result<void>> RemoteMetadataStore::put(NodeKey key,
                                                 TreeNode node) {
  return put(key, std::move(node), obs::SpanId{0});
}

sim::Task<Result<TreeNode>> RemoteMetadataStore::get(NodeKey key,
                                                     obs::SpanId parent) {
  MetaGetReq req;
  req.key = key;
  rpc::CallOptions o = opts_;
  o.parent_span = parent;
  auto r = co_await self_.cluster().call<MetaGetReq, MetaGetResp>(
      self_, provider_for(key), req, o);
  if (!r.ok()) co_return r.error();
  co_return std::move(r.value().node);
}

sim::Task<Result<void>> RemoteMetadataStore::put(NodeKey key,
                                                 TreeNode node,
                                                 obs::SpanId parent) {
  MetaPutReq req;
  req.key = key;
  req.node = std::move(node);
  rpc::CallOptions o = opts_;
  o.parent_span = parent;
  auto r = co_await self_.cluster().call<MetaPutReq, MetaPutResp>(
      self_, provider_for(key), std::move(req), o);
  if (!r.ok()) co_return r.error();
  co_return ok_result();
}

}  // namespace bs::blob
