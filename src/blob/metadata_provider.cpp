#include "blob/metadata_provider.hpp"

#include <cassert>

namespace bs::blob {

MetadataProvider::MetadataProvider(rpc::Node& node) : node_(node) {
  node_.add_crash_listener([this](const rpc::CrashOptions& c) {
    if (c.lose_storage) wipe();
  });
  node_.serve<MetaPutReq, MetaPutResp>(
      [this](const MetaPutReq& req,
             const rpc::Envelope&) -> sim::Task<Result<MetaPutResp>> {
        auto [it, inserted] = nodes_.insert_or_assign(req.key, req.node);
        if (inserted) bytes_ += req.node.wire_size();
        co_return MetaPutResp{};
      });
  node_.serve<MetaRemoveReq, MetaRemoveResp>(
      [this](const MetaRemoveReq& req,
             const rpc::Envelope&) -> sim::Task<Result<MetaRemoveResp>> {
        auto it = nodes_.find(req.key);
        if (it == nodes_.end()) co_return MetaRemoveResp{false};
        bytes_ -= it->second.wire_size();
        nodes_.erase(it);
        co_return MetaRemoveResp{true};
      });

  node_.serve<MetaGetReq, MetaGetResp>(
      [this](const MetaGetReq& req,
             const rpc::Envelope&) -> sim::Task<Result<MetaGetResp>> {
        auto it = nodes_.find(req.key);
        if (it == nodes_.end()) {
          co_return Error{Errc::not_found, "tree node not stored here"};
        }
        co_return MetaGetResp{it->second};
      });
}

RemoteMetadataStore::RemoteMetadataStore(rpc::Node& self,
                                         std::vector<NodeId> providers,
                                         ClientId as_client,
                                         SimDuration timeout,
                                         std::optional<rpc::RetryPolicy> retry)
    : self_(self), providers_(std::move(providers)) {
  assert(!providers_.empty());
  opts_.client = as_client;
  opts_.timeout = timeout;
  opts_.retry = retry;
}

NodeId RemoteMetadataStore::provider_for(const NodeKey& key) const {
  return providers_[key.hash() % providers_.size()];
}

sim::Task<Result<TreeNode>> RemoteMetadataStore::get(NodeKey key) {
  return get(key, obs::SpanId{0});
}

sim::Task<Result<void>> RemoteMetadataStore::put(NodeKey key,
                                                 TreeNode node) {
  return put(key, std::move(node), obs::SpanId{0});
}

sim::Task<Result<TreeNode>> RemoteMetadataStore::get(NodeKey key,
                                                     obs::SpanId parent) {
  MetaGetReq req;
  req.key = key;
  rpc::CallOptions o = opts_;
  o.parent_span = parent;
  auto r = co_await self_.cluster().call<MetaGetReq, MetaGetResp>(
      self_, provider_for(key), req, o);
  if (!r.ok()) co_return r.error();
  co_return std::move(r.value().node);
}

sim::Task<Result<void>> RemoteMetadataStore::put(NodeKey key,
                                                 TreeNode node,
                                                 obs::SpanId parent) {
  MetaPutReq req;
  req.key = key;
  req.node = std::move(node);
  rpc::CallOptions o = opts_;
  o.parent_span = parent;
  auto r = co_await self_.cluster().call<MetaPutReq, MetaPutResp>(
      self_, provider_for(key), std::move(req), o);
  if (!r.ok()) co_return r.error();
  co_return ok_result();
}

}  // namespace bs::blob
