// LMDB-style persistent store *model* for the stateful BlobSeer actors
// (data providers, metadata providers, version manager): a write-ahead
// journal of versioned metadata / chunk-index records plus periodic
// checkpoints, following the nano-node version_store idiom. Nothing is
// serialized to a real file — the journal tracks which records would be on
// disk (the durable prefix) and what replaying them would cost, so crash
// recovery has a measurable time-to-readable instead of being free:
//
//   append()  — write a record to the volatile tail (in the page cache);
//   seal()    — an fsync barrier: everything appended up to a sequence
//               number becomes durable (group commit — one fsync covers its
//               own record and every earlier append);
//   crash()   — drop the volatile tail (or everything, on store loss) and
//               optionally model a torn last record (power loss mid-write);
//   replay()  — visit checkpoint + durable tail in order to rebuild state,
//               after paying the ReplayPlan's disk cost.
//
// The disk cost rides the FlowScheduler through the node's disk resource,
// so fault-plane disk slowdowns stretch recovery exactly like they stretch
// regular I/O.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "rpc/rpc.hpp"

namespace bs::blob {

/// Cost model of the simulated persistent store's disk behaviour. Byte
/// costs (checkpoint scan, journal tail, torn-tail scan) go through the
/// node's FlowScheduler disk resource; per-record apply cost and fixed
/// latencies are pure delays.
struct DiskModel {
  double replay_iops{50000.0};  ///< records applied per second during replay
  SimDuration fsync_latency{simtime::micros(500)};  ///< per fsync barrier
  SimDuration mount_latency{simtime::millis(20)};   ///< open + manifest scan
};

struct JournalOptions {
  bool enabled{false};
  /// A checkpoint is taken once the fully-durable tail exceeds either
  /// bound, truncating the journal (warm restarts replay a short tail).
  std::uint64_t checkpoint_bytes{256ull * units::MB};
  std::uint64_t checkpoint_records{4096};
  DiskModel disk{};
};

/// What the pending recovery has to read and apply.
struct ReplayPlan {
  std::uint64_t checkpoint_bytes{0};
  std::uint64_t checkpoint_records{0};
  std::uint64_t tail_bytes{0};
  std::uint64_t tail_records{0};
  std::uint64_t torn_bytes{0};  ///< partial last record, scanned + truncated

  [[nodiscard]] std::uint64_t total_bytes() const {
    return checkpoint_bytes + tail_bytes + torn_bytes;
  }
  [[nodiscard]] std::uint64_t total_records() const {
    return checkpoint_records + tail_records;
  }
};

/// Per-service recovery bookkeeping (exported by bench_recovery).
struct RecoveryStats {
  std::uint64_t recoveries{0};
  std::uint64_t cold_starts{0};  ///< store was lost; nothing to replay
  std::uint64_t replay_bytes{0};
  std::uint64_t replay_records{0};
  std::uint64_t torn_tails_truncated{0};
  SimDuration last_time_to_readable{0};
  SimDuration total_time_to_readable{0};
};

/// The store model itself, generic over the service's record type. Not a
/// byte-accurate format: each record carries the byte size it would occupy
/// on disk, which is what the cost model consumes.
template <class Record>
class Journal {
 public:
  struct Entry {
    Record rec{};
    std::uint64_t bytes{0};
  };

  explicit Journal(JournalOptions opts) : opts_(opts) {}

  [[nodiscard]] bool enabled() const { return opts_.enabled; }
  [[nodiscard]] const JournalOptions& options() const { return opts_; }

  /// Appends to the volatile tail; the record is durable only once a
  /// seal() covers the returned sequence number.
  std::uint64_t append(Record rec, std::uint64_t bytes) {
    tail_.push_back(Entry{std::move(rec), bytes});
    return ++next_seq_;
  }

  /// fsync barrier: every record with sequence <= seq becomes durable.
  /// Call only after the fsync cost has been paid *and* the node survived
  /// it (journal_fsync returns true) — sealing first would make records
  /// durable for free.
  void seal(std::uint64_t seq) {
    if (seq <= base_seq_) return;  // predates the last checkpoint/wipe
    const std::uint64_t upto = seq - base_seq_;
    durable_ = std::max(durable_, std::min<std::uint64_t>(upto, tail_.size()));
  }

  /// Sequence number of the newest append (seal(tail_seq()) after an fsync
  /// covers the whole tail as it stood when the fsync started).
  [[nodiscard]] std::uint64_t tail_seq() const { return next_seq_; }

  /// Crash semantics. `lose_storage` wipes checkpoint and journal (cold,
  /// empty store); otherwise the volatile tail is dropped and, with
  /// `torn_tail`, the first un-sealed record is modelled as torn — half its
  /// bytes linger on disk and must be scanned and truncated at recovery.
  void crash(bool lose_storage, bool torn_tail) {
    if (lose_storage) {
      checkpoint_.clear();
      checkpoint_bytes_ = 0;
      tail_.clear();
      durable_ = 0;
      base_seq_ = next_seq_;
      torn_bytes_ = 0;
      wiped_ = true;
      return;
    }
    if (torn_tail && tail_.size() > durable_) {
      torn_bytes_ = (tail_[durable_].bytes + 1) / 2;
    }
    tail_.resize(durable_);
  }

  [[nodiscard]] ReplayPlan replay_plan() const {
    ReplayPlan p;
    p.checkpoint_bytes = checkpoint_bytes_;
    p.checkpoint_records = checkpoint_.size();
    for (const Entry& e : tail_) p.tail_bytes += e.bytes;
    p.tail_records = tail_.size();
    p.torn_bytes = torn_bytes_;
    return p;
  }

  /// Visits checkpoint records, then the durable tail, in append order.
  template <class Fn>
  void replay(Fn&& fn) const {
    for (const Entry& e : checkpoint_) fn(e.rec);
    for (const Entry& e : tail_) fn(e.rec);
  }

  /// Closes out a recovery: truncates the torn tail and clears the wipe
  /// marker. Returns what the recovery had to clean up.
  struct RecoveryOutcome {
    std::uint64_t torn_bytes{0};
    bool wiped{false};
  };
  RecoveryOutcome finish_recovery() {
    RecoveryOutcome out{torn_bytes_, wiped_};
    torn_bytes_ = 0;
    wiped_ = false;
    return out;
  }

  /// True once the fully-durable tail has outgrown the checkpoint policy.
  [[nodiscard]] bool checkpoint_due() const {
    if (!opts_.enabled || durable_ != tail_.size() || tail_.empty()) {
      return false;
    }
    std::uint64_t bytes = 0;
    for (const Entry& e : tail_) bytes += e.bytes;
    return bytes >= opts_.checkpoint_bytes ||
           tail_.size() >= opts_.checkpoint_records;
  }

  /// Replaces the checkpoint image and truncates the journal. Only legal at
  /// a commit boundary (no volatile tail — those records would be lost);
  /// returns false and does nothing otherwise.
  bool install_checkpoint(std::vector<Entry> image) {
    if (durable_ != tail_.size()) return false;
    checkpoint_ = std::move(image);
    checkpoint_bytes_ = 0;
    for (const Entry& e : checkpoint_) checkpoint_bytes_ += e.bytes;
    tail_.clear();
    durable_ = 0;
    base_seq_ = next_seq_;
    return true;
  }

  [[nodiscard]] std::size_t checkpoint_records() const {
    return checkpoint_.size();
  }
  [[nodiscard]] std::uint64_t checkpoint_bytes() const {
    return checkpoint_bytes_;
  }
  [[nodiscard]] std::size_t tail_records() const { return tail_.size(); }
  [[nodiscard]] std::size_t durable_records() const {
    return static_cast<std::size_t>(durable_);
  }
  [[nodiscard]] std::uint64_t torn_bytes() const { return torn_bytes_; }
  [[nodiscard]] bool wiped() const { return wiped_; }

 private:
  JournalOptions opts_;
  std::vector<Entry> checkpoint_;
  std::uint64_t checkpoint_bytes_{0};
  std::vector<Entry> tail_;
  std::uint64_t durable_{0};   ///< durable prefix length of tail_
  std::uint64_t base_seq_{0};  ///< sequence just before tail_[0]
  std::uint64_t next_seq_{0};  ///< sequence of the newest append
  std::uint64_t torn_bytes_{0};
  bool wiped_{false};
};

/// Pays the fsync cost for `bytes` of journal on `node`'s disk. Returns
/// true iff the node stayed up (same incarnation) for the whole barrier —
/// the caller seals only then; on false its record stays volatile and the
/// crash has already dropped it.
// bslint: allow(coro-ref-param): the node is cluster-owned for the whole
// simulation; crash safety is handled by incarnation pinning, not lifetime
sim::Task<bool> journal_fsync(rpc::Node& node, DiskModel disk,
                              std::uint64_t bytes);

/// Pays the recovery replay cost (mount + checkpoint/tail/torn bytes at
/// disk bandwidth + per-record apply IOPS). Returns false if the node
/// crashed again mid-replay — the next restart starts recovery over.
// bslint: allow(coro-ref-param): node is cluster-owned; see journal_fsync
sim::Task<bool> journal_replay_cost(rpc::Node& node, DiskModel disk,
                                    ReplayPlan plan);

/// Charges a background checkpoint write of `bytes` against the node's
/// disk (detached flow: the service keeps serving while it drains).
void charge_checkpoint_write(rpc::Node& node, std::uint64_t bytes);

}  // namespace bs::blob
