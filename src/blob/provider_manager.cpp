#include "blob/provider_manager.hpp"

#include <algorithm>
#include <cassert>

#include "common/log.hpp"

namespace bs::blob {

ProviderManager::ProviderManager(rpc::Node& node, Options options)
    : node_(node), options_(std::move(options)),
      strategy_(make_strategy(options_.strategy)), rng_(options_.rng_seed) {
  assert(strategy_ != nullptr && "unknown allocation strategy");
  register_handlers();
  // The reaper dies with the node; a restart revives it. The registry
  // itself survives crashes (durable manager metadata).
  node_.add_restart_listener([this] {
    if (reaper_enabled_) start_reaper();
  });
}

std::size_t ProviderManager::alive_count() const {
  std::size_t n = 0;
  for (const auto& [id, e] : registry_) {
    if (!e.decommissioning && e.health != ProviderHealth::dead) ++n;
  }
  return n;
}

ProviderManager::HealthCounts ProviderManager::health_counts() const {
  HealthCounts c;
  for (const auto& [id, e] : registry_) {
    switch (e.health) {
      case ProviderHealth::alive: ++c.alive; break;
      case ProviderHealth::suspect: ++c.suspect; break;
      case ProviderHealth::dead: ++c.dead; break;
    }
  }
  return c;
}

std::vector<ProviderEntry> ProviderManager::snapshot() const {
  std::vector<ProviderEntry> out;
  out.reserve(registry_.size());
  for (const auto& [id, e] : registry_) out.push_back(e);
  return out;
}

net::SiteId ProviderManager::site_of(NodeId id) const {
  const rpc::Node* n = node_.cluster().node(id);
  return n != nullptr ? n->site() : node_.site();
}

std::vector<ProviderEntry*> ProviderManager::eligible(
    std::uint64_t chunk_size, const std::vector<NodeId>& exclude,
    std::size_t min_count, net::SiteId requester_site) {
  std::vector<ProviderEntry*> out;
  std::vector<ProviderEntry*> suspects;
  out.reserve(registry_.size());
  for (auto& [id, e] : registry_) {
    if (e.decommissioning) continue;
    if (e.health == ProviderHealth::dead) continue;
    if (e.free_space < chunk_size) continue;
    if (std::find(exclude.begin(), exclude.end(), e.node) != exclude.end()) {
      continue;
    }
    if (reachable_ && !reachable_(requester_site, site_of(e.node))) continue;
    if (e.health == ProviderHealth::suspect) {
      suspects.push_back(&e);
    } else {
      out.push_back(&e);
    }
  }
  // Suspects are a last resort: drafted only when the healthy pool cannot
  // satisfy the requested placement width.
  for (auto* s : suspects) {
    if (out.size() >= min_count) break;
    out.push_back(s);
  }
  return out;
}

void ProviderManager::register_handlers() {
  node_.serve<RegisterProviderReq, RegisterProviderResp>(
      [this](const RegisterProviderReq& req,
             const rpc::Envelope&) -> sim::Task<Result<RegisterProviderResp>> {
        ProviderEntry e;
        e.node = req.provider;
        e.capacity = req.capacity;
        // A provider restarting with an intact store reports what it kept;
        // a zeroed report means a fresh (or wiped) store.
        const bool fresh = req.free_space == 0 && req.chunks == 0;
        e.free_space = fresh ? req.capacity : req.free_space;
        e.chunks = req.chunks;
        e.last_heartbeat = node_.cluster().sim().now();
        // Re-registration (provider restart) resets the entry.
        registry_[req.provider.value] = e;
        BS_DEBUG("pm", "provider %llu registered (%s)",
                 (unsigned long long)req.provider.value,
                 units::format_bytes(req.capacity).c_str());
        co_return RegisterProviderResp{};
      });

  node_.serve<DeregisterProviderReq, DeregisterProviderResp>(
      [this](const DeregisterProviderReq& req, const rpc::Envelope&)
          -> sim::Task<Result<DeregisterProviderResp>> {
        registry_.erase(req.provider.value);
        co_return DeregisterProviderResp{};
      });

  node_.serve<HeartbeatReq, HeartbeatResp>(
      [this](const HeartbeatReq& req,
             const rpc::Envelope&) -> sim::Task<Result<HeartbeatResp>> {
        auto it = registry_.find(req.provider.value);
        if (it == registry_.end()) co_return HeartbeatResp{false};
        auto& e = it->second;
        e.free_space = req.free_space;
        e.chunks = req.chunks;
        e.store_rate = req.store_rate;
        e.last_heartbeat = node_.cluster().sim().now();
        // A fresh heartbeat supersedes optimistic pending-alloc accounting
        // and clears any suspicion: the provider is demonstrably serving.
        e.pending_allocs = 0;
        e.health = ProviderHealth::alive;
        e.reported_failures = 0;
        co_return HeartbeatResp{true};
      });

  node_.serve<ReportFailureReq, ReportFailureResp>(
      [this](const ReportFailureReq& req,
             const rpc::Envelope&) -> sim::Task<Result<ReportFailureResp>> {
        ++failure_reports_;
        auto it = registry_.find(req.provider.value);
        if (it == registry_.end()) co_return ReportFailureResp{};
        auto& e = it->second;
        ++e.reported_failures;
        if (e.health == ProviderHealth::alive) {
          e.health = ProviderHealth::suspect;
        }
        if (e.reported_failures >= options_.failure_reports_dead &&
            e.health != ProviderHealth::dead) {
          e.health = ProviderHealth::dead;
          BS_INFO("pm", "provider %llu declared dead (%u failure reports)",
                  (unsigned long long)req.provider.value,
                  (unsigned)e.reported_failures);
        }
        co_return ReportFailureResp{};
      });

  node_.serve<AllocateReq, AllocateResp>(
      [this](const AllocateReq& req,
             const rpc::Envelope& env) -> sim::Task<Result<AllocateResp>> {
        if (req.chunk_count == 0) {
          co_return Error{Errc::invalid_argument, "zero chunks"};
        }
        AllocateResp resp;
        resp.placements.reserve(req.chunk_count);
        const std::uint64_t need = std::max<std::uint64_t>(1, req.chunk_size);
        const net::SiteId from = site_of(env.src_node);
        for (std::uint64_t i = 0; i < req.chunk_count; ++i) {
          auto pool = eligible(need, req.exclude, req.replication, from);
          auto placed =
              strategy_->place_chunk(pool, need, req.replication, rng_);
          if (placed.empty()) {
            co_return Error{Errc::out_of_space,
                            "no eligible data providers"};
          }
          allocated_ += placed.size();
          resp.placements.push_back(std::move(placed));
        }
        co_return resp;
      });

  node_.serve<ListProvidersReq, ListProvidersResp>(
      [this](const ListProvidersReq&,
             const rpc::Envelope&) -> sim::Task<Result<ListProvidersResp>> {
        ListProvidersResp resp;
        resp.providers = snapshot();
        co_return resp;
      });

  node_.serve<SetDecommissionReq, SetDecommissionResp>(
      [this](const SetDecommissionReq& req,
             const rpc::Envelope&) -> sim::Task<Result<SetDecommissionResp>> {
        auto it = registry_.find(req.provider.value);
        if (it == registry_.end()) {
          co_return Error{Errc::not_found, "unknown provider"};
        }
        it->second.decommissioning = req.decommission;
        co_return SetDecommissionResp{};
      });
}

void ProviderManager::start_reaper() {
  reaper_enabled_ = true;
  if (reaper_running_) return;
  reaper_running_ = true;
  node_.cluster().sim().spawn(reaper_loop());
}

sim::Task<void> ProviderManager::reaper_loop() {
  auto& sim = node_.cluster().sim();
  const SimDuration suspect_after =
      options_.heartbeat_interval * options_.missed_heartbeats_suspect;
  const SimDuration deadline =
      options_.heartbeat_interval * options_.missed_heartbeats_dead;
  while (reaper_enabled_ && node_.up()) {
    co_await sim.delay(options_.heartbeat_interval);
    if (!node_.up()) break;
    const SimTime now = sim.now();
    for (auto it = registry_.begin(); it != registry_.end();) {
      auto& e = it->second;
      const SimDuration silent = now - e.last_heartbeat;
      if (silent > deadline) {
        BS_INFO("pm", "provider %llu expired (no heartbeat)",
                (unsigned long long)e.node.value);
        it = registry_.erase(it);
        continue;
      }
      if (silent > suspect_after && e.health == ProviderHealth::alive) {
        e.health = ProviderHealth::suspect;
      }
      ++it;
    }
  }
  reaper_running_ = false;
}

}  // namespace bs::blob
