// Provider manager actor: registry of live data providers (heartbeat-based
// liveness) plus the allocation strategy mapping new chunks to providers.
// The self-configuration engine grows/shrinks the pool through this actor
// (register / decommission / deregister).
#pragma once

#include <map>
#include <memory>

#include "blob/allocation.hpp"
#include "blob/messages.hpp"
#include "rpc/rpc.hpp"

namespace bs::blob {

struct ProviderManagerOptions {
  std::string strategy{"load_aware"};
  SimDuration heartbeat_interval{simtime::seconds(2)};
  int missed_heartbeats_dead{3};
  std::uint64_t rng_seed{42};
};

class ProviderManager {
 public:
  using Options = ProviderManagerOptions;

  ProviderManager(rpc::Node& node, Options options = {});

  [[nodiscard]] NodeId id() const { return node_.id(); }
  [[nodiscard]] std::size_t provider_count() const { return registry_.size(); }
  [[nodiscard]] std::size_t alive_count() const;
  [[nodiscard]] const char* strategy_name() const {
    return strategy_->name();
  }

  /// Direct registry snapshot (for tests and same-process engines).
  [[nodiscard]] std::vector<ProviderEntry> snapshot() const;

  /// Starts the reaper that expires providers missing heartbeats.
  void start_reaper();

  /// Total chunks allocated so far (placement decisions made).
  [[nodiscard]] std::uint64_t chunks_allocated() const { return allocated_; }

 private:
  void register_handlers();
  sim::Task<void> reaper_loop();
  [[nodiscard]] std::vector<ProviderEntry*> eligible(
      std::uint64_t chunk_size, const std::vector<NodeId>& exclude);

  rpc::Node& node_;
  Options options_;
  std::unique_ptr<AllocationStrategy> strategy_;
  Rng rng_;
  std::map<std::uint64_t, ProviderEntry> registry_;  // by NodeId value
  std::uint64_t allocated_{0};
  bool reaper_on_{false};
};

}  // namespace bs::blob
