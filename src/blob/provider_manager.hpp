// Provider manager actor: registry of live data providers (heartbeat-based
// liveness) plus the allocation strategy mapping new chunks to providers.
// The self-configuration engine grows/shrinks the pool through this actor
// (register / decommission / deregister).
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "blob/allocation.hpp"
#include "blob/messages.hpp"
#include "rpc/rpc.hpp"

namespace bs::blob {

struct ProviderManagerOptions {
  std::string strategy{"load_aware"};
  SimDuration heartbeat_interval{simtime::seconds(2)};
  /// Silence thresholds, in heartbeat intervals: a provider turns suspect
  /// first (allocation avoids it while the pool allows), then is erased.
  int missed_heartbeats_suspect{2};
  int missed_heartbeats_dead{3};
  /// Client transport failures against a provider before it is declared
  /// dead outright — much faster than waiting out the heartbeat deadline.
  std::uint32_t failure_reports_dead{3};
  std::uint64_t rng_seed{42};
};

class ProviderManager {
 public:
  using Options = ProviderManagerOptions;

  ProviderManager(rpc::Node& node, Options options = {});

  [[nodiscard]] NodeId id() const { return node_.id(); }
  [[nodiscard]] std::size_t provider_count() const { return registry_.size(); }
  [[nodiscard]] std::size_t alive_count() const;
  [[nodiscard]] const char* strategy_name() const {
    return strategy_->name();
  }

  /// Direct registry snapshot (for tests and same-process engines).
  [[nodiscard]] std::vector<ProviderEntry> snapshot() const;

  /// Health tally over the registry, fed to the Knowledge base so the MAPE
  /// loop can re-provision around failing providers.
  struct HealthCounts {
    std::size_t alive{0};
    std::size_t suspect{0};
    std::size_t dead{0};
  };
  [[nodiscard]] HealthCounts health_counts() const;

  /// Starts the reaper that expires providers missing heartbeats.
  void start_reaper();

  /// Total chunks allocated so far (placement decisions made).
  [[nodiscard]] std::uint64_t chunks_allocated() const { return allocated_; }
  [[nodiscard]] std::uint64_t failure_reports() const {
    return failure_reports_;
  }

  /// Geo-replication steering: when set, allocation for a requester at site
  /// `from` skips providers at any site `to` with reachable(from, to) false
  /// (a known partition would doom the placement's first write).
  using ReachabilityFn = std::function<bool(net::SiteId, net::SiteId)>;
  void set_reachability(ReachabilityFn fn) { reachable_ = std::move(fn); }

 private:
  void register_handlers();
  sim::Task<void> reaper_loop();
  /// Providers a new chunk may land on. Alive entries come first; suspects
  /// are drafted only when the alive pool is narrower than `min_count`
  /// (the requested replication width). Dead providers never place.
  [[nodiscard]] std::vector<ProviderEntry*> eligible(
      std::uint64_t chunk_size, const std::vector<NodeId>& exclude,
      std::size_t min_count, net::SiteId requester_site);
  [[nodiscard]] net::SiteId site_of(NodeId id) const;

  rpc::Node& node_;
  Options options_;
  std::unique_ptr<AllocationStrategy> strategy_;
  Rng rng_;
  std::map<std::uint64_t, ProviderEntry> registry_;  // by NodeId value
  std::uint64_t allocated_{0};
  std::uint64_t failure_reports_{0};
  bool reaper_enabled_{false};
  bool reaper_running_{false};
  ReachabilityFn reachable_;
};

}  // namespace bs::blob
