#include "blob/meta_tree.hpp"

namespace bs::blob {

sim::Task<Result<TreeNode>> InMemoryMetadataStore::get(NodeKey key) {
  auto it = nodes_.find(key);
  if (it == nodes_.end()) {
    co_return Error{Errc::not_found, "metadata node not found"};
  }
  co_return it->second;
}

sim::Task<Result<void>> InMemoryMetadataStore::put(NodeKey key,
                                                   TreeNode node) {
  nodes_[key] = std::move(node);
  co_return ok_result();
}

}  // namespace bs::blob
