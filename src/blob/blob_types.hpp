// Vocabulary types of the BlobSeer data model: BLOBs are unstructured byte
// ranges split into fixed-size chunks; every write produces a new immutable
// version described by a copy-on-write segment tree over the chunk space.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/hash.hpp"
#include "common/types.hpp"

namespace bs::blob {

/// Version numbers are per-blob, dense-ish (aborted writes leave gaps),
/// starting at 1. Version 0 is the empty blob at creation.
using Version = std::uint64_t;
inline constexpr Version kInvalidVersion =
    std::numeric_limits<std::uint64_t>::max();
inline constexpr Version kLatestVersion = kInvalidVersion - 1;

/// Identifies one stored chunk: the blob, the version whose write produced
/// it, and the chunk index in blob space. Chunks are immutable once stored.
struct ChunkKey {
  BlobId blob{};
  Version version{kInvalidVersion};
  std::uint64_t index{0};

  friend constexpr auto operator<=>(const ChunkKey&, const ChunkKey&) =
      default;

  [[nodiscard]] std::uint64_t hash() const {
    return hash_combine(hash_combine(fnv1a_u64(blob.value), version), index);
  }
};

/// Data travelling to/from providers. Large experiment payloads are
/// size+checksum only; small application payloads can carry real bytes
/// (stored verbatim, enabling end-to-end data fidelity in examples/tests).
struct Payload {
  std::uint64_t size{0};
  std::uint64_t checksum{0};
  std::shared_ptr<const std::vector<std::uint8_t>> bytes;  // optional

  static std::uint64_t checksum_of(const std::vector<std::uint8_t>& data) {
    return fnv1a(std::string_view(
        reinterpret_cast<const char*>(data.data()), data.size()));
  }

  static Payload from_bytes(std::vector<std::uint8_t> data) {
    Payload p;
    p.size = data.size();
    p.checksum = checksum_of(data);
    p.bytes = std::make_shared<const std::vector<std::uint8_t>>(
        std::move(data));
    return p;
  }

  /// Synthetic payload: checksum derived from a caller-chosen content id,
  /// so readers can verify without shipping real bytes.
  static Payload synthetic(std::uint64_t size, std::uint64_t content_id) {
    return Payload{size, fnv1a_u64(content_id), nullptr};
  }
};

/// Where one chunk lives and what it contains.
struct ChunkDescriptor {
  ChunkKey key;
  std::uint64_t size{0};  ///< valid bytes in this chunk (may be < chunk_size)
  std::uint64_t checksum{0};
  std::vector<NodeId> replicas;

  [[nodiscard]] std::uint64_t wire_size() const {
    return 48 + 8 * replicas.size();
  }
};

/// Published metadata of one blob version.
struct VersionInfo {
  Version version{0};
  std::uint64_t size{0};         ///< logical blob size in bytes
  std::uint64_t root_chunks{0};  ///< segment-tree root coverage (chunks, pow2)
};

/// Static + latest-published state of a blob.
struct BlobDescriptor {
  BlobId id{};
  std::uint64_t chunk_size{0};
  std::uint32_t replication{1};       ///< applied to future writes
  std::uint32_t base_replication{1};  ///< creation-time floor
  SimTime created_at{0};
  SimDuration ttl{0};  ///< 0 = permanent; else removable after expiry
  VersionInfo latest;

  [[nodiscard]] std::uint64_t wire_size() const { return 80; }
};

/// One (possibly still pending) write in a blob's history; the unit of the
/// forward-reference scheme that lets concurrent writers build metadata
/// without reading each other's uncommitted tree nodes.
struct WriteExtent {
  Version version{kInvalidVersion};
  std::uint64_t first_chunk{0};
  std::uint64_t chunk_count{0};
  /// Root coverage of this version's tree (needed to know whether a
  /// borrowed subtree is taller than the tree it borrows from).
  std::uint64_t root_chunks{0};

  [[nodiscard]] bool overlaps(std::uint64_t lo_chunk,
                              std::uint64_t count) const {
    return first_chunk < lo_chunk + count &&
           lo_chunk < first_chunk + chunk_count;
  }
};

constexpr std::uint64_t next_pow2(std::uint64_t v) {
  if (v <= 1) return 1;
  --v;
  v |= v >> 1;
  v |= v >> 2;
  v |= v >> 4;
  v |= v >> 8;
  v |= v >> 16;
  v |= v >> 32;
  return v + 1;
}

constexpr std::uint64_t div_ceil(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

}  // namespace bs::blob

namespace std {
template <>
struct hash<bs::blob::ChunkKey> {
  size_t operator()(const bs::blob::ChunkKey& k) const noexcept {
    return static_cast<size_t>(k.hash());
  }
};
}  // namespace std
