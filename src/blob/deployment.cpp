#include "blob/deployment.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace bs::blob {

Deployment::Deployment(sim::Simulation& sim, DeploymentConfig config)
    : sim_(sim), config_(config) {
  if (const char* env = std::getenv("BS_JOURNAL")) {
    if (std::strcmp(env, "on") == 0 || std::strcmp(env, "1") == 0) {
      config_.journal.enabled = true;
    } else if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0) {
      config_.journal.enabled = false;
    }
  }
  config_.vm_options.journal = config_.journal;
  cluster_ = std::make_unique<rpc::Cluster>(
      sim,
      config_.sites <= 1 ? net::Topology::single_site()
                         : net::Topology::grid5000(config_.sites),
      config_.fault_seed);

  // Manager actors are lightweight control-plane services. The version
  // manager's commit handler legitimately *waits* (ordered publication)
  // while holding a service slot, so its concurrency must exceed the
  // number of concurrent writers or commits deadlock behind each other.
  rpc::NodeSpec manager_spec = config_.node_spec;
  manager_spec.service_concurrency =
      std::max<std::size_t>(manager_spec.service_concurrency, 1024);
  vm_node_ = cluster_->add_node(next_site(), manager_spec);
  vm_ = std::make_unique<VersionManager>(*vm_node_, config_.vm_options);
  if (config_.start_lease_sweeper) vm_->start_lease_sweeper();
  pm_node_ = cluster_->add_node(next_site(), manager_spec);
  pm_ = std::make_unique<ProviderManager>(*pm_node_, config_.pm_options);
  if (config_.start_reaper) pm_->start_reaper();

  for (std::size_t i = 0; i < config_.metadata_providers; ++i) {
    rpc::Node* n = cluster_->add_node(next_site(), config_.node_spec);
    MetadataProvider::Options mopts;
    mopts.journal = config_.journal;
    meta_providers_.push_back(std::make_unique<MetadataProvider>(*n, mopts));
  }
  for (std::size_t i = 0; i < config_.data_providers; ++i) {
    add_provider();
  }
}

DataProvider* Deployment::provider_by_node(NodeId id) {
  for (auto& p : providers_) {
    if (p->id() == id) return p.get();
  }
  return nullptr;
}

BlobClient::Endpoints Deployment::endpoints() const {
  BlobClient::Endpoints e;
  e.version_manager = vm_node_->id();
  e.provider_manager = pm_node_->id();
  for (const auto& mp : meta_providers_) {
    e.metadata_providers.push_back(mp->id());
  }
  return e;
}

BlobClient* Deployment::add_client(ClientConfig config) {
  rpc::Node* n = cluster_->add_node(next_site(), config_.client_spec);
  const ClientId id{next_client_id_++};
  clients_.push_back(std::make_unique<BlobClient>(
      *n, id, endpoints(), config, /*rng_seed=*/0xC11E47 + id.value));
  return clients_.back().get();
}

DataProvider* Deployment::add_provider() {
  rpc::Node* n = cluster_->add_node(next_site(), config_.node_spec);
  DataProvider::Options opts;
  opts.capacity = config_.provider_capacity;
  opts.journal = config_.journal;
  providers_.push_back(std::make_unique<DataProvider>(*n, opts));
  if (config_.start_heartbeats) {
    providers_.back()->start_heartbeats(pm_node_->id());
  }
  return providers_.back().get();
}

void Deployment::remove_provider(NodeId id) {
  if (DataProvider* p = provider_by_node(id)) {
    p->stop_heartbeats();
  }
  cluster_->retire_node(id);
}

}  // namespace bs::blob
