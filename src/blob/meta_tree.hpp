// Versioned copy-on-write segment tree — BlobSeer's metadata scheme. Each
// blob version has a root covering [0, root_chunks) (power of two); inner
// nodes record, per child half, the version whose tree that half belongs to;
// leaves (single chunks) hold chunk descriptors. Writing a range creates new
// leaves + the inner path above them and *borrows* untouched subtrees from
// earlier versions by version reference, so old versions stay readable
// forever and concurrent writers never mutate shared state.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "blob/blob_types.hpp"
#include "common/result.hpp"
#include "sim/task.hpp"

namespace bs::blob {

/// Identifies one tree node: blob + version that created it + the chunk
/// range it covers (size_chunks is a power of two; 1 = leaf).
struct NodeKey {
  BlobId blob{};
  Version version{kInvalidVersion};
  std::uint64_t offset_chunks{0};
  std::uint64_t size_chunks{0};

  friend constexpr auto operator<=>(const NodeKey&, const NodeKey&) = default;

  [[nodiscard]] bool is_leaf() const { return size_chunks == 1; }

  [[nodiscard]] std::uint64_t hash() const {
    return hash_combine(
        hash_combine(hash_combine(fnv1a_u64(blob.value), version),
                     offset_chunks),
        size_chunks);
  }

  [[nodiscard]] std::uint64_t wire_size() const { return 32; }
};

struct TreeNode {
  // Inner node: versions of the two child subtrees (kInvalidVersion = that
  // half has never been written = hole).
  Version left_version{kInvalidVersion};
  Version right_version{kInvalidVersion};
  bool leaf{false};
  ChunkDescriptor chunk;  ///< meaningful iff leaf

  [[nodiscard]] std::uint64_t wire_size() const {
    return leaf ? 17 + chunk.wire_size() : 17;
  }
};

/// Abstract metadata node storage. The distributed implementation hashes
/// NodeKeys across metadata providers; tests use the in-memory store.
/// put() must be idempotent: rebuilding a write after an abort-repair
/// overwrites nodes with identical keys.
class MetadataStore {
 public:
  virtual ~MetadataStore() = default;
  // NodeKey is taken by value throughout: key parameters are copied into
  // the coroutine frame, which keeps every implementation safe to suspend
  // regardless of the caller's lifetime (bslint coro-ref-param).
  virtual sim::Task<Result<TreeNode>> get(NodeKey key) = 0;
  virtual sim::Task<Result<void>> put(NodeKey key, TreeNode node) = 0;
};

/// Purely local store for unit tests and single-node deployments.
class InMemoryMetadataStore final : public MetadataStore {
 public:
  sim::Task<Result<TreeNode>> get(NodeKey key) override;
  sim::Task<Result<void>> put(NodeKey key, TreeNode node) override;

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

 private:
  struct KeyHash {
    std::size_t operator()(const NodeKey& k) const noexcept {
      return static_cast<std::size_t>(k.hash());
    }
  };
  std::unordered_map<NodeKey, TreeNode, KeyHash> nodes_;
};

}  // namespace bs::blob

namespace std {
template <>
struct hash<bs::blob::NodeKey> {
  size_t operator()(const bs::blob::NodeKey& k) const noexcept {
    return static_cast<size_t>(k.hash());
  }
};
}  // namespace std
