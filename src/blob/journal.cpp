#include "blob/journal.hpp"

namespace bs::blob {

namespace {

SimDuration apply_delay(const DiskModel& disk, std::uint64_t records) {
  if (records == 0 || disk.replay_iops <= 0) return 0;
  return static_cast<SimDuration>(
      static_cast<double>(records) / disk.replay_iops *
      static_cast<double>(simtime::kNanosPerSec));
}

bool still_up(const rpc::Node& node, std::uint64_t incarnation) {
  return node.up() && node.incarnation() == incarnation;
}

}  // namespace

// bslint: allow(coro-ref-param): the node is cluster-owned for the whole
// simulation; crash safety is handled by incarnation pinning, not lifetime
sim::Task<bool> journal_fsync(rpc::Node& node, DiskModel disk,
                              std::uint64_t bytes) {
  auto& cluster = node.cluster();
  const std::uint64_t inc = node.incarnation();
  if (bytes > 0) {
    std::vector<net::Resource*> rs{node.disk()};
    co_await cluster.flows().transfer(static_cast<double>(bytes),
                                      std::move(rs));
  }
  if (!still_up(node, inc)) co_return false;
  co_await cluster.sim().delay(disk.fsync_latency);
  co_return still_up(node, inc);
}

// bslint: allow(coro-ref-param): node is cluster-owned; see journal_fsync
sim::Task<bool> journal_replay_cost(rpc::Node& node, DiskModel disk,
                                    ReplayPlan plan) {
  auto& cluster = node.cluster();
  const std::uint64_t inc = node.incarnation();
  co_await cluster.sim().delay(disk.mount_latency);
  if (!still_up(node, inc)) co_return false;
  if (plan.total_bytes() > 0) {
    std::vector<net::Resource*> rs{node.disk()};
    co_await cluster.flows().transfer(static_cast<double>(plan.total_bytes()),
                                      std::move(rs));
    if (!still_up(node, inc)) co_return false;
  }
  co_await cluster.sim().delay(apply_delay(disk, plan.total_records()));
  co_return still_up(node, inc);
}

void charge_checkpoint_write(rpc::Node& node, std::uint64_t bytes) {
  if (bytes == 0) return;
  auto& cluster = node.cluster();
  cluster.sim().spawn(
      [](rpc::Cluster& cl, net::Resource* disk, double b) -> sim::Task<void> {
        std::vector<net::Resource*> rs{disk};
        co_await cl.flows().transfer(b, std::move(rs));
      }(cluster, node.disk(), static_cast<double>(bytes)));
}

}  // namespace bs::blob
