// Pluggable chunk-placement strategies for the provider manager ("the
// provider manager ... implements the allocation strategies that map new
// chunks to available data providers", §III-A). Strategies see the live
// provider registry and place one chunk at a time (replication-many distinct
// providers).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "blob/messages.hpp"
#include "common/rng.hpp"

namespace bs::blob {

class AllocationStrategy {
 public:
  virtual ~AllocationStrategy() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Picks `replication` distinct providers for one chunk of `chunk_size`
  /// bytes from `candidates` (alive, not decommissioning, not excluded,
  /// enough free space). Returns fewer when the pool is too small. May
  /// mutate entries' pending_allocs to remember in-flight placements.
  virtual std::vector<NodeId> place_chunk(
      std::vector<ProviderEntry*>& candidates, std::uint64_t chunk_size,
      std::uint32_t replication, Rng& rng) = 0;
};

/// Rotates a cursor over the provider list — BlobSeer's default.
class RoundRobinStrategy final : public AllocationStrategy {
 public:
  const char* name() const override { return "round_robin"; }
  std::vector<NodeId> place_chunk(std::vector<ProviderEntry*>& candidates,
                                  std::uint64_t chunk_size,
                                  std::uint32_t replication,
                                  Rng& rng) override;

 private:
  std::size_t cursor_{0};
};

/// Uniformly random distinct providers.
class RandomStrategy final : public AllocationStrategy {
 public:
  const char* name() const override { return "random"; }
  std::vector<NodeId> place_chunk(std::vector<ProviderEntry*>& candidates,
                                  std::uint64_t chunk_size,
                                  std::uint32_t replication,
                                  Rng& rng) override;
};

/// Power-of-two-choices on a load score mixing recent store rate, pending
/// allocations and fullness — the "load-aware" strategy the self-*
/// machinery prefers.
class LoadAwareStrategy final : public AllocationStrategy {
 public:
  const char* name() const override { return "load_aware"; }
  std::vector<NodeId> place_chunk(std::vector<ProviderEntry*>& candidates,
                                  std::uint64_t chunk_size,
                                  std::uint32_t replication,
                                  Rng& rng) override;

  /// Load score of one provider (exposed for tests/benches).
  static double score(const ProviderEntry& e);
};

/// Factory by name: "round_robin" | "random" | "load_aware".
std::unique_ptr<AllocationStrategy> make_strategy(const std::string& name);

}  // namespace bs::blob
