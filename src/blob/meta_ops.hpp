// Client-side segment-tree algorithms.
//
// Writes use BlobSeer's *forward references*: the version manager hands each
// writer the blob's write history (including writes still in flight), from
// which the writer computes every child-version pointer locally — no
// metadata reads, so concurrent writers build their trees fully in parallel
// and only the tiny version-assignment step is serialized.
//
// Reads walk the published tree level by level, fetching the nodes of each
// level in parallel from the metadata providers.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "blob/meta_tree.hpp"
#include "sim/simulation.hpp"

namespace bs::blob::meta_ops {

/// Latest version <= vmax whose write overlaps chunks [lo, lo+count);
/// kInvalidVersion when none does (the subtree is a hole).
Version subtree_version(std::span<const WriteExtent> history, Version vmax,
                        std::uint64_t lo, std::uint64_t count);

/// All (key, node) records the write `w` must store: one leaf per written
/// chunk plus the copy-on-write inner path above them, up to a root covering
/// [0, root_chunks). `leaves[i]` describes chunk `w.first_chunk + i`.
/// `history` must contain every write of this blob with version < w.version
/// (committed or pending); deterministic, pure.
std::vector<std::pair<NodeKey, TreeNode>> build_nodes(
    BlobId blob, const WriteExtent& w,
    std::span<const ChunkDescriptor> leaves,
    std::span<const WriteExtent> history, std::uint64_t root_chunks);

/// The (offset, size) chunk ranges of every tree node the write `w`
/// created (leaves, inner path, bridges) — exactly the keys build_nodes
/// would emit. Used by the version manager to compute which metadata nodes
/// a trim makes unreferenced.
std::vector<std::pair<std::uint64_t, std::uint64_t>> node_ranges(
    const WriteExtent& w, std::span<const WriteExtent> history,
    std::uint64_t root_chunks);

/// One resolved leaf of a read: either a hole (never-written chunk) or a
/// chunk descriptor telling the reader where replicas live.
struct LeafRef {
  std::uint64_t chunk_index{0};
  bool hole{true};
  ChunkDescriptor chunk;
};

/// Walks the tree of published version `root_version` (root coverage
/// `root_chunks`) and resolves all leaves intersecting chunk range
/// [lo, lo+count), in chunk order. Levels are fetched in parallel.
// bslint: allow(coro-ref-param): sim and store outlive the read; every
// caller co_awaits collect() in a single full-expression
sim::Task<Result<std::vector<LeafRef>>> collect(
    sim::Simulation& sim, MetadataStore& store, BlobId blob,
    Version root_version, std::uint64_t root_chunks, std::uint64_t lo,
    std::uint64_t count);

}  // namespace bs::blob::meta_ops
