// Version manager actor: serializes concurrent writes and publishes a new
// BLOB version for each one (§III-A). Version numbers are assigned at
// StartWrite; publication happens strictly in version order once a write's
// data and metadata are durable. Writers receive the blob's write history
// (including in-flight writes) so they can build their segment trees with
// forward references, fully in parallel. An aborted write bumps the blob's
// abort epoch; a committer holding a stale epoch is asked to rebuild its
// metadata against the corrected history before it can publish — this keeps
// published trees free of dangling references.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>

#include "blob/journal.hpp"
#include "blob/messages.hpp"
#include "rpc/rpc.hpp"
#include "sim/sync.hpp"

namespace bs::blob {

struct VersionManagerOptions {
  /// An uncommitted pending write older than this is auto-aborted by the
  /// lease sweeper. Ordered publication stalls on the first uncommitted
  /// version, so an orphan (writer crashed, StartWrite response lost)
  /// would otherwise block every later commit forever.
  SimDuration write_lease{simtime::seconds(300)};
  SimDuration sweep_interval{simtime::seconds(10)};
  /// Persistent version-metadata store model. Disabled: blob state survives
  /// crashes intact (the paper's durable version manager), as before.
  JournalOptions journal{};
};

class VersionManager {
 public:
  using Options = VersionManagerOptions;

  /// Publication notification for the instrumentation layer.
  struct PublishEvent {
    BlobId blob;
    Version version{0};
    std::uint64_t size{0};
    std::uint64_t written_bytes{0};
    ClientId writer{};
  };

  explicit VersionManager(rpc::Node& node, Options opts = {});

  /// Spawns the background loop enforcing Options::write_lease.
  void start_lease_sweeper();

  [[nodiscard]] NodeId id() const { return node_.id(); }
  [[nodiscard]] std::size_t blob_count() const { return blobs_.size(); }
  [[nodiscard]] std::uint64_t leases_expired() const {
    return leases_expired_;
  }

  void set_publish_observer(std::function<void(const PublishEvent&)> obs) {
    publish_observer_ = std::move(obs);
  }

  /// Geo-replication hooks: version lifecycle events the replication plane
  /// mirrors to remote sites. `published` fires when a version becomes
  /// visible, `trimmed` after a version is removed (per version, after the
  /// trim's journal commit), `deleted` after a blob is tombstoned. The
  /// plane's custody dedup + reconciliation absorb replays of any of them.
  struct GeoHooks {
    std::function<void(BlobId, Version, std::uint64_t)> published;
    std::function<void(BlobId, Version)> trimmed;
    std::function<void(BlobId)> deleted;
  };
  void set_geo_hooks(GeoHooks hooks) { geo_hooks_ = std::move(hooks); }

  /// Snapshot of every live published version (geo-replication reprime
  /// after a custody-store wipe).
  struct PublishedVersion {
    BlobId blob;
    Version version{0};
    std::uint64_t size{0};
  };
  [[nodiscard]] std::vector<PublishedVersion> published_snapshot() const;

  /// Published versions of a blob (tests/removal engine).
  [[nodiscard]] std::vector<VersionInfo> versions_of(BlobId blob) const;

  /// Pending (started, unsettled) write count across all blobs.
  [[nodiscard]] std::size_t pending_writes() const;

  /// True between a journaled restart and the end of journal replay.
  [[nodiscard]] bool recovering() const { return recovering_; }
  [[nodiscard]] const RecoveryStats& recovery_stats() const {
    return rec_stats_;
  }

  /// One write-ahead-journal record of the version-metadata store. Fixed
  /// 64 bytes on disk; the union of fields the eight kinds need.
  struct VmRecord {
    enum class Kind : std::uint8_t {
      create,           ///< blob created (chunk_size/replication/ttl)
      start,            ///< version reserved (extent; bytes = reservation end)
      publish,          ///< version published (bytes = snapshot size)
      abort,            ///< pending write aborted
      trim_mark,        ///< published version trimmed away
      set_replication,  ///< replication factor changed
      delete_blob,      ///< blob tombstoned
      frontier,         ///< checkpoint cursor: next_version/reserved_end/epoch
    };
    Kind kind{Kind::create};
    std::uint64_t blob{0};
    Version version{0};
    WriteExtent extent{};
    std::uint64_t bytes{0};  ///< start: reserved end; publish: size;
                             ///< frontier: reserved_end
    std::uint64_t chunk_size{0};
    std::uint32_t replication{1};
    SimTime created_at{0};
    SimDuration ttl{0};
    std::uint64_t epoch{0};  ///< frontier: abort_epoch at checkpoint
  };

 private:
  struct PendingWrite {
    WriteExtent extent;
    std::uint64_t end_bytes{0};
    std::uint64_t root_chunks{0};
    ClientId writer{};
    bool committed{false};
    bool aborted{false};
    std::uint64_t committed_epoch{0};  ///< abort epoch sent with commit
    /// Set when the commit decision (published / rebuild) is ready. Shared:
    /// a retried commit may leave an earlier handler coroutine still
    /// awaiting it after the pending entry is gone.
    std::shared_ptr<sim::Event> decision;
    bool published{false};
    bool rebuild{false};
    /// Lease clock; reset on start and on every commit interaction.
    SimTime lease_from{0};
  };

  struct BlobState {
    BlobId id;
    std::uint64_t chunk_size{0};
    std::uint32_t replication{1};
    std::uint32_t base_replication{1};
    SimTime created_at{0};
    SimDuration ttl{0};
    bool deleted{false};
    std::set<Version> trimmed;
    Version next_version{1};
    Version latest{0};
    std::uint64_t latest_size{0};
    std::uint64_t reserved_end{0};  ///< max end over non-aborted writes
    std::uint64_t abort_epoch{0};
    std::vector<WriteExtent> history;  ///< non-aborted writes, by version
    std::map<Version, VersionInfo> published;
    std::map<Version, PendingWrite> pending;
  };

  void register_handlers();
  // Requests by value: copied into the coroutine frame, so the handlers
  // outlive any caller (bslint coro-ref-param). All three are small structs.
  sim::Task<Result<StartWriteResp>> handle_start(StartWriteReq req,
                                                 ClientId writer);
  sim::Task<Result<CommitWriteResp>> handle_commit(CommitWriteReq req);
  sim::Task<Result<AbortWriteResp>> handle_abort(AbortWriteReq req);

  /// Walks the pending queue in version order, settling decisions.
  void try_publish(BlobState& b);
  void publish_one(BlobState& b, Version v, PendingWrite& w);
  void remove_from_history(BlobState& b, Version v);
  /// Abort machinery shared by AbortWrite and lease expiry: drops the
  /// pending write, bumps the abort epoch, recomputes the append frontier
  /// and re-drives publication.
  void force_abort(BlobState& b, Version v);
  sim::Task<void> lease_sweeper_loop();

  static std::uint64_t record_bytes(const VmRecord&) { return 64; }
  void apply_record(const VmRecord& rec);
  [[nodiscard]] std::vector<Journal<VmRecord>::Entry> encode_checkpoint()
      const;
  void maybe_checkpoint();
  sim::Task<void> recover(std::uint64_t incarnation);
  /// append + (awaitable) fsync + seal of one record — the common commit
  /// barrier every mutating handler runs before acking.
  sim::Task<bool> journal_commit(VmRecord rec);
  /// Group-commit barrier over whatever is volatile in the journal (e.g.
  /// publish/abort records appended by the synchronous publication walk).
  sim::Task<bool> journal_sync_tail();

  rpc::Node& node_;
  Options opts_;
  std::map<std::uint64_t, BlobState> blobs_;  // by BlobId value
  Journal<VmRecord> journal_;
  bool recovering_{false};
  RecoveryStats rec_stats_;
  std::uint64_t next_blob_{1};
  std::uint64_t leases_expired_{0};
  bool sweeper_enabled_{false};
  bool sweeper_running_{false};
  std::function<void(const PublishEvent&)> publish_observer_;
  GeoHooks geo_hooks_;
};

}  // namespace bs::blob
