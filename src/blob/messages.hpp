// RPC message types of the BlobSeer actors. Wire sizes model an efficient
// binary protocol: fixed headers plus payload bytes; control-plane messages
// stay small so only the data plane contends for bandwidth.
#pragma once

#include <cstdint>
#include <vector>

#include "blob/blob_types.hpp"
#include "blob/meta_tree.hpp"

namespace bs::blob {

inline constexpr std::uint64_t kAppendOffset =
    std::numeric_limits<std::uint64_t>::max();

// ---------------------------------------------------------------- provider

struct PutChunkReq {
  static constexpr const char* kName = "blob.put_chunk";
  static constexpr bool kPayloadToDisk = true;
  ChunkKey key;
  Payload payload;
  [[nodiscard]] std::uint64_t wire_size() const { return 64 + payload.size; }
};
struct PutChunkResp {
  [[nodiscard]] std::uint64_t wire_size() const { return 16; }
};

struct GetChunkReq {
  static constexpr const char* kName = "blob.get_chunk";
  static constexpr bool kResponseFromDisk = true;
  ChunkKey key;
  std::uint64_t offset{0};  ///< byte offset within the chunk
  std::uint64_t length{std::numeric_limits<std::uint64_t>::max()};
  [[nodiscard]] std::uint64_t wire_size() const { return 56; }
};
struct GetChunkResp {
  Payload payload;
  [[nodiscard]] std::uint64_t wire_size() const { return 32 + payload.size; }
};

struct RemoveChunkReq {
  static constexpr const char* kName = "blob.remove_chunk";
  ChunkKey key;
  [[nodiscard]] std::uint64_t wire_size() const { return 40; }
};
struct RemoveChunkResp {
  bool removed{false};
  [[nodiscard]] std::uint64_t wire_size() const { return 17; }
};

/// Presence probe: does this provider hold the chunk? Used by
/// content-addressed layers (the cloud gateway's dedup index) to verify a
/// recovered index entry still resolves before skipping a store.
struct HasChunkReq {
  static constexpr const char* kName = "blob.has_chunk";
  ChunkKey key;
  [[nodiscard]] std::uint64_t wire_size() const { return 40; }
};
struct HasChunkResp {
  bool present{false};
  std::uint64_t size{0};
  [[nodiscard]] std::uint64_t wire_size() const { return 25; }
};

struct ProviderStatusReq {
  static constexpr const char* kName = "blob.provider_status";
  [[nodiscard]] std::uint64_t wire_size() const { return 16; }
};
struct ProviderStatusResp {
  std::uint64_t capacity{0};
  std::uint64_t used{0};
  std::uint64_t chunks{0};
  [[nodiscard]] std::uint64_t wire_size() const { return 40; }
};

/// Lists chunk keys held by a provider (used by migration/rebalance).
struct ListChunksReq {
  static constexpr const char* kName = "blob.list_chunks";
  [[nodiscard]] std::uint64_t wire_size() const { return 16; }
};
struct ListChunksResp {
  std::vector<ChunkKey> keys;
  [[nodiscard]] std::uint64_t wire_size() const {
    return 16 + 24 * keys.size();
  }
};

/// Provider-to-provider replica copy (re-replication / migration).
struct ReplicateChunkReq {
  static constexpr const char* kName = "blob.replicate_chunk";
  ChunkKey key;
  NodeId target;  ///< provider that should receive a copy
  [[nodiscard]] std::uint64_t wire_size() const { return 48; }
};
struct ReplicateChunkResp {
  [[nodiscard]] std::uint64_t wire_size() const { return 16; }
};

// ------------------------------------------------------- metadata provider

struct MetaPutReq {
  static constexpr const char* kName = "blob.meta_put";
  NodeKey key;
  TreeNode node;
  [[nodiscard]] std::uint64_t wire_size() const {
    return 16 + key.wire_size() + node.wire_size();
  }
};
struct MetaPutResp {
  [[nodiscard]] std::uint64_t wire_size() const { return 16; }
};

/// Deletes one tree node (metadata GC after trims). Idempotent.
struct MetaRemoveReq {
  static constexpr const char* kName = "blob.meta_remove";
  NodeKey key;
  [[nodiscard]] std::uint64_t wire_size() const {
    return 16 + key.wire_size();
  }
};
struct MetaRemoveResp {
  bool removed{false};
  [[nodiscard]] std::uint64_t wire_size() const { return 17; }
};

struct MetaGetReq {
  static constexpr const char* kName = "blob.meta_get";
  NodeKey key;
  [[nodiscard]] std::uint64_t wire_size() const {
    return 16 + key.wire_size();
  }
};
struct MetaGetResp {
  TreeNode node;
  [[nodiscard]] std::uint64_t wire_size() const {
    return 16 + node.wire_size();
  }
};

// -------------------------------------------------------- provider manager

struct RegisterProviderReq {
  static constexpr const char* kName = "blob.register_provider";
  NodeId provider;
  std::uint64_t capacity{0};
  /// State carried across a restart with an intact store; a fresh provider
  /// registers with free_space == capacity and zero chunks.
  std::uint64_t free_space{0};
  std::uint64_t chunks{0};
  [[nodiscard]] std::uint64_t wire_size() const { return 48; }
};
struct RegisterProviderResp {
  [[nodiscard]] std::uint64_t wire_size() const { return 16; }
};

struct DeregisterProviderReq {
  static constexpr const char* kName = "blob.deregister_provider";
  NodeId provider;
  [[nodiscard]] std::uint64_t wire_size() const { return 24; }
};
struct DeregisterProviderResp {
  [[nodiscard]] std::uint64_t wire_size() const { return 16; }
};

struct HeartbeatReq {
  static constexpr const char* kName = "blob.heartbeat";
  NodeId provider;
  std::uint64_t free_space{0};
  std::uint64_t chunks{0};
  double store_rate{0};  ///< recent chunk-put rate (load signal)
  [[nodiscard]] std::uint64_t wire_size() const { return 48; }
};
struct HeartbeatResp {
  bool known{true};  ///< false asks the provider to re-register
  [[nodiscard]] std::uint64_t wire_size() const { return 17; }
};

struct AllocateReq {
  static constexpr const char* kName = "blob.allocate";
  BlobId blob;
  Version version{kInvalidVersion};
  std::uint64_t chunk_count{0};
  std::uint64_t chunk_size{0};  ///< for free-space filtering
  std::uint32_t replication{1};
  std::vector<NodeId> exclude;
  [[nodiscard]] std::uint64_t wire_size() const {
    return 48 + 8 * exclude.size();
  }
};
struct AllocateResp {
  /// placements[i] = the replica set for chunk i (replication distinct
  /// providers, or fewer if the pool is too small).
  std::vector<std::vector<NodeId>> placements;
  [[nodiscard]] std::uint64_t wire_size() const {
    std::uint64_t n = 16;
    for (const auto& p : placements) n += 8 * p.size() + 4;
    return n;
  }
};

/// Snapshot of one registered provider, as the provider manager sees it.
/// Liveness verdict the provider manager holds about a data provider, fed
/// by heartbeats (positive signal) and client failure reports / missed
/// heartbeats (negative signal). Allocation prefers alive providers, falls
/// back to suspects under space pressure and never places on dead ones.
enum class ProviderHealth : std::uint8_t { alive, suspect, dead };

struct ProviderEntry {
  NodeId node;
  std::uint64_t capacity{0};
  std::uint64_t free_space{0};
  std::uint64_t chunks{0};
  double store_rate{0};
  SimTime last_heartbeat{0};
  std::uint64_t pending_allocs{0};  ///< chunks allocated, put not yet seen
  bool decommissioning{false};
  ProviderHealth health{ProviderHealth::alive};
  std::uint32_t reported_failures{0};  ///< client failure reports since last
                                       ///< heartbeat
};

struct ListProvidersReq {
  static constexpr const char* kName = "blob.list_providers";
  [[nodiscard]] std::uint64_t wire_size() const { return 16; }
};
struct ListProvidersResp {
  std::vector<ProviderEntry> providers;
  [[nodiscard]] std::uint64_t wire_size() const {
    return 16 + 72 * providers.size();
  }
};

/// Marks a provider as draining: no new allocations land on it.
struct SetDecommissionReq {
  static constexpr const char* kName = "blob.set_decommission";
  NodeId provider;
  bool decommission{true};
  [[nodiscard]] std::uint64_t wire_size() const { return 25; }
};
struct SetDecommissionResp {
  [[nodiscard]] std::uint64_t wire_size() const { return 16; }
};

/// Client-side failure report: a chunk put/get against `provider` failed at
/// the transport level. Marks the entry suspect (dead after repeated
/// reports) so allocation steers away long before the heartbeat deadline.
struct ReportFailureReq {
  static constexpr const char* kName = "blob.report_failure";
  NodeId provider;
  [[nodiscard]] std::uint64_t wire_size() const { return 24; }
};
struct ReportFailureResp {
  [[nodiscard]] std::uint64_t wire_size() const { return 16; }
};

// --------------------------------------------------------- version manager

struct CreateBlobReq {
  static constexpr const char* kName = "blob.create";
  std::uint64_t chunk_size{0};
  std::uint32_t replication{1};
  SimDuration ttl{0};  ///< 0 = permanent; temporary data expires after ttl
  [[nodiscard]] std::uint64_t wire_size() const { return 40; }
};
struct CreateBlobResp {
  BlobId blob;
  [[nodiscard]] std::uint64_t wire_size() const { return 24; }
};

struct BlobInfoReq {
  static constexpr const char* kName = "blob.info";
  BlobId blob;
  Version version{kLatestVersion};
  [[nodiscard]] std::uint64_t wire_size() const { return 32; }
};
struct BlobInfoResp {
  BlobDescriptor descriptor;
  VersionInfo at;  ///< info of the requested version
  [[nodiscard]] std::uint64_t wire_size() const { return 96; }
};

struct StartWriteReq {
  static constexpr const char* kName = "blob.start_write";
  BlobId blob;
  std::uint64_t offset{kAppendOffset};  ///< kAppendOffset = append
  std::uint64_t size{0};
  [[nodiscard]] std::uint64_t wire_size() const { return 40; }
};
struct StartWriteResp {
  Version version{kInvalidVersion};
  std::uint64_t chunk_size{0};
  std::uint32_t replication{1};
  std::uint64_t offset{0};       ///< resolved byte offset (for appends)
  std::uint64_t first_chunk{0};
  std::uint64_t chunk_count{0};
  std::uint64_t root_chunks{0};  ///< coverage the writer must build to
  std::uint64_t abort_epoch{0};  ///< for abort-repair detection at commit
  std::vector<WriteExtent> history;  ///< all writes with version < this one
  [[nodiscard]] WriteExtent extent() const {
    return WriteExtent{version, first_chunk, chunk_count};
  }
  [[nodiscard]] std::uint64_t wire_size() const {
    return 80 + 24 * history.size();
  }
};

struct CommitWriteReq {
  static constexpr const char* kName = "blob.commit_write";
  BlobId blob;
  Version version{kInvalidVersion};
  std::uint64_t abort_epoch{0};  ///< epoch the metadata was built against
  [[nodiscard]] std::uint64_t wire_size() const { return 40; }
};
struct CommitWriteResp {
  bool published{false};
  /// When true, an earlier write aborted after this writer built its
  /// metadata; the writer must rebuild against `history` (which excludes
  /// aborted versions) and commit again with `abort_epoch`.
  bool rebuild_needed{false};
  std::uint64_t abort_epoch{0};
  std::vector<WriteExtent> history;
  VersionInfo info;  ///< valid iff published
  [[nodiscard]] std::uint64_t wire_size() const {
    return 64 + 24 * history.size();
  }
};

struct AbortWriteReq {
  static constexpr const char* kName = "blob.abort_write";
  BlobId blob;
  Version version{kInvalidVersion};
  [[nodiscard]] std::uint64_t wire_size() const { return 32; }
};
struct AbortWriteResp {
  [[nodiscard]] std::uint64_t wire_size() const { return 16; }
};

struct ListBlobsReq {
  static constexpr const char* kName = "blob.list_blobs";
  [[nodiscard]] std::uint64_t wire_size() const { return 16; }
};
struct ListBlobsResp {
  std::vector<BlobDescriptor> blobs;
  [[nodiscard]] std::uint64_t wire_size() const {
    return 16 + 64 * blobs.size();
  }
};

/// Full version list of one blob (removal strategies, visualization).
struct BlobVersionsReq {
  static constexpr const char* kName = "blob.versions";
  BlobId blob;
  [[nodiscard]] std::uint64_t wire_size() const { return 24; }
};
struct BlobVersionsResp {
  std::vector<VersionInfo> versions;
  [[nodiscard]] std::uint64_t wire_size() const {
    return 16 + 24 * versions.size();
  }
};

/// Removes published versions older than `keep_from` and returns the chunk
/// keys that are no longer referenced by any kept version (the caller —
/// the self-optimization removal engine — deletes them from providers).
struct TrimBlobReq {
  static constexpr const char* kName = "blob.trim";
  BlobId blob;
  Version keep_from{0};
  [[nodiscard]] std::uint64_t wire_size() const { return 32; }
};
struct TrimBlobResp {
  std::vector<ChunkKey> unreferenced;
  /// Metadata-tree nodes no kept snapshot can reach (metadata GC).
  std::vector<NodeKey> removable_nodes;
  std::uint64_t versions_removed{0};
  [[nodiscard]] std::uint64_t wire_size() const {
    return 24 + 24 * unreferenced.size() + 32 * removable_nodes.size();
  }
};

/// Updates the replication degree applied to FUTURE writes of a blob
/// (the self-optimization engine's actuator for adaptive replication).
struct SetReplicationReq {
  static constexpr const char* kName = "blob.set_replication";
  BlobId blob;
  std::uint32_t replication{1};
  [[nodiscard]] std::uint64_t wire_size() const { return 28; }
};
struct SetReplicationResp {
  [[nodiscard]] std::uint64_t wire_size() const { return 16; }
};

/// Marks a blob deleted; subsequent reads/writes fail. Chunk reclamation is
/// done by the removal engine via RemoveBlobChunksReq broadcasts.
struct DeleteBlobReq {
  static constexpr const char* kName = "blob.delete";
  BlobId blob;
  [[nodiscard]] std::uint64_t wire_size() const { return 24; }
};
struct DeleteBlobResp {
  [[nodiscard]] std::uint64_t wire_size() const { return 16; }
};

/// Provider-side: drop every chunk belonging to a (deleted) blob.
struct RemoveBlobChunksReq {
  static constexpr const char* kName = "blob.remove_blob_chunks";
  BlobId blob;
  [[nodiscard]] std::uint64_t wire_size() const { return 24; }
};
struct RemoveBlobChunksResp {
  std::uint64_t chunks_removed{0};
  std::uint64_t bytes_freed{0};
  [[nodiscard]] std::uint64_t wire_size() const { return 32; }
};

}  // namespace bs::blob
