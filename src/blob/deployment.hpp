// Wires a complete BlobSeer deployment on a simulated cluster: version
// manager, provider manager, metadata providers, data providers and client
// nodes, spread round-robin across the topology's sites. The elasticity
// engine uses add_provider()/remove_provider() as its actuators.
#pragma once

#include <memory>
#include <vector>

#include "blob/client.hpp"
#include "blob/data_provider.hpp"
#include "blob/metadata_provider.hpp"
#include "blob/provider_manager.hpp"
#include "blob/version_manager.hpp"
#include "net/topology.hpp"
#include "rpc/rpc.hpp"

namespace bs::blob {

struct DeploymentConfig {
  std::size_t sites{9};
  std::size_t data_providers{20};
  std::size_t metadata_providers{4};
  std::uint64_t provider_capacity{64ull * units::GB};
  rpc::NodeSpec node_spec{};          ///< providers and managers
  rpc::NodeSpec client_spec{};        ///< client machines
  ProviderManager::Options pm_options{};
  VersionManager::Options vm_options{};
  bool start_heartbeats{true};
  bool start_reaper{true};
  /// Auto-abort uncommitted writes whose client died (lease expiry), so a
  /// crash mid-write never stalls the publication queue forever.
  bool start_lease_sweeper{true};
  /// Seed for the cluster's fault/retry RNG (backoff jitter).
  std::uint64_t fault_seed{0xB5FA117ull};
  /// Persistent store model for every stateful service (version manager,
  /// metadata providers, data providers). Disabled by default: state
  /// survives crashes intact and restarts are free, exactly as before.
  /// Overridable with BS_JOURNAL=on|off.
  JournalOptions journal{};
};

class Deployment {
 public:
  explicit Deployment(sim::Simulation& sim, DeploymentConfig config = DeploymentConfig());

  [[nodiscard]] rpc::Cluster& cluster() { return *cluster_; }
  [[nodiscard]] sim::Simulation& sim() { return sim_; }
  [[nodiscard]] const DeploymentConfig& config() const { return config_; }

  [[nodiscard]] VersionManager& version_manager() { return *vm_; }
  [[nodiscard]] ProviderManager& provider_manager() { return *pm_; }
  [[nodiscard]] rpc::Node& version_manager_node() { return *vm_node_; }
  [[nodiscard]] rpc::Node& provider_manager_node() { return *pm_node_; }

  [[nodiscard]] std::vector<std::unique_ptr<DataProvider>>& providers() {
    return providers_;
  }
  [[nodiscard]] std::vector<std::unique_ptr<MetadataProvider>>&
  metadata_providers() {
    return meta_providers_;
  }
  [[nodiscard]] DataProvider* provider_by_node(NodeId id);

  [[nodiscard]] BlobClient::Endpoints endpoints() const;

  /// Creates a client on a fresh node (round-robin site placement).
  BlobClient* add_client(ClientConfig config = ClientConfig());
  [[nodiscard]] std::vector<std::unique_ptr<BlobClient>>& clients() {
    return clients_;
  }

  /// Elasticity actuator: boots one more data provider and registers it.
  DataProvider* add_provider();

  /// Elasticity actuator: takes a provider out of service (ungracefully;
  /// graceful draining is the self-configuration engine's job).
  void remove_provider(NodeId id);

  /// Next site in round-robin order (for custom node placement).
  [[nodiscard]] net::SiteId next_site() {
    return static_cast<net::SiteId>(site_cursor_++ %
                                    cluster_->topology().site_count());
  }

 private:
  sim::Simulation& sim_;
  DeploymentConfig config_;
  std::unique_ptr<rpc::Cluster> cluster_;
  rpc::Node* vm_node_{nullptr};
  rpc::Node* pm_node_{nullptr};
  std::unique_ptr<VersionManager> vm_;
  std::unique_ptr<ProviderManager> pm_;
  std::vector<std::unique_ptr<MetadataProvider>> meta_providers_;
  std::vector<std::unique_ptr<DataProvider>> providers_;
  std::vector<std::unique_ptr<BlobClient>> clients_;
  std::size_t site_cursor_{0};
  std::uint64_t next_client_id_{1};
};

}  // namespace bs::blob
