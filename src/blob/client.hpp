// BlobSeer client actor: the library applications link against. Implements
// client-side operations for each interaction with the system (§III-A):
// CREATE, WRITE, APPEND, READ plus stat/versions. Writes pipeline chunk
// transfers with bounded parallelism, retry failed puts on fresh providers,
// build segment-tree metadata locally (forward references) and publish
// through the version manager; reads walk the published tree and fetch
// chunks from replicas with failover.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "blob/messages.hpp"
#include "blob/meta_ops.hpp"
#include "blob/metadata_provider.hpp"
#include "common/rng.hpp"
#include "rpc/rpc.hpp"
#include "sim/sync.hpp"

namespace bs::blob {

struct ClientConfig {
  std::uint32_t put_parallelism{4};   ///< concurrent chunk puts per write
  std::uint32_t get_parallelism{8};   ///< concurrent chunk gets per read
  std::uint32_t meta_parallelism{8};  ///< concurrent metadata puts
  std::uint32_t max_put_retries{3};   ///< fresh-provider retries per chunk
  SimDuration rpc_timeout{simtime::seconds(30)};
  /// Commit can legitimately wait for earlier concurrent writers.
  SimDuration commit_timeout{simtime::seconds(120)};
  /// Transport-level retry for every client RPC (jittered exponential
  /// backoff, deterministic via the cluster's seeded RNG). Down-node
  /// failures still fail fast; retries matter for drops and timeouts.
  rpc::RetryPolicy retry{.max_attempts = 3};
  /// Report chunk put/get transport failures to the provider manager so
  /// allocation steers away from the failing provider.
  bool report_failures{true};
};

struct WriteReceipt {
  Version version{0};
  std::uint64_t offset{0};
  std::uint64_t size{0};
  SimDuration duration{0};
  std::uint32_t put_retries{0};
  std::uint32_t rebuilds{0};
  /// Per-chunk descriptors (key, size, checksum, replica set) of the
  /// committed write, in chunk order. Content-addressed layers use these to
  /// index where each chunk landed.
  std::vector<ChunkDescriptor> chunks;

  [[nodiscard]] double throughput_bps() const {
    const double s = simtime::to_seconds(duration);
    return s > 0 ? static_cast<double>(size) / s : 0.0;
  }
};

/// One resolved chunk of a read.
struct ChunkRead {
  std::uint64_t chunk_index{0};
  std::uint64_t offset{0};  ///< byte offset in blob space
  std::uint64_t bytes{0};
  std::uint64_t checksum{0};
  bool hole{false};
  std::shared_ptr<const std::vector<std::uint8_t>> data;  // when stored inline
};

struct ReadResult {
  Version version{0};
  std::uint64_t bytes{0};  ///< non-hole bytes delivered
  SimDuration duration{0};
  std::vector<ChunkRead> chunks;

  [[nodiscard]] double throughput_bps() const {
    const double s = simtime::to_seconds(duration);
    return s > 0 ? static_cast<double>(bytes) / s : 0.0;
  }

  /// Reassembles inline data (zero-filling holes); nullopt when any
  /// non-hole chunk was stored without inline bytes.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> assemble(
      std::uint64_t from_offset, std::uint64_t length) const;
};

/// Per-operation record for instrumentation / experiment harnesses.
struct ClientOpInfo {
  enum class Op { create, write, append, read };
  Op op{Op::write};
  ClientId client{};
  BlobId blob{};
  Version version{0};
  std::uint64_t bytes{0};
  SimDuration duration{0};
  Errc outcome{Errc::ok};
};

class BlobClient {
 public:
  /// Addresses of the deployment's actors.
  struct Endpoints {
    NodeId version_manager;
    NodeId provider_manager;
    std::vector<NodeId> metadata_providers;
  };

  BlobClient(rpc::Node& node, ClientId id, Endpoints endpoints,
             ClientConfig config = {}, std::uint64_t rng_seed = 1);

  [[nodiscard]] ClientId id() const { return id_; }
  [[nodiscard]] rpc::Node& node() { return node_; }

  sim::Task<Result<BlobId>> create(std::uint64_t chunk_size,
                                   std::uint32_t replication = 1,
                                   SimDuration ttl = 0);

  /// Writes `data` at `offset` (must be chunk-aligned). Returns once the
  /// new version is published.
  sim::Task<Result<WriteReceipt>> write(BlobId blob, std::uint64_t offset,
                                        Payload data);

  /// Appends `data` after the current end (chunk-aligned up).
  sim::Task<Result<WriteReceipt>> append(BlobId blob, Payload data);

  /// Appends pre-split chunk payloads as one new version: payload i lands
  /// in its own chunk slot (all but the last must be exactly `chunk_size`;
  /// the last may be shorter). Used by content-addressed callers that need
  /// to control chunk boundaries; the receipt's `chunks` give each chunk's
  /// key and replica set.
  // bslint: allow(perf-large-byvalue): every caller moves its freshly
  // split chunk batch; Payload bodies are shared_ptr-backed either way
  sim::Task<Result<WriteReceipt>> append_chunks(BlobId blob,
                                                std::uint64_t chunk_size,
                                                std::vector<Payload> chunks);

  /// Probes the chunk's replicas for presence. True as soon as one replica
  /// holds it; false when every reachable replica answered and none does;
  /// an error only when no replica could be asked.
  // bslint: allow(perf-large-byvalue): replicas is replication-factor
  // sized (a handful of node ids)
  sim::Task<Result<bool>> chunk_present(ChunkKey key,
                                        std::vector<NodeId> replicas);

  /// Reads [offset, offset+length) of `version` (default: latest published).
  sim::Task<Result<ReadResult>> read(BlobId blob, std::uint64_t offset,
                                     std::uint64_t length,
                                     Version version = kLatestVersion);

  sim::Task<Result<BlobDescriptor>> stat(BlobId blob);
  sim::Task<Result<std::vector<VersionInfo>>> versions(BlobId blob);

  /// Drops published versions older than `keep_from` (data-removal
  /// strategy hook); returns the trim summary from the version manager.
  sim::Task<Result<TrimBlobResp>> trim(BlobId blob, Version keep_from);

  /// Marks the blob deleted (chunk reclamation is asynchronous).
  sim::Task<Result<void>> remove(BlobId blob);

  void set_op_observer(std::function<void(const ClientOpInfo&)> obs) {
    op_observer_ = std::move(obs);
  }

 private:
  struct WritePlan;

  /// `presplit` non-empty routes each payload into its own chunk slot
  /// (append_chunks); empty means `data` is sliced at chunk boundaries.
  // bslint: allow(perf-large-byvalue): presplit is moved by its only
  // non-empty caller (append_chunks); the default is empty
  sim::Task<Result<WriteReceipt>> write_impl(BlobId blob,
                                             std::uint64_t offset,
                                             Payload data,
                                             ClientOpInfo::Op op,
                                             std::vector<Payload> presplit = {});
  /// Stores one chunk on `replication` providers, re-allocating around
  /// failures. On success fills `desc.replicas`. The WritePlan is an
  /// in/out param owned by write_impl's frame, which joins the WaitGroup
  /// these run under before the plan dies.
  // bslint: allow(coro-ref-param): plan outlives the awaited WaitGroup
  sim::Task<Result<void>> put_chunk_replicated(WritePlan& plan,
                                               std::size_t chunk_idx);
  // bslint: allow(coro-ref-param): nodes owned by write_impl's frame,
  // which co_awaits this call in one full-expression
  sim::Task<Result<void>> put_metadata(
      const std::vector<std::pair<NodeKey, TreeNode>>& nodes,
      obs::SpanId parent);
  // bslint: allow(coro-ref-param): leaf owned by read()'s frame, which
  // joins the fetch WaitGroup before the leaf vector dies
  sim::Task<Result<ChunkRead>> fetch_chunk(const meta_ops::LeafRef& leaf,
                                           std::uint64_t chunk_size,
                                           std::uint64_t read_lo,
                                           std::uint64_t read_hi,
                                           obs::SpanId parent);
  void observe(ClientOpInfo info);
  /// Detached, best-effort failure report to the provider manager.
  void report_provider_failure(NodeId provider);

  rpc::CallOptions opts(SimDuration timeout, obs::SpanId parent = 0) const;

  rpc::Node& node_;
  ClientId id_;
  Endpoints endpoints_;
  ClientConfig config_;
  Rng rng_;
  std::unique_ptr<RemoteMetadataStore> meta_store_;
  std::function<void(const ClientOpInfo&)> op_observer_;
};

}  // namespace bs::blob
