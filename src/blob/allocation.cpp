#include "blob/allocation.hpp"

#include <algorithm>
#include <cassert>

namespace bs::blob {

namespace {
void note_placement(ProviderEntry& e, std::uint64_t chunk_size) {
  ++e.pending_allocs;
  e.free_space -= std::min(e.free_space, chunk_size);
}
}  // namespace

std::vector<NodeId> RoundRobinStrategy::place_chunk(
    std::vector<ProviderEntry*>& candidates, std::uint64_t chunk_size,
    std::uint32_t replication, Rng&) {
  std::vector<NodeId> out;
  if (candidates.empty()) return out;
  const std::size_t n = candidates.size();
  for (std::size_t tried = 0; tried < n && out.size() < replication;
       ++tried) {
    ProviderEntry* e = candidates[cursor_ % n];
    ++cursor_;
    note_placement(*e, chunk_size);
    out.push_back(e->node);
  }
  return out;
}

std::vector<NodeId> RandomStrategy::place_chunk(
    std::vector<ProviderEntry*>& candidates, std::uint64_t chunk_size,
    std::uint32_t replication, Rng& rng) {
  std::vector<NodeId> out;
  if (candidates.empty()) return out;
  std::vector<ProviderEntry*> pool = candidates;
  while (!pool.empty() && out.size() < replication) {
    const std::size_t i =
        static_cast<std::size_t>(rng.next_below(pool.size()));
    note_placement(*pool[i], chunk_size);
    out.push_back(pool[i]->node);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(i));
  }
  return out;
}

double LoadAwareStrategy::score(const ProviderEntry& e) {
  const double fullness =
      e.capacity > 0
          ? 1.0 - static_cast<double>(e.free_space) /
                      static_cast<double>(e.capacity)
          : 1.0;
  // Pending allocations dominate (they represent imminent transfers), the
  // recent store rate captures current disk pressure, fullness breaks ties.
  return static_cast<double>(e.pending_allocs) * 10.0 +
         e.store_rate / 1e8 + fullness;
}

std::vector<NodeId> LoadAwareStrategy::place_chunk(
    std::vector<ProviderEntry*>& candidates, std::uint64_t chunk_size,
    std::uint32_t replication, Rng& rng) {
  std::vector<NodeId> out;
  if (candidates.empty()) return out;
  std::vector<ProviderEntry*> pool = candidates;
  while (!pool.empty() && out.size() < replication) {
    std::size_t pick;
    if (pool.size() == 1) {
      pick = 0;
    } else {
      // Two random choices, keep the lighter one.
      const std::size_t a =
          static_cast<std::size_t>(rng.next_below(pool.size()));
      std::size_t b =
          static_cast<std::size_t>(rng.next_below(pool.size() - 1));
      if (b >= a) ++b;
      pick = score(*pool[a]) <= score(*pool[b]) ? a : b;
    }
    note_placement(*pool[pick], chunk_size);
    out.push_back(pool[pick]->node);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return out;
}

std::unique_ptr<AllocationStrategy> make_strategy(const std::string& name) {
  if (name == "round_robin") return std::make_unique<RoundRobinStrategy>();
  if (name == "random") return std::make_unique<RandomStrategy>();
  if (name == "load_aware") return std::make_unique<LoadAwareStrategy>();
  return nullptr;
}

}  // namespace bs::blob
