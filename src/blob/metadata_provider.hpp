// Metadata provider actor: a partition of the distributed segment-tree node
// store. Clients hash NodeKeys across the metadata provider set
// (RemoteMetadataStore below), exactly as BlobSeer distributes its metadata.
#pragma once

#include <unordered_map>
#include <vector>

#include "blob/journal.hpp"
#include "blob/messages.hpp"
#include "blob/meta_tree.hpp"
#include "rpc/rpc.hpp"

namespace bs::blob {

struct MetadataProviderOptions {
  /// Persistent tree-node store model. Disabled: metadata survives crashes
  /// intact (unless wiped) and restarts are free, as before.
  JournalOptions journal{};
};

class MetadataProvider {
 public:
  using Options = MetadataProviderOptions;

  explicit MetadataProvider(rpc::Node& node, Options options = {});

  [[nodiscard]] NodeId id() const { return node_.id(); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::uint64_t bytes_stored() const { return bytes_; }

  /// Failure injection: drops every stored tree node (disk loss).
  void wipe() {
    nodes_.clear();
    bytes_ = 0;
  }

  /// True between a journaled restart and the end of journal replay.
  [[nodiscard]] bool recovering() const { return recovering_; }
  [[nodiscard]] const RecoveryStats& recovery_stats() const {
    return rec_stats_;
  }

  /// One write-ahead-journal record of the tree-node store.
  struct JournalRecord {
    enum class Kind : std::uint8_t { put, remove };
    Kind kind{Kind::put};
    NodeKey key{};
    TreeNode node{};
  };

 private:
  static std::uint64_t record_bytes(const JournalRecord& rec);
  void apply_record(const JournalRecord& rec);
  [[nodiscard]] std::vector<Journal<JournalRecord>::Entry> encode_checkpoint()
      const;
  void maybe_checkpoint();
  sim::Task<void> recover(std::uint64_t incarnation);

  rpc::Node& node_;
  Options options_;
  std::unordered_map<NodeKey, TreeNode> nodes_;
  Journal<JournalRecord> journal_;
  bool recovering_{false};
  RecoveryStats rec_stats_;
  std::uint64_t bytes_{0};
};

/// Client-side MetadataStore view over a set of metadata providers: each
/// NodeKey deterministically maps to one provider by hash.
class RemoteMetadataStore final : public MetadataStore {
 public:
  RemoteMetadataStore(rpc::Node& self, std::vector<NodeId> providers,
                      ClientId as_client, SimDuration timeout,
                      std::optional<rpc::RetryPolicy> retry = {});

  sim::Task<Result<TreeNode>> get(NodeKey key) override;
  sim::Task<Result<void>> put(NodeKey key, TreeNode node) override;

  /// Traced variants: the underlying RPC spans nest under `parent`.
  sim::Task<Result<TreeNode>> get(NodeKey key, obs::SpanId parent);
  sim::Task<Result<void>> put(NodeKey key, TreeNode node,
                              obs::SpanId parent);

  [[nodiscard]] NodeId provider_for(const NodeKey& key) const;

 private:
  rpc::Node& self_;
  std::vector<NodeId> providers_;
  rpc::CallOptions opts_;
};

}  // namespace bs::blob
