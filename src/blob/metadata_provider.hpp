// Metadata provider actor: a partition of the distributed segment-tree node
// store. Clients hash NodeKeys across the metadata provider set
// (RemoteMetadataStore below), exactly as BlobSeer distributes its metadata.
#pragma once

#include <unordered_map>
#include <vector>

#include "blob/messages.hpp"
#include "blob/meta_tree.hpp"
#include "rpc/rpc.hpp"

namespace bs::blob {

class MetadataProvider {
 public:
  explicit MetadataProvider(rpc::Node& node);

  [[nodiscard]] NodeId id() const { return node_.id(); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::uint64_t bytes_stored() const { return bytes_; }

  /// Failure injection: drops every stored tree node (disk loss).
  void wipe() {
    nodes_.clear();
    bytes_ = 0;
  }

 private:
  rpc::Node& node_;
  std::unordered_map<NodeKey, TreeNode> nodes_;
  std::uint64_t bytes_{0};
};

/// Client-side MetadataStore view over a set of metadata providers: each
/// NodeKey deterministically maps to one provider by hash.
class RemoteMetadataStore final : public MetadataStore {
 public:
  RemoteMetadataStore(rpc::Node& self, std::vector<NodeId> providers,
                      ClientId as_client, SimDuration timeout,
                      std::optional<rpc::RetryPolicy> retry = {});

  sim::Task<Result<TreeNode>> get(NodeKey key) override;
  sim::Task<Result<void>> put(NodeKey key, TreeNode node) override;

  /// Traced variants: the underlying RPC spans nest under `parent`.
  sim::Task<Result<TreeNode>> get(NodeKey key, obs::SpanId parent);
  sim::Task<Result<void>> put(NodeKey key, TreeNode node,
                              obs::SpanId parent);

  [[nodiscard]] NodeId provider_for(const NodeKey& key) const;

 private:
  rpc::Node& self_;
  std::vector<NodeId> providers_;
  rpc::CallOptions opts_;
};

}  // namespace bs::blob
