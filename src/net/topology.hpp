// Multi-site cluster topology modelled after Grid'5000: a set of sites, each
// with LAN latency, connected by a WAN latency matrix. Nodes are assigned to
// sites; the RPC layer asks the topology for one-way latency between nodes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace bs::net {

using SiteId = std::size_t;

class Topology {
 public:
  /// A topology shaped like the Grid'5000 testbed used in the paper:
  /// `sites` geographically distributed sites (default 9), 0.1 ms LAN
  /// latency, 4–12 ms WAN latency between sites, deterministic.
  static Topology grid5000(std::size_t sites = 9);

  /// Single-site topology (for unit tests and microbenchmarks).
  static Topology single_site(SimDuration lan_latency = simtime::micros(100));

  SiteId add_site(std::string name, SimDuration lan_latency);

  void set_inter_site_latency(SiteId a, SiteId b, SimDuration latency);

  [[nodiscard]] std::size_t site_count() const { return sites_.size(); }
  [[nodiscard]] const std::string& site_name(SiteId s) const {
    return sites_[s].name;
  }

  /// One-way latency between two sites (LAN latency when a == b).
  [[nodiscard]] SimDuration latency(SiteId a, SiteId b) const;

  /// Smallest one-way WAN latency between any pair of distinct sites — the
  /// conservative lookahead horizon of the sharded simulation: an event
  /// executing at time t on one site cannot affect another site before
  /// t + min_cross_site_latency(), so site lanes whose heads fall inside
  /// that horizon are causally independent. Returns simtime::kInfinite for
  /// single-site topologies (no cross-site edge to bound the horizon).
  [[nodiscard]] SimDuration min_cross_site_latency() const;

  /// Shared WAN backbone bandwidth per distinct site pair, in bytes/s. The
  /// RPC layer threads every cross-site data-plane transfer through the
  /// pair's backbone resource, so bulk catch-up after a heal drains at link
  /// rate instead of instantaneously. 0 (the default) keeps the legacy
  /// uncapped backbone — NICs and disks remain the only bottlenecks.
  void set_wan_bandwidth(double bps) { wan_bps_ = bps; }
  [[nodiscard]] double wan_bandwidth() const { return wan_bps_; }

 private:
  struct Site {
    std::string name;
    SimDuration lan_latency;
  };
  std::vector<Site> sites_;
  std::vector<std::vector<SimDuration>> wan_;  // symmetric matrix
  double wan_bps_{0.0};
};

}  // namespace bs::net
