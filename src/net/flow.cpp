#include "net/flow.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace bs::net {

namespace {
// A flow is complete when less than this many bytes remain; absorbs the
// sub-byte residue left by rounding completion times to whole nanoseconds.
constexpr double kCompleteEps = 0.75;
}  // namespace

Resource* FlowScheduler::create_resource(std::string name,
                                         double capacity_bps) {
  assert(capacity_bps > 0);
  resources_.push_back(
      std::make_unique<Resource>(std::move(name), capacity_bps));
  return resources_.back().get();
}

sim::Task<void> FlowScheduler::transfer(double bytes,
                                        std::vector<Resource*> resources) {
  if (bytes <= 0 || resources.empty()) co_return;
  advance_to_now();
  const std::uint64_t id = next_flow_id_++;
  auto flow = std::make_unique<Flow>(sim_, id, bytes, std::move(resources));
  Flow* f = flow.get();
  for (auto* r : f->resources) ++r->flow_count_;
  active_.emplace(id, std::move(flow));
  recompute_rates();
  schedule_next_completion();
  co_await f->done.wait();
}

void FlowScheduler::advance_to_now() {
  const SimTime now = sim_.now();
  if (now <= last_advance_) {
    last_advance_ = now;
    return;
  }
  const double dt = simtime::to_seconds(now - last_advance_);
  for (auto& [id, f] : active_) {
    const double moved = f->rate * dt;
    f->remaining = std::max(0.0, f->remaining - moved);
    for (auto* r : f->resources) r->bytes_served_ += moved;
  }
  last_advance_ = now;
}

void FlowScheduler::recompute_rates() {
  // Progressive filling (max-min fairness): repeatedly find the bottleneck
  // resource — the one whose equal share per unfrozen flow is smallest —
  // and freeze its flows at that share.
  if (active_.empty()) return;
  for (auto& [id, f] : active_) {
    f->frozen = false;
    f->rate = 0;
  }
  std::vector<Resource*> live;
  for (auto& r : resources_) {
    r->cap_left_ = r->capacity_;
    r->unfrozen_ = 0;
  }
  for (auto& [id, f] : active_) {
    for (auto* r : f->resources) {
      if (r->unfrozen_ == 0) live.push_back(r);
      ++r->unfrozen_;
    }
  }
  // Deduplicate (a resource may have been pushed once; flows sharing it only
  // increment the counter), `live` has unique entries by construction.
  std::size_t remaining_flows = active_.size();
  while (remaining_flows > 0) {
    double best_share = std::numeric_limits<double>::infinity();
    for (auto* r : live) {
      if (r->unfrozen_ == 0) continue;
      const double share = r->cap_left_ / static_cast<double>(r->unfrozen_);
      best_share = std::min(best_share, share);
    }
    if (!std::isfinite(best_share)) break;
    // Freeze every unfrozen flow crossing a bottleneck at best_share.
    bool froze_any = false;
    for (auto& [id, f] : active_) {
      if (f->frozen) continue;
      bool bottlenecked = false;
      for (auto* r : f->resources) {
        const double share =
            r->cap_left_ / static_cast<double>(r->unfrozen_);
        if (share <= best_share * (1.0 + 1e-12)) {
          bottlenecked = true;
          break;
        }
      }
      if (!bottlenecked) continue;
      f->frozen = true;
      f->rate = best_share;
      froze_any = true;
      --remaining_flows;
      for (auto* r : f->resources) {
        r->cap_left_ = std::max(0.0, r->cap_left_ - best_share);
        --r->unfrozen_;
      }
    }
    if (!froze_any) break;  // defensive: should not happen
  }
}

void FlowScheduler::schedule_next_completion() {
  ++generation_;
  if (active_.empty()) return;
  double min_eta = std::numeric_limits<double>::infinity();
  for (auto& [id, f] : active_) {
    if (f->rate <= 0) continue;
    min_eta = std::min(min_eta, f->remaining / f->rate);
  }
  if (!std::isfinite(min_eta)) return;
  auto dt = static_cast<SimDuration>(std::ceil(
      min_eta * static_cast<double>(simtime::kNanosPerSec)));
  dt = std::max<SimDuration>(dt, 1);
  const std::uint64_t gen = generation_;
  sim_.schedule_in(dt, [this, gen] { on_completion_event(gen); });
}

void FlowScheduler::on_completion_event(std::uint64_t generation) {
  if (generation != generation_) return;  // superseded by a newer schedule
  advance_to_now();
  bool any_done = false;
  for (auto it = active_.begin(); it != active_.end();) {
    Flow* f = it->second.get();
    if (f->remaining <= kCompleteEps) {
      for (auto* r : f->resources) --r->flow_count_;
      f->done.set();
      ++completed_;
      any_done = true;
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  if (any_done) recompute_rates();
  schedule_next_completion();
}

}  // namespace bs::net
