#include "net/flow.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string_view>

namespace bs::net {

namespace {
// A flow is complete when less than this many bytes remain; absorbs the
// sub-byte residue left by rounding completion times to whole nanoseconds.
constexpr double kCompleteEps = 0.75;

// ETAs beyond this many nanoseconds (~285 simulated years) are treated as
// "never": no completion event is scheduled until the flow's rate changes.
// Keeps the double -> SimDuration conversion away from overflow.
constexpr double kMaxEtaNanos = 9.0e18;

bool id_less(const detail::Flow* a, const detail::Flow* b) {
  return a->id < b->id;
}
}  // namespace

FlowScheduler::Options FlowScheduler::Options::from_env() {
  Options o;
  if (const char* v = std::getenv("BS_FLOW_SCHED")) {
    const std::string_view s(v);
    if (s == "reference" || s == "global" || s == "0") o.incremental = false;
  }
  return o;
}

FlowScheduler::~FlowScheduler() = default;

Resource* FlowScheduler::create_resource(std::string name,
                                         double capacity_bps) {
  assert(capacity_bps > 0);
  resources_.push_back(
      std::make_unique<Resource>(std::move(name), capacity_bps));
  resources_.back()->sched_ = this;
  return resources_.back().get();
}

void FlowScheduler::set_capacity(Resource* r, double capacity_bps) {
  assert(capacity_bps > 0);
  if (r->capacity_ == capacity_bps) return;
  if (r->flow_count_ == 0) {
    // Idle resource: no rates depend on it, the new capacity simply applies
    // to whatever arrives next.
    r->capacity_ = capacity_bps;
    return;
  }
  scratch_flows_.clear();
  scratch_resources_.clear();
  collect_component(r->flows_head_->flow, ++mark_epoch_, scratch_flows_,
                    scratch_resources_);
  r->capacity_ = capacity_bps;
  if (opts_.incremental) {
    refill_and_reschedule(scratch_flows_, scratch_resources_);
    compact_eta_heap();
    arm_wakeup();
  } else {
    recompute_rates_global();
    schedule_next_completion();
  }
}

double Resource::bytes_served() const {
  if (sched_ != nullptr) sched_->settle_resource(const_cast<Resource*>(this));
  return bytes_served_;
}

// bslint: allow(perf-large-byvalue): tiny pointer list; every caller moves
sim::Task<void> FlowScheduler::transfer(double bytes,
                                        std::vector<Resource*> resources) {
  if (bytes <= 0 || resources.empty()) co_return;
  const std::uint64_t id = next_flow_id_++;
  auto flow = std::make_unique<Flow>(sim_, id, bytes);
  Flow* f = flow.get();
  f->last_settle = sim_.now();
  // A repeated resource must not count twice towards shares (paths are
  // short, so the quadratic dedup is cheaper than sorting).
  f->links.reserve(resources.size());
  for (auto* r : resources) {
    const bool seen = std::any_of(
        f->links.begin(), f->links.end(),
        [r](const FlowLink& l) { return l.resource == r; });
    if (!seen) f->links.push_back(FlowLink{f, r, nullptr, nullptr});
  }
  active_.emplace(id, std::move(flow));
  if (opts_.incremental) {
    link(f);
    on_arrival_incremental(f);
  } else {
    link(f);
    // Same settle discipline as the incremental path: settle exactly the
    // arriving flow's contention component (the only flows whose rates can
    // change), so per-flow floating-point state stays bit-identical across
    // the two modes.
    scratch_flows_.clear();
    scratch_resources_.clear();
    collect_component(f, ++mark_epoch_, scratch_flows_, scratch_resources_);
    recompute_rates_global();
    schedule_next_completion();
  }
  co_await f->done.wait();
}

void FlowScheduler::link(Flow* f) {
  for (auto& l : f->links) {
    Resource* r = l.resource;
    l.prev = nullptr;
    l.next = r->flows_head_;
    if (r->flows_head_ != nullptr) r->flows_head_->prev = &l;
    r->flows_head_ = &l;
    ++r->flow_count_;
  }
}

void FlowScheduler::unlink(Flow* f) {
  for (auto& l : f->links) {
    Resource* r = l.resource;
    if (l.prev != nullptr) {
      l.prev->next = l.next;
    } else {
      r->flows_head_ = l.next;
    }
    if (l.next != nullptr) l.next->prev = l.prev;
    l.prev = l.next = nullptr;
    --r->flow_count_;
  }
}

void FlowScheduler::settle_flow(Flow& f) {
  const SimTime now = sim_.now();
  if (now <= f.last_settle) return;
  const double dt = simtime::to_seconds(now - f.last_settle);
  f.last_settle = now;
  // Zero-rate flows make no progress and must not touch their resources'
  // byte accounting.
  if (f.rate <= 0) return;
  // Clamp to `remaining` so a resource is never credited more bytes than
  // the flow actually carries (completion times are rounded up to whole
  // nanoseconds, so rate * dt can slightly overshoot).
  const double moved = std::min(f.rate * dt, f.remaining);
  if (moved <= 0) return;
  f.remaining -= moved;
  for (auto& l : f.links) l.resource->bytes_served_ += moved;
}

void FlowScheduler::settle_resource(Resource* r) {
  for (FlowLink* l = r->flows_head_; l != nullptr; l = l->next) {
    settle_flow(*l->flow);
  }
}

void FlowScheduler::credit_residue(Flow& f) {
  // On completion the sub-eps residue still represents real bytes; credit
  // it so per-resource totals match the requested sizes exactly.
  if (f.remaining > 0) {
    for (auto& l : f.links) l.resource->bytes_served_ += f.remaining;
  }
  f.remaining = 0;
}

void FlowScheduler::fill_rates(const std::vector<Flow*>& flows,
                               const std::vector<Resource*>& resources) {
  // Progressive filling (max-min fairness): repeatedly find the bottleneck
  // resource — the one whose equal share per unfrozen flow is smallest —
  // and freeze its flows at that share. Only the given subgraph is touched;
  // callers guarantee it is closed (every flow crossing a listed resource
  // is listed).
  if (flows.empty()) return;
  for (Flow* f : flows) {
    f->frozen = false;
    f->rate = 0;
  }
  for (Resource* r : resources) {
    r->cap_left_ = r->capacity_;
    r->unfrozen_ = 0;
  }
  for (Flow* f : flows) {
    for (auto& l : f->links) ++l.resource->unfrozen_;
  }
  std::size_t remaining_flows = flows.size();
  while (remaining_flows > 0) {
    double best_share = std::numeric_limits<double>::infinity();
    for (Resource* r : resources) {
      if (r->unfrozen_ == 0) continue;
      const double share = r->cap_left_ / static_cast<double>(r->unfrozen_);
      best_share = std::min(best_share, share);
    }
    if (!std::isfinite(best_share)) break;
    // Freeze every unfrozen flow crossing a bottleneck at best_share.
    bool froze_any = false;
    for (Flow* f : flows) {
      if (f->frozen) continue;
      bool bottlenecked = false;
      for (auto& l : f->links) {
        const double share =
            l.resource->cap_left_ / static_cast<double>(l.resource->unfrozen_);
        if (share <= best_share * (1.0 + 1e-12)) {
          bottlenecked = true;
          break;
        }
      }
      if (!bottlenecked) continue;
      f->frozen = true;
      f->rate = best_share;
      froze_any = true;
      --remaining_flows;
      for (auto& l : f->links) {
        Resource* r = l.resource;
        r->cap_left_ = std::max(0.0, r->cap_left_ - best_share);
        --r->unfrozen_;
      }
    }
    if (!froze_any) break;  // defensive: should not happen
  }
}

// ---------------------------------------------------------------------------
// Incremental path: component-scoped recompute + lazy ETA heap.
// ---------------------------------------------------------------------------

void FlowScheduler::collect_component(Flow* start, std::uint64_t epoch,
                                      std::vector<Flow*>& flows,
                                      std::vector<Resource*>& resources) {
  if (start->mark == epoch) return;
  start->mark = epoch;
  const std::size_t first = flows.size();
  flows.push_back(start);
  // BFS over the bipartite flow/resource sharing graph; `flows` doubles as
  // the worklist. Every visited flow is settled at its current rate before
  // that rate can change.
  for (std::size_t i = first; i < flows.size(); ++i) {
    Flow* f = flows[i];
    settle_flow(*f);
    for (auto& l : f->links) {
      Resource* r = l.resource;
      if (r->mark_ == epoch) continue;
      r->mark_ = epoch;
      resources.push_back(r);
      for (FlowLink* fl = r->flows_head_; fl != nullptr; fl = fl->next) {
        if (fl->flow->mark != epoch) {
          fl->flow->mark = epoch;
          flows.push_back(fl->flow);
        }
      }
    }
  }
}

void FlowScheduler::update_eta(Flow& f) {
  // Caller guarantees f is settled to now (rates change only at events
  // that settle the affected component first), so the ETA is computed from
  // the same (remaining, rate, now) triple in both scheduling modes —
  // the stored value, not a later recomputation, is the source of truth.
  if (f.rate <= 0) {
    f.eta = simtime::kInfinite;
    return;
  }
  const double eta_ns = std::ceil(
      f.remaining / f.rate * static_cast<double>(simtime::kNanosPerSec));
  if (eta_ns >= kMaxEtaNanos) {
    f.eta = simtime::kInfinite;
    return;
  }
  f.eta = sim_.now() + std::max<SimDuration>(static_cast<SimDuration>(eta_ns), 1);
}

void FlowScheduler::push_eta(Flow& f) {
  // Appends without restoring the heap property; callers run
  // restore_eta_heap() once per batch (a whole-component refill can touch
  // thousands of flows, where one make_heap beats per-entry sift-ups).
  update_eta(f);
  if (f.eta >= simtime::kInfinite) return;
  eta_heap_.push_back(EtaEntry{f.eta, f.id, f.rate_epoch});
}

void FlowScheduler::restore_eta_heap(std::size_t old_size) {
  const std::size_t appended = eta_heap_.size() - old_size;
  if (appended == 0) return;
  // Per-entry sift-up costs appended * log(size); a full rebuild costs
  // O(size). Rebuild only when the batch is a sizeable fraction of the heap
  // (e.g. a whole-component refill), sift up otherwise.
  if (appended * 8 < eta_heap_.size()) {
    for (std::size_t i = old_size; i < eta_heap_.size(); ++i) {
      std::push_heap(eta_heap_.begin(),
                     eta_heap_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                     EtaLater{});
    }
  } else {
    std::make_heap(eta_heap_.begin(), eta_heap_.end(), EtaLater{});
  }
}

void FlowScheduler::refill_and_reschedule(std::vector<Flow*>& flows,
                                          std::vector<Resource*>& resources) {
  for (Flow* f : flows) f->prev_rate = f->rate;
  fill_rates(flows, resources);
  std::size_t changed = 0;
  for (Flow* f : flows) {
    // An unchanged rate keeps its epoch and its pending ETA entry: the
    // absolute ETA of a flow progressing at a constant rate is invariant.
    if (f->rate != f->prev_rate) {
      ++f->rate_epoch;
      update_eta(*f);
      ++changed;
    }
  }
  if (changed == 0) return;
  if (changed * 8 < eta_heap_.size()) {
    // Small batch relative to the heap: append + sift up.
    const std::size_t heap_size = eta_heap_.size();
    for (Flow* f : flows) {
      if (f->rate != f->prev_rate && f->eta < simtime::kInfinite) {
        eta_heap_.push_back(EtaEntry{f->eta, f->id, f->rate_epoch});
      }
    }
    restore_eta_heap(heap_size);
  } else {
    // A refill that touches a sizeable fraction of the heap (e.g. churn on
    // one big shared component) stales most existing entries anyway;
    // rebuilding from the live flows is cheaper than appending and later
    // popping/compacting the stale bulk.
    rebuild_eta_heap();
  }
}

void FlowScheduler::arm_wakeup() {
  if (eta_heap_.empty()) return;
  const SimTime top = eta_heap_.front().eta;
  if (top >= next_wakeup_ || top >= simtime::kInfinite) return;
  next_wakeup_ = top;
  // Superseded wakeups (a later refill armed an earlier time) fire as
  // zombies; the guard makes them O(1) instead of a full pop-scan.
  auto wakeup = [this, top] {
    if (top == next_wakeup_) on_wakeup();
  };
  static_assert(sim::InlineCallback::fits_inline<decltype(wakeup)>(),
                "flow wakeup callback must not allocate");
  sim_.schedule_at(top, std::move(wakeup));
}

void FlowScheduler::on_arrival_incremental(Flow* f) {
  scratch_flows_.clear();
  scratch_resources_.clear();
  collect_component(f, ++mark_epoch_, scratch_flows_, scratch_resources_);
  refill_and_reschedule(scratch_flows_, scratch_resources_);
  // Arrivals in a shared component stale out every prior ETA entry; without
  // compaction here a burst of arrivals grows the heap quadratically.
  compact_eta_heap();
  arm_wakeup();
}

void FlowScheduler::on_wakeup() {
  next_wakeup_ = simtime::kInfinite;
  const SimTime now = sim_.now();
  auto& due = scratch_due_;
  due.clear();
  while (!eta_heap_.empty() && eta_heap_.front().eta <= now) {
    std::pop_heap(eta_heap_.begin(), eta_heap_.end(), EtaLater{});
    const EtaEntry e = eta_heap_.back();
    eta_heap_.pop_back();
    auto it = active_.find(e.id);
    if (it == active_.end()) continue;  // flow already completed: stale
    Flow* f = it->second.get();
    if (f->rate_epoch != e.epoch) continue;  // rate changed since: stale
    due.push_back(f);
  }
  if (due.empty()) {
    compact_eta_heap();
    arm_wakeup();
    return;
  }
  // Settle the union of the due flows' contention components; completions
  // and the subsequent refill are confined to this subgraph.
  auto& comp = scratch_flows_;
  auto& res = scratch_resources_;
  comp.clear();
  res.clear();
  const std::uint64_t epoch = ++mark_epoch_;
  for (Flow* f : due) collect_component(f, epoch, comp, res);
  const std::uint64_t due_mark = ++mark_epoch_;
  for (Flow* f : due) f->mark = due_mark;
  // Complete everything in the subgraph that is within the rounding residue
  // of done — the same same-instant grouping the reference path applies —
  // waking waiters in flow-id order for deterministic downstream ordering.
  auto mid = std::stable_partition(
      comp.begin(), comp.end(),
      [](Flow* f) { return f->remaining <= kCompleteEps; });
  std::sort(comp.begin(), mid, id_less);
  for (auto it = comp.begin(); it != mid; ++it) {
    Flow* f = *it;
    unlink(f);
    credit_residue(*f);
    f->done.set();
    ++completed_;
  }
  for (auto it = comp.begin(); it != mid; ++it) {
    const std::uint64_t fid = (*it)->id;
    active_.erase(fid);
  }
  comp.erase(comp.begin(), mid);
  refill_and_reschedule(comp, res);
  // Defensive: a due flow that somehow survived with an unchanged rate had
  // its only ETA entry popped above; give it a fresh one.
  const std::size_t heap_size = eta_heap_.size();
  for (Flow* f : comp) {
    if (f->mark == due_mark && f->rate == f->prev_rate && f->rate > 0) {
      ++f->rate_epoch;
      push_eta(*f);
    }
  }
  restore_eta_heap(heap_size);
  compact_eta_heap();
  arm_wakeup();
}

void FlowScheduler::rebuild_eta_heap() {
  // Exact rebuild from the live flows (each stores its current ETA):
  // O(active) with no hash lookups, and leaves zero stale entries.
  eta_heap_.clear();
  // bslint: allow(det-unordered-iter): heap order is a strict total order
  // on (eta, id), so pop order is independent of build order
  for (auto& [id, f] : active_) {
    if (f->eta < simtime::kInfinite) {
      eta_heap_.push_back(EtaEntry{f->eta, id, f->rate_epoch});
    }
  }
  std::make_heap(eta_heap_.begin(), eta_heap_.end(), EtaLater{});
}

void FlowScheduler::compact_eta_heap() {
  // Lazy deletion can leave stale entries behind; rebuild when they
  // dominate so the heap stays O(active flows).
  if (eta_heap_.size() < 64 || eta_heap_.size() < 4 * active_.size()) return;
  rebuild_eta_heap();
}

// ---------------------------------------------------------------------------
// Reference path: global refill + linear completion scan on every event
// (the equivalence oracle). It shares the incremental path's settle
// discipline (settle exactly the affected component), completion grouping
// (component-scoped, kCompleteEps) and stored per-flow ETAs, so the two
// modes produce bit-identical trajectories; only the recompute scope and
// the next-completion lookup differ.
// ---------------------------------------------------------------------------

void FlowScheduler::recompute_rates_global() {
  scratch_flows_.clear();
  scratch_resources_.clear();
  const std::uint64_t epoch = ++mark_epoch_;
  // bslint: allow(det-unordered-iter): max-min fixpoint and settle are
  // order-insensitive; completions are sorted by id before resuming
  for (auto& [id, f] : active_) {
    f->prev_rate = f->rate;
    scratch_flows_.push_back(f.get());
    for (auto& l : f->links) {
      if (l.resource->mark_ != epoch) {
        l.resource->mark_ = epoch;
        scratch_resources_.push_back(l.resource);
      }
    }
  }
  fill_rates(scratch_flows_, scratch_resources_);
  // Flows outside the event's component get the same share re-assigned
  // (progressive filling depends only on membership and capacities), so
  // only genuinely changed rates refresh their ETA.
  for (Flow* f : scratch_flows_) {
    if (f->rate != f->prev_rate) update_eta(*f);
  }
}

void FlowScheduler::schedule_next_completion() {
  ++generation_;
  SimTime min_eta = simtime::kInfinite;
  // bslint: allow(det-unordered-iter): pure min over all flows
  for (auto& [id, f] : active_) min_eta = std::min(min_eta, f->eta);
  if (min_eta >= simtime::kInfinite) return;
  const std::uint64_t gen = generation_;
  auto completion = [this, gen] { on_completion_event(gen); };
  static_assert(sim::InlineCallback::fits_inline<decltype(completion)>(),
                "flow completion callback must not allocate");
  sim_.schedule_at(min_eta, std::move(completion));
}

void FlowScheduler::on_completion_event(std::uint64_t generation) {
  if (generation != generation_) return;  // superseded by a newer schedule
  const SimTime now = sim_.now();
  // Due flows: stored ETA has arrived. Rates are unchanged since the last
  // event (any change bumps generation_), so the stored values are current.
  auto& due = scratch_due_;
  due.clear();
  // bslint: allow(det-unordered-iter): due set is stable_partitioned and
  // sorted by flow id before completions resume waiters
  for (auto& [id, f] : active_) {
    if (f->eta <= now) due.push_back(f.get());
  }
  if (due.empty()) {  // defensive: spurious event
    schedule_next_completion();
    return;
  }
  // Settle the union of the due flows' contention components and complete
  // within it — the same grouping rule as the incremental path.
  auto& comp = scratch_flows_;
  auto& res = scratch_resources_;
  comp.clear();
  res.clear();
  const std::uint64_t epoch = ++mark_epoch_;
  for (Flow* f : due) collect_component(f, epoch, comp, res);
  const std::uint64_t due_mark = ++mark_epoch_;
  for (Flow* f : due) f->mark = due_mark;
  auto mid = std::stable_partition(
      comp.begin(), comp.end(),
      [](Flow* f) { return f->remaining <= kCompleteEps; });
  std::sort(comp.begin(), mid, id_less);
  for (auto it = comp.begin(); it != mid; ++it) {
    Flow* f = *it;
    unlink(f);
    credit_residue(*f);
    f->done.set();
    ++completed_;
  }
  for (auto it = comp.begin(); it != mid; ++it) {
    const std::uint64_t fid = (*it)->id;
    active_.erase(fid);
  }
  const bool completed_any = mid != comp.begin();
  if (completed_any) {
    recompute_rates_global();  // clobbers comp/res scratch; not needed below
    // Defensive: a due survivor whose rate came back unchanged kept a
    // stale (<= now) ETA; refresh it from its post-settle remaining.
    // bslint: allow(det-unordered-iter): per-flow ETA refresh; updates are
    // independent and feed the strict-total-order heap
    for (auto& [id, f] : active_) {
      if (f->mark == due_mark && f->rate == f->prev_rate && f->rate > 0) {
        update_eta(*f);
      }
    }
  } else {
    // No completion at all: every due flow is the defensive case.
    // bslint: allow(det-unordered-iter): per-flow ETA refresh; updates are
    // independent and feed the strict-total-order heap
    for (auto& [id, f] : active_) {
      if (f->mark == due_mark && f->rate > 0) update_eta(*f);
    }
  }
  schedule_next_completion();
}

std::vector<FlowScheduler::FlowInfo> FlowScheduler::active_flows_snapshot()
    const {
  std::vector<FlowInfo> out;
  out.reserve(active_.size());
  // bslint: allow(det-unordered-iter): snapshot is sorted before returning
  for (const auto& [id, f] : active_) {
    FlowInfo info{id, f->rate, f->remaining, {}};
    info.resources.reserve(f->links.size());
    for (const auto& l : f->links) info.resources.push_back(l.resource);
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const FlowInfo& a, const FlowInfo& b) { return a.id < b.id; });
  return out;
}

}  // namespace bs::net
