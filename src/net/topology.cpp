#include "net/topology.hpp"

#include <array>
#include <cassert>

namespace bs::net {

SiteId Topology::add_site(std::string name, SimDuration lan_latency) {
  const SiteId id = sites_.size();
  sites_.push_back(Site{std::move(name), lan_latency});
  for (auto& row : wan_) row.push_back(0);
  wan_.emplace_back(sites_.size(), SimDuration{0});
  return id;
}

void Topology::set_inter_site_latency(SiteId a, SiteId b,
                                      SimDuration latency) {
  assert(a < sites_.size() && b < sites_.size());
  wan_[a][b] = latency;
  wan_[b][a] = latency;
}

SimDuration Topology::latency(SiteId a, SiteId b) const {
  assert(a < sites_.size() && b < sites_.size());
  if (a == b) return sites_[a].lan_latency;
  // The WAN matrix is symmetric by construction (set_inter_site_latency
  // writes both triangles); the lookahead horizon derivation depends on it,
  // so debug builds re-check the invariant on every read.
  assert(wan_[a][b] == wan_[b][a] && "WAN latency matrix must be symmetric");
  assert(wan_[a][b] > 0 && "cross-site latency must be positive");
  return wan_[a][b];
}

SimDuration Topology::min_cross_site_latency() const {
  SimDuration best = simtime::kInfinite;
  for (std::size_t a = 0; a < sites_.size(); ++a) {
    for (std::size_t b = a + 1; b < sites_.size(); ++b) {
      assert(wan_[a][b] == wan_[b][a] &&
             "WAN latency matrix must be symmetric");
      if (wan_[a][b] < best) best = wan_[a][b];
    }
  }
  return best;
}

Topology Topology::grid5000(std::size_t sites) {
  static constexpr std::array<const char*, 9> kNames = {
      "rennes",  "grenoble", "lille",    "lyon",    "nancy",
      "orsay",   "sophia",   "toulouse", "bordeaux"};
  Topology t;
  for (std::size_t i = 0; i < sites; ++i) {
    const char* name =
        i < kNames.size() ? kNames[i] : "site";
    std::string full = i < kNames.size()
                           ? std::string(name)
                           : std::string(name) + std::to_string(i);
    t.add_site(std::move(full), simtime::micros(100));
  }
  // Deterministic WAN latencies in 4–12 ms, loosely increasing with
  // "distance" between site indices (the real RENATER links are in this
  // range).
  for (std::size_t a = 0; a < sites; ++a) {
    for (std::size_t b = a + 1; b < sites; ++b) {
      const auto dist = b - a;
      const double ms = 4.0 + static_cast<double>((dist * 7 + a * 3) % 9);
      t.set_inter_site_latency(a, b, simtime::millis(ms));
    }
  }
  return t;
}

Topology Topology::single_site(SimDuration lan_latency) {
  Topology t;
  t.add_site("local", lan_latency);
  return t;
}

}  // namespace bs::net
