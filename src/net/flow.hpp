// Flow-level bandwidth model with max-min fair sharing. A transfer is a
// "flow" of N bytes that traverses a set of capacity-limited resources
// (sender NIC, receiver NIC, receiver disk, ...). Whenever a flow starts or
// finishes, rates are recomputed with progressive filling; completion events
// are driven by the simulation clock. This reproduces the contention
// behaviour of a real cluster (the physical effect behind every throughput
// number in the paper) at a cost of microseconds per flow.
//
// Two scheduling paths share the same progressive-filling core:
//  - incremental (default): per-flow-event cost scales with the size of the
//    affected contention component. Each resource keeps an intrusive list of
//    the flows crossing it; an arrival/departure walks only the connected
//    component of flows transitively sharing resources with the changed
//    flow, settles and refills just that subgraph, and completions come from
//    a lazy-deletion ETA min-heap keyed by (eta, flow id, rate epoch).
//    Per-flow progress is lazy: `remaining` is settled only when the flow's
//    own rate changes (or on demand via Resource::bytes_served()).
//  - reference (Options{.incremental = false}): global progressive filling
//    and a linear next-completion scan on every event. Quadratic, but
//    simple; kept as the equivalence oracle for the property suite. Both
//    modes share the settle discipline (settle exactly the affected
//    component), the completion grouping and the stored per-flow ETAs, so
//    their trajectories are bit-identical, not merely approximately equal.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace bs::net {

class FlowScheduler;
class Resource;

namespace detail {

struct Flow;

/// Membership of one flow in one resource's intrusive flow list.
struct FlowLink {
  Flow* flow{nullptr};
  Resource* resource{nullptr};
  FlowLink* prev{nullptr};
  FlowLink* next{nullptr};
};

struct Flow {
  Flow(sim::Simulation& sim, std::uint64_t id_, double bytes)
      : id(id_), remaining(bytes), done(sim) {}
  std::uint64_t id;
  double remaining;
  double rate{0};
  SimTime last_settle{0};      // progress is settled lazily up to this time
  // Absolute completion ETA, computed once at the flow's last rate change
  // (shared by both scheduling modes so they stay bit-identical).
  SimTime eta{simtime::kInfinite};
  std::uint64_t rate_epoch{0};  // bumped whenever rate changes (stales ETAs)
  std::uint64_t mark{0};        // component-walk visit marker
  double prev_rate{0};          // scratch: rate before a refill
  bool frozen{false};           // scratch for progressive filling
  // One link per distinct resource; sized once at creation (never
  // reallocated — resources hold pointers into this vector).
  std::vector<FlowLink> links;
  sim::Event done;
};

}  // namespace detail

/// A capacity-limited medium (NIC direction, disk, backbone link).
class Resource {
 public:
  Resource(std::string name, double capacity_bps)
      : name_(std::move(name)), capacity_(capacity_bps) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double capacity() const { return capacity_; }

  /// Total bytes that have traversed this resource. Settles the progress of
  /// every flow currently crossing it, so the value is exact as of now.
  [[nodiscard]] double bytes_served() const;

  /// Current number of flows crossing this resource.
  [[nodiscard]] std::size_t active_flows() const { return flow_count_; }

 private:
  friend class FlowScheduler;
  std::string name_;
  double capacity_;        // bytes per second
  double bytes_served_{0};
  std::size_t flow_count_{0};
  FlowScheduler* sched_{nullptr};
  detail::FlowLink* flows_head_{nullptr};  // intrusive list of crossing flows
  // Scratch fields used during rate computation / component walks.
  double cap_left_{0};
  std::size_t unfrozen_{0};
  std::uint64_t mark_{0};
};

class FlowScheduler {
 public:
  struct Options {
    bool incremental = true;
    /// Default options, overridable via the environment: setting
    /// BS_FLOW_SCHED=reference (or "global" / "0") selects the reference
    /// path so whole experiments can be A/B-ed without code changes.
    static Options from_env();
  };

  explicit FlowScheduler(sim::Simulation& sim, Options opts = Options::from_env())
      : sim_(sim), opts_(opts) {}
  FlowScheduler(const FlowScheduler&) = delete;
  FlowScheduler& operator=(const FlowScheduler&) = delete;
  ~FlowScheduler();

  /// Creates a resource owned by the scheduler.
  Resource* create_resource(std::string name, double capacity_bps);

  /// Changes a resource's capacity at runtime (disk slowdowns, degraded
  /// links). Settles the resource's contention component at the old rates,
  /// then refills it under the new capacity — the same event discipline as
  /// an arrival, so both scheduling modes stay bit-identical.
  void set_capacity(Resource* r, double capacity_bps);

  /// Awaitable transfer of `bytes` across `resources`; completes when the
  /// last byte has been delivered under fair sharing. Duplicate entries in
  /// `resources` are ignored (the flow crosses each resource once).
  // bslint: allow(perf-large-byvalue): tiny pointer list; every caller moves
  sim::Task<void> transfer(double bytes, std::vector<Resource*> resources);

  [[nodiscard]] std::uint64_t completed_flows() const { return completed_; }
  [[nodiscard]] std::size_t active_flow_count() const {
    return active_.size();
  }
  [[nodiscard]] bool incremental() const { return opts_.incremental; }

  /// Read-only view of an active flow, for invariant checks in tests.
  struct FlowInfo {
    std::uint64_t id;
    double rate;
    double remaining;  // as of the flow's last settle
    std::vector<const Resource*> resources;
  };
  [[nodiscard]] std::vector<FlowInfo> active_flows_snapshot() const;

 private:
  friend class Resource;
  using Flow = detail::Flow;
  using FlowLink = detail::FlowLink;

  struct EtaEntry {
    SimTime eta;
    std::uint64_t id;
    std::uint64_t epoch;
  };
  struct EtaLater {  // min-heap on (eta, id) via std::push_heap
    bool operator()(const EtaEntry& a, const EtaEntry& b) const {
      if (a.eta != b.eta) return a.eta > b.eta;
      return a.id > b.id;
    }
  };

  // Shared by both paths.
  void link(Flow* f);
  void unlink(Flow* f);
  void settle_flow(Flow& f);
  void settle_resource(Resource* r);
  void credit_residue(Flow& f);
  void update_eta(Flow& f);
  void fill_rates(const std::vector<Flow*>& flows,
                  const std::vector<Resource*>& resources);

  // Incremental path.
  void on_arrival_incremental(Flow* f);
  void on_wakeup();
  void collect_component(Flow* start, std::uint64_t epoch,
                         std::vector<Flow*>& flows,
                         std::vector<Resource*>& resources);
  void refill_and_reschedule(std::vector<Flow*>& flows,
                             std::vector<Resource*>& resources);
  void push_eta(Flow& f);
  void restore_eta_heap(std::size_t old_size);
  void rebuild_eta_heap();
  void arm_wakeup();
  void compact_eta_heap();

  // Reference path (global refill + linear completion scan).
  void recompute_rates_global();
  void schedule_next_completion();
  void on_completion_event(std::uint64_t generation);

  sim::Simulation& sim_;
  Options opts_;
  std::vector<std::unique_ptr<Resource>> resources_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Flow>> active_;
  std::uint64_t next_flow_id_{0};
  std::uint64_t completed_{0};
  std::uint64_t mark_epoch_{0};

  // Incremental-path state.
  std::vector<EtaEntry> eta_heap_;
  SimTime next_wakeup_{simtime::kInfinite};
  // Scratch buffers reused across events to avoid per-event allocation.
  std::vector<Flow*> scratch_flows_;
  std::vector<Resource*> scratch_resources_;
  std::vector<Flow*> scratch_due_;

  // Reference-path state.
  std::uint64_t generation_{0};
};

/// Convenience capacities.
inline constexpr double gbit_per_sec(double gbit) {
  return gbit * 125'000'000.0;  // bytes/sec
}
inline constexpr double mb_per_sec(double mb) { return mb * 1'000'000.0; }

}  // namespace bs::net
