// Flow-level bandwidth model with max-min fair sharing. A transfer is a
// "flow" of N bytes that traverses a set of capacity-limited resources
// (sender NIC, receiver NIC, receiver disk, ...). Whenever a flow starts or
// finishes, rates are recomputed with progressive filling; completion events
// are driven by the simulation clock. This reproduces the contention
// behaviour of a real cluster (the physical effect behind every throughput
// number in the paper) at a cost of microseconds per flow.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace bs::net {

class FlowScheduler;

/// A capacity-limited medium (NIC direction, disk, backbone link).
class Resource {
 public:
  Resource(std::string name, double capacity_bps)
      : name_(std::move(name)), capacity_(capacity_bps) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double capacity() const { return capacity_; }

  /// Total bytes that have traversed this resource.
  [[nodiscard]] double bytes_served() const { return bytes_served_; }

  /// Current number of flows crossing this resource.
  [[nodiscard]] std::size_t active_flows() const { return flow_count_; }

 private:
  friend class FlowScheduler;
  std::string name_;
  double capacity_;        // bytes per second
  double bytes_served_{0};
  std::size_t flow_count_{0};
  // Scratch fields used during rate computation.
  double cap_left_{0};
  std::size_t unfrozen_{0};
};

class FlowScheduler {
 public:
  explicit FlowScheduler(sim::Simulation& sim) : sim_(sim) {}
  FlowScheduler(const FlowScheduler&) = delete;
  FlowScheduler& operator=(const FlowScheduler&) = delete;

  /// Creates a resource owned by the scheduler.
  Resource* create_resource(std::string name, double capacity_bps);

  /// Awaitable transfer of `bytes` across `resources`; completes when the
  /// last byte has been delivered under fair sharing.
  sim::Task<void> transfer(double bytes, std::vector<Resource*> resources);

  [[nodiscard]] std::uint64_t completed_flows() const { return completed_; }
  [[nodiscard]] std::size_t active_flow_count() const {
    return active_.size();
  }

 private:
  struct Flow {
    Flow(sim::Simulation& sim, std::uint64_t id_, double bytes,
         std::vector<Resource*> rs)
        : id(id_), remaining(bytes), resources(std::move(rs)), done(sim) {}
    std::uint64_t id;
    double remaining;
    double rate{0};
    bool frozen{false};  // scratch for rate computation
    std::vector<Resource*> resources;
    sim::Event done;
  };

  void advance_to_now();
  void recompute_rates();
  void schedule_next_completion();
  void on_completion_event(std::uint64_t generation);

  sim::Simulation& sim_;
  std::vector<std::unique_ptr<Resource>> resources_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Flow>> active_;
  SimTime last_advance_{0};
  std::uint64_t next_flow_id_{0};
  std::uint64_t completed_{0};
  std::uint64_t generation_{0};
};

/// Convenience capacities.
inline constexpr double gbit_per_sec(double gbit) {
  return gbit * 125'000'000.0;  // bytes/sec
}
inline constexpr double mb_per_sec(double mb) { return mb * 1'000'000.0; }

}  // namespace bs::net
