// Minimal leveled logger. The simulation installs a time source so log lines
// carry simulated timestamps; everything is funneled through one sink so
// tests can capture output.
#pragma once

#include <cstdio>
#include <functional>
#include <string>

#include "common/types.hpp"

namespace bs {

enum class LogLevel : int { trace = 0, debug, info, warn, error, off };

class Logger {
 public:
  /// Global logger instance.
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Installs a function returning the current (simulated) time, used to
  /// timestamp log lines. Pass nullptr to revert to no timestamps.
  void set_time_source(std::function<SimTime()> source) {
    time_source_ = std::move(source);
  }

  /// Redirects output; nullptr restores stderr.
  void set_sink(std::function<void(const std::string&)> sink) {
    sink_ = std::move(sink);
  }

  bool enabled(LogLevel level) const { return level >= level_; }

  void log(LogLevel level, const char* component, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_{LogLevel::warn};
  std::function<SimTime()> time_source_;
  std::function<void(const std::string&)> sink_;
};

namespace logdetail {
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
}

#define BS_LOG(level, component, ...)                                        \
  do {                                                                       \
    if (::bs::Logger::instance().enabled(level)) {                           \
      ::bs::Logger::instance().log(level, component,                         \
                                   ::bs::logdetail::format(__VA_ARGS__));    \
    }                                                                        \
  } while (0)

#define BS_TRACE(component, ...) BS_LOG(::bs::LogLevel::trace, component, __VA_ARGS__)
#define BS_DEBUG(component, ...) BS_LOG(::bs::LogLevel::debug, component, __VA_ARGS__)
#define BS_INFO(component, ...) BS_LOG(::bs::LogLevel::info, component, __VA_ARGS__)
#define BS_WARN(component, ...) BS_LOG(::bs::LogLevel::warn, component, __VA_ARGS__)
#define BS_ERROR(component, ...) BS_LOG(::bs::LogLevel::error, component, __VA_ARGS__)

}  // namespace bs
