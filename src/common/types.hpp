// Core vocabulary types shared by every module: simulated time, strongly
// typed identifiers and byte-size helpers.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace bs {

/// Simulated time in nanoseconds since simulation start.
using SimTime = std::int64_t;

/// Simulated durations share the representation of SimTime.
using SimDuration = std::int64_t;

namespace simtime {

inline constexpr SimTime kNanosPerMicro = 1'000;
inline constexpr SimTime kNanosPerMilli = 1'000'000;
inline constexpr SimTime kNanosPerSec = 1'000'000'000;
inline constexpr SimTime kInfinite = std::numeric_limits<SimTime>::max();

constexpr SimDuration nanos(std::int64_t n) { return n; }
constexpr SimDuration micros(double u) {
  return static_cast<SimDuration>(u * static_cast<double>(kNanosPerMicro));
}
constexpr SimDuration millis(double m) {
  return static_cast<SimDuration>(m * static_cast<double>(kNanosPerMilli));
}
constexpr SimDuration seconds(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kNanosPerSec));
}
constexpr SimDuration minutes(double m) { return seconds(m * 60.0); }

constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kNanosPerSec);
}
constexpr double to_millis(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kNanosPerMilli);
}

/// Renders a time as a compact human-readable string, e.g. "12.345s".
std::string to_string(SimTime t);

}  // namespace simtime

/// Strongly typed 64-bit identifier. The Tag parameter only serves to make
/// distinct id families non-interchangeable at compile time.
template <class Tag>
struct Id {
  static constexpr std::uint64_t kInvalid =
      std::numeric_limits<std::uint64_t>::max();

  std::uint64_t value{kInvalid};

  constexpr Id() = default;
  constexpr explicit Id(std::uint64_t v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value != kInvalid; }

  friend constexpr auto operator<=>(const Id&, const Id&) = default;
};

using NodeId = Id<struct NodeIdTag>;      ///< a simulated machine
using BlobId = Id<struct BlobIdTag>;      ///< a BlobSeer BLOB
using ClientId = Id<struct ClientIdTag>;  ///< an (authenticated) storage user
using ChunkId = Id<struct ChunkIdTag>;    ///< a stored data chunk
using FlowId = Id<struct FlowIdTag>;      ///< a network/disk transfer

template <class Tag>
std::string to_string(Id<Tag> id) {
  return id.valid() ? std::to_string(id.value) : std::string("<invalid>");
}

namespace units {

inline constexpr std::uint64_t KB = 1'000ull;
inline constexpr std::uint64_t MB = 1'000'000ull;
inline constexpr std::uint64_t GB = 1'000'000'000ull;
inline constexpr std::uint64_t KiB = 1'024ull;
inline constexpr std::uint64_t MiB = 1'048'576ull;
inline constexpr std::uint64_t GiB = 1'073'741'824ull;

/// Renders a byte count as e.g. "1.50 GB".
std::string format_bytes(std::uint64_t bytes);

/// Renders a rate in bytes/second as e.g. "112.3 MB/s".
std::string format_rate(double bytes_per_sec);

}  // namespace units
}  // namespace bs

namespace std {
template <class Tag>
struct hash<bs::Id<Tag>> {
  size_t operator()(const bs::Id<Tag>& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};
}  // namespace std
