#include "common/token_bucket.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bs {

TokenBucket::TokenBucket(double rate_per_sec, double burst)
    : rate_(rate_per_sec), burst_(burst), tokens_(burst) {
  assert(rate_per_sec > 0.0 && burst > 0.0);
}

void TokenBucket::refill(SimTime now) {
  if (now <= last_) return;
  const double dt = simtime::to_seconds(now - last_);
  tokens_ = std::min(burst_, tokens_ + dt * rate_);
  last_ = now;
}

bool TokenBucket::try_consume(SimTime now, double tokens) {
  refill(now);
  if (tokens_ + 1e-9 >= tokens) {
    tokens_ -= tokens;
    return true;
  }
  return false;
}

SimTime TokenBucket::next_available(SimTime now, double tokens) const {
  TokenBucket copy = *this;
  copy.refill(now);
  if (copy.tokens_ + 1e-9 >= tokens) return now;
  const double deficit = tokens - copy.tokens_;
  const double wait_sec = deficit / rate_;
  return now + simtime::seconds(wait_sec);
}

double TokenBucket::available(SimTime now) const {
  TokenBucket copy = *this;
  copy.refill(now);
  return copy.tokens_;
}

}  // namespace bs
