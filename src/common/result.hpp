// Lightweight expected-style error handling used across all service
// boundaries: distributed operations fail for mundane reasons (timeouts,
// blocked clients, missing blobs) that are part of normal control flow and
// must not be exceptions.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace bs {

enum class Errc {
  ok = 0,
  timeout,
  unavailable,        ///< destination node down or service not registered
  not_found,
  already_exists,
  invalid_argument,
  permission_denied,  ///< ACL rejection
  blocked,            ///< client blocked by the self-protection framework
  throttled,          ///< client rate-limited by enforcement
  out_of_space,
  conflict,           ///< version conflict / lost serialization race
  cancelled,
  io_error,
  parse_error,
  unsupported,
  internal,
};

/// Human-readable name of an error code (stable, used in logs and tests).
const char* errc_name(Errc code);

struct Error {
  Errc code{Errc::internal};
  std::string message;

  std::string to_string() const;
};

/// Result<T>: either a value or an Error. Result<void> carries success only.
template <class T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::in_place_index<0>, std::move(value)) {}
  Result(Error err) : data_(std::in_place_index<1>, std::move(err)) {}
  Result(Errc code, std::string message = {})
      : data_(std::in_place_index<1>, Error{code, std::move(message)}) {}

  [[nodiscard]] bool ok() const { return data_.index() == 0; }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<0>(data_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<0>(data_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<0>(std::move(data_));
  }

  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return std::get<1>(data_);
  }
  [[nodiscard]] Errc code() const {
    return ok() ? Errc::ok : error().code;
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` on error.
  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Error> data_;
};

template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error err) : err_(std::move(err)) {}
  Result(Errc code, std::string message = {})
      : err_(Error{code, std::move(message)}) {}

  [[nodiscard]] bool ok() const { return !err_.has_value(); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return *err_;
  }
  [[nodiscard]] Errc code() const { return ok() ? Errc::ok : err_->code; }

 private:
  std::optional<Error> err_;
};

inline Result<void> ok_result() { return {}; }

}  // namespace bs
