// Append-only time series of (time, value) samples with range queries and
// fixed-step resampling; the storage format of the monitoring storage servers
// and the input of the visualization tool.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace bs {

struct Sample {
  SimTime time{0};
  double value{0.0};
};

class TimeSeries {
 public:
  void append(SimTime t, double value);
  void clear() { samples_.clear(); }

  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  [[nodiscard]] const Sample& back() const { return samples_.back(); }

  /// Samples with time in [from, to).
  [[nodiscard]] std::vector<Sample> range(SimTime from, SimTime to) const;

  /// Last sample at or before t; empty series or t before first sample
  /// yields `fallback`.
  [[nodiscard]] double value_at(SimTime t, double fallback = 0.0) const;

  /// Mean of values in [from, to); `fallback` when no sample falls inside.
  [[nodiscard]] double mean(SimTime from, SimTime to,
                            double fallback = 0.0) const;

  /// Resamples into fixed buckets of width `step` spanning [from, to);
  /// each bucket holds the mean of its samples (empty buckets repeat the
  /// previous value, starting from `initial`).
  [[nodiscard]] std::vector<double> resample(SimTime from, SimTime to,
                                             SimDuration step,
                                             double initial = 0.0) const;

 private:
  std::vector<Sample> samples_;  // sorted by time (append enforces order)
};

}  // namespace bs
