// Fixed-capacity FIFO ring buffer. The monitoring storage servers use it as
// the burst-absorbing cache in front of their (simulated) disks.
#pragma once

#include <cassert>
#include <cstddef>
#include <optional>
#include <vector>

namespace bs {

template <class T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : buf_(capacity) {
    assert(capacity > 0);
  }

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == buf_.size(); }

  /// Appends; returns false (and drops `item`) when full.
  bool push(T item) {
    if (full()) return false;
    buf_[(head_ + size_) % buf_.size()] = std::move(item);
    ++size_;
    return true;
  }

  /// Appends, evicting the oldest element when full. Returns the evicted
  /// element, if any.
  std::optional<T> push_evict(T item) {
    std::optional<T> evicted;
    if (full()) evicted = pop();
    push(std::move(item));
    return evicted;
  }

  std::optional<T> pop() {
    if (empty()) return std::nullopt;
    T out = std::move(buf_[head_]);
    head_ = (head_ + 1) % buf_.size();
    --size_;
    return out;
  }

  [[nodiscard]] const T& front() const {
    assert(!empty());
    return buf_[head_];
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> buf_;
  std::size_t head_{0};
  std::size_t size_{0};
};

}  // namespace bs
