#include "common/result.hpp"

namespace bs {

const char* errc_name(Errc code) {
  switch (code) {
    case Errc::ok: return "ok";
    case Errc::timeout: return "timeout";
    case Errc::unavailable: return "unavailable";
    case Errc::not_found: return "not_found";
    case Errc::already_exists: return "already_exists";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::permission_denied: return "permission_denied";
    case Errc::blocked: return "blocked";
    case Errc::throttled: return "throttled";
    case Errc::out_of_space: return "out_of_space";
    case Errc::conflict: return "conflict";
    case Errc::cancelled: return "cancelled";
    case Errc::io_error: return "io_error";
    case Errc::parse_error: return "parse_error";
    case Errc::unsupported: return "unsupported";
    case Errc::internal: return "internal";
  }
  return "unknown";
}

std::string Error::to_string() const {
  std::string out = errc_name(code);
  if (!message.empty()) {
    out += ": ";
    out += message;
  }
  return out;
}

}  // namespace bs
