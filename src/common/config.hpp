// Flat key-value configuration with typed access and "k=v" / file parsing.
// Every deployable component is parameterized through a Config so experiment
// harnesses can sweep settings without recompiling.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"

namespace bs {

class Config {
 public:
  Config() = default;

  /// Parses lines of `key = value` (# comments, blank lines ignored).
  static Result<Config> parse(const std::string& text);

  void set(const std::string& key, const std::string& value);
  void set_int(const std::string& key, std::int64_t value);
  void set_double(const std::string& key, double value);
  void set_bool(const std::string& key, bool value);

  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& dflt = {}) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t dflt = 0) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double dflt = 0.0) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool dflt = false) const;

  /// Accepts suffixed byte sizes: "64KB", "4MiB", "1GB", plain numbers.
  [[nodiscard]] std::uint64_t get_bytes(const std::string& key,
                                        std::uint64_t dflt = 0) const;

  /// Accepts suffixed durations: "250ms", "10s", "2min", plain ns.
  [[nodiscard]] SimDuration get_duration(const std::string& key,
                                         SimDuration dflt = 0) const;

  /// Merges `other` over this config (other's keys win).
  void merge(const Config& other);

  [[nodiscard]] std::vector<std::string> keys() const;
  [[nodiscard]] std::string to_string() const;

  /// Standalone parsers, also used by the policy language for literals.
  static Result<std::uint64_t> parse_bytes(const std::string& text);
  static Result<SimDuration> parse_duration(const std::string& text);

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace bs
