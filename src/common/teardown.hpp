// Frame-teardown guard. When a Simulation is destroyed with actors still
// suspended, it destroys their coroutine frames to reclaim the memory; the
// destructors of frame-local RAII objects (semaphore guards, trace spans)
// would then fire against services, sinks and sync primitives that were
// destroyed *before* the simulation (they are constructed after it and own
// references into it). During that cascade — and only then — those
// destructors must become no-ops: nothing that happens at teardown is
// observable simulation behaviour. The flag lives here (not in sim/) so the
// observability layer can consult it without depending on the simulator.
#pragma once

namespace bs {

namespace detail {
inline thread_local bool g_frame_teardown = false;
}

/// True while a Simulation destructor is destroying suspended actor frames.
inline bool in_frame_teardown() { return detail::g_frame_teardown; }

/// RAII setter used by ~Simulation around the frame-destruction cascade.
class FrameTeardownScope {
 public:
  FrameTeardownScope() : prev_(detail::g_frame_teardown) {
    detail::g_frame_teardown = true;
  }
  ~FrameTeardownScope() { detail::g_frame_teardown = prev_; }
  FrameTeardownScope(const FrameTeardownScope&) = delete;
  FrameTeardownScope& operator=(const FrameTeardownScope&) = delete;

 private:
  bool prev_;
};

}  // namespace bs
