// Token-bucket rate limiter over simulated time; the enforcement layer uses
// it to throttle clients, and providers use it to model request admission.
#pragma once

#include "common/types.hpp"

namespace bs {

class TokenBucket {
 public:
  /// rate: tokens added per second; burst: bucket capacity.
  TokenBucket(double rate_per_sec, double burst);

  /// Tries to consume `tokens` at time `now`; returns true on success.
  bool try_consume(SimTime now, double tokens = 1.0);

  /// Time at which `tokens` would next be available (>= now).
  [[nodiscard]] SimTime next_available(SimTime now, double tokens = 1.0) const;

  void set_rate(double rate_per_sec) { rate_ = rate_per_sec; }
  [[nodiscard]] double rate() const { return rate_; }
  [[nodiscard]] double available(SimTime now) const;

 private:
  void refill(SimTime now);

  double rate_;
  double burst_;
  double tokens_;
  SimTime last_{0};
};

}  // namespace bs
