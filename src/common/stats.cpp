#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace bs {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ +
         delta * delta * static_cast<double>(n_) *
             static_cast<double>(other.n_) / n;
  mean_ = (mean_ * static_cast<double>(n_) +
           other.mean_ * static_cast<double>(other.n_)) /
          n;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      bins_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  ++count_;
  stats_.add(x);
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, bins_.size() - 1);
    ++bins_[idx];
  }
}

void Histogram::reset() {
  std::fill(bins_.begin(), bins_.end(), 0);
  underflow_ = overflow_ = count_ = 0;
  stats_.reset();
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + static_cast<double>(i) * width_;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1));
  std::uint64_t seen = underflow_;
  if (target < seen) return lo_;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i] == 0) continue;
    if (target < seen + bins_[i]) {
      // Linear interpolation inside the bin.
      const double frac = static_cast<double>(target - seen + 1) /
                          static_cast<double>(bins_[i]);
      return bin_lo(i) + frac * width_;
    }
    seen += bins_[i];
  }
  return hi_;
}

std::string Histogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f",
                static_cast<unsigned long long>(count_), mean(),
                quantile(0.50), quantile(0.90), quantile(0.99), stats_.max());
  return buf;
}

void SlidingWindowCounter::add(SimTime now, double amount) {
  evict(now);
  samples_.emplace_back(now, amount);
  sum_ += amount;
}

void SlidingWindowCounter::evict(SimTime now) const {
  const SimTime cutoff = now - window_;
  while (!samples_.empty() && samples_.front().first <= cutoff) {
    sum_ -= samples_.front().second;
    samples_.pop_front();
  }
}

double SlidingWindowCounter::total(SimTime now) const {
  evict(now);
  return sum_;
}

double SlidingWindowCounter::rate_per_sec(SimTime now) const {
  const double w = simtime::to_seconds(window_);
  return w > 0.0 ? total(now) / w : 0.0;
}

}  // namespace bs
