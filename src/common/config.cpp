#include "common/config.hpp"

#include <cctype>
#include <cstdlib>

#include "common/strings.hpp"

namespace bs {

Result<Config> Config::parse(const std::string& text) {
  Config cfg;
  int lineno = 0;
  for (const auto& raw_line : split(text, '\n')) {
    ++lineno;
    auto line = trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Error{Errc::parse_error,
                   "config line " + std::to_string(lineno) + ": missing '='"};
    }
    const auto key = trim(line.substr(0, eq));
    const auto value = trim(line.substr(eq + 1));
    if (key.empty()) {
      return Error{Errc::parse_error,
                   "config line " + std::to_string(lineno) + ": empty key"};
    }
    cfg.set(std::string(key), std::string(value));
  }
  return cfg;
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}
void Config::set_int(const std::string& key, std::int64_t value) {
  values_[key] = std::to_string(value);
}
void Config::set_double(const std::string& key, double value) {
  values_[key] = std::to_string(value);
}
void Config::set_bool(const std::string& key, bool value) {
  values_[key] = value ? "true" : "false";
}

bool Config::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Config::get_string(const std::string& key,
                               const std::string& dflt) const {
  auto it = values_.find(key);
  return it == values_.end() ? dflt : it->second;
}

std::int64_t Config::get_int(const std::string& key, std::int64_t dflt) const {
  auto it = values_.find(key);
  if (it == values_.end()) return dflt;
  char* end = nullptr;
  const auto v = std::strtoll(it->second.c_str(), &end, 10);
  return (end && *end == '\0') ? v : dflt;
}

double Config::get_double(const std::string& key, double dflt) const {
  auto it = values_.find(key);
  if (it == values_.end()) return dflt;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return (end && *end == '\0') ? v : dflt;
}

bool Config::get_bool(const std::string& key, bool dflt) const {
  auto it = values_.find(key);
  if (it == values_.end()) return dflt;
  const auto v = to_lower(it->second);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return dflt;
}

std::uint64_t Config::get_bytes(const std::string& key,
                                std::uint64_t dflt) const {
  auto it = values_.find(key);
  if (it == values_.end()) return dflt;
  auto parsed = parse_bytes(it->second);
  return parsed.ok() ? parsed.value() : dflt;
}

SimDuration Config::get_duration(const std::string& key,
                                 SimDuration dflt) const {
  auto it = values_.find(key);
  if (it == values_.end()) return dflt;
  auto parsed = parse_duration(it->second);
  return parsed.ok() ? parsed.value() : dflt;
}

void Config::merge(const Config& other) {
  for (const auto& [k, v] : other.values_) values_[k] = v;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

std::string Config::to_string() const {
  std::string out;
  for (const auto& [k, v] : values_) {
    out += k;
    out += " = ";
    out += v;
    out += '\n';
  }
  return out;
}

namespace {
struct NumberSuffix {
  double number;
  std::string suffix;
};

Result<NumberSuffix> split_number_suffix(const std::string& text) {
  const auto trimmed = std::string(trim(text));
  char* end = nullptr;
  const double number = std::strtod(trimmed.c_str(), &end);
  if (end == trimmed.c_str()) {
    return Error{Errc::parse_error, "not a number: '" + trimmed + "'"};
  }
  std::string suffix = to_lower(trim(std::string_view(end)));
  return NumberSuffix{number, std::move(suffix)};
}
}  // namespace

Result<std::uint64_t> Config::parse_bytes(const std::string& text) {
  auto ns = split_number_suffix(text);
  if (!ns.ok()) return ns.error();
  const auto& [number, suffix] = ns.value();
  double mult = 1.0;
  if (suffix.empty() || suffix == "b") {
    mult = 1.0;
  } else if (suffix == "kb") {
    mult = static_cast<double>(units::KB);
  } else if (suffix == "mb") {
    mult = static_cast<double>(units::MB);
  } else if (suffix == "gb") {
    mult = static_cast<double>(units::GB);
  } else if (suffix == "kib") {
    mult = static_cast<double>(units::KiB);
  } else if (suffix == "mib") {
    mult = static_cast<double>(units::MiB);
  } else if (suffix == "gib") {
    mult = static_cast<double>(units::GiB);
  } else {
    return Error{Errc::parse_error, "unknown byte suffix: '" + suffix + "'"};
  }
  if (number < 0) {
    return Error{Errc::parse_error, "negative byte size"};
  }
  return static_cast<std::uint64_t>(number * mult);
}

Result<SimDuration> Config::parse_duration(const std::string& text) {
  auto ns = split_number_suffix(text);
  if (!ns.ok()) return ns.error();
  const auto& [number, suffix] = ns.value();
  if (suffix.empty() || suffix == "ns") {
    return static_cast<SimDuration>(number);
  }
  if (suffix == "us") return simtime::micros(number);
  if (suffix == "ms") return simtime::millis(number);
  if (suffix == "s" || suffix == "sec") return simtime::seconds(number);
  if (suffix == "min" || suffix == "m") return simtime::minutes(number);
  if (suffix == "h") return simtime::minutes(number * 60.0);
  return Error{Errc::parse_error, "unknown duration suffix: '" + suffix + "'"};
}

}  // namespace bs
