// Host-side thread pool. The simulation itself is single-threaded and
// deterministic; the pool parallelizes *independent* simulation runs (e.g.
// parameter sweeps in the benchmark harness) across host cores.
//
// bslint: allow-file(det-thread): deliberately host-parallel — never used
// inside a simulation; each pooled task owns a whole Simulation instance
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bs {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job; jobs must not throw.
  void submit(std::function<void()> job);

  /// Blocks until all submitted jobs have finished.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_job_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> jobs_;
  std::size_t in_flight_{0};
  bool stopping_{false};
  std::vector<std::thread> workers_;
};

}  // namespace bs
