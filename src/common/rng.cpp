#include "common/rng.hpp"

#include <cassert>
#include <cmath>

namespace bs {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's debiased multiply-shift rejection method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u = next_double();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = next_double();
  double u2 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  assert(n > 0);
  // Rejection-inversion sampling (Hormann & Derflinger) is overkill at our
  // scales; use the simple inverse-CDF over a cached-free harmonic bound via
  // rejection against the continuous envelope.
  // For simplicity and determinism, use the classic two-step approximation:
  if (n == 1) return 0;
  const double t = (std::pow(static_cast<double>(n), 1.0 - s) - s) / (1.0 - s);
  while (true) {
    const double u = next_double() * t;
    const double x = (u <= 1.0)
                         ? u
                         : std::pow(u * (1.0 - s) + s, 1.0 / (1.0 - s));
    const auto k = static_cast<std::uint64_t>(x);
    if (k >= n) continue;
    const double ratio = std::pow(static_cast<double>(k + 1), -s);
    const double envelope =
        (k == 0) ? 1.0 : std::pow(static_cast<double>(k), -s);
    if (next_double() * envelope <= ratio) return k;
  }
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace bs
