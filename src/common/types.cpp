#include "common/types.hpp"

#include <array>
#include <cstdio>

namespace bs {
namespace simtime {

std::string to_string(SimTime t) {
  std::array<char, 32> buf{};
  if (t == kInfinite) return "inf";
  if (t < kNanosPerMicro) {
    std::snprintf(buf.data(), buf.size(), "%lldns", static_cast<long long>(t));
  } else if (t < kNanosPerMilli) {
    std::snprintf(buf.data(), buf.size(), "%.3fus",
                  static_cast<double>(t) / static_cast<double>(kNanosPerMicro));
  } else if (t < kNanosPerSec) {
    std::snprintf(buf.data(), buf.size(), "%.3fms",
                  static_cast<double>(t) / static_cast<double>(kNanosPerMilli));
  } else {
    std::snprintf(buf.data(), buf.size(), "%.3fs", to_seconds(t));
  }
  return buf.data();
}

}  // namespace simtime

namespace units {

std::string format_bytes(std::uint64_t bytes) {
  std::array<char, 32> buf{};
  const double b = static_cast<double>(bytes);
  if (bytes >= GB) {
    std::snprintf(buf.data(), buf.size(), "%.2f GB", b / static_cast<double>(GB));
  } else if (bytes >= MB) {
    std::snprintf(buf.data(), buf.size(), "%.2f MB", b / static_cast<double>(MB));
  } else if (bytes >= KB) {
    std::snprintf(buf.data(), buf.size(), "%.2f KB", b / static_cast<double>(KB));
  } else {
    std::snprintf(buf.data(), buf.size(), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf.data();
}

std::string format_rate(double bytes_per_sec) {
  std::array<char, 32> buf{};
  if (bytes_per_sec >= static_cast<double>(GB)) {
    std::snprintf(buf.data(), buf.size(), "%.2f GB/s",
                  bytes_per_sec / static_cast<double>(GB));
  } else if (bytes_per_sec >= static_cast<double>(MB)) {
    std::snprintf(buf.data(), buf.size(), "%.1f MB/s",
                  bytes_per_sec / static_cast<double>(MB));
  } else if (bytes_per_sec >= static_cast<double>(KB)) {
    std::snprintf(buf.data(), buf.size(), "%.1f KB/s",
                  bytes_per_sec / static_cast<double>(KB));
  } else {
    std::snprintf(buf.data(), buf.size(), "%.1f B/s", bytes_per_sec);
  }
  return buf.data();
}

}  // namespace units
}  // namespace bs
