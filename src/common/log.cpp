#include "common/log.hpp"

#include <cstdarg>
#include <vector>

namespace bs {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO ";
    case LogLevel::warn: return "WARN ";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF  ";
  }
  return "?";
}
}  // namespace

void Logger::log(LogLevel level, const char* component,
                 const std::string& message) {
  std::string line;
  line.reserve(message.size() + 64);
  if (time_source_) {
    line += "[";
    line += simtime::to_string(time_source_());
    line += "] ";
  }
  line += level_name(level);
  line += " [";
  line += component;
  line += "] ";
  line += message;
  if (sink_) {
    sink_(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

namespace logdetail {

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed <= 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace logdetail
}  // namespace bs
