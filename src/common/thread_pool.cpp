#include "common/thread_pool.hpp"

#include <algorithm>

namespace bs {

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(1, threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_job_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard lock(mu_);
    jobs_.push_back(std::move(job));
  }
  cv_job_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return jobs_.empty() && in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    submit([&fn, i] { fn(i); });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> job;
    {
      std::unique_lock lock(mu_);
      cv_job_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      if (stopping_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop_front();
      ++in_flight_;
    }
    job();
    {
      std::lock_guard lock(mu_);
      --in_flight_;
      if (jobs_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace bs
