// Streaming statistics primitives used by monitoring, introspection and the
// benchmark harness: Welford running moments, fixed-bin histograms with
// quantile queries, and sliding-window rate counters.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace bs {

/// Numerically stable running mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::uint64_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
  double sum_{0.0};
};

/// Histogram over [lo, hi) with uniform bins plus under/overflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void reset();

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double mean() const { return stats_.mean(); }
  [[nodiscard]] double min() const { return stats_.min(); }
  [[nodiscard]] double max() const { return stats_.max(); }
  [[nodiscard]] const std::vector<std::uint64_t>& bins() const { return bins_; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_width() const { return width_; }

  /// One-line summary "count=… mean=… p50=… p99=… max=…".
  [[nodiscard]] std::string summary() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t underflow_{0};
  std::uint64_t overflow_{0};
  std::uint64_t count_{0};
  RunningStats stats_;
};

/// Counts events in a trailing time window; used for rate(kind, window)
/// queries in security policies and in the introspection layer.
class SlidingWindowCounter {
 public:
  explicit SlidingWindowCounter(SimDuration window) : window_(window) {}

  void add(SimTime now, double amount = 1.0);

  /// Total amount observed within (now - window, now].
  [[nodiscard]] double total(SimTime now) const;

  /// Events per second over the window.
  [[nodiscard]] double rate_per_sec(SimTime now) const;

  [[nodiscard]] SimDuration window() const { return window_; }

 private:
  void evict(SimTime now) const;

  SimDuration window_;
  mutable std::deque<std::pair<SimTime, double>> samples_;
  mutable double sum_{0.0};
};

}  // namespace bs
