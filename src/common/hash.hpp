// Deterministic hashing (FNV-1a) used for metadata partitioning, chunk
// checksums and synthetic data fingerprints. Intentionally not std::hash,
// whose values may differ between standard libraries.
#pragma once

#include <cstdint>
#include <string_view>

namespace bs {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

constexpr std::uint64_t fnv1a(std::string_view data,
                              std::uint64_t seed = kFnvOffset) {
  std::uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

constexpr std::uint64_t fnv1a_u64(std::uint64_t value,
                                  std::uint64_t seed = kFnvOffset) {
  std::uint64_t h = seed;
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  // Multiply `a` into the seed first so the combination is asymmetric
  // (plain xor-seeding collides pairs like (1,2)/(2,1)).
  return fnv1a_u64(b, (a * kFnvPrime) ^ kFnvOffset);
}

}  // namespace bs
