#include "common/timeseries.hpp"

#include <algorithm>
#include <cassert>

namespace bs {

void TimeSeries::append(SimTime t, double value) {
  assert(samples_.empty() || samples_.back().time <= t);
  samples_.push_back(Sample{t, value});
}

std::vector<Sample> TimeSeries::range(SimTime from, SimTime to) const {
  auto lo = std::lower_bound(
      samples_.begin(), samples_.end(), from,
      [](const Sample& s, SimTime t) { return s.time < t; });
  auto hi = std::lower_bound(
      lo, samples_.end(), to,
      [](const Sample& s, SimTime t) { return s.time < t; });
  return {lo, hi};
}

double TimeSeries::value_at(SimTime t, double fallback) const {
  auto it = std::upper_bound(
      samples_.begin(), samples_.end(), t,
      [](SimTime t0, const Sample& s) { return t0 < s.time; });
  if (it == samples_.begin()) return fallback;
  return std::prev(it)->value;
}

double TimeSeries::mean(SimTime from, SimTime to, double fallback) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& s : range(from, to)) {
    sum += s.value;
    ++n;
  }
  return n ? sum / static_cast<double>(n) : fallback;
}

std::vector<double> TimeSeries::resample(SimTime from, SimTime to,
                                         SimDuration step,
                                         double initial) const {
  assert(step > 0);
  std::vector<double> out;
  double prev = initial;
  for (SimTime t = from; t < to; t += step) {
    const double m = mean(t, t + step, prev);
    out.push_back(m);
    prev = m;
  }
  return out;
}

}  // namespace bs
