// Deterministic, splittable random number generation. Every stochastic
// component takes an explicit Rng (or a seed) so whole-system experiments
// replay bit-identically.
#pragma once

#include <cstdint>
#include <vector>

namespace bs {

/// xoshiro256** — fast, high-quality, and trivially seedable via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Normally distributed value (Box-Muller).
  double normal(double mean, double stddev);

  /// Zipf-distributed rank in [0, n) with skew parameter s.
  std::uint64_t zipf(std::uint64_t n, double s);

  /// Derives an independent child generator (for per-actor streams).
  Rng split();

  /// Fisher-Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

/// splitmix64 step, exposed for hashing-style uses.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace bs
