// Per-site divergence tracking for the geo-replication plane, following
// RethinkDB's version_map_t / version_range_t shape: each site keeps, per
// blob ("region"), the set of published versions it has durably applied
// locally plus the newest globally-published version it has heard of. A
// VersionRange collapses that into [earliest, latest] — earliest is the
// coherent frontier (every published version up to it is applied), latest
// the newest known publication — and `is_coherent()` (earliest == latest)
// is exactly the post-heal check: the site holds everything the origin has
// published. Reconciliation exchanges maps, computes the missing ranges and
// schedules catch-up transfers for them.
//
// All state lives in ordered containers: maps are journaled, exchanged over
// the wire and folded into digests, so iteration order is part of the
// deterministic replay contract (bslint det-custody-order).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "blob/blob_types.hpp"

namespace bs::repl {

/// Uncertainty window of one site for one blob. `earliest` is the newest
/// version through which the site is known caught-up (every published
/// version <= earliest is applied or retired); `latest` the newest
/// publication it must reach.
struct VersionRange {
  blob::Version earliest{0};
  blob::Version latest{0};

  [[nodiscard]] bool is_coherent() const { return earliest == latest; }
  [[nodiscard]] bool operator==(const VersionRange& o) const {
    return earliest == o.earliest && latest == o.latest;
  }
  [[nodiscard]] bool operator!=(const VersionRange& o) const {
    return !(*this == o);
  }
};

/// A half-open run of missing versions [from, to] (inclusive) of one blob,
/// plus how many published versions actually fall inside it (version
/// numbers have gaps where writes aborted).
struct MissingRange {
  std::uint64_t blob{0};
  blob::Version from{0};
  blob::Version to{0};
  std::uint64_t count{0};

  [[nodiscard]] bool operator==(const MissingRange& o) const {
    return blob == o.blob && from == o.from && to == o.to && count == o.count;
  }
};

class VersionMap {
 public:
  /// Per-blob region state. `applied` holds published versions durably
  /// applied at this site; `retired` versions no longer owed (trimmed away
  /// at the origin before this site caught up).
  struct Region {
    blob::Version latest_known{0};
    std::set<blob::Version> applied;
    std::set<blob::Version> retired;
  };

  /// Advance the newest-known publication of a blob (monotonic).
  void note_published(BlobId blob, blob::Version v);

  /// Record a durable local apply. Returns false when the version was
  /// already applied — the exactly-once dedup check for re-forwarded
  /// custody bundles.
  bool note_applied(BlobId blob, blob::Version v);

  /// Mark a version no longer owed (trimmed at the origin).
  void retire(BlobId blob, blob::Version v);

  /// Drop a blob's region entirely (blob deleted).
  void drop_region(BlobId blob);

  [[nodiscard]] bool has_applied(BlobId blob, blob::Version v) const;
  [[nodiscard]] blob::Version latest_known(BlobId blob) const;

  /// The uncertainty window of `blob` at this site, measured against the
  /// origin's map (whose applied set is the authoritative published set).
  [[nodiscard]] VersionRange range_against(const VersionMap& origin,
                                           BlobId blob) const;

  /// True iff every region is coherent against the origin: this site has
  /// applied (or been excused from) every version the origin has published.
  [[nodiscard]] bool is_coherent_against(const VersionMap& origin) const;

  /// Published versions present in `origin` but absent here, coalesced into
  /// inclusive ranges in (blob, version) order — the catch-up work list.
  [[nodiscard]] std::vector<MissingRange> missing_from(
      const VersionMap& origin) const;

  /// Fold the origin's latest_known frontier into this map (what a map
  /// exchange teaches the remote side).
  void merge_latest(const VersionMap& other);

  /// Wire form of one region for map-exchange RPCs.
  struct WireRegion {
    std::uint64_t blob{0};
    blob::Version latest_known{0};
    std::vector<blob::Version> applied;  ///< ascending
    std::vector<blob::Version> retired;  ///< ascending

    [[nodiscard]] std::uint64_t wire_size() const {
      return 24 + 8 * (applied.size() + retired.size());
    }
  };
  [[nodiscard]] std::vector<WireRegion> encode_wire() const;
  static VersionMap decode_wire(const std::vector<WireRegion>& regions);

  /// Order-sensitive digest over the full map (determinism suites).
  [[nodiscard]] std::uint64_t digest() const;

  [[nodiscard]] const std::map<std::uint64_t, Region>& regions() const {
    return regions_;
  }
  [[nodiscard]] std::size_t region_count() const { return regions_.size(); }
  [[nodiscard]] std::uint64_t applied_count() const;

  void clear() { regions_.clear(); }

 private:
  Region& region(BlobId b) { return regions_[b.value]; }

  std::map<std::uint64_t, Region> regions_;  ///< by BlobId value
};

}  // namespace bs::repl
