// Site egress: the custody-transfer endpoint of the geo-replication plane,
// one per site, on its own light node. Outbound replication traffic parks
// in bounded per-destination custody queues; a drain loop forwards the
// queue head to the destination site's egress, which journals + fsyncs the
// apply before acking — only that durable handoff releases custody. A
// delivery attempt that times out is re-forwarded (the receiver dedups by
// version id), a partition notification parks the queue without burning
// RPC timeouts, and a heal resumes the drain. The custody queue itself
// rides a PR 7 journal, so parked bundles survive node crashes and are
// re-driven after replay.
//
// The egress also owns its site's VersionMap. The origin site's map is
// authoritative (applied == published); remote maps advance on durable
// applies, and the reconciler exchanges them after heal to schedule
// catch-up for whatever custody lost (drops, wipes, torn tails).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "blob/journal.hpp"
#include "common/types.hpp"
#include "net/topology.hpp"
#include "repl/custody.hpp"
#include "repl/messages.hpp"
#include "repl/version_map.hpp"
#include "rpc/rpc.hpp"
#include "sim/sync.hpp"

namespace bs::repl {

struct EgressOptions {
  /// Custody bound per destination queue; beyond it the overflow policy
  /// applies (spill keeps the bundle at a disk-cost, drops lose it and
  /// leave it to reconciliation).
  std::size_t queue_bound{1024};
  OverflowPolicy overflow{OverflowPolicy::spill};
  /// Per delivery attempt; an attempt that exceeds it is re-forwarded.
  SimDuration custody_timeout{simtime::seconds(5)};
  /// Pause between failed delivery attempts on a link nobody declared down.
  SimDuration retry_backoff{simtime::seconds(2)};
  blob::JournalOptions journal{};
};

/// Per-(blob, version) size retained at the origin so reconciliation can
/// re-synthesize catch-up bundles for versions whose original custody was
/// dropped or never queued.
class SiteEgress {
 public:
  using PeerResolver = std::function<NodeId(net::SiteId)>;
  /// Invoked when a recovery finds the store wiped: the plane re-primes
  /// the origin egress from the version manager (the source of truth).
  using ReprimeHook = std::function<void()>;
  /// Invoked after a durable apply or a map merge at this egress, so the
  /// plane can re-check coherence and record reconciliation lag.
  using ProgressHook = std::function<void()>;

  SiteEgress(rpc::Node& node, net::SiteId site, EgressOptions options);

  [[nodiscard]] rpc::Node& node() { return node_; }
  [[nodiscard]] net::SiteId site() const { return site_; }
  [[nodiscard]] const EgressOptions& options() const { return options_; }

  void set_peer_resolver(PeerResolver fn) { peer_resolver_ = std::move(fn); }
  void set_reprime_hook(ReprimeHook fn) { reprime_ = std::move(fn); }
  void set_progress_hook(ProgressHook fn) { progress_ = std::move(fn); }

  // ------------------------------------------------------------- origin API
  /// Records a publication at the origin (authoritative map + size table)
  /// without queueing custody. Durable via the egress journal.
  void note_published(BlobId blob, blob::Version v, std::uint64_t bytes);
  /// Parks a publish bundle for `dst`. Returns what the queue did with it.
  EnqueueOutcome enqueue_publish(net::SiteId dst, BlobId blob,
                                 blob::Version v, std::uint64_t bytes,
                                 bool catch_up = false);
  /// Parks a chunk-replica bundle for `dst` (custody of the actual bytes).
  EnqueueOutcome enqueue_chunk(net::SiteId dst, const blob::ChunkKey& key,
                               NodeId target, blob::Payload payload);
  /// Version trimmed away at the origin: no longer owed to anyone.
  void retire_version(BlobId blob, blob::Version v);
  /// Blob deleted: drop its region everywhere custody still references it.
  void drop_blob(BlobId blob);

  // ----------------------------------------------------- fault notifications
  /// Partition state of the link towards `peer` (fault plane listener).
  /// Parks / resumes that destination's drain loop.
  void set_link_state(net::SiteId peer, bool partitioned);

  // ------------------------------------------------------------- reconciler
  /// One reconciliation exchange with the origin egress: sends this site's
  /// map, merges the origin's reply, returns how many catch-up bundles the
  /// origin queued towards us (or nullopt on RPC failure).
  sim::Task<std::optional<std::uint64_t>> reconcile_with(NodeId origin_node);

  // ------------------------------------------------------------- inspection
  [[nodiscard]] const VersionMap& map() const { return map_; }
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] std::size_t queue_depth(net::SiteId dst) const;
  [[nodiscard]] std::uint64_t queued_bytes() const;
  [[nodiscard]] const CustodyQueueStats* queue_stats(net::SiteId dst) const;
  [[nodiscard]] CustodyQueueStats total_stats() const;
  [[nodiscard]] bool recovering() const { return recovering_; }
  [[nodiscard]] const blob::RecoveryStats& recovery_stats() const {
    return rec_stats_;
  }
  [[nodiscard]] std::uint64_t applies() const { return applies_; }
  [[nodiscard]] std::uint64_t duplicates_dropped() const {
    return duplicates_;
  }
  /// Size table lookup (tests + catch-up synthesis).
  [[nodiscard]] std::uint64_t published_bytes(BlobId blob,
                                              blob::Version v) const;
  /// Newest bundle id ever issued (tests: must never regress across a
  /// crash+recovery, or released ids could be re-issued onto the wire).
  [[nodiscard]] std::uint64_t bundle_id_hwm() const {
    return next_bundle_id_;
  }

  /// Order-sensitive digest over map + queue state (determinism suites).
  [[nodiscard]] std::uint64_t digest() const;

 private:
  struct EgressRecord {
    enum class Kind : std::uint8_t {
      enqueue,      ///< bundle parked (full bundle payload in the WAL)
      release,      ///< custody handed off (queue head, by bundle id)
      apply,        ///< durable local apply of a remote publication
      apply_chunk,  ///< durable local apply of a remote chunk replica
      publish,      ///< origin bookkeeping: version published, size retained
      retire,       ///< version trimmed
      drop_blob,    ///< blob deleted
      frontier,     ///< newest-known publication learned via map exchange
      bundle_hwm    ///< bundle-id high-water mark (checkpoint image)
    };
    Kind kind{Kind::enqueue};
    CustodyBundle bundle{};      ///< enqueue
    std::uint64_t bundle_id{0};  ///< release / bundle_hwm
    net::SiteId dst{0};          ///< enqueue/release destination
    BlobId blob{};               ///< apply/publish/retire/drop_blob/frontier
    blob::Version version{0};
    std::uint64_t bytes{0};      ///< publish: modelled version size
    blob::ChunkKey chunk{};      ///< apply_chunk: replica identity
    NodeId target{};             ///< apply_chunk: receiving provider
  };

  struct DstState {
    explicit DstState(std::size_t bound, OverflowPolicy policy)
        : queue(bound, policy) {}
    CustodyQueue queue;
    bool partitioned{false};
    bool draining{false};
    std::shared_ptr<sim::Event> resume;  ///< set on heal while parked
  };

  /// Payload bytes a bundle holds under custody (what spill/unspill and
  /// the WAL charge for it).
  static std::uint64_t rec_bundle_bytes(const CustodyBundle& b) {
    return b.kind == BundleKind::chunk ? b.payload.size : b.bytes;
  }
  static std::uint64_t record_bytes(const EgressRecord& rec);
  void apply_record(const EgressRecord& rec);
  void wipe_state();
  EnqueueOutcome enqueue(CustodyBundle b);
  /// Synchronous durable append (fsync before returning); false when the
  /// node crashed before the barrier.
  sim::Task<bool> commit_now(EgressRecord rec);
  std::vector<blob::Journal<EgressRecord>::Entry> encode_checkpoint() const;
  void maybe_checkpoint();
  /// Journals a record asynchronously (group commit): append now, fsync +
  /// seal in a detached task. Crash before the barrier drops the record —
  /// custody semantics already tolerate that (reconciliation catches up).
  void journal_async(EgressRecord rec);
  sim::Task<void> journal_commit(std::uint64_t seq, std::uint64_t bytes,
                                 std::uint64_t incarnation);
  sim::Task<void> recover(std::uint64_t incarnation);

  DstState& dst_state(net::SiteId dst);
  void ensure_drain(net::SiteId dst);
  sim::Task<void> drain_loop(net::SiteId dst, std::uint64_t generation);
  void update_depth_gauge();

  void register_handlers();
  sim::Task<Result<ReplDeliverResp>> handle_deliver(ReplDeliverReq req);
  sim::Task<Result<ReplMapResp>> handle_map(ReplMapReq req);

  rpc::Node& node_;
  net::SiteId site_;
  EgressOptions options_;
  PeerResolver peer_resolver_;
  ReprimeHook reprime_;
  ProgressHook progress_;

  VersionMap map_;
  /// Origin size table: blob -> version -> modelled bytes.
  std::map<std::uint64_t, std::map<blob::Version, std::uint64_t>> sizes_;
  std::map<net::SiteId, DstState> dsts_;
  /// Chunk replicas durably applied here, keyed by replica identity
  /// (chunk key, target provider) rather than sender bundle id, so the
  /// dedup survives bundle-id reuse after a sender crash or store wipe
  /// (the publish dedup is the version map itself).
  std::set<std::pair<blob::ChunkKey, NodeId>> applied_chunks_;

  blob::Journal<EgressRecord> journal_;
  blob::RecoveryStats rec_stats_;
  bool recovering_{false};
  std::uint64_t generation_{0};  ///< stales drain loops across crashes
  std::uint64_t next_bundle_id_{0};
  std::uint64_t applies_{0};
  std::uint64_t duplicates_{0};
  std::string depth_gauge_name_;
};

}  // namespace bs::repl
