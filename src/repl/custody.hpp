// Custody bundles, the store-and-forward unit of the geo-replication plane
// (bundle-protocol shape): replication traffic to a currently-unreachable
// site is wrapped in a bundle and parked in a bounded per-destination FIFO
// at the site egress. Custody is released only on durable handoff — the
// remote egress journals + fsyncs the apply before acking — and a bundle
// whose delivery attempt times out is re-forwarded, so the receiver dedups
// by version id. Queue overflow follows a policy: drop_newest / drop_oldest
// lose the bundle (the version-map reconciler finds and re-schedules it
// after heal), spill keeps it but pays a disk round-trip on both enqueue
// and release.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <set>
#include <utility>

#include "blob/blob_types.hpp"
#include "common/types.hpp"
#include "net/topology.hpp"

namespace bs::repl {

enum class BundleKind : std::uint8_t {
  publish,  ///< version-publication metadata (+ modelled blob bytes)
  chunk,    ///< a chunk replica headed for a provider on the remote site
};

/// One unit of custody. Immutable once enqueued except for the forwarding
/// counters; ordered by `id` (per-egress, monotonically increasing), which
/// is also the FIFO order of the queue.
struct CustodyBundle {
  std::uint64_t id{0};
  BundleKind kind{BundleKind::publish};
  net::SiteId src_site{0};
  net::SiteId dst_site{0};
  BlobId blob{};
  blob::Version version{0};
  std::uint64_t bytes{0};  ///< payload bytes moved cross-site
  blob::ChunkKey chunk{};  ///< kind == chunk
  NodeId target{};         ///< kind == chunk: receiving provider
  blob::Payload payload{};  ///< kind == chunk: the replica itself
  SimTime enqueued_at{0};
  std::uint32_t forwards{0};  ///< delivery attempts so far
  bool spilled{false};        ///< parked on disk, not in memory
  bool catch_up{false};       ///< re-synthesized by reconciliation
};

enum class OverflowPolicy : std::uint8_t { drop_newest, drop_oldest, spill };

/// What push() did with the bundle.
enum class EnqueueOutcome : std::uint8_t {
  ok,
  spilled,      ///< accepted, but parked on disk (bound exceeded)
  dropped_new,  ///< refused: the incoming bundle was dropped
  dropped_old,  ///< accepted after evicting the queue head
};

struct CustodyQueueStats {
  std::uint64_t enqueued{0};
  std::uint64_t released{0};  ///< custody handed off (acked by remote)
  std::uint64_t dropped{0};
  std::uint64_t spilled{0};
  std::uint64_t reforwards{0};
  std::uint64_t peak_depth{0};
};

/// Bounded FIFO of custody bundles for one destination site. Plain ordered
/// state — std::deque in id order — because the drain loop walks it onto
/// the wire and the journal snapshots it (bslint det-custody-order).
class CustodyQueue {
 public:
  CustodyQueue(std::size_t bound, OverflowPolicy policy)
      : bound_(bound), policy_(policy) {}

  EnqueueOutcome push(CustodyBundle b) {
    if (bundles_.size() >= bound_) {
      switch (policy_) {
        case OverflowPolicy::drop_newest:
          ++stats_.dropped;
          forget(b);
          return EnqueueOutcome::dropped_new;
        case OverflowPolicy::drop_oldest:
          forget(bundles_.front());
          bundles_.pop_front();
          ++stats_.dropped;
          remember(b);
          bundles_.push_back(std::move(b));
          ++stats_.enqueued;
          return EnqueueOutcome::dropped_old;
        case OverflowPolicy::spill:
          b.spilled = true;
          ++stats_.spilled;
          break;
      }
    }
    remember(b);
    const bool spilled = b.spilled;
    bundles_.push_back(std::move(b));
    ++stats_.enqueued;
    stats_.peak_depth =
        std::max<std::uint64_t>(stats_.peak_depth, bundles_.size());
    return spilled ? EnqueueOutcome::spilled : EnqueueOutcome::ok;
  }

  /// Custody handoff of the queue head (remote acked durably).
  CustodyBundle release_front() {
    CustodyBundle b = std::move(bundles_.front());
    bundles_.pop_front();
    forget(b);
    ++stats_.released;
    return b;
  }

  void note_reforward() { ++stats_.reforwards; }

  [[nodiscard]] bool empty() const { return bundles_.empty(); }
  [[nodiscard]] std::size_t size() const { return bundles_.size(); }
  [[nodiscard]] const CustodyBundle& front() const { return bundles_.front(); }
  [[nodiscard]] CustodyBundle& front() { return bundles_.front(); }
  [[nodiscard]] const std::deque<CustodyBundle>& bundles() const {
    return bundles_;
  }
  [[nodiscard]] const CustodyQueueStats& stats() const { return stats_; }

  /// Whether a publish of (blob, version) is already parked here — keeps
  /// reconciliation catch-up from double-queueing work that is still in
  /// flight under custody.
  [[nodiscard]] bool holds_publish(BlobId blob, blob::Version v) const {
    return pending_publishes_.count({blob.value, v}) > 0;
  }

  [[nodiscard]] std::uint64_t queued_bytes() const {
    std::uint64_t total = 0;
    for (const CustodyBundle& b : bundles_) total += b.bytes;
    return total;
  }

  void clear() {
    bundles_.clear();
    pending_publishes_.clear();
  }

 private:
  void remember(const CustodyBundle& b) {
    if (b.kind == BundleKind::publish) {
      pending_publishes_.insert({b.blob.value, b.version});
    }
  }
  void forget(const CustodyBundle& b) {
    if (b.kind == BundleKind::publish) {
      pending_publishes_.erase({b.blob.value, b.version});
    }
  }

  std::size_t bound_;
  OverflowPolicy policy_;
  std::deque<CustodyBundle> bundles_;
  std::set<std::pair<std::uint64_t, blob::Version>> pending_publishes_;
  CustodyQueueStats stats_;
};

}  // namespace bs::repl
