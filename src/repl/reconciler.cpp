#include "repl/reconciler.hpp"

#include "obs/metrics.hpp"
#include "repl/plane.hpp"

namespace bs::repl {

void Reconciler::start() {
  if (running_ || !opts_.enabled) return;
  running_ = true;
  auto& sim = plane_.cluster().sim();
  sim.spawn(loop(++generation_));
}

void Reconciler::stop() {
  running_ = false;
  ++generation_;
  if (wake_) wake_->set();
}

void Reconciler::kick() {
  if (wake_) wake_->set();
}

sim::Task<void> Reconciler::loop(std::uint64_t generation) {
  auto& sim = plane_.cluster().sim();
  while (running_ && generation == generation_) {
    // Sleep until the anti-entropy interval elapses or a heal kicks us.
    wake_ = std::make_shared<sim::Event>(sim);
    sim.spawn(arm_timer(wake_, opts_.interval));
    co_await wake_->wait();
    if (!running_ || generation != generation_) break;
    co_await round();
  }
}

sim::Task<void> Reconciler::arm_timer(std::shared_ptr<sim::Event> ev,
                                      SimDuration d) {
  co_await plane_.cluster().sim().delay(d);
  ev->set();
}

sim::Task<void> Reconciler::round() {
  // Remote sites in ascending order, one exchange at a time: the round is
  // deterministic and never floods the origin.
  const NodeId origin_node = plane_.origin_egress_node();
  for (net::SiteId site : plane_.remote_sites()) {
    SiteEgress& remote = plane_.egress(site);
    if (plane_.partitioned(site, plane_.origin_site())) continue;
    auto scheduled = co_await remote.reconcile_with(origin_node);
    if (scheduled.has_value()) {
      ++exchanges_;
      catch_up_ += *scheduled;
      plane_.note_progress(site);
    }
  }
  ++rounds_;
  obs::count("repl.reconcile.rounds");
}

}  // namespace bs::repl
