#include "repl/plane.hpp"

#include <cstdlib>
#include <cstring>
#include <string_view>

#include "fault/fault_plane.hpp"
#include "obs/metrics.hpp"

namespace bs::repl {

ReplOptions repl_options_from_env(ReplOptions base) {
  if (const char* v = std::getenv("BS_REPL")) {
    const std::string_view s(v);
    if (s == "off" || s == "0") base.enabled = false;
    if (s == "on" || s == "1") base.enabled = true;
  }
  if (const char* v = std::getenv("BS_REPL_QUEUE")) {
    const long n = std::atol(v);
    if (n > 0) base.egress.queue_bound = static_cast<std::size_t>(n);
  }
  if (const char* v = std::getenv("BS_REPL_POLICY")) {
    const std::string_view s(v);
    if (s == "spill") base.egress.overflow = OverflowPolicy::spill;
    if (s == "drop_newest") base.egress.overflow = OverflowPolicy::drop_newest;
    if (s == "drop_oldest") base.egress.overflow = OverflowPolicy::drop_oldest;
  }
  if (const char* v = std::getenv("BS_REPL_TIMEOUT_MS")) {
    const long n = std::atol(v);
    if (n > 0) base.egress.custody_timeout = simtime::millis(double(n));
  }
  if (const char* v = std::getenv("BS_REPL_RECONCILE_MS")) {
    const long n = std::atol(v);
    if (n > 0) base.reconcile.interval = simtime::millis(double(n));
  }
  return base;
}

ReplicationPlane::ReplicationPlane(rpc::Cluster& cluster,
                                   net::SiteId origin_site, ReplOptions opts)
    : cluster_(cluster), opts_(opts), origin_(origin_site) {
  // One egress node per site, created after every deployment node so the
  // deployment's node ids stay what seeded tests expect.
  const std::size_t sites = cluster_.topology().site_count();
  for (net::SiteId s = 0; s < sites; ++s) {
    PerSite ps;
    ps.node = cluster_.add_node(s, opts_.egress_spec);
    ps.egress = std::make_unique<SiteEgress>(*ps.node, s, opts_.egress);
    ps.egress->set_peer_resolver([this](net::SiteId site) {
      auto it = sites_.find(site);
      return it == sites_.end() ? NodeId{} : it->second.node->id();
    });
    if (s == origin_) {
      ps.egress->set_reprime_hook([this] { reprime_origin(); });
    } else {
      ps.egress->set_progress_hook([this, s] { note_progress(s); });
    }
    sites_.emplace(s, std::move(ps));
  }
  reconciler_ = std::make_unique<Reconciler>(*this, opts_.reconcile);
}

void ReplicationPlane::attach(blob::Deployment& dep) {
  attach_version_manager(dep.version_manager());
  attach_provider_manager(dep.provider_manager());
  for (auto& dp : dep.providers()) attach_data_provider(*dp);
}

void ReplicationPlane::attach_version_manager(blob::VersionManager& vm) {
  vm_ = &vm;
  blob::VersionManager::GeoHooks hooks;
  hooks.published = [this](BlobId blob, blob::Version v,
                           std::uint64_t size) {
    SiteEgress& o = egress(origin_);
    o.note_published(blob, v, size);
    for (auto& [s, ps] : sites_) {
      if (s != origin_) o.enqueue_publish(s, blob, v, size);
    }
  };
  hooks.trimmed = [this](BlobId blob, blob::Version v) {
    egress(origin_).retire_version(blob, v);
  };
  hooks.deleted = [this](BlobId blob) { egress(origin_).drop_blob(blob); };
  vm.set_geo_hooks(std::move(hooks));
}

void ReplicationPlane::attach_provider_manager(blob::ProviderManager& pm) {
  if (!opts_.steer_allocation) return;
  pm.set_reachability([this](net::SiteId from, net::SiteId to) {
    return !partitioned(from, to);
  });
}

void ReplicationPlane::attach_data_provider(blob::DataProvider& dp) {
  if (!opts_.route_chunks) return;
  const net::SiteId from = dp.node().site();
  dp.set_replicate_router([this, from](const blob::ChunkKey& key,
                                       NodeId target,
                                       const blob::Payload& payload) {
    rpc::Node* tgt = cluster_.node(target);
    if (tgt == nullptr || tgt->site() == from) return false;
    egress(from).enqueue_chunk(tgt->site(), key, target, payload);
    ++chunks_routed_;
    obs::count("repl.chunks_routed");
    return true;
  });
}

void ReplicationPlane::attach_fault_plane(fault::FaultPlane& fp) {
  fp.set_link_listener(
      [this](net::SiteId a, net::SiteId b, bool is_partitioned) {
        on_link(a, b, is_partitioned);
      });
}

void ReplicationPlane::start() { reconciler_->start(); }

void ReplicationPlane::on_link(net::SiteId a, net::SiteId b,
                               bool is_partitioned) {
  if (is_partitioned) {
    partitioned_.insert(pair_key(a, b));
  } else {
    partitioned_.erase(pair_key(a, b));
  }
  auto notify = [this](net::SiteId at, net::SiteId towards, bool part) {
    auto it = sites_.find(at);
    if (it != sites_.end()) it->second.egress->set_link_state(towards, part);
  };
  notify(a, b, is_partitioned);
  notify(b, a, is_partitioned);
  if (!is_partitioned) note_heal(a, b);
}

void ReplicationPlane::note_heal(net::SiteId a, net::SiteId b) {
  ++heals_;
  // Lag is measured from heal to the first coherent progress point of the
  // remote site a partition against the origin had cut off.
  net::SiteId remote = net::SiteId(0);
  bool involves_origin = false;
  if (a == origin_) {
    remote = b;
    involves_origin = true;
  } else if (b == origin_) {
    remote = a;
    involves_origin = true;
  }
  if (involves_origin) {
    LagState& lag = lag_[remote];
    lag.pending = true;
    lag.healed_at = cluster_.sim().now();
    // Coherent already (nothing diverged during the partition)? Record a
    // zero-lag reconciliation immediately.
    note_progress(remote);
  }
  reconciler_->kick();
}

void ReplicationPlane::note_progress(net::SiteId site) {
  auto it = lag_.find(site);
  if (it == lag_.end() || !it->second.pending) return;
  if (!site_coherent(site)) return;
  it->second.pending = false;
  last_lag_ = cluster_.sim().now() - it->second.healed_at;
  obs::observe("repl.reconcile.lag_ms", simtime::to_millis(last_lag_), 0.0,
               1.0e7, 200);
}

void ReplicationPlane::reprime_origin() {
  if (vm_ == nullptr) return;
  SiteEgress& o = egress(origin_);
  for (const auto& pv : vm_->published_snapshot()) {
    o.note_published(pv.blob, pv.version, pv.size);
  }
  obs::count("repl.reprimes");
}

NodeId ReplicationPlane::origin_egress_node() const {
  return sites_.at(origin_).node->id();
}

SiteEgress& ReplicationPlane::egress(net::SiteId site) {
  return *sites_.at(site).egress;
}

const SiteEgress& ReplicationPlane::egress(net::SiteId site) const {
  return *sites_.at(site).egress;
}

std::vector<net::SiteId> ReplicationPlane::remote_sites() const {
  std::vector<net::SiteId> out;
  out.reserve(sites_.size() - 1);
  for (const auto& [s, ps] : sites_) {
    if (s != origin_) out.push_back(s);
  }
  return out;
}

bool ReplicationPlane::partitioned(net::SiteId a, net::SiteId b) const {
  return partitioned_.count(pair_key(a, b)) > 0;
}

bool ReplicationPlane::site_coherent(net::SiteId site) const {
  return egress(site).map().is_coherent_against(egress(origin_).map());
}

bool ReplicationPlane::coherent() const {
  for (const auto& [s, ps] : sites_) {
    if (s != origin_ && !site_coherent(s)) return false;
  }
  return true;
}

CustodyQueueStats ReplicationPlane::total_custody_stats() const {
  CustodyQueueStats total;
  for (const auto& [s, ps] : sites_) {
    const CustodyQueueStats e = ps.egress->total_stats();
    total.enqueued += e.enqueued;
    total.released += e.released;
    total.dropped += e.dropped;
    total.spilled += e.spilled;
    total.reforwards += e.reforwards;
    total.peak_depth = std::max(total.peak_depth, e.peak_depth);
  }
  return total;
}

std::uint64_t ReplicationPlane::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(sites_.size());
  for (const auto& [s, ps] : sites_) {
    mix(s);
    mix(ps.egress->digest());
  }
  return h;
}

std::unique_ptr<ReplicationPlane> enable_geo_replication(
    blob::Deployment& dep, ReplOptions opts) {
  opts = repl_options_from_env(opts);
  if (!opts.enabled) return nullptr;
  // The deployment journals its stateful services; custody follows suit.
  opts.egress.journal = dep.config().journal;
  const net::SiteId origin = dep.version_manager_node().site();
  auto plane =
      std::make_unique<ReplicationPlane>(dep.cluster(), origin, opts);
  plane->attach(dep);
  plane->start();
  return plane;
}

}  // namespace bs::repl
