#include "repl/version_map.hpp"

#include <algorithm>

namespace bs::repl {
namespace {

// Same recipe as test::Digest / the schedule digests: FNV offset seed,
// boost-style mix. Kept local so the map digest is stable even if test
// helpers evolve.
struct Digest {
  std::uint64_t h{0xcbf29ce484222325ull};
  void mix(std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
};

}  // namespace

void VersionMap::note_published(BlobId blob, blob::Version v) {
  Region& r = region(blob);
  r.latest_known = std::max(r.latest_known, v);
}

bool VersionMap::note_applied(BlobId blob, blob::Version v) {
  Region& r = region(blob);
  r.latest_known = std::max(r.latest_known, v);
  return r.applied.insert(v).second;
}

void VersionMap::retire(BlobId blob, blob::Version v) {
  auto it = regions_.find(blob.value);
  if (it == regions_.end()) return;
  it->second.applied.erase(v);
  it->second.retired.insert(v);
}

void VersionMap::drop_region(BlobId blob) { regions_.erase(blob.value); }

bool VersionMap::has_applied(BlobId blob, blob::Version v) const {
  auto it = regions_.find(blob.value);
  return it != regions_.end() && it->second.applied.count(v) > 0;
}

blob::Version VersionMap::latest_known(BlobId blob) const {
  auto it = regions_.find(blob.value);
  return it == regions_.end() ? 0 : it->second.latest_known;
}

VersionRange VersionMap::range_against(const VersionMap& origin,
                                       BlobId blob) const {
  auto oit = origin.regions_.find(blob.value);
  if (oit == origin.regions_.end()) return VersionRange{};
  const Region& orig = oit->second;

  auto it = regions_.find(blob.value);
  static const Region kEmpty{};
  const Region& mine = it == regions_.end() ? kEmpty : it->second;

  // Walk the origin's published versions in order; the coherent frontier
  // stops at the first one this site has neither applied nor been excused
  // from (retired at either end).
  VersionRange range;
  range.latest = std::max(orig.latest_known, mine.latest_known);
  for (blob::Version v : orig.applied) {
    if (mine.applied.count(v) == 0 && mine.retired.count(v) == 0 &&
        orig.retired.count(v) == 0) {
      return range;
    }
    range.earliest = v;
  }
  // Every published version is covered — coherent regardless of aborted
  // version-number gaps below latest_known.
  range.earliest = range.latest;
  return range;
}

bool VersionMap::is_coherent_against(const VersionMap& origin) const {
  for (const auto& [blob, orig] : origin.regions_) {
    if (orig.applied.empty()) continue;
    if (!range_against(origin, BlobId{blob}).is_coherent()) return false;
  }
  return true;
}

std::vector<MissingRange> VersionMap::missing_from(
    const VersionMap& origin) const {
  std::vector<MissingRange> out;
  static const Region kEmpty{};
  for (const auto& [blob, orig] : origin.regions_) {
    auto it = regions_.find(blob);
    const Region& mine = it == regions_.end() ? kEmpty : it->second;
    MissingRange cur;
    bool open = false;
    for (blob::Version v : orig.applied) {
      const bool missing = mine.applied.count(v) == 0 &&
                           mine.retired.count(v) == 0 &&
                           orig.retired.count(v) == 0;
      if (missing) {
        if (!open) {
          cur = MissingRange{blob, v, v, 1};
          open = true;
        } else {
          cur.to = v;
          ++cur.count;
        }
      } else if (open) {
        out.push_back(cur);
        open = false;
      }
    }
    if (open) out.push_back(cur);
  }
  return out;
}

void VersionMap::merge_latest(const VersionMap& other) {
  for (const auto& [blob, r] : other.regions_) {
    note_published(BlobId{blob}, r.latest_known);
  }
}

std::vector<VersionMap::WireRegion> VersionMap::encode_wire() const {
  std::vector<WireRegion> out;
  out.reserve(regions_.size());
  for (const auto& [blob, r] : regions_) {
    WireRegion w;
    w.blob = blob;
    w.latest_known = r.latest_known;
    w.applied.assign(r.applied.begin(), r.applied.end());
    w.retired.assign(r.retired.begin(), r.retired.end());
    out.push_back(std::move(w));
  }
  return out;
}

VersionMap VersionMap::decode_wire(const std::vector<WireRegion>& regions) {
  VersionMap m;
  for (const WireRegion& w : regions) {
    Region& r = m.regions_[w.blob];
    r.latest_known = w.latest_known;
    r.applied.insert(w.applied.begin(), w.applied.end());
    r.retired.insert(w.retired.begin(), w.retired.end());
  }
  return m;
}

std::uint64_t VersionMap::digest() const {
  Digest d;
  d.mix(regions_.size());
  for (const auto& [blob, r] : regions_) {
    d.mix(blob);
    d.mix(r.latest_known);
    d.mix(r.applied.size());
    for (blob::Version v : r.applied) d.mix(v);
    d.mix(r.retired.size());
    for (blob::Version v : r.retired) d.mix(v);
  }
  return d.h;
}

std::uint64_t VersionMap::applied_count() const {
  std::uint64_t n = 0;
  for (const auto& [blob, r] : regions_) n += r.applied.size();
  return n;
}

}  // namespace bs::repl
