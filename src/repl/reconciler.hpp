// Reconciliation actor: after a heal (or periodically, as anti-entropy),
// every remote site exchanges its version map with the origin. The origin
// computes the missing ranges, re-synthesizes catch-up custody bundles for
// whatever divergence the custody queues lost (drops, wipes), and the
// remote merges the origin's frontier. A round visits the remote sites in
// ascending site order, one exchange at a time, so replays are
// deterministic.
#pragma once

#include <cstdint>
#include <memory>

#include "common/types.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace bs::repl {

class ReplicationPlane;

struct ReconcilerOptions {
  bool enabled{true};
  /// Anti-entropy period between unsolicited rounds; a heal kicks a round
  /// immediately.
  SimDuration interval{simtime::seconds(20)};
};

class Reconciler {
 public:
  Reconciler(ReplicationPlane& plane, ReconcilerOptions opts)
      : plane_(plane), opts_(opts) {}

  /// Spawns the periodic loop (idempotent).
  void start();
  void stop();
  /// Runs a round now (heal notification) instead of waiting the interval.
  void kick();

  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }
  [[nodiscard]] std::uint64_t exchanges() const { return exchanges_; }
  [[nodiscard]] std::uint64_t catch_up_scheduled() const {
    return catch_up_;
  }

 private:
  sim::Task<void> loop(std::uint64_t generation);
  sim::Task<void> arm_timer(std::shared_ptr<sim::Event> ev, SimDuration d);
  sim::Task<void> round();

  ReplicationPlane& plane_;
  ReconcilerOptions opts_;
  bool running_{false};
  std::uint64_t generation_{0};
  std::uint64_t rounds_{0};
  std::uint64_t exchanges_{0};
  std::uint64_t catch_up_{0};
  std::shared_ptr<sim::Event> wake_;
};

}  // namespace bs::repl
