// Replication plane: ties the custody egresses, the version maps and the
// reconciler to a running BlobSeer deployment. One SiteEgress per topology
// site, each on its own light node (created after the deployment's nodes,
// so existing node ids stay stable). The version manager's site is the
// origin: its egress holds the authoritative map and the retained history
// that reconciliation re-synthesizes catch-up from.
//
// Wiring:
//   - version manager geo hooks  -> origin bookkeeping + publish custody
//     fan-out to every remote site
//   - data provider replicate router -> cross-site chunk replication rides
//     custody instead of a direct (partition-fragile) RPC
//   - provider manager reachability -> allocation skips providers behind a
//     known partition
//   - fault plane link listener -> parks/resumes drains, kicks the
//     reconciler on heal, and feeds the reconciliation-lag metric
//
// Environment knobs (read by repl_options_from_env):
//   BS_REPL=on|off            enable/disable the plane (tests/benches)
//   BS_REPL_QUEUE=<n>         custody bound per destination queue
//   BS_REPL_POLICY=spill|drop_newest|drop_oldest
//   BS_REPL_TIMEOUT_MS=<n>    custody (per-attempt) delivery timeout
//   BS_REPL_RECONCILE_MS=<n>  anti-entropy round interval
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "blob/deployment.hpp"
#include "repl/egress.hpp"
#include "repl/reconciler.hpp"
#include "rpc/rpc.hpp"

namespace bs::fault {
class FaultPlane;
}

namespace bs::repl {

struct ReplOptions {
  bool enabled{true};
  EgressOptions egress{};
  ReconcilerOptions reconcile{};
  rpc::NodeSpec egress_spec{};
  /// Route cross-site chunk replication through custody.
  bool route_chunks{true};
  /// Let allocation skip providers behind a known partition.
  bool steer_allocation{true};
};

/// Applies BS_REPL* environment overrides on top of `base`.
[[nodiscard]] ReplOptions repl_options_from_env(ReplOptions base = {});

class ReplicationPlane {
 public:
  ReplicationPlane(rpc::Cluster& cluster, net::SiteId origin_site,
                   ReplOptions opts);
  ReplicationPlane(const ReplicationPlane&) = delete;
  ReplicationPlane& operator=(const ReplicationPlane&) = delete;

  // ---------------------------------------------------------------- wiring
  /// All-in-one deployment wiring (version manager, provider manager,
  /// every data provider). The fault plane is attached separately because
  /// tests construct it after the deployment.
  void attach(blob::Deployment& dep);
  void attach_version_manager(blob::VersionManager& vm);
  void attach_provider_manager(blob::ProviderManager& pm);
  void attach_data_provider(blob::DataProvider& dp);
  void attach_fault_plane(fault::FaultPlane& fp);
  /// Starts the reconciler's anti-entropy loop.
  void start();

  // ------------------------------------------------------------ inspection
  [[nodiscard]] rpc::Cluster& cluster() { return cluster_; }
  [[nodiscard]] const ReplOptions& options() const { return opts_; }
  [[nodiscard]] net::SiteId origin_site() const { return origin_; }
  [[nodiscard]] NodeId origin_egress_node() const;
  [[nodiscard]] SiteEgress& egress(net::SiteId site);
  [[nodiscard]] const SiteEgress& egress(net::SiteId site) const;
  [[nodiscard]] std::vector<net::SiteId> remote_sites() const;
  [[nodiscard]] bool partitioned(net::SiteId a, net::SiteId b) const;

  /// Post-heal check: `site`'s map is coherent against the origin's.
  [[nodiscard]] bool site_coherent(net::SiteId site) const;
  /// Every remote site coherent against the origin.
  [[nodiscard]] bool coherent() const;

  [[nodiscard]] Reconciler& reconciler() { return *reconciler_; }
  [[nodiscard]] std::uint64_t heals_observed() const { return heals_; }
  [[nodiscard]] SimDuration last_reconcile_lag() const { return last_lag_; }
  [[nodiscard]] std::uint64_t chunks_routed() const { return chunks_routed_; }
  [[nodiscard]] CustodyQueueStats total_custody_stats() const;
  /// Order-sensitive digest over every egress (determinism suites).
  [[nodiscard]] std::uint64_t digest() const;

  // ----------------------------------------------- internal (reconciler)
  void note_progress(net::SiteId site);
  void note_heal(net::SiteId a, net::SiteId b);

 private:
  struct PerSite {
    rpc::Node* node{nullptr};
    std::unique_ptr<SiteEgress> egress;
  };

  [[nodiscard]] static std::uint64_t pair_key(net::SiteId a, net::SiteId b) {
    const std::uint64_t lo = a < b ? a : b;
    const std::uint64_t hi = a < b ? b : a;
    return (hi << 32) | lo;
  }

  void on_link(net::SiteId a, net::SiteId b, bool is_partitioned);
  /// Rebuilds the origin egress's authoritative state from the version
  /// manager after a custody-store wipe (catch-up then flows through the
  /// next reconciliation round).
  void reprime_origin();

  rpc::Cluster& cluster_;
  ReplOptions opts_;
  net::SiteId origin_;
  blob::VersionManager* vm_{nullptr};
  std::map<net::SiteId, PerSite> sites_;
  std::unique_ptr<Reconciler> reconciler_;
  std::set<std::uint64_t> partitioned_;

  /// Reconciliation-lag bookkeeping: a heal involving the origin arms the
  /// remote site; the first coherent progress point records the lag.
  struct LagState {
    bool pending{false};
    SimTime healed_at{0};
  };
  std::map<net::SiteId, LagState> lag_;
  SimDuration last_lag_{0};
  std::uint64_t heals_{0};
  std::uint64_t chunks_routed_{0};
};

/// Convenience: plane over a deployment with env overrides applied; returns
/// nullptr when BS_REPL=off disables the plane.
std::unique_ptr<ReplicationPlane> enable_geo_replication(
    blob::Deployment& dep, ReplOptions opts = {});

}  // namespace bs::repl
