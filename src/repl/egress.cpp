#include "repl/egress.hpp"

#include <algorithm>

#include "blob/messages.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bs::repl {

SiteEgress::SiteEgress(rpc::Node& node, net::SiteId site,
                       EgressOptions options)
    : node_(node),
      site_(site),
      options_(options),
      journal_(options.journal),
      depth_gauge_name_("repl.custody.depth.s" + std::to_string(site)) {
  register_handlers();
  node_.add_crash_listener([this](const rpc::CrashOptions& c) {
    // Stale every drain loop; the partitioned flags stay (they describe the
    // link, not this node) but parked resume events die with the process.
    ++generation_;
    for (auto& [dst, st] : dsts_) {
      st.draining = false;
      st.resume.reset();
    }
    if (journal_.enabled()) {
      wipe_state();
      journal_.crash(c.lose_storage, c.torn_tail);
      recovering_ = true;
    } else if (c.lose_storage) {
      wipe_state();
    }
  });
  node_.add_restart_listener([this] {
    if (journal_.enabled()) {
      node_.cluster().sim().spawn(recover(node_.incarnation()));
    } else {
      for (auto& [dst, st] : dsts_) ensure_drain(dst);
    }
  });
}

void SiteEgress::wipe_state() {
  map_.clear();
  sizes_.clear();
  applied_chunks_.clear();
  for (auto& [dst, st] : dsts_) st.queue.clear();
  // next_bundle_id_ is deliberately kept: ids stay monotonic across the
  // outage so bundles enqueued while the node is down never collide with
  // replayed ones. Recovery still restores the high-water mark from the
  // journal (bundle_hwm checkpoint record + release-record ids).
  update_depth_gauge();
}

// ---------------------------------------------------------------- journaling

std::uint64_t SiteEgress::record_bytes(const EgressRecord& rec) {
  switch (rec.kind) {
    case EgressRecord::Kind::enqueue:
      // The WAL holds the bundle under custody, payload included — that is
      // what "custody survives a crash" costs.
      return 64 + (rec.bundle.kind == BundleKind::chunk
                       ? rec.bundle.payload.size
                       : rec.bundle.bytes);
    case EgressRecord::Kind::apply:
    case EgressRecord::Kind::apply_chunk:
      return 48;
    case EgressRecord::Kind::publish:
      return 48;
    default:
      // release / retire / drop_blob / frontier / bundle_hwm: key-sized
      return 40;
  }
}

void SiteEgress::apply_record(const EgressRecord& rec) {
  switch (rec.kind) {
    case EgressRecord::Kind::enqueue: {
      // Replaying the push re-runs the overflow policy with the same bound,
      // so drops and spills recur exactly as they did before the crash.
      next_bundle_id_ = std::max(next_bundle_id_, rec.bundle.id);
      dst_state(rec.dst).queue.push(rec.bundle);
      break;
    }
    case EgressRecord::Kind::release: {
      // Released ids also advance the high-water mark: a released bundle's
      // enqueue record may already be compacted out of the checkpoint, and
      // its id must never be re-issued.
      next_bundle_id_ = std::max(next_bundle_id_, rec.bundle_id);
      CustodyQueue& q = dst_state(rec.dst).queue;
      if (!q.empty() && q.front().id == rec.bundle_id) q.release_front();
      break;
    }
    case EgressRecord::Kind::apply:
      map_.note_applied(rec.blob, rec.version);
      break;
    case EgressRecord::Kind::apply_chunk:
      applied_chunks_.insert({rec.chunk, rec.target});
      break;
    case EgressRecord::Kind::frontier:
      map_.note_published(rec.blob, rec.version);
      break;
    case EgressRecord::Kind::bundle_hwm:
      next_bundle_id_ = std::max(next_bundle_id_, rec.bundle_id);
      break;
    case EgressRecord::Kind::publish:
      map_.note_applied(rec.blob, rec.version);
      sizes_[rec.blob.value][rec.version] = rec.bytes;
      break;
    case EgressRecord::Kind::retire:
      map_.retire(rec.blob, rec.version);
      if (auto it = sizes_.find(rec.blob.value); it != sizes_.end()) {
        it->second.erase(rec.version);
        if (it->second.empty()) sizes_.erase(it);
      }
      break;
    case EgressRecord::Kind::drop_blob:
      map_.drop_region(rec.blob);
      sizes_.erase(rec.blob.value);
      break;
  }
}

std::vector<blob::Journal<SiteEgress::EgressRecord>::Entry>
SiteEgress::encode_checkpoint() const {
  // The image re-creates the exact state apply_record() would rebuild:
  // the bundle-id high-water mark first, then origin bookkeeping
  // (frontier/publish/retire), then remote applies, then the chunk-dedup
  // set, then the parked bundles in queue order. All source containers
  // are ordered, so the image is deterministic.
  std::vector<blob::Journal<EgressRecord>::Entry> image;
  {
    // Without this, released bundles compacted out of the checkpoint would
    // let recovery restart ids below ids already seen on the wire.
    EgressRecord rec;
    rec.kind = EgressRecord::Kind::bundle_hwm;
    rec.bundle_id = next_bundle_id_;
    image.push_back({rec, record_bytes(rec)});
  }
  for (const auto& [blob, region] : map_.regions()) {
    if (region.latest_known != 0) {
      // latest_known can run ahead of the applied set (merge_latest from a
      // map exchange); image it so a recovered remote does not under-report
      // its known frontier until the next exchange.
      EgressRecord rec;
      rec.kind = EgressRecord::Kind::frontier;
      rec.blob = BlobId{blob};
      rec.version = region.latest_known;
      image.push_back({rec, record_bytes(rec)});
    }
    for (blob::Version v : region.applied) {
      EgressRecord rec;
      rec.blob = BlobId{blob};
      rec.version = v;
      auto sit = sizes_.find(blob);
      const std::uint64_t* size =
          sit != sizes_.end() && sit->second.count(v) > 0
              ? &sit->second.at(v)
              : nullptr;
      if (size != nullptr) {
        rec.kind = EgressRecord::Kind::publish;
        rec.bytes = *size;
      } else {
        rec.kind = EgressRecord::Kind::apply;
      }
      image.push_back({rec, record_bytes(rec)});
    }
    for (blob::Version v : region.retired) {
      EgressRecord rec;
      rec.kind = EgressRecord::Kind::retire;
      rec.blob = BlobId{blob};
      rec.version = v;
      image.push_back({rec, record_bytes(rec)});
    }
  }
  for (const auto& [key, target] : applied_chunks_) {
    EgressRecord rec;
    rec.kind = EgressRecord::Kind::apply_chunk;
    rec.chunk = key;
    rec.target = target;
    image.push_back({rec, record_bytes(rec)});
  }
  for (const auto& [dst, st] : dsts_) {
    for (const CustodyBundle& b : st.queue.bundles()) {
      EgressRecord rec;
      rec.kind = EgressRecord::Kind::enqueue;
      rec.dst = dst;
      rec.bundle = b;
      image.push_back({rec, record_bytes(rec)});
    }
  }
  return image;
}

void SiteEgress::maybe_checkpoint() {
  if (!journal_.checkpoint_due()) return;
  if (!journal_.install_checkpoint(encode_checkpoint())) return;
  obs::count("journal.checkpoints");
  blob::charge_checkpoint_write(node_, journal_.checkpoint_bytes());
}

void SiteEgress::journal_async(EgressRecord rec) {
  if (!journal_.enabled()) return;
  const std::uint64_t bytes = record_bytes(rec);
  const std::uint64_t seq = journal_.append(std::move(rec), bytes);
  node_.cluster().sim().spawn(
      journal_commit(seq, bytes, node_.incarnation()));
}

sim::Task<void> SiteEgress::journal_commit(std::uint64_t seq,
                                           std::uint64_t bytes,
                                           std::uint64_t incarnation) {
  // The co_await is hoisted out of the `if` condition deliberately: when the
  // first top-level statement of a coroutine is an `if` whose condition
  // contains a co_await, GCC 12 places the condition's frame slot *before*
  // _Coro_resume_fn, shifting the whole frame off the coroutine ABI layout —
  // the first handle resume then dispatches on garbage and traps (ud2).
  const bool durable =
      co_await blob::journal_fsync(node_, journal_.options().disk, bytes);
  if (!durable || node_.incarnation() != incarnation) co_return;
  journal_.seal(seq);
  maybe_checkpoint();
}

sim::Task<void> SiteEgress::recover(std::uint64_t incarnation) {
  auto& sim = node_.cluster().sim();
  const SimTime t0 = sim.now();
  const blob::ReplayPlan plan = journal_.replay_plan();
  obs::SpanId span = 0;
  if (auto* ts = obs::sink()) {
    span = ts->begin_span(
        "recovery.replay", "recovery", 0,
        {"node", static_cast<std::int64_t>(node_.id().value)},
        {"records", static_cast<std::int64_t>(plan.total_records())});
  }
  if (!co_await blob::journal_replay_cost(node_, journal_.options().disk,
                                          plan) ||
      node_.incarnation() != incarnation) {
    if (auto* ts = obs::sink()) ts->end_span(span, "aborted");
    co_return;
  }
  const auto outcome = journal_.finish_recovery();
  if (outcome.torn_bytes > 0) {
    ++rec_stats_.torn_tails_truncated;
    obs::count("recovery.torn_tails");
  }
  if (outcome.wiped) ++rec_stats_.cold_starts;
  journal_.replay([this](const EgressRecord& rec) { apply_record(rec); });
  recovering_ = false;
  ++rec_stats_.recoveries;
  rec_stats_.replay_bytes += plan.total_bytes();
  rec_stats_.replay_records += plan.total_records();
  rec_stats_.last_time_to_readable = sim.now() - t0;
  rec_stats_.total_time_to_readable += rec_stats_.last_time_to_readable;
  obs::count("recovery.replays");
  obs::count("recovery.replay_bytes", plan.total_bytes());
  obs::count("recovery.replay_records", plan.total_records());
  if (auto* ts = obs::sink()) ts->end_span(span, "ok");
  update_depth_gauge();
  if (outcome.wiped && reprime_) {
    // The custody store is gone; the plane re-primes the authoritative
    // state from the version manager and the dedup at the remotes absorbs
    // whatever gets re-sent.
    reprime_();
  }
  for (auto& [dst, st] : dsts_) ensure_drain(dst);
}

// ---------------------------------------------------------------- origin API

void SiteEgress::note_published(BlobId blob, blob::Version v,
                                std::uint64_t bytes) {
  map_.note_applied(blob, v);
  sizes_[blob.value][v] = bytes;
  EgressRecord rec;
  rec.kind = EgressRecord::Kind::publish;
  rec.blob = blob;
  rec.version = v;
  rec.bytes = bytes;
  journal_async(std::move(rec));
}

EnqueueOutcome SiteEgress::enqueue_publish(net::SiteId dst, BlobId blob,
                                           blob::Version v,
                                           std::uint64_t bytes,
                                           bool catch_up) {
  CustodyBundle b;
  b.id = ++next_bundle_id_;
  b.kind = BundleKind::publish;
  b.src_site = site_;
  b.dst_site = dst;
  b.blob = blob;
  b.version = v;
  b.bytes = bytes;
  b.enqueued_at = node_.cluster().sim().now();
  b.catch_up = catch_up;
  return enqueue(std::move(b));
}

EnqueueOutcome SiteEgress::enqueue_chunk(net::SiteId dst,
                                         const blob::ChunkKey& key,
                                         NodeId target,
                                         blob::Payload payload) {
  CustodyBundle b;
  b.id = ++next_bundle_id_;
  b.kind = BundleKind::chunk;
  b.src_site = site_;
  b.dst_site = dst;
  b.blob = key.blob;
  b.version = key.version;
  b.bytes = payload.size;
  b.chunk = key;
  b.target = target;
  b.payload = std::move(payload);
  b.enqueued_at = node_.cluster().sim().now();
  return enqueue(std::move(b));
}

EnqueueOutcome SiteEgress::enqueue(CustodyBundle b) {
  const net::SiteId dst = b.dst_site;
  EgressRecord rec;
  rec.kind = EgressRecord::Kind::enqueue;
  rec.dst = dst;
  rec.bundle = b;
  const EnqueueOutcome outcome = dst_state(dst).queue.push(std::move(b));
  // Journaled regardless of the outcome: the replay re-runs the same push
  // against the same bound, so the same drop/spill decision recurs.
  journal_async(std::move(rec));
  switch (outcome) {
    case EnqueueOutcome::ok:
      obs::count("repl.enqueued");
      break;
    case EnqueueOutcome::spilled:
      obs::count("repl.enqueued");
      obs::count("repl.spilled");
      blob::charge_checkpoint_write(node_, rec_bundle_bytes(rec.bundle));
      break;
    case EnqueueOutcome::dropped_new:
    case EnqueueOutcome::dropped_old:
      obs::count("repl.enqueued");
      obs::count("repl.dropped");
      break;
  }
  ensure_drain(dst);
  update_depth_gauge();
  return outcome;
}

void SiteEgress::retire_version(BlobId blob, blob::Version v) {
  map_.retire(blob, v);
  if (auto it = sizes_.find(blob.value); it != sizes_.end()) {
    it->second.erase(v);
    if (it->second.empty()) sizes_.erase(it);
  }
  EgressRecord rec;
  rec.kind = EgressRecord::Kind::retire;
  rec.blob = blob;
  rec.version = v;
  journal_async(std::move(rec));
}

void SiteEgress::drop_blob(BlobId blob) {
  map_.drop_region(blob);
  sizes_.erase(blob.value);
  EgressRecord rec;
  rec.kind = EgressRecord::Kind::drop_blob;
  rec.blob = blob;
  journal_async(std::move(rec));
}

// ------------------------------------------------------- fault notifications

void SiteEgress::set_link_state(net::SiteId peer, bool partitioned) {
  DstState& st = dst_state(peer);
  st.partitioned = partitioned;
  if (!partitioned && st.resume) {
    // Heal: wake the parked drain loop (wakeup goes through the event
    // queue, never inline).
    st.resume->set();
    st.resume.reset();
  }
  if (!partitioned) ensure_drain(peer);
}

// --------------------------------------------------------------- drain loops

SiteEgress::DstState& SiteEgress::dst_state(net::SiteId dst) {
  auto it = dsts_.find(dst);
  if (it == dsts_.end()) {
    it = dsts_
             .emplace(std::piecewise_construct, std::forward_as_tuple(dst),
                      std::forward_as_tuple(options_.queue_bound,
                                            options_.overflow))
             .first;
  }
  return it->second;
}

void SiteEgress::ensure_drain(net::SiteId dst) {
  DstState& st = dst_state(dst);
  if (st.draining || recovering_ || !node_.up()) return;
  if (st.queue.empty()) return;
  st.draining = true;
  node_.cluster().sim().spawn(drain_loop(dst, generation_));
}

sim::Task<void> SiteEgress::drain_loop(net::SiteId dst,
                                       std::uint64_t generation) {
  auto& cluster = node_.cluster();
  auto& sim = cluster.sim();
  auto live = [&] {
    return generation == generation_ && node_.up() && !recovering_;
  };
  while (live()) {
    DstState& st = dst_state(dst);
    if (st.queue.empty()) break;
    if (st.partitioned) {
      // Park instead of burning delivery timeouts against a link the fault
      // plane has declared down; the heal notification wakes us.
      if (!st.resume) st.resume = std::make_shared<sim::Event>(sim);
      auto resume = st.resume;
      co_await resume->wait();
      continue;
    }
    const NodeId peer = peer_resolver_ ? peer_resolver_(dst) : NodeId{};
    if (!peer.valid()) {
      co_await sim.delay(options_.retry_backoff);
      continue;
    }
    if (st.queue.front().spilled) {
      // Spilled custody is read back off the egress disk before it can go
      // back on the wire.
      const std::uint64_t spill_id = st.queue.front().id;
      const std::uint64_t bytes = rec_bundle_bytes(st.queue.front());
      std::vector<net::Resource*> rs{node_.disk()};
      co_await cluster.flows().transfer(static_cast<double>(bytes),
                                        std::move(rs));
      if (!live()) co_return;
      // drop_oldest can evict the front during the read-back; only the
      // bundle actually read off disk is marked memory-resident.
      if (st.queue.empty() || st.queue.front().id != spill_id) continue;
      st.queue.front().spilled = false;
    }
    ReplDeliverReq req;
    {
      CustodyBundle& b = st.queue.front();
      req.src_site = site_;
      req.bundle_id = b.id;
      req.kind = static_cast<std::uint8_t>(b.kind);
      req.blob = b.blob;
      req.version = b.version;
      req.bytes = b.bytes;
      req.chunk = b.chunk;
      req.target = b.target;
      req.payload = b.payload;
      req.queued_at = b.enqueued_at;
      req.catch_up = b.catch_up;
      if (++b.forwards > 1) {
        st.queue.note_reforward();
        obs::count("repl.reforwards");
      }
    }
    obs::Span span;
    if (auto* ts = obs::sink()) {
      span = ts->span("repl.deliver", "repl", 0,
                      {"dst", static_cast<std::int64_t>(dst)},
                      {"bundle", static_cast<std::int64_t>(req.bundle_id)});
    }
    rpc::CallOptions copts;
    copts.timeout = options_.custody_timeout;
    const std::uint64_t delivered_id = req.bundle_id;
    auto r = co_await cluster.call<ReplDeliverReq, ReplDeliverResp>(
        node_, peer, std::move(req), copts);
    if (!live()) co_return;
    if (r.ok()) {
      span.end("ok");
      if (r.value().duplicate) obs::count("repl.duplicates");
      // drop_oldest can evict the in-flight front while the RPC runs;
      // release only the bundle that was actually delivered (same guard
      // apply_record uses on replay).
      if (!st.queue.empty() && st.queue.front().id == delivered_id) {
        const CustodyBundle done = st.queue.release_front();
        obs::count("repl.delivered");
        obs::observe("repl.custody.hold_ms",
                     simtime::to_millis(sim.now() - done.enqueued_at), 0.0,
                     1.0e7, 200);
        EgressRecord rec;
        rec.kind = EgressRecord::Kind::release;
        rec.dst = dst;
        rec.bundle_id = done.id;
        journal_async(std::move(rec));
      }
      update_depth_gauge();
    } else {
      // Custody timeout (or peer down): custody is retained and the bundle
      // re-forwarded after a backoff. The receiver dedups re-deliveries.
      span.end(errc_name(r.error().code));
      obs::count("repl.attempt_failures");
      co_await sim.delay(options_.retry_backoff);
    }
  }
  if (generation == generation_) dst_state(dst).draining = false;
}

void SiteEgress::update_depth_gauge() {
  if (auto* m = obs::metrics()) {
    m->gauge(depth_gauge_name_)
        .set(static_cast<double>(queue_depth()), node_.cluster().sim().now());
  }
}

// ------------------------------------------------------------------ handlers

void SiteEgress::register_handlers() {
  node_.serve<ReplDeliverReq, ReplDeliverResp>(
      [this](const ReplDeliverReq& req, const rpc::Envelope&) {
        return handle_deliver(req);
      });
  node_.serve<ReplMapReq, ReplMapResp>(
      [this](const ReplMapReq& req, const rpc::Envelope&) {
        return handle_map(req);
      });
}

sim::Task<Result<ReplDeliverResp>> SiteEgress::handle_deliver(
    ReplDeliverReq req) {
  if (recovering_) co_return Error{Errc::unavailable, "egress recovering"};
  obs::Span span;
  if (auto* ts = obs::sink()) {
    span = ts->span("repl.apply", "repl", 0,
                    {"src", static_cast<std::int64_t>(req.src_site)},
                    {"bundle", static_cast<std::int64_t>(req.bundle_id)});
  }
  auto& sim = node_.cluster().sim();
  if (static_cast<BundleKind>(req.kind) == BundleKind::chunk) {
    // Dedup by replica identity, not sender bundle id: the ack then stays
    // truthful ("this replica exists durably here") even if the sender
    // restarts its id sequence after a crash or store wipe.
    const std::pair<blob::ChunkKey, NodeId> key{req.chunk, req.target};
    if (applied_chunks_.count(key) > 0) {
      span.end("duplicate");
      co_return ReplDeliverResp{true};
    }
    // Land the replica on the local provider before taking custody; a
    // failure leaves custody with the sender (it re-forwards later).
    blob::PutChunkReq put;
    put.key = req.chunk;
    put.payload = req.payload;
    auto stored = co_await node_.cluster().call<blob::PutChunkReq,
                                                blob::PutChunkResp>(
        node_, req.target, std::move(put));
    if (!stored.ok()) {
      span.end(errc_name(stored.error().code));
      co_return stored.error();
    }
    applied_chunks_.insert(key);
    EgressRecord rec;
    rec.kind = EgressRecord::Kind::apply_chunk;
    rec.chunk = req.chunk;
    rec.target = req.target;
    if (!co_await commit_now(std::move(rec))) {
      co_return Error{Errc::unavailable, "crashed before handoff"};
    }
  } else {
    // Dedup by version id: a re-forwarded publication is acked (the sender
    // releases custody) but applied exactly once.
    if (!map_.note_applied(req.blob, req.version)) {
      ++duplicates_;
      span.end("duplicate");
      co_return ReplDeliverResp{true};
    }
    EgressRecord rec;
    rec.kind = EgressRecord::Kind::apply;
    rec.blob = req.blob;
    rec.version = req.version;
    if (!co_await commit_now(std::move(rec))) {
      co_return Error{Errc::unavailable, "crashed before handoff"};
    }
  }
  ++applies_;
  obs::count("repl.applied");
  obs::observe("repl.staleness_ms", simtime::to_millis(sim.now() - req.queued_at),
               0.0, 1.0e7, 200);
  span.end("ok");
  if (progress_) progress_();
  co_return ReplDeliverResp{false};
}

sim::Task<bool> SiteEgress::commit_now(EgressRecord rec) {
  // Durable handoff: the apply record is journaled and fsynced *before*
  // the ack goes back — acked custody survives a crash of this node.
  if (!journal_.enabled()) co_return true;
  const std::uint64_t bytes = record_bytes(rec);
  const std::uint64_t seq = journal_.append(std::move(rec), bytes);
  if (!co_await blob::journal_fsync(node_, journal_.options().disk, bytes)) {
    co_return false;
  }
  journal_.seal(seq);
  maybe_checkpoint();
  co_return true;
}

sim::Task<Result<ReplMapResp>> SiteEgress::handle_map(ReplMapReq req) {
  if (recovering_) co_return Error{Errc::unavailable, "egress recovering"};
  obs::Span span;
  if (auto* ts = obs::sink()) {
    span = ts->span("repl.reconcile", "repl", 0,
                    {"from", static_cast<std::int64_t>(req.from_site)});
  }
  const VersionMap remote = VersionMap::decode_wire(req.map);
  ReplMapResp resp;
  // Whatever the remote is missing and nobody holds custody of any more is
  // re-synthesized from the origin's retained history as catch-up bundles,
  // scheduled through the ordinary custody queue (drained at link rate).
  for (const MissingRange& mr : remote.missing_from(map_)) {
    auto rit = map_.regions().find(mr.blob);
    if (rit == map_.regions().end()) continue;
    const CustodyQueue& q = dst_state(req.from_site).queue;
    for (auto vit = rit->second.applied.lower_bound(mr.from);
         vit != rit->second.applied.end() && *vit <= mr.to; ++vit) {
      if (q.holds_publish(BlobId{mr.blob}, *vit)) continue;
      const EnqueueOutcome out =
          enqueue_publish(req.from_site, BlobId{mr.blob}, *vit,
                          published_bytes(BlobId{mr.blob}, *vit),
                          /*catch_up=*/true);
      // dropped_new means the bundle never became resident — nothing was
      // actually scheduled towards the caller.
      if (out != EnqueueOutcome::dropped_new) ++resp.catch_up_enqueued;
    }
  }
  resp.map = map_.encode_wire();
  if (resp.catch_up_enqueued > 0) {
    obs::count("repl.reconcile.catchup_bundles", resp.catch_up_enqueued);
  }
  span.end("ok");
  co_return resp;
}

// ---------------------------------------------------------------- reconciler

sim::Task<std::optional<std::uint64_t>> SiteEgress::reconcile_with(
    NodeId origin_node) {
  if (recovering_ || !node_.up()) co_return std::nullopt;
  ReplMapReq req;
  req.from_site = site_;
  req.map = map_.encode_wire();
  rpc::CallOptions copts;
  copts.timeout = options_.custody_timeout;
  auto r = co_await node_.cluster().call<ReplMapReq, ReplMapResp>(
      node_, origin_node, std::move(req), copts);
  if (!r.ok()) co_return std::nullopt;
  // Fold the origin's frontier in and journal each advance, so the learned
  // latest_known survives a crash instead of waiting on the next exchange.
  const VersionMap origin_map = VersionMap::decode_wire(r.value().map);
  for (const auto& [blob, region] : origin_map.regions()) {
    if (region.latest_known <= map_.latest_known(BlobId{blob})) continue;
    map_.note_published(BlobId{blob}, region.latest_known);
    EgressRecord rec;
    rec.kind = EgressRecord::Kind::frontier;
    rec.blob = BlobId{blob};
    rec.version = region.latest_known;
    journal_async(std::move(rec));
  }
  if (progress_) progress_();
  co_return r.value().catch_up_enqueued;
}

// ---------------------------------------------------------------- inspection

std::size_t SiteEgress::queue_depth() const {
  std::size_t n = 0;
  for (const auto& [dst, st] : dsts_) n += st.queue.size();
  return n;
}

std::size_t SiteEgress::queue_depth(net::SiteId dst) const {
  auto it = dsts_.find(dst);
  return it == dsts_.end() ? 0 : it->second.queue.size();
}

std::uint64_t SiteEgress::queued_bytes() const {
  std::uint64_t n = 0;
  for (const auto& [dst, st] : dsts_) n += st.queue.queued_bytes();
  return n;
}

const CustodyQueueStats* SiteEgress::queue_stats(net::SiteId dst) const {
  auto it = dsts_.find(dst);
  return it == dsts_.end() ? nullptr : &it->second.queue.stats();
}

CustodyQueueStats SiteEgress::total_stats() const {
  CustodyQueueStats total;
  for (const auto& [dst, st] : dsts_) {
    const CustodyQueueStats& s = st.queue.stats();
    total.enqueued += s.enqueued;
    total.released += s.released;
    total.dropped += s.dropped;
    total.spilled += s.spilled;
    total.reforwards += s.reforwards;
    total.peak_depth = std::max(total.peak_depth, s.peak_depth);
  }
  return total;
}

std::uint64_t SiteEgress::published_bytes(BlobId blob,
                                          blob::Version v) const {
  auto it = sizes_.find(blob.value);
  if (it == sizes_.end()) return 0;
  auto vit = it->second.find(v);
  return vit == it->second.end() ? 0 : vit->second;
}

std::uint64_t SiteEgress::digest() const {
  // Same mix recipe as the version map digest.
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(site_);
  mix(map_.digest());
  mix(dsts_.size());
  for (const auto& [dst, st] : dsts_) {
    mix(dst);
    mix(st.queue.size());
    for (const CustodyBundle& b : st.queue.bundles()) {
      mix(b.id);
      mix(static_cast<std::uint64_t>(b.kind));
      mix(b.blob.value);
      mix(b.version);
      mix(b.bytes);
    }
  }
  mix(applied_chunks_.size());
  for (const auto& [key, target] : applied_chunks_) {
    mix(key.blob.value);
    mix(key.version);
    mix(key.index);
    mix(target.value);
  }
  return h;
}

}  // namespace bs::repl
