// Wire messages of the geo-replication plane. Two verbs:
//   repl.deliver      — one custody bundle, egress → remote egress; the
//                       remote journals + fsyncs the apply before replying,
//                       so a reply IS the durable custody handoff.
//   repl.map_exchange — version-map exchange, remote egress → origin; the
//                       origin computes missing ranges, queues catch-up
//                       bundles, and replies with its own (authoritative)
//                       map so the remote learns the true frontier.
#pragma once

#include <cstdint>
#include <vector>

#include "blob/blob_types.hpp"
#include "common/types.hpp"
#include "net/topology.hpp"
#include "repl/version_map.hpp"

namespace bs::repl {

struct ReplDeliverReq {
  static constexpr const char* kName = "repl.deliver";
  /// Mirrored bytes land on the remote egress disk (durable handoff).
  static constexpr bool kPayloadToDisk = true;

  net::SiteId src_site{0};
  std::uint64_t bundle_id{0};
  std::uint8_t kind{0};  ///< BundleKind
  BlobId blob{};
  blob::Version version{0};
  std::uint64_t bytes{0};  ///< modelled payload size (publish bundles)
  blob::ChunkKey chunk{};
  NodeId target{};
  blob::Payload payload{};
  SimTime queued_at{0};  ///< when custody was taken (staleness metric)
  bool catch_up{false};

  [[nodiscard]] std::uint64_t wire_size() const {
    return 96 + (payload.size > 0 ? payload.size : bytes);
  }
};

struct ReplDeliverResp {
  bool duplicate{false};

  [[nodiscard]] std::uint64_t wire_size() const { return 24; }
};

struct ReplMapReq {
  static constexpr const char* kName = "repl.map_exchange";

  net::SiteId from_site{0};
  std::vector<VersionMap::WireRegion> map;

  [[nodiscard]] std::uint64_t wire_size() const {
    std::uint64_t total = 32;
    for (const VersionMap::WireRegion& r : map) total += r.wire_size();
    return total;
  }
};

struct ReplMapResp {
  std::vector<VersionMap::WireRegion> map;  ///< the origin's map
  std::uint64_t catch_up_enqueued{0};  ///< bundles queued toward the caller

  [[nodiscard]] std::uint64_t wire_size() const {
    std::uint64_t total = 32;
    for (const VersionMap::WireRegion& r : map) total += r.wire_size();
    return total;
  }
};

}  // namespace bs::repl
