#include "viz/chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace bs::viz {

std::string format_si(double value) {
  char buf[32];
  const double a = std::fabs(value);
  if (a >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fG", value / 1e9);
  } else if (a >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", value / 1e6);
  } else if (a >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fk", value / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", value);
  }
  return buf;
}

namespace {
std::vector<double> resample_to(const std::vector<double>& in,
                                std::size_t width) {
  std::vector<double> out(width, 0.0);
  if (in.empty()) return out;
  for (std::size_t i = 0; i < width; ++i) {
    const std::size_t lo = i * in.size() / width;
    std::size_t hi = (i + 1) * in.size() / width;
    hi = std::max(hi, lo + 1);
    double sum = 0;
    for (std::size_t j = lo; j < hi && j < in.size(); ++j) sum += in[j];
    out[i] = sum / static_cast<double>(hi - lo);
  }
  return out;
}
}  // namespace

std::string line_chart(const std::string& title,
                       const std::vector<std::string>& names,
                       const std::vector<std::vector<double>>& series,
                       ChartOptions options) {
  std::string out = "== " + title + " ==\n";
  if (series.empty()) return out + "(no data)\n";

  double lo = 0, hi = 1e-9;
  std::vector<std::vector<double>> plots;
  for (const auto& s : series) {
    plots.push_back(resample_to(s, options.width));
    for (double v : plots.back()) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  const double span = hi - lo > 0 ? hi - lo : 1.0;
  static const char* kGlyphs = "*o+x#%@&";

  std::vector<std::string> grid(
      options.height, std::string(options.width, ' '));
  for (std::size_t s = 0; s < plots.size(); ++s) {
    const char glyph = kGlyphs[s % 8];
    for (std::size_t x = 0; x < options.width; ++x) {
      const double norm = (plots[s][x] - lo) / span;
      auto y = static_cast<std::size_t>(
          norm * static_cast<double>(options.height - 1) + 0.5);
      y = std::min(y, options.height - 1);
      grid[options.height - 1 - y][x] = glyph;
    }
  }

  char label[32];
  for (std::size_t r = 0; r < options.height; ++r) {
    const double y_val =
        hi - (static_cast<double>(r) / (options.height - 1)) * span;
    std::snprintf(label, sizeof(label), "%10s |",
                  format_si(y_val).c_str());
    out += label;
    out += grid[r];
    out += '\n';
  }
  out += std::string(11, ' ') + '+' + std::string(options.width, '-') + '\n';
  if (!names.empty()) {
    out += "  legend: ";
    for (std::size_t s = 0; s < names.size(); ++s) {
      out += kGlyphs[s % 8];
      out += "=" + names[s];
      if (s + 1 < names.size()) out += "  ";
    }
    out += '\n';
  }
  if (!options.y_label.empty()) out += "  y: " + options.y_label + '\n';
  return out;
}

std::string series_chart(const std::string& title, const TimeSeries& ts,
                         SimTime from, SimTime to, ChartOptions options) {
  const SimDuration step =
      std::max<SimDuration>((to - from) / static_cast<SimTime>(options.width),
                            1);
  return line_chart(title, {}, {ts.resample(from, to, step)}, options);
}

std::string bar_chart(const std::string& title,
                      const std::vector<std::string>& labels,
                      const std::vector<double>& values, std::size_t width) {
  std::string out = "== " + title + " ==\n";
  double hi = 1e-9;
  for (double v : values) hi = std::max(hi, v);
  std::size_t label_width = 0;
  for (const auto& l : labels) label_width = std::max(label_width, l.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::string label = i < labels.size() ? labels[i] : "";
    const auto bar = static_cast<std::size_t>(
        values[i] / hi * static_cast<double>(width) + 0.5);
    char line[256];
    std::snprintf(line, sizeof(line), "%-*s |%-*s %s\n",
                  static_cast<int>(label_width), label.c_str(),
                  static_cast<int>(width),
                  std::string(bar, '#').c_str(),
                  format_si(values[i]).c_str());
    out += line;
  }
  return out;
}

std::string sparkline(const std::vector<double>& values) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  if (values.empty()) return "";
  double lo = values[0], hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = hi - lo > 0 ? hi - lo : 1.0;
  std::string out;
  for (double v : values) {
    const auto idx = static_cast<std::size_t>((v - lo) / span * 7.0 + 0.5);
    out += kLevels[std::min<std::size_t>(idx, 7)];
  }
  return out;
}

std::string table(const std::vector<std::string>& headers,
                  const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c) {
    widths[c] = headers[c].size();
  }
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string out = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      out += ' ' + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return out + '\n';
  };
  std::string sep = "+";
  for (std::size_t w : widths) sep += std::string(w + 2, '-') + '+';
  sep += '\n';

  std::string out = sep + render_row(headers) + sep;
  for (const auto& row : rows) out += render_row(row);
  out += sep;
  return out;
}

std::string to_csv(const std::vector<std::string>& headers,
                   const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (std::size_t c = 0; c < headers.size(); ++c) {
    out += headers[c];
    out += c + 1 < headers.size() ? ',' : '\n';
  }
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out += c + 1 < row.size() ? ',' : '\n';
    }
  }
  return out;
}

}  // namespace bs::viz
