// Renders the observability plane's metrics registry and sampled series
// with the §IV-A chart primitives, so the process-wide counters/gauges/
// histograms feed the same dashboard as the introspection layer.
#pragma once

#include <string>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "viz/chart.hpp"

namespace bs::viz {

/// Fixed-width table of every registered metric (insertion order):
/// counters show their value, gauges their last sample and sim-time-weighted
/// average, histograms count/mean/p99.
std::string metrics_table(const obs::MetricsRegistry& registry, SimTime now);

/// Line chart of one sampled series from a SampleLog over [from, to);
/// empty string when the series does not exist.
std::string sample_chart(const obs::SampleLog& log, const std::string& name,
                         SimTime from, SimTime to,
                         ChartOptions options = ChartOptions());

}  // namespace bs::viz
