// The visualization tool of §IV-A: renders "synthetic images of the most
// relevant events in BlobSeer" — the evolution of physical parameters (CPU
// load, memory), per-provider and system-level storage space, BLOB access
// patterns, and the distribution of BLOBs across providers — from the data
// the introspection layer yields.
#pragma once

#include <string>

#include "intro/introspection.hpp"
#include "mon/layer.hpp"
#include "viz/chart.hpp"

namespace bs::viz {

class Dashboard {
 public:
  explicit Dashboard(const intro::IntrospectionService& introspection)
      : intro_(introspection) {}

  /// Storage space per provider and at the system level over [from, to).
  [[nodiscard]] std::string storage_evolution(SimTime from, SimTime to) const;

  /// Physical parameters (CPU / memory) of the monitored nodes.
  [[nodiscard]] std::string physical_parameters(SimTime from,
                                                SimTime to) const;

  /// BLOB access patterns (read/write bytes per blob).
  [[nodiscard]] std::string blob_access_patterns(SimTime from,
                                                 SimTime to) const;

  /// Distribution of chunks across providers (bar chart).
  [[nodiscard]] std::string chunk_distribution() const;

  /// Per-client activity summary (feeds the security demo).
  [[nodiscard]] std::string client_activity(SimTime from, SimTime to) const;

  /// Current snapshot as a table.
  [[nodiscard]] std::string system_summary() const;

  /// The whole dashboard.
  [[nodiscard]] std::string render(SimTime from, SimTime to) const;

 private:
  const intro::IntrospectionService& intro_;
};

}  // namespace bs::viz
