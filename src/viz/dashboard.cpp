#include "viz/dashboard.hpp"

#include <algorithm>

namespace bs::viz {

namespace {
std::vector<double> resampled(const TimeSeries* ts, SimTime from, SimTime to,
                              std::size_t points = 72) {
  if (ts == nullptr || ts->empty()) return std::vector<double>(points, 0.0);
  const SimDuration step =
      std::max<SimDuration>((to - from) / static_cast<SimTime>(points), 1);
  return ts->resample(from, to, step);
}
}  // namespace

std::string Dashboard::storage_evolution(SimTime from, SimTime to) const {
  std::vector<std::string> names;
  std::vector<std::vector<double>> series;
  if (const TimeSeries* total = intro_.series(
          {mon::Domain::system, 0, mon::Metric::total_used_bytes})) {
    names.push_back("system");
    series.push_back(resampled(total, from, to));
  }
  std::size_t shown = 0;
  for (const auto& key : intro_.keys()) {
    if (key.domain != mon::Domain::provider ||
        key.metric != mon::Metric::used_bytes) {
      continue;
    }
    if (shown++ >= 6) break;  // keep the chart legible
    names.push_back("p" + std::to_string(key.id));
    series.push_back(resampled(intro_.series(key), from, to));
  }
  ChartOptions opts;
  opts.y_label = "bytes used";
  return line_chart("storage space (providers + system)", names, series,
                    opts);
}

std::string Dashboard::physical_parameters(SimTime from, SimTime to) const {
  std::vector<std::string> names;
  std::vector<std::vector<double>> series;
  std::size_t shown = 0;
  for (const auto& key : intro_.keys()) {
    if (key.domain != mon::Domain::node ||
        key.metric != mon::Metric::cpu_load) {
      continue;
    }
    if (shown++ >= 6) break;
    names.push_back("cpu.n" + std::to_string(key.id));
    series.push_back(resampled(intro_.series(key), from, to));
  }
  ChartOptions opts;
  opts.y_label = "cpu load [0,1]";
  return line_chart("physical parameters (CPU load)", names, series, opts);
}

std::string Dashboard::blob_access_patterns(SimTime from, SimTime to) const {
  std::vector<std::string> labels;
  std::vector<double> reads, writes;
  for (const auto& key : intro_.keys()) {
    if (key.domain != mon::Domain::blob) continue;
    if (key.metric == mon::Metric::blob_read_bytes) {
      double sum = 0;
      if (const TimeSeries* ts = intro_.series(key)) {
        for (const auto& s : ts->range(from, to)) sum += s.value;
      }
      labels.push_back("blob" + std::to_string(key.id));
      reads.push_back(sum);
      const TimeSeries* w = intro_.series(
          {mon::Domain::blob, key.id, mon::Metric::blob_write_bytes});
      double wsum = 0;
      if (w != nullptr) {
        for (const auto& s : w->range(from, to)) wsum += s.value;
      }
      writes.push_back(wsum);
    }
  }
  std::string out = bar_chart("BLOB read bytes", labels, reads);
  out += bar_chart("BLOB write bytes", labels, writes);
  return out;
}

std::string Dashboard::chunk_distribution() const {
  std::vector<std::string> labels;
  std::vector<double> chunks;
  for (const auto& key : intro_.keys()) {
    if (key.domain == mon::Domain::provider &&
        key.metric == mon::Metric::chunk_count) {
      if (const TimeSeries* ts = intro_.series(key); ts && !ts->empty()) {
        labels.push_back("p" + std::to_string(key.id));
        chunks.push_back(ts->back().value);
      }
    }
  }
  return bar_chart("chunk distribution across providers", labels, chunks);
}

std::string Dashboard::client_activity(SimTime from, SimTime to) const {
  const auto& activity = intro_.activity();
  std::vector<std::vector<std::string>> rows;
  for (ClientId c : activity.active_clients(to - from, to)) {
    const double w =
        activity.total(c, mon::Metric::write_bytes, to - from, to);
    const double r =
        activity.total(c, mon::Metric::read_bytes, to - from, to);
    const double rej =
        activity.total(c, mon::Metric::rejected_ops, to - from, to);
    std::string spark;
    if (const TimeSeries* ts = activity.series(c, mon::Metric::write_ops)) {
      spark = sparkline(resampled(ts, from, to, 24));
    }
    rows.push_back({std::to_string(c.value), format_si(w), format_si(r),
                    format_si(rej), spark});
  }
  return "== client activity ==\n" +
         table({"client", "write B", "read B", "rejected", "write ops"},
               rows);
}

std::string Dashboard::system_summary() const {
  const auto snap = intro_.snapshot();
  std::vector<std::vector<std::string>> rows = {
      {"time", simtime::to_string(snap.time)},
      {"providers", std::to_string(snap.providers.size())},
      {"storage used", units::format_bytes(
                           static_cast<std::uint64_t>(snap.total_used))},
      {"storage capacity",
       units::format_bytes(static_cast<std::uint64_t>(snap.total_capacity))},
      {"utilization", format_si(snap.utilization() * 100) + "%"},
      {"agg write rate", units::format_rate(snap.aggregate_write_rate)},
      {"agg read rate", units::format_rate(snap.aggregate_read_rate)},
      {"avg cpu", format_si(snap.avg_cpu)},
      {"active clients", std::to_string(snap.active_clients)},
      {"rejected/s", format_si(snap.rejected_rate)},
  };
  return "== system summary ==\n" + table({"metric", "value"}, rows);
}

std::string Dashboard::render(SimTime from, SimTime to) const {
  std::string out;
  out += system_summary();
  out += '\n';
  out += storage_evolution(from, to);
  out += '\n';
  out += physical_parameters(from, to);
  out += '\n';
  out += blob_access_patterns(from, to);
  out += '\n';
  out += chunk_distribution();
  out += '\n';
  out += client_activity(from, to);
  return out;
}

}  // namespace bs::viz
