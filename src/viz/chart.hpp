// Text-mode chart primitives for the visualization tool (§IV-A): line
// charts, bar charts, tables, sparklines and CSV export.
#pragma once

#include <string>
#include <vector>

#include "common/timeseries.hpp"

namespace bs::viz {

struct ChartOptions {
  std::size_t width{72};   ///< plot columns
  std::size_t height{12};  ///< plot rows
  std::string y_label;
};

/// Multi-series ASCII line chart; series are resampled to `width` buckets.
std::string line_chart(const std::string& title,
                       const std::vector<std::string>& names,
                       const std::vector<std::vector<double>>& series,
                       ChartOptions options = ChartOptions());

/// Renders a TimeSeries over [from, to) as a line chart.
std::string series_chart(const std::string& title, const TimeSeries& ts,
                         SimTime from, SimTime to,
                         ChartOptions options = ChartOptions());

/// Horizontal bar chart.
std::string bar_chart(const std::string& title,
                      const std::vector<std::string>& labels,
                      const std::vector<double>& values,
                      std::size_t width = 48);

/// One-line sparkline using block glyphs.
std::string sparkline(const std::vector<double>& values);

/// Fixed-width text table.
std::string table(const std::vector<std::string>& headers,
                  const std::vector<std::vector<std::string>>& rows);

/// CSV export (RFC-ish; commas in cells are not escaped — keep cells clean).
std::string to_csv(const std::vector<std::string>& headers,
                   const std::vector<std::vector<std::string>>& rows);

/// Number formatting helpers for chart labels.
std::string format_si(double value);

}  // namespace bs::viz
