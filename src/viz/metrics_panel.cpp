#include "viz/metrics_panel.hpp"

#include <cstdio>

namespace bs::viz {

namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string metrics_table(const obs::MetricsRegistry& registry, SimTime now) {
  std::vector<std::vector<std::string>> rows;
  registry.for_each([&](const obs::MetricsRegistry::Entry& e) {
    switch (e.kind) {
      case obs::MetricsRegistry::Kind::counter:
        rows.push_back({e.name, "counter",
                        std::to_string(e.counter.value()), "", ""});
        break;
      case obs::MetricsRegistry::Kind::gauge:
        rows.push_back({e.name, "gauge", num(e.gauge.value()),
                        num(e.gauge.average(now)),
                        std::to_string(e.gauge.samples())});
        break;
      case obs::MetricsRegistry::Kind::histogram:
        rows.push_back({e.name, "histogram",
                        std::to_string(e.hist->count()),
                        num(e.hist->mean()), num(e.hist->quantile(0.99))});
        break;
    }
  });
  return table({"metric", "kind", "value", "avg/mean", "n/p99"}, rows);
}

std::string sample_chart(const obs::SampleLog& log, const std::string& name,
                         SimTime from, SimTime to, ChartOptions options) {
  const TimeSeries* ts = log.find(name);
  if (ts == nullptr) return {};
  return series_chart(name, *ts, from, to, options);
}

}  // namespace bs::viz
