// Deterministic fault-injection plane. Sits above the RPC cluster and turns
// a seeded schedule of fault events into actuator calls: node crash/restart
// (fail-stop, optionally wiping stateful stores), site-pair partitions and
// link degradation (probabilistic drops + latency spikes, enforced by the
// cluster's link-fault hook), and disk slowdowns (capacity scaling through
// the flow scheduler). Every random decision — schedule generation and
// per-message drop rolls — is drawn from seeded RNGs, so a schedule replayed
// on the same workload is bit-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "rpc/rpc.hpp"

namespace bs::fault {

/// One scheduled fault action. Which fields matter depends on `kind`:
/// crash/restart/slow_disk/restore_disk use `node`; the link kinds use the
/// unordered site pair `{a, b}`.
struct FaultEvent {
  enum class Kind : std::uint8_t {
    crash,         ///< fail-stop; `lose_storage` wipes stateful stores
    restart,       ///< bring a crashed node back up
    partition,     ///< drop every message between sites a and b
    heal,          ///< clear all link rules between a and b
    degrade,       ///< probabilistic drops + extra latency between a and b
    restore_link,  ///< same as heal (named for degrade symmetry)
    slow_disk,     ///< scale a node's disk bandwidth by `disk_factor`
    restore_disk,  ///< restore the node's spec disk bandwidth
    power_loss,    ///< crash every up node at site `a` with a torn tail
    power_restore  ///< restart every down node at site `a`
  };

  SimTime at{0};
  Kind kind{Kind::crash};
  NodeId node{};
  bool lose_storage{false};
  /// Power-loss flavour: the journaled store's last un-synced record is
  /// left half-written (scanned + truncated at recovery).
  bool torn_tail{false};
  net::SiteId a{0};
  net::SiteId b{0};
  double drop_prob{0.0};
  SimDuration extra_latency{0};
  double disk_factor{1.0};

  [[nodiscard]] const char* kind_name() const;
};

/// Bounds for `random_schedule`. The generator keeps schedules *safe* for
/// the chaos harness's readability invariant: every crash is paired with a
/// restart, at most `max_wipe_crashes` crashes lose storage (keep it below
/// the replication factor), and every link/disk fault is healed before
/// `quiesce_fraction` of the horizon so the tail of the run is fault-free.
struct ScheduleOptions {
  SimTime start{0};
  SimTime horizon{simtime::minutes(10)};
  double quiesce_fraction{0.7};

  std::vector<NodeId> crashable;  ///< typically the data-provider nodes
  std::size_t crashes{2};
  std::size_t max_wipe_crashes{0};
  SimDuration min_downtime{simtime::seconds(5)};
  SimDuration max_downtime{simtime::seconds(40)};

  std::size_t site_count{0};  ///< link faults need >= 2 sites
  std::size_t partitions{1};
  std::size_t degrades{1};
  double max_drop_prob{0.3};
  SimDuration max_extra_latency{simtime::millis(200)};
  SimDuration min_link_fault{simtime::seconds(5)};
  SimDuration max_link_fault{simtime::seconds(30)};

  std::size_t disk_slowdowns{1};
  double min_disk_factor{0.1};

  /// Correlated site-wide power losses (every node at the site crashes with
  /// a torn journal tail, then power returns). Off by default — and every
  /// new knob below only draws from the RNG when enabled, so existing
  /// seeded schedules stay bit-identical.
  std::size_t power_losses{0};
  std::vector<net::SiteId> power_loss_sites;  ///< candidate sites
  SimDuration min_outage{simtime::seconds(5)};
  SimDuration max_outage{simtime::seconds(30)};
  /// Probability that a scheduled crash leaves a torn journal tail.
  double torn_tail_prob{0.0};
  /// Journaled stores need time to replay after the last restart; shrink
  /// the active fault window by this worst-case replay bound so the
  /// quiescent tail really is quiescent (readability checks pass).
  SimDuration worst_case_recovery{0};

  /// Long partition/heal pairs for disruption-tolerance chaos: outages an
  /// order of magnitude beyond `max_link_fault`, long enough for custody
  /// queues to fill and reconciliation to matter. Off by default, and the
  /// generator only draws from the RNG when enabled, so existing seeded
  /// schedules stay bit-identical.
  std::size_t long_partitions{0};
  SimDuration min_long_partition{simtime::seconds(30)};
  SimDuration max_long_partition{simtime::minutes(5)};
  /// When set, one endpoint of every long partition is
  /// `long_partition_anchor` (geo suites anchor the origin site so every
  /// outage cuts a replication path).
  bool anchor_long_partitions{false};
  net::SiteId long_partition_anchor{0};
};

/// Generates a bounded random fault schedule, sorted by time. Deterministic
/// per seed; independent of any simulation state.
[[nodiscard]] std::vector<FaultEvent> random_schedule(
    std::uint64_t seed, const ScheduleOptions& opts);

class FaultPlane {
 public:
  /// Installs itself as the cluster's link-fault hook. `seed` drives the
  /// per-message drop rolls (schedule generation has its own seed).
  FaultPlane(rpc::Cluster& cluster, std::uint64_t seed = 0xFA17ull);
  ~FaultPlane();
  FaultPlane(const FaultPlane&) = delete;
  FaultPlane& operator=(const FaultPlane&) = delete;

  // -- immediate actuators ------------------------------------------------
  void crash(NodeId node, bool lose_storage = false, bool torn_tail = false);
  void restart(NodeId node);
  /// Correlated failure: crashes every up node at `site` (torn journal
  /// tails — power loss mid-write), in node-id order.
  void power_loss(net::SiteId site);
  /// Restarts every down node at `site`, in node-id order.
  void power_restore(net::SiteId site);
  void partition(net::SiteId a, net::SiteId b);
  void heal(net::SiteId a, net::SiteId b);
  void degrade(net::SiteId a, net::SiteId b, double drop_prob,
               SimDuration extra_latency);
  void slow_disk(NodeId node, double factor);
  void restore_disk(NodeId node);
  /// Heals every link and restores every slowed disk.
  void clear();

  // -- scheduling ---------------------------------------------------------
  /// Applies `ev` at `ev.at` (immediately when that time has passed).
  void schedule(const FaultEvent& ev);
  void schedule_all(const std::vector<FaultEvent>& schedule);

  // -- notifications ------------------------------------------------------
  /// Partition-transition listener (geo-replication plane): fired with
  /// `true` when a site pair becomes partitioned and `false` when the
  /// partition lifts (heal/restore_link/clear, or a degrade overwriting a
  /// partition rule). Degrades themselves never fire it — a lossy link is
  /// still a link.
  using LinkListener =
      std::function<void(net::SiteId, net::SiteId, bool partitioned)>;
  void set_link_listener(LinkListener fn) { link_listener_ = std::move(fn); }

  // -- introspection ------------------------------------------------------
  [[nodiscard]] std::uint64_t faults_applied() const {
    return faults_applied_;
  }
  [[nodiscard]] bool link_faulted(net::SiteId a, net::SiteId b) const {
    return links_.count(pair_key(a, b)) > 0;
  }
  [[nodiscard]] std::size_t slowed_disks() const { return slowed_.size(); }

 private:
  struct LinkRule {
    bool partitioned{false};
    double drop_prob{0.0};
    SimDuration extra_latency{0};
  };

  [[nodiscard]] static std::uint64_t pair_key(net::SiteId a, net::SiteId b) {
    const std::uint64_t lo = a < b ? a : b;
    const std::uint64_t hi = a < b ? b : a;
    return (hi << 32) | lo;
  }

  void apply_now(const FaultEvent& ev);
  [[nodiscard]] rpc::Cluster::LinkFault eval(net::SiteId from, net::SiteId to);
  /// Updates a pair's rule and fires the link listener on partition-state
  /// transitions (erase = no rule).
  void set_link_rule(net::SiteId a, net::SiteId b, const LinkRule* rule);

  rpc::Cluster& cluster_;
  Rng drop_rng_;
  std::unordered_map<std::uint64_t, LinkRule> links_;
  std::unordered_map<std::uint64_t, double> slowed_;  ///< NodeId -> factor
  std::uint64_t faults_applied_{0};
  LinkListener link_listener_;
};

}  // namespace bs::fault
