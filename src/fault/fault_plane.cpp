#include "fault/fault_plane.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bs::fault {

const char* FaultEvent::kind_name() const {
  switch (kind) {
    case Kind::crash: return "crash";
    case Kind::restart: return "restart";
    case Kind::partition: return "partition";
    case Kind::heal: return "heal";
    case Kind::degrade: return "degrade";
    case Kind::restore_link: return "restore_link";
    case Kind::slow_disk: return "slow_disk";
    case Kind::restore_disk: return "restore_disk";
    case Kind::power_loss: return "power_loss";
    case Kind::power_restore: return "power_restore";
  }
  return "?";
}

FaultPlane::FaultPlane(rpc::Cluster& cluster, std::uint64_t seed)
    : cluster_(cluster), drop_rng_(seed) {
  cluster_.set_link_fault_fn(
      [this](net::SiteId from, net::SiteId to) { return eval(from, to); });
}

FaultPlane::~FaultPlane() { cluster_.set_link_fault_fn({}); }

rpc::Cluster::LinkFault FaultPlane::eval(net::SiteId from, net::SiteId to) {
  rpc::Cluster::LinkFault f;
  auto it = links_.find(pair_key(from, to));
  if (it == links_.end()) return f;
  const LinkRule& r = it->second;
  if (r.partitioned) {
    f.drop = true;
    return f;
  }
  if (r.drop_prob > 0 && drop_rng_.chance(r.drop_prob)) f.drop = true;
  f.extra_latency = r.extra_latency;
  return f;
}

void FaultPlane::crash(NodeId node, bool lose_storage, bool torn_tail) {
  if (rpc::Node* n = cluster_.node(node)) {
    ++faults_applied_;
    BS_INFO("fault", "crash node %llu%s%s",
            static_cast<unsigned long long>(node.value),
            lose_storage ? " (storage lost)" : "",
            torn_tail ? " (torn tail)" : "");
    n->crash(rpc::CrashOptions{.lose_storage = lose_storage,
                               .torn_tail = torn_tail});
  }
}

void FaultPlane::restart(NodeId node) {
  if (rpc::Node* n = cluster_.node(node)) {
    ++faults_applied_;
    BS_INFO("fault", "restart node %llu",
            static_cast<unsigned long long>(node.value));
    n->restart();
  }
}

void FaultPlane::power_loss(net::SiteId site) {
  BS_WARN("fault", "power loss at site %zu", site);
  // Node ids are dense; walking them in order keeps the crash sequence (and
  // hence every crash listener's side effects) deterministic.
  for (std::uint64_t i = 0; i < cluster_.node_count(); ++i) {
    rpc::Node* n = cluster_.node(NodeId{i});
    if (n != nullptr && n->up() && n->site() == site) {
      crash(NodeId{i}, /*lose_storage=*/false, /*torn_tail=*/true);
    }
  }
}

void FaultPlane::power_restore(net::SiteId site) {
  BS_INFO("fault", "power restored at site %zu", site);
  for (std::uint64_t i = 0; i < cluster_.node_count(); ++i) {
    rpc::Node* n = cluster_.node(NodeId{i});
    if (n != nullptr && !n->up() && n->site() == site) {
      restart(NodeId{i});
    }
  }
}

void FaultPlane::set_link_rule(net::SiteId a, net::SiteId b,
                               const LinkRule* rule) {
  const std::uint64_t key = pair_key(a, b);
  auto it = links_.find(key);
  const bool was = it != links_.end() && it->second.partitioned;
  const bool now = rule != nullptr && rule->partitioned;
  if (rule != nullptr) {
    links_[key] = *rule;
  } else if (it != links_.end()) {
    links_.erase(it);
  }
  if (was != now && link_listener_) link_listener_(a, b, now);
}

void FaultPlane::partition(net::SiteId a, net::SiteId b) {
  ++faults_applied_;
  BS_INFO("fault", "partition sites %zu <-> %zu", a, b);
  const LinkRule rule{.partitioned = true};
  set_link_rule(a, b, &rule);
}

void FaultPlane::heal(net::SiteId a, net::SiteId b) {
  ++faults_applied_;
  BS_INFO("fault", "heal sites %zu <-> %zu", a, b);
  set_link_rule(a, b, nullptr);
}

void FaultPlane::degrade(net::SiteId a, net::SiteId b, double drop_prob,
                         SimDuration extra_latency) {
  ++faults_applied_;
  BS_INFO("fault", "degrade sites %zu <-> %zu (drop %.2f, +%lld ns)", a, b,
          drop_prob, static_cast<long long>(extra_latency));
  const LinkRule rule{.drop_prob = drop_prob, .extra_latency = extra_latency};
  set_link_rule(a, b, &rule);
}

void FaultPlane::slow_disk(NodeId node, double factor) {
  rpc::Node* n = cluster_.node(node);
  if (n == nullptr || factor <= 0) return;
  ++faults_applied_;
  BS_INFO("fault", "slow disk on node %llu (x%.2f)",
          static_cast<unsigned long long>(node.value), factor);
  slowed_[node.value] = factor;
  cluster_.flows().set_capacity(n->disk(), n->spec().disk_bps * factor);
}

void FaultPlane::restore_disk(NodeId node) {
  rpc::Node* n = cluster_.node(node);
  if (n == nullptr) return;
  if (slowed_.erase(node.value) == 0) return;
  ++faults_applied_;
  cluster_.flows().set_capacity(n->disk(), n->spec().disk_bps);
}

void FaultPlane::clear() {
  if (link_listener_) {
    std::vector<std::uint64_t> parted;
    // bslint: allow(det-unordered-iter): snapshot is sorted before use
    for (const auto& [key, rule] : links_) {
      if (rule.partitioned) parted.push_back(key);
    }
    std::sort(parted.begin(), parted.end());
    for (std::uint64_t key : parted) {
      link_listener_(static_cast<net::SiteId>(key & 0xffffffffull),
                     static_cast<net::SiteId>(key >> 32), false);
    }
  }
  links_.clear();
  std::vector<std::uint64_t> ids;
  ids.reserve(slowed_.size());
  // bslint: allow(det-unordered-iter): snapshot is sorted before use
  for (const auto& [id, factor] : slowed_) ids.push_back(id);
  // Restore in id order: each restore is a FlowScheduler capacity change,
  // so the order is part of the deterministic event schedule.
  std::sort(ids.begin(), ids.end());
  for (std::uint64_t id : ids) restore_disk(NodeId{id});
}

void FaultPlane::apply_now(const FaultEvent& ev) {
  obs::count("fault.injected");
  if (auto* ts = obs::sink()) {
    ts->instant("fault.inject", "fault", 0, ev.kind_name(),
                {"node", static_cast<std::int64_t>(ev.node.value)},
                {"site_a", static_cast<std::int64_t>(ev.a)});
  }
  switch (ev.kind) {
    case FaultEvent::Kind::crash:
      crash(ev.node, ev.lose_storage, ev.torn_tail);
      break;
    case FaultEvent::Kind::restart: restart(ev.node); break;
    case FaultEvent::Kind::partition: partition(ev.a, ev.b); break;
    case FaultEvent::Kind::heal:
    case FaultEvent::Kind::restore_link: heal(ev.a, ev.b); break;
    case FaultEvent::Kind::degrade:
      degrade(ev.a, ev.b, ev.drop_prob, ev.extra_latency);
      break;
    case FaultEvent::Kind::slow_disk: slow_disk(ev.node, ev.disk_factor); break;
    case FaultEvent::Kind::restore_disk: restore_disk(ev.node); break;
    case FaultEvent::Kind::power_loss: power_loss(ev.a); break;
    case FaultEvent::Kind::power_restore: power_restore(ev.a); break;
  }
}

void FaultPlane::schedule(const FaultEvent& ev) {
  auto& sim = cluster_.sim();
  if (ev.at <= sim.now()) {
    apply_now(ev);
    return;
  }
  sim.schedule_at(ev.at, [this, ev] { apply_now(ev); });
}

void FaultPlane::schedule_all(const std::vector<FaultEvent>& schedule) {
  for (const auto& ev : schedule) this->schedule(ev);
}

std::vector<FaultEvent> random_schedule(std::uint64_t seed,
                                        const ScheduleOptions& opts) {
  Rng rng(seed);
  std::vector<FaultEvent> out;
  const SimTime span = opts.horizon - opts.start;
  // Faults (and their matching heals/restarts) all land inside the active
  // window so the run's tail is quiescent and published data is verifiable.
  // With journaled stores the last restart still has a replay ahead of it;
  // carving the worst-case replay bound out of the window keeps the tail
  // long enough for every store to become readable again.
  const SimTime active_end = std::max(
      opts.start,
      opts.start +
          static_cast<SimTime>(static_cast<double>(span) *
                               opts.quiesce_fraction) -
          opts.worst_case_recovery);
  auto time_in = [&](SimTime lo, SimTime hi) {
    return lo >= hi ? lo
                    : static_cast<SimTime>(rng.uniform_int(lo, hi - 1));
  };
  auto window = [&](SimDuration min_len, SimDuration max_len) {
    const SimTime t0 = time_in(opts.start, active_end - min_len);
    SimDuration len = static_cast<SimDuration>(
        rng.uniform_int(min_len, std::max(min_len, max_len)));
    const SimTime t1 = std::min<SimTime>(t0 + len, active_end);
    return std::pair<SimTime, SimTime>{t0, t1};
  };

  std::size_t wipes = 0;
  if (!opts.crashable.empty()) {
    for (std::size_t i = 0; i < opts.crashes; ++i) {
      const NodeId victim = opts.crashable[static_cast<std::size_t>(
          rng.next_below(opts.crashable.size()))];
      auto [t0, t1] = window(opts.min_downtime, opts.max_downtime);
      FaultEvent crash;
      crash.at = t0;
      crash.kind = FaultEvent::Kind::crash;
      crash.node = victim;
      if (wipes < opts.max_wipe_crashes && rng.chance(0.5)) {
        crash.lose_storage = true;
        ++wipes;
      }
      // Gated draw: consumes RNG only when the knob is on, preserving the
      // bit-exact schedules of pre-existing seeds.
      if (opts.torn_tail_prob > 0 && !crash.lose_storage &&
          rng.chance(opts.torn_tail_prob)) {
        crash.torn_tail = true;
      }
      out.push_back(crash);
      FaultEvent restart;
      restart.at = t1;
      restart.kind = FaultEvent::Kind::restart;
      restart.node = victim;
      out.push_back(restart);
    }
  }

  auto pick_pair = [&](net::SiteId& a, net::SiteId& b) {
    a = static_cast<net::SiteId>(rng.next_below(opts.site_count));
    b = static_cast<net::SiteId>(rng.next_below(opts.site_count - 1));
    if (b >= a) ++b;
  };
  if (opts.site_count >= 2) {
    for (std::size_t i = 0; i < opts.partitions; ++i) {
      FaultEvent part;
      pick_pair(part.a, part.b);
      auto [t0, t1] = window(opts.min_link_fault, opts.max_link_fault);
      part.at = t0;
      part.kind = FaultEvent::Kind::partition;
      out.push_back(part);
      FaultEvent h = part;
      h.at = t1;
      h.kind = FaultEvent::Kind::heal;
      out.push_back(h);
    }
    for (std::size_t i = 0; i < opts.degrades; ++i) {
      FaultEvent deg;
      pick_pair(deg.a, deg.b);
      auto [t0, t1] = window(opts.min_link_fault, opts.max_link_fault);
      deg.at = t0;
      deg.kind = FaultEvent::Kind::degrade;
      deg.drop_prob = rng.uniform(0.02, opts.max_drop_prob);
      deg.extra_latency = static_cast<SimDuration>(
          rng.uniform_int(0, opts.max_extra_latency));
      out.push_back(deg);
      FaultEvent h = deg;
      h.at = t1;
      h.kind = FaultEvent::Kind::restore_link;
      out.push_back(h);
    }
  }

  if (!opts.crashable.empty()) {
    for (std::size_t i = 0; i < opts.disk_slowdowns; ++i) {
      const NodeId victim = opts.crashable[static_cast<std::size_t>(
          rng.next_below(opts.crashable.size()))];
      auto [t0, t1] = window(opts.min_link_fault, opts.max_link_fault);
      FaultEvent slow;
      slow.at = t0;
      slow.kind = FaultEvent::Kind::slow_disk;
      slow.node = victim;
      slow.disk_factor = rng.uniform(opts.min_disk_factor, 0.6);
      out.push_back(slow);
      FaultEvent rest = slow;
      rest.at = t1;
      rest.kind = FaultEvent::Kind::restore_disk;
      out.push_back(rest);
    }
  }

  if (opts.power_losses > 0 && !opts.power_loss_sites.empty()) {
    for (std::size_t i = 0; i < opts.power_losses; ++i) {
      const net::SiteId site = opts.power_loss_sites[static_cast<std::size_t>(
          rng.next_below(opts.power_loss_sites.size()))];
      auto [t0, t1] = window(opts.min_outage, opts.max_outage);
      FaultEvent loss;
      loss.at = t0;
      loss.kind = FaultEvent::Kind::power_loss;
      loss.a = site;
      out.push_back(loss);
      FaultEvent restore = loss;
      restore.at = t1;
      restore.kind = FaultEvent::Kind::power_restore;
      out.push_back(restore);
    }
  }

  // Appended after every legacy block: new knobs must not perturb the RNG
  // stream of schedules generated before they existed.
  if (opts.long_partitions > 0 && opts.site_count >= 2) {
    for (std::size_t i = 0; i < opts.long_partitions; ++i) {
      FaultEvent part;
      if (opts.anchor_long_partitions) {
        part.a = opts.long_partition_anchor;
        part.b = static_cast<net::SiteId>(
            rng.next_below(opts.site_count - 1));
        if (part.b >= part.a) ++part.b;
      } else {
        pick_pair(part.a, part.b);
      }
      auto [t0, t1] =
          window(opts.min_long_partition, opts.max_long_partition);
      part.at = t0;
      part.kind = FaultEvent::Kind::partition;
      out.push_back(part);
      FaultEvent h = part;
      h.at = t1;
      h.kind = FaultEvent::Kind::heal;
      out.push_back(h);
    }
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     return x.at < y.at;
                   });
  return out;
}

}  // namespace bs::fault
