#include "workload/stats.hpp"

#include <algorithm>

namespace bs::workload {

void ThroughputTracker::record(SimTime end, double bytes,
                               SimDuration duration) {
  total_ += bytes;
  const SimTime start = end - std::max<SimDuration>(duration, 1);
  const auto first_bin = start / bin_;
  const auto last_bin = end / bin_;
  if (first_bin == last_bin) {
    bins_[first_bin] += bytes;
    return;
  }
  const double per_ns =
      bytes / static_cast<double>(std::max<SimDuration>(end - start, 1));
  for (auto b = first_bin; b <= last_bin; ++b) {
    const SimTime bin_lo = b * bin_;
    const SimTime bin_hi = bin_lo + bin_;
    const SimTime lo = std::max(start, bin_lo);
    const SimTime hi = std::min(end, bin_hi);
    if (hi > lo) bins_[b] += per_ns * static_cast<double>(hi - lo);
  }
}

std::vector<double> ThroughputTracker::mbps_series(SimTime from,
                                                   SimTime to) const {
  std::vector<double> out;
  const double bin_sec = simtime::to_seconds(bin_);
  for (SimTime t = from; t < to; t += bin_) {
    const auto it = bins_.find(t / bin_);
    const double bytes = it == bins_.end() ? 0.0 : it->second;
    out.push_back(bytes / bin_sec / 1e6);
  }
  return out;
}

double ThroughputTracker::mean_mbps(SimTime from, SimTime to) const {
  double bytes = 0;
  for (const auto& [bin, b] : bins_) {
    const SimTime lo = bin * bin_;
    if (lo >= from && lo < to) bytes += b;
  }
  const double sec = simtime::to_seconds(to - from);
  return sec > 0 ? bytes / sec / 1e6 : 0;
}

}  // namespace bs::workload
