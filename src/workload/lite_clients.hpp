// Pooled lightweight client actors for production-scale populations: one
// flat POD record per client instead of a coroutine frame, woken by
// InlineCallback ticks through the simulator's parallel-safe site lanes.
// 10^6 clients cost ~100 bytes each (record + one pending event), so the
// million-client experiment of bench_million_clients fits comfortably in
// memory where coroutine-frame actors (workload/clients.hpp) would not.
//
// Every tick is site-pure — it touches only its site's shard (stats,
// per-site Rng) — and cross-site traffic goes through schedule_par with at
// least the WAN latency of delay, so whole populations satisfy the
// parallel-safe contract and shard across BS_SIM_THREADS workers while the
// digest stays bit-identical to the serial and single-heap runs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"

namespace bs::workload {

struct LiteParams {
  std::size_t clients{1'000'000};  ///< split evenly across sites
  SimTime start{0};
  SimTime end{simtime::minutes(120)};  ///< ticks past this are not rescheduled
  /// Mean think time between a client's requests at peak diurnal load.
  SimDuration mean_period{simtime::seconds(300)};
  /// Fraction of requests that also message a random remote site.
  double cross_site_fraction{0.05};
  std::uint64_t seed{0x11e7'c11e'7001ull};
};

/// A population of pooled clients over a multi-site topology, with a
/// diurnal arrival curve phase-shifted per site (each site peaks at a
/// different simulated hour, like geographically distributed users).
class LiteClientPool {
 public:
  LiteClientPool(sim::Simulation& sim, const net::Topology& topo,
                 LiteParams params);

  /// Seeds every client's first wakeup (staggered over one mean period).
  void start();

  struct SiteStats {
    std::uint64_t ops{0};          ///< requests served for local clients
    std::uint64_t bytes{0};        ///< deterministic per-op payload total
    std::uint64_t cross_sent{0};   ///< messages sent to remote sites
    std::uint64_t cross_recv{0};   ///< messages received from remote sites
    std::uint64_t cross_bytes{0};  ///< payload received from remote sites
    std::uint64_t mix{0};          ///< order-sensitive hash of local ticks
  };

  [[nodiscard]] const SiteStats& site_stats(std::size_t site) const {
    return shards_[site].stats;
  }
  [[nodiscard]] std::size_t sites() const { return shards_.size(); }
  [[nodiscard]] std::uint64_t total_ops() const;

  /// FNV-1a over per-site stats in site order — insensitive to how
  /// non-interacting lanes interleave, sensitive to any change in what a
  /// site's clients actually did (including local tick order via `mix`).
  [[nodiscard]] std::uint64_t digest() const;

 private:
  struct Client {
    std::uint32_t ops{0};
  };
  struct Shard {
    LiteClientPool* pool{nullptr};
    std::size_t site{0};
    double phase{0};  ///< diurnal phase shift in [0, 1)
    Rng rng;          ///< consumed only by this site's ticks, in lane order
    std::vector<Client> clients;
    SiteStats stats;
  };
  /// Client wakeup: 12 bytes, always inline in the event callback.
  struct Tick {
    Shard* shard;
    std::uint32_t idx;
    void operator()() const { shard->pool->on_tick(*shard, idx); }
  };
  /// Cross-site message: handler is commutative (integer adds only, no
  /// Rng), as required for same-arrival-time hand-offs to be
  /// order-insensitive under the windowed stepper.
  struct CrossMsg {
    Shard* dst;
    std::uint32_t bytes;
    void operator()() const {
      ++dst->stats.cross_recv;
      dst->stats.cross_bytes += bytes;
    }
  };
  static_assert(sim::InlineCallback::fits_inline<Tick>());
  static_assert(sim::InlineCallback::fits_inline<CrossMsg>());

  void on_tick(Shard& shard, std::uint32_t idx);
  /// Diurnal load multiplier in (0, 1] for a site at simulated time t.
  [[nodiscard]] double diurnal(const Shard& shard, SimTime t) const;

  sim::Simulation& sim_;
  const net::Topology& topo_;
  LiteParams params_;
  std::vector<Shard> shards_;
};

}  // namespace bs::workload
