#include "workload/clients.hpp"

#include "common/rng.hpp"

namespace bs::workload {

// bslint: allow(coro-ref-param): the harness owns every BlobClient for
// the full run and joins all workload tasks before teardown
sim::Task<void> Writer::run(blob::BlobClient& client, BlobId blob,
                            WriterOptions options, ClientRunStats* stats,
                            ThroughputTracker* tracker) {
  auto& sim = client.node().cluster().sim();
  co_await sim.delay_until(options.start);
  if (stats != nullptr) {
    stats->client = client.id();
    stats->started = sim.now();
  }
  std::uint64_t done = 0;
  std::uint64_t seq = 0;
  while ((options.loop_forever || done < options.total_bytes) &&
         sim.now() < options.deadline) {
    const std::uint64_t n = options.loop_forever
                                ? options.op_bytes
                                : std::min(options.op_bytes,
                                           options.total_bytes - done);
    auto r = co_await client.append(
        blob, blob::Payload::synthetic(
                  n, hash_combine(client.id().value, seq++)));
    if (r.ok()) {
      done += n;
      if (stats != nullptr) {
        ++stats->ops_ok;
        stats->bytes_done += n;
        stats->op_throughput_bps.add(r.value().throughput_bps());
        stats->op_duration_sec.add(
            simtime::to_seconds(r.value().duration));
      }
      if (tracker != nullptr) {
        tracker->record(sim.now(), static_cast<double>(n),
                        r.value().duration);
      }
    } else {
      if (stats != nullptr) ++stats->ops_failed;
      co_await sim.delay(options.retry_backoff);
    }
  }
  if (stats != nullptr) stats->finished = sim.now();
}

// bslint: allow(coro-ref-param): the harness owns every BlobClient for
// the full run and joins all workload tasks before teardown
sim::Task<void> Reader::run(blob::BlobClient& client, BlobId blob,
                            ReaderOptions options, ClientRunStats* stats,
                            ThroughputTracker* tracker) {
  auto& sim = client.node().cluster().sim();
  co_await sim.delay_until(options.start);
  if (stats != nullptr) {
    stats->client = client.id();
    stats->started = sim.now();
  }
  Rng rng(options.rng_seed);

  auto d = co_await client.stat(blob);
  if (!d.ok() || d.value().latest.size == 0) {
    if (stats != nullptr) {
      ++stats->ops_failed;
      stats->finished = sim.now();
    }
    co_return;
  }
  const std::uint64_t blob_size = d.value().latest.size;

  std::uint64_t done = 0;
  std::uint64_t cursor = 0;
  while ((options.loop_forever || done < options.total_bytes) &&
         sim.now() < options.deadline) {
    const std::uint64_t n = std::min(options.op_bytes, blob_size);
    std::uint64_t offset;
    if (options.random_offsets && blob_size > n) {
      offset = rng.next_below(blob_size - n + 1);
    } else {
      offset = cursor;
      cursor = (cursor + n) % std::max<std::uint64_t>(blob_size - n + 1, 1);
    }
    auto r = co_await client.read(blob, offset, n);
    if (r.ok()) {
      done += r.value().bytes;
      if (stats != nullptr) {
        ++stats->ops_ok;
        stats->bytes_done += r.value().bytes;
        stats->op_throughput_bps.add(r.value().throughput_bps());
        stats->op_duration_sec.add(
            simtime::to_seconds(r.value().duration));
      }
      if (tracker != nullptr) {
        tracker->record(sim.now(),
                        static_cast<double>(r.value().bytes),
                        r.value().duration);
      }
    } else {
      if (stats != nullptr) ++stats->ops_failed;
      co_await sim.delay(options.retry_backoff);
    }
  }
  if (stats != nullptr) stats->finished = sim.now();
}

// bslint: allow(coro-ref-param): see clients.hpp — cluster-owned node
// bslint: allow(perf-large-byvalue): tiny id list, copied once per attacker
sim::Task<void> DosAttacker::run(rpc::Node& node, ClientId id,
                                 std::vector<NodeId> targets,
                                 AttackerOptions options,
                                 AttackerStats* stats) {
  auto& cluster = node.cluster();
  auto& sim = cluster.sim();
  co_await sim.delay_until(options.start);
  if (stats != nullptr) stats->client = id;
  Rng rng(options.rng_seed ^ id.value);
  const SimDuration gap =
      simtime::seconds(1.0 / std::max(options.request_rate, 1e-9));

  std::uint64_t seq = 0;
  std::size_t cursor = static_cast<std::size_t>(rng.next_below(
      std::max<std::size_t>(targets.size(), 1)));
  rpc::CallOptions call_opts;
  call_opts.client = id;
  call_opts.timeout = simtime::seconds(60);

  while (sim.now() < options.deadline && !targets.empty()) {
    const NodeId target = targets[cursor++ % targets.size()];
    blob::PutChunkReq req;
    // Garbage chunks under a fabricated blob id — the attack bypasses the
    // version manager entirely.
    req.key = blob::ChunkKey{BlobId{0xDD05u}, id.value, seq++};
    req.payload = blob::Payload::synthetic(options.payload_bytes,
                                           rng.next_u64());
    if (stats != nullptr) ++stats->sent;
    // Fire-and-forget at the configured rate: a flooder does not wait for
    // responses before sending the next request.
    sim.spawn([](rpc::Cluster& c, rpc::Node& n, NodeId t,
                 blob::PutChunkReq r, rpc::CallOptions o,
                 AttackerStats* s) -> sim::Task<void> {
      auto result = co_await c.call<blob::PutChunkReq, blob::PutChunkResp>(
          n, t, std::move(r), o);
      if (s == nullptr) co_return;
      if (result.ok()) {
        ++s->served;
      } else if (result.code() == Errc::blocked ||
                 result.code() == Errc::throttled) {
        ++s->rejected;
        s->first_rejected =
            std::min(s->first_rejected, n.cluster().sim().now());
      } else {
        ++s->failed;
      }
    }(cluster, node, target, std::move(req), call_opts, stats));

    if (options.stop_when_blocked && stats != nullptr &&
        stats->rejected > 0) {
      break;
    }
    co_await sim.delay(gap);
  }
}

}  // namespace bs::workload
