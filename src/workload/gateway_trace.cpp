#include "workload/gateway_trace.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "sim/sync.hpp"

namespace bs::workload {
namespace {

using cloud::S3CompleteMultipartReq;
using cloud::S3CompleteMultipartResp;
using cloud::S3CreateBucketReq;
using cloud::S3CreateBucketResp;
using cloud::S3CreateMultipartReq;
using cloud::S3CreateMultipartResp;
using cloud::S3DeleteObjectReq;
using cloud::S3DeleteObjectResp;
using cloud::S3DeltaChunk;
using cloud::S3GetObjectReq;
using cloud::S3GetObjectResp;
using cloud::S3ListObjectsReq;
using cloud::S3ListObjectsResp;
using cloud::S3PutDeltaReq;
using cloud::S3PutDeltaResp;
using cloud::S3PutObjectReq;
using cloud::S3PutObjectResp;
using cloud::S3UploadPartReq;
using cloud::S3UploadPartResp;

/// A tenant's view of one of its objects: chunk layout and per-chunk
/// content checksums, enough to compute deltas against the live version.
struct KeyState {
  std::uint64_t chunks{0};
  std::uint64_t tail{0};  ///< size of the last chunk
  std::vector<std::uint64_t> sums;
  std::uint64_t etag{0};
};

std::uint64_t object_size(const KeyState& k, std::uint64_t cs) {
  return (k.chunks - 1) * cs + k.tail;
}

/// Whole-object checksum of a synthetic layout; doubles as the payload
/// checksum on PUT (which the gateway adopts as the etag) and as the
/// client-computed new_etag on delta uploads.
std::uint64_t object_checksum(std::uint64_t size,
                              const std::vector<std::uint64_t>& sums) {
  std::uint64_t d = fnv1a_u64(size);
  for (std::uint64_t s : sums) d = hash_combine(d, s);
  return d;
}

blob::Payload synthetic_chunk(std::uint64_t size, std::uint64_t sum) {
  blob::Payload p;
  p.size = size;
  p.checksum = sum;
  return p;
}

struct PartSlot {
  bool ok{false};
  std::uint64_t etag{0};
  std::uint32_t deduped{0};
};

// One tenant's sequential op stream against the gateway.
// bslint: allow(coro-ref-param): see gateway_trace.hpp — harness-owned
// node/stats, joined by GatewayTrace::run before teardown
sim::Task<void> run_tenant(rpc::Node& node, NodeId gw,
                           GatewayTraceConfig cfg, std::uint32_t tenant,
                           GatewayTraceStats* stats,
                           std::uint64_t* digest_slot) {
  auto& cluster = node.cluster();
  auto& sim = cluster.sim();
  const ClientId user{cfg.first_tenant_id + tenant};
  const std::string bucket = "t" + std::to_string(tenant);
  const std::uint64_t cs = cfg.chunk_size;
  Rng rng(hash_combine(cfg.rng_seed, tenant));
  std::uint64_t digest = fnv1a_u64(tenant);
  std::uint64_t uniq = 0;
  std::map<std::string, KeyState> objects;

  rpc::CallOptions opts;
  opts.client = user;
  opts.timeout = simtime::minutes(2);

  auto fold = [&digest](std::uint64_t v) { digest = hash_combine(digest, v); };
  auto fold_err = [&](Errc code) {
    ++stats->failures;
    fold(static_cast<std::uint64_t>(code));
  };
  auto content_sum = [&]() {
    if (rng.chance(cfg.shared_content_ratio)) {
      return fnv1a_u64(0x5A5Aull ^ rng.next_below(cfg.shared_pool));
    }
    return fnv1a_u64((static_cast<std::uint64_t>(tenant) << 40) | ++uniq);
  };
  auto fresh_layout = [&]() {
    KeyState k;
    k.chunks = static_cast<std::uint64_t>(rng.uniform_int(
        static_cast<std::int64_t>(cfg.min_object_chunks),
        static_cast<std::int64_t>(cfg.max_object_chunks)));
    k.tail = rng.chance(0.3) ? 1 + rng.next_below(cs) : cs;
    k.sums.resize(k.chunks);
    for (auto& s : k.sums) s = content_sum();
    return k;
  };

  {
    S3CreateBucketReq mk;
    mk.bucket = bucket;
    auto r = co_await cluster.call<S3CreateBucketReq, S3CreateBucketResp>(
        node, gw, std::move(mk), opts);
    if (!r.ok() && r.code() != Errc::already_exists) fold_err(r.code());
  }

  for (std::uint32_t op = 0; op < cfg.ops_per_tenant; ++op) {
    const std::uint64_t rank = rng.zipf(cfg.keys_per_tenant, cfg.hot_key_skew);
    const std::string key = "obj" + std::to_string(rank);
    fold(rank);
    auto it = objects.find(key);
    const bool exists = it != objects.end();
    const double roll = rng.next_double();

    if (roll < 0.55 || (roll < 0.85 && !exists)) {
      if (exists && rng.chance(cfg.delta_fraction)) {
        // Delta overwrite: same layout, a subset of chunks changed.
        KeyState next = it->second;
        const std::uint64_t changed = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   cfg.delta_change_ratio *
                   static_cast<double>(next.chunks)));
        S3PutDeltaReq req;
        req.bucket = bucket;
        req.key = key;
        req.base_etag = it->second.etag;
        std::uint64_t shipped_bytes = 0;
        for (std::uint64_t c = 0; c < changed; ++c) {
          const std::uint64_t i = rng.next_below(next.chunks);
          next.sums[i] = content_sum();
        }
        for (std::uint64_t i = 0; i < next.chunks; ++i) {
          if (next.sums[i] == it->second.sums[i]) continue;
          S3DeltaChunk dc;
          dc.index = i;
          const std::uint64_t slot =
              i + 1 == next.chunks ? next.tail : cs;
          dc.payload = synthetic_chunk(slot, next.sums[i]);
          shipped_bytes += slot;
          req.chunks.push_back(std::move(dc));
        }
        const std::uint64_t size = object_size(next, cs);
        req.new_size = size;
        req.new_etag = object_checksum(size, next.sums);
        next.etag = req.new_etag;
        auto r = co_await cluster.call<S3PutDeltaReq, S3PutDeltaResp>(
            node, gw, std::move(req), opts);
        if (r.ok()) {
          ++stats->delta_puts;
          stats->logical_bytes += size;
          stats->wire_bytes += shipped_bytes;
          it->second = std::move(next);
          fold(r.value().etag);
          fold(r.value().chunks_shared);
        } else {
          fold_err(r.code());
        }
      } else if (rng.chance(cfg.multipart_fraction)) {
        // Multipart ingest: parts of the same object uploaded concurrently.
        KeyState next = fresh_layout();
        const std::uint32_t parts = std::max<std::uint32_t>(
            1, std::min<std::uint32_t>(
                   cfg.multipart_parts,
                   static_cast<std::uint32_t>(next.chunks)));
        S3CreateMultipartReq mk;
        mk.bucket = bucket;
        mk.key = key;
        auto created =
            co_await cluster.call<S3CreateMultipartReq,
                                  S3CreateMultipartResp>(node, gw,
                                                         std::move(mk), opts);
        if (!created.ok()) {
          fold_err(created.code());
        } else {
          const std::uint64_t upload_id = created.value().upload_id;
          std::vector<PartSlot> slots(parts);
          {
            sim::WaitGroup wg(sim);
            std::uint64_t chunk = 0;
            for (std::uint32_t p = 0; p < parts; ++p) {
              const std::uint64_t per = next.chunks / parts;
              const std::uint64_t extra =
                  p < next.chunks % parts ? 1 : 0;
              const std::uint64_t n_chunks = per + extra;
              S3UploadPartReq up;
              up.bucket = bucket;
              up.key = key;
              up.upload_id = upload_id;
              up.part_number = p + 1;
              std::uint64_t part_size = 0;
              for (std::uint64_t c = 0; c < n_chunks; ++c, ++chunk) {
                up.chunk_sums.push_back(next.sums[chunk]);
                part_size += chunk + 1 == next.chunks ? next.tail : cs;
              }
              up.payload.size = part_size;
              up.payload.checksum = object_checksum(
                  part_size,
                  {up.chunk_sums.begin(), up.chunk_sums.end()});
              wg.launch([](rpc::Node& n, NodeId target, S3UploadPartReq r,
                           rpc::CallOptions o,
                           PartSlot* slot) -> sim::Task<void> {
                auto resp =
                    co_await n.cluster()
                        .call<S3UploadPartReq, S3UploadPartResp>(
                            n, target, std::move(r), o);
                if (resp.ok()) {
                  slot->ok = true;
                  slot->etag = resp.value().etag;
                  slot->deduped = resp.value().chunks_deduped;
                }
              }(node, gw, std::move(up), opts, &slots[p]));
            }
            co_await wg.wait();
          }
          bool all_ok = true;
          for (const PartSlot& s : slots) {
            all_ok = all_ok && s.ok;
            fold(s.etag);
          }
          S3CompleteMultipartReq fin;
          fin.bucket = bucket;
          fin.key = key;
          fin.upload_id = upload_id;
          fin.part_count = parts;
          auto done = co_await cluster.call<S3CompleteMultipartReq,
                                            S3CompleteMultipartResp>(
              node, gw, std::move(fin), opts);
          if (all_ok && done.ok()) {
            ++stats->multipart_puts;
            const std::uint64_t size = object_size(next, cs);
            stats->logical_bytes += size;
            stats->wire_bytes += size;
            next.etag = done.value().etag;
            objects[key] = std::move(next);
            fold(done.value().etag);
          } else {
            fold_err(done.ok() ? Errc::internal : done.code());
          }
        }
      } else {
        KeyState next = fresh_layout();
        const std::uint64_t size = object_size(next, cs);
        S3PutObjectReq put;
        put.bucket = bucket;
        put.key = key;
        put.payload.size = size;
        put.payload.checksum = object_checksum(size, next.sums);
        put.chunk_sums = next.sums;
        next.etag = put.payload.checksum;
        auto r = co_await cluster.call<S3PutObjectReq, S3PutObjectResp>(
            node, gw, std::move(put), opts);
        if (r.ok()) {
          ++stats->puts;
          stats->logical_bytes += size;
          stats->wire_bytes += size;
          objects[key] = std::move(next);
          fold(r.value().etag);
          fold(r.value().chunks_deduped);
        } else {
          fold_err(r.code());
        }
      }
    } else if (roll < 0.85) {
      const std::uint64_t size = object_size(it->second, cs);
      S3GetObjectReq get;
      get.bucket = bucket;
      get.key = key;
      if (rng.chance(0.5)) {
        get.offset = rng.next_below(size);
        get.length = 1 + rng.next_below(size - get.offset);
      }
      auto r = co_await cluster.call<S3GetObjectReq, S3GetObjectResp>(
          node, gw, std::move(get), opts);
      if (r.ok()) {
        ++stats->gets;
        fold(r.value().etag);
        fold(r.value().payload.size);
      } else {
        fold_err(r.code());
      }
    } else if (roll < 0.95) {
      S3ListObjectsReq ls;
      ls.bucket = bucket;
      ls.prefix = "obj";
      ls.max_keys = 10;
      for (int page = 0; page < 2; ++page) {
        auto r = co_await cluster.call<S3ListObjectsReq, S3ListObjectsResp>(
            node, gw, std::move(ls), opts);
        if (!r.ok()) {
          fold_err(r.code());
          break;
        }
        ++stats->lists;
        fold(r.value().objects.size());
        for (const auto& o : r.value().objects) fold(o.etag);
        if (!r.value().truncated) break;
        ls = S3ListObjectsReq{};
        ls.bucket = bucket;
        ls.prefix = "obj";
        ls.max_keys = 10;
        ls.marker = r.value().next_marker;
      }
    } else if (exists) {
      S3DeleteObjectReq del;
      del.bucket = bucket;
      del.key = key;
      auto r = co_await cluster.call<S3DeleteObjectReq, S3DeleteObjectResp>(
          node, gw, std::move(del), opts);
      if (r.ok()) {
        ++stats->deletes;
        objects.erase(key);
        fold(1);
      } else {
        fold_err(r.code());
      }
    }
    co_await sim.delay(cfg.think_time);
  }
  *digest_slot = digest;
}

}  // namespace

// bslint: allow(coro-ref-param): see header — joined before teardown
sim::Task<void> GatewayTrace::run(rpc::Node& client_node, NodeId gateway,
                                  GatewayTraceConfig config,
                                  GatewayTraceStats* stats) {
  auto& sim = client_node.cluster().sim();
  std::vector<std::uint64_t> digests(config.tenants, 0);
  {
    sim::WaitGroup wg(sim);
    for (std::uint32_t t = 0; t < config.tenants; ++t) {
      wg.launch(run_tenant(client_node, gateway, config, t, stats,
                           &digests[t]));
    }
    co_await wg.wait();
  }
  // Tenant-order fold: independent of actor completion order.
  for (std::uint64_t d : digests) {
    stats->digest = hash_combine(stats->digest, d);
  }
}

}  // namespace bs::workload
