// Trace-replay workload for the S3 gateway: multiple tenants with mixed
// object sizes, zipf hot-key skew, multipart-heavy ingest, and
// overwrite-heavy delta traffic. The op stream is a pure function of the
// seed, and every response folds into a per-tenant digest (combined in
// tenant order), so two replays of the same trace — including across
// stepper modes — must produce identical digests.
#pragma once

#include "cloud/gateway.hpp"
#include "common/rng.hpp"

namespace bs::workload {

struct GatewayTraceConfig {
  std::uint32_t tenants{4};
  std::uint32_t keys_per_tenant{32};
  std::uint32_t ops_per_tenant{64};
  /// Must match the gateway's object_chunk_size: delta ops and per-chunk
  /// content checksums are computed at this granularity.
  std::uint64_t chunk_size{4 * units::MB};
  std::uint64_t min_object_chunks{1};
  std::uint64_t max_object_chunks{8};
  double hot_key_skew{0.9};  ///< zipf s over a tenant's key space
  /// Probability a fresh upload goes through the multipart path.
  double multipart_fraction{0.25};
  std::uint32_t multipart_parts{4};
  /// Probability an overwrite of an existing object ships a delta instead
  /// of the full payload.
  double delta_fraction{0.6};
  double delta_change_ratio{0.25};  ///< fraction of chunks changed per delta
  /// Probability a chunk's content comes from the cross-tenant shared pool
  /// (the dedup opportunity); otherwise the content is tenant-unique.
  double shared_content_ratio{0.5};
  std::uint64_t shared_pool{64};  ///< distinct shared chunk contents
  SimDuration think_time{simtime::millis(20)};
  std::uint64_t first_tenant_id{1000};
  std::uint64_t rng_seed{42};
};

struct GatewayTraceStats {
  std::uint64_t puts{0};
  std::uint64_t multipart_puts{0};
  std::uint64_t delta_puts{0};
  std::uint64_t gets{0};
  std::uint64_t lists{0};
  std::uint64_t deletes{0};
  std::uint64_t failures{0};
  std::uint64_t logical_bytes{0};  ///< object bytes presented to the gateway
  std::uint64_t wire_bytes{0};     ///< payload bytes actually shipped to it
  std::uint64_t digest{0};         ///< per-tenant digests, tenant order
};

class GatewayTrace {
 public:
  /// Replays the whole trace against the gateway: one sequential actor per
  /// tenant (each under its own ClientId), joined before returning.
  // bslint: allow(coro-ref-param): the harness owns node and stats for the
  // full run and this task is joined before teardown
  static sim::Task<void> run(rpc::Node& client_node, NodeId gateway,
                             GatewayTraceConfig config,
                             GatewayTraceStats* stats);
};

}  // namespace bs::workload
