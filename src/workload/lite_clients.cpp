#include "workload/lite_clients.hpp"

#include <cmath>

namespace bs::workload {

namespace {
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * kFnvPrime;
}
}  // namespace

LiteClientPool::LiteClientPool(sim::Simulation& sim,
                               const net::Topology& topo, LiteParams params)
    : sim_(sim), topo_(topo), params_(params) {
  const std::size_t sites = topo.site_count();
  shards_.resize(sites);
  const std::size_t base = params_.clients / sites;
  const std::size_t extra = params_.clients % sites;
  for (std::size_t s = 0; s < sites; ++s) {
    Shard& sh = shards_[s];
    sh.pool = this;
    sh.site = s;
    sh.phase = static_cast<double>(s) / static_cast<double>(sites);
    sh.rng = Rng(params_.seed ^ (0x5157'ee17'0000ull + s));
    sh.clients.resize(base + (s < extra ? 1 : 0));
  }
  // Every client keeps roughly one pending wakeup, so the steady-state
  // per-lane load is the per-site population. Declaring it lets sharded
  // lanes engage their far staging ladders before start() floods them.
  sim_.hint_lane_load(base + (extra != 0 ? 1 : 0));
}

void LiteClientPool::start() {
  // Stagger every client's first wakeup across one mean period so the
  // population does not tick in lockstep; per-site Rng keeps the stagger
  // identical regardless of lane or thread configuration.
  for (Shard& sh : shards_) {
    const auto n = static_cast<std::uint32_t>(sh.clients.size());
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto offset = static_cast<SimDuration>(
          sh.rng.next_double() * static_cast<double>(params_.mean_period));
      sim_.schedule_par(sh.site, params_.start + offset, Tick{&sh, i});
    }
  }
}

double LiteClientPool::diurnal(const Shard& shard, SimTime t) const {
  // One 24h-period sine per site, phase-shifted so sites peak at different
  // simulated hours; floor of 0.15 keeps off-peak sites alive.
  constexpr double kDay = static_cast<double>(simtime::minutes(24 * 60));
  const double frac = static_cast<double>(t) / kDay + shard.phase;
  const double wave = 0.5 * (1.0 + std::sin(2.0 * 3.14159265358979323846 *
                                            frac));
  return 0.15 + 0.85 * wave;
}

void LiteClientPool::on_tick(Shard& shard, std::uint32_t idx) {
  const SimTime now = sim_.now();
  SiteStats& st = shard.stats;
  ++st.ops;
  ++shard.clients[idx].ops;
  const auto bytes =
      static_cast<std::uint32_t>(512 + shard.rng.next_below(4096));
  st.bytes += bytes;
  // Order-sensitive local mix: any reordering of this site's ticks changes
  // the digest, pinning intra-lane execution order across stepper modes.
  st.mix = fnv_mix(st.mix, (static_cast<std::uint64_t>(idx) << 20) ^ bytes);

  const std::size_t sites = shards_.size();
  if (sites > 1 && shard.rng.chance(params_.cross_site_fraction)) {
    std::size_t dst = shard.rng.next_below(sites - 1);
    if (dst >= shard.site) ++dst;
    ++st.cross_sent;
    // Arrival is one WAN latency out — by definition at or beyond the
    // conservative lookahead horizon, so the hand-off is window-safe.
    const SimDuration wan = topo_.latency(shard.site, dst);
    sim_.schedule_par(dst, now + wan, CrossMsg{&shards_[dst], bytes});
  }

  const double mean =
      static_cast<double>(params_.mean_period) / diurnal(shard, now);
  auto dt = static_cast<SimDuration>(shard.rng.exponential(mean));
  if (dt < 1) dt = 1;
  const SimTime next = now + dt;
  if (next <= params_.end) {
    sim_.schedule_par(shard.site, next, Tick{&shard, idx});
  }
}

std::uint64_t LiteClientPool::total_ops() const {
  std::uint64_t n = 0;
  for (const Shard& sh : shards_) n += sh.stats.ops;
  return n;
}

std::uint64_t LiteClientPool::digest() const {
  std::uint64_t h = kFnvOffset;
  for (const Shard& sh : shards_) {
    const SiteStats& st = sh.stats;
    h = fnv_mix(h, st.ops);
    h = fnv_mix(h, st.bytes);
    h = fnv_mix(h, st.cross_sent);
    h = fnv_mix(h, st.cross_recv);
    h = fnv_mix(h, st.cross_bytes);
    h = fnv_mix(h, st.mix);
  }
  return h;
}

}  // namespace bs::workload
