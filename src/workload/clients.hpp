// Workload actors of the evaluation section: correct writers/readers (the
// "clients, each of them writing 1 GB of data to BlobSeer" of §IV-B) and the
// DoS attackers of §IV-C, which flood data providers with small write
// requests to exhaust their service capacity.
#pragma once

#include "blob/client.hpp"
#include "workload/stats.hpp"

namespace bs::workload {

struct WriterOptions {
  std::uint64_t total_bytes{1 * units::GB};
  std::uint64_t op_bytes{64 * units::MB};  ///< bytes appended per operation
  SimTime start{0};
  SimTime deadline{simtime::kInfinite};  ///< stop even if unfinished
  bool loop_forever{false};              ///< keep writing until deadline
  SimDuration retry_backoff{simtime::seconds(1)};
};

/// Honest writer: appends op_bytes at a time to its blob, retrying failed
/// ops after a backoff.
class Writer {
 public:
  // bslint: allow(coro-ref-param): the harness owns every BlobClient for
  // the full run and joins all workload tasks before teardown
  static sim::Task<void> run(blob::BlobClient& client, BlobId blob,
                             WriterOptions options, ClientRunStats* stats,
                             ThroughputTracker* tracker = nullptr);
};

struct ReaderOptions {
  std::uint64_t total_bytes{1 * units::GB};
  std::uint64_t op_bytes{64 * units::MB};
  SimTime start{0};
  SimTime deadline{simtime::kInfinite};
  bool loop_forever{false};
  bool random_offsets{true};
  std::uint64_t rng_seed{7};
  SimDuration retry_backoff{simtime::seconds(1)};
};

/// Honest reader: reads op_bytes ranges (random or sequential) of a blob.
class Reader {
 public:
  // bslint: allow(coro-ref-param): the harness owns every BlobClient for
  // the full run and joins all workload tasks before teardown
  static sim::Task<void> run(blob::BlobClient& client, BlobId blob,
                             ReaderOptions options, ClientRunStats* stats,
                             ThroughputTracker* tracker = nullptr);
};

struct AttackerOptions {
  double request_rate{200.0};          ///< small writes per second
  std::uint64_t payload_bytes{4096};
  SimTime start{0};
  SimTime deadline{simtime::kInfinite};
  bool stop_when_blocked{false};  ///< paper's attackers keep knocking
  std::uint64_t rng_seed{13};
};

struct AttackerStats {
  ClientId client{};
  std::uint64_t sent{0};
  std::uint64_t served{0};
  std::uint64_t rejected{0};  ///< admission refusals (blocked/throttled)
  std::uint64_t failed{0};
  SimTime first_rejected{simtime::kInfinite};  ///< = detection feedback time
};

/// DoS attacker: floods the given data providers with tiny chunk writes at
/// a fixed request rate, saturating their service queues. Uses raw provider
/// RPCs (not the client library) so the version manager is untouched —
/// matching an attacker that bypasses the normal write protocol.
class DosAttacker {
 public:
  // bslint: allow(coro-ref-param): the attacker's node is cluster-owned
  // for the full run; the harness joins attackers before teardown
  // bslint: allow(perf-large-byvalue): tiny id list, copied once per attacker
  static sim::Task<void> run(rpc::Node& node, ClientId id,
                             std::vector<NodeId> targets,
                             AttackerOptions options, AttackerStats* stats);
};

}  // namespace bs::workload
