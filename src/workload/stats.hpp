// Experiment instrumentation: aggregate and per-client throughput tracking
// over simulated time, used by the benchmark harness to regenerate the
// paper's timelines and throughput tables.
#pragma once

#include <map>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace bs::workload {

/// Bins bytes moved into fixed intervals; an operation's bytes are spread
/// uniformly across the bins its duration covers, giving smooth,
/// integrable throughput timelines.
class ThroughputTracker {
 public:
  explicit ThroughputTracker(SimDuration bin = simtime::seconds(1))
      : bin_(bin) {}

  /// Records an operation that moved `bytes` and finished at `end`, having
  /// taken `duration`.
  void record(SimTime end, double bytes, SimDuration duration);

  /// MB/s per bin over [from, to).
  [[nodiscard]] std::vector<double> mbps_series(SimTime from,
                                                SimTime to) const;

  /// Mean MB/s over [from, to).
  [[nodiscard]] double mean_mbps(SimTime from, SimTime to) const;

  [[nodiscard]] double total_bytes() const { return total_; }
  [[nodiscard]] SimDuration bin() const { return bin_; }

 private:
  SimDuration bin_;
  std::map<std::int64_t, double> bins_;  // bin index -> bytes
  double total_{0};
};

/// Outcome summary of one workload client.
struct ClientRunStats {
  ClientId client{};
  std::uint64_t bytes_done{0};
  std::uint64_t ops_ok{0};
  std::uint64_t ops_failed{0};
  SimTime started{0};
  SimTime finished{0};
  RunningStats op_throughput_bps;  ///< per-op throughput samples
  RunningStats op_duration_sec;

  /// Whole-run effective throughput in MB/s.
  [[nodiscard]] double run_mbps() const {
    const double sec = simtime::to_seconds(finished - started);
    return sec > 0 ? static_cast<double>(bytes_done) / sec / 1e6 : 0;
  }
};

}  // namespace bs::workload
