// Interned per-series storage shared by the monitoring storage server and
// the introspection layer. The hot path — one append per aggregated record —
// used to walk a std::map<RecordKey, TimeSeries> (pointer-chasing tree,
// three-field comparisons per level); interning replaces it with one hash of
// the 16-byte POD key into a dense id, and appends index a flat vector.
//
// Determinism: ids are assigned in first-touch order, which the simulation's
// total event order fixes; nothing derived from the unordered index's
// iteration order may reach the wire or a golden output — every externally
// visible enumeration goes through sorted_keys()/for_each_sorted(), which
// reproduce exactly the iteration order of the std::map this replaces.
//
// The table also caches the human-readable series name per id, so
// "provider.42.used_bytes"-style strings are built once per series instead
// of once per use (visualization/export paths).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/timeseries.hpp"
#include "mon/record.hpp"

namespace bs::mon {

class SeriesTable {
 public:
  using SeriesId = std::uint32_t;

  /// Dense id for `key`, creating an empty series on first touch.
  SeriesId intern(const RecordKey& key) {
    auto [it, inserted] =
        index_.try_emplace(key, static_cast<SeriesId>(entries_.size()));
    if (inserted) entries_.push_back(Entry{key, TimeSeries{}, {}});
    return it->second;
  }

  [[nodiscard]] TimeSeries& at(SeriesId id) { return entries_[id].ts; }
  [[nodiscard]] const TimeSeries& at(SeriesId id) const {
    return entries_[id].ts;
  }
  [[nodiscard]] const RecordKey& key_of(SeriesId id) const {
    return entries_[id].key;
  }

  /// Cached series_name() string (built on first request).
  [[nodiscard]] const std::string& name_of(SeriesId id) {
    Entry& e = entries_[id];
    if (e.name.empty()) e.name = e.key.series_name();
    return e.name;
  }

  [[nodiscard]] const TimeSeries* find(const RecordKey& key) const {
    auto it = index_.find(key);
    return it == index_.end() ? nullptr : &entries_[it->second].ts;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Key snapshot in RecordKey order (the wire/golden-output order).
  [[nodiscard]] std::vector<RecordKey> sorted_keys() const {
    std::vector<RecordKey> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_) out.push_back(e.key);
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Visits (key, series) pairs in RecordKey order — use for anything whose
  /// result is order-sensitive (wire responses, floating-point accumulation).
  template <class Fn>
  void for_each_sorted(Fn&& fn) const {
    std::vector<SeriesId> ids(entries_.size());
    for (SeriesId i = 0; i < ids.size(); ++i) ids[i] = i;
    std::sort(ids.begin(), ids.end(), [this](SeriesId a, SeriesId b) {
      return entries_[a].key < entries_[b].key;
    });
    for (SeriesId id : ids) fn(entries_[id].key, entries_[id].ts);
  }

  /// Visits every series in unspecified order — only for per-series
  /// transforms with no cross-series or externally visible ordering.
  template <class Fn>
  void for_each_unordered(Fn&& fn) {
    for (Entry& e : entries_) fn(e.key, e.ts);
  }

 private:
  struct Entry {
    RecordKey key;
    TimeSeries ts;
    std::string name;  ///< lazily cached series_name()
  };

  std::vector<Entry> entries_;
  std::unordered_map<RecordKey, SeriesId> index_;
};

}  // namespace bs::mon
