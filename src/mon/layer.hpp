// MonitoringLayer: deploys the full monitoring substrate over a BlobSeer
// deployment — monitoring services, storage servers, and one Instrument per
// BlobSeer actor (wired into the actors' observer hooks) — and exposes the
// query interface the introspection layer and visualization tool consume.
#pragma once

#include <memory>
#include <optional>
#include <map>

#include "blob/deployment.hpp"
#include "common/rng.hpp"
#include "mon/instrument.hpp"
#include "mon/service.hpp"
#include "mon/storage.hpp"

namespace bs::mon {

struct MonitoringConfig {
  std::size_t services{2};
  std::size_t storage_servers{2};
  InstrumentOptions instrument{};
  SimDuration service_flush_interval{simtime::seconds(1)};
  MonStorageOptions storage{};
  bool synthetic_gauges{true};  ///< emit CPU/memory physical parameters
  std::vector<NodeId> sinks;    ///< push targets (introspection layer)
};

class MonitoringLayer {
 public:
  MonitoringLayer(blob::Deployment& deployment,
                  MonitoringConfig config = MonitoringConfig());

  /// Starts instruments, services and storage drains.
  void start();

  /// Instruments one client (call for every client the experiment adds).
  void attach_client(blob::BlobClient& client);

  /// Instruments a data provider added after construction (the elasticity
  /// engine's provider_added hook should call this).
  void attach_provider(blob::DataProvider& provider);

  [[nodiscard]] Instrument* instrument_for(NodeId node);

  /// Same-process query: find the storage server owning `key`.
  [[nodiscard]] const TimeSeries* query(const RecordKey& key) const;
  [[nodiscard]] std::vector<RecordKey> all_keys() const;

  [[nodiscard]] std::vector<std::unique_ptr<MonitoringService>>& services() {
    return services_;
  }
  [[nodiscard]] std::vector<std::unique_ptr<MonStorageServer>>& storage() {
    return storage_;
  }

  /// Aggregate intrusiveness counters (experiment E-B).
  [[nodiscard]] std::uint64_t total_events() const;
  [[nodiscard]] std::uint64_t total_records() const;
  [[nodiscard]] std::uint64_t total_dropped() const;
  [[nodiscard]] std::size_t distinct_series() const;

 private:
  Instrument& make_instrument(rpc::Node& node);
  NodeId service_for(NodeId node) const;
  void attach_node_gauges(rpc::Node& node, Instrument& inst);
  static std::optional<MetricEvent> event_from_request(
      const rpc::RequestInfo& info);

  blob::Deployment& dep_;
  MonitoringConfig config_;
  Rng rng_{0x4D04E};
  std::vector<std::unique_ptr<MonitoringService>> services_;
  std::vector<std::unique_ptr<MonStorageServer>> storage_;
  // std::map: start() walks this to kick off per-instrument publish loops,
  // so iteration order shapes the event schedule — keep it deterministic.
  std::map<std::uint64_t, std::unique_ptr<Instrument>> instruments_;
  bool started_{false};
};

}  // namespace bs::mon
