#include "mon/storage.hpp"

#include <algorithm>

namespace bs::mon {

MonStorageServer::MonStorageServer(rpc::Node& node, MonStorageOptions options)
    : node_(node), options_(options), cache_(options.cache_capacity) {
  node_.serve<MonStoreReq, MonStoreResp>(
      [this](const MonStoreReq& req,
             const rpc::Envelope&) -> sim::Task<Result<MonStoreResp>> {
        MonStoreResp resp;
        if (!options_.cache_enabled) {
          // Ablation mode: synchronous disk write on the request path.
          std::vector<Record> batch = req.batch();
          co_await write_to_disk(std::move(batch));
          resp.accepted = req.batch().size();
          co_return resp;
        }
        for (const auto& r : req.batch()) {
          if (cache_.push(r)) {
            ++resp.accepted;
          } else {
            ++resp.dropped;
            ++dropped_;
          }
        }
        co_return resp;
      });

  node_.serve<MonQueryReq, MonQueryResp>(
      [this](const MonQueryReq& req,
             const rpc::Envelope&) -> sim::Task<Result<MonQueryResp>> {
        MonQueryResp resp;
        if (const TimeSeries* ts = series(req.key)) {
          resp.samples = ts->range(req.from, req.to);
        }
        co_return resp;
      });

  node_.serve<MonListSeriesReq, MonListSeriesResp>(
      [this](const MonListSeriesReq& req,
             const rpc::Envelope&) -> sim::Task<Result<MonListSeriesResp>> {
        MonListSeriesResp resp;
        series_.for_each_sorted([&](const RecordKey& key, const TimeSeries&) {
          if (req.filter_domain && key.domain != req.domain) return;
          resp.keys.push_back(key);
        });
        co_return resp;
      });
}

void MonStorageServer::start() {
  if (running_ || !options_.cache_enabled) return;
  running_ = true;
  node_.cluster().sim().spawn(drain_loop());
}

sim::Task<void> MonStorageServer::drain_loop() {
  auto& sim = node_.cluster().sim();
  while (running_ && node_.up()) {
    co_await sim.delay(options_.drain_interval);
    if (!running_ || !node_.up()) break;
    while (!cache_.empty()) {
      std::vector<Record> batch;
      batch.reserve(options_.drain_batch);
      while (batch.size() < options_.drain_batch && !cache_.empty()) {
        batch.push_back(*cache_.pop());
      }
      co_await write_to_disk(std::move(batch));
    }
  }
}

// bslint: allow(perf-large-byvalue): consumed batch; every caller moves
sim::Task<void> MonStorageServer::write_to_disk(std::vector<Record> batch) {
  const double bytes =
      options_.record_disk_bytes * static_cast<double>(batch.size());
  std::vector<net::Resource*> disk{node_.disk()};
  co_await node_.cluster().flows().transfer(bytes, std::move(disk));
  for (const auto& r : batch) {
    TimeSeries& ts = series_.at(series_.intern(r.key));
    // Out-of-order samples across services: clamp into order.
    const SimTime t =
        ts.empty() ? r.time : std::max(r.time, ts.back().time);
    ts.append(t, r.value);
    ++stored_;
  }
}

const TimeSeries* MonStorageServer::series(const RecordKey& key) const {
  return series_.find(key);
}

std::vector<RecordKey> MonStorageServer::keys() const {
  return series_.sorted_keys();
}

}  // namespace bs::mon
