#include "mon/record.hpp"

#include "mon/event.hpp"

namespace bs::mon {

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::chunk_write: return "chunk_write";
    case MetricKind::chunk_read: return "chunk_read";
    case MetricKind::chunk_remove: return "chunk_remove";
    case MetricKind::meta_op: return "meta_op";
    case MetricKind::control_op: return "control_op";
    case MetricKind::rejected_request: return "rejected_request";
    case MetricKind::failed_request: return "failed_request";
    case MetricKind::client_op: return "client_op";
    case MetricKind::provider_storage: return "provider_storage";
    case MetricKind::provider_chunks: return "provider_chunks";
    case MetricKind::cpu_load: return "cpu_load";
    case MetricKind::mem_used: return "mem_used";
    case MetricKind::version_publish: return "version_publish";
  }
  return "unknown";
}

const char* domain_name(Domain d) {
  switch (d) {
    case Domain::client: return "client";
    case Domain::provider: return "provider";
    case Domain::blob: return "blob";
    case Domain::node: return "node";
    case Domain::system: return "system";
  }
  return "?";
}

const char* metric_name(Metric m) {
  switch (m) {
    case Metric::write_ops: return "write_ops";
    case Metric::read_ops: return "read_ops";
    case Metric::write_bytes: return "write_bytes";
    case Metric::read_bytes: return "read_bytes";
    case Metric::rejected_ops: return "rejected_ops";
    case Metric::failed_ops: return "failed_ops";
    case Metric::meta_ops: return "meta_ops";
    case Metric::control_ops: return "control_ops";
    case Metric::op_latency: return "op_latency";
    case Metric::used_bytes: return "used_bytes";
    case Metric::capacity_bytes: return "capacity_bytes";
    case Metric::chunk_count: return "chunk_count";
    case Metric::store_rate: return "store_rate";
    case Metric::cpu_load: return "cpu_load";
    case Metric::mem_used: return "mem_used";
    case Metric::blob_read_bytes: return "blob_read_bytes";
    case Metric::blob_write_bytes: return "blob_write_bytes";
    case Metric::blob_versions: return "blob_versions";
    case Metric::total_used_bytes: return "total_used_bytes";
    case Metric::total_capacity_bytes: return "total_capacity_bytes";
    case Metric::publish_count: return "publish_count";
    case Metric::active_clients: return "active_clients";
  }
  return "?";
}

std::string RecordKey::series_name() const {
  std::string out = domain_name(domain);
  if (domain != Domain::system) {
    out += '.';
    out += std::to_string(id);
  }
  out += '.';
  out += metric_name(metric);
  return out;
}

}  // namespace bs::mon
