// Monitoring service actor (the MonALISA role): receives raw event batches
// from instrumented nodes, runs them through data filters, and periodically
// pushes the aggregated records to the monitoring storage servers (for
// persistence) and to subscribed sinks (the introspection layer).
#pragma once

#include <memory>
#include <vector>

#include "mon/filters.hpp"
#include "mon/messages.hpp"
#include "rpc/rpc.hpp"

namespace bs::mon {

struct MonitoringServiceOptions {
  SimDuration flush_interval{simtime::seconds(1)};
  std::vector<NodeId> storage_servers;  ///< records partitioned by key hash
  std::vector<NodeId> sinks;            ///< receive every record (push)
};

class MonitoringService {
 public:
  MonitoringService(rpc::Node& node, MonitoringServiceOptions options);

  void add_filter(std::unique_ptr<DataFilter> filter);
  void start();
  void stop() { running_ = false; }

  [[nodiscard]] NodeId id() const { return node_.id(); }
  [[nodiscard]] std::uint64_t events_received() const { return events_; }
  [[nodiscard]] std::uint64_t records_emitted() const { return records_; }

 private:
  sim::Task<void> flush_loop();
  // bslint: allow(perf-large-byvalue): sharded then shared; the one caller moves
  sim::Task<void> dispatch(std::vector<Record> records);

  rpc::Node& node_;
  MonitoringServiceOptions options_;
  std::vector<std::unique_ptr<DataFilter>> filters_;
  bool running_{false};
  std::uint64_t events_{0};
  std::uint64_t records_{0};
};

}  // namespace bs::mon
