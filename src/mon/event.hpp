// Raw monitoring events produced by the instrumentation layer — the lowest
// layer of the paper's three-layer introspection architecture (§III-B). The
// instrumentation code in each BlobSeer actor emits these; the monitoring
// layer aggregates them into Records.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace bs::mon {

enum class MetricKind : std::uint8_t {
  chunk_write = 0,   ///< a chunk put served (value = bytes)
  chunk_read,        ///< a chunk get served (value = bytes)
  chunk_remove,      ///< a chunk removal (value = bytes freed)
  meta_op,           ///< a metadata get/put served
  control_op,        ///< version-manager / provider-manager request
  rejected_request,  ///< admission refused (blocked/throttled client)
  failed_request,    ///< served but failed (value = bytes attempted)
  client_op,         ///< client-side completed operation (value = bytes)
  provider_storage,  ///< gauge: used bytes on a provider
  provider_chunks,   ///< gauge: chunk count on a provider
  cpu_load,          ///< gauge: synthetic CPU load in [0,1]
  mem_used,          ///< gauge: synthetic memory fraction in [0,1]
  version_publish,   ///< a new blob version published (value = write bytes)
};

const char* metric_kind_name(MetricKind kind);

/// Client-side operation codes carried in MetricEvent::aux for client_op.
enum class ClientOpCode : std::uint32_t {
  create = 0,
  write,
  append,
  read,
};

struct MetricEvent {
  SimTime time{0};
  NodeId source{};
  MetricKind kind{MetricKind::chunk_write};
  ClientId client{};   ///< invalid for gauges
  BlobId blob{};       ///< invalid when not blob-related
  double value{0};     ///< bytes / gauge level
  std::uint32_t aux{0};  ///< op code, outcome code, or extra payload
  SimDuration duration{0};  ///< for ops: how long they took

  [[nodiscard]] std::uint64_t wire_size() const { return 56; }
};

}  // namespace bs::mon
