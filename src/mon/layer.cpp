#include "mon/layer.hpp"

#include <cstring>

namespace bs::mon {

MonitoringLayer::MonitoringLayer(blob::Deployment& deployment,
                                 MonitoringConfig config)
    : dep_(deployment), config_(std::move(config)) {
  auto& cluster = dep_.cluster();

  // Storage servers first (services need their addresses).
  std::vector<NodeId> storage_ids;
  for (std::size_t i = 0; i < config_.storage_servers; ++i) {
    rpc::Node* n = cluster.add_node(dep_.next_site());
    storage_.push_back(
        std::make_unique<MonStorageServer>(*n, config_.storage));
    storage_ids.push_back(n->id());
  }

  for (std::size_t i = 0; i < config_.services; ++i) {
    rpc::Node* n = cluster.add_node(dep_.next_site());
    MonitoringServiceOptions opts;
    opts.flush_interval = config_.service_flush_interval;
    opts.storage_servers = storage_ids;
    opts.sinks = config_.sinks;
    services_.push_back(std::make_unique<MonitoringService>(*n, opts));
  }

  // Instrument every BlobSeer actor.
  for (auto& provider : dep_.providers()) attach_provider(*provider);

  // Version manager: request + publish instrumentation.
  {
    rpc::Node& vm_node = dep_.version_manager_node();
    Instrument& inst = make_instrument(vm_node);
    vm_node.set_request_observer([&inst](const rpc::RequestInfo& info) {
      if (auto ev = event_from_request(info)) inst.emit(*ev);
    });
    dep_.version_manager().set_publish_observer(
        [&inst](const blob::VersionManager::PublishEvent& ev) {
          MetricEvent m;
          m.kind = MetricKind::version_publish;
          m.client = ev.writer;
          m.blob = ev.blob;
          m.value = static_cast<double>(ev.written_bytes);
          inst.emit(m);
        });
    attach_node_gauges(vm_node, inst);
  }

  // Provider manager: request instrumentation.
  {
    rpc::Node& pm_node = dep_.provider_manager_node();
    Instrument& inst = make_instrument(pm_node);
    pm_node.set_request_observer([&inst](const rpc::RequestInfo& info) {
      if (auto ev = event_from_request(info)) inst.emit(*ev);
    });
  }

  // Metadata providers.
  for (auto& mp : dep_.metadata_providers()) {
    rpc::Node* n = cluster.node(mp->id());
    Instrument& inst = make_instrument(*n);
    n->set_request_observer([&inst](const rpc::RequestInfo& info) {
      if (auto ev = event_from_request(info)) inst.emit(*ev);
    });
  }
}

NodeId MonitoringLayer::service_for(NodeId node) const {
  return services_[node.value % services_.size()]->id();
}

Instrument& MonitoringLayer::make_instrument(rpc::Node& node) {
  auto inst = std::make_unique<Instrument>(node, service_for(node.id()),
                                           config_.instrument);
  Instrument& ref = *inst;
  instruments_[node.id().value] = std::move(inst);
  return ref;
}

std::optional<MetricEvent> MonitoringLayer::event_from_request(
    const rpc::RequestInfo& info) {
  MetricEvent ev;
  ev.client = info.client;
  ev.duration = info.service_time;
  if (info.outcome == Errc::blocked || info.outcome == Errc::throttled) {
    ev.kind = MetricKind::rejected_request;
    ev.value = 1;
    return ev;
  }
  const bool failed = info.outcome != Errc::ok;
  if (std::strcmp(info.name, "blob.put_chunk") == 0 ||
      std::strcmp(info.name, "blob.get_chunk") == 0) {
    // Served chunk traffic is reported through the provider's access
    // observer (which knows the chunk key -> blob); only failures are
    // reported here.
    if (!failed) return std::nullopt;
    ev.kind = MetricKind::failed_request;
    ev.value = static_cast<double>(info.request_bytes);
  } else if (std::strncmp(info.name, "blob.meta_", 10) == 0) {
    ev.kind = failed ? MetricKind::failed_request : MetricKind::meta_op;
    ev.value = 1;
  } else {
    ev.kind = failed ? MetricKind::failed_request : MetricKind::control_op;
    ev.value = 1;
  }
  return ev;
}

void MonitoringLayer::attach_provider(blob::DataProvider& provider) {
  rpc::Node& node = provider.node();
  Instrument& inst = make_instrument(node);

  node.set_request_observer([&inst](const rpc::RequestInfo& info) {
    if (auto ev = event_from_request(info)) inst.emit(*ev);
  });
  provider.set_access_observer(
      [&inst](const blob::DataProvider::AccessEvent& ev) {
        MetricEvent m;
        m.kind = ev.write ? MetricKind::chunk_write : MetricKind::chunk_read;
        m.client = ev.client;
        m.blob = ev.key.blob;
        m.value = static_cast<double>(ev.bytes);
        inst.emit(m);
      });
  provider.set_storage_observer(
      [&inst, &provider](const blob::DataProvider::StorageEvent& ev) {
        MetricEvent m;
        m.kind = MetricKind::provider_storage;
        m.value = static_cast<double>(ev.used);
        m.aux = static_cast<std::uint32_t>(ev.capacity / units::MB);
        inst.emit(m);
        MetricEvent c;
        c.kind = MetricKind::provider_chunks;
        c.value = static_cast<double>(ev.chunks);
        inst.emit(c);
      });

  // Periodic storage gauges even when idle (viz needs flat lines too).
  inst.add_gauge(
      MetricKind::provider_storage,
      [&provider](SimTime) { return static_cast<double>(provider.used()); },
      [&provider](SimTime) {
        return static_cast<double>(provider.capacity() / units::MB);
      });
  inst.add_gauge(MetricKind::provider_chunks, [&provider](SimTime) {
    return static_cast<double>(provider.chunk_count());
  });
  attach_node_gauges(node, inst);
  if (started_) inst.start();
}

void MonitoringLayer::attach_node_gauges(rpc::Node& node, Instrument& inst) {
  if (!config_.synthetic_gauges) return;
  // Synthetic physical parameters: CPU load follows recent service
  // activity; memory follows storage pressure where applicable.
  auto noise_rng = std::make_shared<Rng>(rng_.split());
  blob::DataProvider* provider = dep_.provider_by_node(node.id());
  const double disk_bps = node.spec().disk_bps;
  inst.add_gauge(MetricKind::cpu_load,
                 [noise_rng, provider, disk_bps](SimTime now) {
                   double act = 0.0;
                   if (provider != nullptr) {
                     act = provider->store_rate(now) / disk_bps;
                   }
                   const double cpu =
                       0.05 + 0.75 * act + noise_rng->uniform(0.0, 0.05);
                   return std::min(1.0, cpu);
                 });
  inst.add_gauge(MetricKind::mem_used, [noise_rng, provider](SimTime) {
    double frac = 0.15;
    if (provider != nullptr && provider->capacity() > 0) {
      frac += 0.6 * static_cast<double>(provider->used()) /
              static_cast<double>(provider->capacity());
    }
    return std::min(1.0, frac + noise_rng->uniform(0.0, 0.03));
  });
}

void MonitoringLayer::attach_client(blob::BlobClient& client) {
  Instrument& inst = make_instrument(client.node());
  client.set_op_observer([&inst](const blob::ClientOpInfo& info) {
    MetricEvent ev;
    ev.kind = MetricKind::client_op;
    ev.client = info.client;
    ev.blob = info.blob;
    ev.value = static_cast<double>(info.bytes);
    ev.duration = info.duration;
    ev.aux = static_cast<std::uint32_t>(info.op);
    inst.emit(ev);
  });
  if (started_) inst.start();
}

void MonitoringLayer::start() {
  if (started_) return;
  started_ = true;
  for (auto& s : storage_) s->start();
  for (auto& s : services_) s->start();
  for (auto& [id, inst] : instruments_) inst->start();
}

Instrument* MonitoringLayer::instrument_for(NodeId node) {
  auto it = instruments_.find(node.value);
  return it == instruments_.end() ? nullptr : it->second.get();
}

const TimeSeries* MonitoringLayer::query(const RecordKey& key) const {
  const std::size_t idx = key.hash() % storage_.size();
  return storage_[idx]->series(key);
}

std::vector<RecordKey> MonitoringLayer::all_keys() const {
  std::vector<RecordKey> out;
  for (const auto& s : storage_) {
    auto keys = s->keys();
    out.insert(out.end(), keys.begin(), keys.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t MonitoringLayer::total_events() const {
  std::uint64_t n = 0;
  for (const auto& s : services_) n += s->events_received();
  return n;
}

std::uint64_t MonitoringLayer::total_records() const {
  std::uint64_t n = 0;
  for (const auto& s : services_) n += s->records_emitted();
  return n;
}

std::uint64_t MonitoringLayer::total_dropped() const {
  std::uint64_t n = 0;
  for (const auto& s : storage_) n += s->records_dropped();
  return n;
}

std::size_t MonitoringLayer::distinct_series() const {
  std::size_t n = 0;
  for (const auto& s : storage_) n += s->keys().size();
  return n;
}

}  // namespace bs::mon
