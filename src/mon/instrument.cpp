#include "mon/instrument.hpp"

#include "obs/metrics.hpp"

namespace bs::mon {

Instrument::Instrument(rpc::Node& node, NodeId monitoring_service,
                       InstrumentOptions options)
    : node_(node), service_(monitoring_service), options_(options) {}

void Instrument::emit(MetricEvent ev) {
  if (buffer_.size() >= options_.buffer_limit) {
    ++dropped_;
    obs::count("mon.events_dropped");
    return;
  }
  ev.time = node_.cluster().sim().now();
  ev.source = node_.id();
  buffer_.push_back(ev);
  ++emitted_;
  obs::count("mon.events_emitted");
}

void Instrument::add_gauge(MetricKind kind, GaugeFn fn, GaugeFn aux_fn) {
  gauges_.push_back(Gauge{kind, std::move(fn), std::move(aux_fn)});
}

void Instrument::start() {
  if (running_) return;
  running_ = true;
  auto& sim = node_.cluster().sim();
  sim.spawn(flush_loop());
  if (!gauges_.empty()) sim.spawn(gauge_loop());
}

sim::Task<void> Instrument::flush_loop() {
  auto& sim = node_.cluster().sim();
  while (running_ && node_.up()) {
    co_await sim.delay(options_.flush_interval);
    if (!running_ || !node_.up()) break;
    while (!buffer_.empty()) {
      const std::size_t n = std::min(options_.max_batch, buffer_.size());
      std::vector<MetricEvent> batch(buffer_.begin(),
                                     buffer_.begin() +
                                         static_cast<std::ptrdiff_t>(n));
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + static_cast<std::ptrdiff_t>(n));
      co_await send_batch(std::move(batch));
    }
  }
}

// bslint: allow(perf-large-byvalue): consumed batch; every caller moves
sim::Task<void> Instrument::send_batch(std::vector<MetricEvent> batch) {
  MonReportReq req;
  req.events =
      std::make_shared<const std::vector<MetricEvent>>(std::move(batch));
  auto r = co_await node_.cluster().call<MonReportReq, MonReportResp>(
      node_, service_, std::move(req));
  ++batches_;
  obs::count("mon.batches_sent");
  if (!r.ok()) {
    ++failures_;
    obs::count("mon.batches_failed");
  }
}

sim::Task<void> Instrument::gauge_loop() {
  auto& sim = node_.cluster().sim();
  while (running_ && node_.up()) {
    co_await sim.delay(options_.gauge_interval);
    if (!running_ || !node_.up()) break;
    for (const auto& g : gauges_) {
      MetricEvent ev;
      ev.kind = g.kind;
      ev.value = g.fn(sim.now());
      if (g.aux_fn) {
        ev.aux = static_cast<std::uint32_t>(g.aux_fn(sim.now()));
      }
      emit(ev);
    }
  }
}

}  // namespace bs::mon
