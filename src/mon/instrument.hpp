// Instrumentation layer: a per-node event buffer with an asynchronous flush
// loop. emit() is a cheap in-memory append on the instrumented node's fast
// path; batches travel to the node's monitoring service off the critical
// path — which is why the intrusiveness experiment (§IV-B) shows negligible
// overhead.
#pragma once

#include <functional>
#include <vector>

#include "mon/event.hpp"
#include "mon/messages.hpp"
#include "rpc/rpc.hpp"

namespace bs::mon {

struct InstrumentOptions {
  SimDuration flush_interval{simtime::seconds(1)};
  std::size_t max_batch{512};      ///< events per report message
  std::size_t buffer_limit{65536}; ///< emits beyond this are dropped
  SimDuration gauge_interval{simtime::seconds(2)};
};

class Instrument {
 public:
  using GaugeFn = std::function<double(SimTime now)>;

  Instrument(rpc::Node& node, NodeId monitoring_service,
             InstrumentOptions options = InstrumentOptions());

  /// Appends an event (timestamped now). Constant-time, no I/O.
  void emit(MetricEvent ev);

  /// Registers a periodically sampled gauge (cpu_load, provider_storage...).
  /// `aux_fn` optionally fills the event's aux field (e.g. capacity in MB).
  void add_gauge(MetricKind kind, GaugeFn fn, GaugeFn aux_fn = nullptr);

  /// Starts the flush + gauge loops.
  void start();
  void stop() { running_ = false; }

  [[nodiscard]] std::uint64_t events_emitted() const { return emitted_; }
  [[nodiscard]] std::uint64_t events_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t batches_sent() const { return batches_; }
  [[nodiscard]] std::uint64_t send_failures() const { return failures_; }

 private:
  sim::Task<void> flush_loop();
  sim::Task<void> gauge_loop();
  // bslint: allow(perf-large-byvalue): consumed batch; every caller moves
  sim::Task<void> send_batch(std::vector<MetricEvent> batch);

  rpc::Node& node_;
  NodeId service_;
  InstrumentOptions options_;
  std::vector<MetricEvent> buffer_;
  struct Gauge {
    MetricKind kind;
    GaugeFn fn;
    GaugeFn aux_fn;
  };
  std::vector<Gauge> gauges_;
  bool running_{false};
  std::uint64_t emitted_{0};
  std::uint64_t dropped_{0};
  std::uint64_t batches_{0};
  std::uint64_t failures_{0};
};

}  // namespace bs::mon
