// Aggregated monitoring records — the output of the monitoring layer's data
// filters and the storage format of the monitoring storage servers. Keys are
// structured (domain, id, metric) so the introspection layer can consume
// them without string parsing; series names exist for storage/visualization.
#pragma once

#include <cstdint>
#include <string>

#include "common/hash.hpp"
#include "common/types.hpp"

namespace bs::mon {

enum class Domain : std::uint8_t {
  client = 0,
  provider,
  blob,
  node,
  system,
};

enum class Metric : std::uint8_t {
  // client domain (per aggregation interval)
  write_ops = 0,
  read_ops,
  write_bytes,
  read_bytes,
  rejected_ops,
  failed_ops,
  meta_ops,
  control_ops,
  op_latency,     ///< mean client-op latency in the interval (seconds)
  // provider domain
  used_bytes,
  capacity_bytes,
  chunk_count,
  store_rate,     ///< bytes/s stored in the interval
  // node domain
  cpu_load,
  mem_used,
  // blob domain
  blob_read_bytes,
  blob_write_bytes,
  blob_versions,
  // system domain
  total_used_bytes,
  total_capacity_bytes,
  publish_count,
  active_clients,
};

const char* domain_name(Domain d);
const char* metric_name(Metric m);

struct RecordKey {
  Domain domain{Domain::system};
  std::uint64_t id{0};  ///< client/provider-node/blob id; 0 for system
  Metric metric{Metric::publish_count};

  friend constexpr auto operator<=>(const RecordKey&, const RecordKey&) =
      default;

  [[nodiscard]] std::uint64_t hash() const {
    return hash_combine(
        hash_combine(static_cast<std::uint64_t>(domain), id),
        static_cast<std::uint64_t>(metric));
  }

  /// e.g. "provider.42.used_bytes".
  [[nodiscard]] std::string series_name() const;
};

struct Record {
  RecordKey key;
  SimTime time{0};
  double value{0};

  [[nodiscard]] std::uint64_t wire_size() const { return 40; }
};

}  // namespace bs::mon

namespace std {
template <>
struct hash<bs::mon::RecordKey> {
  size_t operator()(const bs::mon::RecordKey& k) const noexcept {
    return static_cast<size_t>(k.hash());
  }
};
}  // namespace std
