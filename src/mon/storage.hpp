// Monitoring storage server: persists aggregated records as per-series time
// series. Incoming bursts land in a bounded in-memory cache that a
// write-behind drain empties to the (simulated) disk — the caching mechanism
// the paper added "so as to enable them to cope with bursts of monitoring
// data generated when the system is under heavy load" (§III-B). When the
// cache is full, records are dropped and counted.
#pragma once

#include "common/ring_buffer.hpp"
#include "common/timeseries.hpp"
#include "mon/messages.hpp"
#include "mon/series_table.hpp"
#include "rpc/rpc.hpp"

namespace bs::mon {

struct MonStorageOptions {
  std::size_t cache_capacity{8192};  ///< records buffered ahead of the disk
  std::size_t drain_batch{512};      ///< records per disk write
  SimDuration drain_interval{simtime::millis(200)};
  double record_disk_bytes{64};      ///< on-disk footprint per record
  bool cache_enabled{true};          ///< ablation: false = synchronous disk
};

class MonStorageServer {
 public:
  MonStorageServer(rpc::Node& node,
                   MonStorageOptions options = MonStorageOptions());

  void start();
  void stop() { running_ = false; }

  [[nodiscard]] NodeId id() const { return node_.id(); }

  /// Same-process query access (tests, viz, introspection co-location).
  [[nodiscard]] const TimeSeries* series(const RecordKey& key) const;
  [[nodiscard]] std::vector<RecordKey> keys() const;

  [[nodiscard]] std::uint64_t records_stored() const { return stored_; }
  [[nodiscard]] std::uint64_t records_dropped() const { return dropped_; }
  [[nodiscard]] std::size_t cache_depth() const { return cache_.size(); }

 private:
  sim::Task<void> drain_loop();
  // bslint: allow(perf-large-byvalue): consumed batch; every caller moves
  sim::Task<void> write_to_disk(std::vector<Record> batch);

  rpc::Node& node_;
  MonStorageOptions options_;
  RingBuffer<Record> cache_;
  // Interned store: hashed O(1) appends; the MonListSeries RPC and keys()
  // go through the table's sorted traversal so the wire order is unchanged.
  SeriesTable series_;
  bool running_{false};
  std::uint64_t stored_{0};
  std::uint64_t dropped_{0};
};

}  // namespace bs::mon
