#include "mon/service.hpp"

namespace bs::mon {

MonitoringService::MonitoringService(rpc::Node& node,
                                     MonitoringServiceOptions options)
    : node_(node), options_(std::move(options)) {
  node_.serve<MonReportReq, MonReportResp>(
      [this](const MonReportReq& req,
             const rpc::Envelope&) -> sim::Task<Result<MonReportResp>> {
        events_ += req.batch().size();
        for (const auto& ev : req.batch()) {
          for (auto& f : filters_) f->ingest(ev);
        }
        co_return MonReportResp{};
      });
}

void MonitoringService::add_filter(std::unique_ptr<DataFilter> filter) {
  filters_.push_back(std::move(filter));
}

void MonitoringService::start() {
  if (running_) return;
  running_ = true;
  if (filters_.empty()) {
    for (auto& f : default_filters()) filters_.push_back(std::move(f));
  }
  node_.cluster().sim().spawn(flush_loop());
}

sim::Task<void> MonitoringService::flush_loop() {
  auto& sim = node_.cluster().sim();
  while (running_ && node_.up()) {
    co_await sim.delay(options_.flush_interval);
    if (!running_ || !node_.up()) break;
    std::vector<Record> records;
    for (auto& f : filters_) f->flush(sim.now(), records);
    records_ += records.size();
    if (!records.empty()) co_await dispatch(std::move(records));
  }
}

// bslint: allow(perf-large-byvalue): sharded then shared; the one caller moves
sim::Task<void> MonitoringService::dispatch(std::vector<Record> records) {
  auto& cluster = node_.cluster();
  // Partition across storage servers by series key.
  if (!options_.storage_servers.empty()) {
    const std::size_t n = options_.storage_servers.size();
    std::vector<std::vector<Record>> shards(n);
    for (const auto& r : records) {
      shards[r.key.hash() % n].push_back(r);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (shards[i].empty()) continue;
      MonStoreReq req;
      req.records = std::make_shared<const std::vector<Record>>(
          std::move(shards[i]));
      (void)co_await cluster.call<MonStoreReq, MonStoreResp>(
          node_, options_.storage_servers[i], std::move(req));
    }
  }
  // Full stream to every sink (introspection layer): one immutable batch
  // shared across the whole fan-out, so each extra sink costs a pointer
  // bump instead of a vector copy.
  if (!options_.sinks.empty()) {
    auto shared =
        std::make_shared<const std::vector<Record>>(std::move(records));
    for (NodeId sink : options_.sinks) {
      MonStoreReq req;
      req.records = shared;
      (void)co_await cluster.call<MonStoreReq, MonStoreResp>(node_, sink,
                                                             std::move(req));
    }
  }
}

}  // namespace bs::mon
