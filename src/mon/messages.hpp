// RPC messages of the monitoring layer.
#pragma once

#include <vector>

#include "common/timeseries.hpp"
#include "mon/event.hpp"
#include "mon/record.hpp"

namespace bs::mon {

/// Instrumentation -> monitoring service: a batch of raw events.
struct MonReportReq {
  static constexpr const char* kName = "mon.report";
  std::vector<MetricEvent> events;
  [[nodiscard]] std::uint64_t wire_size() const {
    return 16 + 56 * events.size();
  }
};
struct MonReportResp {
  [[nodiscard]] std::uint64_t wire_size() const { return 16; }
};

/// Monitoring service -> storage server / introspection sink: aggregated
/// records.
struct MonStoreReq {
  static constexpr const char* kName = "mon.store";
  std::vector<Record> records;
  [[nodiscard]] std::uint64_t wire_size() const {
    return 16 + 40 * records.size();
  }
};
struct MonStoreResp {
  std::uint64_t accepted{0};
  std::uint64_t dropped{0};
  [[nodiscard]] std::uint64_t wire_size() const { return 32; }
};

/// Range query over one stored series.
struct MonQueryReq {
  static constexpr const char* kName = "mon.query";
  RecordKey key;
  SimTime from{0};
  SimTime to{simtime::kInfinite};
  [[nodiscard]] std::uint64_t wire_size() const { return 48; }
};
struct MonQueryResp {
  std::vector<Sample> samples;
  [[nodiscard]] std::uint64_t wire_size() const {
    return 16 + 16 * samples.size();
  }
};

/// Lists stored series (optionally restricted to one domain).
struct MonListSeriesReq {
  static constexpr const char* kName = "mon.list_series";
  bool filter_domain{false};
  Domain domain{Domain::system};
  [[nodiscard]] std::uint64_t wire_size() const { return 18; }
};
struct MonListSeriesResp {
  std::vector<RecordKey> keys;
  [[nodiscard]] std::uint64_t wire_size() const {
    return 16 + 16 * keys.size();
  }
};

}  // namespace bs::mon
