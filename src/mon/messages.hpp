// RPC messages of the monitoring layer. Batch payloads are carried as
// shared immutable vectors: the RPC layer moves envelopes between queues and
// the monitoring service fans the same record batch out to several sinks, so
// a by-value vector would be deep-copied per hop and per sink. A
// shared_ptr<const ...> makes every hop a pointer bump while keeping the
// payload immutable end to end (the simulated "wire" still charges
// wire_size() for the full batch — sharing is a host-memory optimization,
// not a modeled-network one).
#pragma once

#include <memory>
#include <vector>

#include "common/timeseries.hpp"
#include "mon/event.hpp"
#include "mon/record.hpp"

namespace bs::mon {

namespace detail {
template <class T>
const std::vector<T>& empty_batch() {
  static const std::vector<T> empty;
  return empty;
}
}  // namespace detail

/// Instrumentation -> monitoring service: a batch of raw events.
struct MonReportReq {
  static constexpr const char* kName = "mon.report";
  std::shared_ptr<const std::vector<MetricEvent>> events;
  /// The batch (empty when no payload was attached).
  [[nodiscard]] const std::vector<MetricEvent>& batch() const {
    return events ? *events : detail::empty_batch<MetricEvent>();
  }
  [[nodiscard]] std::uint64_t wire_size() const {
    return 16 + 56 * batch().size();
  }
};
struct MonReportResp {
  [[nodiscard]] std::uint64_t wire_size() const { return 16; }
};

/// Monitoring service -> storage server / introspection sink: aggregated
/// records.
struct MonStoreReq {
  static constexpr const char* kName = "mon.store";
  std::shared_ptr<const std::vector<Record>> records;
  /// The batch (empty when no payload was attached).
  [[nodiscard]] const std::vector<Record>& batch() const {
    return records ? *records : detail::empty_batch<Record>();
  }
  [[nodiscard]] std::uint64_t wire_size() const {
    return 16 + 40 * batch().size();
  }
};
struct MonStoreResp {
  std::uint64_t accepted{0};
  std::uint64_t dropped{0};
  [[nodiscard]] std::uint64_t wire_size() const { return 32; }
};

/// Range query over one stored series.
struct MonQueryReq {
  static constexpr const char* kName = "mon.query";
  RecordKey key;
  SimTime from{0};
  SimTime to{simtime::kInfinite};
  [[nodiscard]] std::uint64_t wire_size() const { return 48; }
};
struct MonQueryResp {
  std::vector<Sample> samples;
  [[nodiscard]] std::uint64_t wire_size() const {
    return 16 + 16 * samples.size();
  }
};

/// Lists stored series (optionally restricted to one domain).
struct MonListSeriesReq {
  static constexpr const char* kName = "mon.list_series";
  bool filter_domain{false};
  Domain domain{Domain::system};
  [[nodiscard]] std::uint64_t wire_size() const { return 18; }
};
struct MonListSeriesResp {
  std::vector<RecordKey> keys;
  [[nodiscard]] std::uint64_t wire_size() const {
    return 16 + 16 * keys.size();
  }
};

}  // namespace bs::mon
