// Data filters: the aggregation stage running inside monitoring services
// ("we implemented a set of data filters at the level of the monitoring
// services to aggregate the BlobSeer-specific data", §III-B). Each filter
// folds raw MetricEvents into per-interval Records.
#pragma once

#include <memory>
#include <map>
#include <vector>

#include "mon/event.hpp"
#include "mon/record.hpp"

namespace bs::mon {

class DataFilter {
 public:
  virtual ~DataFilter() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  virtual void ingest(const MetricEvent& ev) = 0;
  /// Emits this interval's records and resets interval state.
  virtual void flush(SimTime now, std::vector<Record>& out) = 0;
};

/// Per-client activity: op counts, byte counts, rejections, latencies.
/// Feeds the User Activity History that the security framework scans.
class ClientActivityFilter final : public DataFilter {
 public:
  const char* name() const override { return "client_activity"; }
  void ingest(const MetricEvent& ev) override;
  void flush(SimTime now, std::vector<Record>& out) override;

 private:
  struct Acc {
    double write_ops{0}, read_ops{0};
    double write_bytes{0}, read_bytes{0};
    double rejected{0}, failed{0};
    double meta_ops{0}, control_ops{0};
    double latency_sum{0}, latency_n{0};
  };
  // std::map: flush() iterates these into Record batches, so iteration
  // order is observable downstream — keep it deterministic.
  std::map<std::uint64_t, Acc> clients_;
};

/// Per-provider storage gauges (used bytes, capacity, chunk count) plus
/// per-interval store rate.
class ProviderStorageFilter final : public DataFilter {
 public:
  const char* name() const override { return "provider_storage"; }
  void ingest(const MetricEvent& ev) override;
  void flush(SimTime now, std::vector<Record>& out) override;

 private:
  struct Acc {
    double used{0}, capacity{0}, chunks{0};
    double stored_bytes{0};
    bool seen_gauge{false};
  };
  std::map<std::uint64_t, Acc> providers_;
  SimTime last_flush_{0};
};

/// Per-node physical parameters (synthetic CPU load / memory).
class NodeLoadFilter final : public DataFilter {
 public:
  const char* name() const override { return "node_load"; }
  void ingest(const MetricEvent& ev) override;
  void flush(SimTime now, std::vector<Record>& out) override;

 private:
  struct Acc {
    double cpu{0}, mem{0};
    bool seen{false};
  };
  std::map<std::uint64_t, Acc> nodes_;
};

/// Per-blob access patterns + system-wide publish counter.
class BlobAccessFilter final : public DataFilter {
 public:
  const char* name() const override { return "blob_access"; }
  void ingest(const MetricEvent& ev) override;
  void flush(SimTime now, std::vector<Record>& out) override;

 private:
  struct Acc {
    double read_bytes{0}, write_bytes{0}, publishes{0};
  };
  std::map<std::uint64_t, Acc> blobs_;
  double publish_count_{0};
};

/// The default filter set deployed in every monitoring service.
std::vector<std::unique_ptr<DataFilter>> default_filters();

}  // namespace bs::mon
