#include "mon/filters.hpp"

namespace bs::mon {

namespace {
Record rec(Domain d, std::uint64_t id, Metric m, SimTime t, double v) {
  return Record{RecordKey{d, id, m}, t, v};
}
}  // namespace

// ----------------------------------------------------- ClientActivityFilter

void ClientActivityFilter::ingest(const MetricEvent& ev) {
  if (!ev.client.valid()) return;
  Acc& a = clients_[ev.client.value];
  switch (ev.kind) {
    case MetricKind::chunk_write:
      a.write_ops += 1;
      a.write_bytes += ev.value;
      break;
    case MetricKind::chunk_read:
      a.read_ops += 1;
      a.read_bytes += ev.value;
      break;
    case MetricKind::meta_op:
      a.meta_ops += 1;
      break;
    case MetricKind::control_op:
      a.control_ops += 1;
      break;
    case MetricKind::rejected_request:
      a.rejected += 1;
      break;
    case MetricKind::failed_request:
      a.failed += 1;
      break;
    case MetricKind::client_op:
      a.latency_sum += simtime::to_seconds(ev.duration);
      a.latency_n += 1;
      break;
    default:
      break;
  }
}

void ClientActivityFilter::flush(SimTime now, std::vector<Record>& out) {
  for (const auto& [id, a] : clients_) {
    out.push_back(rec(Domain::client, id, Metric::write_ops, now, a.write_ops));
    out.push_back(rec(Domain::client, id, Metric::read_ops, now, a.read_ops));
    out.push_back(
        rec(Domain::client, id, Metric::write_bytes, now, a.write_bytes));
    out.push_back(
        rec(Domain::client, id, Metric::read_bytes, now, a.read_bytes));
    out.push_back(
        rec(Domain::client, id, Metric::rejected_ops, now, a.rejected));
    out.push_back(rec(Domain::client, id, Metric::failed_ops, now, a.failed));
    out.push_back(rec(Domain::client, id, Metric::meta_ops, now, a.meta_ops));
    out.push_back(
        rec(Domain::client, id, Metric::control_ops, now, a.control_ops));
    if (a.latency_n > 0) {
      out.push_back(rec(Domain::client, id, Metric::op_latency, now,
                        a.latency_sum / a.latency_n));
    }
  }
  clients_.clear();
}

// ---------------------------------------------------- ProviderStorageFilter

void ProviderStorageFilter::ingest(const MetricEvent& ev) {
  switch (ev.kind) {
    case MetricKind::provider_storage: {
      Acc& a = providers_[ev.source.value];
      a.used = ev.value;
      if (ev.aux > 0) {
        a.capacity = static_cast<double>(ev.aux) * 1e6;  // aux: cap in MB
      }
      a.seen_gauge = true;
      break;
    }
    case MetricKind::provider_chunks:
      providers_[ev.source.value].chunks = ev.value;
      break;
    case MetricKind::chunk_write:
      providers_[ev.source.value].stored_bytes += ev.value;
      break;
    default:
      break;
  }
}

void ProviderStorageFilter::flush(SimTime now, std::vector<Record>& out) {
  const double interval =
      last_flush_ > 0 ? simtime::to_seconds(now - last_flush_) : 1.0;
  double total_used = 0, total_cap = 0;
  for (auto& [id, a] : providers_) {
    if (a.seen_gauge) {
      out.push_back(rec(Domain::provider, id, Metric::used_bytes, now, a.used));
      out.push_back(
          rec(Domain::provider, id, Metric::capacity_bytes, now, a.capacity));
      out.push_back(
          rec(Domain::provider, id, Metric::chunk_count, now, a.chunks));
      total_used += a.used;
      total_cap += a.capacity;
    }
    if (a.stored_bytes > 0 || a.seen_gauge) {
      out.push_back(rec(Domain::provider, id, Metric::store_rate, now,
                        interval > 0 ? a.stored_bytes / interval : 0));
    }
    a.stored_bytes = 0;  // rate resets; gauges persist
  }
  if (total_cap > 0) {
    out.push_back(
        rec(Domain::system, 0, Metric::total_used_bytes, now, total_used));
    out.push_back(rec(Domain::system, 0, Metric::total_capacity_bytes, now,
                      total_cap));
  }
  last_flush_ = now;
}

// ----------------------------------------------------------- NodeLoadFilter

void NodeLoadFilter::ingest(const MetricEvent& ev) {
  if (ev.kind == MetricKind::cpu_load) {
    auto& a = nodes_[ev.source.value];
    a.cpu = ev.value;
    a.seen = true;
  } else if (ev.kind == MetricKind::mem_used) {
    auto& a = nodes_[ev.source.value];
    a.mem = ev.value;
    a.seen = true;
  }
}

void NodeLoadFilter::flush(SimTime now, std::vector<Record>& out) {
  for (const auto& [id, a] : nodes_) {
    if (!a.seen) continue;
    out.push_back(rec(Domain::node, id, Metric::cpu_load, now, a.cpu));
    out.push_back(rec(Domain::node, id, Metric::mem_used, now, a.mem));
  }
  // Gauges persist (latest value repeats until a new sample arrives).
}

// --------------------------------------------------------- BlobAccessFilter

void BlobAccessFilter::ingest(const MetricEvent& ev) {
  switch (ev.kind) {
    case MetricKind::chunk_read:
      if (ev.blob.valid()) blobs_[ev.blob.value].read_bytes += ev.value;
      break;
    case MetricKind::chunk_write:
      if (ev.blob.valid()) blobs_[ev.blob.value].write_bytes += ev.value;
      break;
    case MetricKind::version_publish:
      publish_count_ += 1;
      if (ev.blob.valid()) blobs_[ev.blob.value].publishes += 1;
      break;
    default:
      break;
  }
}

void BlobAccessFilter::flush(SimTime now, std::vector<Record>& out) {
  for (const auto& [id, a] : blobs_) {
    out.push_back(
        rec(Domain::blob, id, Metric::blob_read_bytes, now, a.read_bytes));
    out.push_back(
        rec(Domain::blob, id, Metric::blob_write_bytes, now, a.write_bytes));
    out.push_back(
        rec(Domain::blob, id, Metric::blob_versions, now, a.publishes));
  }
  out.push_back(rec(Domain::system, 0, Metric::publish_count, now,
                    publish_count_));
  blobs_.clear();
  // publish_count_ is cumulative.
}

std::vector<std::unique_ptr<DataFilter>> default_filters() {
  std::vector<std::unique_ptr<DataFilter>> out;
  out.push_back(std::make_unique<ClientActivityFilter>());
  out.push_back(std::make_unique<ProviderStorageFilter>());
  out.push_back(std::make_unique<NodeLoadFilter>());
  out.push_back(std::make_unique<BlobAccessFilter>());
  return out;
}

}  // namespace bs::mon
