// Security Violation Detection Engine (§III-C): periodically scans the User
// Activity History for the malicious behaviour patterns defined by the
// loaded policies. When a pattern matches, the Policy Enforcement component
// is notified with the violation and applies the policy's feedback actions.
#pragma once

#include <functional>
#include <map>

#include "sec/enforcement.hpp"

namespace bs::sec {

struct DetectionOptions {
  SimDuration scan_interval{simtime::seconds(5)};
  /// After firing, the same (client, policy) pair is not re-evaluated for
  /// this long (prevents re-flagging an already-sanctioned attack).
  SimDuration refractory{simtime::seconds(30)};
  /// Clients quiet for longer than this are skipped.
  SimDuration activity_horizon{simtime::seconds(60)};
};

class DetectionEngine {
 public:
  DetectionEngine(sim::Simulation& sim,
                  const intro::UserActivityHistory& activity,
                  TrustManager& trust, PolicyEnforcement& enforcement,
                  DetectionOptions options = DetectionOptions());

  /// Loads (replaces) the active policy set.
  void load(std::vector<Policy> policies);
  Result<void> load_source(const std::string& source);

  void start();
  void stop() { running_ = false; }

  /// One synchronous scan (also called by the periodic loop).
  std::vector<Violation> scan();

  void set_violation_observer(std::function<void(const Violation&)> obs) {
    observer_ = std::move(obs);
  }

  /// Retunes the scan cadence (used by the self-protection MAPE module to
  /// harden under attack and relax when quiet).
  void set_scan_interval(SimDuration interval) {
    options_.scan_interval = interval;
  }
  [[nodiscard]] SimDuration scan_interval() const {
    return options_.scan_interval;
  }

  [[nodiscard]] std::uint64_t scans() const { return scans_; }
  [[nodiscard]] std::uint64_t violations() const { return violations_; }
  [[nodiscard]] const std::vector<Policy>& policies() const {
    return policies_;
  }

 private:
  sim::Task<void> scan_loop();

  sim::Simulation& sim_;
  const intro::UserActivityHistory& activity_;
  TrustManager& trust_;
  PolicyEnforcement& enforcement_;
  DetectionOptions options_;
  std::vector<Policy> policies_;
  /// (client, policy index) -> last fire time.
  std::map<std::pair<std::uint64_t, std::size_t>, SimTime> last_fired_;
  bool running_{false};
  std::uint64_t scans_{0};
  std::uint64_t violations_{0};
  std::function<void(const Violation&)> observer_;
};

}  // namespace bs::sec
