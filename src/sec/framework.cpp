#include "sec/framework.hpp"

#include <cassert>

namespace bs::sec {

SecurityFramework::SecurityFramework(
    sim::Simulation& sim, const intro::UserActivityHistory& activity,
    SecurityConfig config)
    : trust_(config.trust), enforcement_(sim, trust_, config.enforcement),
      engine_(sim, activity, trust_, enforcement_, config.detection) {
  const std::string source = config.policy_source.empty()
                                 ? default_policy_source()
                                 : config.policy_source;
  auto loaded = engine_.load_source(source);
  assert(loaded.ok() && "policy source must parse");
  (void)loaded;
}

void SecurityFramework::attach_deployment(blob::Deployment& deployment) {
  attach(deployment.version_manager_node());
  attach(deployment.provider_manager_node());
  for (auto& p : deployment.providers()) attach(p->node());
  for (auto& mp : deployment.metadata_providers()) {
    attach(*deployment.cluster().node(mp->id()));
  }
}

}  // namespace bs::sec
