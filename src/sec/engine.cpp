#include "sec/engine.hpp"

namespace bs::sec {

DetectionEngine::DetectionEngine(sim::Simulation& sim,
                                 const intro::UserActivityHistory& activity,
                                 TrustManager& trust,
                                 PolicyEnforcement& enforcement,
                                 DetectionOptions options)
    : sim_(sim), activity_(activity), trust_(trust),
      enforcement_(enforcement), options_(options) {}

void DetectionEngine::load(std::vector<Policy> policies) {
  policies_ = std::move(policies);
  last_fired_.clear();
}

Result<void> DetectionEngine::load_source(const std::string& source) {
  auto parsed = parse_policies(source);
  if (!parsed.ok()) return parsed.error();
  load(std::move(parsed).value());
  return ok_result();
}

void DetectionEngine::start() {
  if (running_) return;
  running_ = true;
  sim_.spawn(scan_loop());
}

sim::Task<void> DetectionEngine::scan_loop() {
  while (running_) {
    co_await sim_.delay(options_.scan_interval);
    if (!running_) break;
    auto found = scan();
    for (const Violation& v : found) {
      enforcement_.handle(v);
      if (observer_) observer_(v);
    }
  }
}

std::vector<Violation> DetectionEngine::scan() {
  ++scans_;
  const SimTime now = sim_.now();
  std::vector<Violation> out;
  for (ClientId client :
       activity_.active_clients(options_.activity_horizon, now)) {
    // A blocked client cannot act; skip to avoid double sanctions.
    if (enforcement_.is_blocked(client, now)) continue;
    bool violated_any = false;
    EvalContext ctx;
    ctx.activity = &activity_;
    ctx.client = client;
    ctx.now = now;
    ctx.trust = trust_.trust(client);
    ctx.threshold_scale = trust_.threshold_scale(client);
    for (std::size_t i = 0; i < policies_.size(); ++i) {
      const auto key = std::make_pair(client.value, i);
      auto fired = last_fired_.find(key);
      if (fired != last_fired_.end() &&
          now - fired->second < options_.refractory) {
        continue;
      }
      if (policies_[i].matches(ctx)) {
        last_fired_[key] = now;
        out.push_back(Violation{client, &policies_[i], now});
        ++violations_;
        violated_any = true;
      }
    }
    if (!violated_any) trust_.record_clean(client);
  }
  return out;
}

}  // namespace bs::sec
