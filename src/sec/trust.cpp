#include "sec/trust.hpp"

#include <algorithm>

namespace bs::sec {

double TrustManager::trust(ClientId client) const {
  auto it = trust_.find(client.value);
  return it == trust_.end() ? options_.initial : it->second;
}

void TrustManager::record_violation(ClientId client, Severity severity) {
  double cut = options_.cut_medium;
  switch (severity) {
    case Severity::low: cut = options_.cut_low; break;
    case Severity::medium: cut = options_.cut_medium; break;
    case Severity::high: cut = options_.cut_high; break;
  }
  const double t = trust(client) * cut;
  trust_[client.value] = std::max(options_.min_trust, t);
}

void TrustManager::adjust(ClientId client, double delta) {
  const double t = trust(client) + delta;
  trust_[client.value] =
      std::clamp(t, options_.min_trust, options_.max_trust);
}

void TrustManager::record_clean(ClientId client) {
  adjust(client, options_.recovery);
}

double TrustManager::threshold_scale(ClientId client) const {
  const double t = trust(client);
  return options_.min_threshold_scale +
         (1.0 - options_.min_threshold_scale) * t;
}

}  // namespace bs::sec
